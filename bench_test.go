package basrpt

// One benchmark per paper table/figure (DESIGN.md §3). Each benchmark runs
// the corresponding experiment at a reduced scale and reports the headline
// quantities through b.ReportMetric, so `go test -bench . -benchmem`
// regenerates every row/series shape the paper reports. cmd/basrptbench
// prints the full tables; EXPERIMENTS.md records paper-vs-measured.

import (
	"testing"
)

// benchScale keeps the per-iteration cost of the fabric experiments around
// a second while preserving the load structure.
func benchScale() Scale {
	s := ScaleSmall
	s.Duration = 1.5
	return s
}

// BenchmarkFig1SRPTInstabilityExample regenerates Figure 1: SRPT strands
// one packet; backlog-aware completes all three flows.
func BenchmarkFig1SRPTInstabilityExample(b *testing.B) {
	var leftoverSRPT, leftoverBA float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		leftoverSRPT = res.SRPT.LeftoverPackets
		leftoverBA = res.BacklogAware.LeftoverPackets
	}
	b.ReportMetric(leftoverSRPT, "srpt-leftover-pkts")
	b.ReportMetric(leftoverBA, "basrpt-leftover-pkts")
}

// BenchmarkFig2QueueLengthSRPTvsThreshold regenerates Figure 2: queue
// growth at ~92% load under SRPT vs the threshold backlog-aware strategy.
func BenchmarkFig2QueueLengthSRPTvsThreshold(b *testing.B) {
	var srptQueue, backQueue float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig2(benchScale(), 0)
		if err != nil {
			b.Fatal(err)
		}
		srptQueue = res.SRPT.MaxPortSeries.TailMean(0.3)
		backQueue = res.Backlog.MaxPortSeries.TailMean(0.3)
	}
	b.ReportMetric(srptQueue/1e6, "srpt-queue-MB")
	b.ReportMetric(backQueue/1e6, "threshold-queue-MB")
}

// BenchmarkTable1FCT regenerates Table I: per-class mean/99th FCT under
// SRPT and fast BASRPT at 95% load.
func BenchmarkTable1FCT(b *testing.B) {
	var sq, fq, sq99, fq99 float64
	for i := 0; i < b.N; i++ {
		res, err := RunSaturation(benchScale(), 0)
		if err != nil {
			b.Fatal(err)
		}
		s := res.SRPT.FCT.Stats(ClassQuery)
		f := res.Fast.FCT.Stats(ClassQuery)
		sq, fq, sq99, fq99 = s.MeanMs, f.MeanMs, s.P99Ms, f.P99Ms
	}
	b.ReportMetric(sq, "srpt-query-avg-ms")
	b.ReportMetric(fq, "basrpt-query-avg-ms")
	b.ReportMetric(sq99, "srpt-query-p99-ms")
	b.ReportMetric(fq99, "basrpt-query-p99-ms")
}

// BenchmarkFig5ThroughputAndQueue regenerates Figure 5: cumulative volume
// and queue stability at saturation.
func BenchmarkFig5ThroughputAndQueue(b *testing.B) {
	var srptGbps, fastGbps, deltaBytes float64
	for i := 0; i < b.N; i++ {
		res, err := RunSaturation(benchScale(), 0)
		if err != nil {
			b.Fatal(err)
		}
		srptGbps = res.SRPT.AverageGbps()
		fastGbps = res.Fast.AverageGbps()
		deltaBytes = res.Fast.DepartedBytes - res.SRPT.DepartedBytes
	}
	b.ReportMetric(srptGbps, "srpt-Gbps")
	b.ReportMetric(fastGbps, "basrpt-Gbps")
	b.ReportMetric(deltaBytes/1e6, "basrpt-extra-MB")
}

// BenchmarkFig6VaryingLoads regenerates Figure 6 at a reduced load grid.
func BenchmarkFig6VaryingLoads(b *testing.B) {
	var avgRatio, p99Ratio float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig6(benchScale(), 0, []float64{0.2, 0.5, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		avgRatio = last.FastQueryAvgMs / last.SRPTQueryAvgMs
		p99Ratio = last.FastQueryP99Ms / last.SRPTQueryP99Ms
	}
	b.ReportMetric(avgRatio, "query-avg-ratio-at-80pct")
	b.ReportMetric(p99Ratio, "query-p99-ratio-at-80pct")
}

// BenchmarkFig7VSweepThroughputQueue regenerates Figure 7.
func BenchmarkFig7VSweepThroughputQueue(b *testing.B) {
	var lowVGbps, highVGbps, lowVQueue, highVQueue float64
	for i := 0; i < b.N; i++ {
		res, err := RunVSweep(benchScale(), []float64{1000, 10000})
		if err != nil {
			b.Fatal(err)
		}
		lowVGbps, highVGbps = res.Rows[0].Gbps, res.Rows[1].Gbps
		lowVQueue, highVQueue = res.Rows[0].StableQueueByte, res.Rows[1].StableQueueByte
	}
	b.ReportMetric(lowVGbps, "V1000-Gbps")
	b.ReportMetric(highVGbps, "V10000-Gbps")
	b.ReportMetric(lowVQueue/1e6, "V1000-queue-MB")
	b.ReportMetric(highVQueue/1e6, "V10000-queue-MB")
}

// BenchmarkFig8VSweepFCT regenerates Figure 8.
func BenchmarkFig8VSweepFCT(b *testing.B) {
	var lowVQuery, highVQuery, lowVBg, highVBg float64
	for i := 0; i < b.N; i++ {
		res, err := RunVSweep(benchScale(), []float64{1000, 10000})
		if err != nil {
			b.Fatal(err)
		}
		lowVQuery, highVQuery = res.Rows[0].QueryAvgMs, res.Rows[1].QueryAvgMs
		lowVBg, highVBg = res.Rows[0].BgAvgMs, res.Rows[1].BgAvgMs
	}
	b.ReportMetric(lowVQuery, "V1000-query-avg-ms")
	b.ReportMetric(highVQuery, "V10000-query-avg-ms")
	b.ReportMetric(lowVBg, "V1000-bg-avg-ms")
	b.ReportMetric(highVBg, "V10000-bg-avg-ms")
}

// BenchmarkTheoremBacklogScalesWithV regenerates the Theorem 1 validation
// (experiment E9): measured backlog under its O(V) bound, penalty gap
// shrinking with V.
func BenchmarkTheoremBacklogScalesWithV(b *testing.B) {
	var lowVBacklog, highVBacklog, lowVPenalty, highVPenalty float64
	for i := 0; i < b.N; i++ {
		res, err := RunTheorem1(4, 0.85, 50000, []float64{1, 256}, SeedRun(1))
		if err != nil {
			b.Fatal(err)
		}
		lowVBacklog, highVBacklog = res.Rows[0].MeanBacklog, res.Rows[1].MeanBacklog
		lowVPenalty, highVPenalty = res.Rows[0].MeanPenalty, res.Rows[1].MeanPenalty
	}
	b.ReportMetric(lowVBacklog, "V1-backlog-pkts")
	b.ReportMetric(highVBacklog, "V256-backlog-pkts")
	b.ReportMetric(lowVPenalty, "V1-penalty")
	b.ReportMetric(highVPenalty, "V256-penalty")
}

// BenchmarkDTMCRecurrence regenerates the tiny-switch stationary analysis
// (experiment E10).
func BenchmarkDTMCRecurrence(b *testing.B) {
	var srptCapMass, baCapMass float64
	for i := 0; i < b.N; i++ {
		res, err := RunDTMC(8, 0)
		if err != nil {
			b.Fatal(err)
		}
		srptCapMass = res.Shortest.CapMass
		baCapMass = res.Backlog.CapMass
	}
	b.ReportMetric(srptCapMass, "srpt-cap-mass")
	b.ReportMetric(baCapMass, "basrpt-cap-mass")
}

// BenchmarkAblationExactVsFast regenerates experiment E8: the greedy
// approximation's objective gap and speedup over the exhaustive search.
func BenchmarkAblationExactVsFast(b *testing.B) {
	var meanGap, speedup float64
	for i := 0; i < b.N; i++ {
		res, err := RunExactVsFast(5, 100, DefaultV, SeedRun(1))
		if err != nil {
			b.Fatal(err)
		}
		meanGap = res.MeanGap
		if res.FastMeanTime > 0 {
			speedup = float64(res.ExactMeanTime) / float64(res.FastMeanTime)
		}
	}
	b.ReportMetric(meanGap, "mean-objective-gap")
	b.ReportMetric(speedup, "exact/fast-time-ratio")
}

// BenchmarkSchedulerDecision measures the raw per-decision cost of the two
// main disciplines on a loaded 24-port fabric — the quantity that bounds
// simulator event throughput.
func BenchmarkSchedulerDecision(b *testing.B) {
	for _, tc := range []struct {
		name  string
		sched Scheduler
	}{
		{"srpt", NewSRPT()},
		{"fast-basrpt", NewFastBASRPT(DefaultV)},
		{"maxweight", NewMaxWeight()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tab := buildBenchTable(24, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := tc.sched.Schedule(tab); len(d) == 0 {
					b.Fatal("empty decision")
				}
			}
		})
	}
}

// BenchmarkDistributedEmulation regenerates experiment E11: agreement of
// the request/grant distributed emulation with centralized fast BASRPT.
func BenchmarkDistributedEmulation(b *testing.B) {
	var convergedAgree, oneRoundAgree float64
	for i := 0; i < b.N; i++ {
		res, err := RunDistributed(8, 100, DefaultV, []int{0, 1}, SeedRun(1))
		if err != nil {
			b.Fatal(err)
		}
		convergedAgree = res.Rows[0].Agreement
		oneRoundAgree = res.Rows[1].Agreement
	}
	b.ReportMetric(convergedAgree, "converged-agreement")
	b.ReportMetric(oneRoundAgree, "one-round-agreement")
}

// BenchmarkNoiseRobustness regenerates experiment E12: fast BASRPT under
// flow-size estimation error.
func BenchmarkNoiseRobustness(b *testing.B) {
	var exactGbps, noisyGbps float64
	for i := 0; i < b.N; i++ {
		res, err := RunNoise(benchScale(), 0, 0.8, []float64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		exactGbps = res.Rows[0].Gbps
		noisyGbps = res.Rows[1].Gbps
	}
	b.ReportMetric(exactGbps, "exact-sizes-Gbps")
	b.ReportMetric(noisyGbps, "noisy-sizes-Gbps")
}

// BenchmarkIncast regenerates experiment E14: the partition/aggregate
// pattern under both schedulers.
func BenchmarkIncast(b *testing.B) {
	var srptP99, fastP99 float64
	for i := 0; i < b.N; i++ {
		res, err := RunIncast(benchScale(), 0, 0, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		srptP99 = res.SRPT.FCT.Stats(ClassQuery).P99Ms
		fastP99 = res.Fast.FCT.Stats(ClassQuery).P99Ms
	}
	b.ReportMetric(srptP99, "srpt-response-p99-ms")
	b.ReportMetric(fastP99, "basrpt-response-p99-ms")
}

// BenchmarkMultiSeedTable1 exercises the worker-pool experiment runner on
// the Table I workload — 4 seeds × 2 schedulers fanned across GOMAXPROCS
// workers — and reports the pool's throughput plus its wall-time speedup
// over a serial pass of the byte-identical work. This is the regression
// guard behind `make bench-smoke` / BENCH_runner.json.
func BenchmarkMultiSeedTable1(b *testing.B) {
	s := benchScale()
	s.Duration = 0.5
	var runsPerSec, speedup float64
	for i := 0; i < b.N; i++ {
		par, err := RunMulti("table1", s, DefaultV, MultiConfig{Seeds: 4})
		if err != nil {
			b.Fatal(err)
		}
		ser, err := RunMulti("table1", s, DefaultV, MultiConfig{Seeds: 4, Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		runsPerSec = par.RunsPerSec()
		speedup = ser.Elapsed.Seconds() / par.Elapsed.Seconds()
	}
	b.ReportMetric(runsPerSec, "runs/s")
	b.ReportMetric(speedup, "speedup")
}
