package basrpt_test

import (
	"fmt"
	"log"

	"basrpt"
)

// ExampleRunFig1 reproduces the paper's Figure 1 instability example.
func ExampleRunFig1() {
	res, err := basrpt.RunFig1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("srpt leftover: %g packet(s)\n", res.SRPT.LeftoverPackets)
	fmt.Printf("backlog-aware leftover: %g packet(s)\n", res.BacklogAware.LeftoverPackets)
	// Output:
	// srpt leftover: 1 packet(s)
	// backlog-aware leftover: 0 packet(s)
}

// ExampleNewFastBASRPT runs one small fabric simulation end to end.
func ExampleNewFastBASRPT() {
	topo, err := basrpt.NewTopology(basrpt.ScaledTopology(2, 3))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := basrpt.NewMixedWorkload(basrpt.MixedConfig{
		Topology:          topo,
		Load:              0.5,
		QueryByteFraction: basrpt.DefaultQueryByteFraction,
		Duration:          0.5,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := basrpt.NewFabricSim(basrpt.FabricConfig{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: basrpt.NewFastBASRPT(basrpt.DefaultV),
		Generator: gen,
		Duration:  0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %v flows completed: %v\n", res.ArrivedFlows > 0, res.CompletedFlows == res.ArrivedFlows-res.LeftoverFlows)
	// Output:
	// all true flows completed: true
}

// ExampleNewSwitchSim walks the slotted model through a scripted scenario.
func ExampleNewSwitchSim() {
	sim, err := basrpt.NewSwitchSim(basrpt.SwitchConfig{
		N:         2,
		Scheduler: basrpt.NewSRPT(),
		Arrivals: basrpt.NewScriptedArrivals([]basrpt.FlowArrival{
			{Slot: 0, Src: 0, Dst: 1, Packets: 3},
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d flow(s), %g packet(s) left\n", sim.CompletedFlows(), sim.Backlog())
	// Output:
	// completed 1 flow(s), 0 packet(s) left
}

// ExampleNewScheduler shows registry-based construction.
func ExampleNewScheduler() {
	s, err := basrpt.NewScheduler("fast-basrpt", basrpt.SchedulerOptions{V: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Name())
	// Output:
	// fast-basrpt(V=1000)
}
