module basrpt

go 1.22
