package obs

import (
	"fmt"
	"math"
)

// GaugeState is a gauge's full internal state — unlike GaugeSnapshot it
// carries the set flag, which Max semantics depend on (the first Set after
// restore must not clobber a restored high-water mark, and an untouched
// gauge must restore as untouched).
type GaugeState struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
	Set   bool    `json:"set"`
}

// HistogramState is a histogram's full state; Buckets reuses the sparse
// snapshot encoding (bucket upper edges are exact powers of two, so the
// dense counts array reconstructs losslessly).
type HistogramState struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// RegistryState is every instrument in a registry, sorted by name.
type RegistryState struct {
	Counters   []CounterSnapshot `json:"counters,omitempty"`
	Gauges     []GaugeState      `json:"gauges,omitempty"`
	Histograms []HistogramState  `json:"histograms,omitempty"`
}

// StateSnapshot captures the registry for checkpointing. A nil registry
// snapshots empty.
func (r *Registry) StateSnapshot() RegistryState {
	var st RegistryState
	if r == nil {
		return st
	}
	for _, name := range sortedKeys(r.counters) {
		st.Counters = append(st.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		st.Gauges = append(st.Gauges, GaugeState{Name: name, Value: g.v, Max: g.max, Set: g.set})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		st.Histograms = append(st.Histograms, HistogramState{
			Name: name, Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	return st
}

// bucketIndexOf inverts Bucket.Le (math.Ldexp(1, i)) back to the bucket
// index, rejecting edges that are not exact in-range powers of two.
func bucketIndexOf(le float64) (int, error) {
	frac, exp := math.Frexp(le) // le = frac * 2^exp
	if frac != 0.5 || exp < 1 || exp > histBuckets {
		return 0, fmt.Errorf("obs: restore: bucket edge %g is not a valid power of two", le)
	}
	return exp - 1, nil
}

// RestoreState overwrites the registry's instruments from a snapshot,
// creating any that do not yet exist. Existing instrument pointers stay
// valid — callers that resolved a counter before the restore observe the
// restored value afterwards — which is what lets a live simulator restore
// its registry in place.
func (r *Registry) RestoreState(st RegistryState) error {
	if r == nil {
		return fmt.Errorf("obs: restore into nil registry")
	}
	for _, cs := range st.Counters {
		r.Counter(cs.Name).v = cs.Value
	}
	for _, gs := range st.Gauges {
		g := r.Gauge(gs.Name)
		g.v, g.max, g.set = gs.Value, gs.Max, gs.Set
	}
	for _, hs := range st.Histograms {
		h := r.Histogram(hs.Name)
		h.counts = [histBuckets]int64{}
		var inBuckets int64
		prev := -1
		for _, b := range hs.Buckets {
			i, err := bucketIndexOf(b.Le)
			if err != nil {
				return fmt.Errorf("%w (histogram %q)", err, hs.Name)
			}
			if i <= prev {
				return fmt.Errorf("obs: restore: histogram %q buckets out of order", hs.Name)
			}
			if b.Count <= 0 {
				return fmt.Errorf("obs: restore: histogram %q bucket %g count %d", hs.Name, b.Le, b.Count)
			}
			prev = i
			h.counts[i] = b.Count
			inBuckets += b.Count
		}
		if inBuckets != hs.Count {
			return fmt.Errorf("obs: restore: histogram %q buckets hold %d observations, header claims %d",
				hs.Name, inBuckets, hs.Count)
		}
		h.count = hs.Count
		h.sum = hs.Sum
	}
	return nil
}

// TracerState is the event tracer's serializable position: the sequence
// counter plus the retained flight-recorder tail in chronological order.
type TracerState struct {
	Seq    uint64  `json:"seq"`
	Events []Event `json:"events,omitempty"`
}

// StateSnapshot captures the tracer (nil for a disabled handle). The
// registry is snapshotted separately via Registry().StateSnapshot.
func (o *Obs) StateSnapshot() *TracerState {
	if o == nil {
		return nil
	}
	return &TracerState{Seq: o.seq, Events: o.LastEvents(0)}
}

// RestoreState rewinds the tracer: the sequence counter resumes at
// st.Seq and the ring refills with the snapshotted tail (truncated to the
// current ring capacity, keeping the most recent events, exactly as the
// ring itself would have). The sink is untouched — resume wiring decides
// where continued events stream.
func (o *Obs) RestoreState(st *TracerState) error {
	if o == nil {
		return fmt.Errorf("obs: restore into nil tracer")
	}
	if st == nil {
		return fmt.Errorf("obs: restore from nil tracer state")
	}
	var last uint64
	for i, ev := range st.Events {
		if ev.Seq == 0 || ev.Seq > st.Seq {
			return fmt.Errorf("obs: restore: event %d seq %d outside (0, %d]", i, ev.Seq, st.Seq)
		}
		if ev.Seq <= last {
			return fmt.Errorf("obs: restore: event seqs not strictly increasing at index %d", i)
		}
		last = ev.Seq
	}
	o.seq = st.Seq
	o.next, o.filled = 0, 0
	if len(o.ring) > 0 {
		evs := st.Events
		if len(evs) > len(o.ring) {
			evs = evs[len(evs)-len(o.ring):]
		}
		for _, ev := range evs {
			o.ring[o.next] = ev
			o.next++
			if o.next == len(o.ring) {
				o.next = 0
			}
			o.filled++
		}
	}
	return nil
}

// SetSink replaces the event sink and clears any sticky sink error — the
// resume path attaches a continuation trace writer to a restored tracer.
func (o *Obs) SetSink(sink EventSink) {
	if o == nil {
		return
	}
	o.sink = sink
	o.sinkErr = nil
}
