package obs

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestNilHandleIsDisabledNoop(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Fatal("nil handle reports enabled")
	}
	o.Emit(1, "k", 0, 1, "")
	if o.EventCount() != 0 || o.LastEvents(10) != nil || o.SinkErr() != nil {
		t.Fatal("nil handle recorded something")
	}
	// Instruments resolved through the nil handle must be usable no-ops.
	c := o.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := o.Gauge("g")
	g.Set(3)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := o.Histogram("h")
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram recorded")
	}
	if s := o.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil snapshot non-empty")
	}
	if ns := StartSpan(o.Histogram("span")).End(); ns != 0 {
		t.Fatalf("nil span measured %d ns", ns)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(2)
	c.Inc()
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("a") != c {
		t.Fatal("counter not interned by name")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Fatalf("gauge value/max = %g/%g, want 2/5", g.Value(), g.Max())
	}
	// Gauges that only ever see negative values must still report their
	// high-water mark, not zero.
	neg := r.Gauge("neg")
	neg.Set(-7)
	neg.Set(-3)
	if neg.Max() != -3 {
		t.Fatalf("negative gauge max = %g, want -3", neg.Max())
	}
	h := r.Histogram("h")
	for _, v := range []float64{0.5, 1, 2, 3, 1024} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1030.5 {
		t.Fatalf("hist count/sum = %d/%g", h.Count(), h.Sum())
	}
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.5, 0}, {1, 0},
		{1.5, 1}, {2, 1},
		{2.0001, 2}, {4, 2},
		{1024, 10}, {1025, 11},
		{math.NaN(), 0},
		{math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucketOf(c.v); got != c.want {
			t.Errorf("bucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	h := &Histogram{}
	h.Observe(3) // bucket 2, Le 4
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Le != 4 || bs[0].Count != 1 {
		t.Fatalf("buckets = %+v", bs)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("quantile = %g, want 4", q)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	mk := func() Snapshot {
		r := NewRegistry()
		r.Counter("zeta").Add(1)
		r.Counter("alpha").Add(2)
		r.Gauge("mid").Set(7)
		r.Histogram("lat").Observe(100)
		return r.Snapshot()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("snapshots of identical registries differ")
	}
	if a.Counters[0].Name != "alpha" || a.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", a.Counters)
	}
	if a.Counter("zeta") != 1 || a.Counter("missing") != 0 {
		t.Fatal("snapshot counter lookup wrong")
	}
}

func TestRingRetainsLastEventsInOrder(t *testing.T) {
	o := New(Options{RingCapacity: 4})
	for i := 1; i <= 10; i++ {
		o.Emit(float64(i), "e", i, float64(i), "")
	}
	if o.EventCount() != 10 {
		t.Fatalf("event count = %d", o.EventCount())
	}
	got := o.LastEvents(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if two := o.LastEvents(2); len(two) != 2 || two[1].Seq != 10 {
		t.Fatalf("LastEvents(2) = %+v", two)
	}
	// Before the ring wraps, only what was emitted comes back.
	o2 := New(Options{RingCapacity: 8})
	o2.Emit(1, "a", -1, 0, "")
	if evs := o2.LastEvents(5); len(evs) != 1 || evs[0].Kind != "a" {
		t.Fatalf("partial ring = %+v", evs)
	}
	// RingCapacity < 0 disables retention but not counting.
	o3 := New(Options{RingCapacity: -1})
	o3.Emit(1, "a", -1, 0, "")
	if o3.LastEvents(1) != nil || o3.EventCount() != 1 {
		t.Fatal("ringless handle retained or missed events")
	}
}

type collectSink struct {
	events []Event
	failAt int // fail on the n-th write (1-based), 0 = never
}

func (s *collectSink) WriteEvent(ev Event) error {
	if s.failAt > 0 && len(s.events)+1 >= s.failAt {
		return errors.New("sink full")
	}
	s.events = append(s.events, ev)
	return nil
}

func TestSinkReceivesEventsAndErrorIsSticky(t *testing.T) {
	sink := &collectSink{}
	o := New(Options{Sink: sink})
	o.Emit(0.5, "x", 1, 2, "d")
	o.Emit(0.6, "y", -1, 3, "")
	if len(sink.events) != 2 || sink.events[0].Kind != "x" || sink.events[1].Seq != 2 {
		t.Fatalf("sink saw %+v", sink.events)
	}
	if o.SinkErr() != nil {
		t.Fatal("unexpected sink error")
	}

	failing := &collectSink{failAt: 2}
	o2 := New(Options{Sink: failing, RingCapacity: 8})
	o2.Emit(1, "a", -1, 0, "")
	o2.Emit(2, "b", -1, 0, "")
	o2.Emit(3, "c", -1, 0, "")
	if o2.SinkErr() == nil {
		t.Fatal("sink error not surfaced")
	}
	if len(failing.events) != 1 {
		t.Fatalf("failed sink kept receiving: %d events", len(failing.events))
	}
	// The ring must keep recording past the sink failure.
	if evs := o2.LastEvents(0); len(evs) != 3 || evs[2].Kind != "c" {
		t.Fatalf("ring lost events after sink failure: %+v", evs)
	}
}

func TestWallClockOptIn(t *testing.T) {
	o := New(Options{})
	o.Emit(1, "a", -1, 0, "")
	if o.LastEvents(1)[0].WallNs != 0 {
		t.Fatal("wall stamp present without opt-in")
	}
	ow := New(Options{WallClock: true})
	ow.Emit(1, "a", -1, 0, "")
	if ow.LastEvents(1)[0].WallNs == 0 {
		t.Fatal("wall stamp missing with opt-in")
	}
}

func TestSpanObservesIntoHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	sp := StartSpan(h)
	ns := sp.End()
	if ns < 0 {
		t.Fatalf("negative span %d", ns)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe: count %d", h.Count())
	}
}

func TestEmitDeterministicSequence(t *testing.T) {
	mk := func() []Event {
		o := New(Options{RingCapacity: 64})
		for i := 0; i < 20; i++ {
			o.Emit(float64(i)*0.25, fmt.Sprintf("k%d", i%3), i%4, float64(i*i), "")
		}
		return o.LastEvents(0)
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("identical emission histories produced different events")
	}
}
