package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixedTimeline builds a small deterministic timeline: two cells and the
// coordinator across two windows, with hand-picked timestamps.
func fixedTimeline() *Timeline {
	tl := NewTimeline()
	tl.Add(TimelineSpan{Track: 0, Name: "window", Window: 0, StartNs: 1000, DurNs: 2500})
	tl.Add(TimelineSpan{Track: 1, Name: "window", Window: 0, StartNs: 1100, DurNs: 1800})
	tl.Add(TimelineSpan{Track: 0, Name: "barrier", Window: 0, StartNs: 3500, DurNs: 0})
	tl.Add(TimelineSpan{Track: 1, Name: "barrier", Window: 0, StartNs: 2900, DurNs: 600})
	tl.Add(TimelineSpan{Track: TimelineCoordinator, Name: "fold", Window: 0, StartNs: 3500, DurNs: 400})
	tl.Add(TimelineSpan{Track: TimelineCoordinator, Name: "route", Window: 0, StartNs: 3900, DurNs: 150})
	tl.Add(TimelineSpan{Track: 0, Name: "window", Window: 1, StartNs: 4050, DurNs: 2000})
	tl.Add(TimelineSpan{Track: 1, Name: "window", Window: 1, StartNs: 4060, DurNs: 2100})
	return tl
}

// TestWriteChromeTraceGolden pins the exact serialized bytes of the
// Chrome trace_event export against a checked-in golden file, so schema
// drift (field renames, ordering changes) is caught as a diff.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTimeline().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_GOLDEN=1 go test ./internal/obs/ -run ChromeTraceGolden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteChromeTraceValidJSON checks the export is a well-formed
// trace_event document: parseable JSON with the fields the Chrome/
// Perfetto loaders require, one thread row per track, and metadata
// naming every row.
func TestWriteChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTimeline().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[ev.TID] = true
			if ev.Dur < 0 || ev.TS < 0 {
				t.Errorf("negative time in event %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != fixedTimeline().Len() {
		t.Errorf("complete events = %d, want %d", complete, fixedTimeline().Len())
	}
	// process_name + coordinator + 2 cells.
	if meta != 4 {
		t.Errorf("metadata events = %d, want 4", meta)
	}
	// Coordinator on tid 0, cells on tids 1 and 2.
	for _, tid := range []int{0, 1, 2} {
		if !tids[tid] {
			t.Errorf("no complete events on tid %d", tid)
		}
	}
}

// TestWriteChromeTraceMicroseconds checks the ns -> µs conversion keeps
// sub-microsecond precision as decimals.
func TestWriteChromeTraceMicroseconds(t *testing.T) {
	tl := NewTimeline()
	tl.Add(TimelineSpan{Track: 0, Name: "window", Window: 0, StartNs: 1234567, DurNs: 1005})
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"ts\":1234.567") {
		t.Errorf("want ts 1234.567 in output:\n%s", out)
	}
	if !strings.Contains(out, "\"dur\":1.005") {
		t.Errorf("want dur 1.005 in output:\n%s", out)
	}
}

func TestWriteChromeTraceRejectsBadSpans(t *testing.T) {
	tl := NewTimeline()
	tl.Add(TimelineSpan{Track: 0, Name: "bad\"name", Window: 0})
	if err := tl.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("want error for JSON-unsafe span name")
	}
	tl2 := NewTimeline()
	tl2.Add(TimelineSpan{Track: 0, Name: "window", StartNs: -1})
	if err := tl2.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("want error for negative start")
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Add(TimelineSpan{Track: 0, Name: "window"}) // must not panic
	if tl.Len() != 0 || tl.Spans() != nil {
		t.Error("nil timeline should be empty")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil timeline export: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil timeline export not valid JSON: %s", buf.Bytes())
	}
}
