// Package obs is the deterministic observability substrate the simulators
// are instrumented with: a registry of named counters, gauges, and
// log-bucketed histograms, plus a simulation-time event tracer backed by a
// fixed-capacity flight-recorder ring buffer and an optional streaming
// sink (the JSONL trace export in internal/trace).
//
// Two properties shape every API here:
//
//   - Determinism. Events are stamped with simulation time and a
//     monotone sequence number — never wall time unless Options.WallClock
//     is explicitly set — so two runs of the same seeded configuration
//     emit byte-identical traces. Wall-clock measurements (decision
//     latency spans) go only into registry histograms, which are reported
//     alongside results but never enter the trace stream.
//
//   - Near-zero disabled cost. A nil *Obs is the disabled
//     implementation: every method is nil-safe, Emit is a single pointer
//     comparison, and registry instruments resolved through a nil handle
//     are themselves nil no-ops. Hot paths therefore instrument
//     unconditionally; the overhead budget is verified by
//     BenchmarkObsDisabled* and the obsbench harness (BENCH_obs.json).
//
// Like the simulators it instruments, an Obs is single-goroutine state:
// build one per run. Parallel experiments (internal/runner) construct a
// private Obs inside each worker task, exactly as they do schedulers.
package obs

import "time"

// Event is one flight-recorder entry. Port is -1 when the event is not
// port-scoped. WallNs is zero unless the handle was built with
// Options.WallClock (wall stamps are machine-dependent and therefore
// excluded from deterministic traces by default).
type Event struct {
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"` // simulation time, seconds (slots for the slotted switch)
	Kind   string  `json:"kind"`
	Port   int     `json:"port"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
	WallNs int64   `json:"wallNs,omitempty"`
}

// EventSink receives every emitted event in order, e.g. a JSONL trace
// writer. A sink error is sticky: the Obs stops forwarding and reports the
// first error from SinkErr, while the ring keeps recording.
type EventSink interface {
	WriteEvent(Event) error
}

// DefaultRingCapacity is the flight-recorder depth when Options leaves
// RingCapacity zero: enough context to explain a truncation without
// holding a whole run in memory.
const DefaultRingCapacity = 256

// Options parameterizes New.
type Options struct {
	// RingCapacity bounds the flight recorder (0 selects
	// DefaultRingCapacity, negative disables the ring entirely).
	RingCapacity int
	// WallClock additionally stamps events with wall-clock nanoseconds.
	// Machine-dependent: leave off for deterministic traces.
	WallClock bool
	// Sink, when non-nil, receives every event as it is emitted.
	Sink EventSink
}

// Obs is one run's instrumentation handle: a registry plus the event
// tracer. The nil handle is the disabled implementation.
type Obs struct {
	reg     *Registry
	ring    []Event
	next    int // ring write position
	filled  int // events currently in the ring
	seq     uint64
	wall    bool
	sink    EventSink
	sinkErr error
}

// New builds an enabled handle.
func New(opts Options) *Obs {
	capacity := opts.RingCapacity
	if capacity == 0 {
		capacity = DefaultRingCapacity
	}
	o := &Obs{reg: NewRegistry(), wall: opts.WallClock, sink: opts.Sink}
	if capacity > 0 {
		o.ring = make([]Event, capacity)
	}
	return o
}

// Enabled reports whether the handle records anything.
func (o *Obs) Enabled() bool { return o != nil }

// Registry returns the instrument registry (nil for a disabled handle —
// which is itself a valid, no-op registry receiver).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Counter is shorthand for Registry().Counter.
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge is shorthand for Registry().Gauge.
func (o *Obs) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram is shorthand for Registry().Histogram.
func (o *Obs) Histogram(name string) *Histogram { return o.Registry().Histogram(name) }

// Snapshot copies the registry state (empty for a disabled handle).
func (o *Obs) Snapshot() Snapshot { return o.Registry().Snapshot() }

// Emit records one event at simulation time t. On a nil handle it is a
// single pointer comparison — the disabled hot path.
func (o *Obs) Emit(t float64, kind string, port int, value float64, detail string) {
	if o == nil {
		return
	}
	o.seq++
	ev := Event{Seq: o.seq, T: t, Kind: kind, Port: port, Value: value, Detail: detail}
	if o.wall {
		ev.WallNs = time.Now().UnixNano()
	}
	if o.sink != nil && o.sinkErr == nil {
		if err := o.sink.WriteEvent(ev); err != nil {
			o.sinkErr = err
		}
	}
	if len(o.ring) > 0 {
		o.ring[o.next] = ev
		o.next++
		if o.next == len(o.ring) {
			o.next = 0
		}
		if o.filled < len(o.ring) {
			o.filled++
		}
	}
}

// EventCount returns how many events have been emitted in total (not just
// those still in the ring).
func (o *Obs) EventCount() uint64 {
	if o == nil {
		return 0
	}
	return o.seq
}

// SinkErr returns the first sink write error, if any. Callers exporting a
// trace should check it after the run: the ring keeps recording past a
// sink failure, but the exported trace is incomplete.
func (o *Obs) SinkErr() error {
	if o == nil {
		return nil
	}
	return o.sinkErr
}

// LastEvents returns up to k of the most recent events in chronological
// order (all retained events when k <= 0 or exceeds the ring content).
// The returned slice is a copy.
func (o *Obs) LastEvents(k int) []Event {
	if o == nil || o.filled == 0 {
		return nil
	}
	if k <= 0 || k > o.filled {
		k = o.filled
	}
	out := make([]Event, k)
	// Oldest retained event sits at next-filled (mod len) when the ring has
	// wrapped; the last k start k before next.
	start := o.next - k
	if start < 0 {
		start += len(o.ring)
	}
	for i := 0; i < k; i++ {
		out[i] = o.ring[(start+i)%len(o.ring)]
	}
	return out
}

// Span measures one wall-clock interval into a histogram — the profiling
// hook for decision latency and similar. Spans never touch the event
// stream, so enabling them cannot break trace determinism. A Span started
// from a nil histogram is a no-op.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a measurement into h.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span, records the elapsed nanoseconds into the histogram,
// and returns them (zero for a no-op span).
func (s Span) End() int64 {
	if s.h == nil {
		return 0
	}
	ns := time.Since(s.start).Nanoseconds()
	s.h.Observe(float64(ns))
	return ns
}
