package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// TimelineCoordinator is the track number of the coordinator (main
// goroutine) in a Timeline: the fold/route work that runs between
// lookahead windows, as opposed to the per-cell tracks numbered from 0.
const TimelineCoordinator = -1

// TimelineSpan is one recorded wall-clock interval on a Timeline track.
// Start and duration are nanoseconds relative to the recording run's
// origin (the recorder chooses the origin; only differences matter).
// Spans belong to the wall-clock observability plane: their order is
// deterministic for a fixed configuration, their times are not.
type TimelineSpan struct {
	Track   int    // cell index, or TimelineCoordinator
	Name    string // span kind: "window", "batch", "barrier", "fold", "route"
	Window  int    // window index ("window" spans) or barrier index (all others)
	StartNs int64  // nanoseconds since the run origin
	DurNs   int64  // span duration in nanoseconds
}

// Timeline accumulates wall-clock spans from a sharded run for export in
// the Chrome trace_event format (chrome://tracing, Perfetto). It is a
// plain append-only container: the caller supplies timestamps, so a
// Timeline itself never reads the clock and tests can drive it with
// fixed values. Not safe for concurrent use — record from the
// coordinating goroutine only (the sharded engine appends between
// window barriers).
type Timeline struct {
	spans []TimelineSpan
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add appends one span. Nil-safe: recording into a nil *Timeline is a
// no-op, so engine code can call it unconditionally.
func (tl *Timeline) Add(span TimelineSpan) {
	if tl == nil {
		return
	}
	tl.spans = append(tl.spans, span)
}

// Spans returns the recorded spans in insertion order. The returned
// slice is the timeline's backing store; callers must not mutate it.
func (tl *Timeline) Spans() []TimelineSpan {
	if tl == nil {
		return nil
	}
	return tl.spans
}

// Len returns the number of recorded spans.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	return len(tl.spans)
}

// trackTID maps a timeline track to a Chrome trace thread id: the
// coordinator renders as tid 0 and cell i as tid i+1, so the timeline
// viewer sorts the coordinator row first.
func trackTID(track int) int {
	if track == TimelineCoordinator {
		return 0
	}
	return track + 1
}

// trackName renders the human-readable row label for a track.
func trackName(track int) string {
	if track == TimelineCoordinator {
		return "coordinator"
	}
	return fmt.Sprintf("cell %d", track)
}

// WriteChromeTrace serializes the timeline as a Chrome trace_event JSON
// document: one complete ("ph":"X") event per span on one thread row
// per track, plus thread_name/process_name metadata, timestamps in
// microseconds as the format requires. The output loads directly in
// chrome://tracing or https://ui.perfetto.dev. Event order and all
// non-timestamp bytes are deterministic for a fixed span sequence; the
// timestamps themselves are wall-clock measurements and vary run to
// run. A nil or empty timeline writes a valid document with only
// process metadata.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"basrpt sharded fabric\"}}")

	// Thread-name metadata for every track that appears, coordinator
	// first then cells ascending, independent of span order.
	tracks := map[int]bool{}
	maxCell := -1
	for _, s := range tl.Spans() {
		tracks[s.Track] = true
		if s.Track > maxCell {
			maxCell = s.Track
		}
	}
	if tracks[TimelineCoordinator] {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":%q}}", trackName(TimelineCoordinator))
	}
	for t := 0; t <= maxCell; t++ {
		if tracks[t] {
			fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%q}}", trackTID(t), trackName(t))
		}
	}

	for _, s := range tl.Spans() {
		name := s.Name
		if strings.ContainsAny(name, "\"\\\n") {
			return fmt.Errorf("obs: timeline span name %q contains JSON-unsafe characters", s.Name)
		}
		if s.StartNs < 0 || s.DurNs < 0 {
			return fmt.Errorf("obs: timeline span %q has negative time (start %d dur %d)", s.Name, s.StartNs, s.DurNs)
		}
		// trace_event timestamps are microseconds; keep nanosecond
		// precision with three decimals.
		fmt.Fprintf(bw, ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d.%03d,\"dur\":%d.%03d,\"pid\":0,\"tid\":%d,\"args\":{\"window\":%d,\"track\":%d}}",
			name, name, s.StartNs/1000, s.StartNs%1000, s.DurNs/1000, s.DurNs%1000, trackTID(s.Track), s.Window, s.Track)
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
