package obs

import (
	"math"
	"sort"
)

// Counter is a monotonically accumulating int64 metric. The zero value is
// ready to use. Every method is nil-safe: a nil *Counter ignores writes
// and reads as zero, so instrumented code resolves its counters once at
// construction and calls them unconditionally — the disabled path is a
// single pointer comparison.
type Counter struct{ v int64 }

// Add accumulates n (negative n is allowed for corrections but counters
// are conventionally monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value metric that also tracks its high-water mark.
// Nil-safe like Counter.
type Gauge struct {
	v, max float64
	set    bool
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Value returns the last value set (zero for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark since construction.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds observations <= 1, bucket i holds (2^(i-1), 2^i], and the last
// bucket absorbs everything larger. 64 buckets cover any float64 span a
// simulation produces (nanosecond latencies through multi-terabyte
// backlogs).
const histBuckets = 64

// Histogram is a log2-bucketed distribution: fixed memory, no allocation
// per observation, and deterministic bucketing (the bucket of a value is a
// pure function of its bits). Nil-safe like Counter.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    float64
}

// histBucketOf maps v to its bucket index.
func histBucketOf(v float64) int {
	if !(v > 1) { // catches v <= 1 and NaN
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp with frac in [0.5, 1)
	b := exp
	if frac == 0.5 {
		b-- // exact power of two: v == 2^(exp-1) belongs to bucket exp-1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[histBucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns Sum/Count, or zero for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bucket is one non-empty histogram bucket: Count observations were <= Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Buckets returns the non-empty buckets in ascending upper-edge order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{Le: math.Ldexp(1, i), Count: c})
		}
	}
	return out
}

// Quantile returns the upper edge of the bucket containing the q-th
// quantile (q in [0, 1]) — a factor-of-two estimate, which is what a
// log-bucketed histogram can honestly promise.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return math.Ldexp(1, i)
		}
	}
	return math.Ldexp(1, histBuckets-1)
}

// Registry is a named collection of counters, gauges, and histograms.
// Instruments are created on first reference and live for the registry's
// lifetime, so hot paths resolve each instrument once and then pay only
// the instrument's own (pointer-sized) cost. Not safe for concurrent use —
// like the simulators it instruments, a registry belongs to one run.
//
// Nil-safe: every method on a nil *Registry returns a nil instrument,
// whose methods are in turn no-ops, so "no registry" needs no branches at
// the call sites.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value and high-water mark.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistogramSnapshot is one histogram's summary and non-empty buckets.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// sorted by name so rendering and serialization are deterministic.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter value from the snapshot (zero when
// absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Snapshot copies the registry's state in sorted-name order. A nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: name, Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
