package obs

import "strings"

// WallPrefix marks instrument names that belong to the wall-clock
// observability plane: measurements of the host machine (barrier waits,
// cell busy time, scheduler nanos) rather than of the simulated physics.
// Wall-clock instruments live in the same registries as deterministic
// ones for convenience, but every deterministic artifact — result
// digests, checkpoint bytes, cross-shard snapshot comparisons — must
// filter them out, because their values differ run to run on the same
// seed. IsWallClock is that filter.
const WallPrefix = "wall."

// IsWallClock reports whether the named instrument belongs to the
// wall-clock plane and must therefore be excluded from deterministic
// digests, checkpoints, and byte-comparison tests. It covers the
// explicit "wall." domain plus the "runtime." gauges (GC and heap
// readings taken at sample ticks), which predate the wall domain but
// are nondeterministic for the same reason.
func IsWallClock(name string) bool {
	return strings.HasPrefix(name, WallPrefix) || strings.HasPrefix(name, "runtime.")
}

// WithoutWall returns a copy of the snapshot with every wall-clock
// instrument (per IsWallClock) removed. The result is the
// deterministic-plane view: byte-identical across reruns, shard counts,
// and GOMAXPROCS for the same seeded run. Slices are freshly allocated;
// the receiver is not modified.
func (s Snapshot) WithoutWall() Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if !IsWallClock(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !IsWallClock(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if !IsWallClock(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}
