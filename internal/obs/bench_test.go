package obs

import "testing"

// The disabled path is a nil handle: these benchmarks bound the cost the
// instrumentation adds to uninstrumented runs. The obsbench harness
// (core/obsbench.go) folds these numbers into BENCH_obs.json.

func BenchmarkObsDisabledEmit(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(1.5, "bench", 3, 42, "")
	}
}

func BenchmarkObsDisabledCounterAdd(b *testing.B) {
	var o *Obs
	c := o.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsDisabledHistogramObserve(b *testing.B) {
	var o *Obs
	h := o.Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkObsEnabledEmitRingOnly(b *testing.B) {
	o := New(Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(1.5, "bench", 3, 42, "")
	}
}

func BenchmarkObsEnabledCounterAdd(b *testing.B) {
	o := New(Options{})
	c := o.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsEnabledHistogramObserve(b *testing.B) {
	o := New(Options{})
	h := o.Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}
