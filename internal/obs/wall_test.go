package obs

import (
	"reflect"
	"testing"
)

func TestIsWallClock(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"wall.barrier_wait_ns", true},
		{"wall.busy_ns", true},
		{"runtime.gc_cycles", true},
		{"runtime.heap_alloc_bytes", true},
		{"fabric.decisions", false},
		{"cell.msgs_sent", false},
		{"wall", false}, // bare prefix stem without the dot
		{"wallet.x", false},
		{"runtimes.x", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsWallClock(c.name); got != c.want {
			t.Errorf("IsWallClock(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSnapshotWithoutWall(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cell.decisions").Add(7)
	reg.Counter("wall.busy_ns").Add(12345)
	reg.Gauge("cell.eventq_high_water").Set(42)
	reg.Gauge("runtime.heap_alloc_bytes").Set(1 << 20)
	reg.Histogram("fabric.decision_size").Observe(3)
	reg.Histogram("wall.window_ns").Observe(999)

	got := reg.Snapshot().WithoutWall()
	want := Snapshot{
		Counters:   []CounterSnapshot{{Name: "cell.decisions", Value: 7}},
		Gauges:     []GaugeSnapshot{{Name: "cell.eventq_high_water", Value: 42, Max: 42}},
		Histograms: []HistogramSnapshot{{Name: "fabric.decision_size", Count: 1, Sum: 3, Buckets: []Bucket{{Le: 4, Count: 1}}}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WithoutWall mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotWithoutWallDoesNotMutate(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.x").Inc()
	reg.Counter("wall.y").Inc()
	snap := reg.Snapshot()
	_ = snap.WithoutWall()
	if len(snap.Counters) != 2 {
		t.Fatalf("WithoutWall mutated the receiver: %+v", snap)
	}
}
