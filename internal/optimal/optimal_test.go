package optimal

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/switchsim"
)

func TestNewInstanceValidation(t *testing.T) {
	good := []Flow{{Src: 0, Dst: 1, Packets: 2}}
	if _, err := NewInstance(2, good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		n     int
		flows []Flow
	}{
		{"bad n", 0, good},
		{"no flows", 2, nil},
		{"bad port", 2, []Flow{{Src: 2, Dst: 0, Packets: 1}}},
		{"zero packets", 2, []Flow{{Src: 0, Dst: 1, Packets: 0}}},
		{"negative release", 2, []Flow{{Src: 0, Dst: 1, Packets: 1, Release: -1}}},
	}
	for _, tt := range cases {
		if _, err := NewInstance(tt.n, tt.flows); err == nil {
			t.Fatalf("%s accepted", tt.name)
		}
	}
	tooMany := make([]Flow, maxFlows+1)
	for i := range tooMany {
		tooMany[i] = Flow{Src: 0, Dst: 1, Packets: 1}
	}
	if _, err := NewInstance(2, tooMany); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized instance: %v", err)
	}
}

func TestSingleFlow(t *testing.T) {
	in, err := NewInstance(2, []Flow{{Src: 0, Dst: 1, Packets: 3}})
	if err != nil {
		t.Fatal(err)
	}
	total, makespan, err := in.MinTotalFCT()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || makespan != 3 {
		t.Fatalf("total/makespan = %d/%d, want 3/3", total, makespan)
	}
	done, err := in.MaxCompletedBy(2)
	if err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("MaxCompletedBy(2) = %d, want 2", done)
	}
}

// TestSingleLinkSRPTOptimal: on a single link, SRPT achieves the
// brute-force optimal total FCT (the Schrage–Miller fact the paper cites).
func TestSingleLinkSRPTOptimal(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 1, Packets: 4, Release: 0},
		{Src: 0, Dst: 1, Packets: 1, Release: 1},
		{Src: 0, Dst: 1, Packets: 2, Release: 2},
	}
	in, err := NewInstance(2, flows)
	if err != nil {
		t.Fatal(err)
	}
	optTotal, _, err := in.MinTotalFCT()
	if err != nil {
		t.Fatal(err)
	}
	if got := runSRPTTotalFCT(t, 2, flows); got != optTotal {
		t.Fatalf("SRPT total FCT %d != optimal %d", got, optTotal)
	}
}

// TestFig1OptimalThroughput: the Figure 1 instance admits a schedule
// delivering all 7 packets in 6 slots — which the backlog-aware discipline
// achieves and SRPT does not.
func TestFig1OptimalThroughput(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 3, Packets: 5, Release: 0}, // f1
		{Src: 0, Dst: 2, Packets: 1, Release: 0}, // f2
		{Src: 1, Dst: 3, Packets: 1, Release: 1}, // f3
	}
	in, err := NewInstance(4, flows)
	if err != nil {
		t.Fatal(err)
	}
	done, err := in.MaxCompletedBy(6)
	if err != nil {
		t.Fatal(err)
	}
	if done != 7 {
		t.Fatalf("optimal packets in 6 slots = %d, want 7", done)
	}
	// The offline FCT optimum is exactly the paper's Figure 1(c)
	// backlog-aware schedule: f1 in slots {1,3,4,5,6}, f2 and f3 sharing
	// slot 2 — total FCT 6+2+1 = 9 with makespan 6. Greedy online SRPT
	// (FCT 1+1+unfinished) fails not because FCT and throughput conflict
	// here, but because greedy myopia is not the offline optimum.
	total, makespan, err := in.MinTotalFCT()
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 || makespan != 6 {
		t.Fatalf("optimal total FCT %d (want 9), makespan %d (want 6)", total, makespan)
	}
}

// TestSRPTNeverBeatsOptimal: property — greedy SRPT's realized total FCT
// is always >= the brute-force optimum, and within a modest factor on
// small instances (the near-ideal claim).
func TestSRPTNeverBeatsOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(2)
		count := 1 + r.Intn(4)
		flows := make([]Flow, count)
		for i := range flows {
			src := r.Intn(n)
			dst := r.Intn(n)
			flows[i] = Flow{
				Src: src, Dst: dst,
				Packets: 1 + r.Intn(4),
				Release: int64(r.Intn(3)),
			}
		}
		in, err := NewInstance(n, flows)
		if err != nil {
			return false
		}
		opt, _, err := in.MinTotalFCT()
		if err != nil {
			return false
		}
		got := runSRPTTotalFCT(nil, n, flows)
		return got >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	in, err := NewInstance(2, []Flow{{Src: 0, Dst: 1, Packets: 2, Release: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s := in.String(); !strings.Contains(s, "[0->1 2pkt@1]") {
		t.Fatalf("String = %q", s)
	}
}

func TestMaxCompletedByNegative(t *testing.T) {
	in, err := NewInstance(2, []Flow{{Src: 0, Dst: 1, Packets: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.MaxCompletedBy(-1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// runSRPTTotalFCT executes greedy SRPT on the slotted switch and returns
// the realized total FCT in slots. t may be nil (property-test use).
func runSRPTTotalFCT(t *testing.T, n int, flows []Flow) int64 {
	arrivals := make([]switchsim.FlowArrival, len(flows))
	var totalPackets int64
	var lastRelease int64
	for i, f := range flows {
		arrivals[i] = switchsim.FlowArrival{
			Slot: f.Release, Src: f.Src, Dst: f.Dst, Packets: f.Packets,
		}
		totalPackets += int64(f.Packets)
		if f.Release > lastRelease {
			lastRelease = f.Release
		}
	}
	sim, err := switchsim.New(switchsim.Config{
		N:         n,
		Scheduler: sched.NewSRPT(),
		Arrivals:  switchsim.NewScriptedArrivals(arrivals),
	})
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		return -1
	}
	// Run long enough for everything to finish.
	if err := sim.Run(totalPackets + lastRelease + int64(len(flows)) + 4); err != nil {
		if t != nil {
			t.Fatal(err)
		}
		return -1
	}
	cs := sim.FCT().Stats(flow.ClassOther)
	return int64(cs.TotalMs / 1000) // slots were recorded as seconds
}
