// Package optimal computes exact offline optima for tiny scheduling
// instances on the slotted input-queued switch. The paper (Section II-A)
// leans on two optimality facts: SRPT minimizes mean response time on a
// single link, and multi-link mean-FCT minimization is NP-hard (equivalent
// to sum multicoloring), with the greedy SRPT approximation near-ideal.
// This package makes both facts testable by brute force:
//
//   - MinTotalFCT finds the minimum achievable sum of flow completion
//     times over all preemptive crossbar schedules.
//   - MaxCompletedBy finds the maximum number of packets deliverable
//     within a horizon (the throughput side of the Figure 1 example).
//
// State spaces are exponential; callers keep instances to a handful of
// flows (the constructor enforces a limit).
package optimal

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"basrpt/internal/matching"
)

// Flow is one offline job: Packets to move from Src to Dst, available from
// slot Release.
type Flow struct {
	Src     int
	Dst     int
	Packets int
	Release int64
}

// Instance is a validated offline problem.
type Instance struct {
	n     int
	flows []Flow
}

// ErrTooLarge reports an instance beyond brute-force reach.
var ErrTooLarge = errors.New("optimal: instance too large for exhaustive search")

// maxFlows bounds the exhaustive search; state count is the product of
// (packets+1) over flows times the horizon.
const maxFlows = 6

// maxStates bounds the memoization table.
const maxStates = 2_000_000

// NewInstance validates an offline problem on an n-port switch.
func NewInstance(n int, flows []Flow) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("optimal: invalid port count %d", n)
	}
	if len(flows) == 0 {
		return nil, errors.New("optimal: no flows")
	}
	if len(flows) > maxFlows {
		return nil, fmt.Errorf("%w: %d flows (max %d)", ErrTooLarge, len(flows), maxFlows)
	}
	states := 1
	for i, f := range flows {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return nil, fmt.Errorf("optimal: flow %d ports (%d,%d) out of range", i, f.Src, f.Dst)
		}
		if f.Packets < 1 {
			return nil, fmt.Errorf("optimal: flow %d has %d packets", i, f.Packets)
		}
		if f.Release < 0 {
			return nil, fmt.Errorf("optimal: flow %d released at %d", i, f.Release)
		}
		states *= f.Packets + 1
		if states > maxStates {
			return nil, fmt.Errorf("%w: state space exceeds %d", ErrTooLarge, maxStates)
		}
	}
	cp := make([]Flow, len(flows))
	copy(cp, flows)
	return &Instance{n: n, flows: cp}, nil
}

// stateKey packs remaining packet counts and the current slot.
type stateKey struct {
	rem  [maxFlows]int8
	slot int32
}

// decisions enumerates, for a remaining vector at a slot, every maximal
// matching over the available flows (released and unfinished). Maximal is
// sufficient for optimality: serving more never hurts in this preemptive
// unit-capacity model.
func (in *Instance) decisions(rem []int, slot int64) [][]int {
	var edges []matching.Edge
	edgeFlow := map[matching.Edge][]int{}
	for i, f := range in.flows {
		if rem[i] == 0 || f.Release > slot {
			continue
		}
		e := matching.Edge{Left: f.Src, Right: f.Dst}
		edgeFlow[e] = append(edgeFlow[e], i)
		if len(edgeFlow[e]) == 1 {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	matching.EnumerateMaximal(in.n, edges, func(m []matching.Edge) bool {
		// For each matched edge, any of its flows may transmit; expand the
		// cartesian product (tiny: at most maxFlows alternatives).
		combos := [][]int{nil}
		for _, e := range m {
			var next [][]int
			for _, base := range combos {
				for _, fi := range edgeFlow[e] {
					row := append(append([]int(nil), base...), fi)
					next = append(next, row)
				}
			}
			combos = next
		}
		out = append(out, combos...)
		return true
	})
	if len(out) == 0 {
		out = [][]int{nil}
	}
	return out
}

// MinTotalFCT returns the minimum achievable sum of completion times
// (slots, counted as completionSlot − release + 1 per flow) over all
// preemptive schedules, along with the makespan of an optimal schedule.
func (in *Instance) MinTotalFCT() (totalFCT int64, makespan int64, err error) {
	// Horizon bound: total packets plus the latest release is always
	// sufficient for some schedule; the optimum finishes within it.
	var horizon int64
	for _, f := range in.flows {
		horizon += int64(f.Packets)
		if f.Release > horizon {
			horizon = f.Release
		}
	}
	horizon += int64(len(in.flows)) // slack for release gaps

	memo := map[stateKey][2]int64{}
	rem := make([]int, len(in.flows))
	for i, f := range in.flows {
		rem[i] = f.Packets
	}

	var solve func(rem []int, slot int64) (int64, int64)
	solve = func(rem []int, slot int64) (int64, int64) {
		allDone := true
		for _, r := range rem {
			if r > 0 {
				allDone = false
				break
			}
		}
		if allDone {
			return 0, slot
		}
		if slot >= horizon*2 {
			return math.MaxInt64 / 4, slot // should be unreachable
		}
		key := stateKey{slot: int32(slot)}
		for i, r := range rem {
			key.rem[i] = int8(r)
		}
		if v, ok := memo[key]; ok {
			return v[0], v[1]
		}
		best := int64(math.MaxInt64 / 4)
		bestSpan := int64(math.MaxInt64 / 4)
		for _, d := range in.decisions(rem, slot) {
			next := make([]int, len(rem))
			copy(next, rem)
			var completedCost int64
			for _, fi := range d {
				next[fi]--
				if next[fi] == 0 {
					completedCost += slot - in.flows[fi].Release + 1
				}
			}
			sub, span := solve(next, slot+1)
			if completedCost+sub < best || (completedCost+sub == best && span < bestSpan) {
				best = completedCost + sub
				bestSpan = span
			}
		}
		memo[key] = [2]int64{best, bestSpan}
		return best, bestSpan
	}
	total, span := solve(rem, 0)
	if total >= math.MaxInt64/4 {
		return 0, 0, errors.New("optimal: search did not complete within horizon")
	}
	return total, span, nil
}

// MaxCompletedBy returns the maximum number of packets that any schedule
// can deliver within the first `slots` slots.
func (in *Instance) MaxCompletedBy(slots int64) (int64, error) {
	if slots < 0 {
		return 0, fmt.Errorf("optimal: negative horizon %d", slots)
	}
	memo := map[stateKey]int64{}
	rem := make([]int, len(in.flows))
	for i, f := range in.flows {
		rem[i] = f.Packets
	}
	var solve func(rem []int, slot int64) int64
	solve = func(rem []int, slot int64) int64 {
		if slot >= slots {
			return 0
		}
		key := stateKey{slot: int32(slot)}
		for i, r := range rem {
			key.rem[i] = int8(r)
		}
		if v, ok := memo[key]; ok {
			return v
		}
		var best int64
		for _, d := range in.decisions(rem, slot) {
			next := make([]int, len(rem))
			copy(next, rem)
			for _, fi := range d {
				next[fi]--
			}
			if got := int64(len(d)) + solve(next, slot+1); got > best {
				best = got
			}
		}
		memo[key] = best
		return best
	}
	return solve(rem, 0), nil
}

// String renders the instance for diagnostics.
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-port instance:", in.n)
	flows := make([]Flow, len(in.flows))
	copy(flows, in.flows)
	sort.Slice(flows, func(i, j int) bool { return flows[i].Release < flows[j].Release })
	for _, f := range flows {
		fmt.Fprintf(&b, " [%d->%d %dpkt@%d]", f.Src, f.Dst, f.Packets, f.Release)
	}
	return b.String()
}
