package topology

import (
	"errors"
	"testing"
)

func TestPaperTopology(t *testing.T) {
	top := MustNew(Paper())
	if got := top.NumHosts(); got != 144 {
		t.Fatalf("NumHosts = %d, want 144", got)
	}
	if got := top.NumRacks(); got != 12 {
		t.Fatalf("NumRacks = %d, want 12", got)
	}
	if err := top.ValidateNonBlocking(); err != nil {
		t.Fatalf("paper topology should be non-blocking: %v", err)
	}
	if got := top.HostLinkBps(); got != 10e9 {
		t.Fatalf("HostLinkBps = %g, want 10e9", got)
	}
	// 12 hosts x 10G = 120G edge vs 3 x 40G = 120G uplink: exactly 1.
	if got := top.Oversubscription(); got != 1 {
		t.Fatalf("Oversubscription = %g, want 1", got)
	}
}

func TestRackMapping(t *testing.T) {
	top := MustNew(Paper())
	if got := top.RackOf(0); got != 0 {
		t.Fatalf("RackOf(0) = %d", got)
	}
	if got := top.RackOf(11); got != 0 {
		t.Fatalf("RackOf(11) = %d, want 0", got)
	}
	if got := top.RackOf(12); got != 1 {
		t.Fatalf("RackOf(12) = %d, want 1", got)
	}
	if got := top.RackOf(143); got != 11 {
		t.Fatalf("RackOf(143) = %d, want 11", got)
	}
	if !top.SameRack(12, 23) || top.SameRack(11, 12) {
		t.Fatal("SameRack wrong at rack boundary")
	}
	hosts := top.HostsInRack(1)
	if len(hosts) != 12 || hosts[0] != 12 || hosts[11] != 23 {
		t.Fatalf("HostsInRack(1) = %v", hosts)
	}
}

func TestRackOfPanicsOutOfRange(t *testing.T) {
	top := MustNew(Paper())
	for _, host := range []int{-1, 144} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RackOf(%d) did not panic", host)
				}
			}()
			top.RackOf(host)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HostsInRack(-1) did not panic")
		}
	}()
	top.HostsInRack(-1)
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Racks: 1, HostsPerRack: 1, Cores: 0, HostLinkGbps: 1, CoreLinkGbps: 1},
		{Racks: 1, HostsPerRack: 1, Cores: 1, HostLinkGbps: 0, CoreLinkGbps: 1},
		{Racks: -1, HostsPerRack: 1, Cores: 1, HostLinkGbps: 1, CoreLinkGbps: 1},
		{Racks: 1, HostsPerRack: 1, Cores: 1, HostLinkGbps: 1, CoreLinkGbps: 1, CoreHopLatencyS: -1e-6},
	}
	for i, cfg := range bad {
		_, err := New(cfg)
		if err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
		if !errors.Is(err, ErrDimension) {
			t.Fatalf("config %d: error %v is not ErrDimension", i, err)
		}
	}
}

func TestCoreHopLatency(t *testing.T) {
	top := MustNew(Paper())
	if got := top.CoreHopLatency(); got != DefaultCoreHopLatencyS {
		t.Fatalf("CoreHopLatency = %g, want default %g", got, DefaultCoreHopLatencyS)
	}
	if got := top.Config().CoreHopLatencyS; got != DefaultCoreHopLatencyS {
		t.Fatalf("Config().CoreHopLatencyS = %g, want resolved default", got)
	}
	cfg := Paper()
	cfg.CoreHopLatencyS = 5e-6
	top = MustNew(cfg)
	if got := top.CoreHopLatency(); got != 5e-6 {
		t.Fatalf("CoreHopLatency = %g, want 5e-6", got)
	}
	if got := top.RackLatency(3, 3); got != 0 {
		t.Fatalf("RackLatency same rack = %g, want 0", got)
	}
	if got := top.RackLatency(0, 11); got != 5e-6 {
		t.Fatalf("RackLatency cross rack = %g, want 5e-6", got)
	}
}

func TestRackNeighbors(t *testing.T) {
	top := MustNew(Scaled(4, 2))
	got := top.RackNeighbors(2)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("RackNeighbors(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RackNeighbors(2) = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RackNeighbors(-1) did not panic")
		}
	}()
	top.RackNeighbors(-1)
}

func TestScaledLargeHostCounts(t *testing.T) {
	// The sharded simulator targets 4096+ hosts; Scaled must stay
	// non-blocking and well-formed at that size.
	cfg := Scaled(344, 12)
	top := MustNew(cfg)
	if got := top.NumHosts(); got != 4128 {
		t.Fatalf("NumHosts = %d, want 4128", got)
	}
	if err := top.ValidateNonBlocking(); err != nil {
		t.Fatalf("4k-host Scaled blocking: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestBlockingDetection(t *testing.T) {
	cfg := Paper()
	cfg.Cores = 1 // 120G edge vs 40G uplink: blocking
	top := MustNew(cfg)
	if err := top.ValidateNonBlocking(); !errors.Is(err, ErrBlocking) {
		t.Fatalf("blocking fabric not detected: %v", err)
	}
}

func TestScaledKeepsNonBlocking(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 4}, {6, 12}, {12, 12}, {4, 20}} {
		cfg := Scaled(dims[0], dims[1])
		top := MustNew(cfg)
		if err := top.ValidateNonBlocking(); err != nil {
			t.Fatalf("Scaled(%d,%d) blocking: %v", dims[0], dims[1], err)
		}
		if top.NumHosts() != dims[0]*dims[1] {
			t.Fatalf("Scaled(%d,%d) hosts = %d", dims[0], dims[1], top.NumHosts())
		}
	}
}
