// Package topology models the multi-rooted 3-layer tree fabric of the
// paper's evaluation (Figure 4): hosts grouped into racks under ToR
// switches, every ToR connected to every core switch. It provides the
// rack-locality queries the workload generator needs and the
// full-bisection check that justifies abstracting the fabric as one big
// non-blocking switch (paper Section III-A).
package topology

import (
	"errors"
	"fmt"
)

// Config describes a multi-rooted tree fabric.
type Config struct {
	// Racks is the number of ToR switches.
	Racks int
	// HostsPerRack is the number of hosts under each ToR.
	HostsPerRack int
	// Cores is the number of core switches; every ToR links to all of them.
	Cores int
	// HostLinkGbps is the host-to-ToR link capacity.
	HostLinkGbps float64
	// CoreLinkGbps is the ToR-to-core link capacity (per link).
	CoreLinkGbps float64
	// CoreHopLatencyS is the one-way ToR→core→ToR propagation latency in
	// seconds for traffic crossing racks. Intra-rack traffic pays no hop.
	// Zero means "unset" and resolves to DefaultCoreHopLatencyS; it is the
	// conservative-PDES lookahead of the sharded simulator: a cross-rack
	// arrival generated at time t cannot affect another rack before t +
	// CoreHopLatencyS.
	CoreHopLatencyS float64
}

// DefaultCoreHopLatencyS is the inter-rack hop latency used when a Config
// leaves CoreHopLatencyS zero: 25 µs, a typical intra-datacenter ToR-to-ToR
// RTT/2 (propagation plus two switch traversals).
const DefaultCoreHopLatencyS = 25e-6

// Paper returns the evaluation topology of Section V-A: 144 hosts in 12
// racks of 12, 3 cores, 10 Gbps edge links and 40 Gbps core links.
func Paper() Config {
	return Config{
		Racks:        12,
		HostsPerRack: 12,
		Cores:        3,
		HostLinkGbps: 10,
		CoreLinkGbps: 40,
	}
}

// Scaled returns the paper topology shrunk to the given number of racks and
// hosts per rack while keeping the paper's bandwidth ratios (so the fabric
// stays non-blocking). Used by reduced-scale experiment runs.
func Scaled(racks, hostsPerRack int) Config {
	c := Paper()
	c.Racks = racks
	c.HostsPerRack = hostsPerRack
	// Keep core capacity proportional to the rack's edge demand so the
	// uplinks never become the bottleneck: cores * coreGbps >= hosts * edge.
	need := float64(hostsPerRack) * c.HostLinkGbps
	for float64(c.Cores)*c.CoreLinkGbps < need {
		c.Cores++
	}
	return c
}

// ErrBlocking reports a fabric whose core layer cannot carry the edge
// demand, violating the big-switch abstraction.
var ErrBlocking = errors.New("topology: fabric is not full-bisection")

// ErrDimension reports a Config with zero or negative structural
// dimensions (racks, hosts per rack, cores) or link capacities. New wraps
// it so callers can detect invalid sizing with errors.Is.
var ErrDimension = errors.New("topology: invalid dimension")

// Topology is a validated fabric instance.
type Topology struct {
	cfg Config
}

// New validates the configuration and builds a topology.
func New(cfg Config) (*Topology, error) {
	if cfg.Racks <= 0 || cfg.HostsPerRack <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("%w: non-positive count in %+v", ErrDimension, cfg)
	}
	if cfg.HostLinkGbps <= 0 || cfg.CoreLinkGbps <= 0 {
		return nil, fmt.Errorf("%w: non-positive link capacity in %+v", ErrDimension, cfg)
	}
	if cfg.CoreHopLatencyS < 0 {
		return nil, fmt.Errorf("%w: negative core-hop latency %g", ErrDimension, cfg.CoreHopLatencyS)
	}
	if cfg.CoreHopLatencyS == 0 {
		cfg.CoreHopLatencyS = DefaultCoreHopLatencyS
	}
	return &Topology{cfg: cfg}, nil
}

// MustNew is New that panics on error; for compile-time-constant configs.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the validated configuration.
func (t *Topology) Config() Config { return t.cfg }

// NumHosts returns the total host count.
func (t *Topology) NumHosts() int { return t.cfg.Racks * t.cfg.HostsPerRack }

// NumRacks returns the rack count.
func (t *Topology) NumRacks() int { return t.cfg.Racks }

// RackOf returns the rack index of a host. It panics on out-of-range host
// ids, which indicate a workload-generation bug.
func (t *Topology) RackOf(host int) int {
	if host < 0 || host >= t.NumHosts() {
		panic(fmt.Sprintf("topology: host %d out of range [0,%d)", host, t.NumHosts()))
	}
	return host / t.cfg.HostsPerRack
}

// HostsInRack returns the host ids under the given rack.
func (t *Topology) HostsInRack(rack int) []int {
	if rack < 0 || rack >= t.cfg.Racks {
		panic(fmt.Sprintf("topology: rack %d out of range [0,%d)", rack, t.cfg.Racks))
	}
	hosts := make([]int, t.cfg.HostsPerRack)
	base := rack * t.cfg.HostsPerRack
	for i := range hosts {
		hosts[i] = base + i
	}
	return hosts
}

// SameRack reports whether two hosts share a ToR.
func (t *Topology) SameRack(a, b int) bool { return t.RackOf(a) == t.RackOf(b) }

// HostLinkBps returns the host access-link capacity in bits per second —
// the per-port service rate of the big-switch abstraction.
func (t *Topology) HostLinkBps() float64 { return t.cfg.HostLinkGbps * 1e9 }

// Oversubscription returns the ratio of worst-case rack edge demand to the
// rack's aggregate uplink capacity. A value <= 1 means the fabric is
// rearrangeably non-blocking at the rack level.
func (t *Topology) Oversubscription() float64 {
	edge := float64(t.cfg.HostsPerRack) * t.cfg.HostLinkGbps
	uplink := float64(t.cfg.Cores) * t.cfg.CoreLinkGbps
	return edge / uplink
}

// ValidateNonBlocking confirms the big-switch abstraction holds: the core
// layer can absorb every rack's full edge demand, so the only bottlenecks
// are the sender and receiver access links.
func (t *Topology) ValidateNonBlocking() error {
	if over := t.Oversubscription(); over > 1 {
		return fmt.Errorf("%w: oversubscription %.3f > 1 (%d x %g Gbps hosts vs %d x %g Gbps uplinks)",
			ErrBlocking, over, t.cfg.HostsPerRack, t.cfg.HostLinkGbps, t.cfg.Cores, t.cfg.CoreLinkGbps)
	}
	return nil
}

// CoreHopLatency returns the one-way inter-rack propagation latency in
// seconds (CoreHopLatencyS resolved against its default). It is the
// conservative lookahead of the sharded simulator: no event generated in a
// rack at time t can reach another rack before t + CoreHopLatency.
func (t *Topology) CoreHopLatency() float64 { return t.cfg.CoreHopLatencyS }

// RackLatency returns the propagation latency in seconds between two racks:
// zero within a rack, CoreHopLatency across racks. In the multi-rooted tree
// every ToR reaches every other ToR in exactly one core hop, so the
// inter-rack latency matrix is uniform.
func (t *Topology) RackLatency(a, b int) float64 {
	t.checkRack(a)
	t.checkRack(b)
	if a == b {
		return 0
	}
	return t.cfg.CoreHopLatencyS
}

// RackNeighbors returns the racks adjacent to the given rack through the
// core layer — all other racks, since every ToR connects to every core
// switch. The slice is freshly allocated and sorted ascending.
func (t *Topology) RackNeighbors(rack int) []int {
	t.checkRack(rack)
	out := make([]int, 0, t.cfg.Racks-1)
	for r := 0; r < t.cfg.Racks; r++ {
		if r != rack {
			out = append(out, r)
		}
	}
	return out
}

func (t *Topology) checkRack(rack int) {
	if rack < 0 || rack >= t.cfg.Racks {
		panic(fmt.Sprintf("topology: rack %d out of range [0,%d)", rack, t.cfg.Racks))
	}
}
