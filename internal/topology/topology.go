// Package topology models the multi-rooted 3-layer tree fabric of the
// paper's evaluation (Figure 4): hosts grouped into racks under ToR
// switches, every ToR connected to every core switch. It provides the
// rack-locality queries the workload generator needs and the
// full-bisection check that justifies abstracting the fabric as one big
// non-blocking switch (paper Section III-A).
package topology

import (
	"errors"
	"fmt"
)

// Config describes a multi-rooted tree fabric.
type Config struct {
	// Racks is the number of ToR switches.
	Racks int
	// HostsPerRack is the number of hosts under each ToR.
	HostsPerRack int
	// Cores is the number of core switches; every ToR links to all of them.
	Cores int
	// HostLinkGbps is the host-to-ToR link capacity.
	HostLinkGbps float64
	// CoreLinkGbps is the ToR-to-core link capacity (per link).
	CoreLinkGbps float64
}

// Paper returns the evaluation topology of Section V-A: 144 hosts in 12
// racks of 12, 3 cores, 10 Gbps edge links and 40 Gbps core links.
func Paper() Config {
	return Config{
		Racks:        12,
		HostsPerRack: 12,
		Cores:        3,
		HostLinkGbps: 10,
		CoreLinkGbps: 40,
	}
}

// Scaled returns the paper topology shrunk to the given number of racks and
// hosts per rack while keeping the paper's bandwidth ratios (so the fabric
// stays non-blocking). Used by reduced-scale experiment runs.
func Scaled(racks, hostsPerRack int) Config {
	c := Paper()
	c.Racks = racks
	c.HostsPerRack = hostsPerRack
	// Keep core capacity proportional to the rack's edge demand so the
	// uplinks never become the bottleneck: cores * coreGbps >= hosts * edge.
	need := float64(hostsPerRack) * c.HostLinkGbps
	for float64(c.Cores)*c.CoreLinkGbps < need {
		c.Cores++
	}
	return c
}

// ErrBlocking reports a fabric whose core layer cannot carry the edge
// demand, violating the big-switch abstraction.
var ErrBlocking = errors.New("topology: fabric is not full-bisection")

// Topology is a validated fabric instance.
type Topology struct {
	cfg Config
}

// New validates the configuration and builds a topology.
func New(cfg Config) (*Topology, error) {
	if cfg.Racks <= 0 || cfg.HostsPerRack <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("topology: non-positive dimension in %+v", cfg)
	}
	if cfg.HostLinkGbps <= 0 || cfg.CoreLinkGbps <= 0 {
		return nil, fmt.Errorf("topology: non-positive link capacity in %+v", cfg)
	}
	return &Topology{cfg: cfg}, nil
}

// MustNew is New that panics on error; for compile-time-constant configs.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the validated configuration.
func (t *Topology) Config() Config { return t.cfg }

// NumHosts returns the total host count.
func (t *Topology) NumHosts() int { return t.cfg.Racks * t.cfg.HostsPerRack }

// NumRacks returns the rack count.
func (t *Topology) NumRacks() int { return t.cfg.Racks }

// RackOf returns the rack index of a host. It panics on out-of-range host
// ids, which indicate a workload-generation bug.
func (t *Topology) RackOf(host int) int {
	if host < 0 || host >= t.NumHosts() {
		panic(fmt.Sprintf("topology: host %d out of range [0,%d)", host, t.NumHosts()))
	}
	return host / t.cfg.HostsPerRack
}

// HostsInRack returns the host ids under the given rack.
func (t *Topology) HostsInRack(rack int) []int {
	if rack < 0 || rack >= t.cfg.Racks {
		panic(fmt.Sprintf("topology: rack %d out of range [0,%d)", rack, t.cfg.Racks))
	}
	hosts := make([]int, t.cfg.HostsPerRack)
	base := rack * t.cfg.HostsPerRack
	for i := range hosts {
		hosts[i] = base + i
	}
	return hosts
}

// SameRack reports whether two hosts share a ToR.
func (t *Topology) SameRack(a, b int) bool { return t.RackOf(a) == t.RackOf(b) }

// HostLinkBps returns the host access-link capacity in bits per second —
// the per-port service rate of the big-switch abstraction.
func (t *Topology) HostLinkBps() float64 { return t.cfg.HostLinkGbps * 1e9 }

// Oversubscription returns the ratio of worst-case rack edge demand to the
// rack's aggregate uplink capacity. A value <= 1 means the fabric is
// rearrangeably non-blocking at the rack level.
func (t *Topology) Oversubscription() float64 {
	edge := float64(t.cfg.HostsPerRack) * t.cfg.HostLinkGbps
	uplink := float64(t.cfg.Cores) * t.cfg.CoreLinkGbps
	return edge / uplink
}

// ValidateNonBlocking confirms the big-switch abstraction holds: the core
// layer can absorb every rack's full edge demand, so the only bottlenecks
// are the sender and receiver access links.
func (t *Topology) ValidateNonBlocking() error {
	if over := t.Oversubscription(); over > 1 {
		return fmt.Errorf("%w: oversubscription %.3f > 1 (%d x %g Gbps hosts vs %d x %g Gbps uplinks)",
			ErrBlocking, over, t.cfg.HostsPerRack, t.cfg.HostLinkGbps, t.cfg.Cores, t.cfg.CoreLinkGbps)
	}
	return nil
}
