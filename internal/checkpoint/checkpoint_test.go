package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"basrpt/internal/metrics"
	"basrpt/internal/stats"
	"basrpt/internal/workload"
)

func sampleState() *State {
	return &State{
		ConfigDigest:      "0123456789abcdef",
		SimTime:           1.25,
		NextID:            42,
		NextSample:        1.3,
		HasNextCompletion: true,
		NextCompletion:    1.2500001,
		HasPending:        true,
		PendingArrival:    workload.Arrival{Time: 1.26, Src: 3, Dst: 7, Size: 1e6},
		ArrivedFlows:      120,
		CompletedFlows:    118,
		ArrivedBytes:      3.5e8,
		DepartedBytes:     3.4e8,
		FCTSum:            0.875,
		FCT:               metrics.FCTState{Classes: []metrics.FCTClassState{{Class: 0, Count: 2, Sum: 0.5, Max: 0.3, Samples: []float64{0.2, 0.3}}}},
		Throughput:        metrics.ThroughputState{BucketSeconds: 0.1, Buckets: []float64{1e6, 2e6}, Total: 3e6},
		QueueSeries:       metrics.Series{Times: []float64{0, 0.1}, Values: []float64{0, 1500}},
		Decision:          []int64{3, 9, 11},
		Sched:             &SchedState{Rounds: 7, GrantsLost: 1, HasRNG: true, RNG: stats.RNGState{State: 99, Inc: 3}},
		Stream:            &StreamState{NextWindow: 1.5, FlushedDeparted: 3e8, FlushedCompleted: 100, FlushedFCTSum: 0.8},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
	// Encoding is deterministic: same state, same bytes.
	data2, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: got %v, want ErrFormat", err)
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], SchemaVersion+1)
	// Re-seal the CRC so the schema check, not the CRC check, fires.
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	if _, err := Decode(data); !errors.Is(err, ErrSchema) {
		t.Fatalf("future schema: got %v, want ErrSchema", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit.
	data[headerLen+5] ^= 0x20
	if _, err := Decode(data); !errors.Is(err, ErrCRC) {
		t.Fatalf("bit flip: got %v, want ErrCRC", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 7, headerLen + trailerLen - 1, len(data) - 1, len(data) - 20} {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrFormat) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrFormat", n, err)
		}
	}
	// Trailing garbage is also a framing error, not silently ignored.
	if _, err := Decode(append(append([]byte(nil), data...), 0xFF)); !errors.Is(err, ErrFormat) {
		t.Fatalf("trailing byte: got %v, want ErrFormat", err)
	}
}

func TestDecodeRejectsMalformedPayload(t *testing.T) {
	// Hand-build an envelope whose payload is valid per CRC but not JSON.
	payload := []byte("not json at all")
	data := append([]byte(nil), magic[:]...)
	data = binary.LittleEndian.AppendUint32(data, SchemaVersion)
	data = binary.LittleEndian.AppendUint32(data, uint32(len(payload)))
	data = append(data, payload...)
	data = binary.LittleEndian.AppendUint32(data, crc32.ChecksumIEEE(data))
	if _, err := Decode(data); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage payload: got %v, want ErrFormat", err)
	}
}
