package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzCheckpointLoad throws arbitrary bytes at Decode. The invariants:
// never panic, and anything Decode accepts must survive a re-Encode
// (i.e. acceptance implies a structurally valid State).
func FuzzCheckpointLoad(f *testing.F) {
	good, err := Encode(sampleState())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(good[:len(good)-1])
	// Valid envelope, hostile payload.
	hostile := append([]byte(nil), magic[:]...)
	hostile = binary.LittleEndian.AppendUint32(hostile, SchemaVersion)
	payload := []byte(`{"decision":[1e308,-1e308],"table":{"n":-5}}`)
	hostile = binary.LittleEndian.AppendUint32(hostile, uint32(len(payload)))
	hostile = append(hostile, payload...)
	hostile = binary.LittleEndian.AppendUint32(hostile, crc32.ChecksumIEEE(hostile))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("Decode returned nil state without error")
		}
		if _, err := Encode(st); err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
	})
}
