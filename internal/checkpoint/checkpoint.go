// Package checkpoint defines the deterministic on-disk snapshot format
// for a fabric simulation: a schema-versioned, CRC-guarded envelope
// around a JSON payload capturing every piece of simulator state that
// cannot be re-derived from the run configuration — VOQ heaps in array
// order, event-calendar entries with their FIFO tie-break counters, RNG
// stream positions, float accumulators verbatim.
//
// The contract is bit-for-bit resumability: restoring a checkpoint into a
// freshly-constructed simulator with the identical configuration and then
// running to the horizon produces a Result and JSONL trace byte-identical
// to the uninterrupted run's. Everything derived (scheduler candidate
// indexes, throughput rates, port aggregates already stored) is rebuilt
// or carried verbatim accordingly; nothing is recomputed if recomputation
// could diverge below the printable-float level.
//
// Layout:
//
//	offset 0  : 8-byte magic "BASRPTCK"
//	offset 8  : uint32 LE schema version
//	offset 12 : uint32 LE payload length
//	offset 16 : JSON payload
//	trailer   : uint32 LE CRC-32 (IEEE) over all preceding bytes
//
// Mismatched magic or truncation is ErrFormat, an unknown schema is
// ErrSchema, a failed CRC is ErrCRC, and restoring into a simulator whose
// configuration digest differs from the checkpoint's is ErrConfigMismatch
// — four distinct, explicitly distinguishable failure modes.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/workload"
)

// SchemaVersion is the current payload schema. Bump it whenever the
// State layout changes incompatibly; Decode rejects other versions.
const SchemaVersion = 1

var magic = [8]byte{'B', 'A', 'S', 'R', 'P', 'T', 'C', 'K'}

const (
	headerLen  = 16 // magic + schema + payload length
	trailerLen = 4  // CRC-32
)

// Typed failure modes, distinguishable with errors.Is.
var (
	ErrFormat         = errors.New("checkpoint: malformed envelope")
	ErrSchema         = errors.New("checkpoint: unsupported schema version")
	ErrCRC            = errors.New("checkpoint: CRC mismatch")
	ErrConfigMismatch = errors.New("checkpoint: configuration does not match")
)

// SchedState is the scheduler-side state the fabric must carry across a
// resume: cumulative distributed-arbitration counters and, for randomized
// disciplines, the decision RNG position.
type SchedState struct {
	Rounds     int64          `json:"rounds,omitempty"`
	GrantsLost int64          `json:"grantsLost,omitempty"`
	HasRNG     bool           `json:"hasRng,omitempty"`
	RNG        stats.RNGState `json:"rng,omitempty"`
}

// StreamState carries the streaming-results window trackers: the
// cumulative totals already flushed at the last window boundary, from
// which the next flush computes its deltas.
type StreamState struct {
	NextWindow       float64 `json:"nextWindow"`
	FlushedDeparted  float64 `json:"flushedDeparted"`
	FlushedCompleted int     `json:"flushedCompleted"`
	FlushedFCTSum    float64 `json:"flushedFctSum"`
}

// State is the full serialized simulator. Field-by-field it mirrors
// fabricsim.Sim's mutable state; the fabricsim package owns the capture
// and restore logic, this package owns the format.
type State struct {
	// ConfigDigest fingerprints the run configuration (topology, horizon,
	// scheduler, seeds, fault schedule). Resume verifies it before
	// touching anything else.
	ConfigDigest string `json:"configDigest"`

	SimTime    float64 `json:"simTime"`
	NextID     int64   `json:"nextId"`
	NextSample float64 `json:"nextSample"`

	// NextCompletion is meaningful only when HasNextCompletion; +Inf ("no
	// selected flow completes on its own") does not survive JSON, so it is
	// flag-encoded.
	HasNextCompletion bool    `json:"hasNextCompletion,omitempty"`
	NextCompletion    float64 `json:"nextCompletion,omitempty"`

	HasPending     bool             `json:"hasPending,omitempty"`
	PendingArrival workload.Arrival `json:"pendingArrival,omitempty"`

	ArrivedFlows   int     `json:"arrivedFlows"`
	CompletedFlows int     `json:"completedFlows"`
	ArrivedBytes   float64 `json:"arrivedBytes"`
	DepartedBytes  float64 `json:"departedBytes"`
	FCTSum         float64 `json:"fctSum"`

	Stream *StreamState `json:"stream,omitempty"`

	FaultCounters metrics.FaultCounters   `json:"faultCounters,omitempty"`
	FCT           metrics.FCTState        `json:"fct"`
	Throughput    metrics.ThroughputState `json:"throughput"`

	QueueSeries        metrics.Series `json:"queueSeries"`
	TotalBacklogSeries metrics.Series `json:"totalBacklogSeries"`
	MaxPortSeries      metrics.Series `json:"maxPortSeries"`

	Table flow.TableState `json:"table"`

	// Decision is the current matching as flow IDs, resolved back to
	// pointers against the restored table.
	Decision []int64 `json:"decision,omitempty"`

	PoolFree   int   `json:"poolFree,omitempty"`
	PoolReuses int64 `json:"poolReuses,omitempty"`

	Generator *workload.GeneratorState `json:"generator,omitempty"`
	Injector  *faults.InjectorState    `json:"injector,omitempty"`
	Fallback  *sched.FallbackState     `json:"fallback,omitempty"`
	Sched     *SchedState              `json:"sched,omitempty"`

	Tracer   *obs.TracerState  `json:"tracer,omitempty"`
	Registry obs.RegistryState `json:"registry"`
}

// Encode serializes st into the enveloped format.
func Encode(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	if len(payload) > int(^uint32(0)) {
		return nil, fmt.Errorf("checkpoint: encode: payload too large (%d bytes)", len(payload))
	}
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, SchemaVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// Decode validates the envelope and unmarshals the payload. The CRC is
// checked before the payload is parsed, so a truncated or bit-flipped
// file fails with ErrCRC or ErrFormat rather than a JSON syntax error
// deep inside a half-valid payload.
func Decode(data []byte) (*State, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrFormat, len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:8])
	}
	schema := binary.LittleEndian.Uint32(data[8:12])
	if schema != SchemaVersion {
		return nil, fmt.Errorf("%w: file has schema %d, this build reads %d", ErrSchema, schema, SchemaVersion)
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[12:16]))
	if len(data) != headerLen+payloadLen+trailerLen {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file holds %d",
			ErrFormat, payloadLen, len(data)-headerLen-trailerLen)
	}
	body := data[:headerLen+payloadLen]
	want := binary.LittleEndian.Uint32(data[headerLen+payloadLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: computed %#x, trailer says %#x", ErrCRC, got, want)
	}
	var st State
	if err := json.Unmarshal(body[headerLen:], &st); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrFormat, err)
	}
	return &st, nil
}
