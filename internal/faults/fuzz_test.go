package faults

import "testing"

// FuzzFaultSchedule: for arbitrary seeds and parameters, Generate either
// rejects the parameters or produces a schedule whose windows are
// non-negative, inside the horizon, and non-overlapping per class — and
// regenerating with the same parameters reproduces it exactly.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), 10.0, 3, 1, 0.05, 0.5)
	f.Add(uint64(99), 0.001, 16, 8, 0.0, 0.0)
	f.Add(uint64(0), 500.0, 0, 5, 0.9, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, horizon float64, nLink, nOutage int, loss, degraded float64) {
		if nLink > 1024 || nOutage > 1024 {
			t.Skip("fault counts beyond any realistic schedule")
		}
		p := Params{
			Seed:           seed,
			Horizon:        horizon,
			Ports:          8,
			LinkFaults:     nLink,
			Outages:        nOutage,
			PacketLossProb: loss,
			DegradedProb:   degraded,
		}
		s, err := Generate(p)
		if err != nil {
			return // invalid params rejected, nothing to check
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated schedule violates invariants: %v\nparams: %+v", err, p)
		}
		s2, err := Generate(p)
		if err != nil {
			t.Fatalf("regeneration failed: %v", err)
		}
		if err := s2.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(s2.LinkFaults) != len(s.LinkFaults) || len(s2.Outages) != len(s.Outages) {
			t.Fatalf("regeneration not deterministic: %+v vs %+v", s, s2)
		}
		for i := range s.LinkFaults {
			if s.LinkFaults[i] != s2.LinkFaults[i] {
				t.Fatalf("link fault %d differs across regenerations", i)
			}
		}
		for i := range s.Outages {
			if s.Outages[i] != s2.Outages[i] {
				t.Fatalf("outage %d differs across regenerations", i)
			}
		}
	})
}
