package faults

import (
	"fmt"

	"basrpt/internal/stats"
)

// InjectorState is the serializable position of an injector's loss
// streams. The schedule itself (windows, probabilities, seed) is part of
// the run configuration and is re-derived on resume; only the RNG
// positions are genuine state — they advance with every loss draw.
type InjectorState struct {
	LossRNG  stats.RNGState `json:"lossRng"`
	GrantRNG stats.RNGState `json:"grantRng"`
}

// StateSnapshot captures the injector's stream positions.
func (in *Injector) StateSnapshot() InjectorState {
	return InjectorState{
		LossRNG:  in.lossRNG.State(),
		GrantRNG: in.grantRNG.State(),
	}
}

// RestoreState rewinds the loss streams to a captured position so the
// resumed run draws the same loss sequence the uninterrupted run would.
func (in *Injector) RestoreState(st InjectorState) error {
	if err := in.lossRNG.RestoreState(st.LossRNG); err != nil {
		return fmt.Errorf("faults: restore loss stream: %w", err)
	}
	if err := in.grantRNG.RestoreState(st.GrantRNG); err != nil {
		return fmt.Errorf("faults: restore grant stream: %w", err)
	}
	return nil
}
