// Package faults is the deterministic fault-injection subsystem: a
// seed-driven generator of fault schedules (link outages and degradations,
// scheduler/control-plane outages, packet- and control-message-loss rates)
// and an injector that the simulators query at run time.
//
// The paper's queue evolution (Eq. 1) carries an explicit loss term L(t)
// that an ideal run never exercises, and the Section IV-C
// distributed-implementability argument presumes request/grant messages
// that can be lost or delayed. This package makes both failure regimes
// injectable so experiments can measure how the disciplines degrade — and
// it does so deterministically: the same Params produce a byte-identical
// Schedule and the same injector draws, so every fault run is replayable
// for debugging.
//
// Concurrency contract: a Schedule is immutable after Generate and may be
// shared across goroutines, but an Injector holds RNG state for its loss
// draws and must not be — construct one Injector per simulation. The
// multi-seed harness (internal/runner) relies on this split: concurrent
// replicates each generate their own schedule from a derived seed and wrap
// it in a private injector.
package faults

import (
	"fmt"
	"math"
	"sort"

	"basrpt/internal/obs"
	"basrpt/internal/stats"
)

// Window is one half-open fault interval [Start, End) in simulated seconds.
type Window struct {
	Start float64
	End   float64
}

// Duration returns End − Start.
func (w Window) Duration() float64 { return w.End - w.Start }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// LinkFault is one access-link fault: for the window, port's full-duplex
// access link runs at RateFraction of its nominal rate (0 = hard down).
type LinkFault struct {
	Window
	Port int
	// RateFraction is the surviving fraction of the link rate in [0, 1).
	RateFraction float64
}

// Params parameterizes schedule generation. Zero values select the
// documented defaults; counts of zero disable that fault class.
type Params struct {
	// Seed drives every random draw; the same seed yields a byte-identical
	// schedule.
	Seed uint64
	// Horizon is the simulated horizon in seconds the faults must fit in.
	Horizon float64
	// Ports is the number of fabric ports link faults can hit.
	Ports int

	// LinkFaults is the number of link-fault windows to place.
	LinkFaults int
	// MeanLinkFaultDuration is the mean of the (exponential, clamped)
	// fault-duration draw. Default: Horizon/20.
	MeanLinkFaultDuration float64
	// DegradedProb is the probability a link fault degrades the link
	// (RateFraction drawn in [0.25, 0.75]) instead of killing it.
	// Default 0.5.
	DegradedProb float64

	// Outages is the number of scheduler/control-plane outage windows.
	Outages int
	// MeanOutageDuration is the mean outage-duration draw.
	// Default: Horizon/20.
	MeanOutageDuration float64

	// PacketLossProb is the per-scheduled-packet Bernoulli loss rate the
	// slotted switch applies (Eq. 1's L(t)). Must be in [0, 1).
	PacketLossProb float64
	// GrantLossProb is the per-proposal control-message loss rate of the
	// distributed request/grant arbitration. Must be in [0, 1).
	GrantLossProb float64
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MeanLinkFaultDuration == 0 {
		p.MeanLinkFaultDuration = p.Horizon / 20
	}
	if p.MeanOutageDuration == 0 {
		p.MeanOutageDuration = p.Horizon / 20
	}
	if p.DegradedProb == 0 {
		p.DegradedProb = 0.5
	}
	return p
}

// Schedule is a fully materialized fault plan. It is pure data: generating
// it is separate from injecting it, so one schedule can be replayed
// against several schedulers for an apples-to-apples comparison.
type Schedule struct {
	Seed    uint64
	Horizon float64

	// LinkFaults is sorted by Start and globally disjoint, so the faults
	// on any single link never overlap.
	LinkFaults []LinkFault
	// Outages is sorted by Start and disjoint.
	Outages []Window

	PacketLossProb float64
	GrantLossProb  float64
}

// activeLo/activeHi bound the fraction of the horizon faults are placed
// in, leaving a fault-free prefix (the recovery metric's baseline) and a
// fault-free suffix (room to recover).
const (
	activeLo = 0.1
	activeHi = 0.9
)

// Generate derives a fault schedule from params. It is deterministic:
// equal Params yield byte-identical Schedules. Windows are guaranteed
// non-negative, inside [0, Horizon], and disjoint within their class
// (link faults are globally disjoint, hence disjoint per link).
func Generate(p Params) (*Schedule, error) {
	p = p.withDefaults()
	if p.Horizon <= 0 || math.IsNaN(p.Horizon) || math.IsInf(p.Horizon, 0) {
		return nil, fmt.Errorf("faults: invalid horizon %g", p.Horizon)
	}
	if p.LinkFaults < 0 || p.Outages < 0 {
		return nil, fmt.Errorf("faults: negative fault count (%d link, %d outage)", p.LinkFaults, p.Outages)
	}
	if p.LinkFaults > 0 && p.Ports <= 0 {
		return nil, fmt.Errorf("faults: %d link faults need a positive port count, got %d", p.LinkFaults, p.Ports)
	}
	if p.MeanLinkFaultDuration <= 0 || p.MeanOutageDuration <= 0 {
		return nil, fmt.Errorf("faults: non-positive mean duration")
	}
	if p.DegradedProb < 0 || p.DegradedProb > 1 {
		return nil, fmt.Errorf("faults: degraded probability %g outside [0, 1]", p.DegradedProb)
	}
	if p.PacketLossProb < 0 || p.PacketLossProb >= 1 {
		return nil, fmt.Errorf("faults: packet loss probability %g outside [0, 1)", p.PacketLossProb)
	}
	if p.GrantLossProb < 0 || p.GrantLossProb >= 1 {
		return nil, fmt.Errorf("faults: grant loss probability %g outside [0, 1)", p.GrantLossProb)
	}

	s := &Schedule{
		Seed:           p.Seed,
		Horizon:        p.Horizon,
		PacketLossProb: p.PacketLossProb,
		GrantLossProb:  p.GrantLossProb,
	}
	// Independent streams per fault class so adding outages never perturbs
	// the link-fault draws of the same seed.
	root := stats.NewRNG(p.Seed)
	linkRNG := root.Split()
	outageRNG := root.Split()

	for _, w := range placeWindows(linkRNG, p.LinkFaults, p.Horizon, p.MeanLinkFaultDuration) {
		lf := LinkFault{Window: w, Port: linkRNG.Intn(p.Ports)}
		if linkRNG.Float64() < p.DegradedProb {
			lf.RateFraction = 0.25 + 0.5*linkRNG.Float64()
		}
		s.LinkFaults = append(s.LinkFaults, lf)
	}
	s.Outages = placeWindows(outageRNG, p.Outages, p.Horizon, p.MeanOutageDuration)
	return s, nil
}

// placeWindows returns count disjoint windows inside the horizon's active
// band, sorted by start time. Each window lives in its own equal slice of
// the band, which makes disjointness structural rather than statistical —
// no rejection sampling, so generation cost is O(count) for any seed.
func placeWindows(rng *stats.RNG, count int, horizon, meanDur float64) []Window {
	if count <= 0 {
		return nil
	}
	lo := activeLo * horizon
	segLen := (activeHi - activeLo) * horizon / float64(count)
	out := make([]Window, 0, count)
	for i := 0; i < count; i++ {
		dur := rng.Exp(1 / meanDur)
		if maxDur := 0.8 * segLen; dur > maxDur {
			dur = maxDur
		}
		if minDur := 0.01 * segLen; dur < minDur {
			dur = minDur
		}
		segStart := lo + float64(i)*segLen
		start := segStart + rng.Float64()*(segLen-dur)
		out = append(out, Window{Start: start, End: start + dur})
	}
	return out
}

// Validate re-checks the structural invariants Generate guarantees; the
// fuzz target and the determinism tests call it.
func (s *Schedule) Validate() error {
	if s.Horizon <= 0 {
		return fmt.Errorf("faults: schedule horizon %g", s.Horizon)
	}
	check := func(kind string, w Window) error {
		if w.Duration() <= 0 {
			return fmt.Errorf("faults: %s window [%g, %g) has non-positive duration", kind, w.Start, w.End)
		}
		if w.Start < 0 || w.End > s.Horizon {
			return fmt.Errorf("faults: %s window [%g, %g) outside horizon %g", kind, w.Start, w.End, s.Horizon)
		}
		return nil
	}
	for i, lf := range s.LinkFaults {
		if err := check("link-fault", lf.Window); err != nil {
			return err
		}
		if lf.Port < 0 {
			return fmt.Errorf("faults: link fault on negative port %d", lf.Port)
		}
		if lf.RateFraction < 0 || lf.RateFraction >= 1 {
			return fmt.Errorf("faults: link fault rate fraction %g outside [0, 1)", lf.RateFraction)
		}
		if i > 0 && lf.Start < s.LinkFaults[i-1].End {
			return fmt.Errorf("faults: link faults %d and %d overlap", i-1, i)
		}
	}
	for i, w := range s.Outages {
		if err := check("outage", w); err != nil {
			return err
		}
		if i > 0 && w.Start < s.Outages[i-1].End {
			return fmt.Errorf("faults: outages %d and %d overlap", i-1, i)
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing at all.
func (s *Schedule) Empty() bool {
	return len(s.LinkFaults) == 0 && len(s.Outages) == 0 &&
		s.PacketLossProb == 0 && s.GrantLossProb == 0
}

// FirstFaultStart returns the earliest fault-window start, or +Inf when
// the schedule has no windows.
func (s *Schedule) FirstFaultStart() float64 {
	first := math.Inf(1)
	for _, lf := range s.LinkFaults {
		first = math.Min(first, lf.Start)
	}
	for _, w := range s.Outages {
		first = math.Min(first, w.Start)
	}
	return first
}

// LastFaultEnd returns the latest fault-window end, or −Inf when the
// schedule has no windows.
func (s *Schedule) LastFaultEnd() float64 {
	last := math.Inf(-1)
	for _, lf := range s.LinkFaults {
		last = math.Max(last, lf.End)
	}
	for _, w := range s.Outages {
		last = math.Max(last, w.End)
	}
	return last
}

// String summarizes the schedule for report headers.
func (s *Schedule) String() string {
	return fmt.Sprintf("faults(seed=%d: %d link faults, %d outages, pkt-loss %g, grant-loss %g)",
		s.Seed, len(s.LinkFaults), len(s.Outages), s.PacketLossProb, s.GrantLossProb)
}

// Injector answers the simulators' runtime queries against a schedule.
// Construct one fresh Injector per run: the Bernoulli loss draws consume
// internal RNG state, so sharing an injector across runs would couple
// their loss processes. Not safe for concurrent use.
type Injector struct {
	s          *Schedule
	boundaries []float64 // sorted unique window starts/ends
	lossRNG    *stats.RNG
	grantRNG   *stats.RNG

	// Observability counters (nil no-ops until SetRegistry). The draws are
	// pure functions of the RNG streams, so counting them never perturbs
	// the loss processes.
	cPktDrop   *obs.Counter
	cGrantDrop *obs.Counter
}

// NewInjector prepares a schedule for injection. The loss streams are
// seeded from the schedule's seed, so two injectors over the same
// schedule make identical draws.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		panic("faults: NewInjector on nil schedule")
	}
	in := &Injector{s: s}
	var ts []float64
	for _, lf := range s.LinkFaults {
		ts = append(ts, lf.Start, lf.End)
	}
	for _, w := range s.Outages {
		ts = append(ts, w.Start, w.End)
	}
	sort.Float64s(ts)
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			in.boundaries = append(in.boundaries, t)
		}
	}
	root := stats.NewRNG(s.Seed ^ 0x6661756c74730a) // distinct from Generate's stream
	in.lossRNG = root.Split()
	in.grantRNG = root.Split()
	return in
}

// Schedule returns the underlying schedule.
func (in *Injector) Schedule() *Schedule { return in.s }

// SetRegistry attaches observability counters for the Bernoulli loss
// draws ("faults.packets_dropped", "faults.grants_dropped"). A nil
// registry detaches them.
func (in *Injector) SetRegistry(r *obs.Registry) {
	in.cPktDrop = r.Counter("faults.packets_dropped")
	in.cGrantDrop = r.Counter("faults.grants_dropped")
}

// NextBoundaryAfter returns the earliest fault-window start or end
// strictly after t — the next instant the fault state changes and the
// fabric must reschedule.
func (in *Injector) NextBoundaryAfter(t float64) (float64, bool) {
	i := sort.SearchFloat64s(in.boundaries, t)
	for i < len(in.boundaries) && in.boundaries[i] <= t {
		i++
	}
	if i >= len(in.boundaries) {
		return 0, false
	}
	return in.boundaries[i], true
}

// LinkRateFraction returns the surviving fraction of port's access-link
// rate at time t: 1 when healthy, the fault's RateFraction inside a fault
// window.
func (in *Injector) LinkRateFraction(port int, t float64) float64 {
	for _, lf := range in.s.LinkFaults {
		if lf.Port == port && lf.Contains(t) {
			return lf.RateFraction
		}
		if lf.Start > t {
			break // sorted by start; nothing later can contain t
		}
	}
	return 1
}

// SchedulerDown reports whether the centralized scheduler is unreachable
// at time t.
func (in *Injector) SchedulerDown(t float64) bool {
	for _, w := range in.s.Outages {
		if w.Contains(t) {
			return true
		}
		if w.Start > t {
			break
		}
	}
	return false
}

// TransitionsAt counts the fault windows starting and ending exactly at
// t — the counter deltas the fabric records when it processes a fault
// boundary event.
func (in *Injector) TransitionsAt(t float64) (linkStarts, linkEnds, outageStarts, outageEnds int) {
	for _, lf := range in.s.LinkFaults {
		if lf.Start == t {
			linkStarts++
		}
		if lf.End == t {
			linkEnds++
		}
	}
	for _, w := range in.s.Outages {
		if w.Start == t {
			outageStarts++
		}
		if w.End == t {
			outageEnds++
		}
	}
	return
}

// DropPacket draws the next packet-loss Bernoulli: true means the
// scheduled packet is lost in flight and stays in its VOQ (Eq. 1's L(t)).
func (in *Injector) DropPacket() bool {
	drop := in.s.PacketLossProb > 0 && in.lossRNG.Float64() < in.s.PacketLossProb
	if drop {
		in.cPktDrop.Inc()
	}
	return drop
}

// DropGrant draws the next control-message-loss Bernoulli for the
// distributed arbitration: true means the request/grant exchange is lost
// and the proposing host must retry, costing an arbitration round.
func (in *Injector) DropGrant() bool {
	drop := in.s.GrantLossProb > 0 && in.grantRNG.Float64() < in.s.GrantLossProb
	if drop {
		in.cGrantDrop.Inc()
	}
	return drop
}
