package faults

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func testParams(seed uint64) Params {
	return Params{
		Seed:           seed,
		Horizon:        10,
		Ports:          8,
		LinkFaults:     4,
		Outages:        2,
		PacketLossProb: 0.05,
		GrantLossProb:  0.02,
	}
}

// TestGenerateDeterministic: the same params yield a byte-identical
// schedule, and the injectors over it make identical draws.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	ia, ib := NewInjector(a), NewInjector(b)
	for i := 0; i < 1000; i++ {
		if ia.DropPacket() != ib.DropPacket() || ia.DropGrant() != ib.DropGrant() {
			t.Fatalf("loss draw %d diverged between equal injectors", i)
		}
	}
}

// TestGenerateSeedsDiffer: different seeds move the windows (sanity that
// the seed actually drives the draws).
func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(testParams(1))
	b, _ := Generate(testParams(2))
	if reflect.DeepEqual(a.LinkFaults, b.LinkFaults) {
		t.Fatal("different seeds produced identical link faults")
	}
}

// TestScheduleInvariants: for arbitrary seeds the generated windows are
// inside the horizon, positive, and disjoint per class (link faults are
// globally disjoint, so in particular disjoint per link).
func TestScheduleInvariants(t *testing.T) {
	f := func(seed uint64, nf, no uint8) bool {
		p := Params{
			Seed:       seed,
			Horizon:    5,
			Ports:      4,
			LinkFaults: int(nf % 16),
			Outages:    int(no % 8),
		}
		s, err := Generate(p)
		if err != nil {
			return false
		}
		if len(s.LinkFaults) != p.LinkFaults || len(s.Outages) != p.Outages {
			return false
		}
		for _, lf := range s.LinkFaults {
			if lf.Port < 0 || lf.Port >= p.Ports {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateRejectsInvalid: parameter validation.
func TestGenerateRejectsInvalid(t *testing.T) {
	for name, p := range map[string]Params{
		"zero horizon":      {Horizon: 0, LinkFaults: 1, Ports: 2},
		"negative horizon":  {Horizon: -1},
		"nan horizon":       {Horizon: math.NaN()},
		"negative counts":   {Horizon: 1, LinkFaults: -1},
		"faults no ports":   {Horizon: 1, LinkFaults: 1, Ports: 0},
		"packet loss >= 1":  {Horizon: 1, PacketLossProb: 1},
		"negative pkt loss": {Horizon: 1, PacketLossProb: -0.1},
		"grant loss >= 1":   {Horizon: 1, GrantLossProb: 1.5},
		"degraded prob > 1": {Horizon: 1, DegradedProb: 1.1},
		"negative mean dur": {Horizon: 1, MeanLinkFaultDuration: -2},
		"negative mean out": {Horizon: 1, MeanOutageDuration: -2},
	} {
		if _, err := Generate(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestInjectorBoundaries: NextBoundaryAfter walks exactly the sorted set
// of window edges, and the fault state only changes across boundaries.
func TestInjectorBoundaries(t *testing.T) {
	s, err := Generate(testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	want := 2 * (len(s.LinkFaults) + len(s.Outages)) // edges may coincide, so this is an upper bound
	seen := 0
	prev := math.Inf(-1)
	t0 := 0.0
	for {
		b, ok := in.NextBoundaryAfter(t0)
		if !ok {
			break
		}
		if b <= prev || b <= t0 {
			t.Fatalf("boundary %g not strictly increasing after %g", b, t0)
		}
		if b < 0 || b > s.Horizon {
			t.Fatalf("boundary %g outside horizon", b)
		}
		prev, t0 = b, b
		if seen++; seen > want {
			t.Fatalf("more boundaries than window edges (%d > %d)", seen, want)
		}
	}
	if seen == 0 {
		t.Fatal("no boundaries for a schedule with windows")
	}
}

// TestLinkRateFraction: inside a fault window the port's fraction matches
// the fault; outside (and for other ports) it is 1.
func TestLinkRateFraction(t *testing.T) {
	s := &Schedule{
		Seed:    1,
		Horizon: 10,
		LinkFaults: []LinkFault{
			{Window: Window{Start: 1, End: 2}, Port: 0, RateFraction: 0},
			{Window: Window{Start: 4, End: 6}, Port: 1, RateFraction: 0.5},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	cases := []struct {
		port int
		t    float64
		want float64
	}{
		{0, 0.5, 1}, {0, 1, 0}, {0, 1.99, 0}, {0, 2, 1},
		{1, 1.5, 1}, {1, 5, 0.5}, {1, 6, 1},
		{2, 5, 1},
	}
	for _, c := range cases {
		if got := in.LinkRateFraction(c.port, c.t); got != c.want {
			t.Errorf("LinkRateFraction(%d, %g) = %g, want %g", c.port, c.t, got, c.want)
		}
	}
}

// TestSchedulerDown: half-open outage windows.
func TestSchedulerDown(t *testing.T) {
	s := &Schedule{Seed: 1, Horizon: 10, Outages: []Window{{Start: 2, End: 3}}}
	in := NewInjector(s)
	for _, c := range []struct {
		t    float64
		want bool
	}{{1.9, false}, {2, true}, {2.5, true}, {3, false}} {
		if got := in.SchedulerDown(c.t); got != c.want {
			t.Errorf("SchedulerDown(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

// TestTransitionsAt counts edges exactly at a boundary instant.
func TestTransitionsAt(t *testing.T) {
	s := &Schedule{
		Seed:       1,
		Horizon:    10,
		LinkFaults: []LinkFault{{Window: Window{Start: 1, End: 2}, Port: 0}},
		Outages:    []Window{{Start: 2, End: 3}},
	}
	in := NewInjector(s)
	ls, le, os, oe := in.TransitionsAt(2)
	if ls != 0 || le != 1 || os != 1 || oe != 0 {
		t.Fatalf("TransitionsAt(2) = %d %d %d %d", ls, le, os, oe)
	}
}

// TestLossRatesApproximate: the Bernoulli streams hit their configured
// rates and disabled streams never fire.
func TestLossRatesApproximate(t *testing.T) {
	s, err := Generate(Params{Seed: 9, Horizon: 1, PacketLossProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if in.DropPacket() {
			drops++
		}
		if in.DropGrant() {
			t.Fatal("grant loss fired with probability 0")
		}
	}
	if rate := float64(drops) / n; math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("packet loss rate %g, want ~0.3", rate)
	}
}

// TestFirstLastFaultWindow: the recovery metric's anchors.
func TestFirstLastFaultWindow(t *testing.T) {
	s, err := Generate(testParams(5))
	if err != nil {
		t.Fatal(err)
	}
	first, last := s.FirstFaultStart(), s.LastFaultEnd()
	if first < activeLo*s.Horizon || last > activeHi*s.Horizon || first >= last {
		t.Fatalf("fault band [%g, %g] outside active band of horizon %g", first, last, s.Horizon)
	}
	empty := &Schedule{Seed: 1, Horizon: 1}
	if !math.IsInf(empty.FirstFaultStart(), 1) || !math.IsInf(empty.LastFaultEnd(), -1) {
		t.Fatal("empty schedule should have infinite fault anchors")
	}
	if !empty.Empty() {
		t.Fatal("empty schedule not Empty()")
	}
}
