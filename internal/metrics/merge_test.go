package metrics

import (
	"testing"

	"basrpt/internal/flow"
)

func TestFCTMerge(t *testing.T) {
	a, b := NewFCT(), NewFCT()
	a.Add(flow.ClassQuery, 0.001)
	a.Add(flow.ClassBackground, 0.010)
	b.Add(flow.ClassQuery, 0.003)
	b.Add(flow.ClassQuery, 0.002)
	a.Merge(b)
	if got := a.Count(flow.ClassQuery); got != 3 {
		t.Fatalf("merged query count = %d, want 3", got)
	}
	if got := a.Count(flow.ClassBackground); got != 1 {
		t.Fatalf("merged background count = %d, want 1", got)
	}
	qs := a.Stats(flow.ClassQuery)
	if qs.MaxMs != 3 {
		t.Fatalf("merged query max = %g ms, want 3", qs.MaxMs)
	}
	// Sample order: a's samples first, then b's in recorded order.
	st := a.StateSnapshot()
	if len(st.Classes) != 2 {
		t.Fatalf("snapshot classes = %d", len(st.Classes))
	}
	q := st.Classes[0]
	want := []float64{0.001, 0.003, 0.002}
	if len(q.Samples) != len(want) {
		t.Fatalf("query samples = %v", q.Samples)
	}
	for i, w := range want {
		if q.Samples[i] != w {
			t.Fatalf("query sample %d = %g, want %g", i, q.Samples[i], w)
		}
	}
}

func TestFCTMergeDeterministicInCallOrder(t *testing.T) {
	// Merging the same per-rack collectors in the same order must be
	// byte-stable (Sum included) across repeated builds.
	build := func() FCTState {
		parts := make([]*FCT, 3)
		for r := range parts {
			parts[r] = NewFCT()
			for j := 0; j < 10; j++ {
				parts[r].Add(flow.ClassQuery, float64(r*17+j)*1e-4+1e-7)
			}
		}
		merged := NewFCT()
		for _, p := range parts {
			merged.Merge(p)
		}
		return merged.StateSnapshot()
	}
	a, b := build(), build()
	if a.Classes[0].Sum != b.Classes[0].Sum || a.Classes[0].Count != b.Classes[0].Count {
		t.Fatalf("merge not deterministic: %+v vs %+v", a.Classes[0], b.Classes[0])
	}
}

func TestFCTMergeRejectsBounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bounded merge did not panic")
		}
	}()
	NewFCT().Merge(NewBoundedFCT(8))
}

func TestThroughputMerge(t *testing.T) {
	a, b := NewThroughput(0.5), NewThroughput(0.5)
	a.AddBytes(0.1, 100)
	b.AddBytes(0.1, 50)
	b.AddBytes(1.4, 200) // extends past a's bucket range
	a.Merge(b)
	if got := a.TotalBytes(); got != 350 {
		t.Fatalf("merged total = %g, want 350", got)
	}
	s := a.SeriesGbps()
	if s.Len() != 3 {
		t.Fatalf("merged buckets = %d, want 3", s.Len())
	}
	if got := s.Values[0]; got != 150*8/0.5/1e9 {
		t.Fatalf("bucket 0 rate = %g", got)
	}
}

func TestThroughputMergeRejectsMismatchedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bucket-width mismatch did not panic")
		}
	}()
	NewThroughput(0.5).Merge(NewThroughput(0.25))
}
