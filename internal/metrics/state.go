package metrics

import (
	"fmt"

	"basrpt/internal/flow"
)

// FCTClassState is one class's serialized collector state: the exact
// running aggregate plus whatever samples are retained (all of them in
// unbounded mode, the bounded tail in streaming mode). Sum and Max are
// stored verbatim — recomputing them from trimmed samples would lose the
// drift a resumed run must reproduce.
type FCTClassState struct {
	Class   int       `json:"class"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples,omitempty"`
}

// FCTState is the full FCT collector state, classes in the fixed
// Query/Background/Other order.
type FCTState struct {
	Cap     int             `json:"cap,omitempty"`
	Classes []FCTClassState `json:"classes,omitempty"`
}

// StateSnapshot captures the collector for checkpointing.
func (f *FCT) StateSnapshot() FCTState {
	st := FCTState{Cap: f.cap}
	for _, c := range []flow.Class{flow.ClassQuery, flow.ClassBackground, flow.ClassOther} {
		a := f.agg[c]
		if a == nil || a.count == 0 {
			continue
		}
		st.Classes = append(st.Classes, FCTClassState{
			Class:   int(c),
			Count:   a.count,
			Sum:     a.sum,
			Max:     a.max,
			Samples: append([]float64(nil), f.samples[c]...),
		})
	}
	return st
}

// RestoreFCT rebuilds a collector from a snapshot, validating the
// aggregate/sample consistency a live collector guarantees.
func RestoreFCT(st FCTState) (*FCT, error) {
	if st.Cap < 0 {
		return nil, fmt.Errorf("metrics: restore: negative FCT cap %d", st.Cap)
	}
	f := NewBoundedFCT(st.Cap)
	for _, cs := range st.Classes {
		c := flow.Class(cs.Class)
		if _, dup := f.agg[c]; dup {
			return nil, fmt.Errorf("metrics: restore: class %d appears twice", cs.Class)
		}
		if cs.Count <= 0 {
			return nil, fmt.Errorf("metrics: restore: class %d count %d", cs.Class, cs.Count)
		}
		if st.Cap == 0 && int64(len(cs.Samples)) != cs.Count {
			return nil, fmt.Errorf("metrics: restore: unbounded class %d holds %d samples, header claims %d",
				cs.Class, len(cs.Samples), cs.Count)
		}
		if st.Cap > 0 && (len(cs.Samples) == 0 || int64(len(cs.Samples)) > cs.Count) {
			return nil, fmt.Errorf("metrics: restore: bounded class %d holds %d samples for count %d",
				cs.Class, len(cs.Samples), cs.Count)
		}
		f.agg[c] = &classAgg{count: cs.Count, sum: cs.Sum, max: cs.Max}
		f.samples[c] = append([]float64(nil), cs.Samples...)
	}
	return f, nil
}

// ThroughputState is the serialized throughput meter: bucket totals and
// the running sum verbatim.
type ThroughputState struct {
	BucketSeconds float64   `json:"bucketSeconds"`
	Buckets       []float64 `json:"buckets,omitempty"`
	Total         float64   `json:"total"`
}

// StateSnapshot captures the meter for checkpointing.
func (m *Throughput) StateSnapshot() ThroughputState {
	return ThroughputState{
		BucketSeconds: m.bucketSeconds,
		Buckets:       append([]float64(nil), m.buckets...),
		Total:         m.total,
	}
}

// RestoreThroughput rebuilds a meter from a snapshot.
func RestoreThroughput(st ThroughputState) (*Throughput, error) {
	if st.BucketSeconds <= 0 {
		return nil, fmt.Errorf("metrics: restore: throughput bucket width %g <= 0", st.BucketSeconds)
	}
	return &Throughput{
		bucketSeconds: st.BucketSeconds,
		buckets:       append([]float64(nil), st.Buckets...),
		total:         st.Total,
	}, nil
}
