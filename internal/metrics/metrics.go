// Package metrics implements the paper's three evaluation metrics
// (Section V-A): flow completion time with per-class mean and 99th
// percentile, global throughput in bytes leaving the fabric, and
// queue-length time series with a macro-scale stability verdict.
package metrics

import (
	"fmt"
	"sort"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// FCT accumulates flow completion times (seconds) per flow class. The
// default collector keeps every sample (exact percentiles, memory grows
// with the horizon); NewBoundedFCT keeps running aggregates plus a bounded
// sample tail for streaming long-horizon runs.
type FCT struct {
	samples map[flow.Class][]float64
	agg     map[flow.Class]*classAgg
	cap     int // 0: unbounded; >0: retain at most this many samples per class
}

// classAgg is the running per-class aggregate, maintained on every Add so
// mean/max/total survive sample trimming (and checkpointing) exactly.
type classAgg struct {
	count int64
	sum   float64
	max   float64
}

// NewFCT returns an empty, unbounded collector.
func NewFCT() *FCT {
	return &FCT{
		samples: make(map[flow.Class][]float64),
		agg:     make(map[flow.Class]*classAgg),
	}
}

// NewBoundedFCT returns a collector that retains at most keep samples per
// class (keep <= 0 selects the unbounded collector). Mean, max, and total
// stay exact via running aggregates; P99 degrades to a tail estimate over
// the retained window — the trade streaming mode makes for bounded memory.
func NewBoundedFCT(keep int) *FCT {
	f := NewFCT()
	if keep > 0 {
		f.cap = keep
	}
	return f
}

// Add records one completed flow.
func (f *FCT) Add(class flow.Class, fct float64) {
	a := f.agg[class]
	if a == nil {
		a = &classAgg{}
		f.agg[class] = a
	}
	a.count++
	a.sum += fct
	if fct > a.max {
		a.max = fct
	}
	s := append(f.samples[class], fct)
	if f.cap > 0 && len(s) >= 2*f.cap {
		// Amortized O(1): trim back to cap only after doubling.
		copy(s, s[len(s)-f.cap:])
		s = s[:f.cap]
	}
	f.samples[class] = s
}

// Count returns the number of completions recorded for class (including
// any trimmed away in bounded mode).
func (f *FCT) Count(class flow.Class) int {
	if a := f.agg[class]; a != nil {
		return int(a.count)
	}
	return 0
}

// ClassStats summarizes one flow class, in the units the paper's Table I
// reports (milliseconds).
type ClassStats struct {
	Class   flow.Class
	Count   int
	MeanMs  float64
	P99Ms   float64
	MaxMs   float64
	TotalMs float64
}

// Stats computes the class summary. Zero-valued stats are returned for a
// class with no samples. In bounded mode, mean/max/total come from the
// exact running aggregates while P99 is estimated over the retained tail.
func (f *FCT) Stats(class flow.Class) ClassStats {
	samples := f.samples[class]
	if f.cap > 0 {
		cs := ClassStats{Class: class, Count: f.Count(class)}
		a := f.agg[class]
		if a == nil || a.count == 0 {
			return cs
		}
		sorted := make([]float64, len(samples))
		copy(sorted, samples)
		sort.Float64s(sorted)
		const toMs = 1e3
		cs.MeanMs = a.sum / float64(a.count) * toMs
		if len(sorted) > 0 {
			cs.P99Ms = stats.PercentilesSorted(sorted, 99)[0] * toMs
		}
		cs.MaxMs = a.max * toMs
		cs.TotalMs = a.sum * toMs
		return cs
	}
	cs := ClassStats{Class: class, Count: len(samples)}
	if len(samples) == 0 {
		return cs
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	const toMs = 1e3
	cs.MeanMs = sum / float64(len(sorted)) * toMs
	cs.P99Ms = stats.PercentilesSorted(sorted, 99)[0] * toMs
	cs.MaxMs = sorted[len(sorted)-1] * toMs
	cs.TotalMs = sum * toMs
	return cs
}

// Merge folds another collector's completions into f, class by class in
// the fixed Query/Background/Other order and sample by sample in other's
// recorded order. The sharded simulator merges per-rack collectors in rack
// order on one goroutine, so the merged aggregate (including the
// floating-point Sum and the sample ordering the checkpoint digest hashes)
// is a pure function of the per-rack streams, never of shard grouping.
// Merge panics on bounded collectors: trimmed tails cannot merge exactly,
// and the sharded path only runs unbounded.
func (f *FCT) Merge(other *FCT) {
	if f.cap > 0 || other.cap > 0 {
		panic("metrics: Merge requires unbounded FCT collectors")
	}
	for _, c := range []flow.Class{flow.ClassQuery, flow.ClassBackground, flow.ClassOther} {
		oa := other.agg[c]
		if oa == nil || oa.count == 0 {
			continue
		}
		a := f.agg[c]
		if a == nil {
			a = &classAgg{}
			f.agg[c] = a
		}
		a.count += oa.count
		a.sum += oa.sum
		if oa.max > a.max {
			a.max = oa.max
		}
		f.samples[c] = append(f.samples[c], other.samples[c]...)
	}
}

// Classes returns the classes with at least one sample, in a fixed order.
func (f *FCT) Classes() []flow.Class {
	var out []flow.Class
	for _, c := range []flow.Class{flow.ClassQuery, flow.ClassBackground, flow.ClassOther} {
		if len(f.samples[c]) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Series is a time-indexed sample sequence (queue lengths, throughput,
// Lyapunov values).
type Series struct {
	Times  []float64
	Values []float64
}

// Add appends one sample. Times must be non-decreasing; violations panic
// because they indicate a simulator bug.
func (s *Series) Add(t, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic(fmt.Sprintf("metrics: time went backwards: %g after %g", t, s.Times[n-1]))
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// TrimToTail discards all but the most recent keep samples, amortized:
// the trim only fires once the series has doubled past keep, so streaming
// callers invoking it per window pay O(1) per sample. keep <= 0 is a no-op.
func (s *Series) TrimToTail(keep int) {
	if keep <= 0 || len(s.Times) < 2*keep {
		return
	}
	n := len(s.Times)
	copy(s.Times, s.Times[n-keep:])
	copy(s.Values, s.Values[n-keep:])
	s.Times = s.Times[:keep]
	s.Values = s.Values[:keep]
}

// Last returns the most recent value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Mean returns the average value.
func (s *Series) Mean() float64 { return stats.Mean(s.Values) }

// Max returns the largest value, or 0 when empty.
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Trend classifies the series as stable or growing (DESIGN.md §5); the
// threshold is the minimum growth ratio counted as macro-scale growth.
func (s *Series) Trend(threshold float64) stats.TrendReport {
	return stats.ClassifyTrend(s.Values, threshold)
}

// TailMean returns the mean of the final frac portion of the series — the
// "stable point" the paper reads off Figures 5(b) and 7. frac is clamped
// to (0, 1].
func (s *Series) TailMean(frac float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	start := int(float64(len(s.Values)) * (1 - frac))
	if start >= len(s.Values) {
		start = len(s.Values) - 1
	}
	return stats.Mean(s.Values[start:])
}

// FaultCounters tallies injected fault events over a run (zero-valued for
// fault-free runs). The fabric simulator fills the window counters at
// fault boundaries, the outage-fallback scheduler reports held decisions,
// and the slotted switch and distributed arbitration report losses.
type FaultCounters struct {
	// LinkFaultStarts / LinkFaultEnds count link-fault window boundaries
	// the run actually reached.
	LinkFaultStarts int64
	LinkFaultEnds   int64
	// OutageStarts / OutageEnds count scheduler-outage window boundaries.
	OutageStarts int64
	OutageEnds   int64
	// DecisionsHeld counts scheduling decisions served from the held
	// matching while the scheduler was unreachable.
	DecisionsHeld int64
	// PacketsLost counts scheduled packets dropped in flight (Eq. 1 L(t)).
	PacketsLost int64
	// GrantsLost counts lost request/grant control messages.
	GrantsLost int64
}

// Any reports whether the run saw at least one fault event.
func (c FaultCounters) Any() bool {
	return c != FaultCounters{}
}

// Throughput accounts bytes leaving the fabric, bucketed over time so the
// Figure 5(a) series can be reproduced.
type Throughput struct {
	bucketSeconds float64
	buckets       []float64
	total         float64
}

// NewThroughput creates a meter with the given time-bucket width (seconds).
// It panics on a non-positive width.
func NewThroughput(bucketSeconds float64) *Throughput {
	if bucketSeconds <= 0 {
		panic(fmt.Sprintf("metrics: bucket width %g <= 0", bucketSeconds))
	}
	return &Throughput{bucketSeconds: bucketSeconds}
}

// AddBytes records bytes departing at time t (seconds, t >= 0).
func (m *Throughput) AddBytes(t, bytes float64) {
	if bytes <= 0 || t < 0 {
		return
	}
	idx := int(t / m.bucketSeconds)
	for len(m.buckets) <= idx {
		m.buckets = append(m.buckets, 0)
	}
	m.buckets[idx] += bytes
	m.total += bytes
}

// AddRange records bytes that departed uniformly over the interval
// [t0, t1], distributing them across the buckets the interval spans. The
// fabric simulator drains flows in bulk between events, so attributing the
// whole drain to the interval end would skew bucket boundaries by up to one
// event gap.
func (m *Throughput) AddRange(t0, t1, bytes float64) {
	if bytes <= 0 || t1 < t0 || t1 < 0 {
		return
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 == t0 {
		m.AddBytes(t1, bytes)
		return
	}
	rate := bytes / (t1 - t0)
	for t0 < t1 {
		idx := int(t0 / m.bucketSeconds)
		edge := float64(idx+1) * m.bucketSeconds
		if edge <= t0 {
			// t0 sits exactly on (or a rounding hair past) a bucket edge;
			// without this bump the loop would never advance.
			idx++
			edge = float64(idx+1) * m.bucketSeconds
		}
		if edge > t1 {
			edge = t1
		}
		for len(m.buckets) <= idx {
			m.buckets = append(m.buckets, 0)
		}
		part := rate * (edge - t0)
		m.buckets[idx] += part
		m.total += part
		t0 = edge
	}
}

// Merge folds another meter's buckets into m bucket-by-bucket. Both
// meters must share a bucket width (the sharded simulator configures every
// rack cell identically); a mismatch panics as a simulator bug. Like
// FCT.Merge, calling it in fixed rack order keeps the merged totals a pure
// function of the per-rack meters.
func (m *Throughput) Merge(other *Throughput) {
	if m.bucketSeconds != other.bucketSeconds {
		panic(fmt.Sprintf("metrics: Merge bucket width mismatch: %g vs %g",
			m.bucketSeconds, other.bucketSeconds))
	}
	for len(m.buckets) < len(other.buckets) {
		m.buckets = append(m.buckets, 0)
	}
	for i, b := range other.buckets {
		m.buckets[i] += b
	}
	m.total += other.total
}

// TotalBytes returns the total departed volume.
func (m *Throughput) TotalBytes() float64 { return m.total }

// AverageGbps returns the mean rate over the given horizon (seconds).
func (m *Throughput) AverageGbps(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return m.total * 8 / duration / 1e9
}

// SeriesGbps returns the bucketed rate series with bucket midpoints as
// timestamps.
func (m *Throughput) SeriesGbps() Series {
	var s Series
	for i, bytes := range m.buckets {
		mid := (float64(i) + 0.5) * m.bucketSeconds
		s.Add(mid, bytes*8/m.bucketSeconds/1e9)
	}
	return s
}
