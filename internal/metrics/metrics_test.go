package metrics

import (
	"math"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

func TestFCTStats(t *testing.T) {
	f := NewFCT()
	// 100 samples: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		f.Add(flow.ClassQuery, float64(i)/1000)
	}
	cs := f.Stats(flow.ClassQuery)
	if cs.Count != 100 {
		t.Fatalf("Count = %d, want 100", cs.Count)
	}
	if math.Abs(cs.MeanMs-50.5) > 1e-9 {
		t.Fatalf("MeanMs = %g, want 50.5", cs.MeanMs)
	}
	if cs.P99Ms < 99 || cs.P99Ms > 100 {
		t.Fatalf("P99Ms = %g, want in [99, 100]", cs.P99Ms)
	}
	if cs.MaxMs != 100 {
		t.Fatalf("MaxMs = %g, want 100", cs.MaxMs)
	}
}

func TestFCTEmptyClass(t *testing.T) {
	f := NewFCT()
	cs := f.Stats(flow.ClassBackground)
	if cs.Count != 0 || cs.MeanMs != 0 || cs.P99Ms != 0 {
		t.Fatalf("empty class stats = %+v", cs)
	}
}

func TestFCTClasses(t *testing.T) {
	f := NewFCT()
	if got := f.Classes(); len(got) != 0 {
		t.Fatalf("Classes on empty = %v", got)
	}
	f.Add(flow.ClassBackground, 0.1)
	f.Add(flow.ClassQuery, 0.2)
	got := f.Classes()
	if len(got) != 2 || got[0] != flow.ClassQuery || got[1] != flow.ClassBackground {
		t.Fatalf("Classes = %v, want [query background]", got)
	}
	if f.Count(flow.ClassQuery) != 1 {
		t.Fatalf("Count = %d", f.Count(flow.ClassQuery))
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(0, 10)
	s.Add(1, 30)
	s.Add(2, 20)
	if s.Len() != 3 || s.Last() != 20 || s.Max() != 30 {
		t.Fatalf("series = %+v", s)
	}
	if got := s.Mean(); got != 20 {
		t.Fatalf("Mean = %g, want 20", got)
	}
}

func TestSeriesPanicsOnTimeRegression(t *testing.T) {
	var s Series
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	s.Add(4, 1)
}

func TestSeriesTailMean(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i)) // 0..9
	}
	// Last 50%: values 5..9, mean 7.
	if got := s.TailMean(0.5); got != 7 {
		t.Fatalf("TailMean(0.5) = %g, want 7", got)
	}
	// Out-of-range frac falls back to 0.5.
	if got := s.TailMean(2); got != 7 {
		t.Fatalf("TailMean(2) = %g, want 7", got)
	}
	var empty Series
	if got := empty.TailMean(0.5); got != 0 {
		t.Fatalf("empty TailMean = %g", got)
	}
}

func TestSeriesTrendIntegration(t *testing.T) {
	var growing, stable Series
	for i := 0; i < 200; i++ {
		growing.Add(float64(i), float64(i)*50)
		stable.Add(float64(i), 1000)
	}
	if got := growing.Trend(0.5).Verdict; got != stats.TrendGrowing {
		t.Fatalf("growing verdict = %v", got)
	}
	if got := stable.Trend(0.5).Verdict; got != stats.TrendStable {
		t.Fatalf("stable verdict = %v", got)
	}
}

func TestThroughputBuckets(t *testing.T) {
	m := NewThroughput(1)
	m.AddBytes(0.5, 125e6) // 1 Gb in bucket 0
	m.AddBytes(1.5, 250e6) // 2 Gb in bucket 1
	m.AddBytes(1.9, 125e6) // +1 Gb in bucket 1
	if got := m.TotalBytes(); got != 500e6 {
		t.Fatalf("TotalBytes = %g", got)
	}
	s := m.SeriesGbps()
	if s.Len() != 2 {
		t.Fatalf("series len = %d, want 2", s.Len())
	}
	if math.Abs(s.Values[0]-1) > 1e-9 || math.Abs(s.Values[1]-3) > 1e-9 {
		t.Fatalf("series = %v", s.Values)
	}
	if math.Abs(s.Times[0]-0.5) > 1e-9 {
		t.Fatalf("bucket midpoint = %g, want 0.5", s.Times[0])
	}
	if got := m.AverageGbps(2); math.Abs(got-2) > 1e-9 {
		t.Fatalf("AverageGbps = %g, want 2", got)
	}
	if got := m.AverageGbps(0); got != 0 {
		t.Fatalf("AverageGbps(0) = %g", got)
	}
}

func TestThroughputIgnoresBadSamples(t *testing.T) {
	m := NewThroughput(1)
	m.AddBytes(-1, 100)
	m.AddBytes(1, 0)
	m.AddBytes(1, -5)
	if m.TotalBytes() != 0 {
		t.Fatalf("bad samples accounted: %g", m.TotalBytes())
	}
}

func TestThroughputPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket width did not panic")
		}
	}()
	NewThroughput(0)
}

func TestAddRangeDistributesAcrossBuckets(t *testing.T) {
	m := NewThroughput(1)
	m.AddRange(0.5, 2.5, 2000) // 1000 B/s over [0.5, 2.5]
	if math.Abs(m.TotalBytes()-2000) > 1e-9 {
		t.Fatalf("TotalBytes = %g", m.TotalBytes())
	}
	s := m.SeriesGbps()
	wantBytes := []float64{500, 1000, 500}
	for i, w := range wantBytes {
		got := s.Values[i] * 1e9 / 8 // back to bytes in a 1s bucket
		if math.Abs(got-w) > 1e-6 {
			t.Fatalf("bucket %d = %g bytes, want %g", i, got, w)
		}
	}
}

func TestAddRangeDegenerate(t *testing.T) {
	m := NewThroughput(1)
	m.AddRange(1, 1, 100) // zero-width interval falls back to a point add
	if m.TotalBytes() != 100 {
		t.Fatalf("TotalBytes = %g", m.TotalBytes())
	}
	m.AddRange(2, 1, 100) // inverted interval ignored
	m.AddRange(0, 1, -5)  // negative bytes ignored
	if m.TotalBytes() != 100 {
		t.Fatalf("TotalBytes after bad adds = %g", m.TotalBytes())
	}
	m.AddRange(-2, 0.5, 50) // clipped at zero
	if math.Abs(m.TotalBytes()-150) > 1e-9 {
		t.Fatalf("TotalBytes after clipped add = %g", m.TotalBytes())
	}
}

// TestAddRangeBoundaryTermination regression-tests the float-rounding spin:
// intervals starting exactly on (or a hair below) a bucket edge must
// terminate and conserve bytes.
func TestAddRangeBoundaryTermination(t *testing.T) {
	m := NewThroughput(0.003)
	total := 0.0
	t0 := 0.0
	for i := 0; i < 10000; i++ {
		t1 := t0 + 0.000690000000001
		m.AddRange(t0, t1, 690)
		total += 690
		t0 = t1
	}
	if math.Abs(m.TotalBytes()-total) > total*1e-9 {
		t.Fatalf("TotalBytes = %g, want %g", m.TotalBytes(), total)
	}
}
