package birkhoff

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"basrpt/internal/stats"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomAdmissible builds a random rate matrix with max line sum about
// target (< 1).
func randomAdmissible(r *stats.RNG, n int, target float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = r.Float64()
		}
	}
	// Scale rows and columns down until within target.
	for iter := 0; iter < 50; iter++ {
		maxSum := MaxLineSum(m)
		if maxSum <= target {
			break
		}
		scale := target / maxSum
		for i := range m {
			for j := range m[i] {
				m[i][j] *= scale
			}
		}
	}
	return m
}

func TestLineSums(t *testing.T) {
	m := [][]float64{
		{0.1, 0.2},
		{0.3, 0.4},
	}
	rows, cols := LineSums(m)
	if !almost(rows[0], 0.3, 1e-12) || !almost(rows[1], 0.7, 1e-12) {
		t.Fatalf("rows = %v", rows)
	}
	if !almost(cols[0], 0.4, 1e-12) || !almost(cols[1], 0.6, 1e-12) {
		t.Fatalf("cols = %v", cols)
	}
	if got := MaxLineSum(m); !almost(got, 0.7, 1e-12) {
		t.Fatalf("MaxLineSum = %g, want 0.7", got)
	}
}

func TestCheckAdmissible(t *testing.T) {
	good := [][]float64{{0.5, 0.4}, {0.4, 0.5}}
	if err := CheckAdmissible(good, 0); err != nil {
		t.Fatalf("admissible matrix rejected: %v", err)
	}
	badRow := [][]float64{{0.9, 0.3}, {0, 0.1}}
	if err := CheckAdmissible(badRow, 0); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("row overload not detected: %v", err)
	}
	badCol := [][]float64{{0.9, 0}, {0.3, 0.1}}
	if err := CheckAdmissible(badCol, 0); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("column overload not detected: %v", err)
	}
	notSquare := [][]float64{{0.1, 0.2}}
	if err := CheckAdmissible(notSquare, 0); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("non-square not detected: %v", err)
	}
	negative := [][]float64{{-0.1, 0}, {0, 0}}
	if err := CheckAdmissible(negative, 0); err == nil {
		t.Fatal("negative entry not detected")
	}
}

func TestCompleteProducesDoublyStochasticDominating(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(6)
		m := randomAdmissible(r, n, 0.8)
		out, err := Complete(m)
		if err != nil {
			return false
		}
		rows, cols := LineSums(out)
		for i := 0; i < n; i++ {
			if !almost(rows[i], 1, 1e-8) || !almost(cols[i], 1, 1e-8) {
				return false
			}
			for j := 0; j < n; j++ {
				if out[i][j] < m[i][j]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteRejectsOverload(t *testing.T) {
	m := [][]float64{{1.5, 0}, {0, 0.5}}
	if _, err := Complete(m); !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("overloaded matrix accepted: %v", err)
	}
}

func TestDecomposeIdentity(t *testing.T) {
	m := [][]float64{{1, 0}, {0, 1}}
	comps, err := Decompose(m, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || !almost(comps[0].Weight, 1, 1e-9) {
		t.Fatalf("identity decomposition = %+v", comps)
	}
	if comps[0].Perm[0] != 0 || comps[0].Perm[1] != 1 {
		t.Fatalf("identity perm = %v", comps[0].Perm)
	}
}

func TestDecomposeUniform(t *testing.T) {
	// The 3x3 uniform doubly stochastic matrix needs 3 permutations of
	// weight 1/3 each (any decomposition has weights summing to 1).
	n := 3
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = 1.0 / 3
		}
	}
	comps, err := Decompose(m, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, c := range comps {
		total += c.Weight
	}
	if !almost(total, 1, 1e-8) {
		t.Fatalf("weights sum to %g, want 1", total)
	}
	back := Reconstruct(n, comps)
	for i := range m {
		for j := range m[i] {
			if !almost(back[i][j], m[i][j], 1e-8) {
				t.Fatalf("reconstruction[%d][%d] = %g, want %g", i, j, back[i][j], m[i][j])
			}
		}
	}
}

func TestDecomposeRejectsNonDS(t *testing.T) {
	m := [][]float64{{0.5, 0.4}, {0.5, 0.5}}
	if _, err := Decompose(m, 1e-9); !errors.Is(err, ErrNotDoublyStochastic) {
		t.Fatalf("non-doubly-stochastic accepted: %v", err)
	}
}

// TestDecomposeReconstructProperty: Complete then Decompose then
// Reconstruct returns the completed matrix for random admissible inputs.
func TestDecomposeReconstructProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(5)
		m := randomAdmissible(r, n, 0.7)
		completed, err := Complete(m)
		if err != nil {
			return false
		}
		comps, err := Decompose(completed, 1e-6)
		if err != nil {
			return false
		}
		// Permutation validity + weight positivity.
		var total float64
		for _, c := range comps {
			if c.Weight <= 0 {
				return false
			}
			total += c.Weight
			seen := make([]bool, n)
			for _, j := range c.Perm {
				if j < 0 || j >= n || seen[j] {
					return false
				}
				seen[j] = true
			}
		}
		if !almost(total, 1, 1e-5) {
			return false
		}
		back := Reconstruct(n, comps)
		for i := range completed {
			for j := range completed[i] {
				if !almost(back[i][j], completed[i][j], 1e-5) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackLowerBound(t *testing.T) {
	m := [][]float64{{0.4, 0.2}, {0.2, 0.4}} // max line sum 0.6, delta 0.4
	if got, want := SlackLowerBound(m), 0.2; !almost(got, want, 1e-12) {
		t.Fatalf("SlackLowerBound = %g, want %g", got, want)
	}
	full := [][]float64{{1, 0}, {0, 1}}
	if got := SlackLowerBound(full); got != 0 {
		t.Fatalf("SlackLowerBound at capacity = %g, want 0", got)
	}
	if got := SlackLowerBound(nil); got != 0 {
		t.Fatalf("SlackLowerBound(nil) = %g, want 0", got)
	}
}

// TestSlackScheduleGuarantee: the randomized schedule's mean service rate
// dominates λ + ε entrywise — the exact property Theorem 1 needs.
func TestSlackScheduleGuarantee(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(4)
		lambda := randomAdmissible(r, n, 0.75)
		comps, eps, err := SlackSchedule(lambda)
		if err != nil || eps <= 0 {
			return false
		}
		rate := Reconstruct(n, comps)
		for i := range lambda {
			for j := range lambda[i] {
				if rate[i][j]+1e-6 < lambda[i][j]+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackScheduleRejectsOverload(t *testing.T) {
	if _, _, err := SlackSchedule([][]float64{{2}}); err == nil {
		t.Fatal("overloaded matrix accepted")
	}
}
