// Package birkhoff implements the doubly-stochastic-matrix machinery the
// paper's stability argument rests on (Section IV-A): admissibility of an
// input-rate matrix under the crossbar constraints (paper Eq. 2),
// completion of an admissible matrix to a doubly stochastic one, the
// Birkhoff–von Neumann decomposition of a doubly stochastic matrix into a
// convex combination of permutation matrices, and the slack ε that appears
// in Theorem 1's backlog bound.
package birkhoff

import (
	"errors"
	"fmt"
	"math"

	"basrpt/internal/matching"
)

// ErrNotAdmissible reports a rate matrix violating the crossbar necessary
// conditions (some row or column sum exceeds 1).
var ErrNotAdmissible = errors.New("birkhoff: rate matrix not admissible")

// ErrNotDoublyStochastic reports a matrix whose line sums are not all 1.
var ErrNotDoublyStochastic = errors.New("birkhoff: matrix not doubly stochastic")

// ErrNotSquare reports a non-square input.
var ErrNotSquare = errors.New("birkhoff: matrix not square")

func validateSquare(m [][]float64) (int, error) {
	n := len(m)
	for i, row := range m {
		if len(row) != n {
			return 0, fmt.Errorf("%w: row %d has %d entries, want %d", ErrNotSquare, i, len(row), n)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("birkhoff: invalid entry m[%d][%d] = %g", i, j, v)
			}
		}
	}
	return n, nil
}

// LineSums returns the row sums and column sums of m.
func LineSums(m [][]float64) (rows, cols []float64) {
	n := len(m)
	rows = make([]float64, n)
	cols = make([]float64, n)
	for i := range m {
		for j, v := range m[i] {
			rows[i] += v
			cols[j] += v
		}
	}
	return rows, cols
}

// MaxLineSum returns the largest row or column sum of m, i.e. the busiest
// port's normalized load.
func MaxLineSum(m [][]float64) float64 {
	rows, cols := LineSums(m)
	var maxSum float64
	for _, v := range rows {
		if v > maxSum {
			maxSum = v
		}
	}
	for _, v := range cols {
		if v > maxSum {
			maxSum = v
		}
	}
	return maxSum
}

// CheckAdmissible verifies paper Eq. (2): every row and column sum of the
// rate matrix is at most 1 (+tol). A nil error means the traffic is within
// network capacity.
func CheckAdmissible(m [][]float64, tol float64) error {
	if _, err := validateSquare(m); err != nil {
		return err
	}
	rows, cols := LineSums(m)
	for i, v := range rows {
		if v > 1+tol {
			return fmt.Errorf("%w: ingress port %d offered load %g > 1", ErrNotAdmissible, i, v)
		}
	}
	for j, v := range cols {
		if v > 1+tol {
			return fmt.Errorf("%w: egress port %d offered load %g > 1", ErrNotAdmissible, j, v)
		}
	}
	return nil
}

// Complete raises entries of an admissible matrix until it is doubly
// stochastic, returning a new matrix M with M >= m entrywise and all line
// sums exactly 1. This is the paper's "by appropriately increasing some of
// the entries of Λ we could get a doubly stochastic matrix M".
func Complete(m [][]float64) ([][]float64, error) {
	n, err := validateSquare(m)
	if err != nil {
		return nil, err
	}
	if err := CheckAdmissible(m, 1e-9); err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		copy(out[i], m[i])
	}
	rows, cols := LineSums(out)
	// Repeatedly pick a deficient row and a deficient column and add mass
	// at their intersection. Each step saturates at least one line, so it
	// terminates within 2n steps.
	const eps = 1e-12
	for {
		ri := -1
		for i, v := range rows {
			if v < 1-eps {
				ri = i
				break
			}
		}
		if ri == -1 {
			break
		}
		cj := -1
		for j, v := range cols {
			if v < 1-eps {
				cj = j
				break
			}
		}
		if cj == -1 {
			// Total row deficit always equals total column deficit, so a
			// deficient row implies a deficient column; reaching here means
			// numeric drift, which we repair by normalizing the row.
			break
		}
		add := math.Min(1-rows[ri], 1-cols[cj])
		out[ri][cj] += add
		rows[ri] += add
		cols[cj] += add
	}
	// Snap tiny residuals.
	for i := range out {
		var s float64
		for _, v := range out[i] {
			s += v
		}
		if d := 1 - s; math.Abs(d) > 0 && math.Abs(d) < 1e-9 {
			out[i][i] += d
			if out[i][i] < 0 {
				out[i][i] = 0
			}
		}
	}
	return out, nil
}

// Component is one term of a Birkhoff decomposition: permutation Perm
// (Perm[i] is the column matched to row i) with convex weight Weight —
// the paper's (M(σ), u(σ)) pair.
type Component struct {
	Perm   []int
	Weight float64
}

// Decompose expresses a doubly stochastic matrix as a convex combination of
// permutation matrices (Birkhoff's theorem). tol bounds both the doubly-
// stochastic check and the terminal residual mass. The weights sum to 1
// (within tol) and the permutations are distinct.
func Decompose(m [][]float64, tol float64) ([]Component, error) {
	n, err := validateSquare(m)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	rows, cols := LineSums(m)
	for i := 0; i < n; i++ {
		if math.Abs(rows[i]-1) > tol || math.Abs(cols[i]-1) > tol {
			return nil, fmt.Errorf("%w: row %d sum %g, col %d sum %g", ErrNotDoublyStochastic, i, rows[i], i, cols[i])
		}
	}
	work := make([][]float64, n)
	for i := range work {
		work[i] = make([]float64, n)
		copy(work[i], m[i])
	}
	var comps []Component
	remaining := 1.0
	// Marcus–Ree: at most n^2 - 2n + 2 permutations are needed.
	maxIter := n*n - 2*n + 2
	if maxIter < 1 {
		maxIter = 1
	}
	for iter := 0; iter <= maxIter && remaining > tol; iter++ {
		perm, ok := matching.PerfectMatchingOnSupport(work, tol/float64(n+1))
		if !ok {
			return nil, fmt.Errorf("birkhoff: no perfect matching on support with %g mass left", remaining)
		}
		theta := math.Inf(1)
		for i, j := range perm {
			if work[i][j] < theta {
				theta = work[i][j]
			}
		}
		if theta <= 0 {
			return nil, errors.New("birkhoff: zero-weight component (numeric breakdown)")
		}
		if theta > remaining {
			theta = remaining
		}
		for i, j := range perm {
			work[i][j] -= theta
			if work[i][j] < 0 {
				work[i][j] = 0
			}
		}
		comps = append(comps, Component{Perm: perm, Weight: theta})
		remaining -= theta
	}
	if remaining > tol {
		return nil, fmt.Errorf("birkhoff: decomposition left %g mass", remaining)
	}
	return comps, nil
}

// Reconstruct sums weight-scaled permutation matrices back into a matrix,
// the inverse of Decompose (up to tolerance). Used by tests and by the
// randomized-schedule construction.
func Reconstruct(n int, comps []Component) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for _, c := range comps {
		for i, j := range c.Perm {
			out[i][j] += c.Weight
		}
	}
	return out
}

// SlackLowerBound returns a guaranteed-achievable ε for Theorem 1: with
// δ = 1 − MaxLineSum(Λ), padding every entry by δ/n keeps the matrix
// admissible, so a randomized schedule exists with R̄ij ≥ λij + δ/n for all
// (i, j). Returns 0 when the matrix is at or beyond capacity.
func SlackLowerBound(m [][]float64) float64 {
	n := len(m)
	if n == 0 {
		return 0
	}
	delta := 1 - MaxLineSum(m)
	if delta <= 0 {
		return 0
	}
	return delta / float64(n)
}

// SlackSchedule builds the randomized stabilizing schedule of Section IV-A:
// it pads Λ by SlackLowerBound, completes to doubly stochastic, and
// decomposes. The returned components are a probability distribution u over
// permutations with Σ u(σ)·M(σ) ≥ Λ + ε entrywise.
func SlackSchedule(lambda [][]float64) (comps []Component, epsilon float64, err error) {
	n, err := validateSquare(lambda)
	if err != nil {
		return nil, 0, err
	}
	if err := CheckAdmissible(lambda, 1e-9); err != nil {
		return nil, 0, err
	}
	epsilon = SlackLowerBound(lambda)
	padded := make([][]float64, n)
	for i := range padded {
		padded[i] = make([]float64, n)
		for j := range padded[i] {
			padded[i][j] = lambda[i][j] + epsilon
		}
	}
	completed, err := Complete(padded)
	if err != nil {
		return nil, 0, fmt.Errorf("complete padded matrix: %w", err)
	}
	comps, err = Decompose(completed, 1e-7)
	if err != nil {
		return nil, 0, fmt.Errorf("decompose completed matrix: %w", err)
	}
	return comps, epsilon, nil
}
