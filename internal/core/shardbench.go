package core

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"basrpt/internal/fabricsim"
	"basrpt/internal/trace"
)

// ShardBenchLoad is the operating point of the shard-scaling benchmark:
// moderate load, so the fabric stays stable at 4k+ hosts while every
// arm still takes tens of thousands of scheduling decisions.
const ShardBenchLoad = 0.5

// ShardBudget is the checked-in floor the CI shard-scaling gate
// enforces (bench_shard_budget.json at the repository root). The
// speedup bound is algorithmic — decomposing the fabric into per-rack
// matchings must beat the fabric-global matching regardless of core
// count — so it applies unconditionally. The parallel bound compares
// the widest decomposed arm against the 2-shard arm and only applies
// on machines with at least 4 CPUs, where worker parallelism can
// actually help; on smaller machines it is recorded but not enforced.
type ShardBudget struct {
	// MinSpeedupAtMaxShards is the minimum decisions/sec ratio of the
	// widest decomposed arm over the centralized (1-shard) arm. Zero or
	// negative disables the check.
	MinSpeedupAtMaxShards float64 `json:"min_speedup_at_max_shards"`
	// MinParallelSpeedup is the minimum decisions/sec ratio of the
	// widest decomposed arm over the 2-shard arm, enforced only when
	// the machine has >= 4 CPUs. Zero or negative disables the check.
	MinParallelSpeedup float64 `json:"min_parallel_speedup"`
}

// ShardBenchRow reports one arm of the shard-scaling benchmark. Wall
// time spans the whole RunShard call — construction included, which is
// honest about the centralized arm's O(hosts²) table — and decisions
// per second divide the run's scheduling decisions by that wall time.
// The JSON tags shape BENCH_shard.json, the scaling artifact CI
// archives per commit.
type ShardBenchRow struct {
	Shards int `json:"shards"`
	// Engine names the determinism family: "centralized" for the
	// 1-shard arm, "decomposed" for every other.
	Engine          string  `json:"engine"`
	Decisions       int64   `json:"decisions"`
	CompletedFlows  int     `json:"completed_flows"`
	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// SpeedupVsCentralized is this arm's decisions/sec over the
	// centralized arm's (1.0 for the centralized arm itself).
	SpeedupVsCentralized float64 `json:"speedup_vs_centralized"`
	// Digest is the run's deterministic digest; every decomposed arm
	// must report the same value (grouping invariance).
	Digest string `json:"digest"`
}

// ShardBenchResult is the shard-scaling comparison across engine arms.
type ShardBenchResult struct {
	Scale Scale           `json:"scale"`
	Load  float64         `json:"load"`
	Hosts int             `json:"hosts"`
	CPUs  int             `json:"cpus"`
	Rows  []ShardBenchRow `json:"rows"`
}

// RunShardBench measures scheduling throughput across shard counts on
// one topology: the centralized engine at 1 shard, then decomposed
// arms doubling from 2 up to maxShards (default 4). All decomposed
// arms must produce identical deterministic digests — the bench fails
// otherwise, making every CI bench run double as a grouping-invariance
// check at scale. load <= 0 selects ShardBenchLoad.
func RunShardBench(scale Scale, load float64, maxShards int) (*ShardBenchResult, error) {
	scale = scale.withDefaults()
	if err := scale.Validate(); err != nil {
		return nil, fmt.Errorf("shard bench: %w", err)
	}
	if load <= 0 {
		load = ShardBenchLoad
	}
	if load >= 1 {
		return nil, fmt.Errorf("shard bench: load %g outside (0, 1)", load)
	}
	if maxShards <= 0 {
		maxShards = 4
	}
	if maxShards < 2 {
		return nil, fmt.Errorf("shard bench: max shards %d < 2 leaves nothing to compare", maxShards)
	}
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	arms := []int{1}
	for s := 2; s <= maxShards; s *= 2 {
		arms = append(arms, s)
	}
	res := &ShardBenchResult{
		Scale: scale,
		Load:  load,
		Hosts: topo.NumHosts(),
		CPUs:  runtime.NumCPU(),
	}
	var decomposedDigest string
	for _, shards := range arms {
		start := time.Now()
		run, err := fabricsim.RunShard(fabricsim.ShardConfig{
			Topology:  topo,
			Scheduler: "fast-basrpt",
			Load:      load,
			Duration:  scale.Duration,
			Seed:      scale.Seed,
			Shards:    shards,
		})
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("shard bench (shards=%d): %w", shards, err)
		}
		if run.Decisions == 0 {
			return nil, fmt.Errorf("shard bench (shards=%d): run took no decisions", shards)
		}
		engine := "decomposed"
		if shards == 1 {
			engine = "centralized"
		}
		digest := run.DeterministicDigest()
		if shards > 1 {
			if decomposedDigest == "" {
				decomposedDigest = digest
			} else if digest != decomposedDigest {
				return nil, fmt.Errorf(
					"shard bench: decomposed digest diverged at shards=%d:\n  %s\n  %s",
					shards, decomposedDigest, digest)
			}
		}
		res.Rows = append(res.Rows, ShardBenchRow{
			Shards:          shards,
			Engine:          engine,
			Decisions:       run.Decisions,
			CompletedFlows:  run.CompletedFlows,
			WallSeconds:     wall,
			DecisionsPerSec: float64(run.Decisions) / wall,
			Digest:          digest,
		})
	}
	base := res.Rows[0].DecisionsPerSec
	for i := range res.Rows {
		res.Rows[i].SpeedupVsCentralized = res.Rows[i].DecisionsPerSec / base
	}
	return res, nil
}

// row returns the bench row at the given shard count, nil if absent.
func (r *ShardBenchResult) row(shards int) *ShardBenchRow {
	for i := range r.Rows {
		if r.Rows[i].Shards == shards {
			return &r.Rows[i]
		}
	}
	return nil
}

// CheckBudget verifies the scaling floors against the checked-in
// budget; the returned error lists each violation (CI fails the build
// on it). Zero or negative bounds disable their checks, and the
// parallel-speedup bound is skipped on machines with fewer than 4 CPUs
// — the algorithmic bound is the one that must hold everywhere.
func (r *ShardBenchResult) CheckBudget(b ShardBudget) error {
	var violations []string
	widest := &r.Rows[len(r.Rows)-1]
	if b.MinSpeedupAtMaxShards > 0 && widest.SpeedupVsCentralized < b.MinSpeedupAtMaxShards {
		violations = append(violations, fmt.Sprintf(
			"shards=%d: %.2fx decisions/sec vs centralized, budget requires >= %.2fx",
			widest.Shards, widest.SpeedupVsCentralized, b.MinSpeedupAtMaxShards))
	}
	if b.MinParallelSpeedup > 0 && r.CPUs >= 4 {
		if two := r.row(2); two != nil && widest.Shards > 2 {
			ratio := widest.DecisionsPerSec / two.DecisionsPerSec
			if ratio < b.MinParallelSpeedup {
				violations = append(violations, fmt.Sprintf(
					"shards=%d: %.2fx decisions/sec vs 2 shards on %d CPUs, budget requires >= %.2fx",
					widest.Shards, ratio, r.CPUs, b.MinParallelSpeedup))
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("shard budget exceeded:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// Render prints the shard-scaling comparison.
func (r *ShardBenchResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Shard scaling — %d hosts at %.0f%% load, %s (%d CPUs)",
			r.Hosts, r.Load*100, r.Scale, r.CPUs),
		Headers: []string{"shards", "engine", "decisions", "completed", "wall s", "dec/s", "speedup", "digest"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.Shards),
			row.Engine,
			fmt.Sprintf("%d", row.Decisions),
			fmt.Sprintf("%d", row.CompletedFlows),
			fmt.Sprintf("%.3f", row.WallSeconds),
			fmt.Sprintf("%.0f", row.DecisionsPerSec),
			fmt.Sprintf("%.2fx", row.SpeedupVsCentralized),
			row.Digest)
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nwall time spans the whole run (construction included); decomposed arms must share one digest\n")
	return b.String()
}
