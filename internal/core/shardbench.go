package core

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"basrpt/internal/fabricsim"
	"basrpt/internal/trace"
)

// ShardBenchLoad is the operating point of the shard-scaling benchmark:
// moderate load, so the fabric stays stable at 4k+ hosts while every
// arm still takes tens of thousands of scheduling decisions.
const ShardBenchLoad = 0.5

// ShardBudget is the checked-in floor the CI shard-scaling gate
// enforces (bench_shard_budget.json at the repository root). The
// speedup bound is algorithmic — decomposing the fabric into per-rack
// matchings must beat the fabric-global matching regardless of core
// count — so it applies unconditionally. The parallel bound compares
// the widest decomposed arm against the 2-shard arm and only applies
// on machines with at least 4 CPUs, where worker parallelism can
// actually help; on smaller machines it is recorded but not enforced.
type ShardBudget struct {
	// MinSpeedupAtMaxShards is the minimum decisions/sec ratio of the
	// widest decomposed arm over the centralized (1-shard) arm. Zero or
	// negative disables the check.
	MinSpeedupAtMaxShards float64 `json:"min_speedup_at_max_shards"`
	// MinParallelSpeedup is the minimum ParallelSpeedup of the widest
	// decomposed arm (its decisions/sec over the 2-shard arm's),
	// enforced only when the machine has >= 4 CPUs. Zero or negative
	// disables the check.
	MinParallelSpeedup float64 `json:"min_parallel_speedup"`
}

// ShardBenchOptions tunes RunShardBench beyond the topology scale.
// The zero value selects every default.
type ShardBenchOptions struct {
	// Load is the per-port offered load; <= 0 selects ShardBenchLoad.
	Load float64
	// MaxShards is the widest decomposed arm (arms double from 2 up to
	// it); <= 0 selects 4.
	MaxShards int
	// CentralizedDuration caps the centralized arm's simulated horizon
	// in seconds — the O(hosts²) fabric-global matching makes that arm
	// ~100x slower in wall time than every decomposed arm combined, and
	// decisions/sec (the compared rate) converges within a fraction of
	// the full horizon. 0 runs the full Scale.Duration; values above it
	// are clamped. Decomposed arms always run the full horizon (their
	// digests are the grouping-invariance gate).
	CentralizedDuration float64
	// BarrierEvery is forwarded to every decomposed arm (see
	// fabricsim.ShardConfig.BarrierEvery); 0 selects the engine default.
	BarrierEvery int
}

// ShardBenchRow reports one arm of the shard-scaling benchmark. Wall
// time spans the whole RunShard call — construction included, which is
// honest about the centralized arm's O(hosts²) table — and decisions
// per second divide the run's scheduling decisions by that wall time.
// The JSON tags shape BENCH_shard.json, the scaling artifact CI
// archives per commit.
type ShardBenchRow struct {
	Shards int `json:"shards"`
	// Engine names the determinism family: "centralized" for the
	// 1-shard arm, "decomposed" for every other.
	Engine          string  `json:"engine"`
	Decisions       int64   `json:"decisions"`
	CompletedFlows  int     `json:"completed_flows"`
	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// DurationSeconds is the arm's simulated horizon — normally the
	// scale's, shorter for a capped centralized arm (rate comparisons
	// stay meaningful; absolute decision counts do not).
	DurationSeconds float64 `json:"duration_seconds"`
	// SpeedupVsCentralized is this arm's decisions/sec over the
	// centralized arm's (1.0 for the centralized arm itself).
	SpeedupVsCentralized float64 `json:"speedup_vs_centralized"`
	// ParallelSpeedup is this arm's decisions/sec over the 2-shard
	// arm's — the multi-core scaling signal the budget gates on, 0 for
	// the centralized arm.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// Digest is the run's deterministic digest; every decomposed arm
	// must report the same value (grouping invariance).
	Digest string `json:"digest"`
	// Imbalance is the decomposed arm's wall-clock attribution report
	// (barriers, windows per barrier, worker pool busy/wait, per-cell
	// skew); nil for the centralized arm.
	Imbalance *fabricsim.ShardImbalance `json:"imbalance,omitempty"`
}

// ShardBenchResult is the shard-scaling comparison across engine arms.
type ShardBenchResult struct {
	Scale Scale           `json:"scale"`
	Load  float64         `json:"load"`
	Hosts int             `json:"hosts"`
	CPUs  int             `json:"cpus"`
	Rows  []ShardBenchRow `json:"rows"`
}

// RunShardBench measures scheduling throughput across shard counts on
// one topology: the centralized engine at 1 shard (optionally on a
// capped horizon — see ShardBenchOptions.CentralizedDuration), then
// decomposed arms doubling from 2 up to MaxShards. All decomposed arms
// must produce identical deterministic digests — the bench fails
// otherwise, making every CI bench run double as a grouping-invariance
// check at scale.
func RunShardBench(scale Scale, opts ShardBenchOptions) (*ShardBenchResult, error) {
	scale = scale.withDefaults()
	if err := scale.Validate(); err != nil {
		return nil, fmt.Errorf("shard bench: %w", err)
	}
	load := opts.Load
	if load <= 0 {
		load = ShardBenchLoad
	}
	if load >= 1 {
		return nil, fmt.Errorf("shard bench: load %g outside (0, 1)", load)
	}
	maxShards := opts.MaxShards
	if maxShards <= 0 {
		maxShards = 4
	}
	if maxShards < 2 {
		return nil, fmt.Errorf("shard bench: max shards %d < 2 leaves nothing to compare", maxShards)
	}
	if opts.CentralizedDuration < 0 {
		return nil, fmt.Errorf("shard bench: centralized duration %g < 0", opts.CentralizedDuration)
	}
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	arms := []int{1}
	for s := 2; s <= maxShards; s *= 2 {
		arms = append(arms, s)
	}
	res := &ShardBenchResult{
		Scale: scale,
		Load:  load,
		Hosts: topo.NumHosts(),
		CPUs:  runtime.NumCPU(),
	}
	var decomposedDigest string
	for _, shards := range arms {
		dur := scale.Duration
		if shards == 1 && opts.CentralizedDuration > 0 && opts.CentralizedDuration < dur {
			dur = opts.CentralizedDuration
		}
		start := time.Now()
		run, err := fabricsim.RunShard(fabricsim.ShardConfig{
			Topology:     topo,
			Scheduler:    "fast-basrpt",
			Load:         load,
			Duration:     dur,
			Seed:         scale.Seed,
			Shards:       shards,
			BarrierEvery: opts.BarrierEvery,
		})
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("shard bench (shards=%d): %w", shards, err)
		}
		if run.Decisions == 0 {
			return nil, fmt.Errorf("shard bench (shards=%d): run took no decisions", shards)
		}
		engine := "decomposed"
		if shards == 1 {
			engine = "centralized"
		}
		digest := run.DeterministicDigest()
		if shards > 1 {
			if decomposedDigest == "" {
				decomposedDigest = digest
			} else if digest != decomposedDigest {
				return nil, fmt.Errorf(
					"shard bench: decomposed digest diverged at shards=%d:\n  %s\n  %s",
					shards, decomposedDigest, digest)
			}
		}
		res.Rows = append(res.Rows, ShardBenchRow{
			Shards:          shards,
			Engine:          engine,
			Decisions:       run.Decisions,
			CompletedFlows:  run.CompletedFlows,
			WallSeconds:     wall,
			DecisionsPerSec: float64(run.Decisions) / wall,
			DurationSeconds: dur,
			Digest:          digest,
			Imbalance:       run.Imbalance,
		})
	}
	base := res.Rows[0].DecisionsPerSec
	var twoShard float64
	if two := res.row(2); two != nil {
		twoShard = two.DecisionsPerSec
	}
	for i := range res.Rows {
		res.Rows[i].SpeedupVsCentralized = res.Rows[i].DecisionsPerSec / base
		if res.Rows[i].Shards > 1 && twoShard > 0 {
			res.Rows[i].ParallelSpeedup = res.Rows[i].DecisionsPerSec / twoShard
		}
	}
	return res, nil
}

// row returns the bench row at the given shard count, nil if absent.
func (r *ShardBenchResult) row(shards int) *ShardBenchRow {
	for i := range r.Rows {
		if r.Rows[i].Shards == shards {
			return &r.Rows[i]
		}
	}
	return nil
}

// check evaluates both floors against a result, returning one message
// per violation. Zero or negative bounds disable their checks, and the
// parallel-speedup bound is skipped on machines with fewer than 4 CPUs
// — the algorithmic bound is the one that must hold everywhere.
func (r *ShardBudget) check(res *ShardBenchResult) []string {
	var violations []string
	widest := &res.Rows[len(res.Rows)-1]
	if r.MinSpeedupAtMaxShards > 0 && widest.SpeedupVsCentralized < r.MinSpeedupAtMaxShards {
		violations = append(violations, fmt.Sprintf(
			"shards=%d: %.2fx decisions/sec vs centralized, budget requires >= %.2fx",
			widest.Shards, widest.SpeedupVsCentralized, r.MinSpeedupAtMaxShards))
	}
	if r.MinParallelSpeedup > 0 && res.CPUs >= 4 && widest.Shards > 2 && widest.ParallelSpeedup > 0 {
		if widest.ParallelSpeedup < r.MinParallelSpeedup {
			violations = append(violations, fmt.Sprintf(
				"shards=%d: %.2fx decisions/sec vs 2 shards on %d CPUs, budget requires >= %.2fx",
				widest.Shards, widest.ParallelSpeedup, res.CPUs, r.MinParallelSpeedup))
		}
	}
	return violations
}

// CheckBudget verifies the scaling floors against the checked-in
// budget; see ShardBudget for which bounds apply where.
func (r *ShardBenchResult) CheckBudget(b ShardBudget) error {
	if violations := b.check(r); len(violations) > 0 {
		return fmt.Errorf("shard budget exceeded:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// Render prints the shard-scaling comparison.
func (r *ShardBenchResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Shard scaling — %d hosts at %.0f%% load, %s (%d CPUs)",
			r.Hosts, r.Load*100, r.Scale, r.CPUs),
		Headers: []string{"shards", "engine", "sim s", "decisions", "wall s", "dec/s", "speedup", "parallel", "win/bar", "wait%", "digest"},
	}
	for _, row := range r.Rows {
		parallel, winbar, wait := "-", "-", "-"
		if row.ParallelSpeedup > 0 {
			parallel = fmt.Sprintf("%.2fx", row.ParallelSpeedup)
		}
		if row.Imbalance != nil {
			winbar = fmt.Sprintf("%.1f", row.Imbalance.WindowsPerBarrier)
			wait = fmt.Sprintf("%.1f%%", 100*row.Imbalance.BarrierWaitFraction)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", row.Shards),
			row.Engine,
			fmt.Sprintf("%g", row.DurationSeconds),
			fmt.Sprintf("%d", row.Decisions),
			fmt.Sprintf("%.3f", row.WallSeconds),
			fmt.Sprintf("%.0f", row.DecisionsPerSec),
			fmt.Sprintf("%.2fx", row.SpeedupVsCentralized),
			parallel, winbar, wait,
			row.Digest)
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nwall time spans the whole run (construction included); decomposed arms must share one digest\n")
	return b.String()
}
