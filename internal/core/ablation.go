package core

import (
	"fmt"
	"math"
	"time"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/trace"
)

// AblationResult is experiment E8: how close fast BASRPT's greedy decision
// comes to exact BASRPT's exhaustive optimum, and what the exhaustive
// search costs — the quantitative version of the paper's Section IV-C
// impracticality argument.
type AblationResult struct {
	N      int
	Trials int
	V      float64

	// IdenticalFraction is the share of trials where the two decisions
	// had equal objective value.
	IdenticalFraction float64
	// MeanGap and MaxGap measure objective(fast) − objective(exact),
	// normalized by the mean absolute exact objective (>= 0 by
	// construction).
	MeanGap float64
	MaxGap  float64
	// ExactMeanTime and FastMeanTime are the average decision latencies.
	ExactMeanTime time.Duration
	FastMeanTime  time.Duration
}

// RunExactVsFast compares the two decision rules on random backlogged
// states of an n-port switch (n must stay within exact BASRPT's limit).
// run.Seed drives the random states.
func RunExactVsFast(n, trials int, v float64, run Run) (*AblationResult, error) {
	if n < 2 || n > sched.DefaultExactMaxPorts {
		return nil, fmt.Errorf("ablation: n = %d outside [2, %d]", n, sched.DefaultExactMaxPorts)
	}
	if trials < 1 {
		return nil, fmt.Errorf("ablation: trials = %d", trials)
	}
	if v < 0 {
		return nil, fmt.Errorf("ablation: negative V %g", v)
	}
	seed := run.withDefaults().Seed
	r := stats.NewRNG(seed)
	exact := sched.NewExactBASRPT(v, 0)
	fast := sched.NewFastBASRPT(v)

	res := &AblationResult{N: n, Trials: trials, V: v}
	var gapSum, exactAbsSum float64
	var exactNs, fastNs int64
	identical := 0
	for trial := 0; trial < trials; trial++ {
		tab := flow.NewTable(n)
		count := 1 + r.Intn(3*n)
		for i := 0; i < count; i++ {
			size := 1 + math.Floor(r.Float64()*1000) + float64(i)*1e-3
			tab.Add(flow.NewFlow(flow.ID(i+1), r.Intn(n), r.Intn(n), flow.ClassOther, size, 0))
		}
		start := time.Now()
		exactDecision := exact.Schedule(tab)
		exactNs += time.Since(start).Nanoseconds()
		start = time.Now()
		fastDecision := fast.Schedule(tab)
		fastNs += time.Since(start).Nanoseconds()

		exactObj := sched.Objective(v, tab, exactDecision)
		fastObj := sched.Objective(v, tab, fastDecision)
		gap := fastObj - exactObj
		if gap < -1e-6*math.Max(1, math.Abs(exactObj)) {
			return nil, fmt.Errorf("ablation: exact worse than fast (%g > %g) — exhaustive search bug", exactObj, fastObj)
		}
		if gap < 0 {
			gap = 0 // summation-order float noise
		}
		if gap <= 1e-9 {
			identical++
		}
		gapSum += gap
		exactAbsSum += math.Abs(exactObj)
	}
	res.IdenticalFraction = float64(identical) / float64(trials)
	norm := exactAbsSum / float64(trials)
	if norm > 0 {
		res.MeanGap = gapSum / float64(trials) / norm
	}
	res.ExactMeanTime = time.Duration(exactNs / int64(trials))
	res.FastMeanTime = time.Duration(fastNs / int64(trials))

	// MaxGap pass with a fresh deterministic stream for reproducibility.
	r = stats.NewRNG(seed)
	var maxGap float64
	for trial := 0; trial < trials; trial++ {
		tab := flow.NewTable(n)
		count := 1 + r.Intn(3*n)
		for i := 0; i < count; i++ {
			size := 1 + math.Floor(r.Float64()*1000) + float64(i)*1e-3
			tab.Add(flow.NewFlow(flow.ID(i+1), r.Intn(n), r.Intn(n), flow.ClassOther, size, 0))
		}
		gap := sched.Objective(v, tab, fast.Schedule(tab)) - sched.Objective(v, tab, exact.Schedule(tab))
		if norm > 0 {
			gap /= norm
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	res.MaxGap = maxGap
	return res, nil
}

// Render prints the ablation summary.
func (r *AblationResult) Render() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Ablation — exact vs fast BASRPT, %d ports, %d random states, V=%g", r.N, r.Trials, r.V),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("identical decisions", fmt.Sprintf("%.1f%%", r.IdenticalFraction*100))
	tbl.AddRow("mean normalized objective gap", fmt.Sprintf("%.4f", r.MeanGap))
	tbl.AddRow("max normalized objective gap", fmt.Sprintf("%.4f", r.MaxGap))
	tbl.AddRow("exact mean decision time", r.ExactMeanTime.String())
	tbl.AddRow("fast mean decision time", r.FastMeanTime.String())
	return tbl.Render() +
		"\npaper: exact BASRPT is factorially expensive; fast BASRPT approximates it with per-decision sorting\n"
}
