package core

import (
	"fmt"
	"strings"

	"basrpt/internal/fabricsim"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// SchedBenchLoad is the default per-port load of the scheduling-core
// benchmark: high enough that the candidate population (and hence the
// from-scratch rebuild cost) is substantial, but still stable.
const SchedBenchLoad = 0.8

// schedBenchScheduler is the toggle surface every index-routed discipline
// exports; the benchmark flips it to build the from-scratch arm.
type schedBenchScheduler interface {
	sched.Scheduler
	SetIncremental(on bool)
}

// SchedBenchRow compares one discipline's incremental candidate index
// against the from-scratch gather-and-sort it replaced, measured on
// byte-identical runs in the same process. The JSON tags shape
// BENCH_sched.json, the perf-trajectory artifact CI archives per commit.
type SchedBenchRow struct {
	Discipline      string  `json:"discipline"`
	Decisions       int64   `json:"decisions"`
	IncrementalSec  float64 `json:"incremental_sec"`
	FromScratchSec  float64 `json:"fromscratch_sec"`
	IncrementalRate float64 `json:"incremental_decisions_per_sec"`
	FromScratchRate float64 `json:"fromscratch_decisions_per_sec"`
	// Speedup is IncrementalRate / FromScratchRate — equivalently the
	// wall-clock ratio, since both arms take the same decision sequence.
	Speedup float64 `json:"speedup"`
}

// SchedBenchResult is the old-vs-new scheduling-core comparison across
// every discipline routed through the incremental index.
type SchedBenchResult struct {
	Scale Scale
	Load  float64
	Rows  []SchedBenchRow
}

// RunSchedBench runs each index-routed discipline twice on the identical
// arrival stream — incremental index on, then forced from-scratch — and
// reports measured decisions/sec for both arms. load <= 0 selects
// SchedBenchLoad. The decision sequences must agree (the incremental core
// is bit-exact, see internal/sched); any divergence in the deterministic
// counters is an error, so a reported speedup always compares equal work.
func RunSchedBench(scale Scale, load float64) (*SchedBenchResult, error) {
	scale = scale.withDefaults()
	if load <= 0 {
		load = SchedBenchLoad
	}
	if load >= 1 {
		return nil, fmt.Errorf("sched bench: load %g outside (0, 1)", load)
	}
	disciplines := []struct {
		name string
		mk   func() schedBenchScheduler
	}{
		{"fast-basrpt", func() schedBenchScheduler { return sched.NewFastBASRPT(DefaultV) }},
		{"srpt", func() schedBenchScheduler { return sched.NewSRPT() }},
		{"maxweight", func() schedBenchScheduler { return sched.NewMaxWeight() }},
		{"threshold", func() schedBenchScheduler { return sched.NewThresholdBacklog(5e6) }},
	}
	res := &SchedBenchResult{Scale: scale, Load: load}
	for _, d := range disciplines {
		inc, err := runFabricQF(scale, d.mk(), load, workload.DefaultQueryByteFraction)
		if err != nil {
			return nil, fmt.Errorf("sched bench %s incremental run: %w", d.name, err)
		}
		old := d.mk()
		old.SetIncremental(false)
		scratch, err := runFabricQF(scale, old, load, workload.DefaultQueryByteFraction)
		if err != nil {
			return nil, fmt.Errorf("sched bench %s from-scratch run: %w", d.name, err)
		}
		if err := sameWork(inc, scratch); err != nil {
			return nil, fmt.Errorf("sched bench %s: arms diverged, speedup would compare unequal work: %w", d.name, err)
		}
		row := SchedBenchRow{
			Discipline:      d.name,
			Decisions:       inc.Decisions,
			IncrementalSec:  float64(inc.SchedNanos) * 1e-9,
			FromScratchSec:  float64(scratch.SchedNanos) * 1e-9,
			IncrementalRate: inc.DecisionsPerSec(),
			FromScratchRate: scratch.DecisionsPerSec(),
		}
		if row.FromScratchRate > 0 {
			row.Speedup = row.IncrementalRate / row.FromScratchRate
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sameWork cross-checks the deterministic counters of the two arms.
func sameWork(a, b *fabricsim.Result) error {
	if a.Decisions != b.Decisions {
		return fmt.Errorf("decision counts %d vs %d", a.Decisions, b.Decisions)
	}
	if a.CompletedFlows != b.CompletedFlows || a.DepartedBytes != b.DepartedBytes {
		return fmt.Errorf("completions %d/%g vs %d/%g",
			a.CompletedFlows, a.DepartedBytes, b.CompletedFlows, b.DepartedBytes)
	}
	return nil
}

// Render prints the per-discipline decision-rate comparison.
func (r *SchedBenchResult) Render() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Scheduling core — incremental vs from-scratch at %.0f%% load, %s", r.Load*100, r.Scale),
		Headers: []string{"discipline", "decisions", "incremental dec/s", "from-scratch dec/s", "speedup"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(row.Discipline,
			fmt.Sprintf("%d", row.Decisions),
			fmt.Sprintf("%.0f", row.IncrementalRate),
			fmt.Sprintf("%.0f", row.FromScratchRate),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nboth arms replay byte-identical decision sequences; speedup compares equal work\n")
	return b.String()
}
