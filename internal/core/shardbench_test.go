package core

import (
	"errors"
	"strings"
	"testing"
)

func TestRunShardBenchSmall(t *testing.T) {
	scale := Scale{Racks: 3, HostsPerRack: 4, Duration: 0.01, Seed: 1}
	res, err := RunShardBench(scale, ShardBenchOptions{Load: 0.6, MaxShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (shards 1, 2, 4)", len(res.Rows))
	}
	if res.Rows[0].Engine != "centralized" || res.Rows[1].Engine != "decomposed" {
		t.Fatalf("engine labels %q, %q", res.Rows[0].Engine, res.Rows[1].Engine)
	}
	if res.Rows[1].Digest != res.Rows[2].Digest {
		t.Fatalf("decomposed digests diverged: %s vs %s", res.Rows[1].Digest, res.Rows[2].Digest)
	}
	if res.Rows[0].Digest == res.Rows[1].Digest {
		t.Fatal("centralized and decomposed digests identical; the families model different physics")
	}
	for _, row := range res.Rows {
		if row.Decisions == 0 || row.DecisionsPerSec <= 0 || row.WallSeconds <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.DurationSeconds != scale.Duration {
			t.Fatalf("uncapped row ran %gs, want %g", row.DurationSeconds, scale.Duration)
		}
	}
	if res.Rows[0].SpeedupVsCentralized != 1 {
		t.Fatalf("centralized speedup = %g, want 1", res.Rows[0].SpeedupVsCentralized)
	}
	// The parallel-speedup field is first-class per decomposed row (1.0
	// by definition at 2 shards) and absent on the centralized arm, and
	// decomposed rows carry the imbalance attribution.
	if res.Rows[0].ParallelSpeedup != 0 || res.Rows[0].Imbalance != nil {
		t.Fatalf("centralized row grew decomposed-only fields: %+v", res.Rows[0])
	}
	if res.Rows[1].ParallelSpeedup != 1 {
		t.Fatalf("2-shard parallel speedup = %g, want 1", res.Rows[1].ParallelSpeedup)
	}
	if res.Rows[2].ParallelSpeedup <= 0 {
		t.Fatalf("widest parallel speedup missing: %+v", res.Rows[2])
	}
	for _, row := range res.Rows[1:] {
		if row.Imbalance == nil || row.Imbalance.Barriers <= 0 || row.Imbalance.WindowsPerBarrier <= 0 {
			t.Fatalf("decomposed row lacks imbalance attribution: %+v", row)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Shard scaling") {
		t.Fatalf("render missing title:\n%s", out)
	}

	// A disabled budget never trips; an absurd floor always does.
	if err := res.CheckBudget(ShardBudget{}); err != nil {
		t.Fatalf("disabled budget tripped: %v", err)
	}
	if err := res.CheckBudget(ShardBudget{MinSpeedupAtMaxShards: 1e9}); err == nil {
		t.Fatal("absurd speedup floor passed")
	}
	// The parallel floor reads the first-class field: forcing it below an
	// absurd bound trips exactly when the machine has >= 4 CPUs.
	err = res.CheckBudget(ShardBudget{MinParallelSpeedup: 1e9})
	if res.CPUs >= 4 && err == nil {
		t.Fatal("absurd parallel floor passed on a multi-core machine")
	}
	if res.CPUs < 4 && err != nil {
		t.Fatalf("parallel floor enforced on a %d-CPU machine: %v", res.CPUs, err)
	}
}

// TestRunShardBenchCentralizedCap pins the -centralized-duration
// behavior: only the 1-shard arm's horizon shrinks, rates stay positive,
// and the decomposed digests are unaffected.
func TestRunShardBenchCentralizedCap(t *testing.T) {
	scale := Scale{Racks: 3, HostsPerRack: 4, Duration: 0.01, Seed: 1}
	full, err := RunShardBench(scale, ShardBenchOptions{Load: 0.6, MaxShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunShardBench(scale, ShardBenchOptions{
		Load: 0.6, MaxShards: 2, CentralizedDuration: scale.Duration / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := capped.Rows[0].DurationSeconds, scale.Duration/4; got != want {
		t.Fatalf("centralized arm ran %gs, want %g", got, want)
	}
	if capped.Rows[0].Decisions >= full.Rows[0].Decisions {
		t.Fatalf("capped centralized arm took %d decisions, full took %d",
			capped.Rows[0].Decisions, full.Rows[0].Decisions)
	}
	if capped.Rows[1].DurationSeconds != scale.Duration {
		t.Fatalf("decomposed arm was capped to %gs", capped.Rows[1].DurationSeconds)
	}
	if capped.Rows[1].Digest != full.Rows[1].Digest {
		t.Fatal("centralized cap changed the decomposed digest")
	}
	// A cap at or above the horizon is a no-op.
	uncapped, err := RunShardBench(scale, ShardBenchOptions{
		Load: 0.6, MaxShards: 2, CentralizedDuration: scale.Duration * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Rows[0].DurationSeconds != scale.Duration {
		t.Fatalf("over-horizon cap clamped to %gs", uncapped.Rows[0].DurationSeconds)
	}
}

func TestRunShardBenchValidation(t *testing.T) {
	if _, err := RunShardBench(Scale{Racks: -1, HostsPerRack: 4, Duration: 0.01, Seed: 1}, ShardBenchOptions{Load: 0.5, MaxShards: 4}); !errors.Is(err, ErrScale) {
		t.Fatalf("negative racks accepted or wrong error: %v", err)
	}
	if _, err := RunShardBench(Scale{Racks: 2, HostsPerRack: 4, Duration: 0.01, Seed: 1}, ShardBenchOptions{Load: 1.5, MaxShards: 4}); err == nil {
		t.Fatal("load 1.5 accepted")
	}
	if _, err := RunShardBench(Scale{Racks: 2, HostsPerRack: 4, Duration: 0.01, Seed: 1}, ShardBenchOptions{Load: 0.5, MaxShards: 1}); err == nil {
		t.Fatal("max shards 1 accepted")
	}
	if _, err := RunShardBench(Scale{Racks: 2, HostsPerRack: 4, Duration: 0.01, Seed: 1}, ShardBenchOptions{CentralizedDuration: -1}); err == nil {
		t.Fatal("negative centralized duration accepted")
	}
}
