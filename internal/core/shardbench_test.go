package core

import (
	"errors"
	"strings"
	"testing"
)

func TestRunShardBenchSmall(t *testing.T) {
	scale := Scale{Racks: 3, HostsPerRack: 4, Duration: 0.01, Seed: 1}
	res, err := RunShardBench(scale, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (shards 1, 2, 4)", len(res.Rows))
	}
	if res.Rows[0].Engine != "centralized" || res.Rows[1].Engine != "decomposed" {
		t.Fatalf("engine labels %q, %q", res.Rows[0].Engine, res.Rows[1].Engine)
	}
	if res.Rows[1].Digest != res.Rows[2].Digest {
		t.Fatalf("decomposed digests diverged: %s vs %s", res.Rows[1].Digest, res.Rows[2].Digest)
	}
	if res.Rows[0].Digest == res.Rows[1].Digest {
		t.Fatal("centralized and decomposed digests identical; the families model different physics")
	}
	for _, row := range res.Rows {
		if row.Decisions == 0 || row.DecisionsPerSec <= 0 || row.WallSeconds <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
	}
	if res.Rows[0].SpeedupVsCentralized != 1 {
		t.Fatalf("centralized speedup = %g, want 1", res.Rows[0].SpeedupVsCentralized)
	}
	if out := res.Render(); !strings.Contains(out, "Shard scaling") {
		t.Fatalf("render missing title:\n%s", out)
	}

	// A disabled budget never trips; an absurd floor always does.
	if err := res.CheckBudget(ShardBudget{}); err != nil {
		t.Fatalf("disabled budget tripped: %v", err)
	}
	if err := res.CheckBudget(ShardBudget{MinSpeedupAtMaxShards: 1e9}); err == nil {
		t.Fatal("absurd speedup floor passed")
	}
}

func TestRunShardBenchValidation(t *testing.T) {
	if _, err := RunShardBench(Scale{Racks: -1, HostsPerRack: 4, Duration: 0.01, Seed: 1}, 0.5, 4); !errors.Is(err, ErrScale) {
		t.Fatalf("negative racks accepted or wrong error: %v", err)
	}
	if _, err := RunShardBench(Scale{Racks: 2, HostsPerRack: 4, Duration: 0.01, Seed: 1}, 1.5, 4); err == nil {
		t.Fatal("load 1.5 accepted")
	}
	if _, err := RunShardBench(Scale{Racks: 2, HostsPerRack: 4, Duration: 0.01, Seed: 1}, 0.5, 1); err == nil {
		t.Fatal("max shards 1 accepted")
	}
}
