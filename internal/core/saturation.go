package core

import (
	"fmt"
	"strings"

	"basrpt/internal/fabricsim"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// runFabric executes one scheduler over the scale's topology at the given
// load with the default query byte share. The arrival stream depends only
// on (scale, load), so different schedulers see identical workloads.
func runFabric(scale Scale, scheduler sched.Scheduler, load float64) (*fabricsim.Result, error) {
	return runFabricQF(scale, scheduler, load, workload.DefaultQueryByteFraction)
}

// runFabricQF is runFabric with an explicit query byte fraction — the knob
// that controls how aggressively small cross-rack flows preempt the
// rack-local elephants, i.e. how fast SRPT's instability builds.
func runFabricQF(scale Scale, scheduler sched.Scheduler, load, queryFraction float64) (*fabricsim.Result, error) {
	scale = scale.withDefaults()
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              load,
		QueryByteFraction: queryFraction,
		Duration:          scale.Duration,
		Seed:              scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("build workload: %w", err)
	}
	sim, err := fabricsim.New(fabricsim.Config{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: scheduler,
		Generator: gen,
		Duration:  scale.Duration,
		Seed:      scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// trendAfterWarmup classifies a queue series ignoring the warmup prefix.
func trendAfterWarmup(s *metrics.Series, scale Scale) stats.TrendReport {
	scale = scale.withDefaults()
	start := int(float64(s.Len()) * scale.WarmupFraction)
	if start >= s.Len() {
		return stats.TrendReport{Verdict: stats.TrendStable}
	}
	return stats.ClassifyTrend(s.Values[start:], GrowthThreshold)
}

// Fig2Result reproduces the paper's Figure 2: at ~92% load the SRPT queue
// at a port keeps growing while a simple threshold backlog-aware strategy
// stabilizes.
type Fig2Result struct {
	Scale     Scale
	Load      float64
	Threshold float64

	SRPT      *fabricsim.Result
	Backlog   *fabricsim.Result
	SRPTTrend stats.TrendReport
	BackTrend stats.TrendReport
}

// RunFig2 executes the motivation experiment. threshold <= 0 selects the
// default of 5 MB (about ten mean background flows).
func RunFig2(scale Scale, threshold float64) (*Fig2Result, error) {
	scale = scale.withDefaults()
	if threshold <= 0 {
		threshold = 5e6
	}
	srpt, err := runFabric(scale, sched.NewSRPT(), Fig2Load)
	if err != nil {
		return nil, fmt.Errorf("fig2 srpt run: %w", err)
	}
	back, err := runFabric(scale, sched.NewThresholdBacklog(threshold), Fig2Load)
	if err != nil {
		return nil, fmt.Errorf("fig2 threshold run: %w", err)
	}
	res := &Fig2Result{
		Scale:     scale,
		Load:      Fig2Load,
		Threshold: threshold,
		SRPT:      srpt,
		Backlog:   back,
	}
	// The paper plots the worst server's queue; the max-port series is the
	// scale-robust equivalent.
	res.SRPTTrend = trendAfterWarmup(&srpt.MaxPortSeries, scale)
	res.BackTrend = trendAfterWarmup(&back.MaxPortSeries, scale)
	return res, nil
}

// Render prints the Figure 2 summary with inline charts.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — queue length at a port, load %.0f%%, %s\n\n", r.Load*100, r.Scale)
	b.WriteString(trace.Chart("SRPT (max-port backlog, bytes)", &r.SRPT.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s (growth ratio %.2f)\n\n", r.SRPTTrend.Verdict, r.SRPTTrend.GrowthRatio)
	b.WriteString(trace.Chart(fmt.Sprintf("threshold backlog-aware T=%s", trace.Bytes(r.Threshold)), &r.Backlog.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s (growth ratio %.2f)\n\n", r.BackTrend.Verdict, r.BackTrend.GrowthRatio)
	fmt.Fprintf(&b, "paper: SRPT queue keeps increasing; backlog-aware stabilizes\n")
	return b.String()
}

// SaturationResult is the shared near-capacity run behind Table I and
// Figure 5: SRPT vs fast BASRPT at 95% load.
type SaturationResult struct {
	Scale Scale
	Load  float64
	V     float64

	SRPT *fabricsim.Result
	Fast *fabricsim.Result

	SRPTTrend stats.TrendReport
	FastTrend stats.TrendReport
}

// RunSaturation executes the stability experiment at the paper's 95%
// load. v <= 0 selects the paper's demonstration value V = 2500.
func RunSaturation(scale Scale, v float64) (*SaturationResult, error) {
	return RunLoadPair(scale, v, SaturationLoad)
}

// RunLoadPair runs SRPT and fast BASRPT on the identical arrival stream at
// an arbitrary load — RunSaturation generalized for load-calibration
// studies. v <= 0 selects the default V.
func RunLoadPair(scale Scale, v, load float64) (*SaturationResult, error) {
	return runPair(scale, v, load, workload.DefaultQueryByteFraction)
}

// StabilityQueryFraction is the query byte share of the stability
// showcase: with 30% of bytes in 20KB cross-rack queries, the preemption
// pressure on rack-local elephants is strong enough for SRPT's queue
// divergence to manifest within tens of simulated seconds (the paper's
// 500 s horizon achieves the same at its 10% mix).
const StabilityQueryFraction = 0.3

// StabilityLoad is the per-port load of the stability showcase (~the
// paper's 9.2 Gbps on 10 Gbps ports).
const StabilityLoad = 0.92

// RunStability is the stability showcase behind the Figure 2/5(b)
// reproduction at reduced scale: SRPT vs fast BASRPT at StabilityLoad with
// StabilityQueryFraction. Use horizons of 40+ simulated seconds for a
// clear growing-vs-stable verdict split.
func RunStability(scale Scale, v float64) (*SaturationResult, error) {
	return runPair(scale, v, StabilityLoad, StabilityQueryFraction)
}

func runPair(scale Scale, v, load, queryFraction float64) (*SaturationResult, error) {
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("load pair: load %g outside (0, 1)", load)
	}
	srpt, err := runFabricQF(scale, sched.NewSRPT(), load, queryFraction)
	if err != nil {
		return nil, fmt.Errorf("saturation srpt run: %w", err)
	}
	fast, err := runFabricQF(scale, sched.NewFastBASRPT(v), load, queryFraction)
	if err != nil {
		return nil, fmt.Errorf("saturation fast-basrpt run: %w", err)
	}
	res := &SaturationResult{
		Scale: scale,
		Load:  load,
		V:     v,
		SRPT:  srpt,
		Fast:  fast,
	}
	res.SRPTTrend = trendAfterWarmup(&srpt.MaxPortSeries, scale)
	res.FastTrend = trendAfterWarmup(&fast.MaxPortSeries, scale)
	return res, nil
}

// RenderStability prints the growing-vs-stable comparison of the
// stability showcase.
func (r *SaturationResult) RenderStability() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stability showcase — SRPT vs fast BASRPT at %.0f%% load, V=%g, %s\n\n",
		r.Load*100, r.V, r.Scale)
	b.WriteString(trace.Chart("SRPT (max-port backlog, bytes)", &r.SRPT.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s (growth ratio %.2f), leftover %s, throughput %s Gbps\n\n",
		r.SRPTTrend.Verdict, r.SRPTTrend.GrowthRatio,
		trace.Bytes(r.SRPT.LeftoverBytes), trace.Gbps(r.SRPT.AverageGbps()))
	b.WriteString(trace.Chart("fast BASRPT (max-port backlog, bytes)", &r.Fast.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s (growth ratio %.2f), leftover %s, throughput %s Gbps\n\n",
		r.FastTrend.Verdict, r.FastTrend.GrowthRatio,
		trace.Bytes(r.Fast.LeftoverBytes), trace.Gbps(r.Fast.AverageGbps()))
	fmt.Fprintf(&b, "paper (Figs. 2, 5b): SRPT queue keeps increasing under admissible load; fast BASRPT stabilizes\n")
	return b.String()
}

// fctRow extracts the (avg, 99p) pair in ms for a class.
func fctRow(r *fabricsim.Result, class flow.Class) (avg, p99 float64) {
	cs := r.FCT.Stats(class)
	return cs.MeanMs, cs.P99Ms
}

// RenderTable1 prints Table I: average and 99th percentile FCT (ms) for
// queries and background flows under both schemes, plus the ratios the
// paper highlights (fast BASRPT query FCT < 2x SRPT average, < 4x 99th).
func (r *SaturationResult) RenderTable1() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("TABLE I — FCT (ms) at %.0f%% load, V=%g, %s", r.Load*100, r.V, r.Scale),
		Headers: []string{"scheme", "query avg", "query 99th", "background avg", "background 99th"},
	}
	sqAvg, sqP99 := fctRow(r.SRPT, flow.ClassQuery)
	sbAvg, sbP99 := fctRow(r.SRPT, flow.ClassBackground)
	fqAvg, fqP99 := fctRow(r.Fast, flow.ClassQuery)
	fbAvg, fbP99 := fctRow(r.Fast, flow.ClassBackground)
	tbl.AddRow("srpt", trace.Ms(sqAvg), trace.Ms(sqP99), trace.Ms(sbAvg), trace.Ms(sbP99))
	tbl.AddRow("fast-basrpt", trace.Ms(fqAvg), trace.Ms(fqP99), trace.Ms(fbAvg), trace.Ms(fbP99))
	var b strings.Builder
	b.WriteString(tbl.Render())
	if sqAvg > 0 && sqP99 > 0 {
		fmt.Fprintf(&b, "\nquery ratios fast/srpt: avg %.2fx (paper: <2x), 99th %.2fx (paper: <4x)\n",
			fqAvg/sqAvg, fqP99/sqP99)
	}
	if sbAvg > 0 && sbP99 > 0 {
		fmt.Fprintf(&b, "background ratios fast/srpt: avg %.2fx, 99th %.2fx (paper: ~consistent)\n",
			fbAvg/sbAvg, fbP99/sbP99)
	}
	return b.String()
}

// RenderFig5 prints Figure 5: global throughput over time (a) and the
// queue evolution (b) for both schemes.
func (r *SaturationResult) RenderFig5() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — throughput and queue length at %.0f%% load, V=%g, %s\n\n", r.Load*100, r.V, r.Scale)
	srptTput := r.SRPT.Throughput.SeriesGbps()
	fastTput := r.Fast.Throughput.SeriesGbps()
	b.WriteString(trace.Chart("(a) SRPT global throughput (Gbps)", &srptTput, 60, 6))
	b.WriteString(trace.Chart("(a) fast BASRPT global throughput (Gbps)", &fastTput, 60, 6))
	fmt.Fprintf(&b, "\ncumulative volume: srpt %s, fast-basrpt %s (delta %s; paper: BASRPT higher by 5352 Gb over 500 s)\n\n",
		trace.Bytes(r.SRPT.DepartedBytes), trace.Bytes(r.Fast.DepartedBytes),
		trace.Bytes(r.Fast.DepartedBytes-r.SRPT.DepartedBytes))
	b.WriteString(trace.Chart("(b) SRPT queue (max-port backlog, bytes)", &r.SRPT.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s\n\n", r.SRPTTrend.Verdict)
	b.WriteString(trace.Chart("(b) fast BASRPT queue (max-port backlog, bytes)", &r.Fast.MaxPortSeries, 60, 8))
	fmt.Fprintf(&b, "verdict: %s, stable point ~%s (tail mean)\n\n",
		r.FastTrend.Verdict, trace.Bytes(r.Fast.MaxPortSeries.TailMean(0.3)))
	fmt.Fprintf(&b, "paper: SRPT queue grows without bound; fast BASRPT stabilizes and total throughput improves\n")
	return b.String()
}
