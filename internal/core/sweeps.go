package core

import (
	"fmt"
	"strings"

	"basrpt/internal/fabricsim"
	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
)

// Fig6Row is one load point of the varying-loads comparison.
type Fig6Row struct {
	Load float64

	SRPTQueryAvgMs float64
	FastQueryAvgMs float64
	SRPTQueryP99Ms float64
	FastQueryP99Ms float64
	SRPTGbps       float64
	FastGbps       float64
}

// Fig6Result reproduces the paper's Figure 6: average query FCT, 99th
// percentile query FCT, and overall throughput for SRPT and fast BASRPT as
// load varies from 10% to 80%.
type Fig6Result struct {
	Scale Scale
	V     float64
	Rows  []Fig6Row
}

// DefaultFig6Loads are the paper's load points.
func DefaultFig6Loads() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
}

// RunFig6 sweeps the given loads (nil selects the paper's 10%–80% range).
// v <= 0 selects the default V.
func RunFig6(scale Scale, v float64, loads []float64) (*Fig6Result, error) {
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	if len(loads) == 0 {
		loads = DefaultFig6Loads()
	}
	res := &Fig6Result{Scale: scale, V: v}
	for _, load := range loads {
		if load <= 0 || load >= 1 {
			return nil, fmt.Errorf("fig6: load %g outside (0, 1)", load)
		}
		srpt, err := runFabric(scale, sched.NewSRPT(), load)
		if err != nil {
			return nil, fmt.Errorf("fig6 srpt at %g: %w", load, err)
		}
		fast, err := runFabric(scale, sched.NewFastBASRPT(v), load)
		if err != nil {
			return nil, fmt.Errorf("fig6 fast-basrpt at %g: %w", load, err)
		}
		row := Fig6Row{Load: load}
		row.SRPTQueryAvgMs, row.SRPTQueryP99Ms = fctRow(srpt, flow.ClassQuery)
		row.FastQueryAvgMs, row.FastQueryP99Ms = fctRow(fast, flow.ClassQuery)
		row.SRPTGbps = srpt.AverageGbps()
		row.FastGbps = fast.AverageGbps()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the three Figure 6 panels as tables.
func (r *Fig6Result) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Figure 6 — varying loads, V=%g, %s", r.V, r.Scale),
		Headers: []string{
			"load", "srpt q-avg ms", "fast q-avg ms",
			"srpt q-99 ms", "fast q-99 ms", "srpt Gbps", "fast Gbps",
		},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", row.Load*100),
			trace.Ms(row.SRPTQueryAvgMs), trace.Ms(row.FastQueryAvgMs),
			trace.Ms(row.SRPTQueryP99Ms), trace.Ms(row.FastQueryP99Ms),
			trace.Gbps(row.SRPTGbps), trace.Gbps(row.FastGbps),
		)
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	if last := r.lastRow(); last != nil && last.SRPTQueryAvgMs > 0 && last.SRPTQueryP99Ms > 0 {
		fmt.Fprintf(&b, "\nat %.0f%% load: fast/srpt query avg %+.1f%%, 99th %+.1f%% (paper at 80%%: +7.4%% avg, +29.7%% 99th)\n",
			last.Load*100,
			(last.FastQueryAvgMs/last.SRPTQueryAvgMs-1)*100,
			(last.FastQueryP99Ms/last.SRPTQueryP99Ms-1)*100)
	}
	fmt.Fprintf(&b, "paper: FCTs nearly identical at low load; fast BASRPT throughput a little higher at all loads\n")
	return b.String()
}

func (r *Fig6Result) lastRow() *Fig6Row {
	if len(r.Rows) == 0 {
		return nil
	}
	return &r.Rows[len(r.Rows)-1]
}

// VSweepRow is one V point of the Figures 7/8 parameter study.
type VSweepRow struct {
	V float64

	Gbps            float64
	StableQueueByte float64 // tail mean of the max-port backlog
	QueueGrowing    bool

	QueryAvgMs float64
	QueryP99Ms float64
	BgAvgMs    float64
	BgP99Ms    float64
}

// VSweepResult reproduces Figures 7 and 8: throughput, stable queue
// length, and per-class FCTs of fast BASRPT as V varies (paper: 1000 to
// 10000) at near-saturating load.
type VSweepResult struct {
	Scale Scale
	Load  float64
	Rows  []VSweepRow

	// results keeps the raw runs for CSV export, indexed like Rows.
	results []*fabricsim.Result
}

// DefaultVSweep is the paper's V range.
func DefaultVSweep() []float64 {
	return []float64{1000, 2500, 5000, 7500, 10000}
}

// RunVSweep executes fast BASRPT for each V (nil selects the paper's
// range) at the saturation load.
func RunVSweep(scale Scale, vs []float64) (*VSweepResult, error) {
	scale = scale.withDefaults()
	if len(vs) == 0 {
		vs = DefaultVSweep()
	}
	res := &VSweepResult{Scale: scale, Load: SaturationLoad}
	for _, v := range vs {
		if v < 0 {
			return nil, fmt.Errorf("vsweep: negative V %g", v)
		}
		run, err := runFabric(scale, sched.NewFastBASRPT(v), SaturationLoad)
		if err != nil {
			return nil, fmt.Errorf("vsweep at V=%g: %w", v, err)
		}
		row := VSweepRow{V: v}
		row.Gbps = run.AverageGbps()
		row.StableQueueByte = run.MaxPortSeries.TailMean(0.3)
		row.QueueGrowing = trendAfterWarmup(&run.MaxPortSeries, scale).Verdict.String() == "growing"
		row.QueryAvgMs, row.QueryP99Ms = fctRow(run, flow.ClassQuery)
		row.BgAvgMs, row.BgP99Ms = fctRow(run, flow.ClassBackground)
		res.Rows = append(res.Rows, row)
		res.results = append(res.results, run)
	}
	return res, nil
}

// Result returns the raw run for row i (for CSV export).
func (r *VSweepResult) Result(i int) *fabricsim.Result { return r.results[i] }

// RenderFig7 prints throughput and stable queue length per V.
func (r *VSweepResult) RenderFig7() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Figure 7 — throughput and queue length vs V at %.0f%% load, %s", r.Load*100, r.Scale),
		Headers: []string{"V", "throughput Gbps", "stable queue", "queue verdict"},
	}
	for _, row := range r.Rows {
		verdict := "stable"
		if row.QueueGrowing {
			verdict = "growing"
		}
		tbl.AddRow(fmt.Sprintf("%g", row.V), trace.Gbps(row.Gbps),
			trace.Bytes(row.StableQueueByte), verdict)
	}
	return tbl.Render() +
		"\npaper: larger V slightly raises the stable queue level and slightly lowers throughput\n"
}

// RenderFig8 prints the per-class FCTs per V.
func (r *VSweepResult) RenderFig8() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Figure 8 — FCTs vs V at %.0f%% load, %s", r.Load*100, r.Scale),
		Headers: []string{"V", "query avg ms", "query 99 ms", "bg avg ms", "bg 99 ms"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(fmt.Sprintf("%g", row.V),
			trace.Ms(row.QueryAvgMs), trace.Ms(row.QueryP99Ms),
			trace.Ms(row.BgAvgMs), trace.Ms(row.BgP99Ms))
	}
	return tbl.Render() +
		"\npaper: query avg and 99th FCT drop significantly as V grows; background avg rises, background 99th slightly falls\n"
}
