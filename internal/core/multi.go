package core

import (
	"fmt"

	"basrpt/internal/fabricsim"
	"basrpt/internal/flow"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/workload"
)

// MultiSpec describes one multi-seed-capable experiment: the -exp ids it
// answers to and the per-seed tasks it fans across the worker pool. Where
// an experiment decomposes into independent simulations (one scheduler at
// one operating point), each becomes its own task so the pool stays busy
// even when the seed count barely exceeds the worker count.
type MultiSpec struct {
	// Names are the -exp ids this spec serves (e.g. table1 and fig5 share
	// one saturation run).
	Names []string
	// Title heads the rendered aggregate.
	Title string
	// Tasks builds the replicable units. Constructors run inside the task
	// so every worker gets its own scheduler instance (they are not
	// goroutine-safe).
	Tasks func(scale Scale, v float64) []runner.Task
}

// fabricTask wraps one fabric simulation as a runner task: fresh
// scheduler, generator, and simulator per invocation, seeded by the
// replicate seed.
func fabricTask(name string, scale Scale, mk func() sched.Scheduler, load, queryFraction float64) runner.Task {
	return runner.Task{Name: name, Run: func(seed uint64) (runner.Sample, error) {
		s := scale
		s.Seed = seed
		res, err := runFabricQF(s, mk(), load, queryFraction)
		if err != nil {
			return nil, err
		}
		return fabricSample(res, s), nil
	}}
}

// fabricSample flattens the headline quantities of one fabric run — the
// Table I FCT columns, throughput, and queue stability — into named
// metrics.
func fabricSample(res *fabricsim.Result, scale Scale) runner.Sample {
	qAvg, qP99 := fctRow(res, flow.ClassQuery)
	bAvg, bP99 := fctRow(res, flow.ClassBackground)
	return runner.Sample{
		"query_avg_ms":    qAvg,
		"query_p99_ms":    qP99,
		"bg_avg_ms":       bAvg,
		"bg_p99_ms":       bP99,
		"gbps":            res.AverageGbps(),
		"departed_mb":     res.DepartedBytes / 1e6,
		"maxport_tail_mb": res.MaxPortSeries.TailMean(0.3) / 1e6,
		"queue_growth":    trendAfterWarmup(&res.MaxPortSeries, scale).GrowthRatio,
		"completed_flows": float64(res.CompletedFlows),
		"leftover_flows":  float64(res.LeftoverFlows),
	}
}

// MultiSpecs returns every multi-seed-capable experiment, in the order the
// harness reports them. The long-horizon stability showcase is excluded:
// its value is the single long trajectory, not cross-seed dispersion.
func MultiSpecs() []MultiSpec {
	return []MultiSpec{
		{
			Names: []string{"fig1"},
			Title: "Figure 1 — SRPT instability example",
			Tasks: func(Scale, float64) []runner.Task {
				// The instance is deterministic; multi-seed runs confirm a
				// zero confidence interval.
				return []runner.Task{{Name: "", Run: func(uint64) (runner.Sample, error) {
					res, err := RunFig1()
					if err != nil {
						return nil, err
					}
					return runner.Sample{
						"srpt_leftover_pkts":   res.SRPT.LeftoverPackets,
						"basrpt_leftover_pkts": res.BacklogAware.LeftoverPackets,
						"basrpt_departed_pkts": res.BacklogAware.DepartedPackets,
					}, nil
				}}}
			},
		},
		{
			Names: []string{"fig2"},
			Title: fmt.Sprintf("Figure 2 — queue length at a port, load %.0f%%", Fig2Load*100),
			Tasks: func(scale Scale, _ float64) []runner.Task {
				return []runner.Task{
					fabricTask("srpt", scale, func() sched.Scheduler { return sched.NewSRPT() },
						Fig2Load, defaultQueryFraction()),
					fabricTask("threshold", scale, func() sched.Scheduler { return sched.NewThresholdBacklog(5e6) },
						Fig2Load, defaultQueryFraction()),
				}
			},
		},
		{
			Names: []string{"table1", "fig5"},
			Title: fmt.Sprintf("Table I / Figure 5 — SRPT vs fast BASRPT at %.0f%% load", SaturationLoad*100),
			Tasks: func(scale Scale, v float64) []runner.Task {
				return []runner.Task{
					fabricTask("srpt", scale, func() sched.Scheduler { return sched.NewSRPT() },
						SaturationLoad, defaultQueryFraction()),
					fabricTask("fast-basrpt", scale, func() sched.Scheduler { return sched.NewFastBASRPT(v) },
						SaturationLoad, defaultQueryFraction()),
				}
			},
		},
		{
			Names: []string{"fig6"},
			Title: "Figure 6 — varying loads",
			Tasks: func(scale Scale, v float64) []runner.Task {
				var tasks []runner.Task
				for _, load := range DefaultFig6Loads() {
					load := load
					tasks = append(tasks,
						fabricTask(fmt.Sprintf("srpt@%.0f%%", load*100), scale,
							func() sched.Scheduler { return sched.NewSRPT() }, load, defaultQueryFraction()),
						fabricTask(fmt.Sprintf("fast@%.0f%%", load*100), scale,
							func() sched.Scheduler { return sched.NewFastBASRPT(v) }, load, defaultQueryFraction()),
					)
				}
				return tasks
			},
		},
		{
			Names: []string{"fig7", "fig8"},
			Title: fmt.Sprintf("Figures 7/8 — V sweep at %.0f%% load", SaturationLoad*100),
			Tasks: func(scale Scale, _ float64) []runner.Task {
				var tasks []runner.Task
				for _, v := range DefaultVSweep() {
					v := v
					tasks = append(tasks, fabricTask(fmt.Sprintf("V%g", v), scale,
						func() sched.Scheduler { return sched.NewFastBASRPT(v) },
						SaturationLoad, defaultQueryFraction()))
				}
				return tasks
			},
		},
		{
			Names: []string{"theory"},
			Title: "Theorem 1 — backlog and penalty vs V (slotted switch)",
			Tasks: func(Scale, float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					res, err := RunTheorem1(4, 0.85, 100000, nil, Run{Seed: seed})
					if err != nil {
						return nil, err
					}
					sample := runner.Sample{}
					for _, row := range res.Rows {
						sample[fmt.Sprintf("V%g/mean_backlog_pkts", row.V)] = row.MeanBacklog
						sample[fmt.Sprintf("V%g/mean_penalty", row.V)] = row.MeanPenalty
					}
					return sample, nil
				}}}
			},
		},
		{
			Names: []string{"dtmc"},
			Title: "DTMC — stationary mass at the backlog cap (deterministic)",
			Tasks: func(Scale, float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(uint64) (runner.Sample, error) {
					res, err := RunDTMC(0, 0)
					if err != nil {
						return nil, err
					}
					return runner.Sample{
						"srpt_cap_mass":   res.Shortest.CapMass,
						"basrpt_cap_mass": res.Backlog.CapMass,
					}, nil
				}}}
			},
		},
		{
			Names: []string{"ablation"},
			Title: "Ablation — exact vs fast BASRPT decisions",
			Tasks: func(_ Scale, v float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					res, err := RunExactVsFast(5, 200, v, Run{Seed: seed})
					if err != nil {
						return nil, err
					}
					return runner.Sample{
						"mean_objective_gap": res.MeanGap,
						"max_objective_gap":  res.MaxGap,
					}, nil
				}}}
			},
		},
		{
			Names: []string{"distributed"},
			Title: "Distributed — request/grant agreement per round budget",
			Tasks: func(_ Scale, v float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					res, err := RunDistributed(8, 200, v, nil, Run{Seed: seed})
					if err != nil {
						return nil, err
					}
					sample := runner.Sample{}
					for _, row := range res.Rows {
						sample[fmt.Sprintf("rounds%d/agreement", row.Rounds)] = row.Agreement
						sample[fmt.Sprintf("rounds%d/mean_gap", row.Rounds)] = row.MeanGap
					}
					return sample, nil
				}}}
			},
		},
		{
			Names: []string{"incast"},
			Title: "Incast — partition/aggregate under SRPT vs fast BASRPT",
			Tasks: func(scale Scale, v float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					s := scale
					s.Seed = seed
					res, err := RunIncast(s, v, 0, 0, 0)
					if err != nil {
						return nil, err
					}
					sq, sq99 := fctRow(res.SRPT, flow.ClassQuery)
					fq, fq99 := fctRow(res.Fast, flow.ClassQuery)
					return runner.Sample{
						"srpt/response_avg_ms": sq,
						"srpt/response_p99_ms": sq99,
						"fast/response_avg_ms": fq,
						"fast/response_p99_ms": fq99,
					}, nil
				}}}
			},
		},
		{
			Names: []string{"noise"},
			Title: "Noise — fast BASRPT under size-estimation error",
			Tasks: func(scale Scale, v float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					s := scale
					s.Seed = seed
					res, err := RunNoise(s, v, 0.8, nil)
					if err != nil {
						return nil, err
					}
					sample := runner.Sample{}
					for _, row := range res.Rows {
						sample[fmt.Sprintf("err%g/gbps", row.NoiseLevel)] = row.Gbps
						sample[fmt.Sprintf("err%g/query_avg_ms", row.NoiseLevel)] = row.QueryAvgMs
					}
					return sample, nil
				}}}
			},
		},
		{
			Names: []string{"faults"},
			Title: "Faults — resilience under per-seed fault schedules",
			Tasks: func(scale Scale, v float64) []runner.Task {
				return []runner.Task{{Name: "", Run: func(seed uint64) (runner.Sample, error) {
					s := scale
					s.Seed = seed
					// FaultSeed derives from the replicate seed, so each
					// replicate sees a different schedule as well as a
					// different workload.
					res, err := RunFaults(s, v, Run{Seed: seed})
					if err != nil {
						return nil, err
					}
					sample := runner.Sample{
						"srpt/query_avg_ms": res.SRPT.QueryAvgMs,
						"srpt/gbps":         res.SRPT.Gbps,
						"fast/query_avg_ms": res.Fast.QueryAvgMs,
						"fast/gbps":         res.Fast.Gbps,
					}
					// Recovery is only observable when the backlog returned
					// inside the horizon; unrecovered replicates report the
					// indicator instead of poisoning the mean with -1.
					for name, run := range map[string]*FaultsRun{"srpt": &res.SRPT, "fast": &res.Fast} {
						recovered := 0.0
						if run.RecoverySec >= 0 {
							recovered = 1
							sample[name+"/recovery_s"] = run.RecoverySec
						}
						sample[name+"/recovered"] = recovered
					}
					return sample, nil
				}}}
			},
		},
	}
}

// MultiSpecFor returns the spec serving the -exp id, or nil.
func MultiSpecFor(name string) *MultiSpec {
	specs := MultiSpecs()
	for i := range specs {
		for _, n := range specs[i].Names {
			if n == name {
				return &specs[i]
			}
		}
	}
	return nil
}

// RunMulti executes the named experiment across cfg.Seeds independent
// replicates on the worker pool and returns the per-metric aggregate.
func RunMulti(name string, scale Scale, v float64, cfg runner.Config) (*runner.Aggregate, error) {
	spec := MultiSpecFor(name)
	if spec == nil {
		return nil, fmt.Errorf("multi: experiment %q has no multi-seed form", name)
	}
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	return runner.Run(cfg, spec.Tasks(scale, v))
}

// defaultQueryFraction is the harness default query byte share.
func defaultQueryFraction() float64 { return workload.DefaultQueryByteFraction }
