package core

import (
	"fmt"
	"strings"

	"basrpt/internal/birkhoff"
	"basrpt/internal/dtmc"
	"basrpt/internal/flow"
	"basrpt/internal/lyapunov"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/switchsim"
	"basrpt/internal/trace"
)

// TheoremRow is one V point of the Theorem 1 validation run on the slotted
// switch.
type TheoremRow struct {
	V float64

	// MeanBacklog is the time-average total backlog (packets); Theorem 1
	// bounds it by (B' + V(ȳ* − y_min))/ε, i.e. O(V).
	MeanBacklog float64
	// BacklogBound is that bound, computed from the arrival process.
	BacklogBound float64
	// MeanPenalty is the time-average ȳ (mean selected remaining size);
	// Theorem 1 says it approaches the optimum within B'/V.
	MeanPenalty float64
	// DelayGapBound is B'/V.
	DelayGapBound float64
	// MeanDrift is the empirical one-step Lyapunov drift.
	MeanDrift float64
}

// TheoremResult is experiment E9: fast BASRPT on the slotted switch with
// i.i.d. Bernoulli arrivals, validating the O(V) backlog scaling and the
// shrinking B'/V penalty gap of Theorem 1.
type TheoremResult struct {
	N       int
	Load    float64
	Epsilon float64
	BPrime  float64
	Slots   int64
	Rows    []TheoremRow
}

// RunTheorem1 executes E9. n is the slotted switch size, load the per-port
// packet load, slots the horizon, vs the V values (nil selects a doubling
// ladder). run.Seed drives the Bernoulli arrival streams.
func RunTheorem1(n int, load float64, slots int64, vs []float64, run Run) (*TheoremResult, error) {
	if len(vs) == 0 {
		vs = []float64{1, 4, 16, 64, 256}
	}
	seed := run.withDefaults().Seed
	if slots <= 0 {
		return nil, fmt.Errorf("theorem1: non-positive horizon %d", slots)
	}
	const meanPackets = 2 // Uniform{1..3} flow sizes
	prob, err := switchsim.UniformLoadProb(n, load, meanPackets)
	if err != nil {
		return nil, fmt.Errorf("theorem1: %w", err)
	}
	sizes := stats.Uniform{Lo: 1, Hi: 3.0001}

	// Theorem constants. B bounds E[A²]: an arrival occurs w.p. p with
	// size ≤ 3, so E[A²] ≤ p·9 per VOQ; take the max over VOQs.
	var maxP float64
	for _, row := range prob {
		for _, p := range row {
			if p > maxP {
				maxP = p
			}
		}
	}
	bSecond := maxP * 9
	res := &TheoremResult{
		N:      n,
		Load:   load,
		Slots:  slots,
		BPrime: lyapunov.BPrime(n, bSecond),
	}

	// ε from the Birkhoff construction on the arrival rate matrix.
	arrProbe, err := switchsim.NewBernoulliArrivals(prob, sizes, seed)
	if err != nil {
		return nil, err
	}
	lambda := arrProbe.RateMatrix()
	if err := birkhoff.CheckAdmissible(lambda, 1e-9); err != nil {
		return nil, fmt.Errorf("theorem1 admissibility: %w", err)
	}
	res.Epsilon = birkhoff.SlackLowerBound(lambda)

	// y_min: the smallest possible penalty is the smallest flow size (1
	// packet); ȳ*: upper-bound the optimal algorithm's penalty by the mean
	// arriving flow size.
	const yMin, yStar = 1.0, float64(meanPackets)

	for _, v := range vs {
		if v <= 0 {
			return nil, fmt.Errorf("theorem1: non-positive V %g", v)
		}
		arr, err := switchsim.NewBernoulliArrivals(prob, sizes, seed)
		if err != nil {
			return nil, err
		}
		var penalty stats.Summary
		sim, err := switchsim.New(switchsim.Config{
			N:         n,
			Scheduler: sched.NewFastBASRPT(v),
			Arrivals:  arr,
			OnSlot: func(_ int64, decision []*flow.Flow) {
				if len(decision) > 0 {
					penalty.Add(lyapunov.MeanSelectedSize(decision))
				}
			},
		})
		if err != nil {
			return nil, err
		}
		if err := sim.Run(slots); err != nil {
			return nil, err
		}
		row := TheoremRow{
			V:             v,
			MeanBacklog:   sim.TotalBacklogSeries().Mean(),
			MeanPenalty:   penalty.Mean(),
			DelayGapBound: lyapunov.DelayGapBound(n, bSecond, v),
			MeanDrift:     lyapunov.EstimateDrift(sim.LyapunovSeries().Values).MeanDrift,
		}
		if res.Epsilon > 0 {
			row.BacklogBound = lyapunov.BacklogBound(n, bSecond, v, res.Epsilon, yStar, yMin)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Theorem 1 table.
func (r *TheoremResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Theorem 1 validation — %dx%d slotted switch, load %.2f, %d slots (B'=%.1f, ε=%.4f)",
			r.N, r.N, r.Load, r.Slots, r.BPrime, r.Epsilon),
		Headers: []string{"V", "mean backlog pkt", "O(V) bound", "mean penalty ȳ", "gap bound B'/V", "mean drift"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%g", row.V),
			fmt.Sprintf("%.1f", row.MeanBacklog),
			fmt.Sprintf("%.0f", row.BacklogBound),
			fmt.Sprintf("%.3f", row.MeanPenalty),
			fmt.Sprintf("%.3f", row.DelayGapBound),
			fmt.Sprintf("%.3f", row.MeanDrift),
		)
	}
	return tbl.Render() +
		"\ntheorem: measured backlog stays under the O(V) bound; penalty ȳ falls toward the optimum as V grows\n"
}

// DTMCResult is experiment E10: the tiny-switch stationary analysis,
// comparing the SRPT-analog (shortest-backlog-first) against the
// backlog-aware policy near saturation.
type DTMCResult struct {
	N, Cap    int
	LineLoad  float64
	Shortest  *dtmc.StationaryResult
	Backlog   *dtmc.StationaryResult
	BacklogV  float64
	NumStates int
}

// RunDTMC executes E10 on a 2x2 switch. cap <= 0 selects 10; v <= 0
// selects 3 (queue-level analog of a mid-range V).
func RunDTMC(capacity int, v float64) (*DTMCResult, error) {
	if capacity <= 0 {
		capacity = 10
	}
	if v <= 0 {
		v = 3
	}
	const (
		n    = 2
		size = 3
		p    = 0.15 // per-line load = 2 * p * size = 0.9
	)
	prob := [][]float64{{p, p}, {p, p}}
	run := func(policy dtmc.Policy) (*dtmc.StationaryResult, int, error) {
		chain, err := dtmc.NewChain(n, capacity, prob, size, policy)
		if err != nil {
			return nil, 0, err
		}
		st, err := chain.Stationary(4000, 1e-9)
		if err != nil {
			return nil, 0, err
		}
		return st, chain.NumStates(), nil
	}
	shortest, states, err := run(dtmc.ShortestFirst())
	if err != nil {
		return nil, fmt.Errorf("dtmc shortest-first: %w", err)
	}
	backlog, _, err := run(dtmc.BacklogAware(v))
	if err != nil {
		return nil, fmt.Errorf("dtmc backlog-aware: %w", err)
	}
	return &DTMCResult{
		N: n, Cap: capacity,
		LineLoad:  2 * p * size,
		Shortest:  shortest,
		Backlog:   backlog,
		BacklogV:  v,
		NumStates: states,
	}, nil
}

// Render prints the stationary comparison.
func (r *DTMCResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DTMC recurrence check — %dx%d switch, cap %d (%d states), per-line load %.2f\n\n",
		r.N, r.N, r.Cap, r.NumStates, r.LineLoad)
	tbl := trace.Table{
		Headers: []string{"policy", "cap mass", "expected backlog", "served pkt/slot", "converged"},
	}
	addRow := func(name string, st *dtmc.StationaryResult) {
		tbl.AddRow(name,
			fmt.Sprintf("%.4f", st.CapMass),
			fmt.Sprintf("%.2f", st.ExpectedBacklog),
			fmt.Sprintf("%.3f", st.ServedRate),
			fmt.Sprintf("%v", st.Converged))
	}
	addRow("shortest-first (SRPT analog)", r.Shortest)
	addRow(fmt.Sprintf("backlog-aware (V=%g)", r.BacklogV), r.Backlog)
	b.WriteString(tbl.Render())
	b.WriteString("\ncap mass is stationary probability pinned at the truncation cap — the transience signature;\n" +
		"the backlog-aware chain keeps it lower and serves more packets per slot\n")
	return b.String()
}
