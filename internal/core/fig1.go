package core

import (
	"fmt"
	"strings"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/switchsim"
)

// Fig1SlotRecord is one slot of the Figure 1 walk-through: which flows
// transmitted.
type Fig1SlotRecord struct {
	Slot  int64
	Flows []string // human-readable "f1", "f2", "f3"
}

// Fig1Run is one scheduler's side of the Figure 1 example.
type Fig1Run struct {
	Scheduler       string
	Schedule        []Fig1SlotRecord
	CompletedFlows  int
	DepartedPackets float64
	LeftoverPackets float64
}

// Fig1Result reproduces the paper's Figure 1: the 3-flow, 2-bottleneck
// example in which SRPT strands one packet of f1 after 6 slots while a
// backlog-aware discipline completes all three flows.
type Fig1Result struct {
	SRPT         Fig1Run
	BacklogAware Fig1Run
}

// fig1Arrivals is the example's deterministic input. Ports: 0 = host A
// (source of f1, f2), 1 = host D (source of f3), 2 = host B (destination
// of f2), 3 = host C (destination of f1 and f3).
func fig1Arrivals() []switchsim.FlowArrival {
	return []switchsim.FlowArrival{
		{Slot: 0, Src: 0, Dst: 3, Packets: 5}, // f1
		{Slot: 0, Src: 0, Dst: 2, Packets: 1}, // f2
		{Slot: 1, Src: 1, Dst: 3, Packets: 1}, // f3
	}
}

// fig1FlowName maps the example's flows (identified by VOQ) to the paper's
// names.
func fig1FlowName(f *flow.Flow) string {
	switch {
	case f.Src == 0 && f.Dst == 3:
		return "f1"
	case f.Src == 0 && f.Dst == 2:
		return "f2"
	case f.Src == 1 && f.Dst == 3:
		return "f3"
	default:
		return fmt.Sprintf("f(%d->%d)", f.Src, f.Dst)
	}
}

// RunFig1 executes both sides of the example over 6 slots. The
// backlog-aware side uses fast BASRPT with V = 2 (any V < 4 makes the
// 5-packet backlog outweigh the 1-packet flow in slot 1).
func RunFig1() (*Fig1Result, error) {
	run := func(s sched.Scheduler) (Fig1Run, error) {
		out := Fig1Run{Scheduler: s.Name()}
		sim, err := switchsim.New(switchsim.Config{
			N:         4,
			Scheduler: s,
			Arrivals:  switchsim.NewScriptedArrivals(fig1Arrivals()),
			OnSlot: func(t int64, decision []*flow.Flow) {
				rec := Fig1SlotRecord{Slot: t}
				for _, f := range decision {
					rec.Flows = append(rec.Flows, fig1FlowName(f))
				}
				out.Schedule = append(out.Schedule, rec)
			},
			ValidateDecisions: true,
		})
		if err != nil {
			return out, err
		}
		if err := sim.Run(6); err != nil {
			return out, err
		}
		out.CompletedFlows = sim.CompletedFlows()
		out.DepartedPackets = sim.DepartedPackets()
		out.LeftoverPackets = sim.Backlog()
		return out, nil
	}
	srpt, err := run(sched.NewSRPT())
	if err != nil {
		return nil, fmt.Errorf("fig1 srpt: %w", err)
	}
	ba, err := run(sched.NewFastBASRPT(2))
	if err != nil {
		return nil, fmt.Errorf("fig1 backlog-aware: %w", err)
	}
	return &Fig1Result{SRPT: srpt, BacklogAware: ba}, nil
}

// Render prints the two slot-by-slot schedules side by side, paper-style.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1 — SRPT instability example (3 flows, 2 bottlenecks, 6 slots)\n\n")
	renderRun := func(run Fig1Run) {
		fmt.Fprintf(&b, "%s:\n", run.Scheduler)
		for _, rec := range run.Schedule {
			flows := "idle"
			if len(rec.Flows) > 0 {
				flows = strings.Join(rec.Flows, ", ")
			}
			fmt.Fprintf(&b, "  slot %d: %s\n", rec.Slot+1, flows)
		}
		fmt.Fprintf(&b, "  completed %d/3 flows, %g packets sent, %g left\n\n",
			run.CompletedFlows, run.DepartedPackets, run.LeftoverPackets)
	}
	renderRun(r.SRPT)
	renderRun(r.BacklogAware)
	fmt.Fprintf(&b, "paper: SRPT leaves 1 packet of f1; backlog-aware completes all (7 pkts in 6 slots, +1/6 pkt/slot throughput)\n")
	return b.String()
}
