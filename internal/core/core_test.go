package core

import (
	"errors"
	"strings"
	"testing"

	"basrpt/internal/topology"
)

func TestScaleDefaults(t *testing.T) {
	var s Scale
	s = s.withDefaults()
	if s.Racks == 0 || s.HostsPerRack == 0 || s.Duration == 0 || s.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.WarmupFraction <= 0 || s.WarmupFraction >= 1 {
		t.Fatalf("warmup fraction = %g", s.WarmupFraction)
	}
	if got := ScaleSmall.String(); !strings.Contains(got, "8 hosts") {
		t.Fatalf("ScaleSmall.String() = %q", got)
	}
}

func TestScaleValidate(t *testing.T) {
	good := Scale{Racks: 2, HostsPerRack: 4, Duration: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scale rejected: %v", err)
	}
	bad := []Scale{
		{Racks: 0, HostsPerRack: 4, Duration: 1},
		{Racks: -4, HostsPerRack: 4, Duration: 1},
		{Racks: 2, HostsPerRack: 0, Duration: 1},
		{Racks: 2, HostsPerRack: -1, Duration: 1},
		{Racks: 2, HostsPerRack: 4, Duration: 0},
		{Racks: 2, HostsPerRack: 4, Duration: 1, WarmupFraction: 1},
		{Racks: 2, HostsPerRack: 4, Duration: 1, WarmupFraction: -0.1},
	}
	for i, s := range bad {
		err := s.Validate()
		if err == nil {
			t.Fatalf("scale %d accepted: %+v", i, s)
		}
		if !errors.Is(err, ErrScale) {
			t.Fatalf("scale %d: error %v is not ErrScale", i, err)
		}
	}
}

func TestScaleHosts(t *testing.T) {
	if got := ScalePaper.Hosts(); got != 144 {
		t.Fatalf("ScalePaper.Hosts() = %d, want 144", got)
	}
	// Zero dimensions resolve through withDefaults, matching what the
	// runners simulate for a zero-value Scale.
	var zero Scale
	want := ScaleMedium.Racks * ScaleMedium.HostsPerRack
	if got := zero.Hosts(); got != want {
		t.Fatalf("zero Scale.Hosts() = %d, want %d", got, want)
	}
	if got := (Scale{Racks: 344, HostsPerRack: 12}).Hosts(); got != 4128 {
		t.Fatalf("Hosts() = %d, want 4128", got)
	}
}

func TestScaleTopologyTypedErrors(t *testing.T) {
	if _, err := (Scale{Racks: -1, HostsPerRack: 4}).Topology(); !errors.Is(err, ErrScale) {
		t.Fatalf("negative racks: %v, want ErrScale", err)
	}
	// Zero dims reach the topology layer and fail there with its typed
	// dimension error rather than silently defaulting.
	if _, err := (Scale{}).Topology(); !errors.Is(err, topology.ErrDimension) {
		t.Fatalf("zero dims: %v, want topology.ErrDimension", err)
	}
}

func TestScaleTopology(t *testing.T) {
	topo, err := ScalePaper.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumHosts() != 144 {
		t.Fatalf("paper scale hosts = %d", topo.NumHosts())
	}
}

func TestRunFig1MatchesPaper(t *testing.T) {
	res, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.SRPT.LeftoverPackets != 1 {
		t.Fatalf("SRPT leftover = %g, want 1", res.SRPT.LeftoverPackets)
	}
	if res.SRPT.CompletedFlows != 2 {
		t.Fatalf("SRPT completed = %d, want 2", res.SRPT.CompletedFlows)
	}
	if res.BacklogAware.LeftoverPackets != 0 {
		t.Fatalf("backlog-aware leftover = %g, want 0", res.BacklogAware.LeftoverPackets)
	}
	if res.BacklogAware.CompletedFlows != 3 {
		t.Fatalf("backlog-aware completed = %d, want 3", res.BacklogAware.CompletedFlows)
	}
	// SRPT slot 1 (paper numbering) serves f2; backlog-aware serves f1.
	if got := res.SRPT.Schedule[0].Flows; len(got) != 1 || got[0] != "f2" {
		t.Fatalf("SRPT slot 1 = %v, want [f2]", got)
	}
	if got := res.BacklogAware.Schedule[0].Flows; len(got) != 1 || got[0] != "f1" {
		t.Fatalf("backlog-aware slot 1 = %v, want [f1]", got)
	}
	out := res.Render()
	for _, want := range []string{"srpt", "fast-basrpt", "slot 1", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig2SmallScale(t *testing.T) {
	res, err := RunFig2(ScaleSmall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold != 5e6 {
		t.Fatalf("default threshold = %g", res.Threshold)
	}
	if res.SRPT.CompletedFlows == 0 || res.Backlog.CompletedFlows == 0 {
		t.Fatal("no completions")
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "verdict") {
		t.Fatalf("render = %q", out)
	}
}

func TestRunSaturationSmallScale(t *testing.T) {
	res, err := RunSaturation(ScaleSmall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.V != DefaultV {
		t.Fatalf("default V = %g", res.V)
	}
	// The headline effect at any scale: fast BASRPT leaves no more backlog
	// and moves at least as many bytes.
	if res.Fast.LeftoverBytes > res.SRPT.LeftoverBytes {
		t.Fatalf("fast leftover %g > srpt %g", res.Fast.LeftoverBytes, res.SRPT.LeftoverBytes)
	}
	if res.Fast.DepartedBytes < res.SRPT.DepartedBytes {
		t.Fatalf("fast departed %g < srpt %g", res.Fast.DepartedBytes, res.SRPT.DepartedBytes)
	}
	t1 := res.RenderTable1()
	if !strings.Contains(t1, "TABLE I") || !strings.Contains(t1, "fast-basrpt") {
		t.Fatalf("table1 render = %q", t1)
	}
	f5 := res.RenderFig5()
	if !strings.Contains(f5, "Figure 5") || !strings.Contains(f5, "throughput") {
		t.Fatalf("fig5 render = %q", f5)
	}
}

func TestRunFig6SmallSweep(t *testing.T) {
	res, err := RunFig6(ScaleSmall, 0, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SRPTQueryAvgMs <= 0 || row.FastQueryAvgMs <= 0 {
			t.Fatalf("missing FCT data: %+v", row)
		}
		if row.SRPTGbps <= 0 || row.FastGbps <= 0 {
			t.Fatalf("missing throughput: %+v", row)
		}
	}
	// Throughput grows with load.
	if res.Rows[1].SRPTGbps <= res.Rows[0].SRPTGbps {
		t.Fatalf("throughput did not grow with load: %+v", res.Rows)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "20%") {
		t.Fatalf("render = %q", out)
	}
	if _, err := RunFig6(ScaleSmall, 0, []float64{1.5}); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestRunVSweepSmall(t *testing.T) {
	res, err := RunVSweep(ScaleSmall, []float64{100, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Gbps <= 0 {
			t.Fatalf("row %d missing throughput", i)
		}
		if res.Result(i) == nil {
			t.Fatalf("row %d missing raw result", i)
		}
	}
	f7 := res.RenderFig7()
	f8 := res.RenderFig8()
	if !strings.Contains(f7, "Figure 7") || !strings.Contains(f8, "Figure 8") {
		t.Fatalf("renders = %q / %q", f7, f8)
	}
	if _, err := RunVSweep(ScaleSmall, []float64{-1}); err == nil {
		t.Fatal("negative V accepted")
	}
}

func TestRunTheorem1(t *testing.T) {
	res, err := RunTheorem1(3, 0.8, 20000, []float64{2, 32}, SeedRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon <= 0 {
		t.Fatalf("epsilon = %g", res.Epsilon)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BacklogBound <= 0 || row.MeanBacklog < 0 {
			t.Fatalf("bad row %+v", row)
		}
		if row.MeanBacklog > row.BacklogBound {
			t.Fatalf("V=%g: measured backlog %.1f exceeds theorem bound %.1f",
				row.V, row.MeanBacklog, row.BacklogBound)
		}
	}
	// Larger V must not raise the penalty (delay) — it tightens the gap.
	if res.Rows[1].MeanPenalty > res.Rows[0].MeanPenalty+0.1 {
		t.Fatalf("penalty rose with V: %+v", res.Rows)
	}
	// Gap bound shrinks as 1/V.
	if res.Rows[1].DelayGapBound >= res.Rows[0].DelayGapBound {
		t.Fatal("delay gap bound did not shrink with V")
	}
	if !strings.Contains(res.Render(), "Theorem 1") {
		t.Fatal("render missing title")
	}
	if _, err := RunTheorem1(3, 0.8, 0, nil, SeedRun(1)); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := RunTheorem1(3, 0.8, 10, []float64{0}, SeedRun(1)); err == nil {
		t.Fatal("zero V accepted")
	}
}

func TestRunDTMC(t *testing.T) {
	res, err := RunDTMC(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BacklogV != 3 {
		t.Fatalf("default V = %g", res.BacklogV)
	}
	if res.Backlog.CapMass >= res.Shortest.CapMass {
		t.Fatalf("backlog-aware cap mass %g >= shortest %g",
			res.Backlog.CapMass, res.Shortest.CapMass)
	}
	if !strings.Contains(res.Render(), "DTMC") {
		t.Fatal("render missing title")
	}
}

func TestRunExactVsFast(t *testing.T) {
	res, err := RunExactVsFast(4, 50, DefaultV, SeedRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanGap < 0 || res.MaxGap < res.MeanGap {
		t.Fatalf("gap stats inconsistent: %+v", res)
	}
	if res.IdenticalFraction <= 0 {
		t.Fatal("greedy never matched exact on small instances — suspicious")
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render missing title")
	}
	if _, err := RunExactVsFast(100, 5, 1, SeedRun(1)); err == nil {
		t.Fatal("oversized fabric accepted")
	}
	if _, err := RunExactVsFast(4, 0, 1, SeedRun(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
}
