package core

// Run is the run context threaded through the experiment entry points that
// are not parameterized by a Scale: the primary random seed plus the
// auxiliary seeds subsystems derive from it. Entry points take a Run
// instead of bare seed integers so the multi-seed runner can thread one
// value through every experiment uniformly, and so new per-subsystem seeds
// can be added without touching every signature again.
type Run struct {
	// Seed drives the experiment's primary random stream (0 selects 1).
	Seed uint64
	// FaultSeed drives the fault-schedule stream of resilience runs;
	// 0 derives it from Seed, so a multi-seed sweep varies the fault
	// schedule together with the workload unless told otherwise.
	FaultSeed uint64
}

// SeedRun is the Run for a bare primary seed — the common case.
func SeedRun(seed uint64) Run { return Run{Seed: seed} }

func (r Run) withDefaults() Run {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.FaultSeed == 0 {
		r.FaultSeed = r.Seed
	}
	return r
}
