package core

import (
	"fmt"

	"basrpt/internal/fabricsim"
	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// IncastResult is experiment E14: SRPT vs fast BASRPT under the
// partition/aggregate pattern the paper's introduction motivates — Fanout
// synchronized responses converging on one aggregator, on top of
// rack-local background traffic. The aggregator's egress port is the
// contended resource; response tail FCT is the application-level metric
// ("it is often those tardy flows that affect the application performance
// most", Section V-A).
type IncastResult struct {
	Scale          Scale
	Fanout         int
	JobsPerSecond  float64
	BackgroundLoad float64

	SRPT *fabricsim.Result
	Fast *fabricsim.Result
}

// RunIncast executes the incast comparison. fanout <= 0 selects 8;
// jobsPerSecond <= 0 selects 400; backgroundLoad <= 0 selects 0.6;
// v <= 0 selects DefaultV.
func RunIncast(scale Scale, v float64, fanout int, jobsPerSecond, backgroundLoad float64) (*IncastResult, error) {
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	if jobsPerSecond <= 0 {
		jobsPerSecond = 400
	}
	if backgroundLoad <= 0 {
		backgroundLoad = 0.6
	}
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	if fanout <= 0 {
		// Default: 8 backends, shrunk to fit small fabrics.
		fanout = 8
		if max := topo.NumHosts() - 1; fanout > max {
			fanout = max
		}
	}
	if fanout >= topo.NumHosts() {
		return nil, fmt.Errorf("incast: fanout %d needs more than %d hosts", fanout, topo.NumHosts())
	}
	run := func(s sched.Scheduler) (*fabricsim.Result, error) {
		gen, err := workload.NewIncast(workload.IncastConfig{
			Topology:       topo,
			JobsPerSecond:  jobsPerSecond,
			Fanout:         fanout,
			BackgroundLoad: backgroundLoad,
			Duration:       scale.Duration,
			Seed:           scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		sim, err := fabricsim.New(fabricsim.Config{
			Hosts:     topo.NumHosts(),
			LinkBps:   topo.HostLinkBps(),
			Scheduler: s,
			Generator: gen,
			Duration:  scale.Duration,
		})
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}
	srpt, err := run(sched.NewSRPT())
	if err != nil {
		return nil, fmt.Errorf("incast srpt: %w", err)
	}
	fast, err := run(sched.NewFastBASRPT(v))
	if err != nil {
		return nil, fmt.Errorf("incast fast-basrpt: %w", err)
	}
	return &IncastResult{
		Scale:          scale,
		Fanout:         fanout,
		JobsPerSecond:  jobsPerSecond,
		BackgroundLoad: backgroundLoad,
		SRPT:           srpt,
		Fast:           fast,
	}, nil
}

// Render prints the incast comparison.
func (r *IncastResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Incast (partition/aggregate) — fanout %d, %g jobs/s, %0.f%% background, %s",
			r.Fanout, r.JobsPerSecond, r.BackgroundLoad*100, r.Scale),
		Headers: []string{"scheme", "response avg ms", "response 99 ms", "bg avg ms", "Gbps", "leftover"},
	}
	addRow := func(name string, res *fabricsim.Result) {
		q := res.FCT.Stats(flow.ClassQuery)
		bg := res.FCT.Stats(flow.ClassBackground)
		tbl.AddRow(name,
			trace.Ms(q.MeanMs), trace.Ms(q.P99Ms), trace.Ms(bg.MeanMs),
			trace.Gbps(res.AverageGbps()), trace.Bytes(res.LeftoverBytes))
	}
	addRow("srpt", r.SRPT)
	addRow("fast-basrpt", r.Fast)
	return tbl.Render() +
		"\nextension: the synchronized responses serialize at the aggregator's egress port;\n" +
		"both size-based schemes drain them shortest-first, so the comparison isolates how\n" +
		"much response latency the backlog term costs under the paper's motivating pattern\n"
}
