package core

import (
	"fmt"
	"runtime"
	"strings"

	"basrpt/internal/fabricsim"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// AllocBudget is the checked-in ceiling the CI allocation gate enforces
// (bench_alloc_budget.json at the repository root, mirroring the obs
// 2%-overhead gate): the pooled arm of every discipline must stay at or
// under both per-decision figures or RunAllocBench's CheckBudget fails
// the build. The budget is deliberately loose against the measured
// steady-state numbers (~0 allocs/decision) so routine noise — metrics
// slices doubling, the end-of-run registry snapshot — never trips it,
// while reintroducing a genuine per-decision allocation (one slice, one
// flow, one boxed event) overshoots it immediately.
type AllocBudget struct {
	MaxAllocsPerDecision     float64 `json:"max_allocs_per_decision"`
	MaxAllocBytesPerDecision float64 `json:"max_alloc_bytes_per_decision"`
}

// AllocBenchRow reports one discipline's steady-state allocation behavior:
// the pooled (default) configuration next to the non-pooled baseline
// (Config.DisableFlowPool), measured on byte-identical runs. The JSON
// tags shape BENCH_alloc.json, the GC-pressure artifact CI archives per
// commit.
type AllocBenchRow struct {
	Discipline string `json:"discipline"`
	Decisions  int64  `json:"decisions"`

	AllocsPerDecision     float64 `json:"allocs_per_decision"`
	AllocBytesPerDecision float64 `json:"alloc_bytes_per_decision"`
	GCPerMillionDecisions float64 `json:"gc_cycles_per_million_decisions"`
	DecisionsPerSec       float64 `json:"decisions_per_sec"`

	BaselineAllocsPerDecision     float64 `json:"baseline_allocs_per_decision"`
	BaselineAllocBytesPerDecision float64 `json:"baseline_alloc_bytes_per_decision"`
	BaselineGCPerMillionDecisions float64 `json:"baseline_gc_cycles_per_million_decisions"`
	BaselineDecisionsPerSec       float64 `json:"baseline_decisions_per_sec"`
}

// AllocBenchResult is the pooled-vs-baseline allocation comparison across
// the steady-state disciplines.
type AllocBenchResult struct {
	Scale Scale
	Load  float64
	Rows  []AllocBenchRow
}

// allocStats is the runtime.ReadMemStats delta around one simulation's
// event loop.
type allocStats struct {
	bytes  uint64
	allocs uint64
	gcs    uint32
}

// runAllocArm builds one fabric run and measures the allocator activity of
// its event loop alone: construction (table, workload priming, scheduler)
// happens before the MemStats baseline is taken, so the reported deltas
// are the steady-state cost the tentpole optimizes, not one-time setup.
func runAllocArm(scale Scale, scheduler sched.Scheduler, load float64, disablePool bool) (*fabricsim.Result, allocStats, error) {
	scale = scale.withDefaults()
	topo, err := scale.Topology()
	if err != nil {
		return nil, allocStats{}, err
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              load,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          scale.Duration,
		Seed:              scale.Seed,
	})
	if err != nil {
		return nil, allocStats{}, fmt.Errorf("build workload: %w", err)
	}
	sim, err := fabricsim.New(fabricsim.Config{
		Hosts:           topo.NumHosts(),
		LinkBps:         topo.HostLinkBps(),
		Scheduler:       scheduler,
		Generator:       gen,
		Duration:        scale.Duration,
		Seed:            scale.Seed,
		DisableFlowPool: disablePool,
	})
	if err != nil {
		return nil, allocStats{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := sim.Run()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, allocStats{}, err
	}
	return res, allocStats{
		bytes:  after.TotalAlloc - before.TotalAlloc,
		allocs: after.Mallocs - before.Mallocs,
		gcs:    after.NumGC - before.NumGC,
	}, nil
}

// equalResults compares every deterministic field of two runs — flow and
// byte accounting, decision and fault counters, per-class FCT statistics,
// all three sample series, and throughput totals. Wall-clock quantities
// (SchedNanos) and the registry snapshot are excluded by design. It is
// the byte-identical-Results cross-check of the pooled/non-pooled arms:
// recycling flows must be invisible to the physics.
func equalResults(a, b *fabricsim.Result) error {
	if a.ArrivedFlows != b.ArrivedFlows || a.CompletedFlows != b.CompletedFlows {
		return fmt.Errorf("flow counts %d/%d vs %d/%d",
			a.ArrivedFlows, a.CompletedFlows, b.ArrivedFlows, b.CompletedFlows)
	}
	if a.ArrivedBytes != b.ArrivedBytes || a.DepartedBytes != b.DepartedBytes ||
		a.LeftoverBytes != b.LeftoverBytes || a.LeftoverFlows != b.LeftoverFlows {
		return fmt.Errorf("byte accounting %g/%g/%g vs %g/%g/%g",
			a.ArrivedBytes, a.DepartedBytes, a.LeftoverBytes,
			b.ArrivedBytes, b.DepartedBytes, b.LeftoverBytes)
	}
	if a.Decisions != b.Decisions {
		return fmt.Errorf("decision counts %d vs %d", a.Decisions, b.Decisions)
	}
	if a.Faults != b.Faults {
		return fmt.Errorf("fault counters %+v vs %+v", a.Faults, b.Faults)
	}
	for _, class := range []flow.Class{flow.ClassQuery, flow.ClassBackground, flow.ClassOther} {
		if a.FCT.Stats(class) != b.FCT.Stats(class) {
			return fmt.Errorf("FCT stats for class %v: %+v vs %+v",
				class, a.FCT.Stats(class), b.FCT.Stats(class))
		}
	}
	series := []struct {
		name string
		a, b *metrics.Series
	}{
		{"queue", &a.QueueSeries, &b.QueueSeries},
		{"total-backlog", &a.TotalBacklogSeries, &b.TotalBacklogSeries},
		{"max-port", &a.MaxPortSeries, &b.MaxPortSeries},
	}
	for _, s := range series {
		if s.a.Len() != s.b.Len() {
			return fmt.Errorf("%s series lengths %d vs %d", s.name, s.a.Len(), s.b.Len())
		}
		for i := range s.a.Values {
			if s.a.Values[i] != s.b.Values[i] || s.a.Times[i] != s.b.Times[i] {
				return fmt.Errorf("%s series sample %d diverged", s.name, i)
			}
		}
	}
	if a.Throughput.TotalBytes() != b.Throughput.TotalBytes() {
		return fmt.Errorf("throughput totals %g vs %g",
			a.Throughput.TotalBytes(), b.Throughput.TotalBytes())
	}
	return nil
}

// RunAllocBench measures steady-state allocator pressure for the paper's
// two headline disciplines (SRPT and fast BASRPT, incremental index on):
// each runs twice on the identical arrival stream — flow pooling on
// (default) and off (baseline) — reporting bytes and allocations per
// decision plus GC cycles per million decisions from
// runtime.ReadMemStats deltas around the event loop. The two arms must
// produce byte-identical Results (equalResults) or the bench fails: a
// speed or allocation win that changes the physics is a bug, not a win.
// load <= 0 selects SchedBenchLoad, matching BENCH_sched.json so the two
// artifacts describe the same operating point.
func RunAllocBench(scale Scale, load float64) (*AllocBenchResult, error) {
	scale = scale.withDefaults()
	if load <= 0 {
		load = SchedBenchLoad
	}
	if load >= 1 {
		return nil, fmt.Errorf("alloc bench: load %g outside (0, 1)", load)
	}
	disciplines := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"srpt", func() sched.Scheduler { return sched.NewSRPT() }},
		{"fast-basrpt", func() sched.Scheduler { return sched.NewFastBASRPT(DefaultV) }},
	}
	res := &AllocBenchResult{Scale: scale, Load: load}
	for _, d := range disciplines {
		pooled, pst, err := runAllocArm(scale, d.mk(), load, false)
		if err != nil {
			return nil, fmt.Errorf("alloc bench %s pooled run: %w", d.name, err)
		}
		baseline, bst, err := runAllocArm(scale, d.mk(), load, true)
		if err != nil {
			return nil, fmt.Errorf("alloc bench %s baseline run: %w", d.name, err)
		}
		if err := equalResults(pooled, baseline); err != nil {
			return nil, fmt.Errorf("alloc bench %s: pooled and non-pooled runs diverged: %w", d.name, err)
		}
		dec := float64(pooled.Decisions)
		if dec == 0 {
			return nil, fmt.Errorf("alloc bench %s: run took no decisions", d.name)
		}
		res.Rows = append(res.Rows, AllocBenchRow{
			Discipline:            d.name,
			Decisions:             pooled.Decisions,
			AllocsPerDecision:     float64(pst.allocs) / dec,
			AllocBytesPerDecision: float64(pst.bytes) / dec,
			GCPerMillionDecisions: float64(pst.gcs) / dec * 1e6,
			DecisionsPerSec:       pooled.DecisionsPerSec(),

			BaselineAllocsPerDecision:     float64(bst.allocs) / dec,
			BaselineAllocBytesPerDecision: float64(bst.bytes) / dec,
			BaselineGCPerMillionDecisions: float64(bst.gcs) / dec * 1e6,
			BaselineDecisionsPerSec:       baseline.DecisionsPerSec(),
		})
	}
	return res, nil
}

// CheckBudget verifies every pooled arm against the checked-in ceiling;
// the returned error lists each violation (CI fails the build on it). A
// zero or negative ceiling disables that check — the budget file must
// state a positive bound for the gate to bite, which the repository's
// bench_alloc_budget.json does.
func (r *AllocBenchResult) CheckBudget(b AllocBudget) error {
	var violations []string
	for _, row := range r.Rows {
		if b.MaxAllocsPerDecision > 0 && row.AllocsPerDecision > b.MaxAllocsPerDecision {
			violations = append(violations, fmt.Sprintf(
				"%s: %.4f allocs/decision exceeds budget %.4f",
				row.Discipline, row.AllocsPerDecision, b.MaxAllocsPerDecision))
		}
		if b.MaxAllocBytesPerDecision > 0 && row.AllocBytesPerDecision > b.MaxAllocBytesPerDecision {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f bytes/decision exceeds budget %.1f",
				row.Discipline, row.AllocBytesPerDecision, b.MaxAllocBytesPerDecision))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("alloc budget exceeded:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// Render prints the per-discipline allocation comparison.
func (r *AllocBenchResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Steady-state allocation — pooled vs baseline at %.0f%% load, %s",
			r.Load*100, r.Scale),
		Headers: []string{"discipline", "decisions", "allocs/dec", "bytes/dec", "gc/Mdec",
			"dec/s", "baseline allocs/dec", "baseline bytes/dec", "baseline dec/s"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(row.Discipline,
			fmt.Sprintf("%d", row.Decisions),
			fmt.Sprintf("%.4f", row.AllocsPerDecision),
			fmt.Sprintf("%.1f", row.AllocBytesPerDecision),
			fmt.Sprintf("%.1f", row.GCPerMillionDecisions),
			fmt.Sprintf("%.0f", row.DecisionsPerSec),
			fmt.Sprintf("%.2f", row.BaselineAllocsPerDecision),
			fmt.Sprintf("%.1f", row.BaselineAllocBytesPerDecision),
			fmt.Sprintf("%.0f", row.BaselineDecisionsPerSec))
	}
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nboth arms replay byte-identical runs; deltas measure the event loop only (setup excluded)\n")
	return b.String()
}
