package core

import (
	"fmt"
	"math"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/trace"
)

// DistributedRow is one round-budget point of the distributed-emulation
// ablation (E11).
type DistributedRow struct {
	Rounds    int // 0 = run to convergence
	Agreement float64
	MeanGap   float64 // mean normalized objective excess over centralized
}

// DistributedResult is experiment E11: how closely the pFabric-style
// request/grant emulation of fast BASRPT tracks the centralized decision
// as the arbitration round budget shrinks — the executable version of the
// paper's Section IV-C distributability claim.
type DistributedResult struct {
	N      int
	Trials int
	V      float64
	Rows   []DistributedRow
}

// RunDistributed compares the distributed emulation against centralized
// fast BASRPT over random backlogged states for each round budget (nil
// selects {0, 1, 2, 4}). run.Seed drives the random states.
func RunDistributed(n, trials int, v float64, rounds []int, run Run) (*DistributedResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("distributed ablation: n = %d", n)
	}
	if trials < 1 {
		return nil, fmt.Errorf("distributed ablation: trials = %d", trials)
	}
	if v < 0 {
		return nil, fmt.Errorf("distributed ablation: negative V %g", v)
	}
	if len(rounds) == 0 {
		rounds = []int{0, 1, 2, 4}
	}
	states := randomStates(n, trials, run.withDefaults().Seed)
	central := sched.NewFastBASRPT(v)

	res := &DistributedResult{N: n, Trials: trials, V: v}
	for _, r := range rounds {
		if r < 0 {
			return nil, fmt.Errorf("distributed ablation: negative rounds %d", r)
		}
		dist := sched.NewDistributed(v, r)
		row := DistributedRow{
			Rounds:    r,
			Agreement: sched.DecisionAgreement(v, central, dist, states),
		}
		var gapSum, normSum float64
		for _, tab := range states {
			co := sched.Objective(v, tab, central.Schedule(tab))
			do := sched.Objective(v, tab, dist.Schedule(tab))
			gap := do - co
			if gap < 0 {
				gap = 0 // truncated arbitration can also land below greedy
			}
			gapSum += gap
			normSum += math.Abs(co)
		}
		if normSum > 0 {
			row.MeanGap = gapSum / normSum
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the round-budget table.
func (r *DistributedResult) Render() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Distributed emulation — %d ports, %d states, V=%g", r.N, r.Trials, r.V),
		Headers: []string{"arbitration rounds", "agreement with centralized", "mean objective excess"},
	}
	for _, row := range r.Rows {
		label := fmt.Sprintf("%d", row.Rounds)
		if row.Rounds == 0 {
			label = "to convergence"
		}
		tbl.AddRow(label, fmt.Sprintf("%.1f%%", row.Agreement*100), fmt.Sprintf("%.4f", row.MeanGap))
	}
	return tbl.Render() +
		"\nclaim (Section IV-C): global priorities admit a distributed implementation —\n" +
		"deferred-acceptance arbitration converges to the exact centralized decision\n"
}

// NoiseRow is one estimation-error point of the noisy-size ablation (E12).
type NoiseRow struct {
	NoiseLevel float64

	QueryAvgMs float64
	QueryP99Ms float64
	BgAvgMs    float64
	Gbps       float64
	Leftover   float64
}

// NoiseResult is experiment E12: fast BASRPT under multiplicative flow-
// size estimation error. The paper (like pFabric/PDQ/PASE) assumes exact
// sizes; this measures how gracefully the discipline degrades when that
// assumption is relaxed.
type NoiseResult struct {
	Scale Scale
	Load  float64
	V     float64
	Rows  []NoiseRow
}

// RunNoise sweeps size-estimation error levels (nil selects
// {0, 0.25, 0.5, 1, 2}) at the given load.
func RunNoise(scale Scale, v, load float64, levels []float64) (*NoiseResult, error) {
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("noise ablation: load %g outside (0, 1)", load)
	}
	if len(levels) == 0 {
		levels = []float64{0, 0.25, 0.5, 1, 2}
	}
	res := &NoiseResult{Scale: scale, Load: load, V: v}
	for _, level := range levels {
		if level < 0 {
			return nil, fmt.Errorf("noise ablation: negative level %g", level)
		}
		run, err := runFabric(scale, sched.NewNoisyFastBASRPT(v, level), load)
		if err != nil {
			return nil, fmt.Errorf("noise ablation at %g: %w", level, err)
		}
		row := NoiseRow{NoiseLevel: level}
		row.QueryAvgMs, row.QueryP99Ms = fctRow(run, flow.ClassQuery)
		row.BgAvgMs, _ = fctRow(run, flow.ClassBackground)
		row.Gbps = run.AverageGbps()
		row.Leftover = run.LeftoverBytes
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the noise-level table.
func (r *NoiseResult) Render() string {
	tbl := trace.Table{
		Title: fmt.Sprintf("Size-estimation noise — fast BASRPT V=%g at %.0f%% load, %s",
			r.V, r.Load*100, r.Scale),
		Headers: []string{"noise level", "query avg ms", "query 99 ms", "bg avg ms", "Gbps", "leftover"},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("±%.0f%%", row.NoiseLevel*100),
			trace.Ms(row.QueryAvgMs), trace.Ms(row.QueryP99Ms), trace.Ms(row.BgAvgMs),
			trace.Gbps(row.Gbps), trace.Bytes(row.Leftover),
		)
	}
	return tbl.Render() +
		"\nextension: the paper assumes exact flow sizes; bounded multiplicative error on each\n" +
		"head flow's priority should perturb FCTs modestly while stability is unaffected\n" +
		"(the backlog term of the key is measured, not estimated)\n"
}

// randomStates builds deterministic random backlogged tables for the
// decision-level ablations.
func randomStates(n, count int, seed uint64) []*flow.Table {
	r := stats.NewRNG(seed)
	states := make([]*flow.Table, count)
	for k := range states {
		tab := flow.NewTable(n)
		flows := 1 + r.Intn(4*n)
		for i := 0; i < flows; i++ {
			size := 1 + math.Floor(r.Float64()*1e6) + float64(i)*1e-3
			tab.Add(flow.NewFlow(flow.ID(i+1), r.Intn(n), r.Intn(n), flow.ClassOther, size, 0))
		}
		states[k] = tab
	}
	return states
}
