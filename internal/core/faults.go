package core

import (
	"fmt"
	"math"
	"strings"

	"basrpt/internal/fabricsim"
	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// FaultsLoad is the offered load of the resilience experiment — below
// saturation so the fabric has headroom to drain the fault-built backlog
// and the recovery-time metric is finite.
const FaultsLoad = 0.8

// RecoveryFactor defines "recovered": the monitored backlog is back
// within RecoveryFactor × its pre-fault mean.
const RecoveryFactor = 2

// FaultsRun is one scheduler's measurement under the shared fault
// schedule.
type FaultsRun struct {
	Scheduler string
	Result    *fabricsim.Result

	QueryAvgMs float64
	QueryP99Ms float64
	BgAvgMs    float64
	BgP99Ms    float64
	Gbps       float64

	// PreFaultMeanBytes is the mean total backlog before the first fault
	// window opens — the recovery baseline.
	PreFaultMeanBytes float64
	// RecoverySec is the time after the last fault window closes until
	// the total backlog first returns within RecoveryFactor × the
	// pre-fault mean; −1 when it never recovers inside the horizon.
	RecoverySec float64
	Counters    metrics.FaultCounters
	Truncated   bool
}

// FaultsResult is the resilience experiment: SRPT vs fast BASRPT under
// byte-identical workloads AND byte-identical fault schedules (link
// faults plus a scheduler outage), reporting per-class FCTs and the
// recovery time of the fabric backlog.
type FaultsResult struct {
	Scale     Scale
	V         float64
	FaultSeed uint64
	Load      float64
	Schedule  *faults.Schedule

	SRPT FaultsRun
	Fast FaultsRun
}

// RunFaults executes the resilience experiment. v <= 0 selects DefaultV;
// the fault schedule is drawn from run.FaultSeed (0 derives it from
// run.Seed, 1 when both are unset) and scales with the horizon: three
// link faults (down or degraded) and one scheduler outage, all inside the
// middle 80% of the run. The workload seed stays scale.Seed so schedules
// and arrivals can be varied independently.
func RunFaults(scale Scale, v float64, run Run) (*FaultsResult, error) {
	scale = scale.withDefaults()
	if v <= 0 {
		v = DefaultV
	}
	faultSeed := run.withDefaults().FaultSeed
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	schedule, err := faults.Generate(faults.Params{
		Seed:       faultSeed,
		Horizon:    scale.Duration,
		Ports:      topo.NumHosts(),
		LinkFaults: 3,
		Outages:    1,
	})
	if err != nil {
		return nil, fmt.Errorf("faults: generate schedule: %w", err)
	}

	res := &FaultsResult{
		Scale:     scale,
		V:         v,
		FaultSeed: faultSeed,
		Load:      FaultsLoad,
		Schedule:  schedule,
	}
	runOne := func(scheduler sched.Scheduler) (FaultsRun, error) {
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              FaultsLoad,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          scale.Duration,
			Seed:              scale.Seed,
		})
		if err != nil {
			return FaultsRun{}, fmt.Errorf("faults: build workload: %w", err)
		}
		sim, err := fabricsim.New(fabricsim.Config{
			Hosts:     topo.NumHosts(),
			LinkBps:   topo.HostLinkBps(),
			Scheduler: scheduler,
			Generator: gen,
			Duration:  scale.Duration,
			Seed:      scale.Seed,
			// A fresh injector per run so both schedulers see identical
			// fault draws.
			Faults: faults.NewInjector(schedule),
			// A generous divergence bound: the watchdog is armed (so a
			// pathological interaction truncates instead of running
			// blind) but sits far above any stable run's backlog.
			Watchdog: &fabricsim.Watchdog{
				MaxBacklogBytes: float64(topo.NumHosts()) * topo.HostLinkBps() / 8 * scale.Duration,
			},
		})
		if err != nil {
			return FaultsRun{}, err
		}
		r, err := sim.Run()
		if err != nil {
			return FaultsRun{}, err
		}
		out := FaultsRun{
			Scheduler: r.SchedulerName,
			Result:    r,
			Gbps:      r.AverageGbps(),
			Counters:  r.Faults,
			Truncated: r.Truncated(),
		}
		out.QueryAvgMs, out.QueryP99Ms = fctRow(r, flow.ClassQuery)
		out.BgAvgMs, out.BgP99Ms = fctRow(r, flow.ClassBackground)
		out.PreFaultMeanBytes, out.RecoverySec = recoveryTime(&r.TotalBacklogSeries, schedule)
		return out, nil
	}
	if res.SRPT, err = runOne(sched.NewSRPT()); err != nil {
		return nil, fmt.Errorf("faults srpt: %w", err)
	}
	if res.Fast, err = runOne(sched.NewFastBASRPT(v)); err != nil {
		return nil, fmt.Errorf("faults fast-basrpt: %w", err)
	}
	return res, nil
}

// recoveryTime computes the recovery metric from a backlog series: the
// pre-fault mean (samples before the first fault window opens) and the
// delay after the last fault window closes until the backlog first drops
// back within RecoveryFactor × that mean (−1 if it never does).
func recoveryTime(series *metrics.Series, s *faults.Schedule) (preMean, recovery float64) {
	firstStart := s.FirstFaultStart()
	lastEnd := s.LastFaultEnd()
	if math.IsInf(firstStart, 1) {
		return 0, 0 // no fault windows: nothing to recover from
	}
	var sum float64
	var n int
	for i, t := range series.Times {
		if t >= firstStart {
			break
		}
		sum += series.Values[i]
		n++
	}
	if n > 0 {
		preMean = sum / float64(n)
	}
	for i, t := range series.Times {
		if t < lastEnd {
			continue
		}
		if series.Values[i] <= RecoveryFactor*preMean {
			return preMean, t - lastEnd
		}
	}
	return preMean, -1
}

// Render prints the resilience table and the fault schedule it ran under.
func (r *FaultsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Faults — SRPT vs fast BASRPT under an identical fault schedule, load %.0f%%, V=%g, %s\n",
		r.Load*100, r.V, r.Scale)
	fmt.Fprintf(&b, "schedule: %s\n", r.Schedule)
	for _, lf := range r.Schedule.LinkFaults {
		mode := "down"
		if lf.RateFraction > 0 {
			mode = fmt.Sprintf("degraded to %.0f%%", lf.RateFraction*100)
		}
		fmt.Fprintf(&b, "  link fault: port %d %s over [%.3gs, %.3gs)\n", lf.Port, mode, lf.Start, lf.End)
	}
	for _, w := range r.Schedule.Outages {
		fmt.Fprintf(&b, "  scheduler outage: [%.3gs, %.3gs) — fabric holds the last matching\n", w.Start, w.End)
	}
	b.WriteString("\n")

	tbl := trace.Table{
		Headers: []string{
			"scheduler", "q-avg ms", "q-99 ms", "bg-avg ms", "Gbps",
			"recovery s", "held decisions", "truncated",
		},
	}
	for _, run := range []*FaultsRun{&r.SRPT, &r.Fast} {
		rec := "n/a"
		if run.RecoverySec >= 0 {
			rec = fmt.Sprintf("%.3f", run.RecoverySec)
		}
		trunc := "no"
		if run.Truncated {
			trunc = run.Result.Diagnosis.Reason
		}
		tbl.AddRow(run.Scheduler,
			trace.Ms(run.QueryAvgMs), trace.Ms(run.QueryP99Ms), trace.Ms(run.BgAvgMs),
			trace.Gbps(run.Gbps), rec, fmt.Sprintf("%d", run.Counters.DecisionsHeld), trunc)
	}
	b.WriteString(tbl.Render())
	b.WriteString("\nrecovery = time after the last fault window for the fabric backlog to return\n" +
		fmt.Sprintf("within %dx its pre-fault mean; expected: the backlog-aware discipline drains\n", RecoveryFactor) +
		"the fault-built backlog faster than pure SRPT\n")
	return b.String()
}
