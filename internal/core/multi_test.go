package core

import (
	"strings"
	"testing"

	"basrpt/internal/fabricsim"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/workload"
)

func tinyScale() Scale {
	return Scale{Racks: 2, HostsPerRack: 2, Duration: 0.4, Seed: 1}
}

// TestMultiFaultsParallel drives the fault-injection experiment through the
// concurrent worker pool — with -race this is the proof that per-seed fault
// schedules, injectors, and watchdogs share nothing across workers.
func TestMultiFaultsParallel(t *testing.T) {
	agg, err := RunMulti("faults", tinyScale(), 0, runner.Config{Seeds: 4, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"srpt/query_avg_ms", "fast/gbps", "srpt/recovered"} {
		m := agg.Metric(name)
		if m == nil || m.N != 4 {
			t.Fatalf("metric %s missing or short: %+v", name, m)
		}
	}
}

// TestMultiParallelAggregatesMatchSerial checks the determinism contract at
// the experiment level: the same spec aggregated on 1 and 4 workers renders
// byte-identically.
func TestMultiParallelAggregatesMatchSerial(t *testing.T) {
	cfg := runner.Config{Seeds: 3, RootSeed: 7}
	cfg.Parallel = 1
	serial, err := RunMulti("table1", tinyScale(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	par, err := RunMulti("table1", tinyScale(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render("x") != par.Render("x") {
		t.Fatalf("parallel render differs from serial:\n%s\nvs\n%s",
			par.Render("x"), serial.Render("x"))
	}
}

// TestMultiWatchdogTruncationParallel runs watchdog-truncated simulations
// concurrently: a 1-byte backlog bound trips immediately in every
// replicate, and the truncation diagnosis must still be populated per run
// with no cross-worker interference.
func TestMultiWatchdogTruncationParallel(t *testing.T) {
	scale := tinyScale()
	task := runner.Task{Name: "truncated", Run: func(seed uint64) (runner.Sample, error) {
		s := scale
		s.Seed = seed
		topo, err := s.Topology()
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              0.9,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          s.Duration,
			Seed:              seed,
		})
		if err != nil {
			return nil, err
		}
		sim, err := fabricsim.New(fabricsim.Config{
			Hosts:     topo.NumHosts(),
			LinkBps:   topo.HostLinkBps(),
			Scheduler: sched.NewSRPT(),
			Generator: gen,
			Duration:  s.Duration,
			Seed:      seed,
			Watchdog:  &fabricsim.Watchdog{MaxBacklogBytes: 1},
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		truncated := 0.0
		if res.Truncated() {
			truncated = 1
			if res.Diagnosis.Reason == "" {
				t.Error("truncated run lacks a diagnosis reason")
			}
		}
		return runner.Sample{"truncated": truncated, "sim_end_s": res.Diagnosis.SimTime}, nil
	}}
	agg, err := runner.Run(runner.Config{Seeds: 4, Parallel: 4}, []runner.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	m := agg.Metric("truncated/truncated")
	if m == nil || m.Mean != 1 {
		t.Fatalf("expected every replicate truncated, got %+v", m)
	}
}

// TestMultiSpecsCoverEveryExperiment pins the -exp ids that must have a
// multi-seed form (and that the long-horizon stability showcase must not).
func TestMultiSpecsCoverEveryExperiment(t *testing.T) {
	for _, name := range []string{
		"fig1", "fig2", "table1", "fig5", "fig6", "fig7", "fig8",
		"theory", "dtmc", "ablation", "distributed", "incast", "noise", "faults",
	} {
		if MultiSpecFor(name) == nil {
			t.Errorf("experiment %q has no multi-seed spec", name)
		}
	}
	if MultiSpecFor("stability") != nil {
		t.Error("stability should stay single-seed")
	}
	if _, err := RunMulti("stability", tinyScale(), 0, runner.Config{Seeds: 2}); err == nil ||
		!strings.Contains(err.Error(), "no multi-seed form") {
		t.Errorf("RunMulti(stability) error = %v", err)
	}
}

// TestMultiFaultSeedVariesPerReplicate checks that the faults spec derives
// the fault schedule from the replicate seed: two replicates must not see
// the same schedule (the whole point of multi-seed resilience runs).
func TestMultiFaultSeedVariesPerReplicate(t *testing.T) {
	s1 := DeriveSeedForTest(1, 0)
	s2 := DeriveSeedForTest(1, 1)
	r1, err := RunFaults(tinyScale(), 0, Run{Seed: s1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFaults(tinyScale(), 0, Run{Seed: s2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.FaultSeed == r2.FaultSeed {
		t.Fatalf("replicates share fault seed %d", r1.FaultSeed)
	}
	if r1.Schedule.String() == r2.Schedule.String() {
		t.Fatal("replicates drew identical fault schedules")
	}
}

// DeriveSeedForTest re-exports runner.DeriveSeed so the test reads like the
// harness code it mirrors.
func DeriveSeedForTest(root uint64, stream int) uint64 {
	return runner.DeriveSeed(root, stream)
}
