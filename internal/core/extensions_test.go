package core

import (
	"strings"
	"testing"

	"basrpt/internal/flow"
)

func flowClassQuery() flow.Class { return flow.ClassQuery }

func TestRunDistributed(t *testing.T) {
	res, err := RunDistributed(5, 60, DefaultV, nil, SeedRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Converged arbitration (rounds = 0, first row) matches centralized on
	// every state.
	if res.Rows[0].Rounds != 0 || res.Rows[0].Agreement != 1 {
		t.Fatalf("converged row = %+v, want full agreement", res.Rows[0])
	}
	if res.Rows[0].MeanGap > 1e-12 {
		t.Fatalf("converged gap = %g", res.Rows[0].MeanGap)
	}
	// Bounded rounds agree less (or at most equally).
	for _, row := range res.Rows[1:] {
		if row.Agreement > 1 || row.Agreement < 0 {
			t.Fatalf("agreement out of range: %+v", row)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Distributed emulation") || !strings.Contains(out, "to convergence") {
		t.Fatalf("render = %q", out)
	}
}

func TestRunDistributedValidation(t *testing.T) {
	if _, err := RunDistributed(1, 5, 1, nil, SeedRun(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RunDistributed(4, 0, 1, nil, SeedRun(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := RunDistributed(4, 5, -1, nil, SeedRun(1)); err == nil {
		t.Fatal("negative V accepted")
	}
	if _, err := RunDistributed(4, 5, 1, []int{-2}, SeedRun(1)); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestRunNoise(t *testing.T) {
	res, err := RunNoise(ScaleSmall, 0, 0.7, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	noisy := res.Rows[1]
	if base.QueryAvgMs <= 0 || noisy.QueryAvgMs <= 0 {
		t.Fatalf("missing FCTs: %+v", res.Rows)
	}
	// Throughput must not collapse under ±100% estimation error: the
	// stability machinery (backlog term) is exact.
	if noisy.Gbps < 0.9*base.Gbps {
		t.Fatalf("throughput collapsed under noise: %g vs %g", noisy.Gbps, base.Gbps)
	}
	out := res.Render()
	if !strings.Contains(out, "Size-estimation noise") || !strings.Contains(out, "±100%") {
		t.Fatalf("render = %q", out)
	}
}

func TestRunNoiseValidation(t *testing.T) {
	if _, err := RunNoise(ScaleSmall, 0, 1.5, nil); err == nil {
		t.Fatal("overload accepted")
	}
	if _, err := RunNoise(ScaleSmall, 0, 0.5, []float64{-1}); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestRunIncast(t *testing.T) {
	res, err := RunIncast(ScaleSmall, 0, 4, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sq := res.SRPT.FCT.Stats(flowClassQuery())
	fq := res.Fast.FCT.Stats(flowClassQuery())
	if sq.Count == 0 || fq.Count == 0 {
		t.Fatal("no incast responses completed")
	}
	out := res.Render()
	if !strings.Contains(out, "Incast") || !strings.Contains(out, "fast-basrpt") {
		t.Fatalf("render = %q", out)
	}
	// Defaults applied.
	if res.Fanout != 4 || res.JobsPerSecond != 300 {
		t.Fatalf("params = %+v", res)
	}
	d, err := RunIncast(ScaleSmall, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fanout != 7 || d.JobsPerSecond != 400 || d.BackgroundLoad != 0.6 {
		// ScaleSmall has 8 hosts, so the default fanout shrinks to 7.
		t.Fatalf("defaults = %+v", d)
	}
}

func TestRunIncastValidation(t *testing.T) {
	if _, err := RunIncast(ScaleSmall, 0, 100, 10, 0.5); err == nil {
		t.Fatal("oversized fanout accepted")
	}
}
