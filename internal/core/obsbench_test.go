package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestObsBenchOverheadAndDeterminism is the acceptance gate: the disabled
// observability path costs <= 2% of a scheduling decision, and two traced
// fixed-seed runs are byte-identical.
func TestObsBenchOverheadAndDeterminism(t *testing.T) {
	// Medium rack shape: with 24 hosts a decision costs ~1.5µs, so the
	// ~2.5ns disabled probe sits well inside the 2% budget. Tiny 4-port
	// fabrics are excluded on purpose — their ~200ns decisions make the
	// ratio hug the bound and flake.
	res, err := RunObsBench(Scale{Racks: 4, HostsPerRack: 6, Duration: 0.1, Seed: 3}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("bench took no decisions")
	}
	if !res.Deterministic {
		t.Fatal("two fixed-seed traced runs produced different trace bytes")
	}
	if res.TraceEvents == 0 || res.TraceBytes == 0 {
		t.Fatalf("empty trace: %d events, %d bytes", res.TraceEvents, res.TraceBytes)
	}
	if res.DisabledOverheadPct <= 0 {
		t.Fatalf("overhead %g not measured", res.DisabledOverheadPct)
	}
	if res.DisabledOverheadPct > 2 {
		t.Fatalf("disabled observability overhead %.4f%% exceeds the 2%% budget (probe %.2fns x %.2f/decision vs %.0fns decisions)",
			res.DisabledOverheadPct, res.DisabledProbeNs, res.ProbesPerDecision, res.DecisionNs)
	}

	// BENCH_obs.json shape: stable snake_case keys.
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"disabled_overhead_pct", "deterministic", "trace_events", "disabled_decisions_per_sec"} {
		if !strings.Contains(string(buf), `"`+key+`"`) {
			t.Fatalf("BENCH_obs.json missing %q:\n%s", key, buf)
		}
	}

	out := res.Render()
	for _, want := range []string{"Observability overhead", "disabled overhead", "deterministic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestObsBudgetCheck exercises the CI gate logic without a full bench
// run: only a positive ceiling bites, and determinism is enforced only
// when required.
func TestObsBudgetCheck(t *testing.T) {
	res := &ObsBenchResult{DisabledOverheadPct: 0.5, Deterministic: true}
	if err := res.CheckBudget(ObsBudget{}); err != nil {
		t.Fatalf("empty budget must not bite: %v", err)
	}
	if err := res.CheckBudget(ObsBudget{MaxDisabledOverheadPct: 2, RequireDeterministic: true}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := res.CheckBudget(ObsBudget{MaxDisabledOverheadPct: 0.1}); err == nil {
		t.Fatal("overhead above ceiling accepted")
	}
	res.Deterministic = false
	if err := res.CheckBudget(ObsBudget{RequireDeterministic: true}); err == nil {
		t.Fatal("non-deterministic trace accepted under require_deterministic")
	} else if !strings.Contains(err.Error(), "byte-identical") {
		t.Fatalf("unhelpful violation message: %v", err)
	}
}

// TestObsBenchRejectsBadLoad mirrors the sched-bench validation contract.
func TestObsBenchRejectsBadLoad(t *testing.T) {
	if _, err := RunObsBench(Scale{Racks: 2, HostsPerRack: 2, Duration: 0.2, Seed: 1}, 1.5); err == nil {
		t.Fatal("load >= 1 accepted")
	}
}
