package core

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"basrpt/internal/fabricsim"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// obsProbeCalibrationIters is how many disabled-probe calls the overhead
// microbenchmark times. Large enough to swamp timer resolution, small
// enough to finish in a few milliseconds.
const obsProbeCalibrationIters = 20_000_000

// ObsBenchResult quantifies what the observability layer costs. The JSON
// tags shape BENCH_obs.json, the artifact CI archives per commit.
//
// The disabled-path overhead cannot be measured as a rate delta between
// two fabric runs — at realistic decision costs (~µs) the per-probe cost
// (~ns) drowns in run-to-run scheduling noise. Instead the harness
// measures the probe cost directly (a calibrated nil-handle loop), counts
// how many probes an instrumented run actually fires per decision, and
// reports the product against the measured per-decision scheduling cost:
// DisabledOverheadPct = probe_ns × probes_per_decision / decision_ns.
// The rate comparison between the arms is still reported (and the arms
// are cross-checked to have done byte-identical work), but as context,
// not as the bound.
type ObsBenchResult struct {
	Scheduler string  `json:"scheduler"`
	Hosts     int     `json:"hosts"`
	Load      float64 `json:"load"`
	Decisions int64   `json:"decisions"`

	// Disabled-path accounting.
	DisabledProbeNs     float64 `json:"disabled_probe_ns"`     // one nil-handle Emit
	ProbesPerDecision   float64 `json:"probes_per_decision"`   // events + counter adds, per decision
	DecisionNs          float64 `json:"decision_ns"`           // measured scheduling cost per decision
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"` // the ≤2% bound
	DisabledRate        float64 `json:"disabled_decisions_per_sec"`
	EnabledRate         float64 `json:"enabled_decisions_per_sec"`

	// Trace accounting from the enabled arm.
	TraceEvents   int64 `json:"trace_events"`
	TraceBytes    int   `json:"trace_bytes"`
	Deterministic bool  `json:"deterministic"` // two traced runs byte-identical
}

// ObsBudget is the checked-in ceiling the CI observability gate enforces
// (bench_obs_budget.json at the repository root, mirroring the allocation
// gate): the disabled-probe overhead must stay at or under the stated
// percentage of per-decision scheduling cost, and — when required — the
// traced fixed-seed runs must have been byte-identical. The 2% figure is
// the paper-facing claim ("observability is free when off"); the
// determinism requirement keeps the trace artifact reproducible.
type ObsBudget struct {
	MaxDisabledOverheadPct float64 `json:"max_disabled_overhead_pct"`
	RequireDeterministic   bool    `json:"require_deterministic"`
}

// CheckBudget verifies the overhead bound and the determinism requirement
// against the checked-in budget; the returned error lists each violation
// (CI fails the build on it). A zero or negative ceiling disables the
// overhead check — the budget file must state a positive bound for the
// gate to bite, which the repository's bench_obs_budget.json does.
func (r *ObsBenchResult) CheckBudget(b ObsBudget) error {
	var violations []string
	if b.MaxDisabledOverheadPct > 0 && r.DisabledOverheadPct > b.MaxDisabledOverheadPct {
		violations = append(violations, fmt.Sprintf(
			"disabled-probe overhead %.4f%% exceeds budget %.2f%%",
			r.DisabledOverheadPct, b.MaxDisabledOverheadPct))
	}
	if b.RequireDeterministic && !r.Deterministic {
		violations = append(violations, "traced fixed-seed runs were not byte-identical")
	}
	if len(violations) > 0 {
		return fmt.Errorf("obs budget exceeded:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// runFabricObs is runFabricQF with an instrumentation handle attached.
func runFabricObs(scale Scale, scheduler sched.Scheduler, load float64, o *obs.Obs) (*fabricsim.Result, error) {
	scale = scale.withDefaults()
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              load,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          scale.Duration,
		Seed:              scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("build workload: %w", err)
	}
	sim, err := fabricsim.New(fabricsim.Config{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: scheduler,
		Generator: gen,
		Duration:  scale.Duration,
		Seed:      scale.Seed,
		Obs:       o,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// tracedRun executes one instrumented run with a JSONL sink and returns
// the result, the trace bytes, and the total events emitted.
func tracedRun(scale Scale, load float64) (*fabricsim.Result, []byte, uint64, error) {
	scale = scale.withDefaults()
	var buf bytes.Buffer
	ew, err := trace.NewEventWriter(&buf, trace.TraceHeader{
		Seed:        int64(scale.Seed),
		Scheduler:   "fast-basrpt",
		Hosts:       scale.Racks * scale.HostsPerRack,
		Load:        load,
		DurationSec: scale.Duration,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	o := obs.New(obs.Options{Sink: ew})
	res, err := runFabricObs(scale, sched.NewFastBASRPT(DefaultV), load, o)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := ew.Flush(); err != nil {
		return nil, nil, 0, err
	}
	if err := o.SinkErr(); err != nil {
		return nil, nil, 0, fmt.Errorf("trace sink: %w", err)
	}
	return res, buf.Bytes(), o.EventCount(), nil
}

// measureDisabledProbeNs times the disabled hot path: Emit through a nil
// handle, which is what every instrumented call site costs when no Obs is
// configured.
func measureDisabledProbeNs() float64 {
	var o *obs.Obs
	start := time.Now()
	for i := 0; i < obsProbeCalibrationIters; i++ {
		o.Emit(0, "probe", -1, 0, "")
	}
	return float64(time.Since(start).Nanoseconds()) / obsProbeCalibrationIters
}

// RunObsBench measures the observability layer's overhead and verifies
// trace determinism on fast BASRPT at the given scale. load <= 0 selects
// SchedBenchLoad.
func RunObsBench(scale Scale, load float64) (*ObsBenchResult, error) {
	scale = scale.withDefaults()
	if load <= 0 {
		load = SchedBenchLoad
	}
	if load >= 1 {
		return nil, fmt.Errorf("obs bench: load %g outside (0, 1)", load)
	}

	disabled, err := runFabricObs(scale, sched.NewFastBASRPT(DefaultV), load, nil)
	if err != nil {
		return nil, fmt.Errorf("obs bench disabled arm: %w", err)
	}
	enabled, traceA, events, err := tracedRun(scale, load)
	if err != nil {
		return nil, fmt.Errorf("obs bench enabled arm: %w", err)
	}
	if err := sameWork(disabled, enabled); err != nil {
		return nil, fmt.Errorf("obs bench: arms diverged, instrumentation is not observation-only: %w", err)
	}
	_, traceB, _, err := tracedRun(scale, load)
	if err != nil {
		return nil, fmt.Errorf("obs bench determinism arm: %w", err)
	}

	res := &ObsBenchResult{
		Scheduler:     enabled.SchedulerName,
		Hosts:         scale.Racks * scale.HostsPerRack,
		Load:          load,
		Decisions:     disabled.Decisions,
		DisabledRate:  disabled.DecisionsPerSec(),
		EnabledRate:   enabled.DecisionsPerSec(),
		TraceEvents:   int64(events),
		TraceBytes:    len(traceA),
		Deterministic: bytes.Equal(traceA, traceB),
	}
	res.DisabledProbeNs = measureDisabledProbeNs()
	if disabled.Decisions > 0 {
		// Each decision's disabled cost: the event probes that would have
		// fired (measured on the enabled arm — identical control flow) plus
		// the two always-on counter accumulations in reschedule.
		res.ProbesPerDecision = float64(events)/float64(disabled.Decisions) + 2
		res.DecisionNs = float64(disabled.SchedNanos) / float64(disabled.Decisions)
		if res.DecisionNs > 0 {
			res.DisabledOverheadPct = 100 * res.DisabledProbeNs * res.ProbesPerDecision / res.DecisionNs
		}
	}
	return res, nil
}

// Render prints the overhead report.
func (r *ObsBenchResult) Render() string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("Observability overhead — %s, %d hosts, %.0f%% load", r.Scheduler, r.Hosts, r.Load*100),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("decisions", fmt.Sprintf("%d", r.Decisions))
	tbl.AddRow("disabled probe", fmt.Sprintf("%.2f ns", r.DisabledProbeNs))
	tbl.AddRow("probes/decision", fmt.Sprintf("%.2f", r.ProbesPerDecision))
	tbl.AddRow("decision cost", fmt.Sprintf("%.0f ns", r.DecisionNs))
	tbl.AddRow("disabled overhead", fmt.Sprintf("%.4f%%", r.DisabledOverheadPct))
	tbl.AddRow("disabled rate", fmt.Sprintf("%.0f dec/s", r.DisabledRate))
	tbl.AddRow("enabled rate", fmt.Sprintf("%.0f dec/s", r.EnabledRate))
	tbl.AddRow("trace", fmt.Sprintf("%d events, %d bytes", r.TraceEvents, r.TraceBytes))
	tbl.AddRow("deterministic", fmt.Sprintf("%v", r.Deterministic))
	var b strings.Builder
	b.WriteString(tbl.Render())
	b.WriteString("\nboth arms do byte-identical simulated work; overhead bound is probe cost x probe count vs decision cost\n")
	return b.String()
}
