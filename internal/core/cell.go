package core

import (
	"fmt"

	"basrpt/internal/fabricsim"
	"basrpt/internal/faults"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/workload"
)

// Cell is one point of a scenario grid: a single fabric simulation of one
// scheduler at one operating point, optionally under fault injection. It
// is the execution unit behind internal/scenario — every scenario cell
// maps to exactly one Cell per replicate seed — but it is equally usable
// for ad-hoc single runs.
type Cell struct {
	// Scale shapes the topology and horizon; Scale.Seed drives the
	// workload stream (and the scheduler's own RNG when it has one).
	Scale Scale
	// Scheduler is the registry name (sched.Names) of the discipline.
	Scheduler string
	// Options carries the discipline parameters. Options.Seed, when 0, is
	// set to the replicate seed so seeded disciplines vary per replicate.
	Options sched.Options
	// Load is the per-port offered load in (0, 1).
	Load float64
	// QueryFraction is the query byte share; 0 selects the harness
	// default.
	QueryFraction float64
	// Faults, when non-nil, injects a deterministic fault schedule and
	// adds the resilience metrics (recovery time, held decisions) to the
	// sample.
	Faults *CellFaults
}

// CellFaults configures a Cell's fault schedule, mirroring the E13
// resilience experiment: LinkFaults access-link windows (hard-down or
// degraded) plus Outages scheduler outages, all inside the middle 80% of
// the horizon.
type CellFaults struct {
	// LinkFaults and Outages count the schedule's fault windows.
	LinkFaults int
	Outages    int
	// Seed draws the schedule; 0 derives it from the cell's workload seed
	// so a multi-seed sweep varies the schedule with the workload.
	Seed uint64
}

// RunCell executes one cell and flattens the run into named metrics: the
// Table I FCT columns (query_avg_ms, query_p99_ms, bg_avg_ms, bg_p99_ms),
// throughput (gbps, departed_mb), queue behavior (maxport_tail_mb,
// queue_growth), flow accounting (completed_flows, leftover_flows), and —
// for fault cells — recovered, recovery_s (only when recovered),
// decisions_held, and prefault_mean_mb. The sample is a pure function of
// the cell: identical cells produce identical samples on any machine.
func RunCell(c Cell) (runner.Sample, error) {
	scale := c.Scale.withDefaults()
	if c.Load <= 0 || c.Load >= 1 {
		return nil, fmt.Errorf("cell: load %g outside (0, 1)", c.Load)
	}
	qf := c.QueryFraction
	if qf == 0 {
		qf = workload.DefaultQueryByteFraction
	}
	if c.Options.Seed == 0 {
		c.Options.Seed = scale.Seed
	}
	scheduler, err := sched.New(c.Scheduler, c.Options)
	if err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	topo, err := scale.Topology()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              c.Load,
		QueryByteFraction: qf,
		Duration:          scale.Duration,
		Seed:              scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("cell: build workload: %w", err)
	}
	cfg := fabricsim.Config{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: scheduler,
		Generator: gen,
		Duration:  scale.Duration,
		Seed:      scale.Seed,
	}
	var schedule *faults.Schedule
	if c.Faults != nil {
		faultSeed := c.Faults.Seed
		if faultSeed == 0 {
			faultSeed = scale.Seed
		}
		schedule, err = faults.Generate(faults.Params{
			Seed:       faultSeed,
			Horizon:    scale.Duration,
			Ports:      topo.NumHosts(),
			LinkFaults: c.Faults.LinkFaults,
			Outages:    c.Faults.Outages,
		})
		if err != nil {
			return nil, fmt.Errorf("cell: generate fault schedule: %w", err)
		}
		cfg.Faults = faults.NewInjector(schedule)
		// The same generous divergence bound as the E13 experiment: armed
		// so a pathological interaction truncates instead of running
		// blind, but far above any stable run's backlog.
		cfg.Watchdog = &fabricsim.Watchdog{
			MaxBacklogBytes: float64(topo.NumHosts()) * topo.HostLinkBps() / 8 * scale.Duration,
		}
	}
	sim, err := fabricsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	sample := fabricSample(res, scale)
	if schedule != nil {
		addFaultMetrics(sample, res, schedule)
	}
	return sample, nil
}

// addFaultMetrics extends a fault cell's sample with the E13 resilience
// quantities. Recovery is only observable when the backlog returned
// inside the horizon; unrecovered replicates report the indicator instead
// of poisoning the mean with -1.
func addFaultMetrics(sample runner.Sample, res *fabricsim.Result, schedule *faults.Schedule) {
	preMean, recovery := recoveryTime(&res.TotalBacklogSeries, schedule)
	recovered := 0.0
	if recovery >= 0 {
		recovered = 1
		sample["recovery_s"] = recovery
	}
	sample["recovered"] = recovered
	sample["prefault_mean_mb"] = preMean / 1e6
	sample["decisions_held"] = float64(res.Faults.DecisionsHeld)
	truncated := 0.0
	if res.Truncated() {
		truncated = 1
	}
	sample["truncated"] = truncated
}
