package core

import (
	"strings"
	"testing"
)

// TestRunSchedBench exercises the old-vs-new harness at unit-test scale:
// every routed discipline must report matched work and positive measured
// rates for both arms.
func TestRunSchedBench(t *testing.T) {
	res, err := RunSchedBench(Scale{Racks: 2, HostsPerRack: 3, Duration: 0.4, Seed: 3}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load != 0.7 {
		t.Fatalf("load %g, want 0.7", res.Load)
	}
	want := map[string]bool{"fast-basrpt": true, "srpt": true, "maxweight": true, "threshold": true}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if !want[row.Discipline] {
			t.Fatalf("unexpected discipline %q", row.Discipline)
		}
		if row.Decisions <= 0 {
			t.Fatalf("%s: no decisions taken", row.Discipline)
		}
		if row.IncrementalRate <= 0 || row.FromScratchRate <= 0 {
			t.Fatalf("%s: rates not measured: %+v", row.Discipline, row)
		}
		if row.Speedup <= 0 {
			t.Fatalf("%s: speedup not computed: %+v", row.Discipline, row)
		}
	}
	out := res.Render()
	for name := range want {
		if !strings.Contains(out, name) {
			t.Fatalf("render lacks %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "speedup") {
		t.Fatalf("render lacks speedup column:\n%s", out)
	}
}

func TestRunSchedBenchRejectsBadLoad(t *testing.T) {
	if _, err := RunSchedBench(ScaleSmall, 1.5); err == nil {
		t.Fatal("load 1.5 accepted")
	}
}
