// Package core assembles the substrates into the paper's experiments: one
// runner per table/figure (the per-experiment index lives in DESIGN.md §3),
// each returning a structured result that renders the same rows/series the
// paper reports. cmd/basrptbench, the examples, and the root bench_test.go
// all drive these runners.
package core

import (
	"errors"
	"fmt"

	"basrpt/internal/topology"
)

// Scale selects experiment fidelity. The paper runs 144 hosts for 500
// simulated seconds; reduced scales preserve the load structure (rack
// locality, query fan-out, per-port utilization) while shrinking host count
// and horizon. EXPERIMENTS.md records which scale produced each number.
type Scale struct {
	// Racks and HostsPerRack shape the topology (paper: 12 x 12).
	Racks        int
	HostsPerRack int
	// Duration is the simulated horizon in seconds (paper: 500).
	Duration float64
	// WarmupFraction of the horizon is excluded from trend classification
	// (arrival transients). Defaults to 0.2.
	WarmupFraction float64
	// Seed drives every random stream derived from this scale.
	Seed uint64
}

// Predefined scales. ScaleSmall keeps unit tests fast; ScaleMedium is the
// default for the benchmark harness; ScalePaper is the full evaluation
// configuration (minutes of wall time per experiment).
var (
	ScaleSmall  = Scale{Racks: 2, HostsPerRack: 4, Duration: 1.5, Seed: 1}
	ScaleMedium = Scale{Racks: 4, HostsPerRack: 6, Duration: 4, Seed: 1}
	ScalePaper  = Scale{Racks: 12, HostsPerRack: 12, Duration: 500, Seed: 1}
)

// ErrScale reports a Scale with negative or otherwise unusable dimensions.
// Validate wraps it so callers can detect bad sizing with errors.Is.
var ErrScale = errors.New("core: invalid scale")

// Validate rejects scales whose dimensions cannot describe a fabric:
// negative racks or hosts-per-rack, negative duration, or a warmup fraction
// outside [0,1). Zero counts are also rejected — callers that want the
// ScaleMedium defaults must go through the runners (RunCell etc.), which
// apply withDefaults explicitly; entry points taking user-supplied sizes
// (the shard bench, CLI flags) call Validate first so a typo like
// "-racks -4" fails with a typed error instead of silently defaulting.
func (s Scale) Validate() error {
	if s.Racks <= 0 {
		return fmt.Errorf("%w: racks %d (want > 0)", ErrScale, s.Racks)
	}
	if s.HostsPerRack <= 0 {
		return fmt.Errorf("%w: hosts per rack %d (want > 0)", ErrScale, s.HostsPerRack)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("%w: duration %g (want > 0)", ErrScale, s.Duration)
	}
	if s.WarmupFraction < 0 || s.WarmupFraction >= 1 {
		return fmt.Errorf("%w: warmup fraction %g (want [0,1))", ErrScale, s.WarmupFraction)
	}
	return nil
}

// Hosts returns the total host count of the scale after defaulting, i.e.
// the host count the runners will actually simulate. The bench flags use it
// to size topologies and report headers without re-deriving the defaulting
// rules.
func (s Scale) Hosts() int {
	s = s.withDefaults()
	return s.Racks * s.HostsPerRack
}

// Topology builds the scale's fabric and validates the big-switch
// abstraction. Negative dimensions fail with ErrScale before reaching the
// topology layer (which would reject them with topology.ErrDimension).
func (s Scale) Topology() (*topology.Topology, error) {
	if s.Racks < 0 || s.HostsPerRack < 0 {
		return nil, fmt.Errorf("%w: negative dimensions %dx%d", ErrScale, s.Racks, s.HostsPerRack)
	}
	topo, err := topology.New(topology.Scaled(s.Racks, s.HostsPerRack))
	if err != nil {
		return nil, fmt.Errorf("build topology: %w", err)
	}
	if err := topo.ValidateNonBlocking(); err != nil {
		return nil, err
	}
	return topo, nil
}

func (s Scale) withDefaults() Scale {
	if s.Racks == 0 {
		s.Racks = ScaleMedium.Racks
	}
	if s.HostsPerRack == 0 {
		s.HostsPerRack = ScaleMedium.HostsPerRack
	}
	if s.Duration == 0 {
		s.Duration = ScaleMedium.Duration
	}
	if s.WarmupFraction <= 0 || s.WarmupFraction >= 1 {
		s.WarmupFraction = 0.2
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// String describes the scale for report headers.
func (s Scale) String() string {
	return fmt.Sprintf("%d hosts (%dx%d), %gs horizon, seed %d",
		s.Racks*s.HostsPerRack, s.Racks, s.HostsPerRack, s.Duration, s.Seed)
}

// DefaultV is the paper's demonstration value of the tradeoff weight
// (Section V-B: "we just choose V = 2500 for demonstration").
const DefaultV = 2500

// SaturationLoad is the near-capacity load of the stability experiments:
// the paper generates ~9.5 Gbps on each 10 Gbps port.
const SaturationLoad = 0.95

// Fig2Load is the slightly lower load of the motivation experiment: ~9.2
// Gbps per port.
const Fig2Load = 0.92

// GrowthThreshold is the growth-ratio above which a queue series counts as
// macro-scale growing (see stats.ClassifyTrend). Calibration: a queue that
// ramps linearly from empty scores ~2, one that steadily gains most of its
// average level across the window scores ~0.7, and a stationary queue
// meandering around its level scores near 0 — 0.5 separates the regimes
// with margin on both sides.
const GrowthThreshold = 0.5
