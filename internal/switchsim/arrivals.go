// Package switchsim simulates the paper's slotted input-queued switch model
// (Section III-B): N ingress and N egress ports, unit-length packets, one
// packet per port per slot under the crossbar constraint, and flow arrivals
// whose packets appear all at once. It implements the queue evolution of
// Eq. (1) and is the substrate for the Figure 1 instability example, the
// Theorem 1 validation experiments, and the DTMC ground truth.
package switchsim

import (
	"fmt"
	"math"

	"basrpt/internal/stats"
)

// FlowArrival is one flow appearing at the beginning of a slot: Packets
// packets entering VOQ (Src, Dst). (The paper places arrivals at slot ends;
// shifting them to the next slot's beginning is the same process with
// re-indexed slots and keeps the step loop simple.)
type FlowArrival struct {
	Slot    int64
	Src     int
	Dst     int
	Packets int
}

// ArrivalProcess produces the flows arriving at the beginning of each slot.
type ArrivalProcess interface {
	// Arrivals returns the flows arriving at the beginning of slot t.
	// It is called exactly once per slot, with t increasing from 0.
	Arrivals(t int64) []FlowArrival
}

// ScriptedArrivals replays a fixed arrival list — the Figure 1 example and
// unit tests use this.
type ScriptedArrivals struct {
	bySlot map[int64][]FlowArrival
}

var _ ArrivalProcess = (*ScriptedArrivals)(nil)

// NewScriptedArrivals indexes the given arrivals by slot.
func NewScriptedArrivals(arrivals []FlowArrival) *ScriptedArrivals {
	s := &ScriptedArrivals{bySlot: make(map[int64][]FlowArrival)}
	for _, a := range arrivals {
		s.bySlot[a.Slot] = append(s.bySlot[a.Slot], a)
	}
	return s
}

// Arrivals returns the scripted flows for slot t.
func (s *ScriptedArrivals) Arrivals(t int64) []FlowArrival {
	return s.bySlot[t]
}

// BernoulliArrivals is the i.i.d. arrival process of the paper's analysis:
// independently for each VOQ (i, j) and each slot, a flow arrives with
// probability Prob[i][j] and carries a random positive number of packets.
// The per-VOQ mean rate is λij = Prob[i][j] · E[Sizes], and second moments
// are bounded because Sizes is bounded — matching the E[A²] ≤ B assumption.
type BernoulliArrivals struct {
	prob  [][]float64
	sizes stats.Sampler
	rng   *stats.RNG
}

var _ ArrivalProcess = (*BernoulliArrivals)(nil)

// NewBernoulliArrivals validates the probability matrix and builds the
// process. Sizes samples flow sizes in packets; draws are rounded to the
// nearest packet with a floor of 1. RateMatrix assumes the rounded mean
// tracks the sampler's mean, which holds exactly for constant sizes and
// for uniform distributions spanning whole packets.
func NewBernoulliArrivals(prob [][]float64, sizes stats.Sampler, seed uint64) (*BernoulliArrivals, error) {
	n := len(prob)
	if n == 0 {
		return nil, fmt.Errorf("switchsim: empty probability matrix")
	}
	for i, row := range prob {
		if len(row) != n {
			return nil, fmt.Errorf("switchsim: probability row %d has %d entries, want %d", i, len(row), n)
		}
		for j, p := range row {
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("switchsim: probability [%d][%d] = %g outside [0,1]", i, j, p)
			}
		}
	}
	if sizes == nil {
		return nil, fmt.Errorf("switchsim: nil size sampler")
	}
	cp := make([][]float64, n)
	for i := range cp {
		cp[i] = make([]float64, n)
		copy(cp[i], prob[i])
	}
	return &BernoulliArrivals{prob: cp, sizes: sizes, rng: stats.NewRNG(seed)}, nil
}

// Arrivals draws this slot's flows.
func (b *BernoulliArrivals) Arrivals(t int64) []FlowArrival {
	var out []FlowArrival
	for i := range b.prob {
		for j, p := range b.prob[i] {
			if p > 0 && b.rng.Float64() < p {
				size := int(math.Floor(b.sizes.Sample(b.rng) + 0.5))
				if size < 1 {
					size = 1
				}
				out = append(out, FlowArrival{Slot: t, Src: i, Dst: j, Packets: size})
			}
		}
	}
	return out
}

// RateMatrix returns λij = Prob[i][j] · E[Sizes] in packets per slot, for
// admissibility checks against paper Eq. (2).
func (b *BernoulliArrivals) RateMatrix() [][]float64 {
	mean := b.sizes.Mean()
	if mean < 1 {
		mean = 1
	}
	out := make([][]float64, len(b.prob))
	for i := range out {
		out[i] = make([]float64, len(b.prob))
		for j := range out[i] {
			out[i][j] = b.prob[i][j] * mean
		}
	}
	return out
}

// BurstyArrivals modulates a BernoulliArrivals process with a two-state
// (on/off) Markov chain, keeping the long-run mean rate equal to the base
// process while concentrating arrivals into bursts. The paper's Theorem 1
// discussion notes that serious burstiness near capacity parks the queue
// at a large value even for stable schedulers; this process makes that
// observable: burstiness raises the standing backlog at identical mean
// load.
//
// In the on state arrivals occur with probability scaled by 1/OnFraction
// (clamped at 1); in the off state nothing arrives. State persistence is
// governed by the mean burst length.
type BurstyArrivals struct {
	base       *BernoulliArrivals
	rng        *stats.RNG
	on         bool
	pStayOn    float64
	pStayOff   float64
	onFraction float64
}

var _ ArrivalProcess = (*BurstyArrivals)(nil)

// NewBurstyArrivals wraps prob/sizes Bernoulli arrivals in an on/off
// modulation. onFraction in (0, 1] is the long-run fraction of slots in
// the on state; meanBurstSlots >= 1 is the expected on-period length.
// onFraction = 1 degenerates to the plain process.
func NewBurstyArrivals(prob [][]float64, sizes stats.Sampler, onFraction, meanBurstSlots float64, seed uint64) (*BurstyArrivals, error) {
	if onFraction <= 0 || onFraction > 1 {
		return nil, fmt.Errorf("switchsim: on fraction %g outside (0, 1]", onFraction)
	}
	if meanBurstSlots < 1 {
		return nil, fmt.Errorf("switchsim: mean burst %g below one slot", meanBurstSlots)
	}
	scale := 1 / onFraction
	// The scaled per-slot probabilities must stay valid.
	scaled := make([][]float64, len(prob))
	for i, row := range prob {
		scaled[i] = make([]float64, len(row))
		for j, p := range row {
			sp := p * scale
			if sp > 1 {
				return nil, fmt.Errorf("switchsim: bursty probability [%d][%d] = %g > 1 (reduce load or raise on fraction)", i, j, sp)
			}
			scaled[i][j] = sp
		}
	}
	rng := stats.NewRNG(seed)
	base, err := NewBernoulliArrivals(scaled, sizes, rng.Uint64())
	if err != nil {
		return nil, err
	}
	// Mean on-period = 1/(1-pStayOn) => pStayOn = 1 - 1/meanBurst.
	pStayOn := 1 - 1/meanBurstSlots
	// Stationary on-fraction f = pOffToOn / (pOffToOn + pOnToOff):
	// solve pStayOff from f and pStayOn.
	pOnToOff := 1 - pStayOn
	pOffToOn := onFraction * pOnToOff / (1 - onFraction + 1e-15)
	if pOffToOn > 1 {
		pOffToOn = 1
	}
	return &BurstyArrivals{
		base:       base,
		rng:        rng,
		on:         true,
		pStayOn:    pStayOn,
		pStayOff:   1 - pOffToOn,
		onFraction: onFraction,
	}, nil
}

// Arrivals steps the modulating chain and draws from the base process only
// in the on state.
func (b *BurstyArrivals) Arrivals(t int64) []FlowArrival {
	if b.on {
		if b.rng.Float64() >= b.pStayOn {
			b.on = false
		}
	} else if b.rng.Float64() >= b.pStayOff {
		b.on = true
	}
	if !b.on {
		return nil
	}
	return b.base.Arrivals(t)
}

// MeanRateMatrix returns the long-run λij (the base matrix scaled back by
// the on fraction).
func (b *BurstyArrivals) MeanRateMatrix() [][]float64 {
	m := b.base.RateMatrix()
	for i := range m {
		for j := range m[i] {
			m[i][j] *= b.onFraction
		}
	}
	return m
}

// UniformLoadProb builds a probability matrix that offers the given
// per-port packet load (pkt/slot) spread uniformly over all off-diagonal
// VOQs, for flows with mean size meanPackets. It returns an error when the
// requested load is infeasible for Bernoulli arrivals (probability > 1).
func UniformLoadProb(n int, load, meanPackets float64) ([][]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("switchsim: need at least 2 ports, got %d", n)
	}
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("switchsim: per-port load %g outside (0, 1]", load)
	}
	if meanPackets < 1 {
		return nil, fmt.Errorf("switchsim: mean size %g below one packet", meanPackets)
	}
	// p = load / ((n-1) * mean) <= 1 always holds given the validations
	// above (load <= 1, n >= 2, mean >= 1).
	p := load / float64(n-1) / meanPackets
	prob := make([][]float64, n)
	for i := range prob {
		prob[i] = make([]float64, n)
		for j := range prob[i] {
			if i != j {
				prob[i][j] = p
			}
		}
	}
	return prob, nil
}
