package switchsim

import (
	"math"
	"testing"
	"testing/quick"

	"basrpt/internal/birkhoff"
	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
)

func TestNewValidation(t *testing.T) {
	arr := NewScriptedArrivals(nil)
	cases := []Config{
		{N: 0, Scheduler: sched.NewSRPT(), Arrivals: arr},
		{N: 2, Scheduler: nil, Arrivals: arr},
		{N: 2, Scheduler: sched.NewSRPT(), Arrivals: nil},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestScriptedArrivals(t *testing.T) {
	s := NewScriptedArrivals([]FlowArrival{
		{Slot: 0, Src: 0, Dst: 1, Packets: 3},
		{Slot: 0, Src: 1, Dst: 0, Packets: 1},
		{Slot: 5, Src: 0, Dst: 1, Packets: 2},
	})
	if got := len(s.Arrivals(0)); got != 2 {
		t.Fatalf("slot 0 arrivals = %d, want 2", got)
	}
	if got := len(s.Arrivals(1)); got != 0 {
		t.Fatalf("slot 1 arrivals = %d, want 0", got)
	}
	if got := len(s.Arrivals(5)); got != 1 {
		t.Fatalf("slot 5 arrivals = %d, want 1", got)
	}
}

func TestSingleFlowDrainsOnePacketPerSlot(t *testing.T) {
	sim, err := New(Config{
		N:         2,
		Scheduler: sched.NewSRPT(),
		Arrivals: NewScriptedArrivals([]FlowArrival{
			{Slot: 0, Src: 0, Dst: 1, Packets: 3},
		}),
		ValidateDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := sim.DepartedPackets(); got != 3 {
		t.Fatalf("departed = %g, want 3", got)
	}
	if got := sim.CompletedFlows(); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	// Arrived slot 0, finished during slot 2 -> FCT 3 slots.
	cs := sim.FCT().Stats(flow.ClassOther)
	if cs.Count != 1 || math.Abs(cs.MeanMs-3000) > 1e-9 { // 3 "seconds" in ms
		t.Fatalf("FCT stats = %+v, want one 3-slot completion", cs)
	}
	if got := sim.Backlog(); got != 0 {
		t.Fatalf("backlog = %g, want 0", got)
	}
}

// TestFig1SRPTLeavesOnePacket reproduces the paper's Figure 1(b): under
// SRPT the two 1-packet flows preempt f1's ports in consecutive slots and
// f1 still holds a packet after 6 slots, even though total offered load
// fits in 6 slots per bottleneck.
func TestFig1SRPTLeavesOnePacket(t *testing.T) {
	// Ports: 0 = host A (src of f1, f2), 1 = host D (src of f3),
	// 2 = host B (dst of f2), 3 = host C (dst of f1, f3).
	arrivals := []FlowArrival{
		{Slot: 0, Src: 0, Dst: 3, Packets: 5}, // f1
		{Slot: 0, Src: 0, Dst: 2, Packets: 1}, // f2
		{Slot: 1, Src: 1, Dst: 3, Packets: 1}, // f3
	}
	sim, err := New(Config{
		N:                 4,
		Scheduler:         sched.NewSRPT(),
		Arrivals:          NewScriptedArrivals(arrivals),
		ValidateDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(6); err != nil {
		t.Fatal(err)
	}
	if got := sim.Backlog(); got != 1 {
		t.Fatalf("SRPT backlog after 6 slots = %g, want 1", got)
	}
	if got := sim.CompletedFlows(); got != 2 {
		t.Fatalf("completed = %d, want 2 (f2, f3)", got)
	}
}

// TestFig1BacklogAwareCompletesAll reproduces Figure 1(c): a backlog-aware
// discipline (fast BASRPT with small V) gives f1 the early slots, the two
// short flows still finish, and all 7 packets leave within 6 slots.
func TestFig1BacklogAwareCompletesAll(t *testing.T) {
	arrivals := []FlowArrival{
		{Slot: 0, Src: 0, Dst: 3, Packets: 5},
		{Slot: 0, Src: 0, Dst: 2, Packets: 1},
		{Slot: 1, Src: 1, Dst: 3, Packets: 1},
	}
	sim, err := New(Config{
		N:                 4,
		Scheduler:         sched.NewFastBASRPT(2),
		Arrivals:          NewScriptedArrivals(arrivals),
		ValidateDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(6); err != nil {
		t.Fatal(err)
	}
	if got := sim.Backlog(); got != 0 {
		t.Fatalf("backlog-aware backlog after 6 slots = %g, want 0", got)
	}
	if got := sim.CompletedFlows(); got != 3 {
		t.Fatalf("completed = %d, want 3", got)
	}
	// Throughput gain: 7 packets in 6 slots vs SRPT's 6.
	if got := sim.DepartedPackets(); got != 7 {
		t.Fatalf("departed = %g, want 7", got)
	}
}

func TestOnSlotObservesDecisions(t *testing.T) {
	var slots []int64
	var sizes []int
	sim, err := New(Config{
		N:         2,
		Scheduler: sched.NewSRPT(),
		Arrivals: NewScriptedArrivals([]FlowArrival{
			{Slot: 0, Src: 0, Dst: 1, Packets: 2},
		}),
		OnSlot: func(t int64, decision []*flow.Flow) {
			slots = append(slots, t)
			sizes = append(sizes, len(decision))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 || slots[2] != 2 {
		t.Fatalf("OnSlot calls = %v", slots)
	}
	if sizes[0] != 1 || sizes[1] != 1 || sizes[2] != 0 {
		t.Fatalf("decision sizes = %v, want [1 1 0]", sizes)
	}
}

func TestBernoulliArrivalsValidation(t *testing.T) {
	sizes := stats.Constant{Value: 2}
	if _, err := NewBernoulliArrivals(nil, sizes, 1); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := NewBernoulliArrivals([][]float64{{0.5}}, nil, 1); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if _, err := NewBernoulliArrivals([][]float64{{1.5}}, sizes, 1); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := NewBernoulliArrivals([][]float64{{0.1, 0.2}}, sizes, 1); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestBernoulliRateMatrixMatchesEmpirical(t *testing.T) {
	prob := [][]float64{
		{0, 0.2},
		{0.1, 0},
	}
	arr, err := NewBernoulliArrivals(prob, stats.Constant{Value: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := arr.RateMatrix()
	if math.Abs(want[0][1]-0.6) > 1e-12 || math.Abs(want[1][0]-0.3) > 1e-12 {
		t.Fatalf("RateMatrix = %v", want)
	}
	const slots = 200000
	got := [][]float64{{0, 0}, {0, 0}}
	for t := int64(0); t < slots; t++ {
		for _, a := range arr.Arrivals(t) {
			got[a.Src][a.Dst] += float64(a.Packets)
		}
	}
	for i := range got {
		for j := range got[i] {
			rate := got[i][j] / slots
			if math.Abs(rate-want[i][j]) > 0.02 {
				t.Fatalf("empirical rate[%d][%d] = %g, want %g", i, j, rate, want[i][j])
			}
		}
	}
}

func TestUniformLoadProb(t *testing.T) {
	prob, err := UniformLoadProb(4, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewBernoulliArrivals(prob, stats.Constant{Value: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lambda := arr.RateMatrix()
	rows, cols := birkhoff.LineSums(lambda)
	for i := range rows {
		if math.Abs(rows[i]-0.8) > 1e-9 || math.Abs(cols[i]-0.8) > 1e-9 {
			t.Fatalf("line sums = %v / %v, want 0.8", rows, cols)
		}
	}
	if _, err := UniformLoadProb(1, 0.5, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := UniformLoadProb(4, 1.5, 1); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if _, err := UniformLoadProb(4, 0.5, 0.2); err == nil {
		t.Fatal("sub-packet mean accepted")
	}
}

// TestConservation: arrived = departed + backlog at every checkpoint, for
// random loads and schedulers.
func TestConservation(t *testing.T) {
	schedulers := []sched.Scheduler{
		sched.NewSRPT(),
		sched.NewFastBASRPT(100),
		sched.NewMaxWeight(),
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(4)
		prob, err := UniformLoadProb(n, 0.3+r.Float64()*0.6, 2)
		if err != nil {
			return false
		}
		arr, err := NewBernoulliArrivals(prob, stats.Uniform{Lo: 1, Hi: 5}, seed)
		if err != nil {
			return false
		}
		sim, err := New(Config{
			N:                 n,
			Scheduler:         schedulers[seed%uint64(len(schedulers))],
			Arrivals:          arr,
			ValidateDecisions: true,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if err := sim.Step(); err != nil {
				return false
			}
			if math.Abs(sim.ArrivedPackets()-sim.DepartedPackets()-sim.Backlog()) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkConservingUnderLoad: with a single-VOQ workload the switch
// transmits exactly one packet per slot while the queue is non-empty.
func TestWorkConservingUnderLoad(t *testing.T) {
	sim, err := New(Config{
		N:         2,
		Scheduler: sched.NewSRPT(),
		Arrivals: NewScriptedArrivals([]FlowArrival{
			{Slot: 0, Src: 0, Dst: 1, Packets: 10},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		if got := sim.DepartedPackets(); got != float64(i+1) {
			t.Fatalf("slot %d: departed = %g, want %d", i, got, i+1)
		}
	}
}

// TestMaxWeightStabilizesHighLoad: under 90% uniform load the MaxWeight and
// fast-BASRPT backlogs stay bounded while the series' growth ratio stays
// small. (Statistical, but the margin is wide at these sizes.)
func TestStabilityAtHighLoadForBacklogAware(t *testing.T) {
	const n = 4
	prob, err := UniformLoadProb(n, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sched.Scheduler{sched.NewMaxWeight(), sched.NewFastBASRPT(50)} {
		arr, err := NewBernoulliArrivals(prob, stats.Uniform{Lo: 1, Hi: 3.001}, 17)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(Config{N: n, Scheduler: s, Arrivals: arr, SampleEvery: 50})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(30000); err != nil {
			t.Fatal(err)
		}
		rep := sim.TotalBacklogSeries().Trend(1.0)
		if rep.Verdict.String() != "stable" {
			t.Fatalf("%s backlog growing at 0.9 load: ratio %.2f mean %.1f",
				s.Name(), rep.GrowthRatio, rep.MeanLevel)
		}
	}
}

func TestLyapunovValue(t *testing.T) {
	sim, err := New(Config{
		N:         2,
		Scheduler: sched.NewSRPT(),
		Arrivals: NewScriptedArrivals([]FlowArrival{
			{Slot: 0, Src: 0, Dst: 1, Packets: 3},
			{Slot: 0, Src: 1, Dst: 0, Packets: 4},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Before any step, queues are empty.
	if got := sim.LyapunovValue(); got != 0 {
		t.Fatalf("initial L = %g", got)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	// After slot 0 both flows transmitted one packet: backlogs 2 and 3.
	if got, want := sim.LyapunovValue(), (2.0*2+3.0*3)/2; got != want {
		t.Fatalf("L = %g, want %g", got, want)
	}
}

func TestBurstyArrivalsValidation(t *testing.T) {
	prob, err := UniformLoadProb(3, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := stats.Constant{Value: 2}
	if _, err := NewBurstyArrivals(prob, sizes, 0, 5, 1); err == nil {
		t.Fatal("zero on-fraction accepted")
	}
	if _, err := NewBurstyArrivals(prob, sizes, 1.5, 5, 1); err == nil {
		t.Fatal("on-fraction > 1 accepted")
	}
	if _, err := NewBurstyArrivals(prob, sizes, 0.5, 0.5, 1); err == nil {
		t.Fatal("sub-slot burst accepted")
	}
	// Scaling 0.9 load by 1/0.1 would exceed probability 1.
	hot, err := UniformLoadProb(2, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBurstyArrivals(hot, stats.Constant{Value: 1}, 0.1, 5, 1); err == nil {
		t.Fatal("invalid scaled probability accepted")
	}
}

func TestBurstyMeanRatePreserved(t *testing.T) {
	prob, err := UniformLoadProb(3, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewBurstyArrivals(prob, stats.Uniform{Lo: 1, Hi: 3.001}, 0.4, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := arr.MeanRateMatrix()
	const slots = 400000
	got := make([][]float64, 3)
	for i := range got {
		got[i] = make([]float64, 3)
	}
	for s := int64(0); s < slots; s++ {
		for _, a := range arr.Arrivals(s) {
			got[a.Src][a.Dst] += float64(a.Packets)
		}
	}
	for i := range got {
		for j := range got[i] {
			rate := got[i][j] / slots
			if math.Abs(rate-want[i][j]) > 0.03 {
				t.Fatalf("rate[%d][%d] = %g, want ~%g", i, j, rate, want[i][j])
			}
		}
	}
}

// TestBurstinessRaisesBacklog: identical mean load, burstier arrivals ->
// larger standing backlog under the same stable scheduler (the paper's
// Section IV-B burstiness observation).
func TestBurstinessRaisesBacklog(t *testing.T) {
	const n = 4
	prob, err := UniformLoadProb(n, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := stats.Uniform{Lo: 1, Hi: 3.001}
	run := func(arr ArrivalProcess) float64 {
		sim, err := New(Config{
			N:           n,
			Scheduler:   sched.NewFastBASRPT(50),
			Arrivals:    arr,
			SampleEvery: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(60000); err != nil {
			t.Fatal(err)
		}
		return sim.TotalBacklogSeries().Mean()
	}
	smooth, err := NewBernoulliArrivals(prob, sizes, 7)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := NewBurstyArrivals(prob, sizes, 0.75, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	smoothBacklog := run(smooth)
	burstyBacklog := run(bursty)
	if burstyBacklog <= smoothBacklog {
		t.Fatalf("bursty backlog %g <= smooth %g", burstyBacklog, smoothBacklog)
	}
}

// TestBirkhoffRandomStabilizesSlottedSwitch closes the loop on the paper's
// Section IV-A existence argument: the randomized schedule built from the
// arrival rate matrix (service rate >= lambda + epsilon per VOQ) keeps the
// slotted switch stable at high admissible load, despite being oblivious
// to queue state.
func TestBirkhoffRandomStabilizesSlottedSwitch(t *testing.T) {
	const n = 4
	prob, err := UniformLoadProb(n, 0.85, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := stats.Uniform{Lo: 1, Hi: 3.001}
	probe, err := NewBernoulliArrivals(prob, sizes, 3)
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.NewBirkhoffRandom(probe.RateMatrix(), 11)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewBernoulliArrivals(prob, sizes, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		N:           n,
		Scheduler:   scheduler,
		Arrivals:    arr,
		SampleEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(40000); err != nil {
		t.Fatal(err)
	}
	rep := sim.TotalBacklogSeries().Trend(0.5)
	if rep.Verdict != stats.TrendStable {
		t.Fatalf("birkhoff-random backlog %s (ratio %.2f, mean %.1f)",
			rep.Verdict, rep.GrowthRatio, rep.MeanLevel)
	}
	// Oblivious scheduling pays in backlog relative to MaxWeight but must
	// still drain: conservation sanity.
	if sim.DepartedPackets() == 0 {
		t.Fatal("no departures")
	}
}
