package switchsim

import (
	"fmt"

	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
)

// Config parameterizes a slotted-switch run.
type Config struct {
	// N is the port count.
	N int
	// Scheduler picks the flows to serve each slot.
	Scheduler sched.Scheduler
	// Arrivals feeds flows into the switch.
	Arrivals ArrivalProcess
	// SampleEvery records backlog/Lyapunov series every k slots (default 1).
	SampleEvery int64
	// OnSlot, when non-nil, observes each slot's decision at decision time
	// (before transmission); the Figure 1 example prints the slot-by-slot
	// schedule from it and the Theorem 1 harness samples ȳ.
	OnSlot func(t int64, decision []*flow.Flow)
	// ValidateDecisions re-checks the crossbar constraint on every slot.
	// Cheap insurance in tests; off by default in benchmarks.
	ValidateDecisions bool
	// Loss, when non-nil, drops each scheduled packet with a seeded
	// Bernoulli draw — the explicit L(t) of Eq. (1). A dropped packet
	// stays in its VOQ and is retransmitted in a later slot, so byte
	// conservation (arrived = departed + backlog) still holds.
	// faults.Injector satisfies this.
	Loss PacketDropper
	// Obs, when non-nil, receives occupancy/loss instrumentation: the
	// "switch.arrived_packets" / "switch.departed_packets" /
	// "switch.packets_lost" / "switch.completed_flows" counters, the
	// "switch.total_backlog" occupancy gauge (sampled on the SampleEvery
	// cadence, with its high-water mark), and a "switch.drop" trace event
	// per lost packet (T is the slot index, Port the ingress). A nil Obs
	// costs one pointer comparison per probe.
	Obs *obs.Obs
}

// PacketDropper decides per scheduled packet whether it is lost in
// flight. Implementations must be deterministic given their seed.
type PacketDropper interface {
	DropPacket() bool
}

// Sim is a slotted input-queued switch simulation. Create with New, advance
// with Step or Run, then read the accumulated metrics.
type Sim struct {
	cfg   Config
	table *flow.Table
	slot  int64

	nextID flow.ID

	arrivedPackets  float64
	departedPackets float64
	lostPackets     int64
	completedFlows  int

	fct           *metrics.FCT
	totalBacklog  metrics.Series
	maxPortSeries metrics.Series
	lyapunov      metrics.Series

	// Instrumentation, resolved once at New (nil no-ops when cfg.Obs is nil).
	cArrived   *obs.Counter
	cDeparted  *obs.Counter
	cLost      *obs.Counter
	cCompleted *obs.Counter
	gBacklog   *obs.Gauge
}

// New validates the configuration and builds a simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("switchsim: invalid port count %d", cfg.N)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("switchsim: nil scheduler")
	}
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("switchsim: nil arrival process")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	s := &Sim{
		cfg:    cfg,
		table:  flow.NewTable(cfg.N),
		nextID: 1,
		fct:    metrics.NewFCT(),
	}
	s.cArrived = cfg.Obs.Counter("switch.arrived_packets")
	s.cDeparted = cfg.Obs.Counter("switch.departed_packets")
	s.cLost = cfg.Obs.Counter("switch.packets_lost")
	s.cCompleted = cfg.Obs.Counter("switch.completed_flows")
	s.gBacklog = cfg.Obs.Gauge("switch.total_backlog")
	return s, nil
}

// Slot returns the index of the next slot to execute.
func (s *Sim) Slot() int64 { return s.slot }

// Step executes one slot: arrivals at the beginning of the slot, one
// scheduling decision, one packet transmitted per selected flow, then
// sampling. This realizes Eq. (1): X(t+1) = X(t) + A(t) − R(t) + L(t),
// with the rectification L implicit because only queued packets transmit.
func (s *Sim) Step() error {
	t := s.slot
	for _, a := range s.cfg.Arrivals.Arrivals(t) {
		if a.Packets <= 0 {
			continue
		}
		f := flow.NewFlow(s.nextID, a.Src, a.Dst, flow.ClassOther, float64(a.Packets), float64(t))
		s.nextID++
		s.table.Add(f)
		s.arrivedPackets += float64(a.Packets)
		s.cArrived.Add(int64(a.Packets))
	}

	decision := s.cfg.Scheduler.Schedule(s.table)
	if s.cfg.ValidateDecisions {
		if err := sched.ValidateDecision(s.cfg.N, decision); err != nil {
			return fmt.Errorf("slot %d: %w", t, err)
		}
	}
	if s.cfg.OnSlot != nil {
		// Observe at decision time, before transmission, so penalty
		// measurements (ȳ) see the remaining sizes the scheduler saw.
		s.cfg.OnSlot(t, decision)
	}
	for _, f := range decision {
		if s.cfg.Loss != nil && s.cfg.Loss.DropPacket() {
			// The scheduled packet is lost in flight: it re-enters its VOQ
			// (i.e. is never drained) and the slot's service is wasted —
			// Eq. (1)'s X(t+1) = X(t) + A(t) − R(t) + L(t) with L(t) = 1.
			s.lostPackets++
			s.cLost.Inc()
			s.cfg.Obs.Emit(float64(t), "switch.drop", f.Src, 1, "")
			continue
		}
		s.departedPackets += s.table.Drain(f, 1)
		s.cDeparted.Inc()
		if f.Remaining <= 0 {
			s.table.Remove(f)
			s.completedFlows++
			s.cCompleted.Inc()
			// FCT in slots: a flow arriving at the beginning of slot a and
			// finishing during slot c has occupied c − a + 1 slots.
			s.fct.Add(flow.ClassOther, float64(t)-f.Arrival+1)
		}
	}

	if t%s.cfg.SampleEvery == 0 {
		ft := float64(t)
		s.gBacklog.Set(s.table.TotalBacklog())
		s.totalBacklog.Add(ft, s.table.TotalBacklog())
		_, maxB := s.table.MaxIngressBacklog()
		s.maxPortSeries.Add(ft, maxB)
		s.lyapunov.Add(ft, s.LyapunovValue())
	}
	s.slot++
	return nil
}

// Run executes the given number of slots.
func (s *Sim) Run(slots int64) error {
	for i := int64(0); i < slots; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// LyapunovValue computes L(X) = ½ Σij Xij² over the current state.
func (s *Sim) LyapunovValue() float64 {
	var sum float64
	for _, q := range s.table.NonEmpty(nil) {
		b := q.Backlog()
		sum += b * b
	}
	return sum / 2
}

// Table exposes the live VOQ state (read-only use expected).
func (s *Sim) Table() *flow.Table { return s.table }

// FCT returns the completion-time collector (FCTs are in slots).
func (s *Sim) FCT() *metrics.FCT { return s.fct }

// TotalBacklogSeries returns the sampled total backlog (packets).
func (s *Sim) TotalBacklogSeries() *metrics.Series { return &s.totalBacklog }

// MaxPortBacklogSeries returns the sampled worst ingress-port backlog.
func (s *Sim) MaxPortBacklogSeries() *metrics.Series { return &s.maxPortSeries }

// LyapunovSeries returns the sampled L(X) series.
func (s *Sim) LyapunovSeries() *metrics.Series { return &s.lyapunov }

// ArrivedPackets returns the cumulative packets offered.
func (s *Sim) ArrivedPackets() float64 { return s.arrivedPackets }

// DepartedPackets returns the cumulative packets transmitted.
func (s *Sim) DepartedPackets() float64 { return s.departedPackets }

// LostPackets returns the cumulative scheduled packets lost in flight
// (zero without a Loss process).
func (s *Sim) LostPackets() int64 { return s.lostPackets }

// CompletedFlows returns the number of fully transmitted flows.
func (s *Sim) CompletedFlows() int { return s.completedFlows }

// Backlog returns the packets currently queued; by construction it always
// equals ArrivedPackets − DepartedPackets (conservation, property-tested).
func (s *Sim) Backlog() float64 { return s.table.TotalBacklog() }
