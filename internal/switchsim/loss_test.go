package switchsim

import (
	"math"
	"testing"

	"basrpt/internal/faults"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
)

// alwaysDrop loses every scheduled packet.
type alwaysDrop struct{}

func (alwaysDrop) DropPacket() bool { return true }

// lossSim builds a loaded switch with the given packet dropper.
func lossSim(t *testing.T, n int, load float64, seed uint64, loss PacketDropper) *Sim {
	t.Helper()
	prob, err := UniformLoadProb(n, load, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewBernoulliArrivals(prob, stats.Uniform{Lo: 1, Hi: 5}, seed)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		N:                 n,
		Scheduler:         sched.NewFastBASRPT(100),
		Arrivals:          arr,
		ValidateDecisions: true,
		Loss:              loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestPacketLossConservation: with Eq. (1)'s L(t) active, a dropped packet
// re-enters its VOQ, so arrived = departed + backlog holds every slot.
func TestPacketLossConservation(t *testing.T) {
	schedule, err := faults.Generate(faults.Params{Seed: 6, Horizon: 1, PacketLossProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sim := lossSim(t, 4, 0.7, 8, faults.NewInjector(schedule))
	for i := 0; i < 500; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim.ArrivedPackets()-sim.DepartedPackets()-sim.Backlog()) > 1e-6 {
			t.Fatalf("slot %d: conservation violated (arrived %g, departed %g, backlog %g)",
				i, sim.ArrivedPackets(), sim.DepartedPackets(), sim.Backlog())
		}
	}
	if sim.LostPackets() == 0 {
		t.Fatal("20% loss over 500 loaded slots dropped nothing")
	}
	if sim.DepartedPackets() == 0 {
		t.Fatal("partial loss stopped all departures")
	}
}

// TestTotalLossBlocksAllService: with every packet lost the switch departs
// nothing — all arrivals pile up as backlog, and the loss counter accounts
// every wasted service opportunity.
func TestTotalLossBlocksAllService(t *testing.T) {
	sim := lossSim(t, 3, 0.6, 5, alwaysDrop{})
	for i := 0; i < 100; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.DepartedPackets() != 0 {
		t.Fatalf("departed %g packets under total loss", sim.DepartedPackets())
	}
	if sim.Backlog() != sim.ArrivedPackets() {
		t.Fatalf("backlog %g != arrived %g under total loss", sim.Backlog(), sim.ArrivedPackets())
	}
	if sim.LostPackets() == 0 {
		t.Fatal("no losses counted")
	}
}

// TestPacketLossDeterministic: the same workload seed and fault seed
// reproduce the lossy run exactly.
func TestPacketLossDeterministic(t *testing.T) {
	run := func() (float64, float64, int64) {
		schedule, err := faults.Generate(faults.Params{Seed: 12, Horizon: 1, PacketLossProb: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		sim := lossSim(t, 4, 0.8, 3, faults.NewInjector(schedule))
		if err := sim.Run(300); err != nil {
			t.Fatal(err)
		}
		return sim.ArrivedPackets(), sim.DepartedPackets(), sim.LostPackets()
	}
	a1, d1, l1 := run()
	a2, d2, l2 := run()
	if a1 != a2 || d1 != d2 || l1 != l2 {
		t.Fatalf("lossy run not deterministic: (%g %g %d) vs (%g %g %d)", a1, d1, l1, a2, d2, l2)
	}
}
