package dtmc

import (
	"errors"
	"math"
	"testing"
)

func uniformProb(n int, p float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = p
		}
	}
	return out
}

func TestNewChainValidation(t *testing.T) {
	ok := uniformProb(2, 0.1)
	cases := []struct {
		name string
		fn   func() (*Chain, error)
	}{
		{"n too small", func() (*Chain, error) { return NewChain(1, 5, uniformProb(1, 0.1), 1, ShortestFirst()) }},
		{"n too large", func() (*Chain, error) { return NewChain(4, 5, uniformProb(4, 0.1), 1, ShortestFirst()) }},
		{"bad cap", func() (*Chain, error) { return NewChain(2, 0, ok, 1, ShortestFirst()) }},
		{"bad size", func() (*Chain, error) { return NewChain(2, 5, ok, 0, ShortestFirst()) }},
		{"nil policy", func() (*Chain, error) { return NewChain(2, 5, ok, 1, nil) }},
		{"ragged prob", func() (*Chain, error) { return NewChain(2, 5, [][]float64{{0.1}}, 1, ShortestFirst()) }},
		{"bad prob", func() (*Chain, error) { return NewChain(2, 5, uniformProb(2, 1.5), 1, ShortestFirst()) }},
		{"state blowup", func() (*Chain, error) { return NewChain(3, 200, uniformProb(3, 0.1), 1, ShortestFirst()) }},
	}
	for _, tt := range cases {
		if _, err := tt.fn(); !errors.Is(err, ErrBadModel) {
			t.Fatalf("%s: err = %v, want ErrBadModel", tt.name, err)
		}
	}
}

func TestPolicyDecisions(t *testing.T) {
	// 2x2 switch, backlogs: q00=5, q01=1, q10=2, q11=0.
	x := []int{5, 1, 2, 0}
	// Shortest first: q01 (1) wins ingress 0 / egress 1; then q10 (2).
	d := ShortestFirst().Decide(x, 2, 3)
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("shortest-first decision = %v, want [1 2]", d)
	}
	// Longest first: q00 (5) wins; q01 blocked (ingress), q10 blocked
	// (egress 0)... q10 is (1,0): egress 0 taken by q00. Only q00? q11
	// empty. So decision = [0].
	d = LongestFirst().Decide(x, 2, 3)
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("longest-first decision = %v, want [0]", d)
	}
	// Backlog-aware with small V behaves like longest-first here.
	d = BacklogAware(0.5).Decide(x, 2, 3)
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("backlog-aware(0.5) decision = %v, want [0]", d)
	}
	// Huge V behaves like shortest-head-first: heads are min(X, 3):
	// q00 head 3, q01 head 1, q10 head 2 -> q01 then q10.
	d = BacklogAware(1e6).Decide(x, 2, 3)
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("backlog-aware(1e6) decision = %v, want [1 2]", d)
	}
}

func TestPolicyNames(t *testing.T) {
	if ShortestFirst().Name() != "shortest-first" ||
		LongestFirst().Name() != "longest-first" ||
		BacklogAware(5).Name() != "backlog-aware(V=5)" {
		t.Fatal("policy names wrong")
	}
}

func TestStationaryLowLoadConverges(t *testing.T) {
	// Light load: every policy is stable, tiny backlog, no cap mass.
	chain, err := NewChain(2, 6, uniformProb(2, 0.05), 1, ShortestFirst())
	if err != nil {
		t.Fatal(err)
	}
	res, err := chain.Stationary(2000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.CapMass > 1e-4 {
		t.Fatalf("cap mass %g at trivial load", res.CapMass)
	}
	if res.ExpectedBacklog > 1 {
		t.Fatalf("expected backlog %g too high at trivial load", res.ExpectedBacklog)
	}
	// Served rate must match arrival rate in steady state (flow balance):
	// 4 queues x 0.05 arrivals x 1 packet = 0.2 pkt/slot.
	if math.Abs(res.ServedRate-0.2) > 0.01 {
		t.Fatalf("served rate %g, want ~0.2", res.ServedRate)
	}
}

func TestStationaryInvalidArgs(t *testing.T) {
	chain, err := NewChain(2, 3, uniformProb(2, 0.05), 1, ShortestFirst())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Stationary(0, 1e-9); err == nil {
		t.Fatal("maxIter 0 accepted")
	}
	if _, err := chain.Stationary(10, 0); err == nil {
		t.Fatal("tol 0 accepted")
	}
}

// TestDistributionStaysNormalized: after many iterations the distribution
// still sums to 1 (transition rows are stochastic).
func TestDistributionStaysNormalized(t *testing.T) {
	chain, err := NewChain(2, 4, uniformProb(2, 0.2), 2, BacklogAware(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := chain.Stationary(300, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// ExpectedBacklog is a probability-weighted sum; if mass leaked the
	// served-rate identity breaks. Arrivals: 4 x 0.2 x 2 = 1.6 offered,
	// but capped chain serves at most 2/slot; just sanity-bound it.
	if res.ServedRate < 0 || res.ServedRate > 2 {
		t.Fatalf("served rate %g out of range", res.ServedRate)
	}
	if res.ExpectedBacklog < 0 || res.ExpectedBacklog > float64(4*4) {
		t.Fatalf("expected backlog %g out of range", res.ExpectedBacklog)
	}
}

// TestBacklogAwareBeatsShortestFirstNearSaturation is the DTMC version of
// the paper's stability claim (experiment E10): near saturation the
// shortest-first (SRPT-analog) chain parks much more stationary mass at
// the truncation cap than the backlog-aware chain, which keeps queues
// balanced.
func TestBacklogAwareBeatsShortestFirstNearSaturation(t *testing.T) {
	// Asymmetric load with multi-packet flows: ingress 0 sends to both
	// egresses, mirroring the paper's Figure 1 contention pattern.
	prob := [][]float64{
		{0.28, 0.28},
		{0.28, 0.28},
	}
	const (
		capacity = 10
		size     = 3 // 0.28 * 3 * 2 = 1.68... per line: 0.28*3*2 = 1.68 > 1
	)
	// That would be overloaded; scale down to ~0.9 per line:
	// per-line load = 2 * p * size = 0.9 -> p = 0.15.
	prob = [][]float64{
		{0.15, 0.15},
		{0.15, 0.15},
	}
	run := func(p Policy) *StationaryResult {
		chain, err := NewChain(2, capacity, prob, size, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chain.Stationary(4000, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	srpt := run(ShortestFirst())
	ba := run(BacklogAware(3))
	if ba.CapMass >= srpt.CapMass {
		t.Fatalf("backlog-aware cap mass %g >= shortest-first %g",
			ba.CapMass, srpt.CapMass)
	}
	// (Expected backlog is not compared: truncation discards exactly the
	// mass that would blow up the unstable chain's backlog, so the capped
	// value understates it. Cap mass and served rate are the honest
	// indicators.)
	// The backlog-aware chain should also push more packets through.
	if ba.ServedRate < srpt.ServedRate {
		t.Fatalf("backlog-aware served %g < shortest-first %g",
			ba.ServedRate, srpt.ServedRate)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	chain, err := NewChain(2, 5, uniformProb(2, 0.1), 1, ShortestFirst())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]int, 4)
	for s := 0; s < chain.NumStates(); s++ {
		chain.decode(s, x)
		if got := chain.encode(x); got != s {
			t.Fatalf("round trip %d -> %v -> %d", s, x, got)
		}
	}
}
