// Package dtmc builds the explicit Discrete Time Markov Chain of a small
// input-queued switch and solves for its stationary distribution — the
// stochastic-stability ground truth behind the paper's Section III claim
// that "the evolution can be exactly described by an irreducible DTMC and
// the theorems for DTMC recurrence could be directly used for stability
// analysis".
//
// Modeling note (documented in DESIGN.md §2): the exact flow-level chain
// has an unbounded, combinatorial state space (every multiset of remaining
// flow sizes per VOQ). To stay enumerable, this package models each VOQ as
// an aggregated backlog and expresses the disciplines at queue granularity:
// shortest-backlog-first (the SRPT analog, which inherits its preemption
// pathology), longest-backlog-first (MaxWeight, the V = 0 BASRPT limit),
// and the backlog-aware interpolation keyed by (V/N)·min(X, s) − X, where
// min(X, s) approximates the head flow's remaining size for arrival size s.
// The chain is truncated at a per-VOQ cap; probability mass parked at the
// cap ("cap mass") is the truncated-chain signature of instability — a
// recurrent chain's stationary mass concentrates well below any generous
// cap, while a transient one piles up against it.
package dtmc

import "fmt"

// Policy maps a backlog vector (row-major VOQ order for an n-port switch)
// to the set of served VOQ indices, given the model's fixed arrival size.
// The result must be a matching over non-empty queues.
type Policy interface {
	Name() string
	// Decide returns the served VOQ indices for backlog vector x on an
	// n-port switch whose arrivals carry arriveSize packets.
	Decide(x []int, n, arriveSize int) []int
}

// greedyPolicy serves queues greedily in the order of a key function.
type greedyPolicy struct {
	name string
	key  func(backlog, arriveSize, n int) float64
}

var _ Policy = (*greedyPolicy)(nil)

func (p *greedyPolicy) Name() string { return p.name }

// Decide gathers non-empty queues, orders them by key (selection sort is
// fine at n² ≤ 16 queues), and greedily picks a crossbar matching.
func (p *greedyPolicy) Decide(x []int, n, arriveSize int) []int {
	type cand struct {
		idx int
		key float64
	}
	cands := make([]cand, 0, len(x))
	for idx, backlog := range x {
		if backlog > 0 {
			cands = append(cands, cand{idx: idx, key: p.key(backlog, arriveSize, n)})
		}
	}
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key < cands[best].key ||
				(cands[j].key == cands[best].key && cands[j].idx < cands[best].idx) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	ingressBusy := make([]bool, n)
	egressBusy := make([]bool, n)
	var out []int
	for _, c := range cands {
		i, j := c.idx/n, c.idx%n
		if ingressBusy[i] || egressBusy[j] {
			continue
		}
		ingressBusy[i] = true
		egressBusy[j] = true
		out = append(out, c.idx)
	}
	return out
}

// ShortestFirst is the queue-level SRPT analog: serve the smallest
// non-empty backlogs first.
func ShortestFirst() Policy {
	return &greedyPolicy{
		name: "shortest-first",
		key:  func(backlog, _, _ int) float64 { return float64(backlog) },
	}
}

// LongestFirst is MaxWeight: serve the largest backlogs first.
func LongestFirst() Policy {
	return &greedyPolicy{
		name: "longest-first",
		key:  func(backlog, _, _ int) float64 { return -float64(backlog) },
	}
}

// BacklogAware is the queue-level fast BASRPT analog with weight v:
// key = (v/n)·min(X, s) − X where s is the arrival size.
func BacklogAware(v float64) Policy {
	return &greedyPolicy{
		name: fmt.Sprintf("backlog-aware(V=%g)", v),
		key: func(backlog, arriveSize, n int) float64 {
			head := backlog
			if arriveSize < head {
				head = arriveSize
			}
			return v/float64(n)*float64(head) - float64(backlog)
		},
	}
}
