package dtmc

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadModel reports an invalid chain specification.
var ErrBadModel = errors.New("dtmc: invalid model")

// Chain is the truncated DTMC of a small input-queued switch under a fixed
// policy: states are per-VOQ backlog vectors with entries in [0, Cap].
type Chain struct {
	n          int
	cap        int
	arriveSize int
	prob       []float64 // per-VOQ arrival probability, row-major
	policy     Policy

	numQueues int
	numStates int
	radix     int     // cap + 1
	decisions [][]int // cached policy decision per state
}

// NewChain validates and builds the chain. n is the port count (the state
// space is (cap+1)^(n²), so keep n at 2 and cap modest), prob is the n×n
// per-slot Bernoulli arrival probability matrix, arriveSize the packets per
// arrival.
func NewChain(n, capacity int, prob [][]float64, arriveSize int, policy Policy) (*Chain, error) {
	if n < 2 || n > 3 {
		return nil, fmt.Errorf("%w: n = %d (supported: 2..3)", ErrBadModel, n)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: cap = %d", ErrBadModel, capacity)
	}
	if arriveSize < 1 {
		return nil, fmt.Errorf("%w: arrival size %d", ErrBadModel, arriveSize)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadModel)
	}
	if len(prob) != n {
		return nil, fmt.Errorf("%w: probability matrix is %dx?, want %dx%d", ErrBadModel, len(prob), n, n)
	}
	flat := make([]float64, 0, n*n)
	for i, row := range prob {
		if len(row) != n {
			return nil, fmt.Errorf("%w: probability row %d has %d entries", ErrBadModel, i, len(row))
		}
		for j, p := range row {
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("%w: probability [%d][%d] = %g", ErrBadModel, i, j, p)
			}
			flat = append(flat, p)
		}
	}
	numQueues := n * n
	radix := capacity + 1
	numStates := 1
	for q := 0; q < numQueues; q++ {
		if numStates > 4_000_000/radix {
			return nil, fmt.Errorf("%w: state space too large (cap %d, %d queues)", ErrBadModel, capacity, numQueues)
		}
		numStates *= radix
	}
	c := &Chain{
		n:          n,
		cap:        capacity,
		arriveSize: arriveSize,
		prob:       flat,
		policy:     policy,
		numQueues:  numQueues,
		numStates:  numStates,
		radix:      radix,
	}
	if err := c.cacheDecisions(); err != nil {
		return nil, err
	}
	return c, nil
}

// NumStates returns the truncated state count.
func (c *Chain) NumStates() int { return c.numStates }

// decode writes state index s as a backlog vector into x.
func (c *Chain) decode(s int, x []int) {
	for q := 0; q < c.numQueues; q++ {
		x[q] = s % c.radix
		s /= c.radix
	}
}

// encode is the inverse of decode.
func (c *Chain) encode(x []int) int {
	s := 0
	for q := c.numQueues - 1; q >= 0; q-- {
		s = s*c.radix + x[q]
	}
	return s
}

// cacheDecisions precomputes and validates the policy decision per state.
func (c *Chain) cacheDecisions() error {
	c.decisions = make([][]int, c.numStates)
	x := make([]int, c.numQueues)
	for s := 0; s < c.numStates; s++ {
		c.decode(s, x)
		d := c.policy.Decide(x, c.n, c.arriveSize)
		ingress := make([]bool, c.n)
		egress := make([]bool, c.n)
		for _, idx := range d {
			if idx < 0 || idx >= c.numQueues {
				return fmt.Errorf("dtmc: policy %s served invalid queue %d", c.policy.Name(), idx)
			}
			if x[idx] == 0 {
				return fmt.Errorf("dtmc: policy %s served empty queue %d", c.policy.Name(), idx)
			}
			i, j := idx/c.n, idx%c.n
			if ingress[i] || egress[j] {
				return fmt.Errorf("dtmc: policy %s violated crossbar at state %v", c.policy.Name(), x)
			}
			ingress[i] = true
			egress[j] = true
		}
		c.decisions[s] = d
	}
	return nil
}

// StationaryResult summarizes the solved stationary distribution.
type StationaryResult struct {
	// ExpectedBacklog is the stationary mean of the total backlog.
	ExpectedBacklog float64
	// CapMass is the stationary probability that at least one VOQ sits at
	// the truncation cap — the instability indicator.
	CapMass float64
	// ServedRate is the stationary mean number of packets served per slot.
	ServedRate float64
	// Iterations is the number of power-iteration steps performed.
	Iterations int
	// Converged reports whether the L1 change fell below the tolerance.
	Converged bool
}

// Stationary runs power iteration from the empty state until the L1 change
// between successive distributions falls below tol or maxIter is reached.
func (c *Chain) Stationary(maxIter int, tol float64) (*StationaryResult, error) {
	if maxIter < 1 || tol <= 0 {
		return nil, fmt.Errorf("%w: maxIter %d, tol %g", ErrBadModel, maxIter, tol)
	}
	cur := make([]float64, c.numStates)
	next := make([]float64, c.numStates)
	cur[0] = 1 // start empty

	x := make([]int, c.numQueues)
	served := make([]int, c.numQueues)
	res := &StationaryResult{}

	numCombos := 1 << c.numQueues
	for iter := 1; iter <= maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for s := 0; s < c.numStates; s++ {
			p := cur[s]
			if p == 0 {
				continue
			}
			c.decode(s, x)
			copy(served, x)
			for _, idx := range c.decisions[s] {
				served[idx]--
			}
			// Enumerate the 2^(n²) arrival outcomes.
			for combo := 0; combo < numCombos; combo++ {
				w := p
				for q := 0; q < c.numQueues; q++ {
					if combo&(1<<q) != 0 {
						w *= c.prob[q]
					} else {
						w *= 1 - c.prob[q]
					}
				}
				if w == 0 {
					continue
				}
				sNext := 0
				for q := c.numQueues - 1; q >= 0; q-- {
					v := served[q]
					if combo&(1<<q) != 0 {
						v += c.arriveSize
					}
					if v > c.cap {
						v = c.cap
					}
					sNext = sNext*c.radix + v
				}
				next[sNext] += w
			}
		}
		var delta float64
		for i := range next {
			delta += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		res.Iterations = iter
		if delta < tol {
			res.Converged = true
			break
		}
	}

	// Read off the stationary statistics.
	for s := 0; s < c.numStates; s++ {
		p := cur[s]
		if p == 0 {
			continue
		}
		c.decode(s, x)
		total := 0
		atCap := false
		for _, v := range x {
			total += v
			if v == c.cap {
				atCap = true
			}
		}
		res.ExpectedBacklog += p * float64(total)
		if atCap {
			res.CapMass += p
		}
		res.ServedRate += p * float64(len(c.decisions[s]))
	}
	return res, nil
}
