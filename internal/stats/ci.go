package stats

import "math"

// tCritical95 holds two-sided 95% Student-t critical values for degrees of
// freedom 1..30 (Abramowitz & Stegun table 26.10); beyond the table the
// value decays toward the normal quantile 1.960.
var tCritical95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided Student-t critical value at 95%
// confidence for df degrees of freedom. df <= 0 returns 0 (a confidence
// interval needs at least two observations).
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= len(tCritical95):
		return tCritical95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// MeanCI95 returns the sample mean of values and the half-width of its
// two-sided 95% confidence interval, t(df) · s / √n. Fewer than two values
// yield a zero half-width: dispersion is unobservable from one sample.
func MeanCI95(values []float64) (mean, half float64) {
	var s Summary
	for _, v := range values {
		s.Add(v)
	}
	return s.Mean(), s.CI95()
}

// CI95 returns the half-width of the two-sided 95% confidence interval of
// the summary's mean, or 0 with fewer than two observations.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(int(s.n-1)) * s.StdDev() / math.Sqrt(float64(s.n))
}
