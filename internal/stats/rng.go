// Package stats provides the deterministic statistics substrate used by the
// whole repository: a seedable random number generator, samplers for the
// distributions that appear in the paper's workloads, summary statistics,
// percentile estimation, linear regression for queue-trend detection, and
// histograms.
//
// Everything here is deliberately dependency-free and deterministic given a
// seed, so that simulations and tests are reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random number generator based on the
// PCG-XSH-RR 64/32 construction (O'Neill 2014) with a splitmix64-initialized
// state. It is not safe for concurrent use; each simulator owns its own RNG
// (or derives independent streams via Split).
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream determined by seed.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 to spread low-entropy seeds across the whole state space.
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.state = next()
	r.inc = next() | 1 // stream selector must be odd
	r.Uint32()         // advance away from the seed-correlated first output
}

// Split derives an independent generator from r. The derived stream is
// deterministic given r's current state, and advancing the child does not
// affect the parent (beyond the two draws consumed here).
func (r *RNG) Split() *RNG {
	return NewRNG(uint64(r.Uint32())<<32 | uint64(r.Uint32()))
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at configuration time.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask
	hi = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi += aHi*bHi + (t >> 32)
	return hi, lo
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Pareto returns a bounded-Pareto-distributed value with shape alpha on
// [lo, hi]. Bounded Pareto is the standard model for heavy-tailed flow sizes
// with the 50MB cap observed in the DCTCP measurements.
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("stats: Pareto with invalid parameters")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the polar Box–Muller method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
