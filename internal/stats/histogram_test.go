package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, v := range []float64{5, 10, 15, 25, 35, 100} {
		h.Add(v)
	}
	// Buckets: <=10, <=20, <=30, >30.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d, want 4", h.NumBuckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 values uniform in (0, 40].
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) * 0.4)
	}
	med := h.Quantile(0.5)
	if med < 15 || med > 25 {
		t.Fatalf("median estimate %g, want ~20", med)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 1024, 11)
	if h.NumBuckets() != 12 {
		t.Fatalf("NumBuckets = %d, want 12", h.NumBuckets())
	}
	h.Add(1024)
	if h.Bucket(10) != 1 {
		t.Fatal("value at hi edge should land in final non-overflow bucket")
	}
	h.Add(2048)
	if h.Bucket(11) != 1 {
		t.Fatal("value above hi should land in overflow bucket")
	}
	// Edges must be geometric: ratio between consecutive edges constant.
	ratio := math.Pow(1024, 1.0/10)
	prev := 1.0
	for i := 1; i < 11; i++ {
		prev *= ratio
		_ = prev
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	cases := [][]float64{nil, {}, {2, 1}, {1, 1}}
	for _, edges := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Add(0.5)
	h.Add(1.5)
	h.Add(3)
	s := h.String()
	if !strings.Contains(s, "<=1") || !strings.Contains(s, ">2") {
		t.Fatalf("String output missing labels: %q", s)
	}
}
