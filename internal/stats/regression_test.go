package stats

import (
	"math"
	"testing"
)

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit := FitLine(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 {
		t.Fatalf("Slope = %g, want 2", fit.Slope)
	}
	if math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("Intercept = %g, want 1", fit.Intercept)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine(nil, nil); fit.N != 0 || fit.Slope != 0 {
		t.Fatalf("empty fit = %+v, want zero", fit)
	}
	if fit := FitLine([]float64{3}, []float64{7}); fit.Intercept != 7 || fit.Slope != 0 {
		t.Fatalf("single-point fit = %+v", fit)
	}
	// All x identical: slope undefined, fall back to mean intercept.
	fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 || math.Abs(fit.Intercept-2) > 1e-12 {
		t.Fatalf("vertical fit = %+v, want slope 0 intercept 2", fit)
	}
}

func TestFitSeriesNoisy(t *testing.T) {
	r := NewRNG(77)
	y := make([]float64, 500)
	for i := range y {
		y[i] = 10 + 0.5*float64(i) + r.Norm(0, 2)
	}
	fit := FitSeries(y)
	if math.Abs(fit.Slope-0.5) > 0.05 {
		t.Fatalf("noisy slope = %g, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("noisy R2 = %g, want > 0.9", fit.R2)
	}
}

func TestClassifyTrendGrowing(t *testing.T) {
	// A queue that ramps linearly: unmistakably unstable.
	y := make([]float64, 300)
	for i := range y {
		y[i] = float64(i) * 100
	}
	rep := ClassifyTrend(y, 0.5)
	if rep.Verdict != TrendGrowing {
		t.Fatalf("ramp classified %v (ratio %g), want growing", rep.Verdict, rep.GrowthRatio)
	}
}

func TestClassifyTrendStable(t *testing.T) {
	r := NewRNG(99)
	// A queue fluctuating around a fixed level.
	y := make([]float64, 300)
	for i := range y {
		y[i] = 1000 + r.Norm(0, 100)
	}
	rep := ClassifyTrend(y, 0.5)
	if rep.Verdict != TrendStable {
		t.Fatalf("stationary series classified %v (ratio %g), want stable", rep.Verdict, rep.GrowthRatio)
	}
}

func TestClassifyTrendEdgeCases(t *testing.T) {
	if rep := ClassifyTrend(nil, 0.5); rep.Verdict != TrendStable {
		t.Fatalf("empty series = %v, want stable", rep.Verdict)
	}
	if rep := ClassifyTrend([]float64{5}, 0.5); rep.Verdict != TrendStable {
		t.Fatalf("singleton series = %v, want stable", rep.Verdict)
	}
	// All zeros: mean level zero must not divide by zero.
	if rep := ClassifyTrend(make([]float64, 10), 0.5); rep.Verdict != TrendStable {
		t.Fatalf("zero series = %v, want stable", rep.Verdict)
	}
}

func TestTrendVerdictString(t *testing.T) {
	if TrendStable.String() != "stable" || TrendGrowing.String() != "growing" {
		t.Fatal("verdict strings wrong")
	}
	if TrendVerdict(0).String() != "unknown" {
		t.Fatal("zero verdict should be unknown")
	}
}

func TestClassifyTrendSpikeIsNotGrowth(t *testing.T) {
	// A single late spike should not flag growth: R2 gate catches it.
	y := make([]float64, 200)
	for i := range y {
		y[i] = 100
	}
	y[199] = 1e6
	rep := ClassifyTrend(y, 0.5)
	if rep.Verdict != TrendStable {
		t.Fatalf("single spike classified %v, want stable", rep.Verdict)
	}
}
