package stats

import (
	"math"
	"testing"
)

// FuzzEmpiricalCDFRoundTrip checks CDF/Quantile consistency and bounds for
// arbitrary 3-knot distributions.
func FuzzEmpiricalCDFRoundTrip(f *testing.F) {
	f.Add(1.0, 10.0, 100.0, 0.5, 0.25)
	f.Add(0.001, 0.002, 0.003, 0.1, 0.9)
	f.Add(1e3, 2e6, 5e7, 0.6, 0.95)
	f.Fuzz(func(t *testing.T, v0, v1, v2, p1, q float64) {
		if !(v0 < v1 && v1 < v2) || math.IsNaN(v0) || math.IsInf(v2, 0) {
			t.Skip()
		}
		if !(p1 > 0 && p1 < 1) || math.IsNaN(p1) {
			t.Skip()
		}
		e, err := NewEmpiricalCDF([]CDFPoint{{v0, 0}, {v1, p1}, {v2, 1}})
		if err != nil {
			t.Skip()
		}
		if !(q >= 0 && q <= 1) {
			t.Skip()
		}
		val := e.Quantile(q)
		if val < v0 || val > v2 {
			t.Fatalf("Quantile(%g) = %g outside [%g, %g]", q, val, v0, v2)
		}
		back := e.CDF(val)
		if q > 0 && q < 1 && math.Abs(back-q) > 1e-6 {
			t.Fatalf("CDF(Quantile(%g)) = %g", q, back)
		}
		mean := e.Mean()
		if mean < v0 || mean > v2 {
			t.Fatalf("Mean %g outside support [%g, %g]", mean, v0, v2)
		}
	})
}

// FuzzPercentile checks bounds and monotonicity of the percentile helper.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{1, 5, 3, 200}, 50.0, 90.0)
	f.Add([]byte{7}, 0.0, 100.0)
	f.Fuzz(func(t *testing.T, raw []byte, pa, pb float64) {
		if len(raw) == 0 {
			t.Skip()
		}
		if math.IsNaN(pa) || math.IsNaN(pb) {
			t.Skip()
		}
		values := make([]float64, len(raw))
		minV, maxV := float64(raw[0]), float64(raw[0])
		for i, b := range raw {
			values[i] = float64(b)
			if values[i] < minV {
				minV = values[i]
			}
			if values[i] > maxV {
				maxV = values[i]
			}
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		va := Percentile(values, pa)
		vb := Percentile(values, pb)
		if va > vb {
			t.Fatalf("percentile not monotone: P%g=%g > P%g=%g", pa, va, pb, vb)
		}
		if va < minV || vb > maxV {
			t.Fatalf("percentiles outside data range [%g, %g]: %g, %g", minV, maxV, va, vb)
		}
	})
}
