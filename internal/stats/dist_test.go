package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestConstantSampler(t *testing.T) {
	c := Constant{Value: 20000}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := c.Sample(r); got != 20000 {
			t.Fatalf("Constant.Sample = %g, want 20000", got)
		}
	}
	if c.Mean() != 20000 {
		t.Fatalf("Constant.Mean = %g, want 20000", c.Mean())
	}
}

func TestExponentialSamplerMean(t *testing.T) {
	e := Exponential{Rate: 0.5}
	if got := e.Mean(); got != 2 {
		t.Fatalf("Exponential.Mean = %g, want 2", got)
	}
	r := NewRNG(2)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(e.Sample(r))
	}
	if math.Abs(s.Mean()-2)/2 > 0.03 {
		t.Fatalf("Exponential sample mean = %g, want ~2", s.Mean())
	}
}

func TestUniformSampler(t *testing.T) {
	u := Uniform{Lo: 5, Hi: 15}
	if got := u.Mean(); got != 10 {
		t.Fatalf("Uniform.Mean = %g, want 10", got)
	}
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 5 || v >= 15 {
			t.Fatalf("Uniform sample %g out of [5, 15)", v)
		}
	}
}

func TestEmpiricalCDFValidation(t *testing.T) {
	tests := []struct {
		name   string
		points []CDFPoint
		ok     bool
	}{
		{
			name:   "valid",
			points: []CDFPoint{{0, 0}, {10, 0.5}, {100, 1}},
			ok:     true,
		},
		{
			name:   "too few knots",
			points: []CDFPoint{{0, 0}},
			ok:     false,
		},
		{
			name:   "first prob nonzero",
			points: []CDFPoint{{0, 0.1}, {10, 1}},
			ok:     false,
		},
		{
			name:   "last prob not one",
			points: []CDFPoint{{0, 0}, {10, 0.9}},
			ok:     false,
		},
		{
			name:   "values not increasing",
			points: []CDFPoint{{0, 0}, {0, 0.5}, {10, 1}},
			ok:     false,
		},
		{
			name:   "probs decreasing",
			points: []CDFPoint{{0, 0}, {5, 0.7}, {10, 0.5}, {20, 1}},
			ok:     false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewEmpiricalCDF(tt.points)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok {
				if err == nil {
					t.Fatal("expected error, got nil")
				}
				if !errors.Is(err, ErrBadCDF) {
					t.Fatalf("error %v does not wrap ErrBadCDF", err)
				}
			}
		})
	}
}

func TestEmpiricalCDFQuantileMonotone(t *testing.T) {
	e := MustEmpiricalCDF([]CDFPoint{
		{1000, 0}, {10000, 0.5}, {1e6, 0.9}, {5e7, 1},
	})
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / math.MaxUint16
		b := float64(bRaw) / math.MaxUint16
		if a > b {
			a, b = b, a
		}
		return e.Quantile(a) <= e.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalCDFRoundTrip(t *testing.T) {
	e := MustEmpiricalCDF([]CDFPoint{
		{1000, 0}, {10000, 0.5}, {1e6, 0.9}, {5e7, 1},
	})
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := e.Quantile(p)
		back := e.CDF(v)
		if math.Abs(back-p) > 1e-9 {
			t.Fatalf("CDF(Quantile(%g)) = %g, want %g", p, back, p)
		}
	}
}

func TestEmpiricalCDFBounds(t *testing.T) {
	e := MustEmpiricalCDF([]CDFPoint{{10, 0}, {20, 1}})
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %g, want 10", got)
	}
	if got := e.Quantile(1); got != 20 {
		t.Fatalf("Quantile(1) = %g, want 20", got)
	}
	if got := e.CDF(5); got != 0 {
		t.Fatalf("CDF(5) = %g, want 0", got)
	}
	if got := e.CDF(25); got != 1 {
		t.Fatalf("CDF(25) = %g, want 1", got)
	}
	if got, want := e.Min(), 10.0; got != want {
		t.Fatalf("Min = %g, want %g", got, want)
	}
	if got, want := e.Max(), 20.0; got != want {
		t.Fatalf("Max = %g, want %g", got, want)
	}
}

func TestEmpiricalCDFSampleMeanMatchesAnalytic(t *testing.T) {
	e := MustEmpiricalCDF([]CDFPoint{
		{1000, 0}, {20000, 0.6}, {1e6, 0.95}, {2e7, 1},
	})
	r := NewRNG(9)
	var s Summary
	for i := 0; i < 300000; i++ {
		v := e.Sample(r)
		if v < e.Min() || v > e.Max() {
			t.Fatalf("sample %g out of [%g, %g]", v, e.Min(), e.Max())
		}
		s.Add(v)
	}
	want := e.Mean()
	if math.Abs(s.Mean()-want)/want > 0.03 {
		t.Fatalf("empirical sample mean = %g, want ~%g", s.Mean(), want)
	}
}

func TestScaledSampler(t *testing.T) {
	s := Scaled{S: Constant{Value: 3}, Factor: 7}
	if got := s.Mean(); got != 21 {
		t.Fatalf("Scaled.Mean = %g, want 21", got)
	}
	if got := s.Sample(NewRNG(1)); got != 21 {
		t.Fatalf("Scaled.Sample = %g, want 21", got)
	}
}

func TestMustEmpiricalCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEmpiricalCDF with bad input did not panic")
		}
	}()
	MustEmpiricalCDF([]CDFPoint{{0, 0.5}})
}
