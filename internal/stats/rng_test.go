package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Drawing from the child must not change what the parent produces next.
	ref := NewRNG(7)
	refChild := ref.Split()
	_ = refChild
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatalf("parent stream perturbed by child draws at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(5)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if got := s.Mean(); math.Abs(got-0.5) > 0.005 {
		t.Fatalf("uniform mean = %g, want ~0.5", got)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d drawn %d times out of 70000, badly skewed", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const rate = 2.5
	var s Summary
	for i := 0; i < 200000; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp produced negative value %g", v)
		}
		s.Add(v)
	}
	want := 1 / rate
	if got := s.Mean(); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Exp(%g) mean = %g, want ~%g", rate, got, want)
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	r := NewRNG(17)
	p := BoundedPareto{Alpha: 1.2, Lo: 1000, Hi: 5e7}
	var s Summary
	for i := 0; i < 300000; i++ {
		v := p.Sample(r)
		if v < p.Lo || v > p.Hi {
			t.Fatalf("Pareto sample %g out of [%g, %g]", v, p.Lo, p.Hi)
		}
		s.Add(v)
	}
	want := p.Mean()
	if got := s.Mean(); math.Abs(got-want)/want > 0.1 {
		t.Fatalf("bounded Pareto mean = %g, want ~%g", got, want)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(19)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Norm(10, 3))
	}
	if got := s.Mean(); math.Abs(got-10) > 0.05 {
		t.Fatalf("Norm mean = %g, want ~10", got)
	}
	if got := s.StdDev(); math.Abs(got-3) > 0.05 {
		t.Fatalf("Norm stddev = %g, want ~3", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0},
		{1, 1},
		{math.MaxUint64, math.MaxUint64},
		{math.MaxUint64, 2},
		{0xdeadbeefcafebabe, 0x123456789abcdef0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		// Verify via the identity (a*b) mod 2^64 == lo and a 128-bit check
		// through decomposition.
		if lo != c.a*c.b {
			t.Fatalf("mul64(%d,%d) lo = %d, want %d", c.a, c.b, lo, c.a*c.b)
		}
		// Cross-check hi using per-32-bit long multiplication.
		aLo, aHi := c.a&0xffffffff, c.a>>32
		bLo, bHi := c.b&0xffffffff, c.b>>32
		carry := (aLo*bLo)>>32 + (aHi*bLo+aLo*bHi)&0xffffffff>>0
		_ = carry
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32
		// Account for carries from the middle terms.
		mid := (aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff
		wantHi += mid >> 32
		if hi != wantHi {
			t.Fatalf("mul64(%d,%d) hi = %d, want %d", c.a, c.b, hi, wantHi)
		}
	}
}
