package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming first- and second-moment statistics using
// Welford's numerically stable online algorithm, plus min/max tracking.
// The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s, as if every observation of other had
// been Added to s (Chan et al. parallel variance formula).
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	delta := other.mean - s.mean
	total := s.n + other.n
	s.mean += delta * float64(other.n) / float64(total)
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(total)
	s.n = total
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Percentile returns the p-th percentile (p in [0, 100]) of values using
// linear interpolation between closest ranks. It does not modify values.
// It returns 0 for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesSorted computes several percentiles in one pass over an
// already-sorted slice. ps are percentile ranks in [0, 100].
func PercentilesSorted(sorted []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Mean returns the arithmetic mean of values, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
