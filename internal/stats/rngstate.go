package stats

import "fmt"

// RNGState is the serializable position of an RNG stream. Capturing and
// restoring it resumes the generator bit-for-bit: the next draw after a
// restore equals the next draw the snapshotted generator would have made.
type RNGState struct {
	State uint64 `json:"state"`
	Inc   uint64 `json:"inc"`
}

// State snapshots the generator's position.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, Inc: r.inc}
}

// RestoreState rewinds the generator to a captured position. The stream
// selector of a PCG generator must be odd; an even one means the state is
// corrupt (or from a different generator family), so it is rejected rather
// than silently producing a degenerate stream.
func (r *RNG) RestoreState(st RNGState) error {
	if st.Inc%2 == 0 {
		return fmt.Errorf("stats: invalid RNG state: stream selector %#x is even", st.Inc)
	}
	r.state = st.State
	r.inc = st.Inc
	return nil
}
