package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	// Population variance of that classic set is 4; unbiased sample
	// variance is 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, want)
	}
	if got := s.Min(); got != 2 {
		t.Fatalf("Min = %g, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Fatalf("Max = %g, want 9", got)
	}
	if got := s.Sum(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Sum = %g, want 40", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Count() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(aRaw, bRaw []int32) bool {
		// Scale to a realistic magnitude; float64 extremes overflow any
		// second-moment computation and are not meaningful inputs here.
		a := make([]float64, len(aRaw))
		for i, v := range aRaw {
			a[i] = float64(v) / 1000
		}
		b := make([]float64, len(bRaw))
		for i, v := range bRaw {
			b[i] = float64(v) / 1000
		}
		var merged, left, right Summary
		for _, v := range a {
			left.Add(v)
			merged.Add(v)
		}
		for _, v := range b {
			right.Add(v)
			merged.Add(v)
		}
		var via Summary
		via.Merge(left)
		via.Merge(right)
		if via.Count() != merged.Count() {
			return false
		}
		if merged.Count() == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			return math.Abs(x-y) <= 1e-6*scale
		}
		return closeEnough(via.Mean(), merged.Mean()) &&
			closeEnough(via.Variance(), merged.Variance()) &&
			via.Min() == merged.Min() && via.Max() == merged.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	values := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
		{90, 46}, // interpolated between 40 and 50 at rank 3.6
	}
	for _, tt := range tests {
		if got := Percentile(values, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Input must not be mutated.
	if values[0] != 15 || values[4] != 50 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %g, want 0", got)
	}
}

func TestPercentilesSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := PercentilesSorted(sorted, 0, 50, 99, 100)
	want := []float64{1, 5.5, 9.91, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("PercentilesSorted[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	r := NewRNG(31)
	values := make([]float64, 200)
	for i := range values {
		values[i] = r.Float64() * 1000
	}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(values, a) <= Percentile(values, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
