package stats

import "math"

// LinearFit is the result of an ordinary-least-squares fit y = Intercept +
// Slope*x. It is the core of the queue-stability detector: the paper judges
// a queue unstable when its length "keeps growing in macroscale" over the
// observation window, which we operationalize as a significantly positive
// slope relative to the series' own scale.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination, 0 for degenerate fits
	N         int
}

// FitLine performs an OLS fit of y against x. The slices must have equal
// length; with fewer than two points the fit is degenerate (zero slope,
// intercept = mean).
func FitLine(x, y []float64) LinearFit {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return LinearFit{}
	}
	if n == 1 {
		return LinearFit{Intercept: y[0], N: 1}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my, N: n}
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// FitSeries fits a line to y against implicit x = 0, 1, 2, ....
func FitSeries(y []float64) LinearFit {
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	return FitLine(x, y)
}

// TrendVerdict classifies a time series as stable or growing.
type TrendVerdict int

// Trend classifications. A series is Growing when it drifts upward across
// the window at a rate that is large relative to its own average level;
// otherwise it is Stable. Empty or flat series are Stable.
const (
	TrendStable TrendVerdict = iota + 1
	TrendGrowing
)

// String returns a human-readable verdict.
func (v TrendVerdict) String() string {
	switch v {
	case TrendStable:
		return "stable"
	case TrendGrowing:
		return "growing"
	default:
		return "unknown"
	}
}

// TrendReport carries the verdict together with the evidence.
type TrendReport struct {
	Verdict TrendVerdict
	Fit     LinearFit
	// GrowthRatio is (predicted end - predicted start) / mean level: how
	// many multiples of the average level the series gained across the
	// window. Large positive values indicate macro-scale growth.
	GrowthRatio float64
	// MeanLevel is the average of the series.
	MeanLevel float64
}

// ClassifyTrend decides whether series grows in macro-scale across its
// window. threshold is the minimum GrowthRatio considered growth; the paper
// observes unstable queues growing without bound over 500 s, which at any
// sensible sampling shows ratios well above 0.5.
func ClassifyTrend(series []float64, threshold float64) TrendReport {
	fit := FitSeries(series)
	mean := Mean(series)
	report := TrendReport{Verdict: TrendStable, Fit: fit, MeanLevel: mean}
	if fit.N < 2 || mean <= 0 {
		return report
	}
	span := fit.Slope * float64(fit.N-1)
	report.GrowthRatio = span / mean
	// Require both a material growth ratio and a fit that actually tracks
	// an upward drift (guards against a single spike dominating the mean).
	if report.GrowthRatio > threshold && fit.Slope > 0 && !math.IsNaN(fit.R2) && fit.R2 > 0.2 {
		report.Verdict = TrendGrowing
	}
	return report
}
