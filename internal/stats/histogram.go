package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-boundary histogram. Boundaries are the upper edges of
// each bucket; an extra overflow bucket catches values beyond the last edge.
type Histogram struct {
	edges  []float64
	counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// edges. It panics if edges is empty or not strictly increasing, which is a
// programming error in the caller's configuration.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("stats: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{
		edges:  e,
		counts: make([]int64, len(edges)+1),
	}
}

// NewLogHistogram builds a histogram with logarithmically spaced edges from
// lo to hi using n buckets. Useful for heavy-tailed flow sizes.
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if lo <= 0 || hi <= lo || n < 1 {
		panic("stats: invalid log histogram parameters")
	}
	edges := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range edges {
		edges[i] = v
		v *= ratio
	}
	edges[n-1] = hi // avoid drift from repeated multiplication
	return NewHistogram(edges)
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i]++
	h.total++
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 { return h.total }

// Bucket returns the count for bucket i (the overflow bucket is the last).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// NumBuckets returns the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Quantile estimates the q-th quantile (q in [0,1]) assuming values are
// uniform within buckets. Returns 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.edges[i-1]
			}
			hi := lo
			if i < len(h.edges) {
				hi = h.edges[i]
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.edges[len(h.edges)-1]
}

// String renders a compact ASCII view of the bucket counts, mostly for
// debugging and example programs.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.counts {
		var label string
		if i < len(h.edges) {
			label = fmt.Sprintf("<=%.3g", h.edges[i])
		} else {
			label = fmt.Sprintf(">%.3g", h.edges[len(h.edges)-1])
		}
		bar := strings.Repeat("#", int(40*c/maxCount))
		fmt.Fprintf(&b, "%12s %8d %s\n", label, c, bar)
	}
	return b.String()
}
