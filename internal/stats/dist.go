package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sampler produces random values from some distribution using the supplied
// generator. Samplers are stateless so one instance can serve many streams.
type Sampler interface {
	// Sample draws one value.
	Sample(r *RNG) float64
	// Mean returns the analytic mean of the distribution.
	Mean() float64
}

// Constant is a degenerate distribution that always returns Value. The
// paper's query/response flows are fixed at 20KB, which this models.
type Constant struct {
	Value float64
}

var _ Sampler = Constant{}

// Sample returns the constant value.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean returns the constant value.
func (c Constant) Mean() float64 { return c.Value }

// Exponential samples Exp(Rate) values (mean 1/Rate). Flow inter-arrival
// times in the paper follow a Poisson process, i.e. exponential gaps.
type Exponential struct {
	Rate float64
}

var _ Sampler = Exponential{}

// Sample draws one exponential value.
func (e Exponential) Sample(r *RNG) float64 { return r.Exp(e.Rate) }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Sampler = Uniform{}

// Sample draws one uniform value.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns the midpoint of the interval.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// BoundedPareto samples a Pareto distribution with shape Alpha truncated to
// [Lo, Hi].
type BoundedPareto struct {
	Alpha, Lo, Hi float64
}

var _ Sampler = BoundedPareto{}

// Sample draws one bounded-Pareto value.
func (p BoundedPareto) Sample(r *RNG) float64 { return r.Pareto(p.Alpha, p.Lo, p.Hi) }

// Mean returns the analytic mean of the bounded Pareto distribution.
func (p BoundedPareto) Mean() float64 {
	a, l, h := p.Alpha, p.Lo, p.Hi
	if a == 1 {
		return h * l / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// CDFPoint is one knot of an empirical CDF: P(X <= Value) = Prob.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// EmpiricalCDF samples from a piecewise-linear empirical distribution given
// as CDF knots. This is how the published DCTCP web-search and data-mining
// flow-size distributions are reproduced.
type EmpiricalCDF struct {
	points []CDFPoint
	mean   float64
}

var _ Sampler = (*EmpiricalCDF)(nil)

// ErrBadCDF reports an invalid empirical CDF specification.
var ErrBadCDF = errors.New("stats: invalid empirical CDF")

// NewEmpiricalCDF validates and builds an empirical CDF. The knots must have
// strictly increasing values, non-decreasing probabilities, start at a
// probability of 0 and end at 1.
func NewEmpiricalCDF(points []CDFPoint) (*EmpiricalCDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 knots, got %d", ErrBadCDF, len(points))
	}
	if points[0].Prob != 0 {
		return nil, fmt.Errorf("%w: first knot probability %g, want 0", ErrBadCDF, points[0].Prob)
	}
	last := points[len(points)-1]
	if last.Prob != 1 {
		return nil, fmt.Errorf("%w: last knot probability %g, want 1", ErrBadCDF, last.Prob)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value <= points[i-1].Value {
			return nil, fmt.Errorf("%w: values not strictly increasing at knot %d", ErrBadCDF, i)
		}
		if points[i].Prob < points[i-1].Prob {
			return nil, fmt.Errorf("%w: probabilities decreasing at knot %d", ErrBadCDF, i)
		}
	}
	pts := make([]CDFPoint, len(points))
	copy(pts, points)
	e := &EmpiricalCDF{points: pts}
	e.mean = e.computeMean()
	return e, nil
}

// MustEmpiricalCDF is NewEmpiricalCDF that panics on error; for use with
// compile-time-constant distribution tables.
func MustEmpiricalCDF(points []CDFPoint) *EmpiricalCDF {
	e, err := NewEmpiricalCDF(points)
	if err != nil {
		panic(err)
	}
	return e
}

// Sample draws one value by inverse-transform sampling with linear
// interpolation between knots.
func (e *EmpiricalCDF) Sample(r *RNG) float64 {
	return e.Quantile(r.Float64())
}

// Quantile returns the value at cumulative probability p in [0, 1].
func (e *EmpiricalCDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.points[0].Value
	}
	if p >= 1 {
		return e.points[len(e.points)-1].Value
	}
	// Find the first knot with Prob >= p.
	i := sort.Search(len(e.points), func(i int) bool { return e.points[i].Prob >= p })
	if i == 0 {
		return e.points[0].Value
	}
	lo, hi := e.points[i-1], e.points[i]
	if hi.Prob == lo.Prob {
		return hi.Value
	}
	frac := (p - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Value + frac*(hi.Value-lo.Value)
}

// CDF returns P(X <= v) under the piecewise-linear model.
func (e *EmpiricalCDF) CDF(v float64) float64 {
	if v <= e.points[0].Value {
		return 0
	}
	n := len(e.points)
	if v >= e.points[n-1].Value {
		return 1
	}
	i := sort.Search(n, func(i int) bool { return e.points[i].Value >= v })
	lo, hi := e.points[i-1], e.points[i]
	frac := (v - lo.Value) / (hi.Value - lo.Value)
	return lo.Prob + frac*(hi.Prob-lo.Prob)
}

// Mean returns the analytic mean of the piecewise-linear distribution.
func (e *EmpiricalCDF) Mean() float64 { return e.mean }

// Min returns the smallest representable value.
func (e *EmpiricalCDF) Min() float64 { return e.points[0].Value }

// Max returns the largest representable value.
func (e *EmpiricalCDF) Max() float64 { return e.points[len(e.points)-1].Value }

func (e *EmpiricalCDF) computeMean() float64 {
	// Between adjacent knots the distribution is uniform on [v0, v1] with
	// total mass (p1 - p0), so each segment contributes mass * midpoint.
	var mean float64
	for i := 1; i < len(e.points); i++ {
		lo, hi := e.points[i-1], e.points[i]
		mass := hi.Prob - lo.Prob
		mean += mass * (lo.Value + hi.Value) / 2
	}
	return mean
}

// Scaled wraps a sampler and multiplies every draw by Factor. Useful to
// express distributions in packets versus bytes without duplicating tables.
type Scaled struct {
	S      Sampler
	Factor float64
}

var _ Sampler = Scaled{}

// Sample draws from the inner sampler and scales the result.
func (s Scaled) Sample(r *RNG) float64 { return s.S.Sample(r) * s.Factor }

// Mean returns the scaled mean.
func (s Scaled) Mean() float64 { return s.S.Mean() * s.Factor }
