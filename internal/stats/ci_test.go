package stats

import (
	"math"
	"testing"
)

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 12.706}, {4, 2.776}, {10, 2.228}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Fatalf("TCritical95(%d) = %g, want %g", c.df, got, c.want)
		}
	}
	// The sequence must be monotone non-increasing: more data never widens
	// the interval multiplier.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TCritical95(df)
		if v > prev {
			t.Fatalf("TCritical95 not monotone at df=%d: %g > %g", df, v, prev)
		}
		prev = v
	}
}

func TestMeanCI95(t *testing.T) {
	// {1,2,3,4,5}: mean 3, s = sqrt(2.5), df 4 → half = 2.776·s/√5.
	mean, half := MeanCI95([]float64{1, 2, 3, 4, 5})
	wantHalf := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(mean-3) > 1e-12 || math.Abs(half-wantHalf) > 1e-12 {
		t.Fatalf("MeanCI95 = %g ± %g, want 3 ± %g", mean, half, wantHalf)
	}
}

func TestCI95DegenerateInputs(t *testing.T) {
	if _, half := MeanCI95(nil); half != 0 {
		t.Fatalf("empty: half = %g, want 0", half)
	}
	if _, half := MeanCI95([]float64{7}); half != 0 {
		t.Fatalf("single: half = %g, want 0", half)
	}
	if _, half := MeanCI95([]float64{4, 4, 4, 4}); half != 0 {
		t.Fatalf("constant: half = %g, want 0", half)
	}
}

func TestSummaryCI95MatchesMeanCI95(t *testing.T) {
	values := []float64{0.3, 1.9, -2.5, 8, 4.4, 0.01}
	var s Summary
	for _, v := range values {
		s.Add(v)
	}
	_, half := MeanCI95(values)
	if math.Abs(s.CI95()-half) > 1e-12 {
		t.Fatalf("Summary.CI95 %g != MeanCI95 %g", s.CI95(), half)
	}
}
