// Package lyapunov makes the paper's Theorem 1 executable: the quadratic
// Lyapunov function L(X) = ½ΣXij², its empirical drift along a simulated
// trajectory, and the theorem's constants — B′ = N(1+NB)/2, the delay gap
// bound B′/V, and the backlog bound (B′ + V(ȳ* − y_min))/ε.
package lyapunov

import (
	"fmt"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// Value computes L(X) = ½ Σij Xij² over the current VOQ backlogs.
func Value(t *flow.Table) float64 {
	var sum float64
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		b := q.Backlog()
		sum += b * b
	})
	return sum / 2
}

// MeanSelectedSize returns the penalty ȳ(t): the mean remaining size of the
// selected flows, or 0 for an empty decision (an idle slot contributes no
// penalty).
func MeanSelectedSize(decision []*flow.Flow) float64 {
	if len(decision) == 0 {
		return 0
	}
	var sum float64
	for _, f := range decision {
		sum += f.Remaining
	}
	return sum / float64(len(decision))
}

// BPrime returns B′ = N(1+NB)/2, the drift constant of Theorem 1, where N
// is the port count and B bounds E[Aij²] (second moment of per-slot
// arrivals in packets).
func BPrime(n int, b float64) float64 {
	return float64(n) * (1 + float64(n)*b) / 2
}

// DelayGapBound returns Theorem 1's bound on the penalty gap between
// BASRPT and the delay-optimal algorithm α*: B′/V = N(1+NB)/(2V).
// It panics on non-positive V, for which the bound is undefined.
func DelayGapBound(n int, b, v float64) float64 {
	if v <= 0 {
		panic(fmt.Sprintf("lyapunov: delay gap undefined for V = %g", v))
	}
	return BPrime(n, b) / v
}

// BacklogBound returns Theorem 1's bound on the time-average total queue
// length: (B′ + V(ȳ* − y_min)) / ε. It panics on non-positive ε (the
// theorem does not cover the ε = 0 boundary, as the paper discusses).
func BacklogBound(n int, b, v, epsilon, yStar, yMin float64) float64 {
	if epsilon <= 0 {
		panic(fmt.Sprintf("lyapunov: backlog bound undefined for ε = %g", epsilon))
	}
	gap := yStar - yMin
	if gap < 0 {
		gap = 0
	}
	return (BPrime(n, b) + v*gap) / epsilon
}

// DriftReport summarizes the empirical one-step Lyapunov drift
// Δ(t) = L(t+1) − L(t) along a trajectory.
type DriftReport struct {
	// MeanDrift is the average one-step drift. For a stable (positive
	// recurrent) system observed long enough it hovers near 0; persistent
	// positive values indicate accumulating backlog.
	MeanDrift float64
	// MaxDrift is the largest single-step increase.
	MaxDrift float64
	// Steps is the number of drift samples (len(series) − 1).
	Steps int
}

// EstimateDrift computes the empirical drift report from a sampled L(X)
// series. Fewer than two samples yield a zero report.
func EstimateDrift(lSeries []float64) DriftReport {
	if len(lSeries) < 2 {
		return DriftReport{}
	}
	var s stats.Summary
	maxDrift := lSeries[1] - lSeries[0]
	for i := 1; i < len(lSeries); i++ {
		d := lSeries[i] - lSeries[i-1]
		s.Add(d)
		if d > maxDrift {
			maxDrift = d
		}
	}
	return DriftReport{
		MeanDrift: s.Mean(),
		MaxDrift:  maxDrift,
		Steps:     int(s.Count()),
	}
}

// DriftPlusPenalty returns the drift-plus-penalty sample Δ + V·ȳ that the
// BASRPT decision rule minimizes a bound on (Section IV-B).
func DriftPlusPenalty(drift, v, yBar float64) float64 {
	return drift + v*yBar
}
