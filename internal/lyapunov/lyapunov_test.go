package lyapunov

import (
	"math"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/switchsim"
)

func TestValue(t *testing.T) {
	tab := flow.NewTable(3)
	if got := Value(tab); got != 0 {
		t.Fatalf("empty L = %g", got)
	}
	tab.Add(flow.NewFlow(1, 0, 1, flow.ClassOther, 3, 0))
	tab.Add(flow.NewFlow(2, 0, 1, flow.ClassOther, 4, 0)) // same VOQ: X=7
	tab.Add(flow.NewFlow(3, 1, 2, flow.ClassOther, 2, 0))
	want := (49.0 + 4.0) / 2
	if got := Value(tab); math.Abs(got-want) > 1e-12 {
		t.Fatalf("L = %g, want %g", got, want)
	}
}

func TestMeanSelectedSize(t *testing.T) {
	if got := MeanSelectedSize(nil); got != 0 {
		t.Fatalf("empty decision ȳ = %g", got)
	}
	flows := []*flow.Flow{
		flow.NewFlow(1, 0, 1, flow.ClassOther, 10, 0),
		flow.NewFlow(2, 1, 0, flow.ClassOther, 30, 0),
	}
	if got := MeanSelectedSize(flows); got != 20 {
		t.Fatalf("ȳ = %g, want 20", got)
	}
}

func TestTheoremConstants(t *testing.T) {
	// N = 4, B = 9 -> B' = 4(1+36)/2 = 74.
	if got := BPrime(4, 9); got != 74 {
		t.Fatalf("B' = %g, want 74", got)
	}
	if got := DelayGapBound(4, 9, 37); got != 2 {
		t.Fatalf("delay gap = %g, want 2", got)
	}
	// (74 + 10*(5-1)) / 0.5 = 228.
	if got := BacklogBound(4, 9, 10, 0.5, 5, 1); got != 228 {
		t.Fatalf("backlog bound = %g, want 228", got)
	}
	// Negative penalty gap clamps to zero.
	if got := BacklogBound(4, 9, 10, 0.5, 1, 5); got != 148 {
		t.Fatalf("clamped backlog bound = %g, want 148", got)
	}
}

func TestBoundsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"DelayGapBound": func() { DelayGapBound(4, 9, 0) },
		"BacklogBound":  func() { BacklogBound(4, 9, 10, 0, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEstimateDrift(t *testing.T) {
	if rep := EstimateDrift(nil); rep.Steps != 0 {
		t.Fatalf("empty drift = %+v", rep)
	}
	if rep := EstimateDrift([]float64{5}); rep.Steps != 0 {
		t.Fatalf("singleton drift = %+v", rep)
	}
	rep := EstimateDrift([]float64{0, 10, 15, 12})
	if rep.Steps != 3 {
		t.Fatalf("steps = %d", rep.Steps)
	}
	if math.Abs(rep.MeanDrift-4) > 1e-12 {
		t.Fatalf("mean drift = %g, want 4", rep.MeanDrift)
	}
	if rep.MaxDrift != 10 {
		t.Fatalf("max drift = %g, want 10", rep.MaxDrift)
	}
}

func TestDriftPlusPenalty(t *testing.T) {
	if got := DriftPlusPenalty(3, 2, 5); got != 13 {
		t.Fatalf("drift-plus-penalty = %g, want 13", got)
	}
}

// TestStableSystemHasNearZeroDrift runs the slotted switch with fast
// BASRPT below capacity and checks that the long-run mean drift of L(X) is
// small relative to its excursions — the observable signature of positive
// recurrence.
func TestStableSystemHasNearZeroDrift(t *testing.T) {
	prob, err := switchsim.UniformLoadProb(4, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := switchsim.NewBernoulliArrivals(prob, stats.Uniform{Lo: 1, Hi: 3.001}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := switchsim.New(switchsim.Config{
		N:         4,
		Scheduler: sched.NewFastBASRPT(50),
		Arrivals:  arr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20000); err != nil {
		t.Fatal(err)
	}
	rep := EstimateDrift(sim.LyapunovSeries().Values)
	if rep.Steps < 10000 {
		t.Fatalf("too few drift samples: %d", rep.Steps)
	}
	if math.Abs(rep.MeanDrift) > rep.MaxDrift/10+1 {
		t.Fatalf("mean drift %g not near zero (max %g)", rep.MeanDrift, rep.MaxDrift)
	}
}
