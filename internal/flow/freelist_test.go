package flow

import "testing"

// TestFreeListRecyclesAndResets: Get after Put returns the same struct with
// every field — including the internal heap index — reinitialized exactly
// as NewFlow would.
func TestFreeListRecyclesAndResets(t *testing.T) {
	var l FreeList
	f := l.Get(1, 0, 1, ClassQuery, 100, 0.5)
	if l.Reuses() != 0 {
		t.Fatalf("Reuses = %d before any recycling, want 0", l.Reuses())
	}

	// Dirty the flow through a table round trip so a sloppy reset would show.
	tab := NewTable(2)
	tab.Add(f)
	tab.Drain(f, 60)
	tab.Remove(f)
	l.Put(f)
	if l.Len() != 1 {
		t.Fatalf("Len = %d after Put, want 1", l.Len())
	}

	g := l.Get(2, 1, 0, ClassBackground, 200, 1.5)
	if g != f {
		t.Fatal("Get did not recycle the Put flow")
	}
	if l.Len() != 0 || l.Reuses() != 1 {
		t.Fatalf("Len = %d, Reuses = %d after recycling Get, want 0, 1", l.Len(), l.Reuses())
	}
	want := Flow{ID: 2, Src: 1, Dst: 0, Class: ClassBackground, Size: 200, Remaining: 200, Arrival: 1.5, heapIndex: -1}
	if *g != want {
		t.Fatalf("recycled flow = %+v, want %+v", *g, want)
	}
	if g.Attached() {
		t.Fatal("recycled flow reports attached")
	}
}

// TestFreeListGetFallsBackToAlloc: an empty free list behaves exactly like
// NewFlow.
func TestFreeListGetFallsBackToAlloc(t *testing.T) {
	var l FreeList
	f := l.Get(7, 2, 3, ClassOther, 50, 2)
	want := Flow{ID: 7, Src: 2, Dst: 3, Class: ClassOther, Size: 50, Remaining: 50, Arrival: 2, heapIndex: -1}
	if *f != want {
		t.Fatalf("fresh flow = %+v, want %+v", *f, want)
	}
}

// TestFreeListPutAttachedPanics: recycling a flow that still sits in a VOQ
// would corrupt the table, so Put must refuse it loudly.
func TestFreeListPutAttachedPanics(t *testing.T) {
	var l FreeList
	f := l.Get(1, 0, 1, ClassOther, 100, 0)
	tab := NewTable(2)
	tab.Add(f)
	defer func() {
		if recover() == nil {
			t.Fatal("Put of an attached flow did not panic")
		}
	}()
	l.Put(f)
}
