package flow

import (
	"math"
	"testing"
	"testing/quick"
)

// voqSnapshot is the observable state of one VOQ: the flow set with
// remaining sizes, plus the cached backlog.
type voqSnapshot struct {
	flows   map[ID]float64
	backlog float64
}

// snapshotTable captures every VOQ's observable state for diffing.
func snapshotTable(t *Table) []voqSnapshot {
	n := t.N()
	snaps := make([]voqSnapshot, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q := t.VOQ(i, j)
			s := voqSnapshot{flows: map[ID]float64{}, backlog: q.Backlog()}
			for _, f := range q.Flows() {
				s.flows[f.ID] = f.Remaining
			}
			snaps[i*n+j] = s
		}
	}
	return snaps
}

// sameVOQ reports whether a VOQ's observable state matches a snapshot.
func sameVOQ(q *VOQ, s voqSnapshot) bool {
	if q.Len() != len(s.flows) || q.Backlog() != s.backlog {
		return false
	}
	for _, f := range q.Flows() {
		if rem, ok := s.flows[f.ID]; !ok || rem != f.Remaining {
			return false
		}
	}
	return true
}

// splitmix is a tiny deterministic generator for the property drivers
// (internal/stats would be an import cycle from here).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

func (s *splitmix) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// TestDirtySetMatchesFromScratchDiff drives a random Add/Drain/Remove
// event sequence and asserts, at random checkpoints, that the dirty set
// together with the clean VOQs exactly reproduces a from-scratch table
// diff: every VOQ whose state changed since the last ClearDirty is dirty,
// and every clean VOQ is bit-for-bit unchanged.
func TestDirtySetMatchesFromScratchDiff(t *testing.T) {
	f := func(seed uint64) bool {
		rng := splitmix(seed)
		n := 2 + rng.intn(4)
		tab := NewTable(n)
		var live []*Flow
		nextID := ID(1)
		snap := snapshotTable(tab)
		basisEpoch := tab.Epoch()
		tab.ClearDirty()

		for step := 0; step < 300; step++ {
			switch op := rng.intn(10); {
			case op < 4 || len(live) == 0: // add
				f := NewFlow(nextID, rng.intn(n), rng.intn(n), ClassOther,
					1+math.Floor(rng.float64()*1000), float64(step))
				nextID++
				tab.Add(f)
				live = append(live, f)
			case op < 8: // drain (sometimes of a zero amount: must stay clean)
				f := live[rng.intn(len(live))]
				amount := rng.float64() * f.Remaining * 1.2
				if rng.intn(5) == 0 {
					amount = 0
				}
				tab.Drain(f, amount)
			default: // remove
				i := rng.intn(len(live))
				f := live[i]
				tab.Remove(f)
				live = append(live[:i], live[i+1:]...)
			}

			if rng.intn(20) != 0 {
				continue
			}
			// Checkpoint: diff against the snapshot taken at the last clear.
			dirty := map[int]bool{}
			tab.ForEachDirty(func(q *VOQ) { dirty[q.Src*n+q.Dst] = true })
			if got := tab.NumDirty(); got != len(dirty) {
				t.Logf("NumDirty = %d but ForEachDirty visited %d distinct VOQs", got, len(dirty))
				return false
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					// Changed ⇒ dirty; equivalently every clean VOQ must be
					// bit-for-bit unchanged since the last clear.
					if !dirty[i*n+j] && !sameVOQ(tab.VOQ(i, j), snap[i*n+j]) {
						t.Logf("clean VOQ (%d,%d) diverged from snapshot", i, j)
						return false
					}
				}
			}
			if tab.Epoch() < basisEpoch {
				t.Log("epoch went backwards")
				return false
			}
			// Re-baseline, as the owning consumer would.
			tab.ClearDirty()
			if tab.NumDirty() != 0 || tab.DirtyBasis() != tab.Epoch() {
				t.Logf("ClearDirty left %d dirty, basis %d vs epoch %d",
					tab.NumDirty(), tab.DirtyBasis(), tab.Epoch())
				return false
			}
			snap = snapshotTable(tab)
			basisEpoch = tab.Epoch()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochCountsMutations(t *testing.T) {
	tab := NewTable(2)
	if tab.Epoch() != 0 || tab.DirtyBasis() != 0 {
		t.Fatalf("fresh table epoch/basis = %d/%d, want 0/0", tab.Epoch(), tab.DirtyBasis())
	}
	f := NewFlow(1, 0, 1, ClassOther, 100, 0)
	tab.Add(f)
	if tab.Epoch() != 1 {
		t.Fatalf("epoch after Add = %d, want 1", tab.Epoch())
	}
	tab.Drain(f, 10)
	if tab.Epoch() != 2 {
		t.Fatalf("epoch after Drain = %d, want 2", tab.Epoch())
	}
	// Zero-amount drains (explicit or via an exhausted flow) do not count.
	tab.Drain(f, 0)
	tab.Drain(f, -5)
	if tab.Epoch() != 2 {
		t.Fatalf("epoch after no-op drains = %d, want 2", tab.Epoch())
	}
	tab.Remove(f)
	if tab.Epoch() != 3 {
		t.Fatalf("epoch after Remove = %d, want 3", tab.Epoch())
	}
	if tab.DirtyBasis() != 0 {
		t.Fatalf("basis moved without ClearDirty: %d", tab.DirtyBasis())
	}
	tab.ClearDirty()
	if tab.DirtyBasis() != 3 || tab.NumDirty() != 0 {
		t.Fatalf("after ClearDirty basis = %d dirty = %d, want 3/0", tab.DirtyBasis(), tab.NumDirty())
	}
}

func TestDirtyVOQsIncludesEmptiedVOQ(t *testing.T) {
	tab := NewTable(2)
	f := NewFlow(1, 1, 0, ClassOther, 50, 0)
	tab.Add(f)
	tab.ClearDirty()
	tab.Remove(f)
	got := tab.DirtyVOQs(nil)
	if len(got) != 1 || got[0].Src != 1 || got[0].Dst != 0 || got[0].Len() != 0 {
		t.Fatalf("DirtyVOQs after emptying remove = %v", got)
	}
}

func TestDirtySetDeduplicates(t *testing.T) {
	tab := NewTable(2)
	f := NewFlow(1, 0, 1, ClassOther, 100, 0)
	tab.Add(f)
	tab.Drain(f, 1)
	tab.Drain(f, 1)
	if tab.NumDirty() != 1 {
		t.Fatalf("NumDirty = %d after repeated mutation of one VOQ, want 1", tab.NumDirty())
	}
	if tab.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", tab.Epoch())
	}
}
