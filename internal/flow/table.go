package flow

import "fmt"

// Table is the full N×N VOQ state of the big switch. It tracks which VOQs
// are non-empty (for fast scheduler iteration), per-ingress-port backlogs
// (what the paper plots as "queue length at a port"), and total counts.
//
// The table also carries a change-tracking layer for incremental
// consumers (see the package doc's "Change tracking" contract): every
// state mutation bumps Epoch and marks the touched VOQ dirty until the
// owning consumer calls ClearDirty.
type Table struct {
	n    int
	voqs []VOQ

	nonEmpty    []int // VOQ indices with at least one flow
	nonEmptyPos []int // voq index -> position in nonEmpty, -1 if absent

	epoch      uint64 // total mutations since construction
	dirtyBasis uint64 // epoch value at the last ClearDirty
	dirty      []int  // VOQ indices mutated since the last ClearDirty
	dirtyPos   []int  // voq index -> position in dirty, -1 if clean

	ingressBacklog []float64
	egressBacklog  []float64
	ingressFlows   []int // live flow count per ingress port
	egressFlows    []int // live flow count per egress port
	numFlows       int
}

// NewTable creates a table for an n-port switch. It panics on n <= 0,
// which is a configuration error.
func NewTable(n int) *Table {
	if n <= 0 {
		panic(fmt.Sprintf("flow: invalid port count %d", n))
	}
	t := &Table{
		n:              n,
		voqs:           make([]VOQ, n*n),
		nonEmptyPos:    make([]int, n*n),
		dirtyPos:       make([]int, n*n),
		ingressBacklog: make([]float64, n),
		egressBacklog:  make([]float64, n),
		ingressFlows:   make([]int, n),
		egressFlows:    make([]int, n),
	}
	// Seed every VOQ heap slice with a small capacity carved from one
	// contiguous arena so a cold VOQ's first pushes never allocate (the
	// dominant residual allocation site in steady state otherwise). The
	// three-index slice caps each chunk, so a VOQ that outgrows its seed
	// reallocates privately instead of clobbering its neighbor — and the
	// grown capacity is retained thereafter because remove only reslices.
	const voqSeedCap = 2
	arena := make([]*Flow, n*n*voqSeedCap)
	for i := range t.voqs {
		t.voqs[i].Src = i / n
		t.voqs[i].Dst = i % n
		t.voqs[i].flows = arena[i*voqSeedCap : i*voqSeedCap : (i+1)*voqSeedCap]
		t.nonEmptyPos[i] = -1
		t.dirtyPos[i] = -1
	}
	return t
}

// N returns the number of ports.
func (t *Table) N() int { return t.n }

// NumFlows returns the number of active flows across all VOQs.
func (t *Table) NumFlows() int { return t.numFlows }

func (t *Table) idx(src, dst int) int { return src*t.n + dst }

func (t *Table) checkPort(src, dst int) {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		panic(fmt.Sprintf("flow: port pair (%d,%d) out of range for n=%d", src, dst, t.n))
	}
}

// VOQ returns the queue for (src, dst). The returned pointer stays valid
// for the table's lifetime.
func (t *Table) VOQ(src, dst int) *VOQ {
	t.checkPort(src, dst)
	return &t.voqs[t.idx(src, dst)]
}

// Add inserts a flow into its VOQ. It panics if the flow is already
// attached (a simulator bug, not a runtime condition).
func (t *Table) Add(f *Flow) {
	t.checkPort(f.Src, f.Dst)
	if f.Attached() {
		panic(fmt.Sprintf("flow: flow %d added twice", f.ID))
	}
	i := t.idx(f.Src, f.Dst)
	q := &t.voqs[i]
	wasEmpty := q.Len() == 0
	q.push(f)
	if wasEmpty {
		t.nonEmptyPos[i] = len(t.nonEmpty)
		t.nonEmpty = append(t.nonEmpty, i)
	}
	t.markDirty(i)
	t.ingressBacklog[f.Src] += f.Remaining
	t.egressBacklog[f.Dst] += f.Remaining
	t.ingressFlows[f.Src]++
	t.egressFlows[f.Dst]++
	t.numFlows++
}

// Remove detaches a flow from its VOQ (on completion). It panics if the
// flow is not attached.
func (t *Table) Remove(f *Flow) {
	if !f.Attached() {
		panic(fmt.Sprintf("flow: flow %d removed while detached", f.ID))
	}
	i := t.idx(f.Src, f.Dst)
	q := &t.voqs[i]
	q.remove(f)
	if q.Len() == 0 {
		t.dropNonEmpty(i)
	}
	t.markDirty(i)
	t.ingressBacklog[f.Src] -= f.Remaining
	t.egressBacklog[f.Dst] -= f.Remaining
	t.ingressFlows[f.Src]--
	t.egressFlows[f.Dst]--
	t.clampPort(f.Src, f.Dst)
	t.numFlows--
}

// Drain reduces f.Remaining by amount (clamped at zero) and updates all
// backlog accounting. It returns the amount actually drained.
func (t *Table) Drain(f *Flow, amount float64) float64 {
	if !f.Attached() {
		panic(fmt.Sprintf("flow: drain on detached flow %d", f.ID))
	}
	if amount <= 0 {
		return 0
	}
	if amount > f.Remaining {
		amount = f.Remaining
	}
	if amount == 0 {
		return 0 // nothing left to drain: no state change, stays clean
	}
	f.Remaining -= amount
	i := t.idx(f.Src, f.Dst)
	q := &t.voqs[i]
	q.adjust(f, -amount)
	t.ingressBacklog[f.Src] -= amount
	t.egressBacklog[f.Dst] -= amount
	t.clampPort(f.Src, f.Dst)
	t.markDirty(i)
	return amount
}

// clampPort repairs float drift in the port accumulators: negatives snap
// to zero, and a port with no live flows is exactly empty (repeated
// incremental adds and subtracts otherwise leave sub-byte residues that
// accumulate over hundreds of millions of events).
func (t *Table) clampPort(src, dst int) {
	if t.ingressBacklog[src] < 0 || t.ingressFlows[src] == 0 {
		t.ingressBacklog[src] = 0
	}
	if t.egressBacklog[dst] < 0 || t.egressFlows[dst] == 0 {
		t.egressBacklog[dst] = 0
	}
}

func (t *Table) dropNonEmpty(i int) {
	pos := t.nonEmptyPos[i]
	last := len(t.nonEmpty) - 1
	moved := t.nonEmpty[last]
	t.nonEmpty[pos] = moved
	t.nonEmptyPos[moved] = pos
	t.nonEmpty = t.nonEmpty[:last]
	t.nonEmptyPos[i] = -1
}

// NonEmpty appends pointers to every non-empty VOQ to dst and returns it.
// The order is unspecified but deterministic for a given event history.
func (t *Table) NonEmpty(dst []*VOQ) []*VOQ {
	for _, i := range t.nonEmpty {
		dst = append(dst, &t.voqs[i])
	}
	return dst
}

// ForEachNonEmpty calls fn for every non-empty VOQ without allocating.
// fn must not add or remove flows. This is the scheduler hot path: it runs
// on every arrival and completion.
func (t *Table) ForEachNonEmpty(fn func(q *VOQ)) {
	for _, i := range t.nonEmpty {
		fn(&t.voqs[i])
	}
}

// NumNonEmpty returns how many VOQs currently hold flows.
func (t *Table) NumNonEmpty() int { return len(t.nonEmpty) }

// markDirty records a mutation of VOQ index i: it bumps the epoch and adds
// the VOQ to the dirty set unless already present.
func (t *Table) markDirty(i int) {
	t.epoch++
	if t.dirtyPos[i] < 0 {
		t.dirtyPos[i] = len(t.dirty)
		t.dirty = append(t.dirty, i)
	}
}

// Epoch returns the total number of state mutations (Add, Remove,
// non-zero Drain) applied to the table since construction. It increases
// monotonically and never resets.
func (t *Table) Epoch() uint64 { return t.epoch }

// DirtyBasis returns the epoch value recorded at the last ClearDirty (zero
// before the first). The dirty set holds exactly the VOQs mutated since
// that epoch, so an incremental consumer that remembers the basis it
// synchronized at can tell whether the dirty set still describes its delta
// (basis unchanged) or another consumer cleared it in between (basis
// advanced — fall back to a full rebuild).
func (t *Table) DirtyBasis() uint64 { return t.dirtyBasis }

// NumDirty returns the size of the dirty set.
func (t *Table) NumDirty() int { return len(t.dirty) }

// DirtyVOQs appends pointers to every VOQ mutated since the last
// ClearDirty to dst and returns it. Dirty VOQs may be empty (their last
// flow was removed) — that emptiness is itself the change a consumer must
// observe. The order is unspecified but deterministic for a given event
// history.
func (t *Table) DirtyVOQs(dst []*VOQ) []*VOQ {
	for _, i := range t.dirty {
		dst = append(dst, &t.voqs[i])
	}
	return dst
}

// ForEachDirty calls fn for every VOQ mutated since the last ClearDirty,
// without allocating. fn must not add or remove flows.
func (t *Table) ForEachDirty(fn func(q *VOQ)) {
	for _, i := range t.dirty {
		fn(&t.voqs[i])
	}
}

// ClearDirty empties the dirty set and records the current epoch as the
// new dirty basis. The consumer that owns the table's change feed calls
// this after applying the delta; see the package doc for the single-
// consumer contract.
func (t *Table) ClearDirty() {
	for _, i := range t.dirty {
		t.dirtyPos[i] = -1
	}
	t.dirty = t.dirty[:0]
	t.dirtyBasis = t.epoch
}

// IngressBacklog returns the total remaining size queued at ingress port i —
// the per-server queue length plotted in the paper's Figures 2 and 5(b).
func (t *Table) IngressBacklog(i int) float64 { return t.ingressBacklog[i] }

// EgressBacklog returns the total remaining size destined for egress port j.
func (t *Table) EgressBacklog(j int) float64 { return t.egressBacklog[j] }

// TotalBacklog returns the backlog summed over all VOQs.
func (t *Table) TotalBacklog() float64 {
	var sum float64
	for _, i := range t.nonEmpty {
		sum += t.voqs[i].Backlog()
	}
	return sum
}

// MaxIngressBacklog returns the port index and value of the largest ingress
// backlog; (-1, 0) when everything is empty.
func (t *Table) MaxIngressBacklog() (port int, backlog float64) {
	port = -1
	for i, b := range t.ingressBacklog {
		if b > backlog {
			port, backlog = i, b
		}
	}
	return port, backlog
}
