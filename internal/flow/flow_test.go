package flow

import (
	"math"
	"testing"
	"testing/quick"

	"basrpt/internal/stats"
)

func TestClassString(t *testing.T) {
	if ClassQuery.String() != "query" || ClassBackground.String() != "background" ||
		ClassOther.String() != "other" {
		t.Fatal("class names wrong")
	}
	if Class(0).String() != "class(0)" {
		t.Fatal("unknown class formatting wrong")
	}
}

func TestNewFlow(t *testing.T) {
	f := NewFlow(7, 1, 2, ClassQuery, 20000, 1.5)
	if f.Remaining != 20000 || f.Size != 20000 {
		t.Fatalf("remaining/size = %g/%g, want 20000/20000", f.Remaining, f.Size)
	}
	if f.Attached() {
		t.Fatal("fresh flow should be detached")
	}
}

func TestVOQTopIsMinRemaining(t *testing.T) {
	var q VOQ
	sizes := []float64{50, 10, 30, 10, 90, 5}
	for i, s := range sizes {
		q.push(NewFlow(ID(i), 0, 0, ClassOther, s, 0))
	}
	if got := q.Top().Remaining; got != 5 {
		t.Fatalf("Top remaining = %g, want 5", got)
	}
	if got := q.Backlog(); got != 195 {
		t.Fatalf("Backlog = %g, want 195", got)
	}
	// Pop repeatedly by removing the top: must come out sorted.
	prev := -1.0
	for q.Len() > 0 {
		top := q.Top()
		if top.Remaining < prev {
			t.Fatalf("heap order violated: %g after %g", top.Remaining, prev)
		}
		prev = top.Remaining
		q.remove(top)
	}
	if q.Backlog() != 0 {
		t.Fatalf("backlog after drain = %g, want 0", q.Backlog())
	}
}

func TestVOQTieBreakByID(t *testing.T) {
	var q VOQ
	f2 := NewFlow(2, 0, 0, ClassOther, 10, 0)
	f1 := NewFlow(1, 0, 0, ClassOther, 10, 0)
	q.push(f2)
	q.push(f1)
	if q.Top() != f1 {
		t.Fatal("tie must break to lower ID")
	}
}

func TestTableAddRemove(t *testing.T) {
	tab := NewTable(4)
	f := NewFlow(1, 2, 3, ClassQuery, 100, 0)
	tab.Add(f)
	if tab.NumFlows() != 1 || tab.NumNonEmpty() != 1 {
		t.Fatalf("counts after add: flows=%d nonEmpty=%d", tab.NumFlows(), tab.NumNonEmpty())
	}
	if got := tab.IngressBacklog(2); got != 100 {
		t.Fatalf("ingress backlog = %g, want 100", got)
	}
	if got := tab.EgressBacklog(3); got != 100 {
		t.Fatalf("egress backlog = %g, want 100", got)
	}
	if got := tab.VOQ(2, 3).Top(); got != f {
		t.Fatal("VOQ top is not the added flow")
	}
	tab.Remove(f)
	if tab.NumFlows() != 0 || tab.NumNonEmpty() != 0 || tab.TotalBacklog() != 0 {
		t.Fatal("table not empty after remove")
	}
	if f.Attached() {
		t.Fatal("flow still attached after remove")
	}
}

func TestTableDrain(t *testing.T) {
	tab := NewTable(2)
	f := NewFlow(1, 0, 1, ClassOther, 100, 0)
	tab.Add(f)
	if got := tab.Drain(f, 30); got != 30 {
		t.Fatalf("Drain = %g, want 30", got)
	}
	if f.Remaining != 70 {
		t.Fatalf("Remaining = %g, want 70", f.Remaining)
	}
	if got := tab.IngressBacklog(0); got != 70 {
		t.Fatalf("ingress backlog = %g, want 70", got)
	}
	// Draining more than remaining clamps.
	if got := tab.Drain(f, 1000); got != 70 {
		t.Fatalf("over-drain = %g, want 70", got)
	}
	if f.Remaining != 0 {
		t.Fatalf("Remaining after over-drain = %g, want 0", f.Remaining)
	}
	// Draining zero or negative is a no-op.
	if got := tab.Drain(f, 0); got != 0 {
		t.Fatalf("zero drain = %g", got)
	}
	if got := tab.Drain(f, -5); got != 0 {
		t.Fatalf("negative drain = %g", got)
	}
}

func TestDrainReordersHeap(t *testing.T) {
	tab := NewTable(2)
	big := NewFlow(1, 0, 1, ClassOther, 100, 0)
	small := NewFlow(2, 0, 1, ClassOther, 50, 0)
	tab.Add(big)
	tab.Add(small)
	q := tab.VOQ(0, 1)
	if q.Top() != small {
		t.Fatal("top should be the 50-byte flow")
	}
	// Drain the big flow below the small one: top must flip.
	tab.Drain(big, 80)
	if q.Top() != big {
		t.Fatalf("top after drain = flow %d, want flow 1", q.Top().ID)
	}
}

func TestTablePanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewTable(0)", func() { NewTable(0) })
	tab := NewTable(2)
	f := NewFlow(1, 0, 1, ClassOther, 10, 0)
	assertPanics("Remove detached", func() { tab.Remove(f) })
	assertPanics("Drain detached", func() { tab.Drain(f, 1) })
	tab.Add(f)
	assertPanics("double Add", func() { tab.Add(f) })
	bad := NewFlow(2, 5, 0, ClassOther, 10, 0)
	assertPanics("out-of-range port", func() { tab.Add(bad) })
	assertPanics("VOQ out of range", func() { tab.VOQ(-1, 0) })
}

func TestNonEmptyTracking(t *testing.T) {
	tab := NewTable(3)
	flows := []*Flow{
		NewFlow(1, 0, 1, ClassOther, 10, 0),
		NewFlow(2, 0, 1, ClassOther, 20, 0),
		NewFlow(3, 1, 2, ClassOther, 30, 0),
		NewFlow(4, 2, 0, ClassOther, 40, 0),
	}
	for _, f := range flows {
		tab.Add(f)
	}
	if got := tab.NumNonEmpty(); got != 3 {
		t.Fatalf("NumNonEmpty = %d, want 3", got)
	}
	voqs := tab.NonEmpty(nil)
	if len(voqs) != 3 {
		t.Fatalf("NonEmpty returned %d VOQs, want 3", len(voqs))
	}
	// Removing one of two flows in a VOQ keeps it non-empty.
	tab.Remove(flows[0])
	if got := tab.NumNonEmpty(); got != 3 {
		t.Fatalf("NumNonEmpty after partial remove = %d, want 3", got)
	}
	tab.Remove(flows[1])
	if got := tab.NumNonEmpty(); got != 2 {
		t.Fatalf("NumNonEmpty after full remove = %d, want 2", got)
	}
}

func TestMaxIngressBacklog(t *testing.T) {
	tab := NewTable(3)
	if port, b := tab.MaxIngressBacklog(); port != -1 || b != 0 {
		t.Fatalf("empty max = (%d, %g), want (-1, 0)", port, b)
	}
	tab.Add(NewFlow(1, 0, 1, ClassOther, 10, 0))
	tab.Add(NewFlow(2, 1, 2, ClassOther, 99, 0))
	port, b := tab.MaxIngressBacklog()
	if port != 1 || b != 99 {
		t.Fatalf("max = (%d, %g), want (1, 99)", port, b)
	}
}

// TestConservationProperty drives a random add/drain/remove workload and
// checks the bookkeeping identity: per-port and total backlogs always equal
// the sums over the live flows.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		const n = 4
		tab := NewTable(n)
		var live []*Flow
		nextID := ID(1)
		for step := 0; step < 500; step++ {
			switch op := r.Intn(4); {
			case op <= 1 || len(live) == 0: // add
				fl := NewFlow(nextID, r.Intn(n), r.Intn(n), ClassOther, 1+r.Float64()*1000, 0)
				nextID++
				tab.Add(fl)
				live = append(live, fl)
			case op == 2: // drain
				fl := live[r.Intn(len(live))]
				tab.Drain(fl, r.Float64()*fl.Remaining*1.2)
			default: // remove
				i := r.Intn(len(live))
				tab.Remove(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Recompute ground truth from live flows.
		ingress := make([]float64, n)
		egress := make([]float64, n)
		var total float64
		for _, fl := range live {
			ingress[fl.Src] += fl.Remaining
			egress[fl.Dst] += fl.Remaining
			total += fl.Remaining
		}
		approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-6*math.Max(1, math.Abs(b)) }
		for i := 0; i < n; i++ {
			if !approx(tab.IngressBacklog(i), ingress[i]) || !approx(tab.EgressBacklog(i), egress[i]) {
				return false
			}
		}
		if !approx(tab.TotalBacklog(), total) {
			return false
		}
		return tab.NumFlows() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVOQFlowsIsCopy(t *testing.T) {
	tab := NewTable(2)
	tab.Add(NewFlow(1, 0, 1, ClassOther, 10, 0))
	q := tab.VOQ(0, 1)
	flows := q.Flows()
	flows[0] = nil
	if q.Top() == nil {
		t.Fatal("Flows() exposed internal storage")
	}
}
