// Package flow models the unit of work that the fabric schedules: flows
// with a source port, a destination port, and a remaining size, organized
// into the N×N Virtual Output Queues of the big-switch abstraction
// (paper Section III-A).
//
// The central structure is Table, which maintains per-VOQ min-heaps keyed
// by remaining size. Every scheduling discipline in this repository selects
// at most one flow per VOQ per decision, and for all of them the per-VOQ
// best candidate is the minimum-remaining flow (queue length is shared by
// every flow in a VOQ), so the table exposes exactly that candidate in
// O(1) and keeps it correct in O(log q) per update.
//
// # Change tracking
//
// Table additionally feeds incremental consumers (the candidate index in
// internal/sched) through a change-tracking layer:
//
//   - Epoch() is a monotone counter bumped by every mutation (Add, Remove,
//     and any Drain that moves bytes).
//   - The dirty set holds every VOQ mutated since the last ClearDirty,
//     readable via DirtyVOQs/ForEachDirty/NumDirty. A single fabric event
//     dirties O(decision size) VOQs, so the set is the per-event delta a
//     consumer needs — VOQs outside it are bit-for-bit unchanged.
//   - ClearDirty() empties the set and stamps DirtyBasis() with the
//     current epoch.
//
// The feed supports exactly one owning consumer at a time: whoever calls
// ClearDirty owns the delta. A consumer remembers the (table, DirtyBasis)
// pair it last synchronized at; when the pair still matches, the dirty set
// is precisely the consumer's delta, otherwise (first call, table swap, a
// different consumer cleared in between) it must resynchronize from
// scratch. Non-consuming readers may mutate the table freely — they only
// grow the dirty set, never invalidate it.
package flow

import "fmt"

// ID uniquely identifies a flow within a simulation run.
type ID int64

// Class labels a flow for per-class metrics, mirroring the paper's split
// between fixed-size queries/responses and rack-local background transfers.
type Class int

// Flow classes.
const (
	ClassQuery Class = iota + 1
	ClassBackground
	ClassOther
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassBackground:
		return "background"
	case ClassOther:
		return "other"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Flow is one transfer. Size and Remaining are in bytes for the
// continuous-time simulator and in packets for the slotted switch model;
// the schedulers are unit-agnostic.
type Flow struct {
	ID        ID
	Src       int
	Dst       int
	Class     Class
	Size      float64
	Remaining float64
	Arrival   float64

	heapIndex int // position in the owning VOQ's heap; -1 when detached
}

// NewFlow constructs a flow with Remaining initialized to Size.
func NewFlow(id ID, src, dst int, class Class, size, arrival float64) *Flow {
	return &Flow{
		ID:        id,
		Src:       src,
		Dst:       dst,
		Class:     class,
		Size:      size,
		Remaining: size,
		Arrival:   arrival,
		heapIndex: -1,
	}
}

// Attached reports whether the flow currently sits in a VOQ.
func (f *Flow) Attached() bool { return f.heapIndex >= 0 }

// VOQ is one virtual output queue q_ij: the flows that arrived at ingress
// port Src and are destined for egress port Dst, ordered by remaining size.
type VOQ struct {
	Src, Dst int

	flows   []*Flow
	backlog float64
}

// Len returns the number of flows queued.
func (q *VOQ) Len() int { return len(q.flows) }

// Backlog returns the total remaining size over all queued flows — the
// X_ij(t) of the paper's queue-evolution model.
func (q *VOQ) Backlog() float64 { return q.backlog }

// Top returns the flow with the smallest remaining size, or nil when the
// queue is empty. Ties break on lower flow ID so decisions are
// deterministic.
func (q *VOQ) Top() *Flow {
	if len(q.flows) == 0 {
		return nil
	}
	return q.flows[0]
}

// Flows returns the queued flows in heap order (only the first element has
// a guaranteed position). The slice is a copy.
func (q *VOQ) Flows() []*Flow {
	out := make([]*Flow, len(q.flows))
	copy(out, q.flows)
	return out
}

// ForEachFlow calls fn for every queued flow in heap order (only the
// first element has a guaranteed position) without copying the queue.
// fn must not mutate the VOQ.
func (q *VOQ) ForEachFlow(fn func(f *Flow)) {
	for _, f := range q.flows {
		fn(f)
	}
}

func (q *VOQ) less(i, j int) bool {
	a, b := q.flows[i], q.flows[j]
	if a.Remaining != b.Remaining {
		return a.Remaining < b.Remaining
	}
	return a.ID < b.ID
}

func (q *VOQ) swap(i, j int) {
	q.flows[i], q.flows[j] = q.flows[j], q.flows[i]
	q.flows[i].heapIndex = i
	q.flows[j].heapIndex = j
}

func (q *VOQ) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *VOQ) down(i int) {
	n := len(q.flows)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *VOQ) push(f *Flow) {
	f.heapIndex = len(q.flows)
	q.flows = append(q.flows, f)
	q.up(f.heapIndex)
	q.backlog += f.Remaining
}

func (q *VOQ) remove(f *Flow) {
	i := f.heapIndex
	last := len(q.flows) - 1
	if i != last {
		q.swap(i, last)
	}
	q.flows = q.flows[:last]
	f.heapIndex = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
	q.backlog -= f.Remaining
	if q.backlog < 0 || len(q.flows) == 0 {
		// Guard against float drift: never negative, and exactly zero
		// when the queue has no flows.
		q.backlog = 0
	}
}

// adjust accounts a change of delta in f.Remaining (already applied to the
// flow) and restores heap order.
func (q *VOQ) adjust(f *Flow, delta float64) {
	q.backlog += delta
	if q.backlog < 0 {
		q.backlog = 0
	}
	q.down(f.heapIndex)
	q.up(f.heapIndex)
}
