package flow

import "fmt"

// FlowState is one flow's serializable fields. Heap position is implied by
// the flow's index in its VOQState.Flows slice, so restoring a snapshot
// reproduces the exact heap-array layout (not merely an equivalent heap):
// schedulers and validators iterate heaps in array order, and bit-for-bit
// resume requires that order to survive the round trip.
type FlowState struct {
	ID        int64   `json:"id"`
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Class     int     `json:"class"`
	Size      float64 `json:"size"`
	Remaining float64 `json:"remaining"`
	Arrival   float64 `json:"arrival"`
}

// VOQState is one non-empty VOQ: its flows in heap-array order plus the
// accumulated backlog, stored verbatim. The backlog is NOT recomputed from
// the flows on restore — incremental float accounting drifts below the
// byte level over long runs, and resuming bit-for-bit means resuming the
// drift too.
type VOQState struct {
	Src     int         `json:"src"`
	Dst     int         `json:"dst"`
	Backlog float64     `json:"backlog"`
	Flows   []FlowState `json:"flows"`
}

// TableState is the full serializable state of a Table. VOQs appear in
// nonEmpty-list order (which restore reproduces — scheduler index rebuilds
// iterate that order), Dirty preserves the dirty-list order, and every
// float accumulator is verbatim.
type TableState struct {
	N              int        `json:"n"`
	Epoch          uint64     `json:"epoch"`
	DirtyBasis     uint64     `json:"dirtyBasis"`
	VOQs           []VOQState `json:"voqs,omitempty"`
	Dirty          []int      `json:"dirty,omitempty"`
	IngressBacklog []float64  `json:"ingressBacklog"`
	EgressBacklog  []float64  `json:"egressBacklog"`
	IngressFlows   []int      `json:"ingressFlows"`
	EgressFlows    []int      `json:"egressFlows"`
	NumFlows       int        `json:"numFlows"`
}

// StateSnapshot captures the table for checkpointing.
func (t *Table) StateSnapshot() TableState {
	st := TableState{
		N:              t.n,
		Epoch:          t.epoch,
		DirtyBasis:     t.dirtyBasis,
		Dirty:          append([]int(nil), t.dirty...),
		IngressBacklog: append([]float64(nil), t.ingressBacklog...),
		EgressBacklog:  append([]float64(nil), t.egressBacklog...),
		IngressFlows:   append([]int(nil), t.ingressFlows...),
		EgressFlows:    append([]int(nil), t.egressFlows...),
		NumFlows:       t.numFlows,
	}
	for _, i := range t.nonEmpty {
		q := &t.voqs[i]
		vs := VOQState{Src: q.Src, Dst: q.Dst, Backlog: q.backlog, Flows: make([]FlowState, len(q.flows))}
		for k, f := range q.flows {
			vs.Flows[k] = FlowState{
				ID: int64(f.ID), Src: f.Src, Dst: f.Dst, Class: int(f.Class),
				Size: f.Size, Remaining: f.Remaining, Arrival: f.Arrival,
			}
		}
		st.VOQs = append(st.VOQs, vs)
	}
	return st
}

// RestoreTable rebuilds a table from a snapshot, validating the structural
// invariants a live table guarantees (heap order, port ranges, consistent
// counts). It returns the table plus an ID-to-flow map so callers can
// resolve serialized flow references (decision buffers, held matchings)
// back into pointers.
func RestoreTable(st TableState) (*Table, map[ID]*Flow, error) {
	if st.N <= 0 {
		return nil, nil, fmt.Errorf("flow: restore: invalid port count %d", st.N)
	}
	n := st.N
	if len(st.IngressBacklog) != n || len(st.EgressBacklog) != n ||
		len(st.IngressFlows) != n || len(st.EgressFlows) != n {
		return nil, nil, fmt.Errorf("flow: restore: port array lengths (%d,%d,%d,%d) do not match n=%d",
			len(st.IngressBacklog), len(st.EgressBacklog), len(st.IngressFlows), len(st.EgressFlows), n)
	}
	if st.DirtyBasis > st.Epoch {
		return nil, nil, fmt.Errorf("flow: restore: dirty basis %d ahead of epoch %d", st.DirtyBasis, st.Epoch)
	}
	t := NewTable(n)
	byID := make(map[ID]*Flow, st.NumFlows)
	total := 0
	for _, vs := range st.VOQs {
		if vs.Src < 0 || vs.Src >= n || vs.Dst < 0 || vs.Dst >= n {
			return nil, nil, fmt.Errorf("flow: restore: VOQ (%d,%d) out of range for n=%d", vs.Src, vs.Dst, n)
		}
		i := t.idx(vs.Src, vs.Dst)
		q := &t.voqs[i]
		if len(q.flows) > 0 || t.nonEmptyPos[i] >= 0 {
			return nil, nil, fmt.Errorf("flow: restore: VOQ (%d,%d) appears twice", vs.Src, vs.Dst)
		}
		if len(vs.Flows) == 0 {
			return nil, nil, fmt.Errorf("flow: restore: VOQ (%d,%d) serialized with no flows", vs.Src, vs.Dst)
		}
		for k, fs := range vs.Flows {
			f := &Flow{
				ID: ID(fs.ID), Src: fs.Src, Dst: fs.Dst, Class: Class(fs.Class),
				Size: fs.Size, Remaining: fs.Remaining, Arrival: fs.Arrival,
				heapIndex: k,
			}
			if f.Src != vs.Src || f.Dst != vs.Dst {
				return nil, nil, fmt.Errorf("flow: restore: VOQ (%d,%d) holds misfiled flow %d addressed %d->%d",
					vs.Src, vs.Dst, f.ID, f.Src, f.Dst)
			}
			if f.Remaining < 0 || f.Remaining > f.Size {
				return nil, nil, fmt.Errorf("flow: restore: flow %d remaining %g outside [0, %g]", f.ID, f.Remaining, f.Size)
			}
			if _, dup := byID[f.ID]; dup {
				return nil, nil, fmt.Errorf("flow: restore: duplicate flow id %d", f.ID)
			}
			byID[f.ID] = f
			q.flows = append(q.flows, f)
			if k > 0 {
				parent := (k - 1) / 2
				if q.less(k, parent) {
					return nil, nil, fmt.Errorf("flow: restore: VOQ (%d,%d) heap order violated at index %d", vs.Src, vs.Dst, k)
				}
			}
		}
		q.backlog = vs.Backlog
		t.nonEmptyPos[i] = len(t.nonEmpty)
		t.nonEmpty = append(t.nonEmpty, i)
		total += len(vs.Flows)
	}
	if total != st.NumFlows {
		return nil, nil, fmt.Errorf("flow: restore: %d flows serialized, header claims %d", total, st.NumFlows)
	}
	for _, i := range st.Dirty {
		if i < 0 || i >= n*n {
			return nil, nil, fmt.Errorf("flow: restore: dirty VOQ index %d out of range", i)
		}
		if t.dirtyPos[i] >= 0 {
			return nil, nil, fmt.Errorf("flow: restore: dirty VOQ index %d appears twice", i)
		}
		t.dirtyPos[i] = len(t.dirty)
		t.dirty = append(t.dirty, i)
	}
	t.epoch = st.Epoch
	t.dirtyBasis = st.DirtyBasis
	copy(t.ingressBacklog, st.IngressBacklog)
	copy(t.egressBacklog, st.EgressBacklog)
	copy(t.ingressFlows, st.IngressFlows)
	copy(t.egressFlows, st.EgressFlows)
	t.numFlows = st.NumFlows
	return t, byID, nil
}

// RestoreState refills the free list with n fresh (zeroed, detached)
// flows and restores the reuse counter. Pooled flows carry no observable
// state — Get fully reinitializes every field — so only the population
// and the hit count need to survive a checkpoint for the resumed run's
// allocation behavior (and pool counters) to match the uninterrupted one.
func (l *FreeList) RestoreState(n int, reuses int64) {
	l.free = make([]*Flow, n)
	for i := range l.free {
		l.free[i] = &Flow{heapIndex: -1}
	}
	l.reuses = reuses
}
