package flow

// FreeList recycles completed Flow structs so the steady-state event loop
// stops paying one heap allocation (and, later, one GC scan) per arrival.
// It is a plain LIFO slice rather than a sync.Pool: a sync.Pool drains
// nondeterministically under GC pressure, which would make allocation
// behavior — and therefore alloc benchmarks — vary run to run, while a
// slice is deterministic and single-goroutine like everything else in a
// simulation. Recycling changes nothing observable: Get fully
// reinitializes every field, and the pooled and non-pooled paths produce
// byte-identical simulation Results at a fixed seed (property-tested).
//
// Lifecycle contract: a flow may be Put only after it is detached from
// its VOQ (Table.Remove or Table's drain-to-zero path); Put panics on an
// attached flow because recycling a live flow would corrupt the table.
// Callers must drop every pointer to a flow before Put — in the
// simulator, the decision buffer is compacted before flows are recycled,
// and the scheduler's candidate index never dereferences entries whose
// VOQ changed since its last sync (see sched's scored.voq). The index's
// held pointers are why the fabric keeps the free list off when an
// OutageFallback may retain decisions across completions.
type FreeList struct {
	free   []*Flow
	reuses int64
}

// Get returns a fully initialized flow, recycling a previously Put struct
// when one is available and allocating otherwise. Remaining starts at
// size, exactly like NewFlow.
func (l *FreeList) Get(id ID, src, dst int, class Class, size, arrival float64) *Flow {
	n := len(l.free)
	if n == 0 {
		return NewFlow(id, src, dst, class, size, arrival)
	}
	f := l.free[n-1]
	l.free[n-1] = nil
	l.free = l.free[:n-1]
	l.reuses++
	*f = Flow{
		ID:        id,
		Src:       src,
		Dst:       dst,
		Class:     class,
		Size:      size,
		Remaining: size,
		Arrival:   arrival,
		heapIndex: -1,
	}
	return f
}

// Put returns a detached flow to the free list. It panics if the flow is
// still attached to a VOQ.
func (l *FreeList) Put(f *Flow) {
	if f.Attached() {
		panic("flow: FreeList.Put of a flow still attached to a VOQ")
	}
	l.free = append(l.free, f)
}

// Len returns the number of flows currently held for reuse.
func (l *FreeList) Len() int { return len(l.free) }

// Reuses returns how many Gets were satisfied by recycling instead of
// allocating — the free list's hit count, reported as an obs counter.
func (l *FreeList) Reuses() int64 { return l.reuses }
