package fabricsim

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

func shardTopo(t *testing.T, racks, hpr int) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Scaled(racks, hpr))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// runShardTraced executes RunShard with a JSONL trace sink attached and
// returns the result plus the full trace bytes.
func runShardTraced(t *testing.T, cfg ShardConfig) (*Result, string) {
	t.Helper()
	var buf bytes.Buffer
	ew, err := trace.NewEventWriter(&buf, trace.TraceHeader{
		Seed:        int64(cfg.Seed),
		Scheduler:   cfg.Scheduler,
		Hosts:       cfg.Topology.NumHosts(),
		Load:        cfg.Load,
		DurationSec: cfg.Duration,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.New(obs.Options{Sink: ew})
	res, err := RunShard(cfg)
	if err != nil {
		t.Fatalf("RunShard(shards=%d): %v", cfg.Shards, err)
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// TestRunShardOneShardMatchesDirectSim is the refactor's equivalence
// proof: the Shards == 1 facade must be byte-identical — digest and
// JSONL trace alike — to building the centralized Sim by hand exactly
// as pre-refactor callers did.
func TestRunShardOneShardMatchesDirectSim(t *testing.T) {
	topo := shardTopo(t, 3, 4)
	const (
		load = 0.8
		dur  = 0.05
		seed = 7
	)

	// The pre-refactor construction: explicit scheduler, fabric-wide
	// generator, direct fabricsim.New.
	var directBuf bytes.Buffer
	ew, err := trace.NewEventWriter(&directBuf, trace.TraceHeader{
		Seed: seed, Scheduler: "fast-basrpt", Hosts: topo.NumHosts(),
		Load: load, DurationSec: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduler, err := sched.New("fast-basrpt", sched.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology: topo, Load: load,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          dur, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: scheduler, Generator: gen, Duration: dur, Seed: seed,
		Obs: obs.New(obs.Options{Sink: ew}),
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}

	sharded, shardedTrace := runShardTraced(t, ShardConfig{
		Topology: topo, Scheduler: "fast-basrpt", Load: load,
		Duration: dur, Seed: seed, Shards: 1,
	})

	if direct.CompletedFlows == 0 {
		t.Fatal("direct run completed no flows; equivalence check is vacuous")
	}
	if d, s := direct.DeterministicDigest(), sharded.DeterministicDigest(); d != s {
		t.Fatalf("one-shard digest diverged from direct sim:\n direct  %s\n sharded %s", d, s)
	}
	if directBuf.String() != shardedTrace {
		t.Fatalf("one-shard trace diverged from direct sim (%d vs %d bytes)",
			directBuf.Len(), len(shardedTrace))
	}
}

// TestRunShardDecomposedDeterminism pins the second determinism family:
// every shard count >= 2, at every GOMAXPROCS, produces byte-identical
// digests and traces — the shard count only groups rack cells onto
// goroutines.
func TestRunShardDecomposedDeterminism(t *testing.T) {
	topo := shardTopo(t, 4, 4)
	base := ShardConfig{
		Topology: topo, Scheduler: "fast-basrpt", Load: 0.85,
		Duration: 0.01, Seed: 11, ValidateDecisions: true,
	}
	type arm struct {
		shards, procs int
	}
	arms := []arm{{2, 1}, {3, 1}, {4, 1}, {2, 4}, {4, 4}}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var wantDigest, wantTrace string
	var wantCompleted int
	for i, a := range arms {
		runtime.GOMAXPROCS(a.procs)
		cfg := base
		cfg.Shards = a.shards
		res, tr := runShardTraced(t, cfg)
		if i == 0 {
			wantDigest, wantTrace, wantCompleted = res.DeterministicDigest(), tr, res.CompletedFlows
			if wantCompleted == 0 {
				t.Fatal("decomposed run completed no flows; determinism check is vacuous")
			}
			continue
		}
		if got := res.DeterministicDigest(); got != wantDigest {
			t.Fatalf("shards=%d GOMAXPROCS=%d digest %s != shards=%d digest %s",
				a.shards, a.procs, got, arms[0].shards, wantDigest)
		}
		if tr != wantTrace {
			t.Fatalf("shards=%d GOMAXPROCS=%d trace diverged (%d vs %d bytes)",
				a.shards, a.procs, len(tr), len(wantTrace))
		}
	}
}

// TestRunShardDecomposedConservation checks the decomposed engine's
// bookkeeping invariants: byte conservation (arrived = departed +
// leftover) and flow conservation, plus non-degenerate cross-rack
// traffic actually flowing through the proxy ports.
func TestRunShardDecomposedConservation(t *testing.T) {
	topo := shardTopo(t, 4, 4)
	res, err := RunShard(ShardConfig{
		Topology: topo, Scheduler: "srpt", Load: 0.9,
		Duration: 0.02, Seed: 3, Shards: 2, ValidateDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivedFlows == 0 || res.CompletedFlows == 0 {
		t.Fatalf("degenerate run: arrived %d completed %d", res.ArrivedFlows, res.CompletedFlows)
	}
	if got := res.CompletedFlows + res.LeftoverFlows; got != res.ArrivedFlows {
		t.Fatalf("flow conservation broken: %d completed + %d leftover != %d arrived",
			res.CompletedFlows, res.LeftoverFlows, res.ArrivedFlows)
	}
	sum := res.DepartedBytes + res.LeftoverBytes
	if diff := math.Abs(sum - res.ArrivedBytes); diff > 1e-6*math.Max(1, res.ArrivedBytes) {
		t.Fatalf("byte conservation broken: departed %g + leftover %g != arrived %g",
			res.DepartedBytes, res.LeftoverBytes, res.ArrivedBytes)
	}
	// Queries fan out fabric-wide, so a 4-rack run must complete flows
	// whose FCT includes the core hop — i.e. more completions than the
	// intra-rack-only background traffic could supply on its own.
	if res.FCT.Count(flow.ClassQuery) == 0 {
		t.Fatal("no query flows completed; cross-rack path untested")
	}
	if res.QueueSeries.Len() == 0 || res.TotalBacklogSeries.Len() == 0 || res.MaxPortSeries.Len() == 0 {
		t.Fatal("decomposed run recorded no sample series")
	}
}

// TestRunShardDecomposedCheckpointUnsupported pins the documented
// checkpoint story: the decomposed engine rejects checkpointing with
// ErrShardUnsupported, directing callers to the Shards == 1 path.
func TestRunShardDecomposedCheckpointUnsupported(t *testing.T) {
	topo := shardTopo(t, 2, 4)
	_, err := RunShard(ShardConfig{
		Topology: topo, Scheduler: "srpt", Load: 0.5, Duration: 0.01,
		Seed: 1, Shards: 2, CheckpointEvery: 0.001,
		CheckpointSink: func([]byte, float64) error { return nil },
	})
	if !errors.Is(err, ErrShardUnsupported) {
		t.Fatalf("decomposed checkpointing accepted or wrong error: %v", err)
	}
}

// TestRunShardOneShardCheckpointRoundTrip proves sharded runs
// checkpoint through the merge-to-1-shard path: a RunShard(Shards=1)
// run halted at a checkpoint resumes — via the centralized engine's
// Resume — to the same digest as the uninterrupted run.
func TestRunShardOneShardCheckpointRoundTrip(t *testing.T) {
	topo := shardTopo(t, 3, 4)
	base := ShardConfig{
		Topology: topo, Scheduler: "srpt", Load: 0.7,
		Duration: 0.04, Seed: 9, Shards: 1,
	}
	full, err := RunShard(base)
	if err != nil {
		t.Fatal(err)
	}

	var ckpt []byte
	halted := base
	halted.CheckpointEvery = 0.01
	halted.CheckpointSink = func(data []byte, simTime float64) error {
		ckpt = data
		return ErrStopAfterCheckpoint
	}
	partial, err := RunShard(halted)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Diagnosis == nil || partial.Diagnosis.Reason != "checkpoint-stop" {
		t.Fatalf("halted run diagnosis = %+v", partial.Diagnosis)
	}
	if len(ckpt) == 0 {
		t.Fatal("checkpoint sink captured nothing")
	}

	// Rebuild the identical centralized configuration and resume.
	scheduler, err := sched.New("srpt", sched.Options{Seed: base.Seed})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology: topo, Load: base.Load,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          base.Duration, Seed: base.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Resume(Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: scheduler, Generator: gen,
		Duration: base.Duration, Seed: base.Seed,
	}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r, f := resumed.DeterministicDigest(), full.DeterministicDigest(); r != f {
		t.Fatalf("resumed digest %s != uninterrupted digest %s", r, f)
	}
}

// TestRunShardConfigValidation exercises the typed rejection of every
// malformed ShardConfig dimension.
func TestRunShardConfigValidation(t *testing.T) {
	topo := shardTopo(t, 2, 4)
	ok := ShardConfig{Topology: topo, Scheduler: "srpt", Load: 0.5, Duration: 0.01, Seed: 1, Shards: 1}
	cases := []struct {
		name   string
		mutate func(*ShardConfig)
	}{
		{"nil topology", func(c *ShardConfig) { c.Topology = nil }},
		{"zero shards", func(c *ShardConfig) { c.Shards = 0 }},
		{"negative shards", func(c *ShardConfig) { c.Shards = -2 }},
		{"zero duration", func(c *ShardConfig) { c.Duration = 0 }},
		{"bad load", func(c *ShardConfig) { c.Load = 1.5 }},
		{"zero seed", func(c *ShardConfig) { c.Seed = 0 }},
		{"bad monitor", func(c *ShardConfig) { c.MonitorPort = topo.NumHosts() }},
		{"unknown scheduler", func(c *ShardConfig) { c.Scheduler = "nope" }},
	}
	for _, tc := range cases {
		cfg := ok
		tc.mutate(&cfg)
		if _, err := RunShard(cfg); !errors.Is(err, ErrShardConfig) {
			t.Errorf("%s: accepted or wrong error: %v", tc.name, err)
		}
		// The decomposed engine applies the same validation.
		if cfg.Shards == 1 {
			cfg.Shards = 2
			if _, err := RunShard(cfg); !errors.Is(err, ErrShardConfig) {
				t.Errorf("%s (decomposed): accepted or wrong error: %v", tc.name, err)
			}
		}
	}
	if _, err := RunShard(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestRunShardDecomposedSchedulerSweep runs every registered discipline
// through the decomposed engine once, checking the grouping-invariance
// contract holds for dirty-feed consumers and RNG schedulers alike.
func TestRunShardDecomposedSchedulerSweep(t *testing.T) {
	topo := shardTopo(t, 3, 4)
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			base := ShardConfig{
				Topology: topo, Scheduler: name, Load: 0.6,
				Duration: 0.005, Seed: 5, ValidateDecisions: true,
			}
			digests := make([]string, 0, 2)
			for _, shards := range []int{2, 3} {
				cfg := base
				cfg.Shards = shards
				res, err := RunShard(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				digests = append(digests, res.DeterministicDigest())
			}
			if digests[0] != digests[1] {
				t.Fatalf("scheduler %s not grouping-invariant:\n %s\n %s", name, digests[0], digests[1])
			}
		})
	}
}
