package fabricsim

import (
	"testing"

	"basrpt/internal/faults"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
)

// TestFlowPoolEquivalence: recycling completed flows through the free list
// must not change any observable output — the pooled arm and the
// DisableFlowPool arm of the same fixed-seed run produce identical
// decisions, completions, byte accounting, and sample series, under
// continuous decision validation and periodic deep table validation.
func TestFlowPoolEquivalence(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	run := func(disable bool) *Result {
		cfg := Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewFastBASRPT(2500),
			Generator: mixedGen(t, topo, 0.85, 1.8, 11),
			Duration:  2, ValidateDecisions: true, DeepValidateEvery: 7,
			Seed:            11,
			DisableFlowPool: disable,
		}
		return mustRun(t, cfg)
	}
	pooled, baseline := run(false), run(true)
	sameResults(t, pooled, baseline)
}

// TestFlowPoolAutoDisabledUnderFaults: an OutageFallback retains decision
// pointers across completions, so configuring a fault injector must switch
// flow recycling off regardless of DisableFlowPool.
func TestFlowPoolAutoDisabledUnderFaults(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 2))
	schedule, err := faults.Generate(faults.Params{
		Seed: 21, Horizon: 2, Ports: topo.NumHosts(), LinkFaults: 1, Outages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.7, 1, 5),
		Duration:  1, Seed: 5,
		Faults: faults.NewInjector(schedule),
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.poolOn {
		t.Fatal("flow pool stayed on despite a configured fault injector")
	}

	cfg.Faults = nil
	cfg.Generator = mixedGen(t, topo, 0.7, 1, 5)
	sim, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.poolOn {
		t.Fatal("flow pool off by default without faults")
	}
}
