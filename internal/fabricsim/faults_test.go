package fabricsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/workload"
)

// mixedGen builds the standard mixed workload used by the fault tests.
func mixedGen(t *testing.T, topo *topology.Topology, load, duration float64, seed uint64) workload.Generator {
	t.Helper()
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              load,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          duration,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestLinkFaultDelaysFlow: a hard link fault freezes the only flow for the
// whole window, so its FCT grows by exactly the fault duration.
func TestLinkFaultDelaysFlow(t *testing.T) {
	// 3000 bytes at 1000 B/s: 3 s fault-free. Port 0's link is dead on
	// [1, 2), so the flow finishes at t = 4 instead of t = 3.
	schedule := &faults.Schedule{
		Seed:    1,
		Horizon: 10,
		LinkFaults: []faults.LinkFault{
			{Window: faults.Window{Start: 1, End: 2}, Port: 0, RateFraction: 0},
		},
	}
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 3000, Class: flow.ClassQuery},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, ValidateDecisions: true,
		Faults: faults.NewInjector(schedule),
	})
	if res.CompletedFlows != 1 {
		t.Fatalf("completed = %d, want 1", res.CompletedFlows)
	}
	if got := res.FCT.Stats(flow.ClassQuery).MeanMs; math.Abs(got-4000) > 1e-6 {
		t.Fatalf("FCT = %g ms, want 4000 (3 s transfer + 1 s outage)", got)
	}
	if res.Faults.LinkFaultStarts != 1 || res.Faults.LinkFaultEnds != 1 {
		t.Fatalf("fault counters = %+v, want one start and one end", res.Faults)
	}
}

// TestDegradedLinkHalvesRate: RateFraction 0.5 doubles the transfer time
// spent inside the window.
func TestDegradedLinkHalvesRate(t *testing.T) {
	// 3000 bytes at 1000 B/s with the link at half rate on [0, 2): the
	// first 2 s drain 1000 bytes, the remaining 2000 drain in 2 s more.
	schedule := &faults.Schedule{
		Seed:    1,
		Horizon: 10,
		LinkFaults: []faults.LinkFault{
			{Window: faults.Window{Start: 0, End: 2}, Port: 1, RateFraction: 0.5},
		},
	}
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 3000, Class: flow.ClassQuery},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, ValidateDecisions: true,
		Faults: faults.NewInjector(schedule),
	})
	if got := res.FCT.Stats(flow.ClassQuery).MeanMs; math.Abs(got-4000) > 1e-6 {
		t.Fatalf("FCT = %g ms, want 4000 (2 s at half rate + 2 s at full)", got)
	}
}

// TestSchedulerOutageHoldsMatching: during an outage the fabric keeps
// transmitting under the held matching — never idle while work exists,
// never violating the crossbar constraint (ValidateDecisions checks every
// decision, including the held ones), and counting the held decisions.
func TestSchedulerOutageHoldsMatching(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	schedule := &faults.Schedule{
		Seed:    1,
		Horizon: 2,
		Outages: []faults.Window{{Start: 0.5, End: 1.2}},
	}
	res := mustRun(t, Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.8, 1.8, 11),
		Duration:  2, ValidateDecisions: true,
		Faults: faults.NewInjector(schedule),
	})
	if res.Faults.OutageStarts != 1 || res.Faults.OutageEnds != 1 {
		t.Fatalf("outage counters = %+v", res.Faults)
	}
	if res.Faults.DecisionsHeld == 0 {
		t.Fatal("no decisions served from the held matching during a 0.7 s outage")
	}
	// The fabric must keep completing flows across the outage window.
	if res.CompletedFlows == 0 {
		t.Fatal("no completions in a run spanning an outage")
	}
	if diff := math.Abs(res.ArrivedBytes - res.DepartedBytes - res.LeftoverBytes); diff > 1e-3*math.Max(1, res.ArrivedBytes) {
		t.Fatalf("byte conservation violated by %g", diff)
	}
	if !strings.HasSuffix(res.SchedulerName, "+hold") {
		t.Fatalf("scheduler name %q does not flag the outage fallback", res.SchedulerName)
	}
}

// TestWatchdogBacklogTruncation: a run pushed past its backlog bound stops
// at a sample tick with a partial Result whose Diagnosis explains the stop
// and whose metrics still conserve bytes.
func TestWatchdogBacklogTruncation(t *testing.T) {
	// One giant flow that can never finish: backlog stays near 1e6 bytes,
	// far above the 1000-byte bound, so the t=1 sample trips the watchdog.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0.5, Src: 0, Dst: 1, Size: 1e6, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, SampleInterval: 1, Seed: 77,
		Watchdog: &Watchdog{MaxBacklogBytes: 1000},
	})
	if !res.Truncated() {
		t.Fatal("watchdog did not truncate a diverging run")
	}
	d := res.Diagnosis
	if d.Reason != "backlog-bound" || d.Seed != 77 {
		t.Fatalf("diagnosis = %+v", d)
	}
	if d.SimTime <= 0 || d.SimTime >= 10 {
		t.Fatalf("truncated at t=%g, want inside (0, 10)", d.SimTime)
	}
	if res.Duration != d.SimTime {
		t.Fatalf("result duration %g != truncation time %g", res.Duration, d.SimTime)
	}
	if d.BacklogBytes <= 1000 {
		t.Fatalf("diagnosis backlog %g not above the bound", d.BacklogBytes)
	}
	if diff := math.Abs(res.ArrivedBytes - res.DepartedBytes - res.LeftoverBytes); diff > 1e-6 {
		t.Fatalf("truncated run breaks byte conservation by %g", diff)
	}
	if !math.IsNaN(res.AverageGbps()) && res.AverageGbps() < 0 {
		t.Fatalf("average throughput %g invalid after truncation", res.AverageGbps())
	}
}

// TestWatchdogWallClock: a minuscule wall-clock budget truncates a busy
// run (the exact stop point is machine-dependent; only the mechanism is
// asserted).
func TestWatchdogWallClock(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	res := mustRun(t, Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewSRPT(),
		Generator: mixedGen(t, topo, 0.9, 20, 3),
		Duration:  25, SampleInterval: 1e-4,
		Watchdog: &Watchdog{MaxWallClock: time.Nanosecond},
	})
	if !res.Truncated() {
		t.Skip("run finished inside the budget's first check window")
	}
	if res.Diagnosis.Reason != "wallclock-budget" {
		t.Fatalf("diagnosis = %+v", res.Diagnosis)
	}
	if diff := math.Abs(res.ArrivedBytes - res.DepartedBytes - res.LeftoverBytes); diff > 1e-3*math.Max(1, res.ArrivedBytes) {
		t.Fatalf("truncated run breaks byte conservation by %g", diff)
	}
}

// TestFaultRunDeterminism: the same workload seed and fault seed reproduce
// a fault run exactly — schedules, counters, and metrics.
func TestFaultRunDeterminism(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	run := func() *Result {
		schedule, err := faults.Generate(faults.Params{
			Seed:       21,
			Horizon:    2,
			Ports:      topo.NumHosts(),
			LinkFaults: 3,
			Outages:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewFastBASRPT(2500),
			Generator: mixedGen(t, topo, 0.85, 1.8, 4),
			Duration:  2, ValidateDecisions: true,
			Faults: faults.NewInjector(schedule),
		})
	}
	a, b := run(), run()
	if a.CompletedFlows != b.CompletedFlows || a.DepartedBytes != b.DepartedBytes ||
		a.Decisions != b.Decisions || a.Faults != b.Faults {
		t.Fatalf("fault run not deterministic:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if a.TotalBacklogSeries.Len() != b.TotalBacklogSeries.Len() {
		t.Fatal("backlog series lengths differ")
	}
	for i := range a.TotalBacklogSeries.Values {
		if a.TotalBacklogSeries.Values[i] != b.TotalBacklogSeries.Values[i] {
			t.Fatalf("backlog sample %d differs", i)
		}
	}
}

// TestFaultConfigValidation: New rejects schedules that do not fit the
// fabric and negative watchdog bounds.
func TestFaultConfigValidation(t *testing.T) {
	gen := workload.NewSliceGenerator(nil)
	base := Config{Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen, Duration: 1}

	outOfRange := &faults.Schedule{
		Seed:    1,
		Horizon: 1,
		LinkFaults: []faults.LinkFault{
			{Window: faults.Window{Start: 0.1, End: 0.2}, Port: 9},
		},
	}
	cfg := base
	cfg.Faults = faults.NewInjector(outOfRange)
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted a link fault on a port outside the fabric")
	}

	invalid := &faults.Schedule{Seed: 1, Horizon: -1}
	cfg = base
	cfg.Faults = faults.NewInjector(invalid)
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted an invalid schedule")
	}

	cfg = base
	cfg.Watchdog = &Watchdog{MaxBacklogBytes: -1}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted a negative watchdog bound")
	}
}
