package fabricsim

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"basrpt/internal/checkpoint"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/workload"
)

// arbStater is the distributed-arbitration counter surface (implemented
// by sched.Distributed) the checkpoint carries across a resume.
type arbStater interface {
	ArbitrationState() (rounds, grantsLost int64)
	RestoreArbitrationState(rounds, grantsLost int64)
}

// Checkpoint captures and encodes the simulator's full state. It is only
// meaningful at an event-loop top (the run loop and truncation paths call
// it exactly there); the capture itself is read-only.
func (s *Sim) Checkpoint() ([]byte, error) {
	st, err := s.captureState()
	if err != nil {
		return nil, err
	}
	return checkpoint.Encode(st)
}

// Resume reconstructs a simulator from a checkpoint taken by a run with
// an equivalent configuration and rewinds it to the captured instant;
// calling Run then continues bit-for-bit — same Result, same trace events
// — as the uninterrupted run. The configuration may differ only in fields
// outside the digest: watchdog bounds (so a truncated run can resume with
// relaxed limits), checkpoint cadence/sink, observability handle,
// validation knobs.
func Resume(cfg Config, data []byte) (*Sim, error) {
	st, err := checkpoint.Decode(data)
	if err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.restoreState(st); err != nil {
		return nil, err
	}
	s.resumed = true
	return s, nil
}

// stopAtCheckpoint seals a run halted by ErrStopAfterCheckpoint. Unlike
// truncate it emits NO trace event: the halt is invisible to the event
// stream, which is what makes a halted trace plus its continuation
// byte-identical to the uninterrupted trace.
func (s *Sim) stopAtCheckpoint(data []byte) *Result {
	res := s.finish()
	res.Duration = s.now
	res.Diagnosis = &Diagnosis{
		Reason:       "checkpoint-stop",
		SimTime:      s.now,
		BacklogBytes: res.LeftoverBytes,
		Events:       res.Decisions,
		Seed:         s.cfg.Seed,
		TableEpoch:   s.table.Epoch(),
		Checkpoint:   data,
	}
	return res
}

// flushWindow emits one streaming-results window: completions, goodput,
// and mean FCT over the window just ended (cumulative deltas against the
// previous flush) plus the instantaneous fabric backlog, then trims the
// in-memory series to their retention bound.
func (s *Sim) flushWindow() {
	completed := s.res.CompletedFlows - s.winCompleted0
	departed := s.res.DepartedBytes - s.winDeparted0
	fctSum := s.fctSum - s.winFCTSum0
	s.cfg.Obs.Emit(s.now, "window.completed", -1, float64(completed), "")
	s.cfg.Obs.Emit(s.now, "window.gbps", -1, departed*8/s.cfg.StreamWindow/1e9, "")
	var avgMs float64
	if completed > 0 {
		avgMs = fctSum / float64(completed) * 1e3
	}
	s.cfg.Obs.Emit(s.now, "window.fct_avg_ms", -1, avgMs, "")
	s.cfg.Obs.Emit(s.now, "window.backlog", -1, s.table.TotalBacklog(), "")
	s.winCompleted0 = s.res.CompletedFlows
	s.winDeparted0 = s.res.DepartedBytes
	s.winFCTSum0 = s.fctSum
	s.res.QueueSeries.TrimToTail(s.cfg.StreamKeep)
	s.res.TotalBacklogSeries.TrimToTail(s.cfg.StreamKeep)
	s.res.MaxPortSeries.TrimToTail(s.cfg.StreamKeep)
}

// captureState assembles the checkpoint payload from live state.
func (s *Sim) captureState() (*checkpoint.State, error) {
	gen, ok := s.cfg.Generator.(workload.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("generator %T does not support checkpointing", s.cfg.Generator)
	}
	genState, err := gen.CheckpointState()
	if err != nil {
		return nil, err
	}
	st := &checkpoint.State{
		ConfigDigest:   s.configDigest(),
		SimTime:        s.now,
		NextID:         int64(s.nextID),
		NextSample:     s.nextSample,
		ArrivedFlows:   s.res.ArrivedFlows,
		CompletedFlows: s.res.CompletedFlows,
		ArrivedBytes:   s.res.ArrivedBytes,
		DepartedBytes:  s.res.DepartedBytes,
		FCTSum:         s.fctSum,
		FaultCounters:  s.res.Faults,
		FCT:            s.res.FCT.StateSnapshot(),
		Throughput:     s.res.Throughput.StateSnapshot(),

		QueueSeries:        s.res.QueueSeries,
		TotalBacklogSeries: s.res.TotalBacklogSeries,
		MaxPortSeries:      s.res.MaxPortSeries,

		Table:     s.table.StateSnapshot(),
		Generator: genState,
		Registry:  deterministicRegistry(s.reg.StateSnapshot()),
		Tracer:    s.cfg.Obs.StateSnapshot(),
	}
	if !math.IsInf(s.nextCompletion, 1) {
		st.HasNextCompletion = true
		st.NextCompletion = s.nextCompletion
	}
	if s.hasPending {
		st.HasPending = true
		st.PendingArrival = s.pendingArrival
	}
	if s.cfg.StreamWindow > 0 {
		st.Stream = &checkpoint.StreamState{
			NextWindow:       s.nextWindow,
			FlushedDeparted:  s.winDeparted0,
			FlushedCompleted: s.winCompleted0,
			FlushedFCTSum:    s.winFCTSum0,
		}
	}
	for _, f := range s.decision {
		st.Decision = append(st.Decision, int64(f.ID))
	}
	if s.poolOn {
		st.PoolFree = s.pool.Len()
		st.PoolReuses = s.pool.Reuses()
	}
	if s.cfg.Faults != nil {
		is := s.cfg.Faults.StateSnapshot()
		st.Injector = &is
	}
	if s.fallback != nil {
		fs := s.fallback.StateSnapshot()
		st.Fallback = &fs
	}
	var ss checkpoint.SchedState
	hasSched := false
	if a, ok := s.cfg.Scheduler.(arbStater); ok {
		ss.Rounds, ss.GrantsLost = a.ArbitrationState()
		hasSched = true
	}
	if r, ok := s.cfg.Scheduler.(sched.RNGScheduler); ok {
		ss.HasRNG = true
		ss.RNG = r.RNGState()
		hasSched = true
	}
	if hasSched {
		st.Sched = &ss
	}
	return st, nil
}

// restoreState rewinds a freshly-built Sim to a decoded snapshot. Every
// structural mismatch between the snapshot and the configuration is a
// hard error — a silent partial restore would produce plausible-looking
// wrong results, the worst failure mode a determinism contract can have.
func (s *Sim) restoreState(st *checkpoint.State) error {
	if want, got := s.configDigest(), st.ConfigDigest; got != want {
		return fmt.Errorf("%w: checkpoint digest %s, configuration digest %s",
			checkpoint.ErrConfigMismatch, got, want)
	}
	gen, ok := s.cfg.Generator.(workload.Checkpointable)
	if !ok {
		return fmt.Errorf("fabricsim: resume: generator %T does not support checkpointing", s.cfg.Generator)
	}
	if st.Generator == nil {
		return fmt.Errorf("fabricsim: resume: checkpoint has no generator state")
	}
	if st.Table.N != s.cfg.Hosts {
		return fmt.Errorf("%w: checkpoint table has %d ports, fabric has %d",
			checkpoint.ErrConfigMismatch, st.Table.N, s.cfg.Hosts)
	}
	if (s.cfg.StreamWindow > 0) != (st.Stream != nil) {
		return fmt.Errorf("%w: streaming-mode state mismatch", checkpoint.ErrConfigMismatch)
	}
	if (s.cfg.Faults != nil) != (st.Injector != nil) {
		return fmt.Errorf("%w: fault-injector state mismatch", checkpoint.ErrConfigMismatch)
	}
	table, byID, err := flow.RestoreTable(st.Table)
	if err != nil {
		return fmt.Errorf("fabricsim: resume: %w", err)
	}
	fct, err := metrics.RestoreFCT(st.FCT)
	if err != nil {
		return fmt.Errorf("fabricsim: resume: %w", err)
	}
	thr, err := metrics.RestoreThroughput(st.Throughput)
	if err != nil {
		return fmt.Errorf("fabricsim: resume: %w", err)
	}
	queueSeries, err := restoreSeries("queue", st.QueueSeries)
	if err != nil {
		return err
	}
	totalSeries, err := restoreSeries("total-backlog", st.TotalBacklogSeries)
	if err != nil {
		return err
	}
	maxSeries, err := restoreSeries("max-port", st.MaxPortSeries)
	if err != nil {
		return err
	}
	decision := make([]*flow.Flow, 0, len(st.Decision))
	for _, id := range st.Decision {
		f := byID[flow.ID(id)]
		if f == nil {
			return fmt.Errorf("fabricsim: resume: decision references unknown flow %d", id)
		}
		decision = append(decision, f)
	}
	if err := gen.RestoreCheckpoint(st.Generator); err != nil {
		return fmt.Errorf("fabricsim: resume: %w", err)
	}
	if st.Injector != nil {
		if err := s.cfg.Faults.RestoreState(*st.Injector); err != nil {
			return fmt.Errorf("fabricsim: resume: %w", err)
		}
	}
	if (s.fallback != nil) != (st.Fallback != nil) {
		return fmt.Errorf("%w: outage-fallback state mismatch", checkpoint.ErrConfigMismatch)
	}
	if st.Fallback != nil {
		if err := s.fallback.RestoreState(*st.Fallback, func(id flow.ID) *flow.Flow {
			return byID[id]
		}); err != nil {
			return fmt.Errorf("fabricsim: resume: %w", err)
		}
	}
	arb, isArb := s.cfg.Scheduler.(arbStater)
	rng, isRNG := s.cfg.Scheduler.(sched.RNGScheduler)
	if (isArb || isRNG) != (st.Sched != nil) {
		return fmt.Errorf("%w: scheduler state mismatch", checkpoint.ErrConfigMismatch)
	}
	if st.Sched != nil {
		if isRNG != st.Sched.HasRNG {
			return fmt.Errorf("%w: scheduler RNG state mismatch", checkpoint.ErrConfigMismatch)
		}
		if isArb {
			arb.RestoreArbitrationState(st.Sched.Rounds, st.Sched.GrantsLost)
		}
		if isRNG {
			if err := rng.RestoreRNGState(st.Sched.RNG); err != nil {
				return fmt.Errorf("fabricsim: resume: %w", err)
			}
		}
	}
	if err := s.reg.RestoreState(st.Registry); err != nil {
		return fmt.Errorf("fabricsim: resume: %w", err)
	}
	if s.cfg.Obs != nil && st.Tracer != nil {
		if err := s.cfg.Obs.RestoreState(st.Tracer); err != nil {
			return fmt.Errorf("fabricsim: resume: %w", err)
		}
	}
	// All validation passed: commit the scalar state.
	s.table = table
	s.now = st.SimTime
	s.nextID = flow.ID(st.NextID)
	s.nextSample = st.NextSample
	s.nextCompletion = math.Inf(1)
	if st.HasNextCompletion {
		s.nextCompletion = st.NextCompletion
	}
	s.hasPending = st.HasPending
	s.pendingArrival = workload.Arrival{}
	if st.HasPending {
		s.pendingArrival = st.PendingArrival
	}
	s.decision = decision
	s.res.ArrivedFlows = st.ArrivedFlows
	s.res.CompletedFlows = st.CompletedFlows
	s.res.ArrivedBytes = st.ArrivedBytes
	s.res.DepartedBytes = st.DepartedBytes
	s.fctSum = st.FCTSum
	s.res.Faults = st.FaultCounters
	s.res.FCT = fct
	s.res.Throughput = thr
	s.res.QueueSeries = queueSeries
	s.res.TotalBacklogSeries = totalSeries
	s.res.MaxPortSeries = maxSeries
	if st.Stream != nil {
		s.nextWindow = st.Stream.NextWindow
		s.winDeparted0 = st.Stream.FlushedDeparted
		s.winCompleted0 = st.Stream.FlushedCompleted
		s.winFCTSum0 = st.Stream.FlushedFCTSum
	}
	if s.poolOn {
		s.pool.RestoreState(st.PoolFree, st.PoolReuses)
	}
	// The next periodic checkpoint boundary is re-derived by the same
	// incremental additions the uninterrupted run performs, so the two
	// runs cross identical (bit-for-bit) boundary values.
	if s.cfg.CheckpointEvery > 0 {
		s.nextCheckpoint = s.cfg.CheckpointEvery
		for s.nextCheckpoint <= s.now {
			s.nextCheckpoint += s.cfg.CheckpointEvery
		}
	}
	return nil
}

// restoreSeries validates and copies a serialized series (times must be
// non-decreasing — the same invariant Series.Add enforces with a panic).
func restoreSeries(name string, st metrics.Series) (metrics.Series, error) {
	if len(st.Times) != len(st.Values) {
		return metrics.Series{}, fmt.Errorf("fabricsim: resume: %s series has %d times, %d values",
			name, len(st.Times), len(st.Values))
	}
	for i := 1; i < len(st.Times); i++ {
		if st.Times[i] < st.Times[i-1] {
			return metrics.Series{}, fmt.Errorf("fabricsim: resume: %s series time regresses at index %d", name, i)
		}
	}
	return metrics.Series{
		Times:  append([]float64(nil), st.Times...),
		Values: append([]float64(nil), st.Values...),
	}, nil
}

// configDigest fingerprints the parts of the configuration a checkpoint
// depends on. Watchdog bounds, checkpoint cadence, validation knobs, and
// the observability handle are deliberately excluded — changing them must
// not invalidate a resume (relaxing the watchdog after a truncation is
// the whole point). Generator internals cannot be introspected; their
// compatibility is enforced structurally by the generator's own restore
// validation, keyed through Seed and the scheduler/fabric shape here.
func (s *Sim) configDigest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "hosts=%d|link=%g|dur=%g|sample=%g|monitor=%d|bucket=%g|seed=%d|sched=%s|pool=%t|window=%g|keep=%d|",
		s.cfg.Hosts, s.cfg.LinkBps, s.cfg.Duration, s.cfg.SampleInterval, s.cfg.MonitorPort,
		s.cfg.ThroughputBucket, s.cfg.Seed, s.res.SchedulerName, s.poolOn, s.cfg.StreamWindow, s.cfg.StreamKeep)
	if s.cfg.Faults != nil {
		fmt.Fprintf(h, "faults=%s|", s.cfg.Faults.Schedule().String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DeterministicDigest hashes every machine-independent field of the
// Result into a short hex fingerprint: two runs of the same seeded
// configuration — including a checkpointed-and-resumed run versus its
// uninterrupted twin — produce equal digests. Wall-clock-derived values
// (SchedNanos, the decision-latency histogram, runtime.* gauges) and the
// incremental-index repair counters (a resumed scheduler rebuilds its
// index from scratch, so its repair counts legitimately differ) are
// excluded.
func (r *Result) DeterministicDigest() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "sched=%s|dur=%.17g|arrived=%d|completed=%d|abytes=%.17g|dbytes=%.17g|leftb=%.17g|leftf=%d|decisions=%d|",
		r.SchedulerName, r.Duration, r.ArrivedFlows, r.CompletedFlows,
		r.ArrivedBytes, r.DepartedBytes, r.LeftoverBytes, r.LeftoverFlows, r.Decisions)
	fmt.Fprintf(h, "faults=%+v|", r.Faults)
	writeJSON(h, r.FCT.StateSnapshot())
	writeJSON(h, r.Throughput.StateSnapshot())
	writeJSON(h, r.QueueSeries)
	writeJSON(h, r.TotalBacklogSeries)
	writeJSON(h, r.MaxPortSeries)
	if d := r.Diagnosis; d != nil {
		fmt.Fprintf(h, "diag=%s|t=%.17g|backlog=%.17g|events=%d|epoch=%d|",
			d.Reason, d.SimTime, d.BacklogBytes, d.Events, d.TableEpoch)
		writeJSON(h, d.LastEvents)
	}
	for _, c := range r.Obs.Counters {
		if deterministicObsName(c.Name) {
			fmt.Fprintf(h, "c:%s=%d|", c.Name, c.Value)
		}
	}
	for _, g := range r.Obs.Gauges {
		if deterministicObsName(g.Name) {
			fmt.Fprintf(h, "g:%s=%.17g/%.17g|", g.Name, g.Value, g.Max)
		}
	}
	for _, hs := range r.Obs.Histograms {
		if deterministicObsName(hs.Name) {
			writeJSON(h, hs)
		}
	}
	// Per-cell deterministic-plane snapshots (decomposed runs): folding
	// them in machine-checks the per-cell attribution contract — the same
	// grouping invariance the top-level counters already get.
	for i, cell := range r.ShardObs {
		for _, c := range cell.Counters {
			if deterministicObsName(c.Name) {
				fmt.Fprintf(h, "s%d:c:%s=%d|", i, c.Name, c.Value)
			}
		}
		for _, g := range cell.Gauges {
			if deterministicObsName(g.Name) {
				fmt.Fprintf(h, "s%d:g:%s=%.17g/%.17g|", i, g.Name, g.Value, g.Max)
			}
		}
		for _, hs := range cell.Histograms {
			if deterministicObsName(hs.Name) {
				fmt.Fprintf(h, "s%d:h:", i)
				writeJSON(h, hs)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// deterministicRegistry strips wall-clock-derived instruments from a
// registry snapshot. They carry no resumable information (the resumed
// process re-measures its own machine), and dropping them makes the
// checkpoint bytes themselves deterministic: two runs of the same seed
// truncated at the same instant produce byte-identical checkpoints.
func deterministicRegistry(st obs.RegistryState) obs.RegistryState {
	out := obs.RegistryState{}
	for _, c := range st.Counters {
		if deterministicObsName(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range st.Gauges {
		if deterministicObsName(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, hs := range st.Histograms {
		if deterministicObsName(hs.Name) {
			out.Histograms = append(out.Histograms, hs)
		}
	}
	return out
}

// deterministicObsName reports whether a registry entry is stable across
// machines and across checkpoint/resume. The wall-clock observability
// plane ("wall." and "runtime." names, see obs.IsWallClock) is excluded
// wholesale; a few older wall-clock-derived names predate the naming
// convention and are excluded individually.
func deterministicObsName(name string) bool {
	if obs.IsWallClock(name) {
		return false
	}
	switch name {
	case "fabric.sched_nanos", "fabric.decision_ns", "sched.index_repairs", "sched.index_rebuilds":
		return false
	}
	return true
}

func writeJSON(w io.Writer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Every value marshaled here is a plain data struct; failure means
		// a programming error, and a digest built from partial input would
		// silently compare equal to the wrong things.
		panic(fmt.Sprintf("fabricsim: digest marshal: %v", err))
	}
	w.Write(b)
	w.Write([]byte{'|'})
}
