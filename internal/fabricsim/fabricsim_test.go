package fabricsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/workload"
)

// link is a convenient test link rate: 1000 bytes per second.
const link = 8000.0

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	gen := workload.NewSliceGenerator(nil)
	good := Config{Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen, Duration: 1}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(Config) Config{
		func(c Config) Config { c.Hosts = 0; return c },
		func(c Config) Config { c.LinkBps = 0; return c },
		func(c Config) Config { c.Scheduler = nil; return c },
		func(c Config) Config { c.Generator = nil; return c },
		func(c Config) Config { c.Duration = 0; return c },
		func(c Config) Config { c.MonitorPort = 5; return c },
		func(c Config) Config { c.MonitorPort = -1; return c },
	}
	for i, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSingleFlowFCT(t *testing.T) {
	// 1000 bytes at 1000 B/s: exactly 1 second.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0.5, Src: 0, Dst: 1, Size: 1000, Class: flow.ClassQuery},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 3, ValidateDecisions: true,
	})
	if res.CompletedFlows != 1 || res.ArrivedFlows != 1 {
		t.Fatalf("flows = %d/%d, want 1/1", res.CompletedFlows, res.ArrivedFlows)
	}
	cs := res.FCT.Stats(flow.ClassQuery)
	if math.Abs(cs.MeanMs-1000) > 1e-6 {
		t.Fatalf("FCT = %g ms, want 1000", cs.MeanMs)
	}
	if math.Abs(res.DepartedBytes-1000) > 1e-6 {
		t.Fatalf("departed = %g, want 1000", res.DepartedBytes)
	}
	if res.LeftoverBytes != 0 || res.LeftoverFlows != 0 {
		t.Fatalf("leftover = %g bytes / %d flows", res.LeftoverBytes, res.LeftoverFlows)
	}
}

func TestSRPTPreemptsLongFlow(t *testing.T) {
	// Long flow starts at 0; short flow arrives at 1s sharing the source.
	// Under SRPT the short one preempts immediately.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 5000, Class: flow.ClassBackground}, // 5 s alone
		{Time: 1, Src: 0, Dst: 1, Size: 500, Class: flow.ClassQuery},       // 0.5 s
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, ValidateDecisions: true,
	})
	q := res.FCT.Stats(flow.ClassQuery)
	if math.Abs(q.MeanMs-500) > 1e-6 {
		t.Fatalf("query FCT = %g ms, want 500 (preemption)", q.MeanMs)
	}
	// Long flow: 1s of service before preemption, 0.5s paused, finishes at
	// 0 + 5s + 0.5s = 5.5s.
	b := res.FCT.Stats(flow.ClassBackground)
	if math.Abs(b.MeanMs-5500) > 1e-6 {
		t.Fatalf("background FCT = %g ms, want 5500", b.MeanMs)
	}
}

func TestParallelNonConflictingFlows(t *testing.T) {
	// Two flows on disjoint port pairs transmit simultaneously.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 1000, Class: flow.ClassOther},
		{Time: 0, Src: 2, Dst: 3, Size: 1000, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 4, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 2, ValidateDecisions: true,
	})
	cs := res.FCT.Stats(flow.ClassOther)
	if cs.Count != 2 {
		t.Fatalf("completions = %d, want 2", cs.Count)
	}
	if math.Abs(cs.MaxMs-1000) > 1e-6 {
		t.Fatalf("max FCT = %g ms, want 1000 (parallel transfer)", cs.MaxMs)
	}
}

func TestConflictingFlowsSerialize(t *testing.T) {
	// Same destination: must serialize even from different sources.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 2, Size: 1000, Class: flow.ClassOther},
		{Time: 0, Src: 1, Dst: 2, Size: 1000, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 3, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 5, ValidateDecisions: true,
	})
	cs := res.FCT.Stats(flow.ClassOther)
	if cs.Count != 2 {
		t.Fatalf("completions = %d, want 2", cs.Count)
	}
	if math.Abs(cs.MaxMs-2000) > 1e-6 {
		t.Fatalf("max FCT = %g ms, want 2000 (serialized)", cs.MaxMs)
	}
}

func TestLeftoverAccounting(t *testing.T) {
	// A flow too large to finish within the horizon.
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 10000, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 2, ValidateDecisions: true,
	})
	if res.CompletedFlows != 0 || res.LeftoverFlows != 1 {
		t.Fatalf("completed/leftover = %d/%d", res.CompletedFlows, res.LeftoverFlows)
	}
	if math.Abs(res.DepartedBytes-2000) > 1 {
		t.Fatalf("departed = %g, want ~2000", res.DepartedBytes)
	}
	if math.Abs(res.LeftoverBytes-8000) > 1 {
		t.Fatalf("leftover = %g, want ~8000", res.LeftoverBytes)
	}
	// Conservation.
	if math.Abs(res.ArrivedBytes-res.DepartedBytes-res.LeftoverBytes) > 1e-6 {
		t.Fatal("byte conservation violated")
	}
}

func TestThroughputSeries(t *testing.T) {
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 4000, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 8, ThroughputBucket: 1,
	})
	s := res.Throughput.SeriesGbps()
	// 1000 B/s for the first 4 seconds = 8000 bps = 8e-6 Gbps per bucket.
	for i := 0; i < 4; i++ {
		if math.Abs(s.Values[i]-8e-6) > 1e-12 {
			t.Fatalf("bucket %d = %g, want 8e-6 Gbps", i, s.Values[i])
		}
	}
}

func TestQueueSeriesMonitorsPort(t *testing.T) {
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 1, Dst: 0, Size: 5000, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 4, SampleInterval: 1, MonitorPort: 1,
	})
	if res.QueueSeries.Len() < 4 {
		t.Fatalf("queue series too short: %d", res.QueueSeries.Len())
	}
	// At t=1 (sample 1) about 4000 bytes remain at ingress port 1.
	if got := res.QueueSeries.Values[1]; math.Abs(got-4000) > 1 {
		t.Fatalf("queue sample at t=1 = %g, want ~4000", got)
	}
	if res.MaxPortSeries.Values[1] < 3999 {
		t.Fatalf("max-port series = %g", res.MaxPortSeries.Values[1])
	}
}

func TestDecisionUpdatesOnlyOnArrivalAndCompletion(t *testing.T) {
	// Three arrivals and three completions, all disjoint in time: at most
	// 6 scheduling decisions (sampling must not trigger reschedules).
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 500, Class: flow.ClassOther},
		{Time: 2, Src: 1, Dst: 0, Size: 500, Class: flow.ClassOther},
		{Time: 4, Src: 0, Dst: 1, Size: 500, Class: flow.ClassOther},
	})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, SampleInterval: 0.01,
	})
	if res.Decisions > 6 {
		t.Fatalf("decisions = %d, want <= 6", res.Decisions)
	}
	if res.CompletedFlows != 3 {
		t.Fatalf("completed = %d, want 3", res.CompletedFlows)
	}
}

// TestByteConservationProperty: arrived = departed + leftover for random
// mixed workloads across schedulers.
func TestByteConservationProperty(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	schedulers := []sched.Scheduler{
		sched.NewSRPT(),
		sched.NewFastBASRPT(2500),
		sched.NewMaxWeight(),
		sched.NewThresholdBacklog(1e5),
	}
	f := func(seed uint64) bool {
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              0.3 + float64(seed%50)/100,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          0.5,
			Seed:              seed + 1,
		})
		if err != nil {
			return false
		}
		sim, err := New(Config{
			Hosts:             topo.NumHosts(),
			LinkBps:           topo.HostLinkBps(),
			Scheduler:         schedulers[seed%uint64(len(schedulers))],
			Generator:         gen,
			Duration:          1,
			ValidateDecisions: true,
		})
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		if res.ArrivedFlows != res.CompletedFlows+res.LeftoverFlows {
			return false
		}
		diff := math.Abs(res.ArrivedBytes - res.DepartedBytes - res.LeftoverBytes)
		return diff <= 1e-3*math.Max(1, res.ArrivedBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSRPTMinimizesMeanFCTOnSingleLink: on a single bottleneck, SRPT's mean
// FCT is no worse than FIFO's or MaxWeight's (SRPT optimality, Section II).
func TestSRPTMinimizesMeanFCTOnSingleLink(t *testing.T) {
	arrivals := []workload.Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 4000, Class: flow.ClassOther},
		{Time: 0.1, Src: 0, Dst: 1, Size: 1000, Class: flow.ClassOther},
		{Time: 0.2, Src: 0, Dst: 1, Size: 500, Class: flow.ClassOther},
		{Time: 0.3, Src: 0, Dst: 1, Size: 2000, Class: flow.ClassOther},
	}
	run := func(s sched.Scheduler) float64 {
		res := mustRun(t, Config{
			Hosts: 2, LinkBps: link,
			Scheduler: s,
			Generator: workload.NewSliceGenerator(arrivals),
			Duration:  60, ValidateDecisions: true,
		})
		if res.CompletedFlows != len(arrivals) {
			t.Fatalf("%s completed %d/%d", s.Name(), res.CompletedFlows, len(arrivals))
		}
		return res.FCT.Stats(flow.ClassOther).MeanMs
	}
	srpt := run(sched.NewSRPT())
	fifo := run(sched.NewFIFOMatch())
	if srpt > fifo+1e-9 {
		t.Fatalf("SRPT mean FCT %g > FIFO %g", srpt, fifo)
	}
}

// TestDeterminism: identical configs give identical results.
func TestDeterminism(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	run := func() *Result {
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              0.7,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          1,
			Seed:              99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewFastBASRPT(2500), Generator: gen, Duration: 2,
		})
	}
	a, b := run(), run()
	if a.CompletedFlows != b.CompletedFlows || a.DepartedBytes != b.DepartedBytes ||
		a.Decisions != b.Decisions {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestHighLoadSRPTLeavesMoreBacklogThanBASRPT is the paper's headline
// effect at reduced scale: near saturation, fast BASRPT keeps the fabric
// backlog lower (and completes at least as many bytes) than SRPT.
func TestHighLoadBASRPTBeatsSRPTBacklog(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	topo := topology.MustNew(topology.Scaled(4, 6))
	run := func(s sched.Scheduler) *Result {
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              0.95,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          3,
			Seed:              5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: s, Generator: gen, Duration: 3.5,
		})
	}
	srpt := run(sched.NewSRPT())
	ba := run(sched.NewFastBASRPT(2500))
	if ba.LeftoverBytes >= srpt.LeftoverBytes {
		t.Fatalf("BASRPT leftover %g >= SRPT leftover %g",
			ba.LeftoverBytes, srpt.LeftoverBytes)
	}
	if ba.DepartedBytes < srpt.DepartedBytes {
		t.Fatalf("BASRPT departed %g < SRPT %g", ba.DepartedBytes, srpt.DepartedBytes)
	}
}

// TestBadArrivalReturnsError: a generator violating its contract fails
// the run with the replay context (seed, sim time, event count) instead
// of panicking mid-sweep.
func TestBadArrivalReturnsError(t *testing.T) {
	for name, bad := range map[string]workload.Arrival{
		"self loop":     {Time: 0, Src: 0, Dst: 0, Size: 100, Class: flow.ClassOther},
		"negative size": {Time: 0, Src: 0, Dst: 1, Size: -1, Class: flow.ClassOther},
		"port range":    {Time: 0, Src: 0, Dst: 7, Size: 100, Class: flow.ClassOther},
	} {
		gen := workload.NewSliceGenerator([]workload.Arrival{bad})
		sim, err := New(Config{
			Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen, Duration: 1, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.Run()
		if err == nil {
			t.Fatalf("%s: bad arrival accepted", name)
		}
		if !strings.Contains(err.Error(), "seed=42") {
			t.Fatalf("%s: error lacks run context: %v", name, err)
		}
	}
}

func BenchmarkFabricSimFastBASRPT(b *testing.B) {
	topo := topology.MustNew(topology.Scaled(2, 4))
	for i := 0; i < b.N; i++ {
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              0.8,
			QueryByteFraction: workload.DefaultQueryByteFraction,
			Duration:          0.2,
			Seed:              uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := New(Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewFastBASRPT(2500), Generator: gen, Duration: 0.25,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOutOfOrderGeneratorRejected(t *testing.T) {
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 2, Src: 0, Dst: 1, Size: 100, Class: flow.ClassOther},
		{Time: 1, Src: 1, Dst: 0, Size: 100, Class: flow.ClassOther}, // regression
	})
	sim, err := New(Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen, Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("out-of-order generator accepted")
	}
}

// TestDeepValidationPasses runs a realistic mixed workload with the full
// bookkeeping self-check enabled on every decision.
func TestDeepValidationPasses(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          topo,
		Load:              0.8,
		QueryByteFraction: workload.DefaultQueryByteFraction,
		Duration:          0.4,
		Seed:              13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Hosts:             topo.NumHosts(),
		LinkBps:           topo.HostLinkBps(),
		Scheduler:         sched.NewFastBASRPT(2500),
		Generator:         gen,
		Duration:          0.5,
		ValidateDecisions: true,
		DeepValidateEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows == 0 {
		t.Fatal("no completions under deep validation")
	}
}
