package fabricsim

import (
	"errors"
	"runtime"
	"testing"
)

// TestRunShardBatchInvariance is the sparse-barrier property: digests,
// JSONL traces, and per-cell ShardObs snapshots (wall-clock plane
// masked) must be byte-identical across every barrier batch size ×
// shard count × GOMAXPROCS combination. Batching only changes when the
// goroutines synchronize; the prefetch/extended-horizon routing
// contract guarantees every arrival still lands at the identical
// simulated instant.
func TestRunShardBatchInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	base := ShardConfig{
		Topology:  shardTopo(t, 8, 3),
		Scheduler: "fast-basrpt",
		Load:      0.7,
		Duration:  0.003,
		Seed:      13,
	}
	var wantDigest, wantTrace, wantObs string
	var wantWindows int
	first := true
	for _, batch := range []int{1, 2, 4, 8} {
		for _, shards := range []int{2, 4, 8} {
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				cfg := base
				cfg.Shards = shards
				cfg.BarrierEvery = batch
				res, tr := runShardTraced(t, cfg)
				gotObs := maskWall(t, res.ShardObs)
				if first {
					first = false
					wantDigest, wantTrace, wantObs = res.DeterministicDigest(), tr, gotObs
					wantWindows = res.Imbalance.Windows
					if res.CompletedFlows == 0 {
						t.Fatal("reference arm completed no flows; property is vacuous")
					}
					continue
				}
				if got := res.DeterministicDigest(); got != wantDigest {
					t.Fatalf("batch=%d shards=%d procs=%d digest %s, want %s",
						batch, shards, procs, got, wantDigest)
				}
				if tr != wantTrace {
					t.Fatalf("batch=%d shards=%d procs=%d trace diverged (%d vs %d bytes)",
						batch, shards, procs, len(tr), len(wantTrace))
				}
				if gotObs != wantObs {
					t.Fatalf("batch=%d shards=%d procs=%d per-cell snapshots diverged",
						batch, shards, procs)
				}
				// The window GRID is also invariant — only barriers thin out.
				if res.Imbalance.Windows != wantWindows {
					t.Fatalf("batch=%d: %d windows, want %d", batch, res.Imbalance.Windows, wantWindows)
				}
				wantBarriers := (wantWindows + batch - 1) / batch
				if res.Imbalance.Barriers != wantBarriers {
					t.Fatalf("batch=%d: %d barriers, want %d", batch, res.Imbalance.Barriers, wantBarriers)
				}
			}
		}
	}
}

// TestRunShardBatchInvarianceDegraded repeats the batch-invariance
// property on a degraded-scheduling arm: the noisy-basrpt discipline
// perturbs every size estimate through a per-cell seeded RNG — the
// closest thing the sharded engine has to a fault schedule (ShardConfig
// carries no fault injection; faults.Schedule is a centralized-engine
// feature). RNG consumption is the most batch-order-sensitive state a
// cell owns, so this pins that batching never changes how the streams
// are drawn.
func TestRunShardBatchInvarianceDegraded(t *testing.T) {
	base := ShardConfig{
		Topology:  shardTopo(t, 4, 3),
		Scheduler: "noisy-basrpt",
		Load:      0.7,
		Duration:  0.003,
		Seed:      17,
	}
	var wantDigest, wantTrace string
	first := true
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{2, 4} {
			cfg := base
			cfg.Shards = shards
			cfg.BarrierEvery = batch
			res, tr := runShardTraced(t, cfg)
			if first {
				first = false
				wantDigest, wantTrace = res.DeterministicDigest(), tr
				if res.CompletedFlows == 0 {
					t.Fatal("degraded arm completed no flows")
				}
				continue
			}
			if got := res.DeterministicDigest(); got != wantDigest {
				t.Fatalf("batch=%d shards=%d degraded digest %s, want %s", batch, shards, got, wantDigest)
			}
			if tr != wantTrace {
				t.Fatalf("batch=%d shards=%d degraded trace diverged", batch, shards)
			}
		}
	}
}

// TestRunShardWorkerPoolDeterminism pins the pool and repack knobs as
// pure wall-clock controls: every worker count and every repack
// schedule (dense, sparse, disabled) produces the identical digest, and
// the pool shape lands in the imbalance report.
func TestRunShardWorkerPoolDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(4)
	base := ShardConfig{
		Topology:  shardTopo(t, 6, 3),
		Scheduler: "fast-basrpt",
		Load:      0.7,
		Duration:  0.003,
		Seed:      19,
		Shards:    6,
		// BarrierEvery 1 maximizes barrier count so repack schedules with
		// different periods genuinely fire different numbers of times.
		BarrierEvery: 1,
	}
	var want string
	type arm struct{ workers, repack int }
	arms := []arm{{1, 1}, {2, 1}, {3, 2}, {6, 1}, {2, -1}, {0, 0}}
	for i, a := range arms {
		cfg := base
		cfg.Workers = a.workers
		cfg.RepackEvery = a.repack
		res, err := RunShard(cfg)
		if err != nil {
			t.Fatalf("workers=%d repack=%d: %v", a.workers, a.repack, err)
		}
		// The pool partitions the 6 cells into contiguous ceil-sized spans,
		// so the realized worker count is ceil(cells/ceil(cells/requested)).
		requested := a.workers
		if requested == 0 {
			requested = 4 // GOMAXPROCS
		}
		per := (6 + requested - 1) / requested
		wantWorkers := (6 + per - 1) / per
		if res.Imbalance.Workers != wantWorkers {
			t.Fatalf("workers=%d repack=%d: pool size %d, want %d",
				a.workers, a.repack, res.Imbalance.Workers, wantWorkers)
		}
		if i == 0 {
			want = res.DeterministicDigest()
			continue
		}
		if got := res.DeterministicDigest(); got != want {
			t.Fatalf("workers=%d repack=%d digest %s, want %s", a.workers, a.repack, got, want)
		}
	}
}

// TestRunShardBatchKnobValidation exercises the new knobs' validation
// and defaulting: negative batch and worker counts are typed config
// errors, zero selects the documented defaults, and BarrierEvery=1
// reproduces the dense one-barrier-per-window schedule.
func TestRunShardBatchKnobValidation(t *testing.T) {
	topo := shardTopo(t, 2, 3)
	base := ShardConfig{
		Topology: topo, Scheduler: "srpt", Load: 0.5,
		Duration: 0.002, Seed: 1, Shards: 2,
	}
	for _, tc := range []struct {
		name   string
		mutate func(*ShardConfig)
	}{
		{"negative barrier-every", func(c *ShardConfig) { c.BarrierEvery = -1 }},
		{"negative workers", func(c *ShardConfig) { c.Workers = -3 }},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := RunShard(cfg); !errors.Is(err, ErrShardConfig) {
			t.Errorf("%s: accepted or wrong error: %v", tc.name, err)
		}
	}

	dense := base
	dense.BarrierEvery = 1
	res, err := RunShard(dense)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance.Barriers != res.Imbalance.Windows || res.Imbalance.WindowsPerBarrier != 1 {
		t.Fatalf("BarrierEvery=1 not dense: %d barriers, %d windows",
			res.Imbalance.Barriers, res.Imbalance.Windows)
	}

	def, err := RunShard(base) // BarrierEvery 0 -> DefaultBarrierEvery
	if err != nil {
		t.Fatal(err)
	}
	if def.Imbalance.Windows != res.Imbalance.Windows {
		t.Fatalf("window grid changed with batching: %d vs %d", def.Imbalance.Windows, res.Imbalance.Windows)
	}
	wantBarriers := (def.Imbalance.Windows + DefaultBarrierEvery - 1) / DefaultBarrierEvery
	if def.Imbalance.Barriers != wantBarriers {
		t.Fatalf("default batch: %d barriers, want %d", def.Imbalance.Barriers, wantBarriers)
	}
	if got, want := def.DeterministicDigest(), res.DeterministicDigest(); got != want {
		t.Fatalf("default batch digest %s != dense digest %s", got, want)
	}
}
