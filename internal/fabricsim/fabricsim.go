// Package fabricsim is the flow-level data-center fabric simulator that the
// paper's evaluation runs on (Section V) — the authors' Java simulator
// rebuilt in Go. The fabric is the big-switch abstraction justified in
// Section III-A: every host is a port with a full-duplex access link, the
// core is non-blocking (validated by internal/topology), and a centralized
// scheduler picks a crossbar matching of flows.
//
// The engine is event-driven and continuous-time: between events every
// selected flow transmits at the access-link rate, and — exactly as the
// paper specifies — "the scheduling decision is updated when a flow comes
// or a transfer completes". Events are flow arrivals, flow completions,
// and metric sampling ticks.
//
// A Sim single-steps one simulation and is not safe for concurrent use;
// neither are the Scheduler, Generator, or faults.Injector it is
// configured with. Parallel experiments (the internal/runner worker pool)
// therefore build a complete Sim — scheduler included — inside each worker
// task rather than sharing components. Results, including watchdog
// truncation diagnoses, are plain values that are safe to read from any
// goroutine once Run returns.
package fabricsim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/workload"
)

// completionEps is the residual (bytes) below which a flow counts as done;
// it absorbs float drift over long runs.
const completionEps = 1e-6

// Config parameterizes a fabric run.
type Config struct {
	// Hosts is the number of fabric ports (servers).
	Hosts int
	// LinkBps is the access-link rate in bits per second (the paper uses
	// 10 Gbps).
	LinkBps float64
	// Scheduler picks the transmitting flows after every arrival and
	// completion.
	Scheduler sched.Scheduler
	// Generator supplies the flow arrivals.
	Generator workload.Generator
	// Duration is the simulated horizon in seconds.
	Duration float64
	// SampleInterval is the spacing of queue-length samples in seconds
	// (default: Duration/500).
	SampleInterval float64
	// MonitorPort is the ingress port whose backlog becomes QueueSeries —
	// the "queue length at a port" of Figures 2 and 5(b). Default 0.
	MonitorPort int
	// ThroughputBucket is the width (seconds) of the throughput series
	// buckets for Figure 5(a). Default: Duration/50.
	ThroughputBucket float64
	// ValidateDecisions re-checks the crossbar constraint on every
	// scheduling decision (tests set this; experiment sweeps leave it off).
	ValidateDecisions bool
	// DeepValidateEvery, when positive, recomputes the entire VOQ-table
	// bookkeeping from first principles every k scheduling decisions and
	// fails the run on any divergence — a self-check against incremental-
	// accounting bugs (float drift, heap corruption). Expensive; used by
	// tests and long validation runs.
	DeepValidateEvery int64
	// Seed is informational: it identifies the run in error messages and
	// diagnoses so failed sweep points are replayable. It does not drive
	// any randomness here (the generator and schedulers own their seeds).
	Seed uint64
	// DisableFlowPool turns off the recycling of completed Flow structs
	// through the simulator's free list, so every arrival allocates as it
	// did before pooling existed. Recycling is invisible to the physics —
	// pooled and non-pooled runs produce byte-identical Results at a fixed
	// seed (property-tested, and cross-checked by RunAllocBench) — so the
	// knob exists only for that A/B comparison. Pooling also switches off
	// automatically when Faults is set: the outage fallback's held matching
	// retains flow pointers across completions, which recycling would
	// invalidate.
	DisableFlowPool bool
	// Faults, when non-nil, injects the schedule's link faults (access
	// links down or degraded for an interval, forcing reschedules at the
	// boundaries) and scheduler outages (decisions served from the held
	// matching via sched.OutageFallback). Build one fresh injector per run.
	Faults *faults.Injector
	// Watchdog, when non-nil, bounds the run and truncates it gracefully —
	// partial Result plus Diagnosis — instead of running blind.
	Watchdog *Watchdog
	// Obs, when non-nil, receives the run's instrumentation: backlog
	// samples, completion and fault-boundary events, and the flight
	// recorder that truncation diagnoses quote. All events are stamped
	// with simulation time, so fixed-seed traced runs are byte-identical.
	// When nil the simulator still accumulates its counters (Decisions,
	// SchedNanos) through a private registry; the per-probe cost is the
	// same pointer-indirected add either way, and the event probes reduce
	// to one pointer comparison.
	Obs *obs.Obs

	// CheckpointEvery, when positive, snapshots the full simulator state
	// every that many simulated seconds and hands the encoded checkpoint
	// to CheckpointSink. Checkpoints are taken at event-loop tops, where
	// the state is fully consistent, so restoring one re-enters the loop
	// exactly where the original run stood. Requires a Generator that
	// implements workload.Checkpointable and a non-nil CheckpointSink.
	CheckpointEvery float64
	// CheckpointSink receives each periodic checkpoint (encoded bytes plus
	// the simulated time it covers). Returning ErrStopAfterCheckpoint
	// halts the run cleanly — partial Result with a "checkpoint-stop"
	// Diagnosis carrying the bytes — without emitting any trace event, so
	// a halted run's trace concatenated with its resumed continuation is
	// byte-identical to the uninterrupted run's. Any other error fails
	// the run.
	CheckpointSink func(data []byte, simTime float64) error
	// StreamWindow, when positive, turns on streaming results mode for
	// long horizons: every StreamWindow simulated seconds the run emits
	// window.completed / window.gbps / window.fct_avg_ms / window.backlog
	// events through Obs, FCT sample retention switches to a bounded tail
	// (see StreamKeep), and the queue series are trimmed to their tails —
	// bounded memory regardless of horizon.
	StreamWindow float64
	// StreamKeep bounds per-class FCT samples and per-series points kept
	// in streaming mode (default 4096). Ignored when StreamWindow is 0.
	StreamKeep int
	// OnProgress, when non-nil, receives the run's live position at every
	// sample tick — the centralized engine's heartbeat for ops endpoints
	// and progress displays. It belongs to the wall-clock observability
	// plane: the callback runs on the simulation goroutine and must not
	// feed anything deterministic (the run's physics, results, and traces
	// are byte-identical whether or not it is set).
	OnProgress func(RunProgress)
}

// RunProgress is the live heartbeat handed to Config.OnProgress at each
// sample tick: where the simulated clock stands and how much work the
// engine has done so far. Wall-clock plane only — values are consistent
// at the tick but the callback cadence follows SampleInterval.
type RunProgress struct {
	// SimTime is the simulated clock in seconds; Duration the configured
	// horizon.
	SimTime  float64
	Duration float64
	// Windows counts streaming windows flushed so far (0 outside
	// streaming mode).
	Windows int
	// Decisions, ArrivedFlows, and CompletedFlows are cumulative work
	// counters at the tick.
	Decisions      int64
	ArrivedFlows   int
	CompletedFlows int
	// BacklogBytes is the fabric's total backlog at the tick.
	BacklogBytes float64
}

// ErrStopAfterCheckpoint, returned from a CheckpointSink, halts the run
// cleanly right after the checkpoint is taken. See Config.CheckpointSink.
var ErrStopAfterCheckpoint = errors.New("fabricsim: stop after checkpoint")

// Watchdog bounds a run. Zero-valued limits are disabled.
type Watchdog struct {
	// MaxBacklogBytes trips when the fabric's total backlog exceeds it —
	// the divergence detector for runs past the stability boundary. It is
	// checked at sample ticks, so truncation stays deterministic.
	MaxBacklogBytes float64
	// MaxWallClock bounds real elapsed time. Checked every few thousand
	// events; truncation at this limit is inherently machine-dependent, so
	// deterministic experiments should rely on MaxBacklogBytes.
	MaxWallClock time.Duration
	// DiagnosisEvents is how many flight-recorder events a truncation
	// Diagnosis captures (default 16, capped by the recorder's ring;
	// negative disables the capture). Only meaningful when the run has a
	// Config.Obs.
	DiagnosisEvents int
	// VerboseDiagnosis makes Diagnosis.String() print the captured
	// flight-recorder events after the one-line summary, so a truncated
	// run explains the event sequence that led to the stop.
	VerboseDiagnosis bool
}

// Diagnosis explains a watchdog truncation. A nil Result.Diagnosis means
// the run reached its horizon.
type Diagnosis struct {
	// Reason is "backlog-bound", "wallclock-budget", or "checkpoint-stop"
	// (a clean halt requested by the checkpoint sink, not a failure).
	Reason string
	// SimTime is the simulated time reached (seconds).
	SimTime float64
	// BacklogBytes is the fabric backlog at the stop.
	BacklogBytes float64
	// Events is the number of scheduling decisions taken.
	Events int64
	// Seed echoes Config.Seed for replay.
	Seed uint64
	// TableEpoch is the VOQ table's mutation epoch at the stop (see
	// flow.Table change tracking) — together with Seed it pins the exact
	// table state for replaying incremental-index divergences.
	TableEpoch uint64
	// LastEvents is the tail of the flight recorder at the stop — the
	// event sequence that led to the truncation, oldest first. Empty when
	// the run had no Config.Obs or Watchdog.DiagnosisEvents is negative.
	LastEvents []obs.Event
	// Verbose mirrors Watchdog.VerboseDiagnosis: String() appends
	// LastEvents after the summary line.
	Verbose bool
	// Checkpoint is the encoded simulator state at the stop, captured
	// before the truncation event was emitted, so the truncated run is
	// resumable (see Resume) instead of merely explained. Populated for
	// "checkpoint-stop" always, and for watchdog truncations when the
	// generator supports checkpointing. Excluded from JSON: diagnosis
	// serializations stay small and deterministic.
	Checkpoint []byte `json:"-"`
	// CheckpointErr records why a truncation checkpoint could not be
	// captured (empty on success or when capture was not attempted).
	CheckpointErr string
}

func (d *Diagnosis) String() string {
	s := fmt.Sprintf("truncated (%s) at t=%.4gs: backlog %.4g bytes after %d decisions (seed %d, epoch %d)",
		d.Reason, d.SimTime, d.BacklogBytes, d.Events, d.Seed, d.TableEpoch)
	if !d.Verbose || len(d.LastEvents) == 0 {
		return s
	}
	var b strings.Builder
	b.WriteString(s)
	fmt.Fprintf(&b, "\nlast %d events:", len(d.LastEvents))
	for _, ev := range d.LastEvents {
		fmt.Fprintf(&b, "\n  #%d t=%.6gs %s port=%d value=%.6g", ev.Seq, ev.T, ev.Kind, ev.Port, ev.Value)
		if ev.Detail != "" {
			fmt.Fprintf(&b, " (%s)", ev.Detail)
		}
	}
	return b.String()
}

// wallClockCheckEvery is how many event-loop iterations pass between
// wall-clock watchdog checks.
const wallClockCheckEvery = 4096

// defaultDiagnosisEvents is how many flight-recorder events a truncation
// Diagnosis captures when Watchdog.DiagnosisEvents is zero.
const defaultDiagnosisEvents = 16

// defaultStreamKeep is the streaming-mode retention bound when
// Config.StreamKeep is zero: per-class FCT samples and per-series points
// kept in memory regardless of horizon length.
const defaultStreamKeep = 4096

// Result carries everything the paper's figures and tables read off a run.
type Result struct {
	// FCT holds per-class completion times in seconds.
	FCT *metrics.FCT
	// Throughput accounts bytes leaving the fabric over time.
	Throughput *metrics.Throughput
	// QueueSeries samples the monitored ingress port's backlog (bytes).
	QueueSeries metrics.Series
	// TotalBacklogSeries samples the whole fabric's backlog (bytes).
	TotalBacklogSeries metrics.Series
	// MaxPortSeries samples the worst ingress-port backlog (bytes).
	MaxPortSeries metrics.Series

	ArrivedFlows   int
	CompletedFlows int
	ArrivedBytes   float64
	DepartedBytes  float64
	LeftoverBytes  float64
	LeftoverFlows  int
	Decisions      int64
	// SchedNanos is the cumulative wall-clock time spent inside
	// Scheduler.Schedule, in nanoseconds. It is measured, not simulated —
	// machine-dependent by nature — so it feeds the scheduling benchmarks
	// (BENCH_sched.json) and never enters the deterministic sample
	// aggregates the multi-seed runner compares across worker counts.
	SchedNanos int64
	// Duration is the simulated time covered: the configured horizon, or
	// the truncation point when the watchdog stopped the run early.
	Duration      float64
	SchedulerName string

	// Faults counts the injected fault events the run saw (zero-valued
	// for fault-free runs).
	Faults metrics.FaultCounters
	// Diagnosis is non-nil when the watchdog truncated the run; the
	// metrics above still satisfy arrived = departed + backlog.
	Diagnosis *Diagnosis

	// ShardObs holds one deterministic-plane registry snapshot per PDES
	// cell, in rack order, for decomposed (Shards >= 2) runs — per-cell
	// decisions, windows advanced, inter-shard messages sent/delivered,
	// eventq high-water — plus each cell's wall-clock busy/barrier-wait
	// counters ("wall." names, excluded from digests via obs.IsWallClock).
	// The deterministic entries are byte-identical across shard counts
	// and GOMAXPROCS (property-tested, and folded into
	// DeterministicDigest). Nil for centralized runs.
	ShardObs []obs.Snapshot
	// Imbalance is the decomposed run's post-run wall-clock attribution
	// report: which cell the barriers waited on and how skewed the load
	// was. Wall-clock plane — never digested, never byte-compared. Nil
	// for centralized runs.
	Imbalance *ShardImbalance

	// Obs is the end-of-run snapshot of the instrumentation registry —
	// every counter, gauge, and histogram the run accumulated, including
	// the slow-path stats finish() folds in (incremental-index
	// repair/rebuild counts, held decisions, arbitration rounds, event-
	// calendar high-water). Populated whether or not Config.Obs was set;
	// wall-clock-derived entries (fabric.sched_nanos, fabric.decision_ns)
	// are machine-dependent and never enter deterministic comparisons.
	Obs obs.Snapshot
}

// Truncated reports whether the watchdog stopped the run early.
func (r *Result) Truncated() bool { return r.Diagnosis != nil }

// AverageGbps returns the run's mean departure rate in Gbps — the paper's
// global throughput metric.
func (r *Result) AverageGbps() float64 {
	return r.Throughput.AverageGbps(r.Duration)
}

// DecisionsPerSec returns the measured scheduling throughput: decisions
// divided by the wall-clock time spent inside Scheduler.Schedule. Zero
// when the run took no decisions (or none were timed).
func (r *Result) DecisionsPerSec() float64 {
	if r.SchedNanos <= 0 {
		return 0
	}
	return float64(r.Decisions) / (float64(r.SchedNanos) * 1e-9)
}

// Sim is a single fabric simulation. Build with New, execute with Run.
type Sim struct {
	cfg    Config
	table  *flow.Table
	now    float64
	nextID flow.ID

	decision []*flow.Flow
	byteRate float64 // bytes/s per selected flow at full link rate

	// nextCompletion caches the absolute time the earliest transmitting
	// flow finishes (+Inf: none will on its own). advanceTo refreshes it
	// during its drain pass and reschedule after each new decision, so the
	// event loop reads it instead of rescanning the decision every event.
	nextCompletion float64

	scheduler sched.Scheduler       // cfg.Scheduler, possibly wrapped
	fallback  *sched.OutageFallback // non-nil iff faults are injected
	// clearsDirty: the configured scheduler does not consume the table's
	// dirty-VOQ feed, so the sim clears it after every decision to keep
	// the dirty set from growing without bound.
	clearsDirty bool

	pendingArrival  workload.Arrival
	hasPending      bool
	nextSample      float64
	res             *Result
	drainAccumStart float64

	// Checkpoint/streaming machinery. pendingTruncate defers a watchdog
	// stop to the next event-loop top — the only place the state is
	// consistent enough to checkpoint — so every truncation Diagnosis can
	// carry a resumable snapshot. fctSum and the win* trackers feed the
	// streaming windows' delta computations; all of them are serialized
	// verbatim so a resumed run's windows match the uninterrupted run's.
	nextCheckpoint  float64
	nextWindow      float64
	pendingTruncate string
	resumed         bool
	fctSum          float64
	winDeparted0    float64
	winCompleted0   int
	winFCTSum0      float64

	// Steady-state allocation avoidance: completed flows recycle through
	// pool into the next arrivals (poolOn — see Config.DisableFlowPool),
	// decisions are re-checked by a scratch-owning validator, and
	// deepValidate keeps its per-port accumulators across calls.
	pool      flow.FreeList
	poolOn    bool
	validator sched.Validator
	dvIngress []float64
	dvEgress  []float64

	// Instrumentation. reg is cfg.Obs's registry when tracing is on and a
	// private registry otherwise, so the decision counters below are
	// always live — Result.Decisions/SchedNanos are copied out of them at
	// finish, keeping reported values identical with and without obs.
	reg         *obs.Registry
	cDecisions  *obs.Counter   // fabric.decisions
	cSchedNanos *obs.Counter   // fabric.sched_nanos (wall clock)
	hDecisionNs *obs.Histogram // fabric.decision_ns (wall clock)
}

// New validates the configuration and prepares a run.
func New(cfg Config) (*Sim, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("fabricsim: invalid host count %d", cfg.Hosts)
	}
	if cfg.LinkBps <= 0 {
		return nil, fmt.Errorf("fabricsim: invalid link rate %g", cfg.LinkBps)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("fabricsim: nil scheduler")
	}
	if cfg.Generator == nil {
		return nil, fmt.Errorf("fabricsim: nil generator")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("fabricsim: invalid duration %g", cfg.Duration)
	}
	if cfg.MonitorPort < 0 || cfg.MonitorPort >= cfg.Hosts {
		return nil, fmt.Errorf("fabricsim: monitor port %d out of range", cfg.MonitorPort)
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = cfg.Duration / 500
	}
	if cfg.ThroughputBucket <= 0 {
		cfg.ThroughputBucket = cfg.Duration / 50
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Schedule().Validate(); err != nil {
			return nil, err
		}
		for _, lf := range cfg.Faults.Schedule().LinkFaults {
			if lf.Port >= cfg.Hosts {
				return nil, fmt.Errorf("fabricsim: link fault on port %d, fabric has %d hosts", lf.Port, cfg.Hosts)
			}
		}
	}
	if wd := cfg.Watchdog; wd != nil && (wd.MaxBacklogBytes < 0 || wd.MaxWallClock < 0) {
		return nil, fmt.Errorf("fabricsim: negative watchdog bound %+v", *wd)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("fabricsim: negative checkpoint interval %g", cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink == nil {
		return nil, fmt.Errorf("fabricsim: checkpoint interval set without a sink")
	}
	if cfg.CheckpointSink != nil {
		if cfg.CheckpointEvery <= 0 {
			return nil, fmt.Errorf("fabricsim: checkpoint sink set without an interval")
		}
		if _, ok := cfg.Generator.(workload.Checkpointable); !ok {
			return nil, fmt.Errorf("fabricsim: checkpointing requires a workload.Checkpointable generator, have %T", cfg.Generator)
		}
	}
	if cfg.StreamWindow < 0 || cfg.StreamKeep < 0 {
		return nil, fmt.Errorf("fabricsim: negative streaming parameter (window %g, keep %d)", cfg.StreamWindow, cfg.StreamKeep)
	}
	if cfg.StreamWindow > 0 && cfg.StreamKeep == 0 {
		cfg.StreamKeep = defaultStreamKeep
	}
	newFCT := metrics.NewFCT
	if cfg.StreamWindow > 0 {
		newFCT = func() *metrics.FCT { return metrics.NewBoundedFCT(cfg.StreamKeep) }
	}
	s := &Sim{
		cfg:            cfg,
		table:          flow.NewTable(cfg.Hosts),
		nextID:         1,
		byteRate:       cfg.LinkBps / 8,
		nextCompletion: math.Inf(1),
		scheduler:      cfg.Scheduler,
		nextCheckpoint: cfg.CheckpointEvery,
		nextWindow:     cfg.StreamWindow,
		res: &Result{
			FCT:           newFCT(),
			Throughput:    metrics.NewThroughput(cfg.ThroughputBucket),
			Duration:      cfg.Duration,
			SchedulerName: cfg.Scheduler.Name(),
		},
	}
	if cfg.Faults != nil {
		// Degraded mode for scheduler outages: hold the last matching. The
		// result carries the wrapped name ("...+hold") so fault runs are
		// recognizable in reports.
		s.fallback = sched.NewOutageFallback(cfg.Scheduler)
		s.scheduler = s.fallback
		s.res.SchedulerName = s.fallback.Name()
	}
	// Dirty-feed ownership (see the flow package's change-tracking
	// contract): an index-maintaining scheduler consumes the feed itself;
	// for everything else the sim is the consumer of record.
	s.clearsDirty = !sched.IsDirtyConsumer(s.scheduler)
	s.poolOn = !cfg.DisableFlowPool && cfg.Faults == nil
	s.reg = cfg.Obs.Registry()
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.cDecisions = s.reg.Counter("fabric.decisions")
	s.cSchedNanos = s.reg.Counter("fabric.sched_nanos")
	s.hDecisionNs = s.reg.Histogram("fabric.decision_ns")
	if cfg.Faults != nil {
		cfg.Faults.SetRegistry(s.reg)
	}
	return s, nil
}

// errorf wraps a run failure with the context a sweep needs to replay it:
// the seed, the simulated time reached, and the decision count.
func (s *Sim) errorf(format string, args ...any) error {
	return fmt.Errorf("fabricsim [seed=%d t=%gs events=%d epoch=%d]: %w",
		s.cfg.Seed, s.now, s.cDecisions.Value(), s.table.Epoch(), fmt.Errorf(format, args...))
}

// Run executes the simulation to the horizon and returns the metrics.
// Invalid-configuration and internal-invariant failures return an error
// carrying the run context (seed, simulated time, event count); a tripped
// watchdog is not an error — it returns the partial Result with a
// populated Diagnosis.
func (s *Sim) Run() (*Result, error) {
	if !s.resumed {
		s.fetchArrival()
	}
	wallStart := time.Now()
	var iter int64
	for {
		// Loop top: the one place the simulator state is fully consistent
		// (completions collected, arrivals admitted, decision fresh), which
		// is why deferred truncations land here and periodic checkpoints
		// are taken here — restoring one re-enters this exact point.
		if s.pendingTruncate != "" {
			return s.truncate(s.pendingTruncate), nil
		}
		if s.cfg.CheckpointEvery > 0 && s.now >= s.nextCheckpoint {
			data, err := s.Checkpoint()
			if err != nil {
				return nil, s.errorf("checkpoint: %v", err)
			}
			for s.nextCheckpoint <= s.now {
				s.nextCheckpoint += s.cfg.CheckpointEvery
			}
			if err := s.cfg.CheckpointSink(data, s.now); err != nil {
				if errors.Is(err, ErrStopAfterCheckpoint) {
					return s.stopAtCheckpoint(data), nil
				}
				return nil, s.errorf("checkpoint sink: %v", err)
			}
		}
		// Next event time: earliest of arrival, completion, sample, window
		// boundary, fault boundary, end.
		t := s.cfg.Duration
		if s.hasPending && s.pendingArrival.Time < t {
			t = s.pendingArrival.Time
		}
		if s.nextSample < t {
			t = s.nextSample
		}
		if s.cfg.StreamWindow > 0 && s.nextWindow < t {
			t = s.nextWindow
		}
		if ct, ok := s.nextCompletionTime(); ok && ct < t {
			t = ct
		}
		faultBoundary := false
		if s.cfg.Faults != nil {
			if fb, ok := s.cfg.Faults.NextBoundaryAfter(s.now); ok && fb <= t {
				t = fb
				faultBoundary = true
			}
		}

		s.advanceTo(t)

		done := t >= s.cfg.Duration
		reschedule := false

		if faultBoundary {
			// The fault state changed (a link went down, recovered, or the
			// scheduler's reachability flipped): account the boundary and
			// force a fresh decision under the new conditions.
			ls, le, os, oe := s.cfg.Faults.TransitionsAt(s.now)
			s.res.Faults.LinkFaultStarts += int64(ls)
			s.res.Faults.LinkFaultEnds += int64(le)
			s.res.Faults.OutageStarts += int64(os)
			s.res.Faults.OutageEnds += int64(oe)
			if ls > 0 {
				s.cfg.Obs.Emit(s.now, "fault.link.start", -1, float64(ls), "")
			}
			if le > 0 {
				s.cfg.Obs.Emit(s.now, "fault.link.end", -1, float64(le), "")
			}
			if os > 0 {
				s.cfg.Obs.Emit(s.now, "fault.outage.start", -1, float64(os), "")
			}
			if oe > 0 {
				s.cfg.Obs.Emit(s.now, "fault.outage.end", -1, float64(oe), "")
			}
			reschedule = true
		}

		// Completions strictly before arrivals at the same instant: the
		// departing flow frees its ports for the newcomer's decision.
		if s.collectCompletions() {
			reschedule = true
		}
		for s.hasPending && s.pendingArrival.Time <= s.now+1e-12 && !done {
			if s.pendingArrival.Time < s.now-1e-9 {
				// The event loop always advances to the earliest pending
				// arrival, so an arrival in the past means the generator
				// violated its time-ordering contract.
				return nil, s.errorf("generator produced out-of-order arrival at t=%g",
					s.pendingArrival.Time)
			}
			if err := s.admit(s.pendingArrival); err != nil {
				return nil, err
			}
			s.fetchArrival()
			reschedule = true
		}
		if s.now >= s.nextSample {
			s.sample()
			s.nextSample += s.cfg.SampleInterval
			if wd := s.cfg.Watchdog; wd != nil && wd.MaxBacklogBytes > 0 {
				if backlog := s.table.TotalBacklog(); backlog > wd.MaxBacklogBytes {
					// Deferred to the next loop top (after this iteration's
					// reschedule) so the truncation Diagnosis can carry a
					// consistent, resumable checkpoint.
					s.pendingTruncate = "backlog-bound"
				}
			}
		}
		if s.cfg.StreamWindow > 0 {
			for s.now >= s.nextWindow {
				s.flushWindow()
				s.nextWindow += s.cfg.StreamWindow
			}
		}
		if done {
			if s.pendingTruncate != "" {
				return s.truncate(s.pendingTruncate), nil
			}
			break
		}
		if wd := s.cfg.Watchdog; wd != nil && wd.MaxWallClock > 0 && s.pendingTruncate == "" {
			if iter++; iter%wallClockCheckEvery == 0 && time.Since(wallStart) > wd.MaxWallClock {
				s.pendingTruncate = "wallclock-budget"
			}
		}
		if reschedule {
			if err := s.reschedule(); err != nil {
				return nil, err
			}
		}
	}
	return s.finish(), nil
}

// finish seals the result at the current simulated time: copy the
// counter-backed totals into the Result (identical to the pre-registry
// reporting), fold the slow-path stats into the registry, and snapshot it.
func (s *Sim) finish() *Result {
	s.res.LeftoverBytes = s.table.TotalBacklog()
	s.res.LeftoverFlows = s.table.NumFlows()
	s.res.Decisions = s.cDecisions.Value()
	s.res.SchedNanos = s.cSchedNanos.Value()
	if s.fallback != nil {
		s.res.Faults.DecisionsHeld = s.fallback.HeldDecisions()
		s.reg.Counter("sched.decisions_held").Add(s.fallback.HeldDecisions())
		s.reg.Counter("sched.outage_activations").Add(s.fallback.Activations())
	}
	// Once-per-run stats pulled from the subsystems that kept them.
	s.reg.Counter("fabric.arrived_flows").Add(int64(s.res.ArrivedFlows))
	s.reg.Counter("fabric.completed_flows").Add(int64(s.res.CompletedFlows))
	if ist := sched.IndexStatsOf(s.scheduler); ist.Repairs+ist.Rebuilds > 0 {
		s.reg.Counter("sched.index_repairs").Add(ist.Repairs)
		s.reg.Counter("sched.index_rebuilds").Add(ist.Rebuilds)
	}
	if d, ok := s.cfg.Scheduler.(interface{ TotalRounds() int64 }); ok {
		s.reg.Counter("sched.arbitration_rounds").Add(d.TotalRounds())
	}
	if g, ok := s.cfg.Generator.(interface{ QueueHighWater() int }); ok {
		s.reg.Gauge("eventq.high_water").Set(float64(g.QueueHighWater()))
	}
	if s.poolOn {
		s.reg.Counter("flow.pool_reuses").Add(s.pool.Reuses())
		s.reg.Gauge("flow.pool_size").Set(float64(s.pool.Len()))
	}
	s.res.Obs = s.reg.Snapshot()
	return s.res
}

// truncate seals a watchdog-stopped run: the partial Result keeps every
// metric accumulated so far (byte conservation included) plus a Diagnosis
// saying why and where the run stopped.
func (s *Sim) truncate(reason string) *Result {
	// Capture the resumable snapshot BEFORE emitting the truncation event:
	// the uninterrupted run has no such event at this point, so a resumed
	// continuation must not carry it in the restored flight recorder.
	var ckpt []byte
	var ckptErr string
	if _, ok := s.cfg.Generator.(workload.Checkpointable); ok {
		if data, err := s.Checkpoint(); err != nil {
			ckptErr = err.Error()
		} else {
			ckpt = data
		}
	}
	// Record the stop itself before capturing the recorder tail, so the
	// captured sequence ends with the truncation event.
	s.cfg.Obs.Emit(s.now, "watchdog.truncate", -1, s.table.TotalBacklog(), reason)
	res := s.finish()
	res.Duration = s.now
	res.Diagnosis = &Diagnosis{
		Reason:        reason,
		SimTime:       s.now,
		BacklogBytes:  res.LeftoverBytes,
		Events:        res.Decisions,
		Seed:          s.cfg.Seed,
		TableEpoch:    s.table.Epoch(),
		Checkpoint:    ckpt,
		CheckpointErr: ckptErr,
	}
	if wd := s.cfg.Watchdog; wd != nil && wd.DiagnosisEvents >= 0 {
		k := wd.DiagnosisEvents
		if k == 0 {
			k = defaultDiagnosisEvents
		}
		res.Diagnosis.LastEvents = s.cfg.Obs.LastEvents(k)
		res.Diagnosis.Verbose = wd.VerboseDiagnosis
	}
	return res
}

// fetchArrival pulls the next arrival from the generator.
func (s *Sim) fetchArrival() {
	a, ok := s.cfg.Generator.Next()
	s.pendingArrival, s.hasPending = a, ok
}

// admit adds an arrived flow to the fabric. A malformed arrival means the
// generator violated its contract; the run fails with context rather than
// panicking mid-sweep.
func (s *Sim) admit(a workload.Arrival) error {
	if a.Src < 0 || a.Src >= s.cfg.Hosts || a.Dst < 0 || a.Dst >= s.cfg.Hosts || a.Src == a.Dst || a.Size <= 0 {
		return s.errorf("generator produced invalid arrival %+v", a)
	}
	var f *flow.Flow
	if s.poolOn {
		f = s.pool.Get(s.nextID, a.Src, a.Dst, a.Class, a.Size, a.Time)
	} else {
		f = flow.NewFlow(s.nextID, a.Src, a.Dst, a.Class, a.Size, a.Time)
	}
	s.nextID++
	s.table.Add(f)
	s.res.ArrivedFlows++
	s.res.ArrivedBytes += a.Size
	return nil
}

// flowRate returns f's current transmission rate in bytes/s: the access-
// link rate scaled by the worse of its two ports' surviving link
// fractions. Rates only change at fault boundaries, which are events, so
// a rate sampled at s.now is valid until the next event.
func (s *Sim) flowRate(f *flow.Flow) float64 {
	if s.cfg.Faults == nil {
		return s.byteRate
	}
	frac := s.cfg.Faults.LinkRateFraction(f.Src, s.now)
	if d := s.cfg.Faults.LinkRateFraction(f.Dst, s.now); d < frac {
		frac = d
	}
	return s.byteRate * frac
}

// nextCompletionTime returns when the earliest currently transmitting flow
// finishes, assuming the decision and fault state stay fixed. Flows on a
// fully failed link never complete on their own; a fault boundary or a
// new decision unblocks them. The value is the cache advanceTo and
// reschedule maintain — the decision is never rescanned here.
func (s *Sim) nextCompletionTime() (float64, bool) {
	if math.IsInf(s.nextCompletion, 1) {
		return 0, false
	}
	return s.nextCompletion, true
}

// advanceTo drains the transmitting flows up to time t, each at its
// current (possibly degraded) link rate, and refreshes the next-completion
// cache from the post-drain residuals in the same pass. Rates only change
// at fault boundaries, and every boundary forces a reschedule (which
// recomputes the cache), so the rates read here stay valid until the cache
// is next consulted.
func (s *Sim) advanceTo(t float64) {
	if t < s.now {
		t = s.now
	}
	dt := t - s.now
	if dt > 0 && len(s.decision) > 0 {
		var drained float64
		minTime := math.Inf(1)
		for _, f := range s.decision {
			if rate := s.flowRate(f); rate > 0 {
				drained += s.table.Drain(f, dt*rate)
				if left := f.Remaining / rate; left < minTime {
					minTime = left
				}
			}
		}
		if drained > 0 {
			s.res.Throughput.AddRange(s.now, t, drained)
			s.res.DepartedBytes += drained
		}
		s.nextCompletion = t + minTime
	}
	s.now = t
}

// completionThreshold returns the residual below which a flow counts as
// finished. The absolute floor handles normal completions; the adaptive
// term covers sub-byte residues whose drain time rounds to zero at large
// timestamps (float64 has ~1e-16 relative resolution, so any remainder
// that would take less than ~100 ULPs of `now` to drain is already
// indistinguishable from done and would otherwise stall the event loop).
func (s *Sim) completionThreshold() float64 {
	adaptive := s.byteRate * s.now * 1e-14
	if adaptive > completionEps {
		return adaptive
	}
	return completionEps
}

// collectCompletions removes flows that finished by now and records FCTs.
func (s *Sim) collectCompletions() bool {
	if len(s.decision) == 0 {
		return false
	}
	threshold := s.completionThreshold()
	kept := s.decision[:0]
	completed := false
	for _, f := range s.decision {
		if f.Remaining <= threshold {
			// Flush the sub-threshold residue so byte conservation
			// (arrived = departed + backlog) holds exactly.
			if residue := s.table.Drain(f, f.Remaining); residue > 0 {
				s.res.Throughput.AddBytes(s.now, residue)
				s.res.DepartedBytes += residue
			}
			s.table.Remove(f)
			s.res.CompletedFlows++
			s.res.FCT.Add(f.Class, s.now-f.Arrival)
			s.fctSum += s.now - f.Arrival
			s.cfg.Obs.Emit(s.now, "flow.done", f.Src, s.now-f.Arrival, f.Class.String())
			if s.poolOn {
				// The flow is detached and dropped from the compacted
				// decision; the scheduler's candidate index may still hold
				// its pointer but never dereferences entries of a dirtied
				// VOQ (Remove just dirtied this one), so recycling is safe.
				s.pool.Put(f)
			}
			completed = true
		} else {
			kept = append(kept, f)
		}
	}
	s.decision = kept
	return completed
}

// reschedule recomputes the scheduling decision. During an injected
// scheduler outage the fallback wrapper serves the held matching instead
// of consulting the unreachable scheduler (the dirty-VOQ feed then simply
// accumulates until the scheduler's index is reachable again).
func (s *Sim) reschedule() error {
	if s.fallback != nil {
		s.fallback.SetOutage(s.cfg.Faults.SchedulerDown(s.now))
	}
	span := obs.StartSpan(s.hDecisionNs)
	s.decision = s.scheduler.Schedule(s.table)
	s.cSchedNanos.Add(span.End())
	s.cDecisions.Inc()
	if s.clearsDirty {
		s.table.ClearDirty()
	}
	// Fresh decision, fresh completion horizon, at the rates in force now.
	minTime := math.Inf(1)
	for _, f := range s.decision {
		if rate := s.flowRate(f); rate > 0 {
			if left := f.Remaining / rate; left < minTime {
				minTime = left
			}
		}
	}
	s.nextCompletion = s.now + minTime
	if s.cfg.ValidateDecisions {
		if err := s.validator.ValidateDecision(s.cfg.Hosts, s.decision); err != nil {
			return s.errorf("%w", err)
		}
	}
	if k := s.cfg.DeepValidateEvery; k > 0 && s.cDecisions.Value()%k == 0 {
		if err := s.deepValidate(); err != nil {
			return s.errorf("%w", err)
		}
	}
	return nil
}

// deepValidate recomputes every backlog aggregate from the live flows,
// compares against the table's incremental accounting, and cross-checks
// the scheduler's incremental candidate index (when it maintains one)
// against a from-scratch view of the table.
func (s *Sim) deepValidate() error {
	n := s.cfg.Hosts
	if cap(s.dvIngress) < n {
		s.dvIngress = make([]float64, n)
		s.dvEgress = make([]float64, n)
	}
	ingress := s.dvIngress[:n]
	egress := s.dvEgress[:n]
	for i := range ingress {
		ingress[i] = 0
		egress[i] = 0
	}
	var total float64
	flows := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q := s.table.VOQ(i, j)
			var qSum float64
			var err error
			top := q.Top()
			q.ForEachFlow(func(f *flow.Flow) {
				if err != nil {
					return
				}
				switch {
				case !f.Attached():
					err = fmt.Errorf("deep validate: VOQ (%d,%d) holds detached flow %d (remaining %g)",
						i, j, f.ID, f.Remaining)
				case f.Src != i || f.Dst != j:
					err = fmt.Errorf("deep validate: VOQ (%d,%d) holds misfiled flow %d addressed %d->%d",
						i, j, f.ID, f.Src, f.Dst)
				case f.Remaining < 0:
					err = fmt.Errorf("deep validate: VOQ (%d,%d) flow %d has negative remaining %g",
						i, j, f.ID, f.Remaining)
				case f.Remaining < top.Remaining:
					err = fmt.Errorf("deep validate: VOQ (%d,%d) top is flow %d (remaining %g) but flow %d has %g",
						i, j, top.ID, top.Remaining, f.ID, f.Remaining)
				default:
					qSum += f.Remaining
					flows++
				}
			})
			if err != nil {
				return err
			}
			if !closeEnough(qSum, q.Backlog()) {
				return fmt.Errorf("deep validate: VOQ (%d,%d) backlog %g, recomputed %g", i, j, q.Backlog(), qSum)
			}
			ingress[i] += qSum
			egress[j] += qSum
			total += qSum
		}
	}
	for p := 0; p < n; p++ {
		if !closeEnough(ingress[p], s.table.IngressBacklog(p)) {
			return fmt.Errorf("deep validate: ingress %d backlog %g, recomputed %g", p, s.table.IngressBacklog(p), ingress[p])
		}
		if !closeEnough(egress[p], s.table.EgressBacklog(p)) {
			return fmt.Errorf("deep validate: egress %d backlog %g, recomputed %g", p, s.table.EgressBacklog(p), egress[p])
		}
	}
	if !closeEnough(total, s.table.TotalBacklog()) {
		return fmt.Errorf("deep validate: total backlog %g, recomputed %g", s.table.TotalBacklog(), total)
	}
	if flows != s.table.NumFlows() {
		return fmt.Errorf("deep validate: %d flows counted, table reports %d", flows, s.table.NumFlows())
	}
	if !closeEnough(s.res.ArrivedBytes, s.res.DepartedBytes+total) {
		return fmt.Errorf("deep validate: conservation broken (arrived %g, departed %g, backlog %g)",
			s.res.ArrivedBytes, s.res.DepartedBytes, total)
	}
	if err := sched.CheckIndex(s.scheduler, s.table); err != nil {
		return fmt.Errorf("deep validate: %w", err)
	}
	return nil
}

// closeEnough compares accumulated float quantities with a relative
// tolerance sized for long runs of incremental adds/subtracts.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-6*scale
}

// sample records the queue-length series and the matching trace events.
// When the run is instrumented it also snapshots the Go runtime's GC
// state into gauges, so a trace can correlate backlog spikes with
// collection activity. The GC numbers are machine-dependent, which is why
// they live only in registry gauges (never in trace events, whose byte-
// determinism the trace contract guarantees) and only when the caller
// opted into observability.
func (s *Sim) sample() {
	queue := s.table.IngressBacklog(s.cfg.MonitorPort)
	total := s.table.TotalBacklog()
	maxPort, maxB := s.table.MaxIngressBacklog()
	s.res.QueueSeries.Add(s.now, queue)
	s.res.TotalBacklogSeries.Add(s.now, total)
	s.res.MaxPortSeries.Add(s.now, maxB)
	s.cfg.Obs.Emit(s.now, "sample.queue", s.cfg.MonitorPort, queue, "")
	s.cfg.Obs.Emit(s.now, "sample.total", -1, total, "")
	s.cfg.Obs.Emit(s.now, "sample.maxport", maxPort, maxB, "")
	if s.cfg.Obs != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.reg.Gauge("runtime.gc_num").Set(float64(ms.NumGC))
		s.reg.Gauge("runtime.gc_pause_total_ns").Set(float64(ms.PauseTotalNs))
		// The gauge keeps its Max, so the snapshot reports the heap-live
		// high-water mark across the run's sample ticks.
		s.reg.Gauge("runtime.heap_live_bytes").Set(float64(ms.HeapAlloc))
	}
	if s.cfg.OnProgress != nil {
		windows := 0
		if s.cfg.StreamWindow > 0 {
			// nextWindow is the next unflushed boundary, so the flushed
			// count is one boundary behind it.
			windows = int(math.Round(s.nextWindow/s.cfg.StreamWindow)) - 1
		}
		s.cfg.OnProgress(RunProgress{
			SimTime:        s.now,
			Duration:       s.cfg.Duration,
			Windows:        windows,
			Decisions:      s.cDecisions.Value(),
			ArrivedFlows:   s.res.ArrivedFlows,
			CompletedFlows: s.res.CompletedFlows,
			BacklogBytes:   total,
		})
	}
}
