package fabricsim

import (
	"strings"
	"testing"

	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/workload"
)

// incrementalScheduler is the toggle surface the index-routed disciplines
// export; the sim-level equivalence tests flip it to build the
// from-scratch baseline arm.
type incrementalScheduler interface {
	sched.Scheduler
	SetIncremental(on bool)
}

// sameResults compares every deterministic field of two runs. SchedNanos
// is deliberately excluded: it is measured wall-clock time.
func sameResults(t *testing.T, a, b *Result) {
	t.Helper()
	if a.ArrivedFlows != b.ArrivedFlows || a.CompletedFlows != b.CompletedFlows {
		t.Fatalf("flow counts diverged: %d/%d vs %d/%d",
			a.ArrivedFlows, a.CompletedFlows, b.ArrivedFlows, b.CompletedFlows)
	}
	if a.ArrivedBytes != b.ArrivedBytes || a.DepartedBytes != b.DepartedBytes ||
		a.LeftoverBytes != b.LeftoverBytes {
		t.Fatalf("byte accounting diverged: %g/%g/%g vs %g/%g/%g",
			a.ArrivedBytes, a.DepartedBytes, a.LeftoverBytes,
			b.ArrivedBytes, b.DepartedBytes, b.LeftoverBytes)
	}
	if a.Decisions != b.Decisions {
		t.Fatalf("decision counts diverged: %d vs %d", a.Decisions, b.Decisions)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault counters diverged: %+v vs %+v", a.Faults, b.Faults)
	}
	for _, class := range []flow.Class{flow.ClassQuery, flow.ClassOther} {
		if a.FCT.Stats(class) != b.FCT.Stats(class) {
			t.Fatalf("FCT stats diverged for class %v: %+v vs %+v",
				class, a.FCT.Stats(class), b.FCT.Stats(class))
		}
	}
	if a.TotalBacklogSeries.Len() != b.TotalBacklogSeries.Len() {
		t.Fatal("backlog series lengths diverged")
	}
	for i := range a.TotalBacklogSeries.Values {
		if a.TotalBacklogSeries.Values[i] != b.TotalBacklogSeries.Values[i] {
			t.Fatalf("backlog sample %d diverged", i)
		}
	}
	if a.QueueSeries.Len() != b.QueueSeries.Len() {
		t.Fatal("queue series lengths diverged")
	}
	for i := range a.QueueSeries.Values {
		if a.QueueSeries.Values[i] != b.QueueSeries.Values[i] {
			t.Fatalf("queue sample %d diverged", i)
		}
	}
}

// runPair executes the same simulation twice — incremental index on and
// off — under continuous deep validation, and demands identical results.
func runPair(t *testing.T, mk func() incrementalScheduler, injector func() *faults.Injector) (*Result, *Result) {
	t.Helper()
	topo := topology.MustNew(topology.Scaled(2, 3))
	run := func(incremental bool) *Result {
		s := mk()
		if !incremental {
			s.SetIncremental(false)
		}
		cfg := Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: s,
			Generator: mixedGen(t, topo, 0.85, 1.8, 11),
			Duration:  2, ValidateDecisions: true, DeepValidateEvery: 7,
			Seed: 11,
		}
		if injector != nil {
			cfg.Faults = injector()
		}
		return mustRun(t, cfg)
	}
	return run(true), run(false)
}

// TestIncrementalSimEquivalence: a full simulation driven by the
// incremental candidate index reproduces the from-scratch run exactly —
// same decisions, completions, byte accounting, and sample series.
func TestIncrementalSimEquivalence(t *testing.T) {
	cases := map[string]func() incrementalScheduler{
		"srpt":        func() incrementalScheduler { return sched.NewSRPT() },
		"fast-basrpt": func() incrementalScheduler { return sched.NewFastBASRPT(2500) },
		"maxweight":   func() incrementalScheduler { return sched.NewMaxWeight() },
		"threshold":   func() incrementalScheduler { return sched.NewThresholdBacklog(5000) },
	}
	for name, mk := range cases {
		mk := mk
		t.Run(name, func(t *testing.T) {
			a, b := runPair(t, mk, nil)
			sameResults(t, a, b)
		})
	}
}

// TestIncrementalSimEquivalenceUnderFaults: equivalence must survive link
// faults and scheduler outages — the outage fallback lets dirty VOQs
// accumulate unconsumed, exercising the index's delta-backlog repair, and
// deep validation cross-checks the index throughout.
func TestIncrementalSimEquivalenceUnderFaults(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 3))
	injector := func() *faults.Injector {
		schedule, err := faults.Generate(faults.Params{
			Seed:       21,
			Horizon:    2,
			Ports:      topo.NumHosts(),
			LinkFaults: 3,
			Outages:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return faults.NewInjector(schedule)
	}
	a, b := runPair(t, func() incrementalScheduler { return sched.NewFastBASRPT(2500) }, injector)
	sameResults(t, a, b)
	if a.Faults.OutageStarts == 0 {
		t.Fatal("fault schedule injected no outages; the test exercises nothing")
	}
}

// TestSchedulingThroughputExported: runs report the wall-clock scheduling
// cost and decision rate for the benchmark harness.
func TestSchedulingThroughputExported(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 2))
	res := mustRun(t, Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.7, 0.5, 3),
		Duration:  1,
	})
	if res.Decisions == 0 {
		t.Fatal("run took no decisions")
	}
	if res.SchedNanos <= 0 {
		t.Fatalf("SchedNanos = %d, want > 0", res.SchedNanos)
	}
	if res.DecisionsPerSec() <= 0 {
		t.Fatalf("DecisionsPerSec = %g, want > 0", res.DecisionsPerSec())
	}
	if (&Result{}).DecisionsPerSec() != 0 {
		t.Fatal("empty result should report zero decision rate")
	}
}

// TestErrorContextIncludesEpoch: invariant failures carry the table epoch
// so incremental-index divergences are replayable from the message alone.
func TestErrorContextIncludesEpoch(t *testing.T) {
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 1.0, Src: 0, Dst: 1, Size: 100, Class: flow.ClassOther},
		{Time: 0.5, Src: 1, Dst: 0, Size: 100, Class: flow.ClassOther}, // out of order
	})
	sim, err := New(Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = sim.Run(); err == nil {
		t.Fatal("out-of-order arrival not rejected")
	} else if !strings.Contains(err.Error(), "epoch=") {
		t.Fatalf("error lacks table epoch: %v", err)
	}
}

// TestDiagnosisIncludesEpoch: watchdog truncations pin the table state.
func TestDiagnosisIncludesEpoch(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 2))
	res := mustRun(t, Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.9, 2, 5),
		Duration:  2,
		Watchdog:  &Watchdog{MaxBacklogBytes: 1}, // any queued byte trips it

	})
	if !res.Truncated() {
		t.Fatal("overloaded run not truncated")
	}
	if res.Diagnosis.TableEpoch == 0 {
		t.Fatal("diagnosis lacks table epoch")
	}
	if !strings.Contains(res.Diagnosis.String(), "epoch") {
		t.Fatalf("diagnosis string lacks epoch: %s", res.Diagnosis)
	}
}
