package fabricsim

import (
	"encoding/json"
	"runtime"
	"testing"

	"basrpt/internal/obs"
	"basrpt/internal/topology"
)

// shardObsConfig is the small decomposed fixture the per-cell
// observability tests share: 4 racks so there is real cross-rack
// traffic and real grouping freedom.
func shardObsConfig(t *testing.T, shards int) ShardConfig {
	t.Helper()
	return ShardConfig{
		Topology:  shardTopo(t, 4, 3),
		Scheduler: "fast-basrpt",
		Load:      0.7,
		Duration:  0.004,
		Seed:      11,
		Shards:    shards,
	}
}

// maskWall strips the wall-clock plane from per-cell snapshots and
// JSON-encodes the remainder — the byte string the grouping-invariance
// property compares.
func maskWall(t *testing.T, snaps []obs.Snapshot) string {
	t.Helper()
	det := make([]obs.Snapshot, len(snaps))
	for i, s := range snaps {
		det[i] = s.WithoutWall()
	}
	b, err := json.Marshal(det)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardObsGroupingInvariance is the deterministic-plane property:
// the per-cell registry snapshots (wall-clock entries masked) must be
// byte-identical across shard counts and GOMAXPROCS values — the same
// contract PR 8 established for the merged Result, now per cell.
func TestShardObsGroupingInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	type arm struct {
		shards, procs int
	}
	arms := []arm{{2, 1}, {3, 1}, {4, 1}, {2, 4}, {4, 4}}
	var want string
	var wantDigest string
	for i, a := range arms {
		runtime.GOMAXPROCS(a.procs)
		res, err := RunShard(shardObsConfig(t, a.shards))
		if err != nil {
			t.Fatalf("shards=%d procs=%d: %v", a.shards, a.procs, err)
		}
		if len(res.ShardObs) != 4 {
			t.Fatalf("ShardObs cells = %d, want 4", len(res.ShardObs))
		}
		got := maskWall(t, res.ShardObs)
		digest := res.DeterministicDigest()
		if i == 0 {
			want, wantDigest = got, digest
			continue
		}
		if got != want {
			t.Errorf("shards=%d procs=%d: per-cell snapshots differ:\n got %s\nwant %s", a.shards, a.procs, got, want)
		}
		if digest != wantDigest {
			t.Errorf("shards=%d procs=%d: digest %s, want %s (digest now folds ShardObs in)", a.shards, a.procs, digest, wantDigest)
		}
	}
}

// TestShardObsCellAttribution sanity-checks that the per-cell counters
// attribute the merged totals: decisions sum to Result.Decisions, every
// cell advanced every window, and the inter-shard message flow is
// conserved (delivered <= sent; undelivered messages are exactly the
// ones still in flight past the horizon).
func TestShardObsCellAttribution(t *testing.T) {
	res, err := RunShard(shardObsConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	var decisions, sent, delivered int64
	for i, snap := range res.ShardObs {
		decisions += snap.Counter("cell.decisions")
		sent += snap.Counter("cell.msgs_sent")
		delivered += snap.Counter("cell.msgs_delivered")
		if w := snap.Counter("cell.windows"); int(w) != res.Imbalance.Windows {
			t.Errorf("cell %d advanced %d windows, run had %d", i, w, res.Imbalance.Windows)
		}
		// The wall-clock plane must be present per cell but excluded by
		// the deterministic mask.
		found := false
		for _, c := range snap.Counters {
			if c.Name == "wall.busy_ns" {
				found = true
			}
		}
		if !found {
			t.Errorf("cell %d snapshot lacks wall.busy_ns", i)
		}
		if det := snap.WithoutWall(); det.Counter("wall.busy_ns") != 0 {
			t.Errorf("cell %d: WithoutWall kept a wall counter", i)
		}
	}
	if decisions != res.Decisions {
		t.Errorf("cell decisions sum %d != merged %d", decisions, res.Decisions)
	}
	if sent == 0 || delivered == 0 {
		t.Errorf("no inter-shard traffic recorded (sent %d, delivered %d) — fixture too small?", sent, delivered)
	}
	if delivered > sent {
		t.Errorf("delivered %d > sent %d", delivered, sent)
	}
}

// TestShardTimelineOrderingInvariance is the wall-clock-plane property:
// the timeline's span SEQUENCE (track, name, window — durations masked)
// must be byte-identical across shard counts and GOMAXPROCS, because
// spans are recorded in rack order at each barrier regardless of how
// the workers interleaved.
func TestShardTimelineOrderingInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	type ev struct {
		Track, Window int
		Name          string
	}
	order := func(shards, procs int) []ev {
		runtime.GOMAXPROCS(procs)
		cfg := shardObsConfig(t, shards)
		cfg.Timeline = obs.NewTimeline()
		if _, err := RunShard(cfg); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var out []ev
		for _, s := range cfg.Timeline.Spans() {
			out = append(out, ev{Track: s.Track, Window: s.Window, Name: s.Name})
		}
		return out
	}
	want := order(2, 1)
	if len(want) == 0 {
		t.Fatal("no timeline spans recorded")
	}
	for _, a := range []struct{ shards, procs int }{{3, 1}, {4, 4}, {2, 4}} {
		got := order(a.shards, a.procs)
		if len(got) != len(want) {
			t.Fatalf("shards=%d procs=%d: %d spans, want %d", a.shards, a.procs, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d procs=%d: span %d = %+v, want %+v", a.shards, a.procs, i, got[i], want[i])
			}
		}
	}
	// Span-shape spot checks on the reference ordering: each barrier opens
	// with the coordinator route pass, then per cell in rack order its
	// window spans plus one batch and one barrier span, then the
	// coordinator fold. Window/batch/barrier/fold/route spans carry the
	// barrier index in Window except per-window "window" spans, which
	// carry the absolute window index.
	if want[0] != (ev{Track: obs.TimelineCoordinator, Window: 0, Name: "route"}) {
		t.Errorf("first span = %+v, want coordinator route for barrier 0", want[0])
	}
	perBarrier := map[string]int{}
	windowSpans := 0
	for _, e := range want {
		if e.Name == "window" {
			if e.Window == 0 {
				windowSpans++
			}
			continue
		}
		if e.Window == 0 {
			perBarrier[e.Name]++
		}
	}
	if windowSpans != 4 || perBarrier["batch"] != 4 || perBarrier["barrier"] != 4 || perBarrier["fold"] != 1 || perBarrier["route"] != 1 {
		t.Errorf("barrier-0 span census = %v (+%d window-0 spans), want 4 window / 4 batch / 4 barrier / 1 fold / 1 route",
			perBarrier, windowSpans)
	}
}

// TestShardImbalanceReport checks the post-run attribution report's
// invariants (not its timings, which are machine facts): shape, bounded
// fraction, conserved slowest-window counts, and absence on the
// centralized path.
func TestShardImbalanceReport(t *testing.T) {
	res, err := RunShard(shardObsConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	im := res.Imbalance
	if im == nil {
		t.Fatal("decomposed run has no imbalance report")
	}
	if im.Cells != 4 || len(im.BusyNs) != 4 || len(im.BarrierWaitNs) != 4 || len(im.SlowestBarriers) != 4 {
		t.Fatalf("report shape wrong: %+v", im)
	}
	if im.Windows <= 0 || im.Barriers <= 0 || im.Barriers > im.Windows {
		t.Fatalf("windows = %d, barriers = %d", im.Windows, im.Barriers)
	}
	if got, want := im.WindowsPerBarrier, float64(im.Windows)/float64(im.Barriers); got != want {
		t.Fatalf("windows per barrier %g, want %g", got, want)
	}
	if im.Workers < 1 || im.Workers > im.Cells ||
		len(im.WorkerBusyNs) != im.Workers || len(im.WorkerWaitNs) != im.Workers {
		t.Fatalf("worker accounting shape wrong: %+v", im)
	}
	if im.BarrierWaitFraction < 0 || im.BarrierWaitFraction > 1 {
		t.Fatalf("barrier-wait fraction %g outside [0,1]", im.BarrierWaitFraction)
	}
	if im.CellWaitFraction < 0 || im.CellWaitFraction > 1 {
		t.Fatalf("cell-wait fraction %g outside [0,1]", im.CellWaitFraction)
	}
	sumSlowest := 0
	for i := range im.SlowestBarriers {
		sumSlowest += im.SlowestBarriers[i]
		if im.BusyNs[i] < 0 || im.BarrierWaitNs[i] < 0 {
			t.Fatalf("negative time for cell %d: %+v", i, im)
		}
	}
	if sumSlowest != im.Barriers {
		t.Fatalf("slowest-barrier counts sum to %d, want %d", sumSlowest, im.Barriers)
	}
	if im.SlowestCell < 0 || im.SlowestCell >= im.Cells {
		t.Fatalf("slowest cell %d out of range", im.SlowestCell)
	}
	if im.String() == "" {
		t.Fatal("empty imbalance rendering")
	}

	// The centralized family reports neither per-cell snapshots nor an
	// imbalance — its artifacts must stay byte-identical to pre-PR runs.
	cfg := shardObsConfig(t, 1)
	cres, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Imbalance != nil || cres.ShardObs != nil {
		t.Fatal("centralized run grew decomposed-only observability fields")
	}
	for _, c := range cres.Obs.Counters {
		if obs.IsWallClock(c.Name) {
			t.Fatalf("centralized run registry has wall-clock counter %s", c.Name)
		}
	}
}

// TestShardOnWindowHeartbeat checks the decomposed heartbeat: one
// callback per barrier, monotone sim time and window index, cumulative
// counters matching the final result, and per-cell wall arrays shaped
// to the fabric.
func TestShardOnWindowHeartbeat(t *testing.T) {
	cfg := shardObsConfig(t, 2)
	var beats []ShardProgress
	cfg.OnWindow = func(p ShardProgress) { beats = append(beats, p) }
	res, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) != res.Imbalance.Barriers {
		t.Fatalf("%d heartbeats, %d barriers", len(beats), res.Imbalance.Barriers)
	}
	for i, b := range beats {
		if b.Barrier != i || b.Cells != 4 || b.Duration != cfg.Duration {
			t.Fatalf("beat %d malformed: %+v", i, b)
		}
		if b.Workers < 1 || b.Workers > b.Cells || b.WindowsPerBarrier <= 0 {
			t.Fatalf("beat %d pool fields malformed: %+v", i, b)
		}
		if len(b.CellBusyNs) != 4 || len(b.CellWaitNs) != 4 {
			t.Fatalf("beat %d per-cell arrays malformed: %+v", i, b)
		}
		if i > 0 && (b.SimTime <= beats[i-1].SimTime || b.Window <= beats[i-1].Window) {
			t.Fatalf("beat %d position not monotone", i)
		}
		if i > 0 && (b.Decisions < beats[i-1].Decisions || b.CompletedFlows < beats[i-1].CompletedFlows) {
			t.Fatalf("beat %d counters regressed", i)
		}
	}
	last := beats[len(beats)-1]
	if last.SimTime != cfg.Duration || last.Decisions != res.Decisions || last.CompletedFlows != res.CompletedFlows {
		t.Fatalf("final beat %+v does not match result (decisions %d completed %d)",
			last, res.Decisions, res.CompletedFlows)
	}
	if last.Window+1 != res.Imbalance.Windows {
		t.Fatalf("final beat window %d, run had %d windows", last.Window, res.Imbalance.Windows)
	}
}

// TestCentralizedOnProgressHeartbeat checks the centralized engine's
// sample-tick heartbeat and that enabling it changes nothing
// deterministic.
func TestCentralizedOnProgressHeartbeat(t *testing.T) {
	topo, err := topology.New(topology.Scaled(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	base := ShardConfig{
		Topology: topo, Scheduler: "fast-basrpt", Load: 0.7,
		Duration: 0.05, Seed: 7, Shards: 1,
	}
	plain, err := RunShard(base)
	if err != nil {
		t.Fatal(err)
	}

	// The heartbeat rides ShardConfig.OnProgress through the centralized
	// construction path.
	var beats []RunProgress
	cfg := base
	cfg.OnProgress = func(p RunProgress) { beats = append(beats, p) }
	res2, err := RunShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats at sample ticks")
	}
	for i, b := range beats {
		if b.Duration != base.Duration {
			t.Fatalf("beat %d duration %g", i, b.Duration)
		}
		if i > 0 && b.SimTime < beats[i-1].SimTime {
			t.Fatalf("beat %d sim time regressed", i)
		}
	}
	if got, want := res2.DeterministicDigest(), plain.DeterministicDigest(); got != want {
		t.Fatalf("OnProgress changed the run: %s vs %s", got, want)
	}
}
