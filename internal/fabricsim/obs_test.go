package fabricsim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// runTraced runs one seeded mixed-workload fabric with the JSONL trace
// sink attached and returns the raw trace bytes plus the result.
func runTraced(t *testing.T, seed uint64) ([]byte, *Result) {
	t.Helper()
	topo := topology.MustNew(topology.Scaled(2, 2))
	var buf bytes.Buffer
	ew, err := trace.NewEventWriter(&buf, trace.TraceHeader{
		Seed: int64(seed), Scheduler: "fast-basrpt", Hosts: topo.NumHosts(), Load: 0.7, DurationSec: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Options{Sink: ew})
	res := mustRun(t, Config{
		Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.7, 0.3, seed),
		Duration:  0.3, Seed: seed, Obs: o,
	})
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	if o.SinkErr() != nil {
		t.Fatal(o.SinkErr())
	}
	return buf.Bytes(), res
}

// TestTraceByteIdenticalAcrossRuns is the tentpole's determinism
// guarantee: two fixed-seed traced runs emit byte-identical JSONL.
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	a, resA := runTraced(t, 99)
	b, resB := runTraced(t, 99)
	if !bytes.Equal(a, b) {
		t.Fatal("fixed-seed traced runs produced different trace bytes")
	}
	if resA.Decisions != resB.Decisions {
		t.Fatalf("decision counts diverged: %d vs %d", resA.Decisions, resB.Decisions)
	}
	// And the trace parses back into a well-formed event stream.
	h, events, err := trace.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 99 || len(events) == 0 {
		t.Fatalf("header %+v with %d events", h, len(events))
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"sample.queue", "sample.total", "sample.maxport", "flow.done"} {
		if !kinds[want] {
			t.Fatalf("trace missing %q events (kinds seen: %v)", want, kinds)
		}
	}
}

// TestCounterMigrationPreservesReportedValues: the registry-backed
// Decisions/SchedNanos must report exactly what an obs-disabled run
// reports (the satellite-1 migration contract), and the snapshot must
// agree with the Result fields.
func TestCounterMigrationPreservesReportedValues(t *testing.T) {
	run := func(o *obs.Obs) *Result {
		topo := topology.MustNew(topology.Scaled(2, 2))
		return mustRun(t, Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewFastBASRPT(2500),
			Generator: mixedGen(t, topo, 0.7, 0.3, 7),
			Duration:  0.3, Seed: 7, Obs: o,
		})
	}
	plain := run(nil)
	traced := run(obs.New(obs.Options{}))
	if plain.Decisions == 0 {
		t.Fatal("run took no decisions")
	}
	if plain.Decisions != traced.Decisions {
		t.Fatalf("decisions: disabled %d, enabled %d", plain.Decisions, traced.Decisions)
	}
	if plain.CompletedFlows != traced.CompletedFlows || plain.DepartedBytes != traced.DepartedBytes {
		t.Fatal("obs changed simulated results")
	}
	for _, res := range []*Result{plain, traced} {
		if got := res.Obs.Counter("fabric.decisions"); got != res.Decisions {
			t.Fatalf("snapshot decisions %d != result %d", got, res.Decisions)
		}
		if got := res.Obs.Counter("fabric.sched_nanos"); got != res.SchedNanos {
			t.Fatalf("snapshot sched_nanos %d != result %d", got, res.SchedNanos)
		}
		if got := res.Obs.Counter("fabric.completed_flows"); got != int64(res.CompletedFlows) {
			t.Fatalf("snapshot completed %d != result %d", got, res.CompletedFlows)
		}
		if res.SchedNanos > 0 && res.DecisionsPerSec() <= 0 {
			t.Fatal("DecisionsPerSec not positive with timed decisions")
		}
	}
	if sn := traced.Obs.Counter("sched.index_repairs"); sn == 0 {
		t.Fatal("index repair count missing from snapshot")
	}
	if hw := traced.Obs; len(hw.Gauges) == 0 {
		t.Fatal("eventq high-water gauge missing from snapshot")
	}
}

// TestTruncatedFaultedRunPrintsLastEventsInOrder is the satellite-2
// regression: a watchdog-truncated faulted run's Diagnosis carries the
// flight recorder's tail, in order, and String() prints it behind the
// verbosity knob.
func TestTruncatedFaultedRunPrintsLastEventsInOrder(t *testing.T) {
	// An unfinishable flow plus a link fault: the t=1 sample trips the
	// 1000-byte watchdog after the fault boundary events fired.
	schedule := &faults.Schedule{
		Seed:    5,
		Horizon: 10,
		LinkFaults: []faults.LinkFault{
			{Window: faults.Window{Start: 0.2, End: 0.4}, Port: 0, RateFraction: 0},
		},
	}
	gen := workload.NewSliceGenerator([]workload.Arrival{
		{Time: 0.1, Src: 0, Dst: 1, Size: 1e6, Class: flow.ClassOther},
	})
	o := obs.New(obs.Options{})
	res := mustRun(t, Config{
		Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
		Duration: 10, SampleInterval: 1, Seed: 5,
		Faults:   faults.NewInjector(schedule),
		Watchdog: &Watchdog{MaxBacklogBytes: 1000, VerboseDiagnosis: true},
		Obs:      o,
	})
	if !res.Truncated() {
		t.Fatal("watchdog did not truncate")
	}
	d := res.Diagnosis
	if len(d.LastEvents) == 0 {
		t.Fatal("diagnosis captured no flight-recorder events")
	}
	for i := 1; i < len(d.LastEvents); i++ {
		if d.LastEvents[i].Seq <= d.LastEvents[i-1].Seq {
			t.Fatalf("diagnosis events out of order at %d: %+v", i, d.LastEvents)
		}
		if d.LastEvents[i].T < d.LastEvents[i-1].T {
			t.Fatalf("diagnosis event times go backwards at %d", i)
		}
	}
	last := d.LastEvents[len(d.LastEvents)-1]
	if last.Kind != "watchdog.truncate" || last.Detail != "backlog-bound" {
		t.Fatalf("tail event = %+v, want the truncation marker", last)
	}
	kinds := map[string]bool{}
	for _, ev := range d.LastEvents {
		kinds[ev.Kind] = true
	}
	if !kinds["fault.link.start"] || !kinds["fault.link.end"] {
		t.Fatalf("fault boundary events missing from diagnosis (kinds: %v)", kinds)
	}

	out := d.String()
	if !strings.Contains(out, "last ") || !strings.Contains(out, "watchdog.truncate") {
		t.Fatalf("verbose diagnosis missing events:\n%s", out)
	}
	// Printed order matches capture order.
	if strings.Index(out, "fault.link.start") > strings.Index(out, "watchdog.truncate") {
		t.Fatalf("verbose diagnosis prints events out of order:\n%s", out)
	}

	// The knob: without verbosity the summary stays one line.
	d.Verbose = false
	if quiet := d.String(); strings.Contains(quiet, "\n") {
		t.Fatalf("non-verbose diagnosis spans lines:\n%s", quiet)
	}
}

// TestDiagnosisEventsKnob: DiagnosisEvents bounds the capture and a
// negative value disables it.
func TestDiagnosisEventsKnob(t *testing.T) {
	run := func(k int) *Diagnosis {
		gen := workload.NewSliceGenerator([]workload.Arrival{
			{Time: 0.1, Src: 0, Dst: 1, Size: 1e6, Class: flow.ClassOther},
		})
		res := mustRun(t, Config{
			Hosts: 2, LinkBps: link, Scheduler: sched.NewSRPT(), Generator: gen,
			Duration: 10, SampleInterval: 1,
			Watchdog: &Watchdog{MaxBacklogBytes: 1000, DiagnosisEvents: k},
			Obs:      obs.New(obs.Options{}),
		})
		if !res.Truncated() {
			t.Fatal("watchdog did not truncate")
		}
		return res.Diagnosis
	}
	if d := run(2); len(d.LastEvents) != 2 {
		t.Fatalf("capture of 2 got %d events", len(d.LastEvents))
	}
	if d := run(-1); d.LastEvents != nil {
		t.Fatalf("negative knob still captured %d events", len(d.LastEvents))
	}
}

// TestObsDisabledRunsIdentical: a nil Obs changes nothing about the
// simulation (the disabled path is pure observation).
func TestObsDisabledRunsIdentical(t *testing.T) {
	run := func(o *obs.Obs) *Result {
		topo := topology.MustNew(topology.Scaled(2, 2))
		return mustRun(t, Config{
			Hosts: topo.NumHosts(), LinkBps: topo.HostLinkBps(),
			Scheduler: sched.NewSRPT(),
			Generator: mixedGen(t, topo, 0.6, 0.25, 13),
			Duration:  0.25, Seed: 13, Obs: o,
		})
	}
	a, b := run(nil), run(obs.New(obs.Options{}))
	if a.Decisions != b.Decisions || a.CompletedFlows != b.CompletedFlows {
		t.Fatalf("obs perturbed the run: %d/%d vs %d/%d decisions/completions",
			a.Decisions, a.CompletedFlows, b.Decisions, b.CompletedFlows)
	}
	if math.Abs(a.DepartedBytes-b.DepartedBytes) > 0 {
		t.Fatalf("departed bytes diverged: %g vs %g", a.DepartedBytes, b.DepartedBytes)
	}
}
