package fabricsim

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"basrpt/internal/checkpoint"
	"basrpt/internal/faults"
	"basrpt/internal/obs"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// soakSchedule is the fault schedule the resume soak runs under: a dead
// link, a scheduler outage (exercising the fallback's held matching), and
// random packet loss (exercising the injector's RNG stream position).
func soakSchedule() *faults.Schedule {
	return &faults.Schedule{
		Seed:    7,
		Horizon: 0.3,
		LinkFaults: []faults.LinkFault{
			{Window: faults.Window{Start: 0.05, End: 0.09}, Port: 0, RateFraction: 0},
			{Window: faults.Window{Start: 0.2, End: 0.23}, Port: 2, RateFraction: 0.5},
		},
		Outages:        []faults.Window{{Start: 0.12, End: 0.14}},
		PacketLossProb: 0.05,
	}
}

// soakConfig builds one run configuration for the resume soak. Each call
// constructs fresh stateful components (generator, injector) so two runs
// never share mutable state.
func soakConfig(t *testing.T, seed uint64, withFaults bool, o *obs.Obs) Config {
	t.Helper()
	topo := topology.MustNew(topology.Scaled(2, 2))
	cfg := Config{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: sched.NewFastBASRPT(2500),
		Generator: mixedGen(t, topo, 0.7, 0.3, seed),
		Duration:  0.3,
		Seed:      seed,
		Obs:       o,
	}
	if withFaults {
		cfg.Faults = faults.NewInjector(soakSchedule())
	}
	return cfg
}

func soakTraceWriter(t *testing.T, seed uint64) (*bytes.Buffer, *trace.EventWriter) {
	t.Helper()
	var buf bytes.Buffer
	ew, err := trace.NewEventWriter(&buf, trace.TraceHeader{
		Seed: int64(seed), Scheduler: "fast-basrpt", Hosts: 4, Load: 0.7, DurationSec: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &buf, ew
}

// TestCheckpointResumeByteIdentical is the tentpole's acceptance gate:
// for multiple seeds, with and without fault injection, a run halted at a
// mid-run checkpoint and resumed in a fresh simulator produces (a) a
// Result with the same deterministic digest as the uninterrupted run and
// (b) a trace whose concatenation with the pre-halt trace is
// byte-identical to the uninterrupted run's trace.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, seed := range []uint64{17, 99} {
		for _, withFaults := range []bool{false, true} {
			name := map[bool]string{false: "clean", true: "faults"}[withFaults]
			t.Run(name, func(t *testing.T) {
				// Uninterrupted reference run.
				fullBuf, fullEW := soakTraceWriter(t, seed)
				fullRes := mustRun(t, soakConfig(t, seed, withFaults, obs.New(obs.Options{Sink: fullEW})))
				if err := fullEW.Flush(); err != nil {
					t.Fatal(err)
				}

				// Halted run: stop at the first periodic checkpoint (t >= 0.15).
				partBuf, partEW := soakTraceWriter(t, seed)
				haltCfg := soakConfig(t, seed, withFaults, obs.New(obs.Options{Sink: partEW}))
				haltCfg.CheckpointEvery = 0.15
				var ckpt []byte
				haltCfg.CheckpointSink = func(data []byte, simTime float64) error {
					ckpt = data
					return ErrStopAfterCheckpoint
				}
				partRes := mustRun(t, haltCfg)
				if err := partEW.Flush(); err != nil {
					t.Fatal(err)
				}
				if partRes.Diagnosis == nil || partRes.Diagnosis.Reason != "checkpoint-stop" {
					t.Fatalf("halted run diagnosis = %+v, want checkpoint-stop", partRes.Diagnosis)
				}
				if len(ckpt) == 0 || !bytes.Equal(partRes.Diagnosis.Checkpoint, ckpt) {
					t.Fatal("halted run did not surface the checkpoint bytes")
				}
				if partRes.Duration >= 0.3 || partRes.Duration < 0.15 {
					t.Fatalf("halt at t=%g, want within [0.15, 0.3)", partRes.Duration)
				}

				// Continuation: fresh simulator, fresh generator/injector,
				// headerless trace writer.
				var contBuf bytes.Buffer
				contEW := trace.NewContinuationWriter(&contBuf)
				contCfg := soakConfig(t, seed, withFaults, obs.New(obs.Options{Sink: contEW}))
				sim, err := Resume(contCfg, ckpt)
				if err != nil {
					t.Fatal(err)
				}
				contRes, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := contEW.Flush(); err != nil {
					t.Fatal(err)
				}

				if got, want := contRes.DeterministicDigest(), fullRes.DeterministicDigest(); got != want {
					t.Errorf("seed %d: resumed digest %s != full digest %s", seed, got, want)
				}
				if contRes.CompletedFlows != fullRes.CompletedFlows ||
					contRes.ArrivedFlows != fullRes.ArrivedFlows ||
					contRes.DepartedBytes != fullRes.DepartedBytes ||
					contRes.Faults != fullRes.Faults {
					t.Errorf("seed %d: resumed result diverged: %+v vs %+v", seed, contRes, fullRes)
				}
				stitched := append(append([]byte(nil), partBuf.Bytes()...), contBuf.Bytes()...)
				if !bytes.Equal(stitched, fullBuf.Bytes()) {
					t.Errorf("seed %d: stitched trace (%d bytes) != full trace (%d bytes)",
						seed, len(stitched), len(fullBuf.Bytes()))
				}
				// The stitched trace must itself be a valid, monotonic trace.
				if _, evs, err := trace.ReadTrace(bytes.NewReader(stitched)); err != nil || len(evs) == 0 {
					t.Errorf("seed %d: stitched trace unreadable: %v (%d events)", seed, err, len(evs))
				}
			})
		}
	}
}

// TestPeriodicCheckpointsDoNotPerturb: a run that takes (and keeps
// running past) periodic checkpoints is bit-identical to one that never
// checkpoints — capture is observably side-effect free.
func TestPeriodicCheckpointsDoNotPerturb(t *testing.T) {
	plainBuf, plainEW := soakTraceWriter(t, 5)
	plain := mustRun(t, soakConfig(t, 5, true, obs.New(obs.Options{Sink: plainEW})))
	if err := plainEW.Flush(); err != nil {
		t.Fatal(err)
	}

	ckptBuf, ckptEW := soakTraceWriter(t, 5)
	cfg := soakConfig(t, 5, true, obs.New(obs.Options{Sink: ckptEW}))
	cfg.CheckpointEvery = 0.05
	taken := 0
	cfg.CheckpointSink = func(data []byte, simTime float64) error {
		taken++
		if _, err := checkpoint.Decode(data); err != nil {
			t.Errorf("periodic checkpoint at t=%g undecodable: %v", simTime, err)
		}
		return nil
	}
	res := mustRun(t, cfg)
	if err := ckptEW.Flush(); err != nil {
		t.Fatal(err)
	}
	if taken < 3 {
		t.Fatalf("took %d periodic checkpoints, want >= 3", taken)
	}
	if got, want := res.DeterministicDigest(), plain.DeterministicDigest(); got != want {
		t.Fatalf("checkpointing perturbed the run: %s != %s", got, want)
	}
	if !bytes.Equal(ckptBuf.Bytes(), plainBuf.Bytes()) {
		t.Fatal("checkpointing perturbed the trace")
	}
}

// TestWatchdogCheckpointResumable: a watchdog truncation carries a
// resumable checkpoint, and resuming with the watchdog relaxed drives the
// run to its natural horizon with bytes conserved.
func TestWatchdogCheckpointResumable(t *testing.T) {
	cfg := soakConfig(t, 23, true, nil)
	cfg.Watchdog = &Watchdog{MaxBacklogBytes: 1}
	res := mustRun(t, cfg)
	d := res.Diagnosis
	if d == nil || d.Reason != "backlog-bound" {
		t.Fatalf("diagnosis = %+v, want backlog-bound truncation", d)
	}
	if d.CheckpointErr != "" {
		t.Fatalf("truncation checkpoint failed: %s", d.CheckpointErr)
	}
	if len(d.Checkpoint) == 0 {
		t.Fatal("watchdog truncation carried no checkpoint")
	}

	// Resume with the limit relaxed: the run must finish the horizon.
	resumeCfg := soakConfig(t, 23, true, nil)
	sim, err := Resume(resumeCfg, d.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if full.Diagnosis != nil {
		t.Fatalf("resumed run still truncated: %+v", full.Diagnosis)
	}
	if full.Duration != 0.3 {
		t.Fatalf("resumed run stopped at t=%g, want 0.3", full.Duration)
	}
	if full.ArrivedFlows <= res.ArrivedFlows {
		t.Fatalf("resumed run made no progress: %d arrivals vs %d at truncation",
			full.ArrivedFlows, res.ArrivedFlows)
	}
	// Byte conservation across the splice: everything that arrived either
	// departed or is still queued.
	if diff := full.ArrivedBytes - full.DepartedBytes - full.LeftoverBytes; math.Abs(diff) > 1e-6*full.ArrivedBytes {
		t.Fatalf("conservation violated by %g bytes", diff)
	}
	// And it matches the never-truncated run bit for bit.
	ref := mustRun(t, soakConfig(t, 23, true, nil))
	if got, want := full.DeterministicDigest(), ref.DeterministicDigest(); got != want {
		t.Fatalf("watchdog-resumed digest %s != uninterrupted digest %s", got, want)
	}
}

// TestResumeRejectsMismatch: a checkpoint only restores into an
// equivalent configuration, and corruption is caught by the envelope.
func TestResumeRejectsMismatch(t *testing.T) {
	cfg := soakConfig(t, 17, false, nil)
	cfg.CheckpointEvery = 0.15
	var ckpt []byte
	cfg.CheckpointSink = func(data []byte, simTime float64) error {
		ckpt = data
		return ErrStopAfterCheckpoint
	}
	mustRun(t, cfg)
	if len(ckpt) == 0 {
		t.Fatal("no checkpoint captured")
	}

	badSeed := soakConfig(t, 18, false, nil)
	if _, err := Resume(badSeed, ckpt); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Fatalf("different seed: got %v, want ErrConfigMismatch", err)
	}
	withFaults := soakConfig(t, 17, true, nil)
	if _, err := Resume(withFaults, ckpt); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Fatalf("added faults: got %v, want ErrConfigMismatch", err)
	}
	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)/2] ^= 1
	if _, err := Resume(soakConfig(t, 17, false, nil), flipped); !errors.Is(err, checkpoint.ErrCRC) {
		t.Fatalf("bit flip: got %v, want ErrCRC", err)
	}
	if _, err := Resume(soakConfig(t, 17, false, nil), ckpt[:10]); !errors.Is(err, checkpoint.ErrFormat) {
		t.Fatalf("truncated: got %v, want ErrFormat", err)
	}
}

// TestStreamingWindowsBounded: streaming mode emits periodic window.*
// events and keeps the in-memory series and FCT reservoirs bounded.
func TestStreamingWindowsBounded(t *testing.T) {
	buf, ew := soakTraceWriter(t, 31)
	o := obs.New(obs.Options{Sink: ew})
	cfg := soakConfig(t, 31, false, o)
	cfg.StreamWindow = 0.03
	cfg.StreamKeep = 8
	cfg.SampleInterval = 0.002
	res := mustRun(t, cfg)
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}

	_, events, err := trace.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	for _, ev := range events {
		if ev.Kind == "window.backlog" {
			windows++
		}
	}
	if windows < 4 {
		t.Fatalf("saw %d window flushes in the trace, want >= 4", windows)
	}
	// Series stay bounded: at most the retained tail plus one window's
	// worth of samples accumulated since the last flush (the amortized
	// trim fires once the series doubles past the keep bound).
	bound := 2*cfg.StreamKeep + int(cfg.StreamWindow/cfg.SampleInterval) + 2
	for name, s := range map[string][]float64{
		"queue":   res.QueueSeries.Times,
		"total":   res.TotalBacklogSeries.Times,
		"maxport": res.MaxPortSeries.Times,
	} {
		if len(s) > bound {
			t.Fatalf("%s series holds %d samples, bound is %d", name, len(s), bound)
		}
	}
	for _, cs := range res.FCT.StateSnapshot().Classes {
		if len(cs.Samples) > 2*cfg.StreamKeep {
			t.Fatalf("class %d holds %d FCT samples, bound is %d", cs.Class, len(cs.Samples), 2*cfg.StreamKeep)
		}
		if cs.Count == 0 {
			t.Fatalf("class %d lost its completion count", cs.Class)
		}
	}

	// Streaming runs resume bit-for-bit too (window trackers are state).
	cfg2 := soakConfig(t, 31, false, nil)
	cfg2.StreamWindow = 0.03
	cfg2.StreamKeep = 8
	cfg2.CheckpointEvery = 0.15
	var ckpt []byte
	cfg2.CheckpointSink = func(data []byte, simTime float64) error {
		ckpt = data
		return ErrStopAfterCheckpoint
	}
	mustRun(t, cfg2)
	cont := soakConfig(t, 31, false, nil)
	cont.StreamWindow = 0.03
	cont.StreamKeep = 8
	sim, err := Resume(cont, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Reference streaming run without an Obs attached, like the resume.
	refCfg := soakConfig(t, 31, false, nil)
	refCfg.StreamWindow = 0.03
	refCfg.StreamKeep = 8
	ref := mustRun(t, refCfg)
	if got, want := resumed.DeterministicDigest(), ref.DeterministicDigest(); got != want {
		t.Fatalf("streaming resume digest %s != reference %s", got, want)
	}
}

// plainGenerator satisfies workload.Generator but not Checkpointable.
type plainGenerator struct{}

func (plainGenerator) Next() (workload.Arrival, bool) { return workload.Arrival{}, false }

// TestCheckpointConfigValidation covers the New-time wiring rules.
func TestCheckpointConfigValidation(t *testing.T) {
	sink := func([]byte, float64) error { return nil }
	base := func(t *testing.T) Config { return soakConfig(t, 1, false, nil) }
	cases := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"negative cadence", func(c Config) Config { c.CheckpointEvery = -1; return c }},
		{"cadence without sink", func(c Config) Config { c.CheckpointEvery = 0.1; return c }},
		{"sink without cadence", func(c Config) Config { c.CheckpointSink = sink; return c }},
		{"negative window", func(c Config) Config { c.StreamWindow = -1; return c }},
		{"negative keep", func(c Config) Config { c.StreamKeep = -1; return c }},
		{"non-checkpointable generator", func(c Config) Config {
			c.Generator = plainGenerator{}
			c.CheckpointEvery = 0.1
			c.CheckpointSink = sink
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.mutate(base(t))); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}
