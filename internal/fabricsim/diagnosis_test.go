package fabricsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"basrpt/internal/obs"
)

// runTruncated drives a seeded run into a backlog-bound watchdog
// truncation with the flight recorder attached and returns the Diagnosis.
func runTruncated(t *testing.T, seed uint64, withFaults bool) *Diagnosis {
	t.Helper()
	cfg := soakConfig(t, seed, withFaults, obs.New(obs.Options{}))
	cfg.Watchdog = &Watchdog{MaxBacklogBytes: 1}
	res := mustRun(t, cfg)
	if res.Diagnosis == nil || res.Diagnosis.Reason != "backlog-bound" {
		t.Fatalf("seed %d: diagnosis = %+v, want backlog-bound", seed, res.Diagnosis)
	}
	return res.Diagnosis
}

// TestDiagnosisDeterministicAcrossRuns is the watchdog's reproducibility
// property: at a fixed seed the whole Diagnosis — including the flight
// recorder tail, event by event — serializes byte-identically across
// independent runs, with and without fault injection. A postmortem is
// only trustworthy if rerunning the seed reproduces it exactly.
func TestDiagnosisDeterministicAcrossRuns(t *testing.T) {
	for _, seed := range []uint64{3, 29, 71} {
		for _, withFaults := range []bool{false, true} {
			a := runTruncated(t, seed, withFaults)
			b := runTruncated(t, seed, withFaults)
			if len(a.LastEvents) == 0 {
				t.Fatalf("seed %d faults=%v: empty flight recorder tail", seed, withFaults)
			}
			ja, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			jb, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				t.Errorf("seed %d faults=%v: diagnosis diverged across runs:\n%s\n%s",
					seed, withFaults, ja, jb)
			}
			// The truncation checkpoint must also be byte-identical: the
			// resumable artifact is as reproducible as the explanation.
			if !bytes.Equal(a.Checkpoint, b.Checkpoint) {
				t.Errorf("seed %d faults=%v: truncation checkpoints differ", seed, withFaults)
			}
		}
	}
}
