package fabricsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"basrpt/internal/eventq"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/workload"
)

// ErrShardConfig reports an invalid sharded-run configuration.
var ErrShardConfig = errors.New("fabricsim: invalid shard configuration")

// ErrShardUnsupported reports a ShardConfig feature the decomposed
// (Shards >= 2) executor does not implement. Checkpointing is the one
// such feature: its documented path is to run the same configuration at
// Shards == 1, where the centralized engine's full checkpoint/restore
// machinery (Checkpoint, Resume, CheckpointSink) applies unchanged.
var ErrShardUnsupported = errors.New("fabricsim: unsupported in decomposed mode")

// ShardConfig parameterizes a sharded fabric run. It is the topology-
// aware sibling of Config: instead of receiving pre-built scheduler and
// generator instances, it receives the recipe (registry name, options,
// workload parameters) so the executor can instantiate one copy per
// shard cell.
//
// Determinism comes in two families, both byte-stable across machines
// and GOMAXPROCS settings:
//
//   - Shards == 1 runs the centralized engine — one global event loop,
//     one fabric-wide workload stream — and is byte-identical to
//     building the same Sim by hand (the pre-refactor behavior).
//   - Shards >= 2 runs the decomposed conservative-PDES engine: one
//     cell per rack, cross-rack arrivals delivered after the topology's
//     CoreHopLatency lookahead. Results are byte-identical across ALL
//     shard counts >= 2 — the shard count only groups rack cells onto
//     worker goroutines and never changes the physics.
//
// The two families are not byte-identical to each other: decomposition
// replaces the fabric-global crossbar matching with per-rack matchings
// (uplink traffic enters the destination rack through core-proxy
// ingress ports), which is the modeling change that makes 4k+ host
// fabrics tractable.
type ShardConfig struct {
	// Topology shapes the fabric: rack boundaries are the decomposition
	// units and CoreHopLatency is the conservative lookahead.
	Topology *topology.Topology
	// Scheduler is the sched registry name (see sched.Names).
	Scheduler string
	// SchedOpts carries the discipline parameters. A zero Seed inherits
	// the run Seed; in decomposed mode each cell's scheduler derives a
	// private seed from it so RNG disciplines stay grouping-invariant.
	SchedOpts sched.Options
	// Load is the per-port offered load in (0, 1).
	Load float64
	// QueryByteFraction is the query byte share; 0 selects the workload
	// default.
	QueryByteFraction float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// SampleInterval is the queue-sample spacing (default Duration/500).
	SampleInterval float64
	// ThroughputBucket is the throughput series bucket width (default
	// Duration/50).
	ThroughputBucket float64
	// MonitorPort is the global host id whose ingress backlog becomes
	// QueueSeries.
	MonitorPort int
	// Seed drives the workload (and, via derivation, every per-cell
	// stream). Must be nonzero.
	Seed uint64
	// Shards selects the engine family and the worker-goroutine count:
	// 1 is the centralized engine, >= 2 the decomposed engine with
	// min(Shards, racks) workers.
	Shards int
	// Obs, when non-nil, receives the run's trace. In decomposed mode
	// per-cell events are buffered during each window and replayed in
	// deterministic (time, cell, sequence) merge order at the barrier,
	// so traced runs stay byte-identical across shard counts.
	Obs *obs.Obs
	// ValidateDecisions re-checks the crossbar constraint on every
	// decision (per cell in decomposed mode).
	ValidateDecisions bool
	// CheckpointEvery / CheckpointSink configure periodic checkpoints.
	// Supported only at Shards == 1; the decomposed engine returns
	// ErrShardUnsupported (see that error for the merge-to-1-shard
	// path).
	CheckpointEvery float64
	// CheckpointSink receives each checkpoint; see Config.CheckpointSink.
	CheckpointSink func(data []byte, simTime float64) error
	// Timeline, when non-nil, records wall-clock spans for the decomposed
	// engine — one "window" and one "barrier" span per cell per lookahead
	// window plus coordinator "fold"/"route" spans — for Chrome
	// trace_event export (obs.Timeline.WriteChromeTrace). Span ORDER is
	// deterministic (rack order within each window); span times are
	// wall-clock measurements. Ignored at Shards == 1.
	Timeline *obs.Timeline
	// OnWindow, when non-nil, is called on the coordinating goroutine
	// after every decomposed window barrier with the run's live position
	// — the sharded engine's heartbeat for ops endpoints. Wall-clock
	// plane only: results are byte-identical whether or not it is set.
	// Ignored at Shards == 1 (use Config.OnProgress through the
	// centralized path instead).
	OnWindow func(ShardProgress)
	// OnProgress, when non-nil, is forwarded to the centralized engine's
	// sample-tick heartbeat (Config.OnProgress). Wall-clock plane only.
	// Ignored at Shards >= 2 (use OnWindow there).
	OnProgress func(RunProgress)
}

// ShardProgress is the live heartbeat handed to ShardConfig.OnWindow
// after each decomposed window barrier.
type ShardProgress struct {
	// SimTime is the window's end on the simulated clock; Duration the
	// configured horizon.
	SimTime  float64
	Duration float64
	// Window is the zero-based index of the window just completed, and
	// Cells the number of PDES cells advancing in lockstep.
	Window int
	Cells  int
	// Decisions, ArrivedFlows, and CompletedFlows are cumulative sums
	// over all cells at the barrier.
	Decisions      int64
	ArrivedFlows   int
	CompletedFlows int
}

// ShardImbalance is the decomposed engine's post-run wall-clock
// attribution report: how the run's real time split between cell work
// and barrier waiting, and which cell the others waited on. Everything
// here is measured on the host machine — wall-clock plane, never part
// of a deterministic artifact.
type ShardImbalance struct {
	// Cells is the number of PDES cells (racks); Windows the number of
	// lookahead windows the run advanced through.
	Cells   int `json:"cells"`
	Windows int `json:"windows"`
	// BusyNs[i] is cell i's total in-window execution time and
	// BarrierWaitNs[i] its total time waiting at barriers for slower
	// cells; SlowestWindows[i] counts windows cell i finished last.
	BusyNs         []int64 `json:"busy_ns"`
	BarrierWaitNs  []int64 `json:"barrier_wait_ns"`
	SlowestWindows []int   `json:"slowest_windows"`
	// SlowestCell is the cell that finished last in the most windows
	// (lowest rack wins ties).
	SlowestCell int `json:"slowest_cell"`
	// BarrierWaitFraction is total barrier wait over total (busy + wait)
	// cell time — the fraction of the fleet's wall clock lost to the
	// lockstep, in [0, 1].
	BarrierWaitFraction float64 `json:"barrier_wait_fraction"`
	// SkewRatio is the maximum per-cell busy time over the mean — 1.0
	// for a perfectly balanced fabric.
	SkewRatio float64 `json:"skew_ratio"`
}

// String renders a one-paragraph imbalance summary for run footers.
func (im *ShardImbalance) String() string {
	if im == nil || im.Cells == 0 {
		return "imbalance: no decomposed windows recorded"
	}
	var totalBusy, totalWait, slowBusy int64
	for i := range im.BusyNs {
		totalBusy += im.BusyNs[i]
		totalWait += im.BarrierWaitNs[i]
		if i == im.SlowestCell {
			slowBusy = im.BusyNs[i]
		}
	}
	return fmt.Sprintf(
		"imbalance: %d cells x %d windows; busy %.1fms, barrier wait %.1fms (%.1f%% of cell time); skew ratio %.2f; slowest cell %d (last in %d windows, busy %.1fms)",
		im.Cells, im.Windows,
		float64(totalBusy)/1e6, float64(totalWait)/1e6, 100*im.BarrierWaitFraction,
		im.SkewRatio, im.SlowestCell, im.SlowestWindows[im.SlowestCell], float64(slowBusy)/1e6)
}

// cellIDShift positions the source-rack tag inside a decomposed flow ID:
// the low 40 bits count flows generated by the rack, the bits above tag
// the rack (+1 so no decomposed ID collides with the centralized
// engine's small sequential IDs). IDs are a pure function of (rack,
// generation order), so every table and scheduler tie-break that reads
// them is grouping-invariant.
const cellIDShift = 40

// RunShard executes one sharded fabric run. See ShardConfig for the
// engine families and their determinism contract.
func RunShard(cfg ShardConfig) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrShardConfig)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shards %d < 1", ErrShardConfig, cfg.Shards)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g <= 0", ErrShardConfig, cfg.Duration)
	}
	if cfg.Load <= 0 || cfg.Load >= 1 {
		return nil, fmt.Errorf("%w: load %g outside (0, 1)", ErrShardConfig, cfg.Load)
	}
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("%w: seed must be nonzero", ErrShardConfig)
	}
	hosts := cfg.Topology.NumHosts()
	if cfg.MonitorPort < 0 || cfg.MonitorPort >= hosts {
		return nil, fmt.Errorf("%w: monitor port %d outside [0, %d)", ErrShardConfig, cfg.MonitorPort, hosts)
	}
	if cfg.QueryByteFraction == 0 {
		cfg.QueryByteFraction = workload.DefaultQueryByteFraction
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = cfg.Duration / 500
	}
	if cfg.ThroughputBucket <= 0 {
		cfg.ThroughputBucket = cfg.Duration / 50
	}
	if cfg.Shards == 1 {
		return runCentralized(cfg)
	}
	if cfg.CheckpointEvery > 0 || cfg.CheckpointSink != nil {
		return nil, fmt.Errorf("%w: checkpointing requires Shards == 1", ErrShardUnsupported)
	}
	return runDecomposed(cfg)
}

// runCentralized is the Shards == 1 family: the same construction a
// direct fabricsim.New caller performs, so results (digest and trace
// alike) are byte-identical to the pre-refactor engine.
func runCentralized(cfg ShardConfig) (*Result, error) {
	opts := cfg.SchedOpts
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	scheduler, err := sched.New(cfg.Scheduler, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          cfg.Topology,
		Load:              cfg.Load,
		QueryByteFraction: cfg.QueryByteFraction,
		Duration:          cfg.Duration,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
	}
	sim, err := New(Config{
		Hosts:             cfg.Topology.NumHosts(),
		LinkBps:           cfg.Topology.HostLinkBps(),
		Scheduler:         scheduler,
		Generator:         gen,
		Duration:          cfg.Duration,
		SampleInterval:    cfg.SampleInterval,
		MonitorPort:       cfg.MonitorPort,
		ThroughputBucket:  cfg.ThroughputBucket,
		ValidateDecisions: cfg.ValidateDecisions,
		Seed:              cfg.Seed,
		Obs:               cfg.Obs,
		CheckpointEvery:   cfg.CheckpointEvery,
		CheckpointSink:    cfg.CheckpointSink,
		OnProgress:        cfg.OnProgress,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// shardMsg is a cross-rack flow arrival in flight between cells. Ports
// are global host ids; genTime is the arrival time at the source (the
// FCT clock starts there, so the core hop is part of the flow's FCT).
type shardMsg struct {
	src, dst int
	size     float64
	class    flow.Class
	genTime  float64
	id       flow.ID
}

// routedMsg is a shardMsg stamped with its delivery time and source
// cell — the (time, shard id, seq) merge key that fixes the global
// admission order (seq is the source outbox's FIFO order, preserved by
// the stable sort in routeOutboxes).
type routedMsg struct {
	deliver float64
	srcCell int
	msg     shardMsg
}

// cellSample is one queue-sample tick recorded by a cell, folded into
// the global series at the window barrier.
type cellSample struct {
	t       float64
	monitor float64 // monitored port's backlog; owner cell only
	total   float64 // cell backlog including core-proxy ports
	maxPort int     // global id of the cell's worst HOST ingress port
	maxB    float64
}

// cellDone is a buffered flow.done trace event; the barrier replays
// them in (time, cell, seq) order so traced decomposed runs stay
// byte-identical across shard counts.
type cellDone struct {
	t     float64
	src   int // global ingress port
	fct   float64
	class string
}

// shardCell is one rack's private simulator: its own VOQ table (rack
// hosts plus one core-proxy ingress port per core switch), scheduler
// instance, workload stream, metrics, and flow pool. Cells only ever
// touch their own state inside a window; all cross-cell traffic moves
// through the outbox/inbox exchange at barriers on the main goroutine.
type shardCell struct {
	rack    int
	base    int // global id of the rack's first host
	hpr     int // local host ports [0, hpr)
	uplinks int // core-proxy ingress ports [hpr, hpr+uplinks)
	ports   int

	byteRate float64
	dur      float64
	look     float64
	interval float64
	monitor  int // local monitor port, -1 unless this cell owns it

	table       *flow.Table
	scheduler   sched.Scheduler
	clearsDirty bool
	validator   sched.Validator
	validate    bool

	gen          *workload.Mixed
	hasLocal     bool
	pendingLocal workload.Arrival
	localID      flow.ID

	inbox    []routedMsg
	inboxPos int
	outbox   eventq.Queue

	decision       []*flow.Flow
	nextCompletion float64
	now            float64
	nextSample     float64

	fct  *metrics.FCT
	thr  *metrics.Throughput
	pool flow.FreeList

	nextSeq uint64 // per-rack flow counter; see cellIDShift

	arrivedFlows   int
	completedFlows int
	arrivedBytes   float64
	departedBytes  float64
	decisions      int64
	schedNanos     int64

	traced    bool
	remoteSrc map[flow.ID]int // proxy-admitted flow -> global source
	samples   []cellSample
	dones     []cellDone

	// reg is the cell's private deterministic-plane registry; its
	// snapshot survives into Result.ShardObs. The resolved instruments
	// below keep the hot paths at one pointer-indirected add.
	reg            *obs.Registry
	cDecisions     *obs.Counter
	cMsgsSent      *obs.Counter
	cMsgsDelivered *obs.Counter
	cWindows       *obs.Counter

	// Wall-clock plane: the worker stamps each window's start/duration
	// (nanoseconds since the run origin); the coordinator reads them
	// after the barrier join, so no synchronization beyond the WaitGroup
	// is needed.
	winStartNs    int64
	winDurNs      int64
	busyNs        int64
	barrierWaitNs int64
	slowestWins   int

	err error
}

// errorf wraps a cell failure with replay context.
func (c *shardCell) errorf(format string, args ...any) error {
	return fmt.Errorf("fabricsim shard [cell=%d t=%gs decisions=%d]: %w",
		c.rack, c.now, c.decisions, fmt.Errorf(format, args...))
}

// allocID mints the next flow ID for traffic generated by this rack.
func (c *shardCell) allocID() flow.ID {
	c.nextSeq++
	return flow.ID(uint64(c.rack+1)<<cellIDShift | c.nextSeq)
}

// fetchLocal pulls the cell's workload stream until it finds the next
// intra-rack arrival, diverting every cross-rack arrival to the outbox
// at its delivery time (generation time plus the lookahead). Messages
// that could not arrive before the horizon are dropped, mirroring the
// centralized engine's refusal to admit arrivals at t >= Duration.
// IDs are allocated in stream order, local and cross-rack alike.
func (c *shardCell) fetchLocal() {
	for {
		a, ok := c.gen.Next()
		if !ok {
			c.hasLocal = false
			return
		}
		id := c.allocID()
		if a.Dst >= c.base && a.Dst < c.base+c.hpr {
			c.pendingLocal, c.localID, c.hasLocal = a, id, true
			return
		}
		deliver := a.Time + c.look
		if deliver >= c.dur {
			continue
		}
		c.outbox.Schedule(deliver, shardMsg{
			src: a.Src, dst: a.Dst, size: a.Size, class: a.Class,
			genTime: a.Time, id: id,
		})
		c.cMsgsSent.Inc()
	}
}

// addFlow admits one flow into the cell's table using local port
// indices; globalSrc is remembered for traced proxy flows so their
// completion events can name the true source port.
func (c *shardCell) addFlow(id flow.ID, src, dst int, class flow.Class, size, arrival float64, globalSrc int) {
	f := c.pool.Get(id, src, dst, class, size, arrival)
	c.table.Add(f)
	c.arrivedFlows++
	c.arrivedBytes += size
	if c.traced && src >= c.hpr {
		c.remoteSrc[id] = globalSrc
	}
}

// admitLocal admits the pending intra-rack arrival and advances the
// stream to the next one.
func (c *shardCell) admitLocal() {
	a := c.pendingLocal
	src, dst := a.Src-c.base, a.Dst-c.base
	if src < 0 || src >= c.hpr || dst < 0 || dst >= c.hpr || src == dst || a.Size <= 0 {
		c.err = c.errorf("generator produced invalid local arrival %+v", a)
		return
	}
	c.addFlow(c.localID, src, dst, a.Class, a.Size, a.Time, a.Src)
	c.fetchLocal()
}

// admitRemote admits a delivered cross-rack arrival through the
// core-proxy ingress port assigned to its source (globalSrc mod
// uplinks — the static core-switch hash of the multi-rooted tree).
func (c *shardCell) admitRemote(rm routedMsg) {
	m := rm.msg
	dst := m.dst - c.base
	if dst < 0 || dst >= c.hpr || m.size <= 0 {
		c.err = c.errorf("misrouted cross-rack arrival %+v", m)
		return
	}
	src := c.hpr + m.src%c.uplinks
	c.addFlow(m.id, src, dst, m.class, m.size, m.genTime, m.src)
	c.cMsgsDelivered.Inc()
}

// advanceTo drains the transmitting flows to time t at the access-link
// rate and refreshes the next-completion cache, exactly as the
// centralized engine does for fault-free runs.
func (c *shardCell) advanceTo(t float64) {
	if t < c.now {
		t = c.now
	}
	dt := t - c.now
	if dt > 0 && len(c.decision) > 0 {
		var drained float64
		minTime := math.Inf(1)
		for _, f := range c.decision {
			drained += c.table.Drain(f, dt*c.byteRate)
			if left := f.Remaining / c.byteRate; left < minTime {
				minTime = left
			}
		}
		if drained > 0 {
			c.thr.AddRange(c.now, t, drained)
			c.departedBytes += drained
		}
		c.nextCompletion = t + minTime
	}
	c.now = t
}

// collectCompletions removes finished flows, records FCTs, and buffers
// trace events for barrier replay.
func (c *shardCell) collectCompletions() bool {
	if len(c.decision) == 0 {
		return false
	}
	threshold := completionEps
	if adaptive := c.byteRate * c.now * 1e-14; adaptive > threshold {
		threshold = adaptive
	}
	kept := c.decision[:0]
	completed := false
	for _, f := range c.decision {
		if f.Remaining <= threshold {
			if residue := c.table.Drain(f, f.Remaining); residue > 0 {
				c.thr.AddBytes(c.now, residue)
				c.departedBytes += residue
			}
			c.table.Remove(f)
			c.completedFlows++
			fct := c.now - f.Arrival
			c.fct.Add(f.Class, fct)
			if c.traced {
				src := c.base + f.Src
				if f.Src >= c.hpr {
					src = c.remoteSrc[f.ID]
					delete(c.remoteSrc, f.ID)
				}
				c.dones = append(c.dones, cellDone{t: c.now, src: src, fct: fct, class: f.Class.String()})
			}
			c.pool.Put(f)
			completed = true
		} else {
			kept = append(kept, f)
		}
	}
	c.decision = kept
	return completed
}

// reschedule recomputes the cell's matching. Scheduling wall time is
// accumulated per cell (no shared histogram: cells run concurrently,
// and the per-decision latency histogram is machine-dependent anyway).
func (c *shardCell) reschedule() {
	start := time.Now()
	c.decision = c.scheduler.Schedule(c.table)
	c.schedNanos += time.Since(start).Nanoseconds()
	c.decisions++
	c.cDecisions.Inc()
	if c.clearsDirty {
		c.table.ClearDirty()
	}
	minTime := math.Inf(1)
	for _, f := range c.decision {
		if left := f.Remaining / c.byteRate; left < minTime {
			minTime = left
		}
	}
	c.nextCompletion = c.now + minTime
	if c.validate {
		if err := c.validator.ValidateDecision(c.ports, c.decision); err != nil {
			c.err = c.errorf("%w", err)
		}
	}
}

// sample records one queue tick into the cell's window buffer. The
// per-port maximum spans HOST ports only: core-proxy backlog is an
// artifact of the decomposition, not a host queue, though it does count
// toward the cell total (those bytes are genuinely in the fabric).
func (c *shardCell) sample() {
	s := cellSample{t: c.now, total: c.table.TotalBacklog()}
	if c.monitor >= 0 {
		s.monitor = c.table.IngressBacklog(c.monitor)
	}
	maxP, maxB := 0, c.table.IngressBacklog(0)
	for p := 1; p < c.hpr; p++ {
		if b := c.table.IngressBacklog(p); b > maxB {
			maxP, maxB = p, b
		}
	}
	s.maxPort, s.maxB = c.base+maxP, maxB
	c.samples = append(c.samples, s)
}

// runWindow advances the cell to capT, the current window's end. The
// event loop mirrors the centralized engine: completions strictly
// before admissions at one instant, local and delivered arrivals
// interleaved by (time, source cell), samples after admissions,
// rescheduling only when the flow population changed. Events at
// exactly capT are processed inside this window; window boundaries are
// global multiples of the lookahead, so the split is identical for
// every shard count.
func (c *shardCell) runWindow(capT float64) {
	c.cWindows.Inc()
	for {
		t := capT
		if c.hasLocal && c.pendingLocal.Time < t {
			t = c.pendingLocal.Time
		}
		if c.inboxPos < len(c.inbox) && c.inbox[c.inboxPos].deliver < t {
			t = c.inbox[c.inboxPos].deliver
		}
		if c.nextSample < t {
			t = c.nextSample
		}
		if !math.IsInf(c.nextCompletion, 1) && c.nextCompletion < t {
			t = c.nextCompletion
		}

		c.advanceTo(t)
		done := t >= c.dur
		reschedule := false
		if c.collectCompletions() {
			reschedule = true
		}
		for !done && c.err == nil {
			localReady := c.hasLocal && c.pendingLocal.Time <= c.now+1e-12
			inboxReady := c.inboxPos < len(c.inbox) && c.inbox[c.inboxPos].deliver <= c.now+1e-12
			if !localReady && !inboxReady {
				break
			}
			pickLocal := localReady
			if localReady && inboxReady {
				in := c.inbox[c.inboxPos]
				if in.deliver < c.pendingLocal.Time ||
					(in.deliver == c.pendingLocal.Time && in.srcCell < c.rack) {
					pickLocal = false
				}
			}
			if pickLocal {
				c.admitLocal()
			} else {
				c.admitRemote(c.inbox[c.inboxPos])
				c.inboxPos++
			}
			reschedule = true
		}
		if c.err != nil {
			return
		}
		if c.now >= c.nextSample {
			c.sample()
			c.nextSample += c.interval
		}
		if done {
			return
		}
		if reschedule {
			c.reschedule()
			if c.err != nil {
				return
			}
		}
		if t >= capT {
			return
		}
	}
}

// runDecomposed is the Shards >= 2 family: one cell per rack advancing
// in lockstep windows of the topology's CoreHopLatency, cross-rack
// arrivals exchanged at full barriers. Every barrier-side fold (message
// routing, trace replay, series and metric merges) runs on the calling
// goroutine in rack order, so results are a pure function of the
// configuration — independent of shard count and GOMAXPROCS.
func runDecomposed(cfg ShardConfig) (*Result, error) {
	topo := cfg.Topology
	tc := topo.Config()
	look := topo.CoreHopLatency()
	numCells := tc.Racks
	hpr := tc.HostsPerRack

	cells := make([]*shardCell, numCells)
	for r := range cells {
		opts := cfg.SchedOpts
		seedBase := opts.Seed
		if seedBase == 0 {
			seedBase = cfg.Seed
		}
		opts.Seed = runner.DeriveSeed(seedBase, r)
		scheduler, err := sched.New(cfg.Scheduler, opts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
		}
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              cfg.Load,
			QueryByteFraction: cfg.QueryByteFraction,
			Duration:          cfg.Duration,
			Seed:              runner.DeriveSeed(cfg.Seed, r),
			SrcLo:             r * hpr,
			SrcHi:             (r + 1) * hpr,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
		}
		c := &shardCell{
			rack:           r,
			base:           r * hpr,
			hpr:            hpr,
			uplinks:        tc.Cores,
			ports:          hpr + tc.Cores,
			byteRate:       topo.HostLinkBps() / 8,
			dur:            cfg.Duration,
			look:           look,
			interval:       cfg.SampleInterval,
			monitor:        -1,
			table:          flow.NewTable(hpr + tc.Cores),
			scheduler:      scheduler,
			clearsDirty:    !sched.IsDirtyConsumer(scheduler),
			validate:       cfg.ValidateDecisions,
			gen:            gen,
			nextCompletion: math.Inf(1),
			fct:            metrics.NewFCT(),
			thr:            metrics.NewThroughput(cfg.ThroughputBucket),
			traced:         cfg.Obs != nil,
		}
		if cfg.MonitorPort/hpr == r {
			c.monitor = cfg.MonitorPort % hpr
		}
		if c.traced {
			c.remoteSrc = make(map[flow.ID]int)
		}
		c.reg = obs.NewRegistry()
		c.cDecisions = c.reg.Counter("cell.decisions")
		c.cMsgsSent = c.reg.Counter("cell.msgs_sent")
		c.cMsgsDelivered = c.reg.Counter("cell.msgs_delivered")
		c.cWindows = c.reg.Counter("cell.windows")
		c.fetchLocal()
		cells[r] = c
	}

	res := &Result{
		FCT:           metrics.NewFCT(),
		Throughput:    metrics.NewThroughput(cfg.ThroughputBucket),
		Duration:      cfg.Duration,
		SchedulerName: cells[0].scheduler.Name(),
	}
	groups := cfg.Shards
	if groups > numCells {
		groups = numCells
	}
	// Wall-clock plane: every cell-window is stamped against this origin
	// (two clock reads per cell-window — cheap enough to keep always-on),
	// feeding the barrier-wait accounting, the imbalance report, and the
	// optional Timeline.
	origin := time.Now()
	windows := 0
	for w := 0; ; w++ {
		capT := float64(w+1) * look
		if capT > cfg.Duration {
			capT = cfg.Duration
		}
		runWindowParallel(cells, groups, capT, origin)
		for _, c := range cells {
			if c.err != nil {
				return nil, c.err
			}
		}
		windows++
		accountWindow(cells, w, cfg.Timeline)
		foldStart := time.Since(origin).Nanoseconds()
		if err := foldWindow(cells, res, cfg); err != nil {
			return nil, err
		}
		cfg.Timeline.Add(obs.TimelineSpan{
			Track: obs.TimelineCoordinator, Name: "fold", Window: w,
			StartNs: foldStart, DurNs: time.Since(origin).Nanoseconds() - foldStart,
		})
		if cfg.OnWindow != nil {
			p := ShardProgress{
				SimTime: capT, Duration: cfg.Duration,
				Window: w, Cells: numCells,
			}
			for _, c := range cells {
				p.Decisions += c.decisions
				p.ArrivedFlows += c.arrivedFlows
				p.CompletedFlows += c.completedFlows
			}
			cfg.OnWindow(p)
		}
		if capT >= cfg.Duration {
			break
		}
		routeStart := time.Since(origin).Nanoseconds()
		routeOutboxes(cells, float64(w+2)*look, hpr)
		cfg.Timeline.Add(obs.TimelineSpan{
			Track: obs.TimelineCoordinator, Name: "route", Window: w,
			StartNs: routeStart, DurNs: time.Since(origin).Nanoseconds() - routeStart,
		})
	}
	return mergeCells(cells, res, cfg, windows)
}

// accountWindow folds one window's wall-clock stamps into the per-cell
// busy/barrier-wait accumulators and, when a Timeline is attached,
// records the window's spans in rack order — a deterministic span
// sequence regardless of how the worker goroutines interleaved. The
// barrier is modeled as ending when the window's slowest cell finished
// (the coordinator's own fold work is tracked separately).
func accountWindow(cells []*shardCell, w int, tl *obs.Timeline) {
	windowEnd := int64(0)
	slowest := 0
	for i, c := range cells {
		if end := c.winStartNs + c.winDurNs; end > windowEnd {
			windowEnd = end
			slowest = i
		}
	}
	cells[slowest].slowestWins++
	for _, c := range cells {
		end := c.winStartNs + c.winDurNs
		wait := windowEnd - end
		c.busyNs += c.winDurNs
		c.barrierWaitNs += wait
		tl.Add(obs.TimelineSpan{Track: c.rack, Name: "window", Window: w, StartNs: c.winStartNs, DurNs: c.winDurNs})
		tl.Add(obs.TimelineSpan{Track: c.rack, Name: "barrier", Window: w, StartNs: end, DurNs: wait})
	}
}

// runWindowParallel executes one window across the cells, grouped onto
// up to `groups` goroutines in contiguous rack-order spans. Cells share
// nothing mutable during a window, so the only synchronization is the
// join; the grouping affects wall clock only, never results.
func runWindowParallel(cells []*shardCell, groups int, capT float64, origin time.Time) {
	if groups <= 1 {
		for _, c := range cells {
			c.runTimedWindow(capT, origin)
		}
		return
	}
	per := (len(cells) + groups - 1) / groups
	var wg sync.WaitGroup
	for lo := 0; lo < len(cells); lo += per {
		hi := lo + per
		if hi > len(cells) {
			hi = len(cells)
		}
		wg.Add(1)
		go func(part []*shardCell) {
			defer wg.Done()
			for _, c := range part {
				c.runTimedWindow(capT, origin)
			}
		}(cells[lo:hi])
	}
	wg.Wait()
}

// runTimedWindow stamps one window's wall-clock start and duration
// around runWindow for the busy/barrier-wait accounting.
func (c *shardCell) runTimedWindow(capT float64, origin time.Time) {
	c.winStartNs = time.Since(origin).Nanoseconds()
	c.runWindow(capT)
	c.winDurNs = time.Since(origin).Nanoseconds() - c.winStartNs
}

// routeOutboxes moves every cross-rack message deliverable before
// `horizon` (exclusive — the end of the NEXT window) from source
// outboxes into destination inboxes in global (delivery time, source
// cell, outbox order) order. By the conservative-lookahead argument,
// every such message already exists: a message delivered before
// (w+2)·L was generated before (w+1)·L, inside a window that has fully
// run. Later barriers only append later deliveries, so inboxes stay
// sorted under positional consumption.
func routeOutboxes(cells []*shardCell, horizon float64, hpr int) {
	for _, c := range cells {
		if c.inboxPos > 0 {
			n := copy(c.inbox, c.inbox[c.inboxPos:])
			c.inbox = c.inbox[:n]
			c.inboxPos = 0
		}
	}
	var routed []routedMsg
	for ci, c := range cells {
		for {
			dt, ok := c.outbox.PeekTime()
			if !ok || dt >= horizon {
				break
			}
			ev, t, _ := c.outbox.Pop()
			routed = append(routed, routedMsg{deliver: t, srcCell: ci, msg: ev.(shardMsg)})
		}
	}
	sort.SliceStable(routed, func(i, j int) bool {
		if routed[i].deliver != routed[j].deliver {
			return routed[i].deliver < routed[j].deliver
		}
		return routed[i].srcCell < routed[j].srcCell
	})
	for _, rm := range routed {
		dst := cells[rm.msg.dst/hpr]
		dst.inbox = append(dst.inbox, rm)
	}
}

// foldWindow merges the window's per-cell sample ticks into the global
// series and replays buffered trace events in deterministic order:
// completions sorted by (time, cell, cell-local sequence), interleaved
// before each tick's sample.queue / sample.total / sample.maxport
// triplet exactly as the centralized engine orders them.
func foldWindow(cells []*shardCell, res *Result, cfg ShardConfig) error {
	nticks := len(cells[0].samples)
	for _, c := range cells {
		if len(c.samples) != nticks {
			return fmt.Errorf("fabricsim shard: cell %d recorded %d sample ticks, cell 0 recorded %d",
				c.rack, len(c.samples), nticks)
		}
	}
	var merged []cellDone
	if cfg.Obs != nil {
		for _, c := range cells {
			merged = append(merged, c.dones...)
			c.dones = c.dones[:0]
		}
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].t < merged[j].t })
	}
	di := 0
	for k := 0; k < nticks; k++ {
		t := cells[0].samples[k].t
		var queue, total float64
		maxPort, maxB := cells[0].samples[k].maxPort, cells[0].samples[k].maxB
		for _, c := range cells {
			s := c.samples[k]
			total += s.total
			if c.monitor >= 0 {
				queue = s.monitor
			}
			if s.maxB > maxB {
				maxPort, maxB = s.maxPort, s.maxB
			}
		}
		for di < len(merged) && merged[di].t <= t {
			cfg.Obs.Emit(merged[di].t, "flow.done", merged[di].src, merged[di].fct, merged[di].class)
			di++
		}
		res.QueueSeries.Add(t, queue)
		res.TotalBacklogSeries.Add(t, total)
		res.MaxPortSeries.Add(t, maxB)
		cfg.Obs.Emit(t, "sample.queue", cfg.MonitorPort, queue, "")
		cfg.Obs.Emit(t, "sample.total", -1, total, "")
		cfg.Obs.Emit(t, "sample.maxport", maxPort, maxB, "")
	}
	for di < len(merged) {
		cfg.Obs.Emit(merged[di].t, "flow.done", merged[di].src, merged[di].fct, merged[di].class)
		di++
	}
	for _, c := range cells {
		c.samples = c.samples[:0]
	}
	return nil
}

// mergeCells folds the per-cell metrics into the global Result in rack
// order — the fixed fold order that makes every float accumulation
// (FCT sums, sample order, throughput buckets) a pure function of the
// per-cell streams — and seals the instrumentation registry the way
// the centralized finish() does.
func mergeCells(cells []*shardCell, res *Result, cfg ShardConfig, windows int) (*Result, error) {
	reg := cfg.Obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var repairs, rebuilds, poolReuses int64
	var poolSize, highWater int
	for _, c := range cells {
		res.FCT.Merge(c.fct)
		res.Throughput.Merge(c.thr)
		res.ArrivedFlows += c.arrivedFlows
		res.CompletedFlows += c.completedFlows
		res.ArrivedBytes += c.arrivedBytes
		res.DepartedBytes += c.departedBytes
		res.LeftoverBytes += c.table.TotalBacklog()
		res.LeftoverFlows += c.table.NumFlows()
		res.Decisions += c.decisions
		res.SchedNanos += c.schedNanos
		ist := sched.IndexStatsOf(c.scheduler)
		repairs += ist.Repairs
		rebuilds += ist.Rebuilds
		if hw := c.gen.QueueHighWater(); hw > highWater {
			highWater = hw
		}
		poolReuses += c.pool.Reuses()
		poolSize += c.pool.Len()
	}
	reg.Counter("fabric.decisions").Add(res.Decisions)
	reg.Counter("fabric.sched_nanos").Add(res.SchedNanos)
	reg.Counter("fabric.arrived_flows").Add(int64(res.ArrivedFlows))
	reg.Counter("fabric.completed_flows").Add(int64(res.CompletedFlows))
	if repairs+rebuilds > 0 {
		reg.Counter("sched.index_repairs").Add(repairs)
		reg.Counter("sched.index_rebuilds").Add(rebuilds)
	}
	reg.Gauge("eventq.high_water").Set(float64(highWater))
	reg.Counter("flow.pool_reuses").Add(poolReuses)
	reg.Gauge("flow.pool_size").Set(float64(poolSize))

	// Per-cell attribution: seal each cell's deterministic-plane registry
	// (plus its wall-clock busy/wait counters, filtered out of digests by
	// obs.IsWallClock) and fold the snapshots into the Result in rack
	// order. The global registry gets the wall-clock totals and the
	// Result gets the imbalance report.
	im := &ShardImbalance{
		Cells:          len(cells),
		Windows:        windows,
		BusyNs:         make([]int64, len(cells)),
		BarrierWaitNs:  make([]int64, len(cells)),
		SlowestWindows: make([]int, len(cells)),
	}
	var totalBusy, totalWait, maxBusy int64
	for i, c := range cells {
		c.reg.Gauge("cell.eventq_high_water").Set(float64(c.gen.QueueHighWater()))
		c.reg.Counter("wall.busy_ns").Add(c.busyNs)
		c.reg.Counter("wall.barrier_wait_ns").Add(c.barrierWaitNs)
		c.reg.Counter("wall.sched_nanos").Add(c.schedNanos)
		res.ShardObs = append(res.ShardObs, c.reg.Snapshot())
		im.BusyNs[i] = c.busyNs
		im.BarrierWaitNs[i] = c.barrierWaitNs
		im.SlowestWindows[i] = c.slowestWins
		if c.slowestWins > im.SlowestWindows[im.SlowestCell] {
			im.SlowestCell = i
		}
		totalBusy += c.busyNs
		totalWait += c.barrierWaitNs
		if c.busyNs > maxBusy {
			maxBusy = c.busyNs
		}
	}
	if totalBusy+totalWait > 0 {
		im.BarrierWaitFraction = float64(totalWait) / float64(totalBusy+totalWait)
	}
	if totalBusy > 0 {
		im.SkewRatio = float64(maxBusy) / (float64(totalBusy) / float64(len(cells)))
	}
	res.Imbalance = im
	reg.Counter("wall.busy_ns").Add(totalBusy)
	reg.Counter("wall.barrier_wait_ns").Add(totalWait)

	res.Obs = reg.Snapshot()
	return res, nil
}
