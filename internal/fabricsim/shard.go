package fabricsim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"basrpt/internal/eventq"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/topology"
	"basrpt/internal/workload"
)

// ErrShardConfig reports an invalid sharded-run configuration.
var ErrShardConfig = errors.New("fabricsim: invalid shard configuration")

// ErrShardUnsupported reports a ShardConfig feature the decomposed
// (Shards >= 2) executor does not implement. Checkpointing is the one
// such feature: its documented path is to run the same configuration at
// Shards == 1, where the centralized engine's full checkpoint/restore
// machinery (Checkpoint, Resume, CheckpointSink) applies unchanged.
var ErrShardUnsupported = errors.New("fabricsim: unsupported in decomposed mode")

// DefaultBarrierEvery is the decomposed engine's default window batch:
// how many consecutive lookahead windows every cell advances through
// between coordinator barriers when ShardConfig.BarrierEvery is zero.
// Results are byte-identical for every batch size; the knob trades
// barrier-synchronization overhead against cross-rack routing latency
// tolerance (messages are still delivered on the exact same simulated
// clock — see the prefetch contract on shardCell.prefetch).
const DefaultBarrierEvery = 8

// DefaultRepackEvery is the default imbalance-repack period in barriers:
// how often the worker pool re-packs cells onto workers by measured busy
// time when ShardConfig.RepackEvery is zero. The schedule is keyed on
// the barrier index — never on wall clock — so repacking changes which
// goroutine runs a cell but never what the cell computes.
const DefaultRepackEvery = 16

// timeEps is the simulated-clock slack used when matching event times:
// arrivals within timeEps of `now` are admitted at `now` (identical to
// the centralized engine's admission slack).
const timeEps = 1e-12

// ShardConfig parameterizes a sharded fabric run. It is the topology-
// aware sibling of Config: instead of receiving pre-built scheduler and
// generator instances, it receives the recipe (registry name, options,
// workload parameters) so the executor can instantiate one copy per
// shard cell.
//
// Determinism comes in two families, both byte-stable across machines
// and GOMAXPROCS settings:
//
//   - Shards == 1 runs the centralized engine — one global event loop,
//     one fabric-wide workload stream — and is byte-identical to
//     building the same Sim by hand (the pre-refactor behavior).
//   - Shards >= 2 runs the decomposed conservative-PDES engine: one
//     cell per rack, cross-rack arrivals delivered after the topology's
//     CoreHopLatency lookahead. Results are byte-identical across ALL
//     shard counts >= 2, ALL BarrierEvery batch sizes, ALL Workers
//     counts, and ALL RepackEvery schedules — those knobs only choose
//     how rack cells are grouped onto worker goroutines and how often
//     the goroutines synchronize, never the physics.
//
// The two families are not byte-identical to each other: decomposition
// replaces the fabric-global crossbar matching with per-rack matchings
// (uplink traffic enters the destination rack through core-proxy
// ingress ports), which is the modeling change that makes 4k+ host
// fabrics tractable.
type ShardConfig struct {
	// Topology shapes the fabric: rack boundaries are the decomposition
	// units and CoreHopLatency is the conservative lookahead.
	Topology *topology.Topology
	// Scheduler is the sched registry name (see sched.Names).
	Scheduler string
	// SchedOpts carries the discipline parameters. A zero Seed inherits
	// the run Seed; in decomposed mode each cell's scheduler derives a
	// private seed from it so RNG disciplines stay grouping-invariant.
	SchedOpts sched.Options
	// Load is the per-port offered load in (0, 1).
	Load float64
	// QueryByteFraction is the query byte share; 0 selects the workload
	// default.
	QueryByteFraction float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// SampleInterval is the queue-sample spacing (default Duration/500).
	SampleInterval float64
	// ThroughputBucket is the throughput series bucket width (default
	// Duration/50).
	ThroughputBucket float64
	// MonitorPort is the global host id whose ingress backlog becomes
	// QueueSeries.
	MonitorPort int
	// Seed drives the workload (and, via derivation, every per-cell
	// stream). Must be nonzero.
	Seed uint64
	// Shards selects the engine family: 1 is the centralized engine,
	// >= 2 the decomposed engine. In decomposed mode it also bounds the
	// worker pool: the engine runs min(Shards, racks, Workers) persistent
	// worker goroutines (Workers defaulting to GOMAXPROCS).
	Shards int
	// BarrierEvery is the decomposed engine's window batch: cells advance
	// through this many consecutive lookahead windows between coordinator
	// barriers. 0 selects DefaultBarrierEvery; 1 reproduces the dense
	// per-window barrier schedule. Results are byte-identical for every
	// value >= 1 (wall clock only). Ignored at Shards == 1.
	BarrierEvery int
	// Workers caps the decomposed engine's persistent worker goroutines;
	// 0 defaults to GOMAXPROCS. The effective pool size is
	// min(Shards, racks, Workers). Wall-clock plane only. Ignored at
	// Shards == 1.
	Workers int
	// RepackEvery is the imbalance-repack period in barriers: every
	// RepackEvery barriers the pool re-packs cells onto workers by
	// cumulative measured busy time (greedy longest-processing-time).
	// 0 selects DefaultRepackEvery; negative disables repacking. The
	// schedule is keyed on the barrier index, so physics are untouched.
	// Ignored at Shards == 1.
	RepackEvery int
	// Obs, when non-nil, receives the run's trace. In decomposed mode
	// per-cell events are buffered during each batch and replayed
	// window-by-window in deterministic (time, cell, sequence) merge
	// order at the barrier, so traced runs stay byte-identical across
	// shard counts and batch sizes.
	Obs *obs.Obs
	// ValidateDecisions re-checks the crossbar constraint on every
	// decision (per cell in decomposed mode).
	ValidateDecisions bool
	// CheckpointEvery / CheckpointSink configure periodic checkpoints.
	// Supported only at Shards == 1; the decomposed engine returns
	// ErrShardUnsupported (see that error for the merge-to-1-shard
	// path).
	CheckpointEvery float64
	// CheckpointSink receives each checkpoint; see Config.CheckpointSink.
	CheckpointSink func(data []byte, simTime float64) error
	// Timeline, when non-nil, records wall-clock spans for the decomposed
	// engine — per cell one "window" span per lookahead window plus one
	// "batch" and one "barrier" span per barrier, and coordinator
	// "fold"/"route" spans per barrier — for Chrome trace_event export
	// (obs.Timeline.WriteChromeTrace). Span ORDER is deterministic (rack
	// order within each barrier); span times are wall-clock measurements.
	// Ignored at Shards == 1.
	Timeline *obs.Timeline
	// OnWindow, when non-nil, is called on the coordinating goroutine
	// after every decomposed barrier with the run's live position — the
	// sharded engine's heartbeat for ops endpoints. Wall-clock plane
	// only: results are byte-identical whether or not it is set. Ignored
	// at Shards == 1 (use Config.OnProgress through the centralized path
	// instead).
	OnWindow func(ShardProgress)
	// OnProgress, when non-nil, is forwarded to the centralized engine's
	// sample-tick heartbeat (Config.OnProgress). Wall-clock plane only.
	// Ignored at Shards >= 2 (use OnWindow there).
	OnProgress func(RunProgress)
}

// ShardProgress is the live heartbeat handed to ShardConfig.OnWindow
// after each decomposed barrier.
type ShardProgress struct {
	// SimTime is the barrier's end on the simulated clock; Duration the
	// configured horizon.
	SimTime  float64
	Duration float64
	// Window is the zero-based index of the last lookahead window the
	// barrier completed; Barrier the zero-based barrier index. With
	// window batching one barrier completes several windows, so Window
	// advances by BarrierEvery per beat.
	Window  int
	Barrier int
	// WindowsPerBarrier is the cumulative mean batch width so far.
	WindowsPerBarrier float64
	// Cells is the number of PDES cells advancing in lockstep and
	// Workers the persistent worker-goroutine count executing them.
	Cells   int
	Workers int
	// Decisions, ArrivedFlows, and CompletedFlows are cumulative sums
	// over all cells at the barrier.
	Decisions      int64
	ArrivedFlows   int
	CompletedFlows int
	// CellBusyNs and CellWaitNs are per-cell cumulative wall-clock
	// busy/barrier-wait nanoseconds (copies; safe to retain). Wall-clock
	// plane only.
	CellBusyNs []int64
	CellWaitNs []int64
}

// ShardImbalance is the decomposed engine's post-run wall-clock
// attribution report: how the run's real time split between cell work
// and barrier waiting, and which cell the others waited on. Everything
// here is measured on the host machine — wall-clock plane, never part
// of a deterministic artifact.
type ShardImbalance struct {
	// Cells is the number of PDES cells (racks); Windows the number of
	// lookahead windows the run advanced through; Barriers the number of
	// coordinator barriers that synchronized them (Windows/BarrierEvery,
	// up to rounding); WindowsPerBarrier their ratio; Workers the
	// persistent worker-goroutine count.
	Cells             int     `json:"cells"`
	Windows           int     `json:"windows"`
	Barriers          int     `json:"barriers"`
	WindowsPerBarrier float64 `json:"windows_per_barrier"`
	Workers           int     `json:"workers"`
	// BusyNs[i] is cell i's total in-window execution time and
	// BarrierWaitNs[i] the wall time between cell i finishing its batch
	// and the barrier releasing (this includes time the cell's own
	// worker spent running sibling cells — see WorkerWaitNs for the true
	// parallel loss); SlowestBarriers[i] counts barriers cell i finished
	// last.
	BusyNs          []int64 `json:"busy_ns"`
	BarrierWaitNs   []int64 `json:"barrier_wait_ns"`
	SlowestBarriers []int   `json:"slowest_barriers"`
	// WorkerBusyNs[g] is worker g's total batch-execution wall time and
	// WorkerWaitNs[g] its total time blocked at barriers for slower
	// workers — the parallel-efficiency ledger.
	WorkerBusyNs []int64 `json:"worker_busy_ns"`
	WorkerWaitNs []int64 `json:"worker_wait_ns"`
	// SlowestCell is the cell that finished last in the most barriers
	// (lowest rack wins ties).
	SlowestCell int `json:"slowest_cell"`
	// BarrierWaitFraction is total worker barrier wait over total worker
	// (busy + wait) time — the fraction of the pool's wall clock lost to
	// the lockstep, in [0, 1]. 0 when a single worker runs every cell.
	BarrierWaitFraction float64 `json:"barrier_wait_fraction"`
	// CellWaitFraction is the per-cell analogue (cell gap time over cell
	// busy + gap). It charges sibling-cell serialization on a shared
	// worker as waiting, so it approaches (cells-1)/cells on small
	// machines regardless of scheduling efficiency — kept for continuity
	// with the pre-batching reports (EXPERIMENTS.md E17).
	CellWaitFraction float64 `json:"cell_wait_fraction"`
	// SkewRatio is the maximum per-cell busy time over the mean — 1.0
	// for a perfectly balanced fabric.
	SkewRatio float64 `json:"skew_ratio"`
}

// String renders a one-paragraph imbalance summary for run footers.
func (im *ShardImbalance) String() string {
	if im == nil || im.Cells == 0 {
		return "imbalance: no decomposed windows recorded"
	}
	var totalBusy, slowBusy int64
	for i := range im.BusyNs {
		totalBusy += im.BusyNs[i]
		if i == im.SlowestCell {
			slowBusy = im.BusyNs[i]
		}
	}
	var workerBusy, workerWait int64
	for g := range im.WorkerBusyNs {
		workerBusy += im.WorkerBusyNs[g]
		workerWait += im.WorkerWaitNs[g]
	}
	return fmt.Sprintf(
		"imbalance: %d cells x %d windows over %d barriers (%.1f windows/barrier, %d workers); busy %.1fms; worker wait %.1fms (%.1f%% of pool time); skew ratio %.2f; slowest cell %d (last at %d barriers, busy %.1fms)",
		im.Cells, im.Windows, im.Barriers, im.WindowsPerBarrier, im.Workers,
		float64(totalBusy)/1e6, float64(workerWait)/1e6, 100*im.BarrierWaitFraction,
		im.SkewRatio, im.SlowestCell, im.SlowestBarriers[im.SlowestCell], float64(slowBusy)/1e6)
}

// cellIDShift positions the source-rack tag inside a decomposed flow ID:
// the low 40 bits count flows generated by the rack, the bits above tag
// the rack (+1 so no decomposed ID collides with the centralized
// engine's small sequential IDs). IDs are a pure function of (rack,
// generation order), so every table and scheduler tie-break that reads
// them is grouping-invariant.
const cellIDShift = 40

// RunShard executes one sharded fabric run. See ShardConfig for the
// engine families and their determinism contract.
func RunShard(cfg ShardConfig) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrShardConfig)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shards %d < 1", ErrShardConfig, cfg.Shards)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g <= 0", ErrShardConfig, cfg.Duration)
	}
	if cfg.Load <= 0 || cfg.Load >= 1 {
		return nil, fmt.Errorf("%w: load %g outside (0, 1)", ErrShardConfig, cfg.Load)
	}
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("%w: seed must be nonzero", ErrShardConfig)
	}
	if cfg.BarrierEvery < 0 {
		return nil, fmt.Errorf("%w: barrier-every %d < 0", ErrShardConfig, cfg.BarrierEvery)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers %d < 0", ErrShardConfig, cfg.Workers)
	}
	hosts := cfg.Topology.NumHosts()
	if cfg.MonitorPort < 0 || cfg.MonitorPort >= hosts {
		return nil, fmt.Errorf("%w: monitor port %d outside [0, %d)", ErrShardConfig, cfg.MonitorPort, hosts)
	}
	if cfg.QueryByteFraction == 0 {
		cfg.QueryByteFraction = workload.DefaultQueryByteFraction
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = cfg.Duration / 500
	}
	if cfg.ThroughputBucket <= 0 {
		cfg.ThroughputBucket = cfg.Duration / 50
	}
	if cfg.Shards == 1 {
		return runCentralized(cfg)
	}
	if cfg.CheckpointEvery > 0 || cfg.CheckpointSink != nil {
		return nil, fmt.Errorf("%w: checkpointing requires Shards == 1", ErrShardUnsupported)
	}
	return runDecomposed(cfg)
}

// runCentralized is the Shards == 1 family: the same construction a
// direct fabricsim.New caller performs, so results (digest and trace
// alike) are byte-identical to the pre-refactor engine.
func runCentralized(cfg ShardConfig) (*Result, error) {
	opts := cfg.SchedOpts
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	scheduler, err := sched.New(cfg.Scheduler, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
	}
	gen, err := workload.NewMixed(workload.MixedConfig{
		Topology:          cfg.Topology,
		Load:              cfg.Load,
		QueryByteFraction: cfg.QueryByteFraction,
		Duration:          cfg.Duration,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
	}
	sim, err := New(Config{
		Hosts:             cfg.Topology.NumHosts(),
		LinkBps:           cfg.Topology.HostLinkBps(),
		Scheduler:         scheduler,
		Generator:         gen,
		Duration:          cfg.Duration,
		SampleInterval:    cfg.SampleInterval,
		MonitorPort:       cfg.MonitorPort,
		ThroughputBucket:  cfg.ThroughputBucket,
		ValidateDecisions: cfg.ValidateDecisions,
		Seed:              cfg.Seed,
		Obs:               cfg.Obs,
		CheckpointEvery:   cfg.CheckpointEvery,
		CheckpointSink:    cfg.CheckpointSink,
		OnProgress:        cfg.OnProgress,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// shardMsg is a cross-rack flow arrival in flight between cells. Ports
// are global host ids; genTime is the arrival time at the source (the
// FCT clock starts there, so the core hop is part of the flow's FCT).
type shardMsg struct {
	src, dst int
	size     float64
	class    flow.Class
	genTime  float64
	id       flow.ID
}

// routedMsg is a shardMsg stamped with its delivery time and source
// cell — the (time, shard id, seq) merge key that fixes the global
// admission order (seq is the source outbox's FIFO order, preserved by
// the stable sort in routeOutboxes).
type routedMsg struct {
	deliver float64
	srcCell int
	msg     shardMsg
}

// cellSample is one queue-sample tick recorded by a cell, folded into
// the global series at the barrier.
type cellSample struct {
	t       float64
	monitor float64 // monitored port's backlog; owner cell only
	total   float64 // cell backlog including core-proxy ports
	maxPort int     // global id of the cell's worst HOST ingress port
	maxB    float64
}

// cellDone is a buffered flow.done trace event; the barrier replays
// them in (time, cell, seq) order so traced decomposed runs stay
// byte-identical across shard counts.
type cellDone struct {
	t     float64
	src   int // global ingress port
	fct   float64
	class string
}

// localArrival is one prefetched intra-rack arrival waiting in a cell's
// local queue, carrying the flow ID minted at generation time (IDs are
// allocated in stream order, local and cross-rack alike, so prefetch
// depth never changes an ID).
type localArrival struct {
	a  workload.Arrival
	id flow.ID
}

// shardCell is one rack's private simulator: its own VOQ table (rack
// hosts plus one core-proxy ingress port per core switch), scheduler
// instance, workload stream, metrics, and flow pool. Cells only ever
// touch their own state inside a batch; all cross-cell traffic moves
// through the outbox/inbox exchange at barriers on the main goroutine.
type shardCell struct {
	rack    int
	base    int // global id of the rack's first host
	hpr     int // local host ports [0, hpr)
	uplinks int // core-proxy ingress ports [hpr, hpr+uplinks)
	ports   int

	byteRate float64
	dur      float64
	look     float64
	interval float64
	monitor  int // local monitor port, -1 unless this cell owns it

	table       *flow.Table
	scheduler   sched.Scheduler
	clearsDirty bool
	validator   sched.Validator
	validate    bool

	// Workload prefetch state: the cell pulls its stream eagerly up to
	// each batch's horizon (see prefetch), queueing intra-rack arrivals
	// in localQ (consumed positionally) and diverting cross-rack ones to
	// the outbox. genT is the time of the last pulled arrival; genDone
	// marks stream exhaustion.
	gen      *workload.Mixed
	localQ   []localArrival
	localPos int
	genT     float64
	genDone  bool

	inbox    []routedMsg
	inboxPos int
	outbox   eventq.Queue

	decision       []*flow.Flow
	nextCompletion float64
	now            float64
	nextSample     float64

	fct  *metrics.FCT
	thr  *metrics.Throughput
	pool flow.FreeList

	nextSeq uint64 // per-rack flow counter; see cellIDShift

	arrivedFlows   int
	completedFlows int
	arrivedBytes   float64
	departedBytes  float64
	decisions      int64
	schedNanos     int64

	traced    bool
	remoteSrc map[flow.ID]int // proxy-admitted flow -> global source
	samples   []cellSample
	dones     []cellDone
	// sampleMarks/doneMarks record the cumulative samples/dones length at
	// the end of each window in the current batch, so the barrier fold
	// can replay trace events window-by-window — byte-identical to the
	// dense per-window barrier schedule.
	sampleMarks []int
	doneMarks   []int

	// reg is the cell's private deterministic-plane registry; its
	// snapshot survives into Result.ShardObs. The resolved instruments
	// below keep the hot paths at one pointer-indirected add.
	reg            *obs.Registry
	cDecisions     *obs.Counter
	cMsgsSent      *obs.Counter
	cMsgsDelivered *obs.Counter
	cWindows       *obs.Counter

	// Wall-clock plane: the worker stamps each window's start/duration
	// (nanoseconds since the run origin) into winStarts/winDurs; the
	// coordinator reads them after the barrier join, so no extra
	// synchronization beyond the join is needed.
	winStarts       []int64
	winDurs         []int64
	busyNs          int64
	barrierWaitNs   int64
	slowestBarriers int

	err error
}

// errorf wraps a cell failure with replay context.
func (c *shardCell) errorf(format string, args ...any) error {
	return fmt.Errorf("fabricsim shard [cell=%d t=%gs decisions=%d]: %w",
		c.rack, c.now, c.decisions, fmt.Errorf(format, args...))
}

// allocID mints the next flow ID for traffic generated by this rack.
func (c *shardCell) allocID() flow.ID {
	c.nextSeq++
	return flow.ID(uint64(c.rack+1)<<cellIDShift | c.nextSeq)
}

// prefetch pulls the cell's workload stream through time `to`: every
// intra-rack arrival is queued on localQ (with its stream-order flow
// ID) and every cross-rack arrival is diverted to the outbox at its
// delivery time (generation time plus the lookahead; messages that
// could not arrive before the horizon are dropped, mirroring the
// centralized engine's refusal to admit arrivals at t >= Duration).
//
// This is the sparse-barrier enabler: calling prefetch(batchEnd) before
// a batch guarantees that any cross-rack message materialized LATER —
// by a deeper prefetch or by the next batch — was generated at or after
// batchEnd and therefore delivers at or after batchEnd + lookahead,
// strictly beyond every window the batch will run. Skipped intra-batch
// barriers consequently had nothing to route, and one routing pass with
// the batch-end horizon replaces them exactly.
//
// Pull timing never changes the physics: IDs are minted in stream
// order, the generator's internal event calendar is caller-agnostic,
// and both queues are consumed by simulated time, so every batch size
// admits every arrival at the identical instant.
func (c *shardCell) prefetch(to float64) {
	if c.localPos > 0 {
		n := copy(c.localQ, c.localQ[c.localPos:])
		c.localQ = c.localQ[:n]
		c.localPos = 0
	}
	// The admission slack (timeEps) is part of the horizon: an arrival
	// within timeEps past a window cap is admitted inside that window,
	// so it must be materialized with the batch that runs the window.
	for !c.genDone && c.genT <= to+timeEps {
		a, ok := c.gen.Next()
		if !ok {
			c.genDone = true
			return
		}
		c.genT = a.Time
		id := c.allocID()
		if a.Dst >= c.base && a.Dst < c.base+c.hpr {
			c.localQ = append(c.localQ, localArrival{a: a, id: id})
			continue
		}
		deliver := a.Time + c.look
		if deliver >= c.dur {
			continue
		}
		c.outbox.Schedule(deliver, shardMsg{
			src: a.Src, dst: a.Dst, size: a.Size, class: a.Class,
			genTime: a.Time, id: id,
		})
		c.cMsgsSent.Inc()
	}
}

// addFlow admits one flow into the cell's table using local port
// indices; globalSrc is remembered for traced proxy flows so their
// completion events can name the true source port.
func (c *shardCell) addFlow(id flow.ID, src, dst int, class flow.Class, size, arrival float64, globalSrc int) {
	f := c.pool.Get(id, src, dst, class, size, arrival)
	c.table.Add(f)
	c.arrivedFlows++
	c.arrivedBytes += size
	if c.traced && src >= c.hpr {
		c.remoteSrc[id] = globalSrc
	}
}

// admitLocal admits the local queue's head arrival.
func (c *shardCell) admitLocal() {
	la := c.localQ[c.localPos]
	c.localPos++
	a := la.a
	src, dst := a.Src-c.base, a.Dst-c.base
	if src < 0 || src >= c.hpr || dst < 0 || dst >= c.hpr || src == dst || a.Size <= 0 {
		c.err = c.errorf("generator produced invalid local arrival %+v", a)
		return
	}
	c.addFlow(la.id, src, dst, a.Class, a.Size, a.Time, a.Src)
}

// admitRemote admits a delivered cross-rack arrival through the
// core-proxy ingress port assigned to its source (globalSrc mod
// uplinks — the static core-switch hash of the multi-rooted tree).
func (c *shardCell) admitRemote(rm routedMsg) {
	m := rm.msg
	dst := m.dst - c.base
	if dst < 0 || dst >= c.hpr || m.size <= 0 {
		c.err = c.errorf("misrouted cross-rack arrival %+v", m)
		return
	}
	src := c.hpr + m.src%c.uplinks
	c.addFlow(m.id, src, dst, m.class, m.size, m.genTime, m.src)
	c.cMsgsDelivered.Inc()
}

// advanceTo drains the transmitting flows to time t at the access-link
// rate and refreshes the next-completion cache, exactly as the
// centralized engine does for fault-free runs.
func (c *shardCell) advanceTo(t float64) {
	if t < c.now {
		t = c.now
	}
	dt := t - c.now
	if dt > 0 && len(c.decision) > 0 {
		var drained float64
		minTime := math.Inf(1)
		for _, f := range c.decision {
			drained += c.table.Drain(f, dt*c.byteRate)
			if left := f.Remaining / c.byteRate; left < minTime {
				minTime = left
			}
		}
		if drained > 0 {
			c.thr.AddRange(c.now, t, drained)
			c.departedBytes += drained
		}
		c.nextCompletion = t + minTime
	}
	c.now = t
}

// collectCompletions removes finished flows, records FCTs, and buffers
// trace events for barrier replay.
func (c *shardCell) collectCompletions() bool {
	if len(c.decision) == 0 {
		return false
	}
	threshold := completionEps
	if adaptive := c.byteRate * c.now * 1e-14; adaptive > threshold {
		threshold = adaptive
	}
	kept := c.decision[:0]
	completed := false
	for _, f := range c.decision {
		if f.Remaining <= threshold {
			if residue := c.table.Drain(f, f.Remaining); residue > 0 {
				c.thr.AddBytes(c.now, residue)
				c.departedBytes += residue
			}
			c.table.Remove(f)
			c.completedFlows++
			fct := c.now - f.Arrival
			c.fct.Add(f.Class, fct)
			if c.traced {
				src := c.base + f.Src
				if f.Src >= c.hpr {
					src = c.remoteSrc[f.ID]
					delete(c.remoteSrc, f.ID)
				}
				c.dones = append(c.dones, cellDone{t: c.now, src: src, fct: fct, class: f.Class.String()})
			}
			c.pool.Put(f)
			completed = true
		} else {
			kept = append(kept, f)
		}
	}
	c.decision = kept
	return completed
}

// reschedule recomputes the cell's matching. Scheduling wall time is
// accumulated per cell (no shared histogram: cells run concurrently,
// and the per-decision latency histogram is machine-dependent anyway).
func (c *shardCell) reschedule() {
	start := time.Now()
	c.decision = c.scheduler.Schedule(c.table)
	c.schedNanos += time.Since(start).Nanoseconds()
	c.decisions++
	c.cDecisions.Inc()
	if c.clearsDirty {
		c.table.ClearDirty()
	}
	minTime := math.Inf(1)
	for _, f := range c.decision {
		if left := f.Remaining / c.byteRate; left < minTime {
			minTime = left
		}
	}
	c.nextCompletion = c.now + minTime
	if c.validate {
		if err := c.validator.ValidateDecision(c.ports, c.decision); err != nil {
			c.err = c.errorf("%w", err)
		}
	}
}

// sample records one queue tick into the cell's window buffer. The
// per-port maximum spans HOST ports only: core-proxy backlog is an
// artifact of the decomposition, not a host queue, though it does count
// toward the cell total (those bytes are genuinely in the fabric).
func (c *shardCell) sample() {
	s := cellSample{t: c.now, total: c.table.TotalBacklog()}
	if c.monitor >= 0 {
		s.monitor = c.table.IngressBacklog(c.monitor)
	}
	maxP, maxB := 0, c.table.IngressBacklog(0)
	for p := 1; p < c.hpr; p++ {
		if b := c.table.IngressBacklog(p); b > maxB {
			maxP, maxB = p, b
		}
	}
	s.maxPort, s.maxB = c.base+maxP, maxB
	c.samples = append(c.samples, s)
}

// runWindow advances the cell to capT, the current window's end. The
// event loop mirrors the centralized engine: completions strictly
// before admissions at one instant, local and delivered arrivals
// interleaved by (time, source cell), samples after admissions,
// rescheduling only when the flow population changed. Events at
// exactly capT are processed inside this window; window boundaries are
// global multiples of the lookahead, so the split is identical for
// every shard count and batch size. The inbox may hold deliveries
// beyond capT (routing runs once per batch with the batch-end horizon);
// they are invisible here because every consultation is gated on the
// simulated clock.
func (c *shardCell) runWindow(capT float64) {
	c.cWindows.Inc()
	for {
		t := capT
		if c.localPos < len(c.localQ) && c.localQ[c.localPos].a.Time < t {
			t = c.localQ[c.localPos].a.Time
		}
		if c.inboxPos < len(c.inbox) && c.inbox[c.inboxPos].deliver < t {
			t = c.inbox[c.inboxPos].deliver
		}
		if c.nextSample < t {
			t = c.nextSample
		}
		if !math.IsInf(c.nextCompletion, 1) && c.nextCompletion < t {
			t = c.nextCompletion
		}

		c.advanceTo(t)
		done := t >= c.dur
		reschedule := false
		if c.collectCompletions() {
			reschedule = true
		}
		for !done && c.err == nil {
			localReady := c.localPos < len(c.localQ) && c.localQ[c.localPos].a.Time <= c.now+timeEps
			inboxReady := c.inboxPos < len(c.inbox) && c.inbox[c.inboxPos].deliver <= c.now+timeEps
			if !localReady && !inboxReady {
				break
			}
			pickLocal := localReady
			if localReady && inboxReady {
				in := c.inbox[c.inboxPos]
				if in.deliver < c.localQ[c.localPos].a.Time ||
					(in.deliver == c.localQ[c.localPos].a.Time && in.srcCell < c.rack) {
					pickLocal = false
				}
			}
			if pickLocal {
				c.admitLocal()
			} else {
				c.admitRemote(c.inbox[c.inboxPos])
				c.inboxPos++
			}
			reschedule = true
		}
		if c.err != nil {
			return
		}
		if c.now >= c.nextSample {
			c.sample()
			c.nextSample += c.interval
		}
		if done {
			return
		}
		if reschedule {
			c.reschedule()
			if c.err != nil {
				return
			}
		}
		if t >= capT {
			return
		}
	}
}

// runTimedWindow stamps one window's wall-clock start and duration
// around runWindow and records the fold marks (cumulative sample/done
// counts) that let the barrier replay this window exactly.
func (c *shardCell) runTimedWindow(capT float64, origin time.Time) {
	start := time.Since(origin).Nanoseconds()
	c.runWindow(capT)
	dur := time.Since(origin).Nanoseconds() - start
	c.winStarts = append(c.winStarts, start)
	c.winDurs = append(c.winDurs, dur)
	c.busyNs += dur
	c.sampleMarks = append(c.sampleMarks, len(c.samples))
	c.doneMarks = append(c.doneMarks, len(c.dones))
}

// runBatch advances the cell through every window of one batch, then
// prefetches the next batch's workload (prefetchTo < 0 skips — final
// batch). Runs on a pool worker; touches only cell-local state.
func (c *shardCell) runBatch(capTs []float64, prefetchTo float64, origin time.Time) {
	for _, capT := range capTs {
		if c.err != nil {
			return
		}
		c.runTimedWindow(capT, origin)
	}
	if prefetchTo >= 0 && c.err == nil {
		c.prefetch(prefetchTo)
	}
}

// poolCmd is one batch descriptor fed to every pool worker: the batch's
// window caps (shared read-only) and the next batch's prefetch horizon.
type poolCmd struct {
	capTs      []float64
	prefetchTo float64
}

// poolWorker is one persistent worker goroutine of the decomposed
// engine: it owns a (repackable) set of cells and executes batch
// commands from the coordinator. Lifetime spans the whole run — no
// per-window goroutine churn. The stamps and accumulators are
// wall-clock plane; the coordinator reads them between the ack and the
// next command, which the channel handoffs order.
type poolWorker struct {
	id    int
	cells []*shardCell
	cmds  chan poolCmd
	ack   chan struct{}

	startNs int64 // current batch start (since run origin)
	endNs   int64 // current batch end
	busyNs  int64 // cumulative batch-execution time
	waitNs  int64 // cumulative barrier-blocked time
}

// exec runs one batch over the worker's cells, stamping the batch span.
func (wk *poolWorker) exec(cmd poolCmd, origin time.Time) {
	wk.startNs = time.Since(origin).Nanoseconds()
	for _, c := range wk.cells {
		c.runBatch(cmd.capTs, cmd.prefetchTo, origin)
	}
	wk.endNs = time.Since(origin).Nanoseconds()
}

// shardPool is the decomposed engine's persistent worker pool. With one
// worker the coordinator executes batches inline (no goroutines); with
// more, each worker loops on its command channel until stop closes it.
type shardPool struct {
	workers []*poolWorker
	cells   []*shardCell
	origin  time.Time
	inline  bool
}

// newShardPool partitions the cells into contiguous rack-order spans
// across `workers` persistent goroutines and starts them. The grouping
// affects wall clock only, never results.
func newShardPool(cells []*shardCell, workers int, origin time.Time) *shardPool {
	p := &shardPool{origin: origin, cells: cells, inline: workers <= 1}
	per := (len(cells) + workers - 1) / workers
	for lo := 0; lo < len(cells); lo += per {
		hi := lo + per
		if hi > len(cells) {
			hi = len(cells)
		}
		wk := &poolWorker{
			id:    len(p.workers),
			cells: cells[lo:hi:hi],
			cmds:  make(chan poolCmd),
			ack:   make(chan struct{}),
		}
		p.workers = append(p.workers, wk)
	}
	if !p.inline {
		for _, wk := range p.workers {
			go func(wk *poolWorker) {
				for cmd := range wk.cmds {
					wk.exec(cmd, origin)
					wk.ack <- struct{}{}
				}
			}(wk)
		}
	}
	return p
}

// runBatch dispatches one batch to every worker and blocks until all
// have finished — the coordinator barrier.
func (p *shardPool) runBatch(capTs []float64, prefetchTo float64) {
	cmd := poolCmd{capTs: capTs, prefetchTo: prefetchTo}
	if p.inline {
		p.workers[0].exec(cmd, p.origin)
		return
	}
	for _, wk := range p.workers {
		wk.cmds <- cmd
	}
	for _, wk := range p.workers {
		<-wk.ack
	}
}

// stop terminates the worker goroutines. Safe to call once, after the
// final barrier.
func (p *shardPool) stop() {
	if p.inline {
		return
	}
	for _, wk := range p.workers {
		close(wk.cmds)
	}
}

// repack reassigns cells to workers by cumulative measured busy time:
// greedy longest-processing-time packing (heaviest cell first onto the
// least-loaded worker). Called between barriers on a schedule keyed on
// the barrier index; the assignment feeds wall-clock placement only, so
// using measured (machine-dependent) busy time is sound — results are
// byte-identical under every packing.
func (p *shardPool) repack() {
	if len(p.workers) <= 1 {
		return
	}
	order := make([]int, len(p.cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.cells[order[a]].busyNs > p.cells[order[b]].busyNs
	})
	loads := make([]int64, len(p.workers))
	assign := make([][]*shardCell, len(p.workers))
	for _, ci := range order {
		g := 0
		for h := 1; h < len(loads); h++ {
			if loads[h] < loads[g] {
				g = h
			}
		}
		assign[g] = append(assign[g], p.cells[ci])
		loads[g] += p.cells[ci].busyNs
	}
	for g, wk := range p.workers {
		// Keep each worker's cells in rack order for cache-friendly
		// iteration; membership, not order, carries the balance.
		sort.Slice(assign[g], func(a, b int) bool { return assign[g][a].rack < assign[g][b].rack })
		wk.cells = assign[g]
	}
}

// runDecomposed is the Shards >= 2 family: one cell per rack advancing
// in lockstep lookahead windows, batched BarrierEvery windows per
// coordinator barrier, executed by a persistent worker pool. Every
// barrier-side fold (message routing, window-by-window trace replay,
// series and metric merges) runs on the calling goroutine in rack
// order, so results are a pure function of the configuration —
// independent of shard count, batch size, worker count, repack
// schedule, and GOMAXPROCS.
func runDecomposed(cfg ShardConfig) (*Result, error) {
	topo := cfg.Topology
	tc := topo.Config()
	look := topo.CoreHopLatency()
	numCells := tc.Racks
	hpr := tc.HostsPerRack

	batch := cfg.BarrierEvery
	if batch == 0 {
		batch = DefaultBarrierEvery
	}
	repackEvery := cfg.RepackEvery
	if repackEvery == 0 {
		repackEvery = DefaultRepackEvery
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	if workers > numCells {
		workers = numCells
	}

	firstEnd := float64(batch) * look
	if firstEnd > cfg.Duration {
		firstEnd = cfg.Duration
	}
	cells := make([]*shardCell, numCells)
	for r := range cells {
		opts := cfg.SchedOpts
		seedBase := opts.Seed
		if seedBase == 0 {
			seedBase = cfg.Seed
		}
		opts.Seed = runner.DeriveSeed(seedBase, r)
		scheduler, err := sched.New(cfg.Scheduler, opts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
		}
		gen, err := workload.NewMixed(workload.MixedConfig{
			Topology:          topo,
			Load:              cfg.Load,
			QueryByteFraction: cfg.QueryByteFraction,
			Duration:          cfg.Duration,
			Seed:              runner.DeriveSeed(cfg.Seed, r),
			SrcLo:             r * hpr,
			SrcHi:             (r + 1) * hpr,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrShardConfig, err)
		}
		c := &shardCell{
			rack:           r,
			base:           r * hpr,
			hpr:            hpr,
			uplinks:        tc.Cores,
			ports:          hpr + tc.Cores,
			byteRate:       topo.HostLinkBps() / 8,
			dur:            cfg.Duration,
			look:           look,
			interval:       cfg.SampleInterval,
			monitor:        -1,
			table:          flow.NewTable(hpr + tc.Cores),
			scheduler:      scheduler,
			clearsDirty:    !sched.IsDirtyConsumer(scheduler),
			validate:       cfg.ValidateDecisions,
			gen:            gen,
			nextCompletion: math.Inf(1),
			fct:            metrics.NewFCT(),
			thr:            metrics.NewThroughput(cfg.ThroughputBucket),
			traced:         cfg.Obs != nil,
		}
		if cfg.MonitorPort/hpr == r {
			c.monitor = cfg.MonitorPort % hpr
		}
		if c.traced {
			c.remoteSrc = make(map[flow.ID]int)
		}
		c.reg = obs.NewRegistry()
		c.cDecisions = c.reg.Counter("cell.decisions")
		c.cMsgsSent = c.reg.Counter("cell.msgs_sent")
		c.cMsgsDelivered = c.reg.Counter("cell.msgs_delivered")
		c.cWindows = c.reg.Counter("cell.windows")
		c.prefetch(firstEnd)
		cells[r] = c
	}

	res := &Result{
		FCT:           metrics.NewFCT(),
		Throughput:    metrics.NewThroughput(cfg.ThroughputBucket),
		Duration:      cfg.Duration,
		SchedulerName: cells[0].scheduler.Name(),
	}
	// Wall-clock plane: every cell-window is stamped against this origin
	// (two clock reads per cell-window — cheap enough to keep always-on),
	// feeding the barrier-wait accounting, the imbalance report, and the
	// optional Timeline.
	origin := time.Now()
	pool := newShardPool(cells, workers, origin)
	defer pool.stop()

	capTs := make([]float64, 0, batch)
	w, windows, barriers := 0, 0, 0
	for b := 0; ; b++ {
		if repackEvery > 0 && b > 0 && b%repackEvery == 0 {
			pool.repack()
		}
		capTs = capTs[:0]
		for j := 0; j < batch; j++ {
			capT := float64(w+j+1) * look
			if capT >= cfg.Duration {
				capTs = append(capTs, cfg.Duration)
				break
			}
			capTs = append(capTs, capT)
		}
		end := capTs[len(capTs)-1]
		last := end >= cfg.Duration
		prefetchTo := -1.0
		if !last {
			// One window past the next batch's widest possible end is still
			// safe (deeper prefetch only moves messages into outboxes
			// earlier); what matters is covering at least the next batch.
			next := float64(w+len(capTs)+batch) * look
			if next > cfg.Duration {
				next = cfg.Duration
			}
			prefetchTo = next
		}
		// Route before the batch: one pass with the batch-end horizon
		// replaces the skipped intra-batch barriers — by the prefetch
		// contract every message deliverable inside the batch is already
		// in an outbox. The horizon carries the admission slack so a
		// message within timeEps of a window cap lands with the batch
		// that admits it, at every batch size.
		routeStart := time.Since(origin).Nanoseconds()
		routeOutboxes(cells, end+2*timeEps, hpr)
		cfg.Timeline.Add(obs.TimelineSpan{
			Track: obs.TimelineCoordinator, Name: "route", Window: b,
			StartNs: routeStart, DurNs: time.Since(origin).Nanoseconds() - routeStart,
		})
		pool.runBatch(capTs, prefetchTo)
		for _, c := range cells {
			if c.err != nil {
				return nil, c.err
			}
		}
		windows += len(capTs)
		barriers++
		accountBatch(cells, pool, b, w, cfg.Timeline)
		foldStart := time.Since(origin).Nanoseconds()
		if err := foldBatch(cells, res, cfg, len(capTs)); err != nil {
			return nil, err
		}
		cfg.Timeline.Add(obs.TimelineSpan{
			Track: obs.TimelineCoordinator, Name: "fold", Window: b,
			StartNs: foldStart, DurNs: time.Since(origin).Nanoseconds() - foldStart,
		})
		if cfg.OnWindow != nil {
			p := ShardProgress{
				SimTime: end, Duration: cfg.Duration,
				Window: w + len(capTs) - 1, Barrier: b,
				WindowsPerBarrier: float64(windows) / float64(barriers),
				Cells:             numCells, Workers: len(pool.workers),
				CellBusyNs: make([]int64, numCells),
				CellWaitNs: make([]int64, numCells),
			}
			for i, c := range cells {
				p.Decisions += c.decisions
				p.ArrivedFlows += c.arrivedFlows
				p.CompletedFlows += c.completedFlows
				p.CellBusyNs[i] = c.busyNs
				p.CellWaitNs[i] = c.barrierWaitNs
			}
			cfg.OnWindow(p)
		}
		w += len(capTs)
		if last {
			break
		}
	}
	return mergeCells(cells, res, cfg, windows, barriers, pool)
}

// accountBatch folds one batch's wall-clock stamps into the per-cell
// and per-worker busy/barrier-wait accumulators and, when a Timeline is
// attached, records the batch's spans in rack order — a deterministic
// span sequence regardless of how the worker goroutines interleaved.
// The barrier is modeled as ending when the slowest worker finished its
// batch (the coordinator's own fold work is tracked separately).
func accountBatch(cells []*shardCell, pool *shardPool, barrier, firstWindow int, tl *obs.Timeline) {
	barrierEnd := int64(0)
	for _, wk := range pool.workers {
		if wk.endNs > barrierEnd {
			barrierEnd = wk.endNs
		}
	}
	for _, wk := range pool.workers {
		wk.busyNs += wk.endNs - wk.startNs
		wk.waitNs += barrierEnd - wk.endNs
	}
	slowest, slowestEnd := 0, int64(0)
	for i, c := range cells {
		if n := len(c.winStarts); n > 0 {
			if end := c.winStarts[n-1] + c.winDurs[n-1]; end > slowestEnd {
				slowestEnd = end
				slowest = i
			}
		}
	}
	cells[slowest].slowestBarriers++
	for _, c := range cells {
		n := len(c.winStarts)
		for j := 0; j < n; j++ {
			tl.Add(obs.TimelineSpan{Track: c.rack, Name: "window", Window: firstWindow + j,
				StartNs: c.winStarts[j], DurNs: c.winDurs[j]})
		}
		cellStart, cellEnd := int64(0), int64(0)
		if n > 0 {
			cellStart = c.winStarts[0]
			cellEnd = c.winStarts[n-1] + c.winDurs[n-1]
		}
		tl.Add(obs.TimelineSpan{Track: c.rack, Name: "batch", Window: barrier,
			StartNs: cellStart, DurNs: cellEnd - cellStart})
		wait := barrierEnd - cellEnd
		c.barrierWaitNs += wait
		tl.Add(obs.TimelineSpan{Track: c.rack, Name: "barrier", Window: barrier,
			StartNs: cellEnd, DurNs: wait})
		c.winStarts = c.winStarts[:0]
		c.winDurs = c.winDurs[:0]
	}
}

// routeOutboxes moves every cross-rack message deliverable before
// `horizon` (exclusive — the end of the batch about to run, plus the
// admission slack) from source outboxes into destination inboxes in
// global (delivery time, source cell, outbox order) order. By the
// conservative-lookahead argument every such message already exists: a
// message delivered inside a batch was generated at least one lookahead
// earlier, inside the horizon the previous barrier's prefetch pulled
// through. Later barriers only append later deliveries, so inboxes stay
// sorted under positional consumption.
func routeOutboxes(cells []*shardCell, horizon float64, hpr int) {
	for _, c := range cells {
		if c.inboxPos > 0 {
			n := copy(c.inbox, c.inbox[c.inboxPos:])
			c.inbox = c.inbox[:n]
			c.inboxPos = 0
		}
	}
	var routed []routedMsg
	for ci, c := range cells {
		for {
			dt, ok := c.outbox.PeekTime()
			if !ok || dt >= horizon {
				break
			}
			ev, t, _ := c.outbox.Pop()
			routed = append(routed, routedMsg{deliver: t, srcCell: ci, msg: ev.(shardMsg)})
		}
	}
	sort.SliceStable(routed, func(i, j int) bool {
		if routed[i].deliver != routed[j].deliver {
			return routed[i].deliver < routed[j].deliver
		}
		return routed[i].srcCell < routed[j].srcCell
	})
	for _, rm := range routed {
		dst := cells[rm.msg.dst/hpr]
		dst.inbox = append(dst.inbox, rm)
	}
}

// foldBatch replays one batch window-by-window through foldWindowSeg —
// byte-identical to folding at dense per-window barriers — then resets
// the per-cell buffers.
func foldBatch(cells []*shardCell, res *Result, cfg ShardConfig, nwin int) error {
	for k := 0; k < nwin; k++ {
		if err := foldWindowSeg(cells, res, cfg, k); err != nil {
			return err
		}
	}
	for _, c := range cells {
		c.samples = c.samples[:0]
		c.dones = c.dones[:0]
		c.sampleMarks = c.sampleMarks[:0]
		c.doneMarks = c.doneMarks[:0]
	}
	return nil
}

// sampleSeg returns the cell's sample slice for window k of the current
// batch, delimited by the fold marks runTimedWindow recorded.
func (c *shardCell) sampleSeg(k int) []cellSample {
	lo := 0
	if k > 0 {
		lo = c.sampleMarks[k-1]
	}
	return c.samples[lo:c.sampleMarks[k]]
}

// doneSeg returns the cell's completion-event slice for window k of the
// current batch.
func (c *shardCell) doneSeg(k int) []cellDone {
	lo := 0
	if k > 0 {
		lo = c.doneMarks[k-1]
	}
	return c.dones[lo:c.doneMarks[k]]
}

// foldWindowSeg merges one window's per-cell sample ticks into the
// global series and replays buffered trace events in deterministic
// order: completions sorted by (time, cell, cell-local sequence),
// interleaved before each tick's sample.queue / sample.total /
// sample.maxport triplet exactly as the centralized engine orders them.
func foldWindowSeg(cells []*shardCell, res *Result, cfg ShardConfig, k int) error {
	ref := cells[0].sampleSeg(k)
	nticks := len(ref)
	for _, c := range cells {
		if n := len(c.sampleSeg(k)); n != nticks {
			return fmt.Errorf("fabricsim shard: cell %d recorded %d sample ticks, cell 0 recorded %d",
				c.rack, n, nticks)
		}
	}
	var merged []cellDone
	if cfg.Obs != nil {
		for _, c := range cells {
			merged = append(merged, c.doneSeg(k)...)
		}
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].t < merged[j].t })
	}
	di := 0
	for i := 0; i < nticks; i++ {
		t := ref[i].t
		var queue, total float64
		maxPort, maxB := ref[i].maxPort, ref[i].maxB
		for _, c := range cells {
			s := c.sampleSeg(k)[i]
			total += s.total
			if c.monitor >= 0 {
				queue = s.monitor
			}
			if s.maxB > maxB {
				maxPort, maxB = s.maxPort, s.maxB
			}
		}
		for di < len(merged) && merged[di].t <= t {
			cfg.Obs.Emit(merged[di].t, "flow.done", merged[di].src, merged[di].fct, merged[di].class)
			di++
		}
		res.QueueSeries.Add(t, queue)
		res.TotalBacklogSeries.Add(t, total)
		res.MaxPortSeries.Add(t, maxB)
		cfg.Obs.Emit(t, "sample.queue", cfg.MonitorPort, queue, "")
		cfg.Obs.Emit(t, "sample.total", -1, total, "")
		cfg.Obs.Emit(t, "sample.maxport", maxPort, maxB, "")
	}
	for di < len(merged) {
		cfg.Obs.Emit(merged[di].t, "flow.done", merged[di].src, merged[di].fct, merged[di].class)
		di++
	}
	return nil
}

// mergeCells folds the per-cell metrics into the global Result in rack
// order — the fixed fold order that makes every float accumulation
// (FCT sums, sample order, throughput buckets) a pure function of the
// per-cell streams — and seals the instrumentation registry the way
// the centralized finish() does.
func mergeCells(cells []*shardCell, res *Result, cfg ShardConfig, windows, barriers int, pool *shardPool) (*Result, error) {
	reg := cfg.Obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var repairs, rebuilds, poolReuses int64
	var poolSize, highWater int
	for _, c := range cells {
		res.FCT.Merge(c.fct)
		res.Throughput.Merge(c.thr)
		res.ArrivedFlows += c.arrivedFlows
		res.CompletedFlows += c.completedFlows
		res.ArrivedBytes += c.arrivedBytes
		res.DepartedBytes += c.departedBytes
		res.LeftoverBytes += c.table.TotalBacklog()
		res.LeftoverFlows += c.table.NumFlows()
		res.Decisions += c.decisions
		res.SchedNanos += c.schedNanos
		ist := sched.IndexStatsOf(c.scheduler)
		repairs += ist.Repairs
		rebuilds += ist.Rebuilds
		if hw := c.gen.QueueHighWater(); hw > highWater {
			highWater = hw
		}
		poolReuses += c.pool.Reuses()
		poolSize += c.pool.Len()
	}
	reg.Counter("fabric.decisions").Add(res.Decisions)
	reg.Counter("fabric.sched_nanos").Add(res.SchedNanos)
	reg.Counter("fabric.arrived_flows").Add(int64(res.ArrivedFlows))
	reg.Counter("fabric.completed_flows").Add(int64(res.CompletedFlows))
	if repairs+rebuilds > 0 {
		reg.Counter("sched.index_repairs").Add(repairs)
		reg.Counter("sched.index_rebuilds").Add(rebuilds)
	}
	reg.Gauge("eventq.high_water").Set(float64(highWater))
	reg.Counter("flow.pool_reuses").Add(poolReuses)
	reg.Gauge("flow.pool_size").Set(float64(poolSize))

	// Per-cell attribution: seal each cell's deterministic-plane registry
	// (plus its wall-clock busy/wait counters, filtered out of digests by
	// obs.IsWallClock) and fold the snapshots into the Result in rack
	// order. The global registry gets the wall-clock totals and the
	// Result gets the imbalance report.
	im := &ShardImbalance{
		Cells:             len(cells),
		Windows:           windows,
		Barriers:          barriers,
		WindowsPerBarrier: float64(windows) / float64(barriers),
		Workers:           len(pool.workers),
		BusyNs:            make([]int64, len(cells)),
		BarrierWaitNs:     make([]int64, len(cells)),
		SlowestBarriers:   make([]int, len(cells)),
		WorkerBusyNs:      make([]int64, len(pool.workers)),
		WorkerWaitNs:      make([]int64, len(pool.workers)),
	}
	var totalBusy, totalWait, maxBusy int64
	for i, c := range cells {
		c.reg.Gauge("cell.eventq_high_water").Set(float64(c.gen.QueueHighWater()))
		c.reg.Counter("wall.busy_ns").Add(c.busyNs)
		c.reg.Counter("wall.barrier_wait_ns").Add(c.barrierWaitNs)
		c.reg.Counter("wall.sched_nanos").Add(c.schedNanos)
		res.ShardObs = append(res.ShardObs, c.reg.Snapshot())
		im.BusyNs[i] = c.busyNs
		im.BarrierWaitNs[i] = c.barrierWaitNs
		im.SlowestBarriers[i] = c.slowestBarriers
		if c.slowestBarriers > im.SlowestBarriers[im.SlowestCell] {
			im.SlowestCell = i
		}
		totalBusy += c.busyNs
		totalWait += c.barrierWaitNs
		if c.busyNs > maxBusy {
			maxBusy = c.busyNs
		}
	}
	var workerBusy, workerWait int64
	for g, wk := range pool.workers {
		im.WorkerBusyNs[g] = wk.busyNs
		im.WorkerWaitNs[g] = wk.waitNs
		workerBusy += wk.busyNs
		workerWait += wk.waitNs
	}
	if workerBusy+workerWait > 0 {
		im.BarrierWaitFraction = float64(workerWait) / float64(workerBusy+workerWait)
	}
	if totalBusy+totalWait > 0 {
		im.CellWaitFraction = float64(totalWait) / float64(totalBusy+totalWait)
	}
	if totalBusy > 0 {
		im.SkewRatio = float64(maxBusy) / (float64(totalBusy) / float64(len(cells)))
	}
	res.Imbalance = im
	reg.Counter("wall.busy_ns").Add(totalBusy)
	reg.Counter("wall.barrier_wait_ns").Add(totalWait)
	reg.Counter("wall.worker_busy_ns").Add(workerBusy)
	reg.Counter("wall.worker_wait_ns").Add(workerWait)
	reg.Gauge("wall.windows_per_barrier").Set(im.WindowsPerBarrier)
	reg.Gauge("wall.workers").Set(float64(len(pool.workers)))

	res.Obs = reg.Snapshot()
	return res, nil
}
