package sched

import (
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// benchDriver replays a steady-state event loop at paper scale: each
// iteration serves the previous decision (draining a few VOQs, completing
// some flows) and admits replacement arrivals, so the per-decision dirty
// set stays small and realistic — the regime the incremental index is
// built for. Both benchmark arms replay the identical trajectory because
// the decisions are bit-identical.
type benchDriver struct {
	r    *stats.RNG
	tab  *flow.Table
	next flow.ID
}

func newBenchDriver(n, population int) *benchDriver {
	d := &benchDriver{r: stats.NewRNG(1719), tab: flow.NewTable(n), next: 1}
	for i := 0; i < population; i++ {
		d.arrive()
	}
	return d
}

func (d *benchDriver) arrive() {
	n := d.tab.N()
	size := 1 + float64(d.r.Intn(1_000_000)) + float64(d.next)*1e-3
	f := flow.NewFlow(d.next, d.r.Intn(n), d.r.Intn(n), flow.ClassOther, size, float64(d.next))
	d.next++
	d.tab.Add(f)
}

func (d *benchDriver) step(served []*flow.Flow) {
	for _, f := range served {
		if d.r.Float64() < 0.05 {
			d.tab.Drain(f, f.Remaining)
			d.tab.Remove(f)
			d.arrive() // keep the population (and load) steady
		} else {
			d.tab.Drain(f, 1+d.r.Float64()*f.Remaining*0.1)
		}
	}
	d.arrive()
}

// benchSchedule measures decisions/sec for one scheduler over the
// steady-state loop. population ≈ 0.8 load at 144 hosts in the fabric
// simulations (thousands of concurrent flows).
func benchSchedule(b *testing.B, s Scheduler, n, population int) {
	b.Helper()
	d := newBenchDriver(n, population)
	var served []*flow.Flow
	// Warm up: reach steady state (and build the index) before timing.
	for i := 0; i < 50; i++ {
		d.step(served)
		served = s.Schedule(d.tab)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.step(served)
		served = s.Schedule(d.tab)
	}
}

// The old-vs-new pairs behind BENCH_sched.json: every routed discipline at
// N=144 and a high-load flow population, incremental index versus the
// from-scratch gather-and-sort it replaced.
const (
	benchPorts      = 144
	benchPopulation = 8000
)

func BenchmarkScheduleFastBASRPT(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		benchSchedule(b, NewFastBASRPT(2500), benchPorts, benchPopulation)
	})
	b.Run("fromscratch", func(b *testing.B) {
		s := NewFastBASRPT(2500)
		s.SetIncremental(false)
		benchSchedule(b, s, benchPorts, benchPopulation)
	})
}

func BenchmarkScheduleSRPT(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		benchSchedule(b, NewSRPT(), benchPorts, benchPopulation)
	})
	b.Run("fromscratch", func(b *testing.B) {
		s := NewSRPT()
		s.SetIncremental(false)
		benchSchedule(b, s, benchPorts, benchPopulation)
	})
}

func BenchmarkScheduleMaxWeight(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		benchSchedule(b, NewMaxWeight(), benchPorts, benchPopulation)
	})
	b.Run("fromscratch", func(b *testing.B) {
		s := NewMaxWeight()
		s.SetIncremental(false)
		benchSchedule(b, s, benchPorts, benchPopulation)
	})
}

func BenchmarkScheduleThreshold(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		benchSchedule(b, NewThresholdBacklog(1e6), benchPorts, benchPopulation)
	})
	b.Run("fromscratch", func(b *testing.B) {
		s := NewThresholdBacklog(1e6)
		s.SetIncremental(false)
		benchSchedule(b, s, benchPorts, benchPopulation)
	})
}
