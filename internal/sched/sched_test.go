package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// buildTable assembles a table from (src, dst, size) triples.
func buildTable(n int, specs [][3]float64) (*flow.Table, []*flow.Flow) {
	t := flow.NewTable(n)
	flows := make([]*flow.Flow, 0, len(specs))
	for i, s := range specs {
		f := flow.NewFlow(flow.ID(i+1), int(s[0]), int(s[1]), flow.ClassOther, s[2], float64(i))
		t.Add(f)
		flows = append(flows, f)
	}
	return t, flows
}

// randomTable fills a table with a random flow population. Sizes carry a
// per-flow fractional offset so they are pairwise distinct: the schedulers'
// V→∞/V=0 limit equivalences hold exactly only without size ties (ties
// break on different secondary keys).
func randomTable(r *stats.RNG, n, maxFlows int) *flow.Table {
	t := flow.NewTable(n)
	count := 1 + r.Intn(maxFlows)
	for i := 0; i < count; i++ {
		size := 1 + math.Floor(r.Float64()*1000) + float64(i)*1e-3
		f := flow.NewFlow(flow.ID(i+1), r.Intn(n), r.Intn(n), flow.ClassOther,
			size, r.Float64()*100)
		t.Add(f)
	}
	return t
}

func decisionIDs(d []*flow.Flow) []int64 {
	ids := make([]int64, len(d))
	for i, f := range d {
		ids[i] = int64(f.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameDecision(a, b []*flow.Flow) bool {
	x, y := decisionIDs(a), decisionIDs(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestSRPTPicksGloballyShortestFirst(t *testing.T) {
	// Shortest flow (id 3, size 5) is at (1,1); it blocks (1,0) and (0,1)
	// candidates sharing its ports, leaving (0,0).
	tab, flows := buildTable(2, [][3]float64{
		{0, 0, 100}, // id 1
		{0, 1, 50},  // id 2
		{1, 1, 5},   // id 3
		{1, 0, 70},  // id 4
	})
	got := NewSRPT().Schedule(tab)
	want := []*flow.Flow{flows[2], flows[0]}
	if !sameDecision(got, want) {
		t.Fatalf("SRPT decision = %v, want flows 3 and 1", decisionIDs(got))
	}
}

func TestSRPTWithinVOQPicksShortest(t *testing.T) {
	tab, flows := buildTable(2, [][3]float64{
		{0, 0, 100},
		{0, 0, 10},
	})
	got := NewSRPT().Schedule(tab)
	if len(got) != 1 || got[0] != flows[1] {
		t.Fatalf("SRPT picked %v, want the 10-byte flow", decisionIDs(got))
	}
}

func TestSRPTEmptyTable(t *testing.T) {
	tab := flow.NewTable(3)
	if got := NewSRPT().Schedule(tab); len(got) != 0 {
		t.Fatalf("SRPT on empty table = %v", got)
	}
}

func TestFastBASRPTPrefersLongQueueWhenVSmall(t *testing.T) {
	// VOQ (0,0): single huge flow sitting in a huge backlog.
	// VOQ (1,1)... choose conflicting VOQ (0,1) with a tiny flow in a tiny
	// backlog. With small V the long queue wins the ingress port; with
	// huge V the short flow wins.
	tab, flows := buildTable(2, [][3]float64{
		{0, 0, 1000}, // id 1, backlog 1000
		{0, 1, 10},   // id 2, backlog 10
	})
	small := NewFastBASRPT(0.1).Schedule(tab)
	if len(small) != 1 || small[0] != flows[0] {
		t.Fatalf("V=0.1 decision = %v, want the backlogged flow 1", decisionIDs(small))
	}
	large := NewFastBASRPT(1e9).Schedule(tab)
	if len(large) != 1 || large[0] != flows[1] {
		t.Fatalf("V=1e9 decision = %v, want the short flow 2", decisionIDs(large))
	}
}

func TestFastBASRPTKeySumIdentity(t *testing.T) {
	// With |S| = N selected flows, summing the per-flow keys equals
	// V·ȳ − ΣX·R — the approximation argument in Section IV-C.
	tab, _ := buildTable(3, [][3]float64{
		{0, 1, 40},
		{1, 2, 60},
		{2, 0, 80},
	})
	const v = 2500.0
	s := NewFastBASRPT(v)
	decision := s.Schedule(tab)
	if len(decision) != 3 {
		t.Fatalf("decision size = %d, want 3", len(decision))
	}
	var keySum float64
	for _, f := range decision {
		keySum += v/3*f.Remaining - tab.VOQ(f.Src, f.Dst).Backlog()
	}
	if obj := Objective(v, tab, decision); math.Abs(keySum-obj) > 1e-9 {
		t.Fatalf("key sum %g != objective %g", keySum, obj)
	}
}

// TestFastBASRPTLimits: V→∞ reduces to SRPT, V=0 reduces to MaxWeight.
func TestFastBASRPTLimits(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tab := randomTable(r, 2+r.Intn(5), 20)
		srpt := NewSRPT().Schedule(tab)
		inf := NewFastBASRPT(1e15).Schedule(tab)
		if !sameDecision(srpt, inf) {
			return false
		}
		mw := NewMaxWeight().Schedule(tab)
		zero := NewFastBASRPT(0).Schedule(tab)
		return sameDecision(mw, zero)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionsAreValidMaximalMatchings: the core crossbar invariant for
// every discipline in the registry.
func TestDecisionsAreValidMaximalMatchings(t *testing.T) {
	schedulers := []Scheduler{
		NewSRPT(),
		NewFastBASRPT(2500),
		NewExactBASRPT(2500, 0),
		NewMaxWeight(),
		NewFIFOMatch(),
		NewThresholdBacklog(500),
		NewRandom(7),
	}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tab := randomTable(r, 2+r.Intn(4), 15)
		for _, s := range schedulers {
			d := s.Schedule(tab)
			if err := ValidateDecision(tab.N(), d); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
			if !IsMaximalDecision(tab, d) {
				t.Logf("%s produced non-maximal decision", s.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestExactBeatsOrMatchesFast: the exhaustive minimizer never has a worse
// objective than the greedy approximation.
func TestExactBeatsOrMatchesFast(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tab := randomTable(r, 2+r.Intn(3), 10)
		v := math.Floor(r.Float64() * 5000)
		exact := NewExactBASRPT(v, 0).Schedule(tab)
		fast := NewFastBASRPT(v).Schedule(tab)
		return Objective(v, tab, exact) <= Objective(v, tab, fast)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestExactIsTrueMinimum: brute-force cross-check on tiny instances that
// exact BASRPT's objective matches the minimum over all maximal matchings
// with per-VOQ shortest flows.
func TestExactIsTrueMinimum(t *testing.T) {
	tab, _ := buildTable(3, [][3]float64{
		{0, 0, 100},
		{0, 1, 10},
		{1, 0, 20},
		{1, 1, 300},
		{2, 2, 50},
		{0, 0, 5}, // second flow in VOQ (0,0)
	})
	const v = 100
	exact := NewExactBASRPT(v, 0).Schedule(tab)
	got := Objective(v, tab, exact)

	// Brute force: VOQ tops are (0,0)->5, (0,1)->10, (1,0)->20,
	// (1,1)->300, (2,2)->50. Enumerate subsets forming maximal matchings.
	type edge struct{ s, d int }
	tops := map[edge]float64{
		{0, 0}: 5, {0, 1}: 10, {1, 0}: 20, {1, 1}: 300, {2, 2}: 50,
	}
	edges := []edge{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}}
	best := math.Inf(1)
	for mask := 1; mask < 1<<len(edges); mask++ {
		var sel []edge
		usedS, usedD := map[int]bool{}, map[int]bool{}
		valid := true
		for i, e := range edges {
			if mask&(1<<i) == 0 {
				continue
			}
			if usedS[e.s] || usedD[e.d] {
				valid = false
				break
			}
			usedS[e.s], usedD[e.d] = true, true
			sel = append(sel, e)
		}
		if !valid {
			continue
		}
		maximal := true
		for _, e := range edges {
			if !usedS[e.s] && !usedD[e.d] {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		var sumY, sumX float64
		for _, e := range sel {
			sumY += tops[e]
			sumX += tab.VOQ(e.s, e.d).Backlog()
		}
		obj := v*sumY/float64(len(sel)) - sumX
		if obj < best {
			best = obj
		}
	}
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("exact objective %g, brute force %g", got, best)
	}
}

func TestExactBASRPTPanicsOnLargeFabric(t *testing.T) {
	tab := flow.NewTable(20)
	tab.Add(flow.NewFlow(1, 0, 0, flow.ClassOther, 1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("exact BASRPT on 20 ports did not panic")
		}
	}()
	NewExactBASRPT(1, 0).Schedule(tab)
}

func TestFIFOMatchPrefersOldest(t *testing.T) {
	tab := flow.NewTable(2)
	newer := flow.NewFlow(1, 0, 0, flow.ClassOther, 5, 10) // small but new
	older := flow.NewFlow(2, 0, 1, flow.ClassOther, 500, 1)
	tab.Add(newer)
	tab.Add(older)
	got := NewFIFOMatch().Schedule(tab)
	// Oldest (id 2) wins ingress 0; then (0,0) blocked by ingress.
	if len(got) != 1 || got[0] != older {
		t.Fatalf("FIFO decision = %v, want flow 2", decisionIDs(got))
	}
}

func TestThresholdBacklogPrioritizesHotQueues(t *testing.T) {
	tab, flows := buildTable(2, [][3]float64{
		{0, 0, 1000}, // big flow, big backlog
		{0, 1, 10},   // small flow, small backlog
	})
	// Below threshold: SRPT behaviour, small flow wins.
	cold := NewThresholdBacklog(1e6).Schedule(tab)
	if len(cold) != 1 || cold[0] != flows[1] {
		t.Fatalf("below-threshold decision = %v, want flow 2", decisionIDs(cold))
	}
	// Above threshold: hot queue jumps ahead.
	hot := NewThresholdBacklog(500).Schedule(tab)
	if len(hot) != 1 || hot[0] != flows[0] {
		t.Fatalf("above-threshold decision = %v, want flow 1", decisionIDs(hot))
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) []int64 {
		r := stats.NewRNG(33)
		tab := randomTable(r, 4, 12)
		return decisionIDs(NewRandom(seed).Schedule(tab))
	}
	a, b := mk(5), mk(5)
	if len(a) != len(b) {
		t.Fatal("same seed gave different decision sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different decisions")
		}
	}
}

func TestValidateDecisionErrors(t *testing.T) {
	f1 := flow.NewFlow(1, 0, 0, flow.ClassOther, 1, 0)
	f2 := flow.NewFlow(2, 0, 1, flow.ClassOther, 1, 0)
	f3 := flow.NewFlow(3, 1, 0, flow.ClassOther, 1, 0)
	if err := ValidateDecision(2, []*flow.Flow{f1, f2}); err == nil {
		t.Fatal("shared ingress not rejected")
	}
	if err := ValidateDecision(2, []*flow.Flow{f1, f3}); err == nil {
		t.Fatal("shared egress not rejected")
	}
	if err := ValidateDecision(2, []*flow.Flow{nil}); err == nil {
		t.Fatal("nil flow not rejected")
	}
	bad := flow.NewFlow(4, 9, 0, flow.ClassOther, 1, 0)
	if err := ValidateDecision(2, []*flow.Flow{bad}); err == nil {
		t.Fatal("out-of-range port not rejected")
	}
	if err := ValidateDecision(2, []*flow.Flow{f2, f3}); err != nil {
		t.Fatalf("valid decision rejected: %v", err)
	}
}

func TestObjectiveEmptyDecision(t *testing.T) {
	tab := flow.NewTable(2)
	if got := Objective(100, tab, nil); !math.IsInf(got, 1) {
		t.Fatalf("empty objective = %g, want +Inf", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("scheduler %q has empty Name", name)
		}
	}
	if _, err := New("bogus", Options{}); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "srpt") {
		t.Fatalf("error should list valid names: %v", err)
	}
	// Defaults applied.
	s, err := New("fast-basrpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := s.(*FastBASRPT)
	if !ok {
		t.Fatalf("fast-basrpt built %T", s)
	}
	if got := fb.V(); got != 2500 {
		t.Fatalf("default V = %g, want 2500", got)
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[Scheduler]string{
		NewSRPT():              "srpt",
		NewFastBASRPT(2500):    "fast-basrpt(V=2500)",
		NewExactBASRPT(10, 0):  "exact-basrpt(V=10)",
		NewMaxWeight():         "maxweight",
		NewFIFOMatch():         "fifo",
		NewThresholdBacklog(5): "threshold(T=5)",
	}
	for s, want := range cases {
		if got := s.Name(); got != want {
			t.Fatalf("Name = %q, want %q", got, want)
		}
	}
	if got := NewRandom(1).Name(); got != "random" {
		t.Fatalf("random Name = %q", got)
	}
}

// TestHeapPickEqualsSortPick: the lazy heap-selection path must produce
// exactly the decision the full-sort path produces, across dense random
// states straddling the switchover threshold.
func TestHeapPickEqualsSortPick(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.Intn(12)
		// Dense enough to exceed heapSelectThreshold candidates.
		tab := flow.NewTable(n)
		id := flow.ID(1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.9 {
					size := 1 + math.Floor(r.Float64()*1e5) + float64(id)*1e-3
					tab.Add(flow.NewFlow(id, i, j, flow.ClassOther, size, 0))
					id++
				}
			}
		}
		key := func(c Candidate) float64 {
			return 2500/float64(n)*c.Flow.Remaining - c.QueueLen
		}
		var g1, g2 greedy
		g1.gather(tab, key)
		slicesSort(g1.cands)
		sorted := g1.pick(n)
		g2.gather(tab, key)
		heaped := g2.heapPick(n)
		if len(sorted) != len(heaped) {
			return false
		}
		for i := range sorted {
			if sorted[i] != heaped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// slicesSort isolates the sort call so the equality test exercises the
// exact production comparator.
func slicesSort(cands []scored) {
	sort.SliceStable(cands, func(i, j int) bool { return cmpScored(cands[i], cands[j]) < 0 })
}

func BenchmarkHeapVsSortSelection(b *testing.B) {
	build := func(n int) *flow.Table {
		r := stats.NewRNG(9)
		tab := flow.NewTable(n)
		id := flow.ID(1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					tab.Add(flow.NewFlow(id, i, j, flow.ClassOther, 1+math.Floor(r.Float64()*1e6), 0))
					id++
				}
			}
		}
		return tab
	}
	key := func(c Candidate) float64 { return c.Flow.Remaining }
	for _, n := range []int{24, 72, 144} {
		tab := build(n)
		b.Run(fmt.Sprintf("sort-n%d", n), func(b *testing.B) {
			var g greedy
			for i := 0; i < b.N; i++ {
				g.gather(tab, key)
				slicesSort(g.cands)
				g.pick(n)
			}
		})
		b.Run(fmt.Sprintf("heap-n%d", n), func(b *testing.B) {
			var g greedy
			for i := 0; i < b.N; i++ {
				g.gather(tab, key)
				g.heapPick(n)
			}
		})
	}
}

func TestRegistryExtensionOptions(t *testing.T) {
	s, err := New("dist-basrpt", Options{V: 100, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Name(); got != "dist-basrpt(V=100,rounds=3)" {
		t.Fatalf("name = %q", got)
	}
	s, err = New("noisy-basrpt", Options{V: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Default noise level applies.
	if got := s.Name(); got != "noisy-basrpt(V=100,noise=0.25)" {
		t.Fatalf("name = %q", got)
	}
}
