package sched

import (
	"fmt"

	"basrpt/internal/birkhoff"
	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// BirkhoffRandom is the randomized stabilizing schedule from the paper's
// Section IV-A existence argument made executable: given an admissible
// rate matrix Λ, pad it by the slack ε, complete it to doubly stochastic,
// decompose it into permutation matrices (Birkhoff's theorem), and on each
// decision sample a permutation σ with probability u(σ). Every VOQ then
// receives service rate R̄ij ≥ λij + ε, which is the property Theorem 1's
// ε-slack argument needs.
//
// It is deliberately oblivious to queue contents (beyond skipping empty
// VOQs, choosing the shortest flow within a served VOQ), so it brackets
// the design space: stable like MaxWeight/BASRPT, but with none of their
// delay awareness.
type BirkhoffRandom struct {
	comps   []birkhoff.Component
	cum     []float64 // cumulative weights for sampling
	epsilon float64
	rng     *stats.RNG
}

var _ Scheduler = (*BirkhoffRandom)(nil)

// NewBirkhoffRandom builds the randomized schedule for the given
// normalized rate matrix (entries in service-rate units, line sums < 1).
// It returns an error when the matrix is inadmissible or has no slack.
func NewBirkhoffRandom(lambda [][]float64, seed uint64) (*BirkhoffRandom, error) {
	comps, epsilon, err := birkhoff.SlackSchedule(lambda)
	if err != nil {
		return nil, fmt.Errorf("sched: birkhoff schedule: %w", err)
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("sched: rate matrix has no slack (load at capacity)")
	}
	s := &BirkhoffRandom{
		comps:   comps,
		epsilon: epsilon,
		rng:     stats.NewRNG(seed),
	}
	var total float64
	for _, c := range comps {
		total += c.Weight
		s.cum = append(s.cum, total)
	}
	return s, nil
}

// Epsilon returns the per-VOQ service slack the schedule guarantees.
func (s *BirkhoffRandom) Epsilon() float64 { return s.epsilon }

// NumComponents returns the number of permutations in the decomposition.
func (s *BirkhoffRandom) NumComponents() int { return len(s.comps) }

// Name returns "birkhoff-random".
func (*BirkhoffRandom) Name() string { return "birkhoff-random" }

// Schedule samples a permutation and serves the shortest flow of each
// matched, non-empty VOQ.
func (s *BirkhoffRandom) Schedule(t *flow.Table) []*flow.Flow {
	if t.NumNonEmpty() == 0 {
		return nil
	}
	perm := s.comps[s.sample()].Perm
	if len(perm) != t.N() {
		panic(fmt.Sprintf("sched: birkhoff schedule built for %d ports, fabric has %d", len(perm), t.N()))
	}
	var out []*flow.Flow
	for i, j := range perm {
		if f := t.VOQ(i, j).Top(); f != nil {
			out = append(out, f)
		}
	}
	return out
}

// sample draws a component index from the weight distribution.
func (s *BirkhoffRandom) sample() int {
	u := s.rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
