package sched

import (
	"fmt"
	"slices"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// MaxWeight serves the longest queues first — the classic throughput-
// optimal (but delay-oblivious) input-queued switch discipline, and the
// V = 0 limit of the BASRPT family. Within a chosen VOQ the shortest flow
// transmits.
type MaxWeight struct {
	g greedy
}

var _ Scheduler = (*MaxWeight)(nil)
var _ DirtyConsumer = (*MaxWeight)(nil)
var _ IndexChecker = (*MaxWeight)(nil)

// NewMaxWeight returns a MaxWeight scheduler.
func NewMaxWeight() *MaxWeight { return &MaxWeight{} }

// Name returns "maxweight".
func (*MaxWeight) Name() string { return "maxweight" }

func (*MaxWeight) key(c Candidate) float64 { return -c.QueueLen }

// Schedule selects flows greedily by descending VOQ backlog, maintained
// in the incremental candidate index.
func (s *MaxWeight) Schedule(t *flow.Table) []*flow.Flow {
	return s.g.scheduleIndexed(t, s.key)
}

// SetIncremental toggles the incremental candidate index (on by default).
func (s *MaxWeight) SetIncremental(on bool) { s.g.setIncremental(on) }

// ConsumesDirty implements DirtyConsumer.
func (s *MaxWeight) ConsumesDirty() bool { return s.g.consumesDirty() }

// CheckIndex implements IndexChecker.
func (s *MaxWeight) CheckIndex(t *flow.Table) error { return s.g.checkIndex(t, s.key) }

// IndexStats implements IndexStatser.
func (s *MaxWeight) IndexStats() IndexStats { return s.g.indexStats() }

// FIFOMatch serves flows in arrival order: the oldest flow among the
// non-empty VOQs wins each greedy step. It is the classic "fair but slow"
// reference against which SRPT's delay advantage is usually shown.
type FIFOMatch struct {
	g greedy
}

var _ Scheduler = (*FIFOMatch)(nil)

// NewFIFOMatch returns a FIFO scheduler.
func NewFIFOMatch() *FIFOMatch { return &FIFOMatch{} }

// Name returns "fifo".
func (*FIFOMatch) Name() string { return "fifo" }

// Schedule selects flows greedily by arrival time. Unlike the size-based
// disciplines, the per-VOQ candidate is the earliest-arrived flow, which
// requires an O(q) scan of each VOQ.
func (s *FIFOMatch) Schedule(t *flow.Table) []*flow.Flow {
	s.g.cands = s.g.cands[:0]
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		var oldest *flow.Flow
		q.ForEachFlow(func(f *flow.Flow) {
			if oldest == nil || f.Arrival < oldest.Arrival ||
				(f.Arrival == oldest.Arrival && f.ID < oldest.ID) {
				oldest = f
			}
		})
		s.g.cands = append(s.g.cands, scored{key: oldest.Arrival, f: oldest})
	})
	if len(s.g.cands) == 0 {
		return nil
	}
	slices.SortFunc(s.g.cands, cmpScored)
	return s.g.pick(t.N())
}

// ThresholdBacklog is the simple backlog-aware strategy of the paper's
// Figure 2 motivation: flows whose VOQ backlog exceeds the threshold are
// prioritized (longest backlog first); all other flows are scheduled by
// plain SRPT behind them.
type ThresholdBacklog struct {
	threshold float64
	g         greedy
}

var _ Scheduler = (*ThresholdBacklog)(nil)
var _ DirtyConsumer = (*ThresholdBacklog)(nil)
var _ IndexChecker = (*ThresholdBacklog)(nil)

// NewThresholdBacklog returns the threshold strategy. threshold is the
// backlog level (same unit as flow sizes) above which a VOQ jumps the SRPT
// queue.
func NewThresholdBacklog(threshold float64) *ThresholdBacklog {
	return &ThresholdBacklog{threshold: threshold}
}

// Threshold returns the configured backlog threshold.
func (s *ThresholdBacklog) Threshold() float64 { return s.threshold }

// Name returns "threshold(T=...)".
func (s *ThresholdBacklog) Name() string { return fmt.Sprintf("threshold(T=%g)", s.threshold) }

// key is the two-band priority: over-threshold VOQs map to negative
// values ordered by descending backlog while the rest keep their SRPT
// ordering at >= 0.
func (s *ThresholdBacklog) key(c Candidate) float64 {
	if c.QueueLen > s.threshold {
		return -c.QueueLen
	}
	return c.Flow.Remaining
}

// Schedule prioritizes over-threshold backlogs, then falls back to SRPT,
// with candidates maintained in the incremental index.
func (s *ThresholdBacklog) Schedule(t *flow.Table) []*flow.Flow {
	return s.g.scheduleIndexed(t, s.key)
}

// SetIncremental toggles the incremental candidate index (on by default).
func (s *ThresholdBacklog) SetIncremental(on bool) { s.g.setIncremental(on) }

// ConsumesDirty implements DirtyConsumer.
func (s *ThresholdBacklog) ConsumesDirty() bool { return s.g.consumesDirty() }

// CheckIndex implements IndexChecker.
func (s *ThresholdBacklog) CheckIndex(t *flow.Table) error { return s.g.checkIndex(t, s.key) }

// IndexStats implements IndexStatser.
func (s *ThresholdBacklog) IndexStats() IndexStats { return s.g.indexStats() }

// Random picks a uniformly random maximal matching each decision. It is the
// naive lower bound for both delay and stability experiments, and doubles
// as a randomized-schedule existence check for the Birkhoff argument.
type Random struct {
	rng *stats.RNG
	g   greedy
}

var _ Scheduler = (*Random)(nil)

// NewRandom builds a random scheduler with its own deterministic stream.
func NewRandom(seed uint64) *Random {
	return &Random{rng: stats.NewRNG(seed)}
}

// Name returns "random".
func (*Random) Name() string { return "random" }

// Schedule shuffles the candidate VOQs and greedily picks a maximal
// matching in that order.
func (r *Random) Schedule(t *flow.Table) []*flow.Flow {
	r.g.gather(t, func(Candidate) float64 { return 0 })
	if len(r.g.cands) == 0 {
		return nil
	}
	// Fisher–Yates over the gathered candidates.
	for i := len(r.g.cands) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		r.g.cands[i], r.g.cands[j] = r.g.cands[j], r.g.cands[i]
	}
	return r.g.pick(t.N())
}
