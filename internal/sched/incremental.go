package sched

import (
	"fmt"
	"slices"

	"basrpt/internal/flow"
)

// candidateIndex is the persistent incremental core behind the greedy
// disciplines: every non-empty VOQ's scored candidate (key over
// Top().Remaining and Backlog()), held as a slice permanently sorted in
// cmpScored order and kept in sync with the table's dirty-VOQ change feed
// (see the internal/flow package doc). Between decisions only the dirty
// VOQs change, so a repair re-scores just those k entries, sorts them
// (k·log k), and splices them into the surviving order with one linear
// merge (M). Selection is then a comparison-free scan of the already-
// sorted view, instead of the from-scratch path's gather-and-sort over
// all M non-empty VOQs (M·log M) on every event.
//
// Validity contract: the index is the delta consumer of exactly one
// table. It is current when it points at the table being scheduled and
// its basis equals the table's DirtyBasis (nobody else consumed the feed
// since the index last synchronized). Anything else — first call, table
// swap, a foreign ClearDirty — triggers a transparent full rebuild.
// Because keys are pure functions of (Remaining, Backlog) and cmpScored
// is a strict total order over distinct VOQs, the maintained order equals
// the from-scratch sorted order bit for bit; decision equivalence is
// property-tested.
type candidateIndex struct {
	table *flow.Table
	basis uint64 // table.DirtyBasis() at the last synchronization
	n     int

	view []scored // all current candidates, strictly cmpScored-ascending

	// Repair bookkeeping. stale stamps each VOQ (src*n+dst) with the
	// generation of the repair that last touched it; during the merge,
	// view entries whose VOQ carries the current generation have been
	// superseded (re-scored or emptied) and are skipped. Stamping instead
	// of clearing keeps repair cost proportional to the dirty set.
	stale []uint64
	gen   uint64

	changes []scored // repair scratch: the re-scored dirty candidates
	merged  []scored // repair double buffer, swapped with view

	// Check bookkeeping (deep-validation cross-check only): the same
	// generation-stamp idiom as stale, deduplicating view entries by VOQ
	// without building a per-call map.
	checkSeen []uint64
	checkCand []scored
	checkGen  uint64

	repairs  int64 // sync calls satisfied by a delta repair
	rebuilds int64 // sync calls that needed a full rebuild
}

// current reports whether the index still describes t exactly: same
// table, same basis (no foreign consumer), and the geometry matches.
func (ix *candidateIndex) current(t *flow.Table) bool {
	return ix.table == t && ix.n == t.N() && ix.basis == t.DirtyBasis()
}

// synced reports whether the index equals a from-scratch build of t right
// now: current and no unconsumed mutations. Used by the deep-validation
// cross-check, which must not flag an index that is merely awaiting its
// next delta (e.g. while an outage fallback serves held decisions).
func (ix *candidateIndex) synced(t *flow.Table) bool {
	return ix.current(t) && t.NumDirty() == 0
}

// sync brings the index up to date with t and consumes the dirty feed:
// a delta repair over the dirty VOQs when the index is current, a full
// rebuild otherwise.
func (ix *candidateIndex) sync(t *flow.Table, key Key) {
	if ix.current(t) {
		ix.repairs++
		ix.repair(t, key)
	} else {
		ix.rebuilds++
		ix.rebuild(t, key)
	}
	t.ClearDirty()
	ix.basis = t.DirtyBasis()
}

// rebuild reconstructs the sorted view from every non-empty VOQ of t.
func (ix *candidateIndex) rebuild(t *flow.Table, key Key) {
	n := t.N()
	if len(ix.stale) != n*n {
		// Fresh zeroed stamps can never equal a repair generation: repair
		// pre-increments gen, so the current generation is always positive
		// and greater than every stamp written before the rebuild.
		ix.stale = make([]uint64, n*n)
	}
	ix.table = t
	ix.n = n
	view := ix.view[:0]
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		f := q.Top()
		view = append(view, scored{
			key: key(Candidate{Flow: f, QueueLen: q.Backlog()}),
			f:   f,
			voq: q.Src*n + q.Dst,
		})
	})
	slices.SortFunc(view, cmpScored)
	ix.view = view
}

// repair splices the dirty VOQs' re-scored candidates into the sorted
// view: stamp every dirty VOQ stale, sort the k replacement entries, then
// merge them with the surviving entries in one pass. Both inputs are
// cmpScored-sorted and disjoint (a surviving entry's VOQ is not dirty),
// so the output is the exact sorted order a full rebuild would produce.
//
// The staleness test reads e.voq, never e.f: a stale entry's flow may
// have completed and been recycled through the flow free list since the
// last sync, in which case the pointer now describes an unrelated flow in
// a different VOQ. Surviving (non-stale) entries sit in VOQs untouched
// since the last sync, so their flows are necessarily still live and safe
// for cmpScored to dereference.
func (ix *candidateIndex) repair(t *flow.Table, key Key) {
	ix.gen++
	gen := ix.gen
	changes := ix.changes[:0]
	t.ForEachDirty(func(q *flow.VOQ) {
		voq := q.Src*ix.n + q.Dst
		ix.stale[voq] = gen
		if q.Len() > 0 {
			f := q.Top()
			changes = append(changes, scored{
				key: key(Candidate{Flow: f, QueueLen: q.Backlog()}),
				f:   f,
				voq: voq,
			})
		}
	})
	slices.SortFunc(changes, cmpScored)
	merged := ix.merged[:0]
	j := 0
	for _, e := range ix.view {
		if ix.stale[e.voq] == gen {
			continue // superseded (or emptied) by this repair
		}
		for j < len(changes) && cmpScored(changes[j], e) < 0 {
			merged = append(merged, changes[j])
			j++
		}
		merged = append(merged, e)
	}
	merged = append(merged, changes[j:]...)
	ix.changes = changes[:0]
	ix.merged = ix.view[:0]
	ix.view = merged
}

// pick runs the greedy crossbar loop straight over the maintained sorted
// view — no regather, no comparisons. marks is the caller's epoch-stamped
// busy scratch, already reset for this decision; selected is the caller's
// decision scratch, appended to and returned. The scan serves entries in
// the cmpScored total order, so the decision is bit-identical to the
// from-scratch path; it stops early once the matching saturates the
// scarcer side of the crossbar.
func (ix *candidateIndex) pick(marks *portMarks, selected []*flow.Flow) []*flow.Flow {
	free := ix.n // ports still free on the scarcer side
	for _, c := range ix.view {
		f := c.f
		if marks.taken(f) {
			continue
		}
		marks.take(f)
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	return selected
}

// check verifies the index against a from-scratch view of t: entry count,
// per-VOQ candidate identity, exact key values, and strict sorted order.
// It reports nil when the index is not synced with t — a stale index is
// not wrong, it will resynchronize when consulted.
func (ix *candidateIndex) check(t *flow.Table, key Key) error {
	if !ix.synced(t) {
		return nil
	}
	if got, want := len(ix.view), t.NumNonEmpty(); got != want {
		return fmt.Errorf("sched: index holds %d candidates, table has %d non-empty VOQs", got, want)
	}
	// Dedup by VOQ with persistent generation-stamped slices instead of a
	// per-call map, so the cross-check costs no allocations even when it
	// runs on every decision (DeepValidateEvery: 1).
	if len(ix.checkSeen) != ix.n*ix.n {
		ix.checkSeen = make([]uint64, ix.n*ix.n)
		ix.checkCand = make([]scored, ix.n*ix.n)
	}
	ix.checkGen++
	for i, c := range ix.view {
		if i > 0 && cmpScored(ix.view[i-1], c) >= 0 {
			return fmt.Errorf("sched: index sorted order violated at entry %d", i)
		}
		ix.checkSeen[c.voq] = ix.checkGen
		ix.checkCand[c.voq] = c
	}
	var err error
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		if err != nil {
			return
		}
		voq := q.Src*ix.n + q.Dst
		if ix.checkSeen[voq] != ix.checkGen {
			err = fmt.Errorf("sched: non-empty VOQ (%d,%d) has no index entry", q.Src, q.Dst)
			return
		}
		c := ix.checkCand[voq]
		if c.f != q.Top() {
			err = fmt.Errorf("sched: index candidate for VOQ (%d,%d) is flow %d, from-scratch picks %d",
				q.Src, q.Dst, c.f.ID, q.Top().ID)
			return
		}
		if want := key(Candidate{Flow: q.Top(), QueueLen: q.Backlog()}); c.key != want {
			err = fmt.Errorf("sched: index key for VOQ (%d,%d) is %g, from-scratch computes %g",
				q.Src, q.Dst, c.key, want)
		}
	})
	return err
}
