package sched

import (
	"fmt"
	"slices"

	"basrpt/internal/flow"
)

// candidateIndex is the persistent incremental core behind the greedy
// disciplines: every non-empty VOQ's scored candidate (key over
// Top().Remaining and Backlog()), held as a slice permanently sorted in
// cmpScored order and kept in sync with the table's dirty-VOQ change feed
// (see the internal/flow package doc). Between decisions only the dirty
// VOQs change, so a repair re-scores just those k entries, sorts them
// (k·log k), and splices them into the surviving order with one linear
// merge (M). Selection is then a comparison-free scan of the already-
// sorted view, instead of the from-scratch path's gather-and-sort over
// all M non-empty VOQs (M·log M) on every event.
//
// Validity contract: the index is the delta consumer of exactly one
// table. It is current when it points at the table being scheduled and
// its basis equals the table's DirtyBasis (nobody else consumed the feed
// since the index last synchronized). Anything else — first call, table
// swap, a foreign ClearDirty — triggers a transparent full rebuild.
// Because keys are pure functions of (Remaining, Backlog) and cmpScored
// is a strict total order over distinct VOQs, the maintained order equals
// the from-scratch sorted order bit for bit; decision equivalence is
// property-tested.
type candidateIndex struct {
	table *flow.Table
	basis uint64 // table.DirtyBasis() at the last synchronization
	n     int

	view []scored // all current candidates, strictly cmpScored-ascending

	// Repair bookkeeping. stale stamps each VOQ (src*n+dst) with the
	// generation of the repair that last touched it; during the merge,
	// view entries whose VOQ carries the current generation have been
	// superseded (re-scored or emptied) and are skipped. Stamping instead
	// of clearing keeps repair cost proportional to the dirty set.
	stale []uint64
	gen   uint64

	changes []scored // repair scratch: the re-scored dirty candidates
	merged  []scored // repair double buffer, swapped with view

	repairs  int64 // sync calls satisfied by a delta repair
	rebuilds int64 // sync calls that needed a full rebuild
}

// voqIdx locates the VOQ an entry's flow belongs to.
func (ix *candidateIndex) voqIdx(f *flow.Flow) int { return f.Src*ix.n + f.Dst }

// current reports whether the index still describes t exactly: same
// table, same basis (no foreign consumer), and the geometry matches.
func (ix *candidateIndex) current(t *flow.Table) bool {
	return ix.table == t && ix.n == t.N() && ix.basis == t.DirtyBasis()
}

// synced reports whether the index equals a from-scratch build of t right
// now: current and no unconsumed mutations. Used by the deep-validation
// cross-check, which must not flag an index that is merely awaiting its
// next delta (e.g. while an outage fallback serves held decisions).
func (ix *candidateIndex) synced(t *flow.Table) bool {
	return ix.current(t) && t.NumDirty() == 0
}

// sync brings the index up to date with t and consumes the dirty feed:
// a delta repair over the dirty VOQs when the index is current, a full
// rebuild otherwise.
func (ix *candidateIndex) sync(t *flow.Table, key Key) {
	if ix.current(t) {
		ix.repairs++
		ix.repair(t, key)
	} else {
		ix.rebuilds++
		ix.rebuild(t, key)
	}
	t.ClearDirty()
	ix.basis = t.DirtyBasis()
}

// rebuild reconstructs the sorted view from every non-empty VOQ of t.
func (ix *candidateIndex) rebuild(t *flow.Table, key Key) {
	n := t.N()
	if len(ix.stale) != n*n {
		// Fresh zeroed stamps can never equal a repair generation: repair
		// pre-increments gen, so the current generation is always positive
		// and greater than every stamp written before the rebuild.
		ix.stale = make([]uint64, n*n)
	}
	ix.table = t
	ix.n = n
	view := ix.view[:0]
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		f := q.Top()
		view = append(view, scored{key: key(Candidate{Flow: f, QueueLen: q.Backlog()}), f: f})
	})
	slices.SortFunc(view, cmpScored)
	ix.view = view
}

// repair splices the dirty VOQs' re-scored candidates into the sorted
// view: stamp every dirty VOQ stale, sort the k replacement entries, then
// merge them with the surviving entries in one pass. Both inputs are
// cmpScored-sorted and disjoint (a surviving entry's VOQ is not dirty),
// so the output is the exact sorted order a full rebuild would produce.
func (ix *candidateIndex) repair(t *flow.Table, key Key) {
	ix.gen++
	gen := ix.gen
	changes := ix.changes[:0]
	t.ForEachDirty(func(q *flow.VOQ) {
		ix.stale[q.Src*ix.n+q.Dst] = gen
		if q.Len() > 0 {
			f := q.Top()
			changes = append(changes, scored{key: key(Candidate{Flow: f, QueueLen: q.Backlog()}), f: f})
		}
	})
	slices.SortFunc(changes, cmpScored)
	merged := ix.merged[:0]
	j := 0
	for _, e := range ix.view {
		if ix.stale[ix.voqIdx(e.f)] == gen {
			continue // superseded (or emptied) by this repair
		}
		for j < len(changes) && cmpScored(changes[j], e) < 0 {
			merged = append(merged, changes[j])
			j++
		}
		merged = append(merged, e)
	}
	merged = append(merged, changes[j:]...)
	ix.changes = changes[:0]
	ix.merged = ix.view[:0]
	ix.view = merged
}

// pick runs the greedy crossbar loop straight over the maintained sorted
// view — no regather, no comparisons. ingress and egress are the caller's
// scratch busy arrays, zeroed here. The scan serves entries in the
// cmpScored total order, so the decision is bit-identical to the
// from-scratch path; it stops early once the matching saturates the
// scarcer side of the crossbar.
func (ix *candidateIndex) pick(ingress, egress []bool) []*flow.Flow {
	for i := range ingress {
		ingress[i] = false
		egress[i] = false
	}
	limit := ix.n
	if len(ix.view) < limit {
		limit = len(ix.view)
	}
	selected := make([]*flow.Flow, 0, limit)
	free := ix.n // ports still free on the scarcer side
	for _, c := range ix.view {
		f := c.f
		if ingress[f.Src] || egress[f.Dst] {
			continue
		}
		ingress[f.Src] = true
		egress[f.Dst] = true
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	return selected
}

// check verifies the index against a from-scratch view of t: entry count,
// per-VOQ candidate identity, exact key values, and strict sorted order.
// It reports nil when the index is not synced with t — a stale index is
// not wrong, it will resynchronize when consulted.
func (ix *candidateIndex) check(t *flow.Table, key Key) error {
	if !ix.synced(t) {
		return nil
	}
	if got, want := len(ix.view), t.NumNonEmpty(); got != want {
		return fmt.Errorf("sched: index holds %d candidates, table has %d non-empty VOQs", got, want)
	}
	byVOQ := make(map[int]scored, len(ix.view))
	for i, c := range ix.view {
		if i > 0 && cmpScored(ix.view[i-1], c) >= 0 {
			return fmt.Errorf("sched: index sorted order violated at entry %d", i)
		}
		byVOQ[ix.voqIdx(c.f)] = c
	}
	var err error
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		if err != nil {
			return
		}
		c, ok := byVOQ[q.Src*ix.n+q.Dst]
		if !ok {
			err = fmt.Errorf("sched: non-empty VOQ (%d,%d) has no index entry", q.Src, q.Dst)
			return
		}
		if c.f != q.Top() {
			err = fmt.Errorf("sched: index candidate for VOQ (%d,%d) is flow %d, from-scratch picks %d",
				q.Src, q.Dst, c.f.ID, q.Top().ID)
			return
		}
		if want := key(Candidate{Flow: q.Top(), QueueLen: q.Backlog()}); c.key != want {
			err = fmt.Errorf("sched: index key for VOQ (%d,%d) is %g, from-scratch computes %g",
				q.Src, q.Dst, c.key, want)
		}
	})
	return err
}
