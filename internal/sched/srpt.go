package sched

import "basrpt/internal/flow"

// SRPT is the Shortest Remaining Processing Time discipline as used in
// data-center transports (PDQ, pFabric, PASE): flows are considered in
// non-decreasing order of remaining size and greedily added until every
// remaining flow is blocked by the crossbar constraint. This is the
// approximate multi-link SRPT the paper describes in Section II-A, with
// near-ideal delay but — as the paper demonstrates — a reduced stability
// region.
type SRPT struct {
	g greedy
}

var _ Scheduler = (*SRPT)(nil)

// NewSRPT returns an SRPT scheduler.
func NewSRPT() *SRPT { return &SRPT{} }

// Name returns "srpt".
func (*SRPT) Name() string { return "srpt" }

// Schedule selects flows greedily by remaining size.
func (s *SRPT) Schedule(t *flow.Table) []*flow.Flow {
	return s.g.schedule(t, func(c Candidate) float64 { return c.Flow.Remaining })
}
