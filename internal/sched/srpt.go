package sched

import "basrpt/internal/flow"

// SRPT is the Shortest Remaining Processing Time discipline as used in
// data-center transports (PDQ, pFabric, PASE): flows are considered in
// non-decreasing order of remaining size and greedily added until every
// remaining flow is blocked by the crossbar constraint. This is the
// approximate multi-link SRPT the paper describes in Section II-A, with
// near-ideal delay but — as the paper demonstrates — a reduced stability
// region.
type SRPT struct {
	g greedy
}

var _ Scheduler = (*SRPT)(nil)
var _ DirtyConsumer = (*SRPT)(nil)
var _ IndexChecker = (*SRPT)(nil)

// NewSRPT returns an SRPT scheduler.
func NewSRPT() *SRPT { return &SRPT{} }

// Name returns "srpt".
func (*SRPT) Name() string { return "srpt" }

func (*SRPT) key(c Candidate) float64 { return c.Flow.Remaining }

// Schedule selects flows greedily by remaining size, maintained in the
// incremental candidate index.
func (s *SRPT) Schedule(t *flow.Table) []*flow.Flow {
	return s.g.scheduleIndexed(t, s.key)
}

// SetIncremental toggles the incremental candidate index (on by default);
// off forces the from-scratch rebuild every call — the old-vs-new
// benchmark baseline.
func (s *SRPT) SetIncremental(on bool) { s.g.setIncremental(on) }

// ConsumesDirty implements DirtyConsumer.
func (s *SRPT) ConsumesDirty() bool { return s.g.consumesDirty() }

// CheckIndex implements IndexChecker.
func (s *SRPT) CheckIndex(t *flow.Table) error { return s.g.checkIndex(t, s.key) }

// IndexStats implements IndexStatser.
func (s *SRPT) IndexStats() IndexStats { return s.g.indexStats() }
