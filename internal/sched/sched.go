// Package sched implements the flow-scheduling disciplines studied in the
// paper: SRPT (the baseline used by PDQ/pFabric/PASE), the exact
// backlog-aware BASRPT (drift-plus-penalty minimization over all maximal
// matchings), fast BASRPT (paper Algorithm 1), and reference baselines
// (MaxWeight, FIFO, threshold-backlog SRPT, random).
//
// A scheduler receives the current VOQ table and returns the set of flows
// to serve. The returned set always forms a matching under the crossbar
// constraint — at most one flow per ingress port and one per egress port —
// and for the greedy disciplines it is maximal over the non-empty VOQs.
//
// Efficiency note (documented in DESIGN.md §2): every discipline here
// ranks VOQ-mates identically — queue length is shared within a VOQ and
// every key is non-decreasing in remaining size — so only each VOQ's
// minimum-remaining flow can ever be selected. Schedulers therefore
// consider one candidate per non-empty VOQ (at most N², usually far fewer)
// instead of every active flow. Decision equivalence with the
// sort-all-flows formulation is property-tested.
//
// Schedulers run on every flow arrival and completion, so the greedy core
// reuses its scratch buffers between calls; construct disciplines with
// their New* constructors and do not share one instance across goroutines.
// The multi-seed worker pool (internal/runner) honors this by invoking the
// constructor inside each replicate's task, so every concurrent simulation
// owns a private scheduler instance.
package sched

import (
	"fmt"
	"slices"

	"basrpt/internal/flow"
)

// Scheduler selects the flows to serve given the current fabric state.
type Scheduler interface {
	// Name identifies the discipline in reports.
	Name() string
	// Schedule returns the flows to serve now. The table must be treated
	// as read-only. The result is a crossbar matching and is freshly
	// allocated on each call (callers may retain it across events).
	Schedule(t *flow.Table) []*flow.Flow
}

// Candidate pairs a flow with the backlog of the VOQ it sits in, the two
// quantities every discipline's key is built from.
type Candidate struct {
	Flow     *flow.Flow
	QueueLen float64
}

// Key orders candidates: lower keys schedule first. Ties are broken
// deterministically (src, then dst, then flow ID) by the greedy driver.
type Key func(c Candidate) float64

// scored is a candidate with its key precomputed, so sorting never calls
// back into the discipline.
type scored struct {
	key float64
	f   *flow.Flow
}

// greedy is the shared greedy-matching core of SRPT and fast BASRPT
// (paper Algorithm 1): walk candidates in non-decreasing key order, keep
// each flow whose ingress and egress ports are both free. Its buffers are
// reused across calls.
type greedy struct {
	cands       []scored
	ingressBusy []bool
	egressBusy  []bool
}

// gather collects one scored candidate per non-empty VOQ.
func (g *greedy) gather(t *flow.Table, key Key) {
	g.cands = g.cands[:0]
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		f := q.Top()
		g.cands = append(g.cands, scored{key: key(Candidate{Flow: f, QueueLen: q.Backlog()}), f: f})
	})
}

// cmpScored orders by key with deterministic (src, dst, id) tie-breaks.
func cmpScored(a, b scored) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	case a.f.Src != b.f.Src:
		return a.f.Src - b.f.Src
	case a.f.Dst != b.f.Dst:
		return a.f.Dst - b.f.Dst
	case a.f.ID < b.f.ID:
		return -1
	case a.f.ID > b.f.ID:
		return 1
	default:
		return 0
	}
}

// pick runs the greedy crossbar loop over g.cands in their current order.
func (g *greedy) pick(n int) []*flow.Flow {
	if cap(g.ingressBusy) < n {
		g.ingressBusy = make([]bool, n)
		g.egressBusy = make([]bool, n)
	}
	ingress := g.ingressBusy[:n]
	egress := g.egressBusy[:n]
	for i := range ingress {
		ingress[i] = false
		egress[i] = false
	}
	limit := n
	if len(g.cands) < limit {
		limit = len(g.cands)
	}
	selected := make([]*flow.Flow, 0, limit)
	free := n // ports still free on the scarcer side
	for _, c := range g.cands {
		f := c.f
		if ingress[f.Src] || egress[f.Dst] {
			continue
		}
		ingress[f.Src] = true
		egress[f.Dst] = true
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	return selected
}

// heapSelectThreshold is the candidate count above which the greedy core
// switches from full sort to heap selection. At paper scale (144 hosts,
// up to N² = 20k non-empty VOQs) a decision usually completes after ~N
// pops, so heap selection is an order of magnitude cheaper than sorting
// everything; below the threshold the sort's constant factor wins.
const heapSelectThreshold = 64

// schedule is gather + order + pick. Ordering uses a full sort for small
// candidate sets and lazy heap selection for large ones; both produce the
// identical decision (property-tested).
func (g *greedy) schedule(t *flow.Table, key Key) []*flow.Flow {
	g.gather(t, key)
	if len(g.cands) == 0 {
		return nil
	}
	if len(g.cands) >= heapSelectThreshold {
		return g.heapPick(t.N())
	}
	slices.SortFunc(g.cands, cmpScored)
	return g.pick(t.N())
}

// heapPick selects greedily by popping a min-heap of candidates, stopping
// as soon as the matching is complete. Pop order equals sorted order, so
// the decision matches the sort path exactly.
func (g *greedy) heapPick(n int) []*flow.Flow {
	if cap(g.ingressBusy) < n {
		g.ingressBusy = make([]bool, n)
		g.egressBusy = make([]bool, n)
	}
	ingress := g.ingressBusy[:n]
	egress := g.egressBusy[:n]
	for i := range ingress {
		ingress[i] = false
		egress[i] = false
	}

	heap := g.cands
	// Bottom-up heapify: O(len).
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i)
	}
	limit := n
	if len(heap) < limit {
		limit = len(heap)
	}
	selected := make([]*flow.Flow, 0, limit)
	free := n
	for len(heap) > 0 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		if len(heap) > 0 {
			siftDown(heap, 0)
		}
		f := top.f
		if ingress[f.Src] || egress[f.Dst] {
			continue
		}
		ingress[f.Src] = true
		egress[f.Dst] = true
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	return selected
}

func siftDown(heap []scored, i int) {
	n := len(heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && cmpScored(heap[right], heap[left]) < 0 {
			smallest = right
		}
		if cmpScored(heap[smallest], heap[i]) >= 0 {
			return
		}
		heap[i], heap[smallest] = heap[smallest], heap[i]
		i = smallest
	}
}

// ValidateDecision checks the crossbar constraint on a decision and that
// every selected flow is attached. Simulators call this in debug paths and
// tests use it as the core invariant.
func ValidateDecision(n int, decision []*flow.Flow) error {
	ingress := make([]bool, n)
	egress := make([]bool, n)
	for _, f := range decision {
		if f == nil {
			return fmt.Errorf("sched: nil flow in decision")
		}
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("sched: flow %d ports (%d,%d) out of range", f.ID, f.Src, f.Dst)
		}
		if ingress[f.Src] {
			return fmt.Errorf("sched: ingress %d used twice", f.Src)
		}
		if egress[f.Dst] {
			return fmt.Errorf("sched: egress %d used twice", f.Dst)
		}
		ingress[f.Src] = true
		egress[f.Dst] = true
	}
	return nil
}

// IsMaximalDecision reports whether no additional non-empty VOQ could be
// served on top of decision.
func IsMaximalDecision(t *flow.Table, decision []*flow.Flow) bool {
	n := t.N()
	ingress := make([]bool, n)
	egress := make([]bool, n)
	for _, f := range decision {
		ingress[f.Src] = true
		egress[f.Dst] = true
	}
	maximal := true
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		if !ingress[q.Src] && !egress[q.Dst] {
			maximal = false
		}
	})
	return maximal
}
