// Package sched implements the flow-scheduling disciplines studied in the
// paper: SRPT (the baseline used by PDQ/pFabric/PASE), the exact
// backlog-aware BASRPT (drift-plus-penalty minimization over all maximal
// matchings), fast BASRPT (paper Algorithm 1), and reference baselines
// (MaxWeight, FIFO, threshold-backlog SRPT, random).
//
// A scheduler receives the current VOQ table and returns the set of flows
// to serve. The returned set always forms a matching under the crossbar
// constraint — at most one flow per ingress port and one per egress port —
// and for the greedy disciplines it is maximal over the non-empty VOQs.
//
// Efficiency note (documented in DESIGN.md §2): every discipline here
// ranks VOQ-mates identically — queue length is shared within a VOQ and
// every key is non-decreasing in remaining size — so only each VOQ's
// minimum-remaining flow can ever be selected. Schedulers therefore
// consider one candidate per non-empty VOQ (at most N², usually far fewer)
// instead of every active flow. Decision equivalence with the
// sort-all-flows formulation is property-tested.
//
// On top of the candidate-per-VOQ reduction, the pure-key disciplines
// (SRPT, fast BASRPT, MaxWeight, ThresholdBacklog, NoisyFastBASRPT) keep
// their candidates in a persistent incremental index (candidateIndex)
// driven by the table's dirty-VOQ change feed, so a decision re-scores
// only the VOQs the previous event touched instead of rebuilding and
// re-sorting all of them. The incremental contract: the index is valid
// while it is the sole consumer of one table's change feed (its
// remembered basis equals the table's DirtyBasis); on the first call,
// after a table swap, or after any other consumer cleared the feed — e.g.
// interleaved scheduling of two disciplines on one table — the index
// transparently rebuilds from scratch. Either path yields bit-identical
// decisions (property-tested); FIFOMatch, Random, and ExactBASRPT rank by
// impure or per-call state and stay on the from-scratch path.
//
// Schedulers run on every flow arrival and completion, so the greedy core
// reuses its scratch buffers between calls; construct disciplines with
// their New* constructors and do not share one instance across goroutines.
// The multi-seed worker pool (internal/runner) honors this by invoking the
// constructor inside each replicate's task, so every concurrent simulation
// owns a private scheduler instance.
package sched

import (
	"fmt"
	"slices"

	"basrpt/internal/flow"
)

// Scheduler selects the flows to serve given the current fabric state.
type Scheduler interface {
	// Name identifies the discipline in reports.
	Name() string
	// Schedule returns the flows to serve now. The table must be treated
	// as read-only. The result is a crossbar matching held in scratch the
	// scheduler owns: it is valid only until the next Schedule call on the
	// same instance, which may overwrite it in place. Callers that retain
	// a decision across decisions must copy it first (CloneDecision).
	Schedule(t *flow.Table) []*flow.Flow
}

// CloneDecision copies a Schedule result into a fresh slice for the few
// callers that retain decisions past the next Schedule call (held
// matchings, test fixtures). An empty decision clones to nil.
func CloneDecision(decision []*flow.Flow) []*flow.Flow {
	if len(decision) == 0 {
		return nil
	}
	out := make([]*flow.Flow, len(decision))
	copy(out, decision)
	return out
}

// DirtyConsumer is implemented by schedulers whose Schedule consumes the
// table's dirty-VOQ change feed (flow.Table.ClearDirty). The fabric
// simulator uses it to decide who owns the feed: when the configured
// scheduler is not a consumer, the simulator clears the feed itself after
// each decision so the dirty set cannot grow without bound.
type DirtyConsumer interface {
	ConsumesDirty() bool
}

// IsDirtyConsumer reports whether s consumes the dirty-VOQ feed; wrappers
// (e.g. OutageFallback) delegate to the scheduler they wrap.
func IsDirtyConsumer(s Scheduler) bool {
	dc, ok := s.(DirtyConsumer)
	return ok && dc.ConsumesDirty()
}

// IndexChecker is implemented by schedulers that maintain an incremental
// candidate index. CheckIndex cross-checks the index against a
// from-scratch rebuild over t and returns a descriptive error on any
// divergence; a stale or absent index returns nil (it resynchronizes on
// its next use). The fabric simulator calls it from DeepValidateEvery.
type IndexChecker interface {
	CheckIndex(t *flow.Table) error
}

// CheckIndex runs s's incremental-index self-check when it has one; nil
// otherwise.
func CheckIndex(s Scheduler, t *flow.Table) error {
	if ic, ok := s.(IndexChecker); ok {
		return ic.CheckIndex(t)
	}
	return nil
}

// IndexStats counts the incremental index's maintenance work: how many
// decisions were satisfied by a delta repair of the dirty VOQs versus a
// full rebuild. The observability layer reports them per run — a rebuild
// count above the handful expected (first decision, ablation toggles,
// table swaps) means the single-consumer contract is being violated and
// the index is silently degrading to from-scratch cost.
type IndexStats struct {
	Repairs  int64
	Rebuilds int64
}

// IndexStatser is implemented by schedulers that maintain an incremental
// candidate index; wrappers (e.g. OutageFallback) delegate to the
// scheduler they wrap.
type IndexStatser interface {
	IndexStats() IndexStats
}

// IndexStatsOf returns s's index-maintenance counters when it keeps an
// incremental index; the zero stats otherwise.
func IndexStatsOf(s Scheduler) IndexStats {
	if is, ok := s.(IndexStatser); ok {
		return is.IndexStats()
	}
	return IndexStats{}
}

// Candidate pairs a flow with the backlog of the VOQ it sits in, the two
// quantities every discipline's key is built from.
type Candidate struct {
	Flow     *flow.Flow
	QueueLen float64
}

// Key orders candidates: lower keys schedule first. Ties are broken
// deterministically (src, then dst, then flow ID) by the greedy driver.
type Key func(c Candidate) float64

// scored is a candidate with its key precomputed, so sorting never calls
// back into the discipline. voq caches the flow's VOQ slot (src*n+dst):
// index repair consults it to recognize superseded entries without
// dereferencing f, which may point at a flow that completed — and was
// recycled through the flow free list — since the entry was built.
type scored struct {
	key float64
	f   *flow.Flow
	voq int
}

// portMarks is a pair of epoch-stamped crossbar busy masks: a port is
// busy when its stamp equals the current epoch, so clearing both masks
// for a new decision is one counter increment instead of two O(N) zeroing
// passes, and the backing arrays persist across calls.
type portMarks struct {
	ingress []uint64
	egress  []uint64
	epoch   uint64
}

// reset sizes the masks for n ports and starts a fresh epoch. Newly
// allocated zero stamps can never read as busy: the epoch pre-increments,
// so it is always positive.
func (m *portMarks) reset(n int) {
	if cap(m.ingress) < n {
		m.ingress = make([]uint64, n)
		m.egress = make([]uint64, n)
	}
	m.ingress = m.ingress[:n]
	m.egress = m.egress[:n]
	m.epoch++
}

// taken reports whether either of f's ports is already matched.
func (m *portMarks) taken(f *flow.Flow) bool {
	return m.ingress[f.Src] == m.epoch || m.egress[f.Dst] == m.epoch
}

// take claims both of f's ports for the current decision.
func (m *portMarks) take(f *flow.Flow) {
	m.ingress[f.Src] = m.epoch
	m.egress[f.Dst] = m.epoch
}

// greedy is the shared greedy-matching core of SRPT and fast BASRPT
// (paper Algorithm 1): walk candidates in non-decreasing key order, keep
// each flow whose ingress and egress ports are both free. Its buffers are
// reused across calls, including the selected slice handed back from
// Schedule (see the Scheduler ownership contract).
type greedy struct {
	cands    []scored
	selected []*flow.Flow // decision scratch, returned to the caller
	marks    portMarks

	idx     *candidateIndex // lazily built by scheduleIndexed
	noIndex bool            // benchmarking/ablation: force the from-scratch path
}

// setIncremental toggles the incremental candidate index; disabling it
// drops the index so a later re-enable starts from a clean rebuild.
func (g *greedy) setIncremental(on bool) {
	g.noIndex = !on
	if !on {
		g.idx = nil
	}
}

// consumesDirty reports whether scheduling through g consumes the table's
// dirty-VOQ feed (see flow.Table's change-tracking contract).
func (g *greedy) consumesDirty() bool { return !g.noIndex }

// indexStats returns the index's repair/rebuild counters (zero when the
// index is disabled or not yet built).
func (g *greedy) indexStats() IndexStats {
	if g.idx == nil {
		return IndexStats{}
	}
	return IndexStats{Repairs: g.idx.repairs, Rebuilds: g.idx.rebuilds}
}

// gather collects one scored candidate per non-empty VOQ.
func (g *greedy) gather(t *flow.Table, key Key) {
	g.cands = g.cands[:0]
	n := t.N()
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		f := q.Top()
		g.cands = append(g.cands, scored{
			key: key(Candidate{Flow: f, QueueLen: q.Backlog()}),
			f:   f,
			voq: q.Src*n + q.Dst,
		})
	})
}

// cmpScored orders by key with deterministic (src, dst, id) tie-breaks.
func cmpScored(a, b scored) int {
	switch {
	case a.key < b.key:
		return -1
	case a.key > b.key:
		return 1
	case a.f.Src != b.f.Src:
		return a.f.Src - b.f.Src
	case a.f.Dst != b.f.Dst:
		return a.f.Dst - b.f.Dst
	case a.f.ID < b.f.ID:
		return -1
	case a.f.ID > b.f.ID:
		return 1
	default:
		return 0
	}
}

// pick runs the greedy crossbar loop over g.cands in their current order,
// filling the reusable selected scratch.
func (g *greedy) pick(n int) []*flow.Flow {
	g.marks.reset(n)
	selected := g.selected[:0]
	free := n // ports still free on the scarcer side
	for _, c := range g.cands {
		f := c.f
		if g.marks.taken(f) {
			continue
		}
		g.marks.take(f)
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	g.selected = selected
	return selected
}

// heapSelectThreshold is the candidate count above which the greedy core
// switches from full sort to heap selection. At paper scale (144 hosts,
// up to N² = 20k non-empty VOQs) a decision usually completes after ~N
// pops, so heap selection is an order of magnitude cheaper than sorting
// everything; below the threshold the sort's constant factor wins.
const heapSelectThreshold = 64

// schedule is gather + order + pick — the from-scratch path. Ordering uses
// a full sort for small candidate sets and lazy heap selection for large
// ones; both produce the identical decision (property-tested).
func (g *greedy) schedule(t *flow.Table, key Key) []*flow.Flow {
	g.gather(t, key)
	if len(g.cands) == 0 {
		return nil
	}
	if len(g.cands) >= heapSelectThreshold {
		return g.heapPick(t.N())
	}
	slices.SortFunc(g.cands, cmpScored)
	return g.pick(t.N())
}

// scheduleIndexed is schedule through the incremental candidate index:
// delta-repair the index's sorted view from the table's dirty feed (full
// rebuild when the feed basis does not match), then select by scanning
// the view in place. The scan serves entries in the cmpScored total
// order, so the decision is bit-identical to the from-scratch path.
func (g *greedy) scheduleIndexed(t *flow.Table, key Key) []*flow.Flow {
	if g.noIndex {
		return g.schedule(t, key)
	}
	if g.idx == nil {
		g.idx = &candidateIndex{}
	}
	g.idx.sync(t, key)
	if len(g.idx.view) == 0 {
		g.selected = g.selected[:0]
		return nil
	}
	g.marks.reset(t.N())
	g.selected = g.idx.pick(&g.marks, g.selected[:0])
	return g.selected
}

// checkIndex cross-checks the incremental index against a from-scratch
// rebuild; nil when the index is disabled, not yet built, or stale (a
// stale index resynchronizes on its next use and so is not an error).
func (g *greedy) checkIndex(t *flow.Table, key Key) error {
	if g.noIndex || g.idx == nil {
		return nil
	}
	return g.idx.check(t, key)
}

// heapPick selects greedily by heapifying and popping g.cands, stopping
// as soon as the matching is complete. Pop order equals sorted order, so
// the decision matches the sort path exactly.
func (g *greedy) heapPick(n int) []*flow.Flow {
	// Bottom-up heapify: O(len).
	for i := len(g.cands)/2 - 1; i >= 0; i-- {
		siftDown(g.cands, i)
	}
	return g.popPick(g.cands, n)
}

// popPick runs the greedy crossbar loop by destructively popping an
// already-heapified candidate slice, filling the reusable selected
// scratch.
func (g *greedy) popPick(heap []scored, n int) []*flow.Flow {
	g.marks.reset(n)
	selected := g.selected[:0]
	free := n
	for len(heap) > 0 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		if len(heap) > 0 {
			siftDown(heap, 0)
		}
		f := top.f
		if g.marks.taken(f) {
			continue
		}
		g.marks.take(f)
		selected = append(selected, f)
		if free--; free == 0 {
			break
		}
	}
	g.selected = selected
	return selected
}

func siftDown(heap []scored, i int) {
	n := len(heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && cmpScored(heap[right], heap[left]) < 0 {
			smallest = right
		}
		if cmpScored(heap[smallest], heap[i]) >= 0 {
			return
		}
		heap[i], heap[smallest] = heap[smallest], heap[i]
		i = smallest
	}
}

// Validator re-checks decisions without allocating: it owns a pair of
// epoch-stamped busy masks that persist across calls, so validation on
// every decision (fabricsim's ValidateDecisions mode) no longer skews
// allocation profiles. The zero value is ready to use; like schedulers,
// an instance must not be shared across goroutines.
type Validator struct {
	marks portMarks
}

// ValidateDecision checks the crossbar constraint on a decision and that
// every port is in range. Simulators call this in debug paths and tests
// use it as the core invariant.
func (v *Validator) ValidateDecision(n int, decision []*flow.Flow) error {
	v.marks.reset(n)
	for _, f := range decision {
		if f == nil {
			return fmt.Errorf("sched: nil flow in decision")
		}
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("sched: flow %d ports (%d,%d) out of range", f.ID, f.Src, f.Dst)
		}
		if v.marks.ingress[f.Src] == v.marks.epoch {
			return fmt.Errorf("sched: ingress %d used twice", f.Src)
		}
		if v.marks.egress[f.Dst] == v.marks.epoch {
			return fmt.Errorf("sched: egress %d used twice", f.Dst)
		}
		v.marks.take(f)
	}
	return nil
}

// IsMaximalDecision reports whether no additional non-empty VOQ could be
// served on top of decision.
func (v *Validator) IsMaximalDecision(t *flow.Table, decision []*flow.Flow) bool {
	v.marks.reset(t.N())
	for _, f := range decision {
		v.marks.take(f)
	}
	maximal := true
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		if v.marks.ingress[q.Src] != v.marks.epoch && v.marks.egress[q.Dst] != v.marks.epoch {
			maximal = false
		}
	})
	return maximal
}

// ValidateDecision is the one-shot form of Validator.ValidateDecision for
// call sites that do not validate in a loop.
func ValidateDecision(n int, decision []*flow.Flow) error {
	var v Validator
	return v.ValidateDecision(n, decision)
}

// IsMaximalDecision is the one-shot form of Validator.IsMaximalDecision.
func IsMaximalDecision(t *flow.Table, decision []*flow.Flow) bool {
	var v Validator
	return v.IsMaximalDecision(t, decision)
}
