package sched

import (
	"fmt"
	"math"

	"basrpt/internal/flow"
	"basrpt/internal/matching"
)

// FastBASRPT is paper Algorithm 1: flows are considered in non-decreasing
// order of (V/N)·remaining − queueLength and greedily added under the
// crossbar constraint. Summing that key over a full N-flow decision yields
// V·ȳ − ΣXijRij, the exact BASRPT objective, so the greedy rule
// approximately minimizes the drift-plus-penalty bound while assigning
// every flow a global priority — which is what makes a distributed
// implementation possible.
//
// V >= 0 weighs FCT minimization against queue stabilization: V → ∞
// recovers SRPT, V = 0 serves the longest queues (MaxWeight-like).
type FastBASRPT struct {
	v      float64
	vOverN float64 // v / N of the table last scheduled
	g      greedy
}

var _ Scheduler = (*FastBASRPT)(nil)
var _ DirtyConsumer = (*FastBASRPT)(nil)
var _ IndexChecker = (*FastBASRPT)(nil)

// NewFastBASRPT returns a fast BASRPT scheduler with the given tradeoff
// weight V (paper Section IV). It panics on negative V, which the model
// does not define.
func NewFastBASRPT(v float64) *FastBASRPT {
	if v < 0 {
		panic(fmt.Sprintf("sched: negative V %g", v))
	}
	return &FastBASRPT{v: v}
}

// V returns the configured tradeoff weight.
func (s *FastBASRPT) V() float64 { return s.v }

// Name returns "fast-basrpt(V=...)".
func (s *FastBASRPT) Name() string { return fmt.Sprintf("fast-basrpt(V=%g)", s.v) }

func (s *FastBASRPT) key(c Candidate) float64 {
	return s.vOverN*c.Flow.Remaining - c.QueueLen
}

// Schedule selects flows greedily by the Algorithm 1 key, maintained in
// the incremental candidate index. The V/N normalization is fixed per
// table; a table swap re-derives it and rebuilds the index.
func (s *FastBASRPT) Schedule(t *flow.Table) []*flow.Flow {
	s.vOverN = s.v / float64(t.N())
	return s.g.scheduleIndexed(t, s.key)
}

// SetIncremental toggles the incremental candidate index (on by default);
// off forces the from-scratch rebuild every call — the old-vs-new
// benchmark baseline.
func (s *FastBASRPT) SetIncremental(on bool) { s.g.setIncremental(on) }

// ConsumesDirty implements DirtyConsumer.
func (s *FastBASRPT) ConsumesDirty() bool { return s.g.consumesDirty() }

// CheckIndex implements IndexChecker.
func (s *FastBASRPT) CheckIndex(t *flow.Table) error {
	s.vOverN = s.v / float64(t.N())
	return s.g.checkIndex(t, s.key)
}

// IndexStats implements IndexStatser.
func (s *FastBASRPT) IndexStats() IndexStats { return s.g.indexStats() }

// ExactBASRPT is the exact drift-plus-penalty minimizer of Section IV-A:
// it enumerates every maximal matching of the non-empty VOQs and selects
// the one minimizing V·ȳ(t) − Σij Xij(t)Rij(t), where ȳ is the mean
// remaining size of the selected flows and the second term is the total
// backlog of the selected queues.
//
// Within a VOQ the minimum-remaining flow is always chosen: swapping any
// selected flow for a longer VOQ-mate changes neither ΣX nor the matching
// but increases ȳ, so the reduction is exact.
//
// The enumeration is factorial in the number of ports — the very
// impracticality that motivates fast BASRPT — so Schedule panics when the
// switch exceeds the configured port limit.
type ExactBASRPT struct {
	v        float64
	maxPorts int
}

var _ Scheduler = (*ExactBASRPT)(nil)

// DefaultExactMaxPorts is the largest switch ExactBASRPT accepts unless
// overridden.
const DefaultExactMaxPorts = 8

// NewExactBASRPT returns the exhaustive BASRPT scheduler. maxPorts bounds
// the fabric size the search will accept; 0 selects
// DefaultExactMaxPorts. It panics on negative V.
func NewExactBASRPT(v float64, maxPorts int) *ExactBASRPT {
	if v < 0 {
		panic(fmt.Sprintf("sched: negative V %g", v))
	}
	if maxPorts <= 0 {
		maxPorts = DefaultExactMaxPorts
	}
	return &ExactBASRPT{v: v, maxPorts: maxPorts}
}

// V returns the configured tradeoff weight.
func (s *ExactBASRPT) V() float64 { return s.v }

// Name returns "exact-basrpt(V=...)".
func (s *ExactBASRPT) Name() string { return fmt.Sprintf("exact-basrpt(V=%g)", s.v) }

// Schedule exhaustively minimizes the BASRPT objective.
func (s *ExactBASRPT) Schedule(t *flow.Table) []*flow.Flow {
	if t.N() > s.maxPorts {
		panic(fmt.Sprintf("sched: exact BASRPT on %d ports exceeds limit %d", t.N(), s.maxPorts))
	}
	if t.NumNonEmpty() == 0 {
		return nil
	}
	// Map (src,dst) edge -> VOQ for decision reconstruction.
	n := t.N()
	byEdge := make(map[matching.Edge]*flow.VOQ, t.NumNonEmpty())
	edges := make([]matching.Edge, 0, t.NumNonEmpty())
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		e := matching.Edge{Left: q.Src, Right: q.Dst}
		byEdge[e] = q
		edges = append(edges, e)
	})

	best := math.Inf(1)
	var bestEdges []matching.Edge
	matching.EnumerateMaximal(n, edges, func(m []matching.Edge) bool {
		if len(m) == 0 {
			return true
		}
		var sumRemaining, sumQueue float64
		for _, e := range m {
			q := byEdge[e]
			sumRemaining += q.Top().Remaining
			sumQueue += q.Backlog()
		}
		obj := s.v*sumRemaining/float64(len(m)) - sumQueue
		if obj < best-1e-12 || (math.Abs(obj-best) <= 1e-12 && lessEdges(m, bestEdges)) {
			best = obj
			bestEdges = append(bestEdges[:0], m...)
		}
		return true
	})

	decision := make([]*flow.Flow, 0, len(bestEdges))
	for _, e := range bestEdges {
		decision = append(decision, byEdge[e].Top())
	}
	return decision
}

// lessEdges gives a deterministic tie-break between equal-objective
// matchings: lexicographic on the (sorted) edge lists.
func lessEdges(a, b []matching.Edge) bool {
	if len(a) != len(b) {
		return len(a) > len(b) // prefer serving more queues on ties
	}
	for i := range a {
		if a[i].Left != b[i].Left {
			return a[i].Left < b[i].Left
		}
		if a[i].Right != b[i].Right {
			return a[i].Right < b[i].Right
		}
	}
	return false
}

// Objective computes the BASRPT objective V·ȳ − ΣX over a decision, using
// the decision flows' VOQ backlogs from t. An empty decision scores +Inf
// (never preferred). Exposed for tests and the exact-vs-fast ablation.
func Objective(v float64, t *flow.Table, decision []*flow.Flow) float64 {
	if len(decision) == 0 {
		return math.Inf(1)
	}
	var sumRemaining, sumQueue float64
	for _, f := range decision {
		sumRemaining += f.Remaining
		sumQueue += t.VOQ(f.Src, f.Dst).Backlog()
	}
	return v*sumRemaining/float64(len(decision)) - sumQueue
}
