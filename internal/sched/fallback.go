package sched

import "basrpt/internal/flow"

// OutageFallback wraps a scheduler with the fabric's degraded mode for
// control-plane outages: while the wrapped scheduler is unreachable
// (SetOutage(true)), Schedule returns the last decision the scheduler
// produced, pruned of flows that have since completed, instead of
// crashing or idling the fabric. A pruned subset of a crossbar matching
// is still a crossbar matching, so the degraded decisions never violate
// the constraint — property-tested in fallback_test.go.
//
// Newly arrived flows are not admitted into the held matching (the entity
// that would place them is exactly the one that is down); they wait in
// their VOQs until the scheduler recovers.
type OutageFallback struct {
	inner       Scheduler
	outage      bool
	last        []*flow.Flow // private copy of the last live decision
	out         []*flow.Flow // reusable return buffer for held decisions
	held        int64
	activations int64
}

var _ Scheduler = (*OutageFallback)(nil)
var _ DirtyConsumer = (*OutageFallback)(nil)
var _ IndexChecker = (*OutageFallback)(nil)
var _ IndexStatser = (*OutageFallback)(nil)

// NewOutageFallback wraps inner. It panics on a nil inner scheduler
// (programmer error, matching the sibling constructors).
func NewOutageFallback(inner Scheduler) *OutageFallback {
	if inner == nil {
		panic("sched: OutageFallback around nil scheduler")
	}
	return &OutageFallback{inner: inner}
}

// SetOutage flips the scheduler's reachability; the fabric calls it from
// the fault injector's view before every decision.
func (s *OutageFallback) SetOutage(down bool) {
	if down && !s.outage {
		s.activations++
	}
	s.outage = down
}

// HeldDecisions returns how many decisions were served from the held
// matching.
func (s *OutageFallback) HeldDecisions() int64 { return s.held }

// Activations returns how many times the fallback engaged (up→down
// transitions of the wrapped scheduler's reachability).
func (s *OutageFallback) Activations() int64 { return s.activations }

// Name returns the wrapped discipline's name with a "+hold" suffix.
func (s *OutageFallback) Name() string { return s.inner.Name() + "+hold" }

// Schedule delegates to the wrapped scheduler, or serves the pruned held
// matching during an outage. Either way the result follows the Scheduler
// ownership contract: it lives in scratch this wrapper or the wrapped
// scheduler owns and is valid only until the next Schedule call.
//
// The held matching retains flow pointers across completions, which is
// why the fabric disables flow recycling whenever fault injection (and
// therefore this wrapper) is configured: a recycled pointer could pass
// the liveness prune below while describing an unrelated flow.
func (s *OutageFallback) Schedule(t *flow.Table) []*flow.Flow {
	if s.outage {
		s.held++
		// Prune completed flows in place: s.last is a private buffer, and
		// detached flows must not linger (their ports are free again and a
		// later prune could not tell them apart from live ones).
		kept := s.last[:0]
		for _, f := range s.last {
			if f.Attached() && f.Remaining > 0 {
				kept = append(kept, f)
			}
		}
		s.last = kept
		// Return a separate reusable buffer, not s.last itself: callers may
		// compact the returned slice in place as flows complete, which must
		// not corrupt the held matching.
		s.out = append(s.out[:0], kept...)
		return s.out
	}
	d := s.inner.Schedule(t)
	s.last = append(s.last[:0], d...)
	return d
}

// ConsumesDirty reports whether the wrapped scheduler consumes the
// table's dirty feed. During an outage nobody consumes it — mutations
// simply accumulate until the wrapped scheduler is reachable again, at
// which point its index repairs itself from the backlog of dirty VOQs.
func (s *OutageFallback) ConsumesDirty() bool { return IsDirtyConsumer(s.inner) }

// CheckIndex delegates the deep-validation cross-check to the wrapped
// scheduler's index.
func (s *OutageFallback) CheckIndex(t *flow.Table) error { return CheckIndex(s.inner, t) }

// IndexStats delegates to the wrapped scheduler's index counters.
func (s *OutageFallback) IndexStats() IndexStats { return IndexStatsOf(s.inner) }
