package sched

import (
	"fmt"
	"math"

	"basrpt/internal/flow"
)

// NoisyFastBASRPT is fast BASRPT operating on *estimated* flow sizes. The
// paper (like pFabric/PDQ/PASE) assumes exact prior knowledge of sizes;
// real systems estimate them, so this wrapper quantifies the sensitivity:
// each flow's remaining size is perceived as remaining·factor, where
// factor is a deterministic per-flow multiplicative error, log-uniform in
// [1/(1+NoiseLevel), 1+NoiseLevel]. Queue lengths (local state) stay
// exact. NoiseLevel = 0 is plain fast BASRPT.
//
// Modeling scope: the error perturbs each VOQ head flow's priority in the
// cross-VOQ competition; within a VOQ the true shortest flow still
// represents the queue (the candidate-per-VOQ optimization). This models
// an estimator that mis-sizes flows but a transport that still drains a
// chosen queue shortest-first.
type NoisyFastBASRPT struct {
	v          float64
	noiseLevel float64
	vOverN     float64 // v / N of the table last scheduled
	g          greedy
}

var _ Scheduler = (*NoisyFastBASRPT)(nil)
var _ DirtyConsumer = (*NoisyFastBASRPT)(nil)
var _ IndexChecker = (*NoisyFastBASRPT)(nil)

// NewNoisyFastBASRPT builds the estimated-size variant. It panics on
// negative v or noiseLevel (configuration errors).
func NewNoisyFastBASRPT(v, noiseLevel float64) *NoisyFastBASRPT {
	if v < 0 {
		panic(fmt.Sprintf("sched: negative V %g", v))
	}
	if noiseLevel < 0 {
		panic(fmt.Sprintf("sched: negative noise level %g", noiseLevel))
	}
	return &NoisyFastBASRPT{v: v, noiseLevel: noiseLevel}
}

// Name returns "noisy-basrpt(V=..., noise=...)".
func (s *NoisyFastBASRPT) Name() string {
	return fmt.Sprintf("noisy-basrpt(V=%g,noise=%g)", s.v, s.noiseLevel)
}

// key scores a candidate by its perceived remaining size. The per-flow
// factor is a pure hash of the flow's ID, so the key is a deterministic
// function of the VOQ state and safe to cache in the incremental index.
func (s *NoisyFastBASRPT) key(c Candidate) float64 {
	return s.vOverN*c.Flow.Remaining*s.factor(c.Flow.ID) - c.QueueLen
}

// Schedule runs the Algorithm 1 greedy loop on perceived sizes, with
// candidates maintained in the incremental index.
func (s *NoisyFastBASRPT) Schedule(t *flow.Table) []*flow.Flow {
	s.vOverN = s.v / float64(t.N())
	return s.g.scheduleIndexed(t, s.key)
}

// SetIncremental toggles the incremental candidate index (on by default).
func (s *NoisyFastBASRPT) SetIncremental(on bool) { s.g.setIncremental(on) }

// ConsumesDirty implements DirtyConsumer.
func (s *NoisyFastBASRPT) ConsumesDirty() bool { return s.g.consumesDirty() }

// CheckIndex implements IndexChecker.
func (s *NoisyFastBASRPT) CheckIndex(t *flow.Table) error {
	s.vOverN = s.v / float64(t.N())
	return s.g.checkIndex(t, s.key)
}

// IndexStats implements IndexStatser.
func (s *NoisyFastBASRPT) IndexStats() IndexStats { return s.g.indexStats() }

// factor derives the flow's deterministic estimation error from its ID via
// a splitmix64-style hash, mapped log-uniformly onto
// [1/(1+noise), 1+noise]. Determinism keeps runs reproducible and gives
// each flow a consistent bias, like a real per-flow estimator would.
func (s *NoisyFastBASRPT) factor(id flow.ID) float64 {
	if s.noiseLevel == 0 {
		return 1
	}
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53) // uniform [0, 1)
	logSpan := math.Log(1 + s.noiseLevel)
	return math.Exp((2*u - 1) * logSpan)
}
