package sched

import (
	"strings"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// incrementalScheduler is the surface every index-routed discipline
// exposes: the Scheduler interface plus the incremental toggle.
type incrementalScheduler interface {
	Scheduler
	SetIncremental(on bool)
}

// routedPair builds two instances of one routed discipline: the default
// incremental one and a from-scratch baseline.
type routedPair struct {
	name string
	mk   func() incrementalScheduler
}

func routedPairs() []routedPair {
	return []routedPair{
		{"srpt", func() incrementalScheduler { return NewSRPT() }},
		{"fast-basrpt", func() incrementalScheduler { return NewFastBASRPT(2500) }},
		{"maxweight", func() incrementalScheduler { return NewMaxWeight() }},
		{"threshold", func() incrementalScheduler { return NewThresholdBacklog(800) }},
		{"noisy-basrpt", func() incrementalScheduler { return NewNoisyFastBASRPT(2500, 0.25) }},
	}
}

// tableDriver mutates a table the way the fabric simulator does — serve
// the previous decision, complete drained flows, admit arrivals, drop the
// occasional flow — so the equivalence tests exercise realistic dirty
// patterns (few VOQs touched per step) rather than uniform churn.
type tableDriver struct {
	r    *stats.RNG
	tab  *flow.Table
	live []*flow.Flow
	next flow.ID
}

func newTableDriver(seed uint64, n int) *tableDriver {
	d := &tableDriver{r: stats.NewRNG(seed), tab: flow.NewTable(n), next: 1}
	for i := 0; i < 3+d.r.Intn(3*n); i++ {
		d.arrive()
	}
	return d
}

func (d *tableDriver) arrive() {
	n := d.tab.N()
	// Per-flow fractional size offset keeps sizes pairwise distinct, so the
	// disciplines' orderings have no key ties across VOQs.
	size := 1 + float64(d.r.Intn(100000)) + float64(d.next)*1e-3
	f := flow.NewFlow(d.next, d.r.Intn(n), d.r.Intn(n), flow.ClassOther, size, float64(d.next))
	d.next++
	d.tab.Add(f)
	d.live = append(d.live, f)
}

func (d *tableDriver) drop(f *flow.Flow) {
	d.tab.Remove(f)
	for i, g := range d.live {
		if g == f {
			d.live[i] = d.live[len(d.live)-1]
			d.live = d.live[:len(d.live)-1]
			return
		}
	}
}

// step applies one simulated event batch: drain the served flows (some to
// completion), admit a few arrivals, and occasionally drop a live flow.
func (d *tableDriver) step(served []*flow.Flow) {
	for _, f := range served {
		if !f.Attached() {
			continue
		}
		if d.r.Float64() < 0.3 {
			d.tab.Drain(f, f.Remaining) // completion
			d.drop(f)
		} else {
			d.tab.Drain(f, d.r.Float64()*f.Remaining)
		}
	}
	for k := d.r.Intn(3); k > 0; k-- {
		d.arrive()
	}
	if len(d.live) > 0 && d.r.Float64() < 0.1 {
		d.drop(d.live[d.r.Intn(len(d.live))]) // injected fault: flow vanishes
	}
}

// identicalDecisions demands element-wise pointer equality — the decisions
// must match flow for flow in the same order, not merely as sets.
func identicalDecisions(a, b []*flow.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalDecisionEquivalence: for every routed discipline, the
// incremental index and the from-scratch path produce bit-identical
// decisions across long random event sequences on a shared table. The
// from-scratch instance does not consume the dirty feed, so running both
// against one table is exactly the single-owning-consumer contract.
func TestIncrementalDecisionEquivalence(t *testing.T) {
	for _, p := range routedPairs() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				inc := p.mk()
				base := p.mk()
				base.SetIncremental(false)
				if IsDirtyConsumer(base) {
					t.Fatal("from-scratch baseline claims to consume the dirty feed")
				}
				if !IsDirtyConsumer(inc) {
					t.Fatal("incremental instance does not consume the dirty feed")
				}
				d := newTableDriver(seed, 2+int(seed%7))
				var served []*flow.Flow
				for step := 0; step < 200; step++ {
					d.step(served)
					got := inc.Schedule(d.tab)
					want := base.Schedule(d.tab)
					if !identicalDecisions(got, want) {
						t.Fatalf("seed %d step %d: incremental %v, from-scratch %v",
							seed, step, decisionIDs(got), decisionIDs(want))
					}
					if err := CheckIndex(inc, d.tab); err != nil {
						t.Fatalf("seed %d step %d: index check: %v", seed, step, err)
					}
					served = got
				}
			}
		})
	}
}

// TestIncrementalRebuildOnTableSwap: one scheduler instance alternating
// between two independent tables must transparently rebuild on each swap
// and stay equivalent to from-scratch on both.
func TestIncrementalRebuildOnTableSwap(t *testing.T) {
	inc := NewFastBASRPT(2500)
	base := NewFastBASRPT(2500)
	base.SetIncremental(false)
	a := newTableDriver(11, 4)
	b := newTableDriver(12, 6) // different geometry forces pos re-allocation too
	var servedA, servedB []*flow.Flow
	for step := 0; step < 100; step++ {
		a.step(servedA)
		b.step(servedB)
		// servedA outlives inc's next Schedule call (on table B), so it must
		// be cloned out of the scheduler's scratch per the ownership contract.
		servedA = CloneDecision(inc.Schedule(a.tab))
		if !identicalDecisions(servedA, base.Schedule(a.tab)) {
			t.Fatalf("step %d: diverged on table A after swap", step)
		}
		servedB = CloneDecision(inc.Schedule(b.tab))
		if !identicalDecisions(servedB, base.Schedule(b.tab)) {
			t.Fatalf("step %d: diverged on table B after swap", step)
		}
	}
}

// TestIncrementalRebuildAfterForeignConsumer: when another consumer takes
// the dirty feed between calls — a direct ClearDirty or a second
// incremental discipline on the same table — the index must detect the
// basis mismatch and rebuild instead of applying an incomplete delta.
func TestIncrementalRebuildAfterForeignConsumer(t *testing.T) {
	inc := NewSRPT()
	rival := NewMaxWeight() // second consumer of the same feed
	base := NewSRPT()
	base.SetIncremental(false)
	d := newTableDriver(21, 5)
	var served []*flow.Flow
	for step := 0; step < 100; step++ {
		d.step(served)
		switch step % 3 {
		case 0:
			d.tab.ClearDirty() // feed stolen outright
		case 1:
			rival.Schedule(d.tab) // feed consumed by a rival index
		}
		served = inc.Schedule(d.tab)
		if !identicalDecisions(served, base.Schedule(d.tab)) {
			t.Fatalf("step %d: diverged after foreign feed consumption", step)
		}
	}
}

// TestIncrementalUnderOutageFallback: wrapping the incremental scheduler
// in OutageFallback lets dirty mutations accumulate unconsumed while the
// held matching is served; when the outage lifts, the delta repair over
// the accumulated backlog must land on the same decisions as from-scratch.
func TestIncrementalUnderOutageFallback(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inc := NewOutageFallback(NewFastBASRPT(2500))
		inner := NewFastBASRPT(2500)
		inner.SetIncremental(false)
		base := NewOutageFallback(inner)
		if !IsDirtyConsumer(inc) {
			t.Fatal("fallback around incremental scheduler should consume the feed")
		}
		if IsDirtyConsumer(base) {
			t.Fatal("fallback around from-scratch scheduler should not consume the feed")
		}
		r := stats.NewRNG(seed * 977)
		d := newTableDriver(seed, 5)
		var served []*flow.Flow
		outage := false
		for step := 0; step < 200; step++ {
			if r.Float64() < 0.15 {
				outage = !outage
				inc.SetOutage(outage)
				base.SetOutage(outage)
			}
			d.step(served)
			got := inc.Schedule(d.tab)
			want := base.Schedule(d.tab)
			if !identicalDecisions(got, want) {
				t.Fatalf("seed %d step %d (outage=%v): incremental %v, from-scratch %v",
					seed, step, outage, decisionIDs(got), decisionIDs(want))
			}
			if err := CheckIndex(inc, d.tab); err != nil {
				t.Fatalf("seed %d step %d: index check: %v", seed, step, err)
			}
			served = got
		}
		if inc.HeldDecisions() != base.HeldDecisions() {
			t.Fatalf("held-decision counts diverged: %d vs %d",
				inc.HeldDecisions(), base.HeldDecisions())
		}
	}
}

// TestCheckIndexDetectsCorruption: the deep-validation cross-check accepts
// a freshly synchronized index, stays silent on a stale one (it will
// resynchronize), and reports every class of deliberate corruption.
func TestCheckIndexDetectsCorruption(t *testing.T) {
	mk := func() (*SRPT, *tableDriver) {
		s := NewSRPT()
		d := newTableDriver(31, 4)
		var served []*flow.Flow
		for step := 0; step < 20; step++ {
			d.step(served)
			served = s.Schedule(d.tab)
		}
		if len(s.g.idx.view) == 0 {
			t.Fatal("setup produced an empty index")
		}
		return s, d
	}

	s, d := mk()
	if err := s.CheckIndex(d.tab); err != nil {
		t.Fatalf("fresh index flagged: %v", err)
	}

	// Stale (unconsumed mutations): not an error.
	d.arrive()
	if err := s.CheckIndex(d.tab); err != nil {
		t.Fatalf("stale index flagged: %v", err)
	}
	s.Schedule(d.tab)

	// Key corruption. Decrementing the minimum entry's key keeps the view
	// sorted, so the message must come from the key cross-check, not the
	// order check.
	s.g.idx.view[0].key -= 1
	if err := s.CheckIndex(d.tab); err == nil {
		t.Fatal("corrupted key not detected")
	}
	if err := s.CheckIndex(d.tab); !strings.Contains(err.Error(), "from-scratch computes") {
		t.Fatalf("key corruption reported as %v", err)
	}

	// Order corruption: swapping two entries preserves the candidate set
	// and every key, so only the sorted-order check can catch it.
	s, d = mk()
	v := s.g.idx.view
	v[0], v[len(v)-1] = v[len(v)-1], v[0]
	err := s.CheckIndex(d.tab)
	if err == nil {
		t.Fatal("corrupted sort order not detected")
	}
	if !strings.Contains(err.Error(), "sorted order") {
		t.Fatalf("order corruption reported as %v", err)
	}

	// Dropped entry.
	s, d = mk()
	s.g.idx.view = s.g.idx.view[1:]
	if err := s.CheckIndex(d.tab); err == nil {
		t.Fatal("missing candidate not detected")
	}
}

// TestCheckIndexNilPaths: schedulers without an index — by nature or by
// SetIncremental(false) — answer nil through the package helper.
func TestCheckIndexNilPaths(t *testing.T) {
	tab := flow.NewTable(3)
	tab.Add(flow.NewFlow(1, 0, 1, flow.ClassOther, 10, 0))
	for _, s := range []Scheduler{NewFIFOMatch(), NewRandom(3), NewExactBASRPT(10, 0)} {
		if err := CheckIndex(s, tab); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if IsDirtyConsumer(s) {
			t.Fatalf("%s should not consume the dirty feed", s.Name())
		}
	}
	off := NewSRPT()
	off.SetIncremental(false)
	off.Schedule(tab)
	if err := CheckIndex(off, tab); err != nil {
		t.Fatalf("disabled index: %v", err)
	}
	// Never scheduled: no index yet.
	if err := CheckIndex(NewSRPT(), tab); err != nil {
		t.Fatalf("unbuilt index: %v", err)
	}
}

// TestIncrementalEmptiesAndRefills: the index must survive the table
// draining to empty and filling back up (heap length through zero).
func TestIncrementalEmptiesAndRefills(t *testing.T) {
	inc := NewFastBASRPT(2500)
	base := NewFastBASRPT(2500)
	base.SetIncremental(false)
	tab := flow.NewTable(3)
	for round := 0; round < 5; round++ {
		flows := []*flow.Flow{
			flow.NewFlow(flow.ID(round*10+1), 0, 1, flow.ClassOther, 40, 0),
			flow.NewFlow(flow.ID(round*10+2), 1, 2, flow.ClassOther, 60, 1),
			flow.NewFlow(flow.ID(round*10+3), 2, 0, flow.ClassOther, 80, 2),
		}
		for _, f := range flows {
			tab.Add(f)
		}
		if !identicalDecisions(inc.Schedule(tab), base.Schedule(tab)) {
			t.Fatalf("round %d: diverged after refill", round)
		}
		for _, f := range flows {
			tab.Drain(f, f.Remaining)
			tab.Remove(f)
		}
		if got := inc.Schedule(tab); len(got) != 0 {
			t.Fatalf("round %d: decision on empty table: %v", round, decisionIDs(got))
		}
		if want := base.Schedule(tab); len(want) != 0 {
			t.Fatalf("round %d: baseline decision on empty table", round)
		}
	}
}

// TestIncrementalDeepTableEquivalence drives the regime the fabric-scale
// benchmarks run in — far more candidates than ports, so the view is deep
// and most entries never get selected — and checks the merge repair stays
// bit-identical to from-scratch while completions, arrivals, and drops
// splice entries in and out at arbitrary positions of the sorted view.
func TestIncrementalDeepTableEquivalence(t *testing.T) {
	for seed := uint64(100); seed < 104; seed++ {
		inc := NewFastBASRPT(2500)
		base := NewFastBASRPT(2500)
		base.SetIncremental(false)
		d := newTableDriver(seed, 32)
		for i := 0; i < 600; i++ {
			d.arrive()
		}
		var served []*flow.Flow
		for step := 0; step < 120; step++ {
			d.step(served)
			got := inc.Schedule(d.tab)
			want := base.Schedule(d.tab)
			if !identicalDecisions(got, want) {
				t.Fatalf("seed %d step %d: incremental %v, from-scratch %v",
					seed, step, decisionIDs(got), decisionIDs(want))
			}
			if err := CheckIndex(inc, d.tab); err != nil {
				t.Fatalf("seed %d step %d: index check: %v", seed, step, err)
			}
			served = got
		}
	}
}
