package sched

import (
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// pooledDriver is benchDriver with flow recycling, so the driver's own
// arrivals and completions are allocation-free in steady state. That makes
// testing.AllocsPerRun attribute every observed allocation to the scheduler
// under test rather than to the harness.
type pooledDriver struct {
	r    *stats.RNG
	tab  *flow.Table
	pool flow.FreeList
	next flow.ID
}

func newPooledDriver(n, population int) *pooledDriver {
	d := &pooledDriver{r: stats.NewRNG(1719), tab: flow.NewTable(n), next: 1}
	for i := 0; i < population; i++ {
		d.arrive()
	}
	return d
}

func (d *pooledDriver) arrive() {
	n := d.tab.N()
	size := 1 + float64(d.r.Intn(1_000_000)) + float64(d.next)*1e-3
	f := d.pool.Get(d.next, d.r.Intn(n), d.r.Intn(n), flow.ClassOther, size, float64(d.next))
	d.next++
	d.tab.Add(f)
}

// step serves the previous decision and replaces each completed flow with
// a fresh arrival drawn from the free list. Unlike benchDriver.step it
// holds the population exactly constant: every Get is preceded by a Put,
// so the free list never misses and the driver contributes zero
// allocations of its own.
func (d *pooledDriver) step(served []*flow.Flow) {
	for _, f := range served {
		if d.r.Float64() < 0.05 {
			d.tab.Drain(f, f.Remaining)
			d.tab.Remove(f)
			d.pool.Put(f)
			d.arrive() // keep the population (and load) steady
		} else {
			d.tab.Drain(f, 1+d.r.Float64()*f.Remaining*0.1)
		}
	}
}

// testScheduleZeroAlloc drives a scheduler to steady state (index built,
// every scratch buffer at its high-water capacity, free list populated) and
// then requires the serve-admit-schedule loop to allocate nothing at all.
// This is the regression gate behind the tentpole: any reintroduced
// per-decision allocation — a fresh decision slice, a map in the index
// check path, a boxed event — fails the test immediately.
func testScheduleZeroAlloc(t *testing.T, s Scheduler) {
	t.Helper()
	d := newPooledDriver(32, 600)
	var served []*flow.Flow
	for i := 0; i < 200; i++ {
		d.step(served)
		served = s.Schedule(d.tab)
	}
	avg := testing.AllocsPerRun(100, func() {
		d.step(served)
		served = s.Schedule(d.tab)
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule loop allocates %.2f times per decision, want 0", avg)
	}
}

func TestScheduleZeroAllocSRPT(t *testing.T) {
	testScheduleZeroAlloc(t, NewSRPT())
}

func TestScheduleZeroAllocFastBASRPT(t *testing.T) {
	testScheduleZeroAlloc(t, NewFastBASRPT(2500))
}

// The Validator must reuse its port marks across calls: after warmup,
// validating a fresh decision allocates nothing.
func TestValidatorZeroAlloc(t *testing.T) {
	d := newPooledDriver(32, 600)
	s := NewFastBASRPT(2500)
	var served []*flow.Flow
	var v Validator
	for i := 0; i < 50; i++ {
		d.step(served)
		served = s.Schedule(d.tab)
		if err := v.ValidateDecision(d.tab.N(), served); err != nil {
			t.Fatalf("warmup decision invalid: %v", err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := v.ValidateDecision(d.tab.N(), served); err != nil {
			t.Fatalf("decision invalid: %v", err)
		}
		if !v.IsMaximalDecision(d.tab, served) {
			t.Fatal("greedy decision not maximal")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state validation allocates %.2f times per call, want 0", avg)
	}
}
