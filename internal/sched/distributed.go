package sched

import (
	"fmt"
	"math"
	"sort"

	"basrpt/internal/flow"
)

// Distributed emulates the decentralized implementation the paper says
// fast BASRPT admits (Section IV-C: "since fast BASRPT assigns global
// priorities to all flows, it can be simply implemented using distributed
// paradigms [3]"). Instead of one scheduler sorting every candidate, each
// ingress host independently ranks its own flows by the global key and
// requests its best flow's egress port; each egress grants the
// best-priority request it received; losers retry with their next-best
// flow in the following round — a pFabric-style request/grant exchange.
//
// With unlimited rounds the outcome equals the centralized greedy
// decision (both resolve priorities in the same global order; the
// equivalence is property-tested). Bounding Rounds models the latency
// budget of a real distributed arbitration, trading decision quality for
// round trips — measured by the E11 ablation.
type Distributed struct {
	v      float64
	rounds int

	// dropGrant, when non-nil, is the control-message-loss Bernoulli
	// source (e.g. faults.Injector.DropGrant): true means the proposing
	// host's request/grant exchange is lost this round and it must retry,
	// costing one arbitration round of the budget.
	dropGrant  func() bool
	grantsLost int64

	totalRounds int64 // arbitration rounds executed across all decisions
}

var _ Scheduler = (*Distributed)(nil)

// NewDistributed returns the request/grant emulation of fast BASRPT with
// weight v. rounds bounds the arbitration rounds per decision; 0 means
// run to convergence (at most N rounds are ever needed). It panics on
// negative v or rounds — configuration errors, matching the sibling
// constructors.
func NewDistributed(v float64, rounds int) *Distributed {
	if v < 0 {
		panic(fmt.Sprintf("sched: negative V %g", v))
	}
	if rounds < 0 {
		panic(fmt.Sprintf("sched: negative rounds %d", rounds))
	}
	return &Distributed{v: v, rounds: rounds}
}

// NewLossyDistributed is NewDistributed with a control-message-loss
// source: each proposal additionally consults dropGrant, and a lost
// message wastes the round for that host. With a bounded round budget
// lost messages directly degrade decision quality — the retry-with-
// bounded-rounds model of a real arbitration under an unreliable control
// plane.
func NewLossyDistributed(v float64, rounds int, dropGrant func() bool) *Distributed {
	s := NewDistributed(v, rounds)
	s.dropGrant = dropGrant
	return s
}

// GrantsLost returns the cumulative lost control messages across all
// Schedule calls.
func (s *Distributed) GrantsLost() int64 { return s.grantsLost }

// TotalRounds returns the cumulative arbitration rounds executed across
// all Schedule calls — the convergence-cost counter the observability
// layer reports (rounds per decision is the E11 quality/latency trade).
func (s *Distributed) TotalRounds() int64 { return s.totalRounds }

// Name returns "dist-basrpt(V=..., rounds=...)", with a "+loss" suffix
// when a control-message-loss source is attached.
func (s *Distributed) Name() string {
	name := fmt.Sprintf("dist-basrpt(V=%g)", s.v)
	if s.rounds != 0 {
		name = fmt.Sprintf("dist-basrpt(V=%g,rounds=%d)", s.v, s.rounds)
	}
	if s.dropGrant != nil {
		name += "+loss"
	}
	return name
}

// hostQueue is one ingress host's locally ranked candidates.
type hostQueue struct {
	cands []scored // sorted best-first
	next  int      // index of the next flow to request
}

// Schedule runs the request/grant rounds.
func (s *Distributed) Schedule(t *flow.Table) []*flow.Flow {
	n := t.N()
	vOverN := s.v / float64(n)

	// Each host ranks its own VOQs' head flows locally — the only state a
	// distributed implementation has.
	hosts := make([]hostQueue, n)
	t.ForEachNonEmpty(func(q *flow.VOQ) {
		f := q.Top()
		key := vOverN*f.Remaining - q.Backlog()
		hosts[q.Src].cands = append(hosts[q.Src].cands, scored{key: key, f: f})
	})
	for i := range hosts {
		h := &hosts[i]
		sort.Slice(h.cands, func(a, b int) bool { return cmpScored(h.cands[a], h.cands[b]) < 0 })
	}

	// Deferred acceptance (Gale–Shapley with hosts proposing): each egress
	// holds its best tentative proposal and displaces it when a
	// better-priority one arrives; displaced hosts advance to their next
	// candidate. Because every participant ranks by the same global key,
	// the stable matching is unique and equals the centralized greedy
	// decision — so with enough rounds the emulation is exact, and the
	// round cap measures how quickly the distributed exchange converges.
	tentative := make([]scored, n) // per-egress held proposal (f == nil: none)
	heldBy := make([]int, n)       // per-egress proposing host, -1 if none
	for e := range heldBy {
		heldBy[e] = -1
	}
	free := make([]int, 0, n) // hosts currently unheld with candidates left
	for i := range hosts {
		if len(hosts[i].cands) > 0 {
			free = append(free, i)
		}
	}

	maxRounds := s.rounds
	if maxRounds == 0 {
		maxRounds = n * n // GS terminates well within n² proposals
	}
	for round := 0; round < maxRounds && len(free) > 0; round++ {
		s.totalRounds++
		// A fresh slice each round: appending into free's backing array
		// while ranging over it would corrupt the iteration.
		nextFree := make([]int, 0, len(free))
		for _, i := range free {
			h := &hosts[i]
			if h.next >= len(h.cands) {
				continue // exhausted: drops out
			}
			if s.dropGrant != nil && s.dropGrant() {
				// Control message lost in flight: the host learns nothing
				// and retries the same candidate next round.
				s.grantsLost++
				nextFree = append(nextFree, i)
				continue
			}
			prop := h.cands[h.next]
			e := prop.f.Dst
			if tentative[e].f == nil || cmpScored(prop, tentative[e]) < 0 {
				// Egress prefers the newcomer; displace the holder.
				if prev := heldBy[e]; prev >= 0 {
					hosts[prev].next++
					nextFree = append(nextFree, prev)
				}
				tentative[e] = prop
				heldBy[e] = i
			} else {
				// Rejected: advance and retry next round.
				h.next++
				nextFree = append(nextFree, i)
			}
		}
		free = nextFree
	}

	selected := make([]*flow.Flow, 0, n)
	for e := range tentative {
		if tentative[e].f != nil {
			selected = append(selected, tentative[e].f)
		}
	}
	return selected
}

// DecisionAgreement measures how often two schedulers produce decisions
// with identical objective value on the same table state — the metric the
// distributed-emulation ablation reports. It returns the agreement
// fraction over the given states.
func DecisionAgreement(v float64, a, b Scheduler, states []*flow.Table) float64 {
	if len(states) == 0 {
		return 0
	}
	agree := 0
	for _, t := range states {
		oa := Objective(v, t, a.Schedule(t))
		ob := Objective(v, t, b.Schedule(t))
		if oa == ob || math.Abs(oa-ob) <= 1e-9*math.Max(1, math.Abs(oa)) {
			agree++
		}
	}
	return float64(agree) / float64(len(states))
}
