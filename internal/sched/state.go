package sched

import (
	"fmt"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// RNGScheduler is implemented by schedulers that carry a private RNG
// stream (Random, BirkhoffRandom). Checkpointing captures the stream
// position so a resumed run draws the same decision sequence.
type RNGScheduler interface {
	RNGState() stats.RNGState
	RestoreRNGState(stats.RNGState) error
}

var (
	_ RNGScheduler = (*Random)(nil)
	_ RNGScheduler = (*BirkhoffRandom)(nil)
)

// RNGState returns the decision stream's position.
func (s *Random) RNGState() stats.RNGState { return s.rng.State() }

// RestoreRNGState rewinds the decision stream.
func (s *Random) RestoreRNGState(st stats.RNGState) error { return s.rng.RestoreState(st) }

// RNGState returns the sampling stream's position.
func (s *BirkhoffRandom) RNGState() stats.RNGState { return s.rng.State() }

// RestoreRNGState rewinds the sampling stream.
func (s *BirkhoffRandom) RestoreRNGState(st stats.RNGState) error { return s.rng.RestoreState(st) }

// ArbitrationState returns the distributed emulation's cumulative
// counters (rounds executed, control messages lost) for checkpointing.
func (s *Distributed) ArbitrationState() (rounds, grantsLost int64) {
	return s.totalRounds, s.grantsLost
}

// RestoreArbitrationState rewinds the cumulative counters.
func (s *Distributed) RestoreArbitrationState(rounds, grantsLost int64) {
	s.totalRounds = rounds
	s.grantsLost = grantsLost
}

// FallbackState is the outage-fallback wrapper's serializable state: the
// held matching (by flow ID — pointers are resolved by the restorer), the
// current reachability, and the cumulative counters. The held matching is
// pruned of detached/completed flows at snapshot time, exactly as
// Schedule itself would prune them.
type FallbackState struct {
	HeldIDs     []int64 `json:"heldIds,omitempty"`
	Outage      bool    `json:"outage,omitempty"`
	Held        int64   `json:"held,omitempty"`
	Activations int64   `json:"activations,omitempty"`
}

// StateSnapshot captures the wrapper for checkpointing.
func (s *OutageFallback) StateSnapshot() FallbackState {
	st := FallbackState{Outage: s.outage, Held: s.held, Activations: s.activations}
	for _, f := range s.last {
		if f.Attached() && f.Remaining > 0 {
			st.HeldIDs = append(st.HeldIDs, int64(f.ID))
		}
	}
	return st
}

// RestoreState rewinds the wrapper. resolve maps a serialized flow ID
// back to its restored in-table pointer; an unresolvable ID means the
// snapshot and the restored flow table disagree, which is a hard error.
// Restoring the outage flag matters for the activation counter: a
// checkpoint taken mid-outage must not count the ongoing outage again
// when the resumed run's first SetOutage(true) lands.
func (s *OutageFallback) RestoreState(st FallbackState, resolve func(flow.ID) *flow.Flow) error {
	s.last = s.last[:0]
	for _, id := range st.HeldIDs {
		f := resolve(flow.ID(id))
		if f == nil {
			return fmt.Errorf("sched: restore: held matching references unknown flow %d", id)
		}
		s.last = append(s.last, f)
	}
	s.outage = st.Outage
	s.held = st.Held
	s.activations = st.Activations
	return nil
}
