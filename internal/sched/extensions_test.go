package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

func TestBirkhoffRandomConstruction(t *testing.T) {
	lambda := [][]float64{
		{0, 0.4},
		{0.4, 0},
	}
	s, err := NewBirkhoffRandom(lambda, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epsilon() <= 0 {
		t.Fatalf("epsilon = %g", s.Epsilon())
	}
	if s.NumComponents() < 1 {
		t.Fatal("no components")
	}
	if s.Name() != "birkhoff-random" {
		t.Fatalf("name = %q", s.Name())
	}
	// Overloaded matrix rejected.
	if _, err := NewBirkhoffRandom([][]float64{{1.5}}, 1); err == nil {
		t.Fatal("overload accepted")
	}
	// Zero-slack matrix rejected.
	if _, err := NewBirkhoffRandom([][]float64{{1, 0}, {0, 1}}, 1); err == nil {
		t.Fatal("no-slack matrix accepted")
	}
}

func TestBirkhoffRandomDecisionsValid(t *testing.T) {
	lambda := [][]float64{
		{0, 0.3, 0.3},
		{0.3, 0, 0.3},
		{0.3, 0.3, 0},
	}
	s, err := NewBirkhoffRandom(lambda, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9)
	for trial := 0; trial < 200; trial++ {
		tab := randomTable(r, 3, 10)
		d := s.Schedule(tab)
		if err := ValidateDecision(3, d); err != nil {
			t.Fatal(err)
		}
	}
	// Empty table: empty decision.
	if d := s.Schedule(flow.NewTable(3)); len(d) != 0 {
		t.Fatalf("decision on empty table: %v", d)
	}
}

func TestBirkhoffRandomServiceRateDominatesLambda(t *testing.T) {
	// Sample many decisions over a fully backlogged table: the empirical
	// per-VOQ service frequency must be >= lambda + epsilon (within noise).
	const n = 3
	lambda := [][]float64{
		{0, 0.35, 0.2},
		{0.3, 0, 0.25},
		{0.25, 0.3, 0},
	}
	s, err := NewBirkhoffRandom(lambda, 11)
	if err != nil {
		t.Fatal(err)
	}
	tab := flow.NewTable(n)
	id := flow.ID(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tab.Add(flow.NewFlow(id, i, j, flow.ClassOther, 1e12, 0))
				id++
			}
		}
	}
	const rounds = 60000
	served := make([][]float64, n)
	for i := range served {
		served[i] = make([]float64, n)
	}
	for k := 0; k < rounds; k++ {
		for _, f := range s.Schedule(tab) {
			served[f.Src][f.Dst]++
		}
	}
	eps := s.Epsilon()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rate := served[i][j] / rounds
			want := lambda[i][j] + eps
			if rate < want-0.02 {
				t.Fatalf("VOQ (%d,%d) served at %.3f, want >= %.3f", i, j, rate, want)
			}
		}
	}
}

func TestBirkhoffRandomPanicsOnWrongFabricSize(t *testing.T) {
	s, err := NewBirkhoffRandom([][]float64{{0, 0.4}, {0.4, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := flow.NewTable(3)
	tab.Add(flow.NewFlow(1, 0, 1, flow.ClassOther, 5, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	s.Schedule(tab)
}

// TestDistributedConvergesToCentralized: with unlimited rounds the
// deferred-acceptance emulation produces exactly the centralized greedy
// objective (unique stable matching under a global key).
func TestDistributedConvergesToCentralized(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(6)
		tab := randomTable(r, n, 4*n)
		v := math.Floor(r.Float64() * 5000)
		central := NewFastBASRPT(v).Schedule(tab)
		dist := NewDistributed(v, 0).Schedule(tab)
		if err := ValidateDecision(n, dist); err != nil {
			t.Log(err)
			return false
		}
		return sameDecision(central, dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedBoundedRoundsStillValid(t *testing.T) {
	r := stats.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(5)
		tab := randomTable(r, n, 3*n)
		for _, rounds := range []int{1, 2, 3} {
			d := NewDistributed(2500, rounds).Schedule(tab)
			if err := ValidateDecision(n, d); err != nil {
				t.Fatalf("rounds=%d: %v", rounds, err)
			}
		}
	}
}

func TestDistributedRoundCapChangesDecisions(t *testing.T) {
	// The round cap must actually bind: across random states, one-round
	// arbitration sometimes produces a different decision than full
	// convergence (the greedy matching is not an objective optimum, so the
	// truncated decision's objective can land on either side — only
	// validity and divergence are asserted).
	r := stats.NewRNG(17)
	diverged := 0
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(4)
		tab := randomTable(r, n, 4*n)
		full := NewDistributed(2500, 0).Schedule(tab)
		one := NewDistributed(2500, 1).Schedule(tab)
		if err := ValidateDecision(n, one); err != nil {
			t.Fatal(err)
		}
		if !sameDecision(full, one) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("round cap never changed a decision across 200 states — cap is not binding")
	}
}

func TestDistributedName(t *testing.T) {
	if got := NewDistributed(2500, 0).Name(); got != "dist-basrpt(V=2500)" {
		t.Fatalf("name = %q", got)
	}
	if got := NewDistributed(2500, 3).Name(); got != "dist-basrpt(V=2500,rounds=3)" {
		t.Fatalf("name = %q", got)
	}
}

func TestDecisionAgreement(t *testing.T) {
	r := stats.NewRNG(5)
	states := make([]*flow.Table, 20)
	for i := range states {
		states[i] = randomTable(r, 4, 12)
	}
	// A scheduler always agrees with itself.
	if got := DecisionAgreement(2500, NewFastBASRPT(2500), NewFastBASRPT(2500), states); got != 1 {
		t.Fatalf("self agreement = %g", got)
	}
	// Converged distributed agrees fully with centralized.
	if got := DecisionAgreement(2500, NewFastBASRPT(2500), NewDistributed(2500, 0), states); got != 1 {
		t.Fatalf("distributed agreement = %g", got)
	}
	// SRPT and MaxWeight should disagree on at least some states.
	if got := DecisionAgreement(2500, NewSRPT(), NewMaxWeight(), states); got == 1 {
		t.Fatal("srpt and maxweight agreed everywhere — suspicious states")
	}
	if got := DecisionAgreement(1, nil, nil, nil); got != 0 {
		t.Fatalf("empty agreement = %g", got)
	}
}

func TestNoisyFastBASRPTZeroNoiseEqualsPlain(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tab := randomTable(r, 2+r.Intn(4), 15)
		plain := NewFastBASRPT(2500).Schedule(tab)
		noisy := NewNoisyFastBASRPT(2500, 0).Schedule(tab)
		return sameDecision(plain, noisy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyFastBASRPTDecisionsValid(t *testing.T) {
	r := stats.NewRNG(7)
	s := NewNoisyFastBASRPT(2500, 0.5)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(4)
		tab := randomTable(r, n, 12)
		d := s.Schedule(tab)
		if err := ValidateDecision(n, d); err != nil {
			t.Fatal(err)
		}
		if !IsMaximalDecision(tab, d) {
			t.Fatal("noisy decision not maximal")
		}
	}
}

func TestNoisyFactorProperties(t *testing.T) {
	s := NewNoisyFastBASRPT(1, 0.5)
	lo, hi := 1/1.5, 1.5
	for id := flow.ID(1); id < 3000; id++ {
		f := s.factor(id)
		if f < lo-1e-12 || f > hi+1e-12 {
			t.Fatalf("factor(%d) = %g outside [%g, %g]", id, f, lo, hi)
		}
		if got := s.factor(id); got != f {
			t.Fatal("factor not deterministic")
		}
	}
	if got := s.Name(); !strings.Contains(got, "noise=0.5") {
		t.Fatalf("name = %q", got)
	}
}

func TestNoisyFastBASRPTPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative v":         func() { NewNoisyFastBASRPT(-1, 0) },
		"negative noise":     func() { NewNoisyFastBASRPT(1, -0.1) },
		"distributed v":      func() { NewDistributed(-1, 0) },
		"distributed rounds": func() { NewDistributed(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
