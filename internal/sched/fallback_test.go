package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

func TestOutageFallbackDelegatesWhenUp(t *testing.T) {
	tab, _ := buildTable(3, [][3]float64{
		{0, 1, 100}, {1, 2, 200}, {2, 0, 300},
	})
	fb := NewOutageFallback(NewSRPT())
	if !sameDecision(fb.Schedule(tab), NewSRPT().Schedule(tab)) {
		t.Fatal("fallback changed the decision while the scheduler is up")
	}
	if fb.HeldDecisions() != 0 {
		t.Fatal("held counter moved without an outage")
	}
	if got := fb.Name(); got != "srpt+hold" {
		t.Fatalf("name = %q", got)
	}
}

// TestOutageFallbackHoldsAndPrunes: during an outage the last matching is
// served with completed (detached or fully drained) flows pruned out.
func TestOutageFallbackHoldsAndPrunes(t *testing.T) {
	tab, flows := buildTable(3, [][3]float64{
		{0, 1, 100}, {1, 2, 200}, {2, 0, 300},
	})
	fb := NewOutageFallback(NewSRPT())
	live := fb.Schedule(tab)
	if len(live) != 3 {
		t.Fatalf("live decision has %d flows, want 3", len(live))
	}

	// One flow departs, another drains to zero while still attached.
	tab.Remove(flows[0])
	tab.Drain(flows[1], flows[1].Remaining)

	fb.SetOutage(true)
	held := fb.Schedule(tab)
	if len(held) != 1 || held[0] != flows[2] {
		t.Fatalf("held decision = %v, want just flow 3", decisionIDs(held))
	}
	if fb.HeldDecisions() != 1 {
		t.Fatalf("held counter = %d, want 1", fb.HeldDecisions())
	}

	// The returned slice is a fresh copy: clobbering it must not corrupt
	// the next held decision.
	held[0] = nil
	again := fb.Schedule(tab)
	if len(again) != 1 || again[0] != flows[2] {
		t.Fatalf("held decision corrupted by caller mutation: %v", again)
	}

	// Recovery: the wrapped scheduler decides again and newly arrived flows
	// — invisible to the held matching — become eligible.
	fb.SetOutage(false)
	newcomer := flow.NewFlow(10, 0, 1, flow.ClassOther, 50, 1)
	tab.Add(newcomer)
	selected := false
	for _, f := range fb.Schedule(tab) {
		if f == newcomer {
			selected = true
		}
	}
	if !selected {
		t.Fatal("post-recovery decision ignores the newly arrived flow")
	}
}

// TestOutageFallbackNeverViolatesCrossbar: pruning a valid matching yields
// a valid matching, for arbitrary drain/removal interleavings.
func TestOutageFallbackNeverViolatesCrossbar(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(5)
		tab := randomTable(r, n, 4*n)
		fb := NewOutageFallback(NewFastBASRPT(2500))
		for step := 0; step < 20; step++ {
			fb.SetOutage(r.Float64() < 0.5)
			d := fb.Schedule(tab)
			if err := ValidateDecision(n, d); err != nil {
				t.Log(err)
				return false
			}
			// Randomly complete some selected flows before the next decision.
			for _, fl := range d {
				if r.Float64() < 0.3 {
					tab.Drain(fl, fl.Remaining)
					tab.Remove(fl)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutageFallbackNilInnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil inner scheduler accepted")
		}
	}()
	NewOutageFallback(nil)
}

// TestLossyDistributedValidAndCounted: control-message loss keeps the
// decisions valid matchings, counts every lost grant, and flags the Name.
func TestLossyDistributedValidAndCounted(t *testing.T) {
	r := stats.NewRNG(23)
	lossRNG := stats.NewRNG(99)
	s := NewLossyDistributed(2500, 4, func() bool { return lossRNG.Float64() < 0.4 })
	if got := s.Name(); !strings.HasSuffix(got, "+loss") {
		t.Fatalf("name = %q lacks +loss", got)
	}
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(5)
		tab := randomTable(r, n, 3*n)
		if err := ValidateDecision(n, s.Schedule(tab)); err != nil {
			t.Fatal(err)
		}
	}
	if s.GrantsLost() == 0 {
		t.Fatal("40% loss over 100 arbitrations lost no grants")
	}
}

// TestLossyDistributedTotalLossStarvesBoundedRounds: if every control
// message is lost, a bounded-round arbitration decides nothing (all rounds
// are wasted retries) — but still returns a valid empty decision rather
// than failing.
func TestLossyDistributedTotalLossStarvesBoundedRounds(t *testing.T) {
	r := stats.NewRNG(31)
	tab := randomTable(r, 4, 12)
	s := NewLossyDistributed(2500, 3, func() bool { return true })
	if d := s.Schedule(tab); len(d) != 0 {
		t.Fatalf("total control loss still matched %d flows", len(d))
	}
	if s.GrantsLost() == 0 {
		t.Fatal("no grants counted lost under total loss")
	}
}

// TestLossyDistributedZeroLossEqualsPlain: a never-firing loss source must
// not perturb the arbitration.
func TestLossyDistributedZeroLossEqualsPlain(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(4)
		tab := randomTable(r, n, 3*n)
		plain := NewDistributed(2500, 0).Schedule(tab)
		lossy := NewLossyDistributed(2500, 0, func() bool { return false }).Schedule(tab)
		return sameDecision(plain, lossy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
