package sched

import (
	"fmt"
	"sort"
)

// Options carries the discipline parameters used by the registry
// constructors. Zero values select documented defaults.
type Options struct {
	// V is the BASRPT tradeoff weight (default 2500, the paper's
	// demonstration value).
	V float64
	// Threshold is the backlog threshold for the threshold strategy
	// (default 1e6, i.e. 1MB when sizes are bytes).
	Threshold float64
	// Seed seeds the random scheduler (default 1).
	Seed uint64
	// MaxPorts bounds exact BASRPT's exhaustive search (default 8).
	MaxPorts int
	// Rounds bounds the distributed emulation's arbitration rounds
	// (default 0: run to convergence).
	Rounds int
	// NoiseLevel is the size-estimation error of the noisy variant
	// (default 0.25).
	NoiseLevel float64
}

func (o Options) withDefaults() Options {
	if o.V == 0 {
		o.V = 2500
	}
	if o.Threshold == 0 {
		o.Threshold = 1e6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxPorts == 0 {
		o.MaxPorts = DefaultExactMaxPorts
	}
	if o.NoiseLevel == 0 {
		o.NoiseLevel = 0.25
	}
	return o
}

// builders maps registry names to constructors. Names are the stable CLI
// identifiers used by cmd/basrptsim and the benchmark harness.
var builders = map[string]func(Options) Scheduler{
	"srpt":         func(Options) Scheduler { return NewSRPT() },
	"fast-basrpt":  func(o Options) Scheduler { return NewFastBASRPT(o.V) },
	"exact-basrpt": func(o Options) Scheduler { return NewExactBASRPT(o.V, o.MaxPorts) },
	"maxweight":    func(Options) Scheduler { return NewMaxWeight() },
	"fifo":         func(Options) Scheduler { return NewFIFOMatch() },
	"threshold":    func(o Options) Scheduler { return NewThresholdBacklog(o.Threshold) },
	"random":       func(o Options) Scheduler { return NewRandom(o.Seed) },
	"dist-basrpt":  func(o Options) Scheduler { return NewDistributed(o.V, o.Rounds) },
	"noisy-basrpt": func(o Options) Scheduler { return NewNoisyFastBASRPT(o.V, o.NoiseLevel) },
}

// New constructs a scheduler by registry name. Unknown names return an
// error listing the valid ones.
func New(name string, opts Options) (Scheduler, error) {
	build, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (valid: %v)", name, Names())
	}
	return build(opts.withDefaults()), nil
}

// Names returns the sorted registry names.
func Names() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
