package matching

import (
	"math"
	"testing"
	"testing/quick"

	"basrpt/internal/stats"
)

func TestIsMatching(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
		want  bool
	}{
		{"empty", 3, nil, true},
		{"valid", 3, []Edge{{0, 1}, {1, 0}, {2, 2}}, true},
		{"left reused", 3, []Edge{{0, 1}, {0, 2}}, false},
		{"right reused", 3, []Edge{{0, 1}, {2, 1}}, false},
		{"out of range", 3, []Edge{{0, 3}}, false},
		{"negative", 3, []Edge{{-1, 0}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsMatching(tt.n, tt.edges); got != tt.want {
				t.Fatalf("IsMatching = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsMaximal(t *testing.T) {
	candidates := []Edge{{0, 0}, {0, 1}, {1, 0}}
	if !IsMaximal(2, candidates, []Edge{{0, 0}}) {
		// {0,0} blocks both {0,1} (left) and {1,0} (right)... {0,1} shares
		// left 0, {1,0} shares right 0. So {0,0} alone is maximal.
		t.Fatal("single blocking edge should be maximal")
	}
	if IsMaximal(2, candidates, []Edge{{0, 1}}) {
		t.Fatal("{0,1} leaves {1,0} addable; not maximal")
	}
	if !IsMaximal(2, candidates, []Edge{{0, 1}, {1, 0}}) {
		t.Fatal("two-edge matching should be maximal")
	}
}

func TestGreedyMaximalOrderRespected(t *testing.T) {
	// Priority order: the first compatible edge wins.
	candidates := []Edge{{0, 1}, {0, 0}, {1, 1}, {1, 0}}
	got := GreedyMaximal(2, candidates)
	want := []Edge{{0, 1}, {1, 0}}
	if len(got) != len(want) {
		t.Fatalf("GreedyMaximal = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GreedyMaximal[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGreedyMaximalSkipsBadEdges(t *testing.T) {
	got := GreedyMaximal(2, []Edge{{-1, 0}, {0, 5}, {0, 0}})
	if len(got) != 1 || got[0] != (Edge{0, 0}) {
		t.Fatalf("GreedyMaximal = %v, want [{0 0}]", got)
	}
}

// TestGreedyProducesMaximalMatchingProperty: for random candidate sets, the
// greedy result is always a valid and maximal matching.
func TestGreedyProducesMaximalMatchingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(8)
		m := r.Intn(3 * n)
		candidates := make([]Edge, m)
		for i := range candidates {
			candidates[i] = Edge{Left: r.Intn(n), Right: r.Intn(n)}
		}
		sel := GreedyMaximal(n, candidates)
		return IsMatching(n, sel) && IsMaximal(n, candidates, sel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCardinalityKnown(t *testing.T) {
	// A 3x3 instance where greedy order can trap at 2 but max is 3.
	candidates := []Edge{{0, 0}, {0, 1}, {1, 0}, {2, 1}, {1, 2}}
	got := MaxCardinality(3, candidates)
	if len(got) != 3 {
		t.Fatalf("MaxCardinality size = %d, want 3 (%v)", len(got), got)
	}
	if !IsMatching(3, got) {
		t.Fatalf("result is not a matching: %v", got)
	}
}

func TestMaxCardinalityEmpty(t *testing.T) {
	if got := MaxCardinality(3, nil); len(got) != 0 {
		t.Fatalf("MaxCardinality(nil) = %v, want empty", got)
	}
}

// TestMaxCardinalityAtLeastGreedy: maximum matching is never smaller than a
// greedy maximal matching (and at most twice as large — classic bound).
func TestMaxCardinalityBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(7)
		m := r.Intn(4 * n)
		candidates := make([]Edge, m)
		for i := range candidates {
			candidates[i] = Edge{Left: r.Intn(n), Right: r.Intn(n)}
		}
		greedy := GreedyMaximal(n, candidates)
		maximum := MaxCardinality(n, candidates)
		if !IsMatching(n, maximum) {
			return false
		}
		return len(maximum) >= len(greedy) && len(maximum) <= 2*len(greedy)+boolToInt(len(greedy) == 0)*len(maximum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPerfectMatchingOnSupport(t *testing.T) {
	m := [][]float64{
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	perm, ok := PerfectMatchingOnSupport(m, 1e-12)
	if !ok {
		t.Fatal("expected a perfect matching")
	}
	seen := make([]bool, 3)
	for i, j := range perm {
		if m[i][j] <= 1e-12 {
			t.Fatalf("perm uses zero entry (%d,%d)", i, j)
		}
		if seen[j] {
			t.Fatal("perm is not a permutation")
		}
		seen[j] = true
	}
	// No perfect matching: column 2 unreachable.
	m2 := [][]float64{
		{1, 1, 0},
		{1, 1, 0},
		{1, 1, 0},
	}
	if _, ok := PerfectMatchingOnSupport(m2, 1e-12); ok {
		t.Fatal("expected no perfect matching")
	}
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	perm, total, ok := Hungarian(cost)
	if !ok {
		t.Fatal("Hungarian failed")
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %g, want 5 (perm %v)", total, perm)
	}
}

func TestHungarianForbiddenCells(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	perm, total, ok := Hungarian(cost)
	if !ok || total != 2 {
		t.Fatalf("Hungarian = (%v, %g, %v), want anti-diagonal cost 2", perm, total, ok)
	}
	// Fully forbidden row: infeasible.
	cost2 := [][]float64{
		{inf, inf},
		{1, 1},
	}
	if _, _, ok := Hungarian(cost2); ok {
		t.Fatal("expected infeasible")
	}
}

func TestHungarianEmptyAndPanic(t *testing.T) {
	if _, total, ok := Hungarian(nil); !ok || total != 0 {
		t.Fatal("empty Hungarian should trivially succeed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-square matrix did not panic")
		}
	}()
	Hungarian([][]float64{{1, 2}})
}

// TestHungarianMatchesBruteForce compares against exhaustive permutation
// search on random small instances.
func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(r.Float64()*100) - 50 // include negatives
			}
		}
		_, got, ok := Hungarian(cost)
		if !ok {
			return false
		}
		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var permute func(k int)
		permute = func(k int) {
			if k == n {
				var s float64
				for i, j := range perm {
					s += cost[i][j]
				}
				if s < best {
					best = s
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				permute(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		permute(0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateMaximalFull2x2(t *testing.T) {
	// All four edges of a 2x2: maximal matchings are the two perfect ones.
	candidates := []Edge{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	var all [][]Edge
	EnumerateMaximal(2, candidates, func(m []Edge) bool {
		all = append(all, m)
		return true
	})
	if len(all) != 2 {
		t.Fatalf("found %d maximal matchings, want 2: %v", len(all), all)
	}
	for _, m := range all {
		if len(m) != 2 || !IsMatching(2, m) || !IsMaximal(2, candidates, m) {
			t.Fatalf("bad maximal matching %v", m)
		}
	}
}

func TestEnumerateMaximalSingleEdgeCases(t *testing.T) {
	// Star: edges {0,0},{0,1},{1,0}. Maximal matchings: {{0,0}},
	// {{0,1},{1,0}}.
	candidates := []Edge{{0, 0}, {0, 1}, {1, 0}}
	if got := CountMaximal(2, candidates); got != 2 {
		t.Fatalf("CountMaximal = %d, want 2", got)
	}
	// Empty candidate set: the empty matching is (vacuously) maximal.
	count := 0
	EnumerateMaximal(2, nil, func(m []Edge) bool {
		if len(m) != 0 {
			t.Fatalf("unexpected non-empty matching %v", m)
		}
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("empty set visited %d times, want 1", count)
	}
}

func TestEnumerateMaximalEarlyStop(t *testing.T) {
	candidates := []Edge{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	count := 0
	EnumerateMaximal(2, candidates, func([]Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d, want 1", count)
	}
}

// TestEnumerateMaximalProperty: every visited set is a maximal matching,
// all are distinct, and the count matches a brute-force subset scan.
func TestEnumerateMaximalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(3)
		m := r.Intn(6)
		seen := map[Edge]bool{}
		var candidates []Edge
		for i := 0; i < m; i++ {
			e := Edge{Left: r.Intn(n), Right: r.Intn(n)}
			if !seen[e] {
				seen[e] = true
				candidates = append(candidates, e)
			}
		}
		visited := map[string]bool{}
		okAll := true
		EnumerateMaximal(n, candidates, func(mm []Edge) bool {
			if !IsMatching(n, mm) || !IsMaximal(n, candidates, mm) {
				okAll = false
			}
			key := ""
			for _, e := range mm {
				key += string(rune('a'+e.Left)) + string(rune('a'+e.Right))
			}
			if visited[key] {
				okAll = false
			}
			visited[key] = true
			return true
		})
		if !okAll {
			return false
		}
		// Brute force over all subsets.
		want := 0
		for mask := 0; mask < 1<<len(candidates); mask++ {
			var sel []Edge
			for i, e := range candidates {
				if mask&(1<<i) != 0 {
					sel = append(sel, e)
				}
			}
			if IsMatching(n, sel) && IsMaximal(n, candidates, sel) {
				want++
			}
		}
		if len(candidates) == 0 {
			want = 1
		}
		return len(visited) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
