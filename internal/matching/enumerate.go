package matching

import "sort"

// EnumerateMaximal invokes visit for every maximal matching of the
// candidate edge set. The exact BASRPT scheduler (paper Section IV-A)
// "iterates through all possible scheduling schemes", i.e. all maximal
// matchings; this is that iteration. visit may return false to stop early.
//
// The edge set is deduplicated first; the visit order is deterministic.
// The number of maximal matchings grows super-exponentially with n, so this
// is only usable for small fabrics — which is exactly the paper's point
// about BASRPT's impracticality, and why fast BASRPT exists.
func EnumerateMaximal(n int, candidates []Edge, visit func(m []Edge) bool) {
	// Deduplicate and order edges for a canonical enumeration.
	seen := make(map[Edge]bool, len(candidates))
	edges := make([]Edge, 0, len(candidates))
	for _, e := range candidates {
		if e.Left < 0 || e.Left >= n || e.Right < 0 || e.Right >= n {
			continue
		}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Left != edges[j].Left {
			return edges[i].Left < edges[j].Left
		}
		return edges[i].Right < edges[j].Right
	})
	if len(edges) == 0 {
		visit(nil)
		return
	}

	leftUsed := make([]bool, n)
	rightUsed := make([]bool, n)
	current := make([]Edge, 0, n)
	stopped := false

	// Recursive branch on each edge index: either take it (if compatible)
	// or skip it. A completed branch is reported only if the selection is
	// maximal, i.e. every skipped edge conflicts with a taken one.
	var rec func(idx int)
	rec = func(idx int) {
		if stopped {
			return
		}
		if idx == len(edges) {
			if isMaximalFast(edges, leftUsed, rightUsed) {
				m := make([]Edge, len(current))
				copy(m, current)
				if !visit(m) {
					stopped = true
				}
			}
			return
		}
		e := edges[idx]
		if !leftUsed[e.Left] && !rightUsed[e.Right] {
			leftUsed[e.Left] = true
			rightUsed[e.Right] = true
			current = append(current, e)
			rec(idx + 1)
			current = current[:len(current)-1]
			leftUsed[e.Left] = false
			rightUsed[e.Right] = false
		}
		// Skip branch. Pruning: if e could still be added at the end the
		// skip branch can only produce non-maximal sets unless some later
		// or earlier choice blocks e. We cannot prune cheaply without
		// losing completeness, so rely on the final maximality check.
		rec(idx + 1)
	}
	rec(0)
}

func isMaximalFast(edges []Edge, leftUsed, rightUsed []bool) bool {
	for _, e := range edges {
		if !leftUsed[e.Left] && !rightUsed[e.Right] {
			return false
		}
	}
	return true
}

// CountMaximal returns the number of maximal matchings of the candidate
// set. Exposed for tests and for documenting the combinatorial blow-up that
// motivates fast BASRPT.
func CountMaximal(n int, candidates []Edge) int {
	count := 0
	EnumerateMaximal(n, candidates, func([]Edge) bool {
		count++
		return true
	})
	return count
}
