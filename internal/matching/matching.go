// Package matching provides the bipartite-matching machinery behind the
// schedulers and the Birkhoff decomposition: validity/maximality checks,
// greedy maximal matching under a caller-supplied priority, maximum-
// cardinality matching (Hopcroft–Karp), minimum-cost assignment (Hungarian
// algorithm), and exhaustive enumeration of maximal matchings for the exact
// BASRPT scheduler on small fabrics.
//
// Throughout, a matching over an n-port switch is a set of (ingress, egress)
// pairs in which no ingress and no egress appears twice — exactly the
// crossbar constraint of the paper's input-queued switch model.
package matching

import "fmt"

// Edge is a candidate pairing of ingress Left with egress Right.
type Edge struct {
	Left, Right int
}

// IsMatching reports whether edges uses no left or right vertex twice.
// n bounds the vertex ids; out-of-range ids make it return false.
func IsMatching(n int, edges []Edge) bool {
	leftUsed := make([]bool, n)
	rightUsed := make([]bool, n)
	for _, e := range edges {
		if e.Left < 0 || e.Left >= n || e.Right < 0 || e.Right >= n {
			return false
		}
		if leftUsed[e.Left] || rightUsed[e.Right] {
			return false
		}
		leftUsed[e.Left] = true
		rightUsed[e.Right] = true
	}
	return true
}

// IsMaximal reports whether selected is a maximal matching within the
// candidate edge set: no candidate edge could be added without violating
// the matching property. selected must itself be a matching.
func IsMaximal(n int, candidates, selected []Edge) bool {
	leftUsed := make([]bool, n)
	rightUsed := make([]bool, n)
	for _, e := range selected {
		leftUsed[e.Left] = true
		rightUsed[e.Right] = true
	}
	for _, e := range candidates {
		if !leftUsed[e.Left] && !rightUsed[e.Right] {
			return false
		}
	}
	return true
}

// GreedyMaximal scans candidates in the given order and keeps every edge
// that does not conflict with an already-kept edge. The result is a maximal
// matching with respect to the candidate set. This is precisely the greedy
// flow-selection loop of SRPT and fast BASRPT (paper Algorithm 1): the
// caller supplies the candidates pre-sorted by the discipline's key.
func GreedyMaximal(n int, candidates []Edge) []Edge {
	leftUsed := make([]bool, n)
	rightUsed := make([]bool, n)
	var out []Edge
	for _, e := range candidates {
		if e.Left < 0 || e.Left >= n || e.Right < 0 || e.Right >= n {
			continue
		}
		if leftUsed[e.Left] || rightUsed[e.Right] {
			continue
		}
		leftUsed[e.Left] = true
		rightUsed[e.Right] = true
		out = append(out, e)
	}
	return out
}

// MaxCardinality returns a maximum-cardinality matching over the candidate
// edges using the Hopcroft–Karp algorithm. It is used to verify maximality
// bounds and by the Birkhoff decomposition, which needs perfect matchings
// on the support of a doubly stochastic matrix.
func MaxCardinality(n int, candidates []Edge) []Edge {
	adj := make([][]int, n)
	for _, e := range candidates {
		if e.Left < 0 || e.Left >= n || e.Right < 0 || e.Right >= n {
			continue
		}
		adj[e.Left] = append(adj[e.Left], e.Right)
	}

	const inf = int(^uint(0) >> 1)
	matchL := make([]int, n) // left -> right, -1 if free
	matchR := make([]int, n) // right -> left, -1 if free
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	dist := make([]int, n)

	bfs := func() bool {
		queue := make([]int, 0, n)
		for u := 0; u < n; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < n; u++ {
			if matchL[u] == -1 {
				dfs(u)
			}
		}
	}

	var out []Edge
	for u := 0; u < n; u++ {
		if matchL[u] != -1 {
			out = append(out, Edge{Left: u, Right: matchL[u]})
		}
	}
	return out
}

// PerfectMatchingOnSupport finds a perfect matching using only entries of m
// strictly greater than eps, returning the permutation p with p[i] = column
// matched to row i. The second return is false when no perfect matching
// exists on that support. m must be square.
func PerfectMatchingOnSupport(m [][]float64, eps float64) ([]int, bool) {
	n := len(m)
	var edges []Edge
	for i := 0; i < n; i++ {
		if len(m[i]) != n {
			panic(fmt.Sprintf("matching: row %d has length %d, want %d", i, len(m[i]), n))
		}
		for j := 0; j < n; j++ {
			if m[i][j] > eps {
				edges = append(edges, Edge{Left: i, Right: j})
			}
		}
	}
	match := MaxCardinality(n, edges)
	if len(match) != n {
		return nil, false
	}
	perm := make([]int, n)
	for _, e := range match {
		perm[e.Left] = e.Right
	}
	return perm, true
}
