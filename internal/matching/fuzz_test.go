package matching

import (
	"math"
	"testing"
)

// FuzzHungarianFeasible checks that Hungarian never reports a total
// inconsistent with its own permutation, and that the result is a valid
// permutation, on arbitrary small integer cost matrices.
func FuzzHungarianFeasible(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, 2)
	f.Add([]byte{9, 9, 9, 1, 0, 200, 7, 7, 7}, 3)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 1 || n > 5 || len(raw) < n*n {
			t.Skip()
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(raw[i*n+j]) - 128
			}
		}
		perm, total, ok := Hungarian(cost)
		if !ok {
			t.Fatal("finite cost matrix reported infeasible")
		}
		seen := make([]bool, n)
		var check float64
		for i, j := range perm {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("invalid permutation %v", perm)
			}
			seen[j] = true
			check += cost[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("total %g does not match permutation cost %g", total, check)
		}
	})
}

// FuzzGreedyMaximal checks the matching/maximality invariants on arbitrary
// candidate edge lists.
func FuzzGreedyMaximal(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 2}, 3)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 1 || n > 8 || len(raw)%2 != 0 {
			t.Skip()
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Left: int(raw[i]) % n, Right: int(raw[i+1]) % n})
		}
		sel := GreedyMaximal(n, edges)
		if !IsMatching(n, sel) {
			t.Fatalf("greedy produced a non-matching: %v", sel)
		}
		if !IsMaximal(n, edges, sel) {
			t.Fatalf("greedy produced a non-maximal matching: %v over %v", sel, edges)
		}
	})
}
