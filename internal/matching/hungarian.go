package matching

import (
	"fmt"
	"math"
)

// Hungarian solves the n×n minimum-cost assignment problem and returns the
// permutation p (p[i] = column assigned to row i) together with the total
// cost. Costs may be any finite float64; use math.Inf(1) to forbid a cell.
// It panics on a non-square matrix and returns ok=false when no finite-cost
// perfect assignment exists.
//
// The implementation is the O(n^3) shortest-augmenting-path formulation
// (Jonker–Volgenant style potentials). It backs the exact BASRPT analysis:
// for a fixed selected-flow count, minimizing V·ȳ − ΣX is an assignment
// problem over per-VOQ candidates.
func Hungarian(cost [][]float64) (perm []int, total float64, ok bool) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			panic(fmt.Sprintf("matching: cost row %d has length %d, want %d", i, len(row), n))
		}
	}
	if n == 0 {
		return nil, 0, true
	}

	inf := math.Inf(1)
	// Potentials for rows (u) and columns (v); way[j] remembers the column
	// preceding j on the shortest augmenting path; matchR[j] is the row
	// matched to column j. Index 0 is a sentinel, so everything is 1-based.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchR := make([]int, n+1)
	way := make([]int, n+1)
	for j := range matchR {
		matchR[j] = 0
	}

	for i := 1; i <= n; i++ {
		matchR[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchR[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 || math.IsInf(delta, 1) {
				return nil, 0, false
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchR[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchR[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchR[j0] = matchR[j1]
			j0 = j1
		}
	}

	perm = make([]int, n)
	for j := 1; j <= n; j++ {
		if matchR[j] == 0 {
			return nil, 0, false
		}
		perm[matchR[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		c := cost[i][perm[i]]
		if math.IsInf(c, 1) {
			return nil, 0, false
		}
		total += c
	}
	return perm, total, true
}
