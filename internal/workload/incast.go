package workload

import (
	"fmt"
	"sort"

	"basrpt/internal/eventq"
	"basrpt/internal/flow"
	"basrpt/internal/stats"
	"basrpt/internal/topology"
)

// IncastConfig parameterizes the partition/aggregate traffic pattern the
// paper's introduction motivates: "a soft real-time application aggregates
// responses from many back-end servers to produce results". Each job picks
// an aggregator host, fans a request out to Fanout random backends, and
// all Fanout responses (fixed-size, like the paper's 20KB queries) arrive
// back at the aggregator essentially simultaneously — the classic incast
// pattern, and the hardest case for the aggregator's egress port.
type IncastConfig struct {
	// Topology places hosts and fixes the port rate.
	Topology *topology.Topology
	// JobsPerSecond is the fabric-wide partition/aggregate job rate.
	JobsPerSecond float64
	// Fanout is the number of backends per job (must fit the fabric).
	Fanout int
	// ResponseBytes is the per-backend response size (default: QueryBytes).
	ResponseBytes float64
	// Jitter is the standard deviation (seconds) of each response's start
	// time around the job instant; 0 means perfectly synchronized incast.
	Jitter float64
	// BackgroundLoad, when positive, adds the usual rack-local background
	// traffic at that per-port utilization.
	BackgroundLoad float64
	// BackgroundSizes defaults to WebSearchBytes().
	BackgroundSizes stats.Sampler
	// Duration is the generation horizon in seconds.
	Duration float64
	// Seed makes the stream reproducible.
	Seed uint64
}

// Incast generates partition/aggregate jobs plus optional background
// traffic, emitting arrivals in global time order.
type Incast struct {
	cfg  IncastConfig
	topo *topology.Topology
	rng  *stats.RNG

	queue eventq.Queue
	bg    *Mixed // nil when BackgroundLoad == 0

	pendingBg    Arrival
	hasPendingBg bool
}

var _ Generator = (*Incast)(nil)

// QueueHighWater returns the peak pending-event count across the incast
// calendar and the background generator's (see eventq.Queue.HighWater).
func (g *Incast) QueueHighWater() int {
	hw := g.queue.HighWater()
	if g.bg != nil {
		if bg := g.bg.QueueHighWater(); bg > hw {
			hw = bg
		}
	}
	return hw
}

type incastJobEvent struct{}

// NewIncast validates the configuration and builds the generator.
func NewIncast(cfg IncastConfig) (*Incast, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrBadConfig)
	}
	if cfg.JobsPerSecond <= 0 {
		return nil, fmt.Errorf("%w: job rate %g", ErrBadConfig, cfg.JobsPerSecond)
	}
	if cfg.Fanout < 1 || cfg.Fanout >= cfg.Topology.NumHosts() {
		return nil, fmt.Errorf("%w: fanout %d outside [1, hosts)", ErrBadConfig, cfg.Fanout)
	}
	if cfg.ResponseBytes == 0 {
		cfg.ResponseBytes = QueryBytes
	}
	if cfg.ResponseBytes <= 0 {
		return nil, fmt.Errorf("%w: response size %g", ErrBadConfig, cfg.ResponseBytes)
	}
	if cfg.Jitter < 0 {
		return nil, fmt.Errorf("%w: negative jitter", ErrBadConfig)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g", ErrBadConfig, cfg.Duration)
	}
	if cfg.Seed == 0 {
		// Seed 0 used to silently alias to 1, making two nominally distinct
		// seeds generate identical streams. Reject it instead.
		return nil, fmt.Errorf("%w: seed must be nonzero", ErrBadConfig)
	}
	g := &Incast{
		cfg:  cfg,
		topo: cfg.Topology,
		rng:  stats.NewRNG(cfg.Seed),
	}
	if cfg.BackgroundLoad > 0 {
		bgSeed := g.rng.Uint64()
		if bgSeed == 0 {
			bgSeed = 1 // NewMixed rejects 0; any fixed nonzero stand-in is fine
		}
		bg, err := NewMixed(MixedConfig{
			Topology:          cfg.Topology,
			Load:              cfg.BackgroundLoad,
			QueryByteFraction: 0, // incast jobs replace the query class
			BackgroundSizes:   cfg.BackgroundSizes,
			Duration:          cfg.Duration,
			Seed:              bgSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("incast background: %w", err)
		}
		g.bg = bg
		g.pendingBg, g.hasPendingBg = bg.Next()
	}
	// Prime the first job.
	g.queue.Schedule(g.rng.Exp(cfg.JobsPerSecond), incastJobEvent{})
	return g, nil
}

// Next merges incast responses and background arrivals in time order.
func (g *Incast) Next() (Arrival, bool) {
	for {
		jobTime, haveJob := g.queue.PeekTime()
		switch {
		case g.hasPendingBg && (!haveJob || g.pendingBg.Time <= jobTime):
			a := g.pendingBg
			g.pendingBg, g.hasPendingBg = g.bg.Next()
			return a, true
		case haveJob && jobTime <= g.cfg.Duration:
			ev, t, _ := g.queue.Pop()
			if _, isJob := ev.(incastJobEvent); isJob {
				g.expandJob(t)
				g.queue.Schedule(t+g.rng.Exp(g.cfg.JobsPerSecond), incastJobEvent{})
				continue
			}
			return ev.(Arrival), true
		default:
			return Arrival{}, false
		}
	}
}

// expandJob schedules the job's Fanout responses as individual arrivals.
func (g *Incast) expandJob(t float64) {
	n := g.topo.NumHosts()
	aggregator := g.rng.Intn(n)
	// Sample Fanout distinct backends other than the aggregator.
	backends := g.sampleBackends(aggregator)
	for _, b := range backends {
		at := t
		if g.cfg.Jitter > 0 {
			at += g.rng.Norm(0, g.cfg.Jitter)
			if at < t {
				// Responses cannot precede the request; fold jitter forward.
				at = t + (t - at)
			}
		}
		if at > g.cfg.Duration {
			continue
		}
		g.queue.Schedule(at, Arrival{
			Time:  at,
			Src:   b,
			Dst:   aggregator,
			Size:  g.cfg.ResponseBytes,
			Class: flow.ClassQuery,
		})
	}
}

// sampleBackends draws Fanout distinct hosts excluding the aggregator,
// deterministically given the RNG state.
func (g *Incast) sampleBackends(aggregator int) []int {
	n := g.topo.NumHosts()
	k := g.cfg.Fanout
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		h := g.rng.Intn(n - 1)
		if h >= aggregator {
			h++
		}
		if !picked[h] {
			picked[h] = true
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}
