package workload

import (
	"errors"
	"fmt"

	"basrpt/internal/eventq"
	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// ErrBadState reports a generator checkpoint that fails validation.
var ErrBadState = errors.New("workload: invalid generator state")

// EventState is one pending calendar entry of a generator, tagged by kind:
// "stream" is a Mixed per-(host, class) arrival process, "job" is an
// Incast partition/aggregate job tick, "arrival" is a fully-materialized
// incast response waiting its turn.
type EventState struct {
	Time    float64  `json:"time"`
	Seq     uint64   `json:"seq"`
	Kind    string   `json:"kind"`
	Host    int      `json:"host,omitempty"`
	Class   int      `json:"class,omitempty"`
	Arrival *Arrival `json:"arrival,omitempty"`
}

// GeneratorState is the serializable position of a generator: which
// concrete type it is, its RNG stream, and its pending event calendar.
// Background nests the state of an Incast's embedded Mixed generator.
type GeneratorState struct {
	Kind           string          `json:"kind"` // "slice", "mixed", or "incast"
	Pos            int             `json:"pos,omitempty"`
	RNG            stats.RNGState  `json:"rng,omitempty"`
	QueueSeq       uint64          `json:"queueSeq,omitempty"`
	QueueHighWater int             `json:"queueHighWater,omitempty"`
	Events         []EventState    `json:"events,omitempty"`
	PendingBg      *Arrival        `json:"pendingBg,omitempty"`
	HasPendingBg   bool            `json:"hasPendingBg,omitempty"`
	Background     *GeneratorState `json:"background,omitempty"`
}

// Checkpointable is implemented by generators that can snapshot and
// restore their position mid-stream. All built-in generators qualify;
// user-supplied Generator implementations opt in by implementing it.
type Checkpointable interface {
	Generator
	// CheckpointState captures the generator's position.
	CheckpointState() (*GeneratorState, error)
	// RestoreCheckpoint rewinds this generator (which must be freshly
	// constructed from the identical configuration) to a captured position.
	RestoreCheckpoint(*GeneratorState) error
}

var (
	_ Checkpointable = (*SliceGenerator)(nil)
	_ Checkpointable = (*Mixed)(nil)
	_ Checkpointable = (*Incast)(nil)
)

// CheckpointState captures the replay cursor.
func (g *SliceGenerator) CheckpointState() (*GeneratorState, error) {
	return &GeneratorState{Kind: "slice", Pos: g.pos}, nil
}

// RestoreCheckpoint rewinds the replay cursor.
func (g *SliceGenerator) RestoreCheckpoint(st *GeneratorState) error {
	if st == nil || st.Kind != "slice" {
		return fmt.Errorf("%w: expected slice generator state", ErrBadState)
	}
	if st.Pos < 0 || st.Pos > len(g.arrivals) {
		return fmt.Errorf("%w: slice position %d outside [0, %d]", ErrBadState, st.Pos, len(g.arrivals))
	}
	g.pos = st.Pos
	return nil
}

// CheckpointState captures the RNG position and the pending per-stream
// calendar entries in heap-array order.
func (m *Mixed) CheckpointState() (*GeneratorState, error) {
	st := &GeneratorState{
		Kind:           "mixed",
		RNG:            m.rng.State(),
		QueueSeq:       m.queue.Seq(),
		QueueHighWater: m.queue.HighWater(),
	}
	var bad error
	m.queue.Entries(func(t float64, seq uint64, ev eventq.Event) {
		se, ok := ev.(streamEvent)
		if !ok {
			bad = fmt.Errorf("%w: mixed calendar holds unexpected %T", ErrBadState, ev)
			return
		}
		st.Events = append(st.Events, EventState{
			Time: t, Seq: seq, Kind: "stream", Host: se.host, Class: int(se.class),
		})
	})
	if bad != nil {
		return nil, bad
	}
	return st, nil
}

// RestoreCheckpoint rewinds a freshly-built Mixed generator. Calendar
// entries are rebound to the generator's pre-boxed stream events so the
// no-reboxing invariant (one allocation per stream, ever) survives resume.
func (m *Mixed) RestoreCheckpoint(st *GeneratorState) error {
	if st == nil || st.Kind != "mixed" {
		return fmt.Errorf("%w: expected mixed generator state", ErrBadState)
	}
	if err := m.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	entries := make([]eventq.EntryState, len(st.Events))
	for i, es := range st.Events {
		if es.Kind != "stream" {
			return fmt.Errorf("%w: mixed calendar cannot hold %q events", ErrBadState, es.Kind)
		}
		var off int
		switch flow.Class(es.Class) {
		case flow.ClassQuery:
			off = 0
		case flow.ClassBackground:
			off = 1
		default:
			return fmt.Errorf("%w: stream event class %d", ErrBadState, es.Class)
		}
		if es.Host < m.srcLo || es.Host >= m.srcHi {
			return fmt.Errorf("%w: stream event host %d outside source range [%d, %d)",
				ErrBadState, es.Host, m.srcLo, m.srcHi)
		}
		entries[i] = eventq.EntryState{Time: es.Time, Seq: es.Seq, Event: m.events[2*(es.Host-m.srcLo)+off]}
	}
	if err := m.queue.RestoreState(st.QueueSeq, st.QueueHighWater, entries); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	return nil
}

// CheckpointState captures the incast job calendar (including expanded
// responses still pending), the RNG position, the buffered background
// arrival, and the embedded background generator's state.
func (g *Incast) CheckpointState() (*GeneratorState, error) {
	st := &GeneratorState{
		Kind:           "incast",
		RNG:            g.rng.State(),
		QueueSeq:       g.queue.Seq(),
		QueueHighWater: g.queue.HighWater(),
		HasPendingBg:   g.hasPendingBg,
	}
	if g.hasPendingBg {
		a := g.pendingBg
		st.PendingBg = &a
	}
	var bad error
	g.queue.Entries(func(t float64, seq uint64, ev eventq.Event) {
		switch e := ev.(type) {
		case incastJobEvent:
			st.Events = append(st.Events, EventState{Time: t, Seq: seq, Kind: "job"})
		case Arrival:
			a := e
			st.Events = append(st.Events, EventState{Time: t, Seq: seq, Kind: "arrival", Arrival: &a})
		default:
			bad = fmt.Errorf("%w: incast calendar holds unexpected %T", ErrBadState, ev)
		}
	})
	if bad != nil {
		return nil, bad
	}
	if g.bg != nil {
		bgState, err := g.bg.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.Background = bgState
	}
	return st, nil
}

// RestoreCheckpoint rewinds a freshly-built Incast generator. The
// snapshot must match the configuration's shape: a background generator
// state is required exactly when the configuration enables background
// traffic.
func (g *Incast) RestoreCheckpoint(st *GeneratorState) error {
	if st == nil || st.Kind != "incast" {
		return fmt.Errorf("%w: expected incast generator state", ErrBadState)
	}
	if (g.bg != nil) != (st.Background != nil) {
		return fmt.Errorf("%w: background generator presence mismatch", ErrBadState)
	}
	if st.HasPendingBg && st.PendingBg == nil {
		return fmt.Errorf("%w: pending background arrival missing", ErrBadState)
	}
	if err := g.rng.RestoreState(st.RNG); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	entries := make([]eventq.EntryState, len(st.Events))
	for i, es := range st.Events {
		switch es.Kind {
		case "job":
			entries[i] = eventq.EntryState{Time: es.Time, Seq: es.Seq, Event: incastJobEvent{}}
		case "arrival":
			if es.Arrival == nil {
				return fmt.Errorf("%w: arrival event without payload", ErrBadState)
			}
			entries[i] = eventq.EntryState{Time: es.Time, Seq: es.Seq, Event: *es.Arrival}
		default:
			return fmt.Errorf("%w: incast calendar cannot hold %q events", ErrBadState, es.Kind)
		}
	}
	if err := g.queue.RestoreState(st.QueueSeq, st.QueueHighWater, entries); err != nil {
		return fmt.Errorf("%w: %v", ErrBadState, err)
	}
	if g.bg != nil {
		if err := g.bg.RestoreCheckpoint(st.Background); err != nil {
			return err
		}
	}
	g.hasPendingBg = st.HasPendingBg
	if st.HasPendingBg {
		g.pendingBg = *st.PendingBg
	} else {
		g.pendingBg = Arrival{}
	}
	return nil
}
