package workload

import (
	"errors"
	"math"
	"testing"

	"basrpt/internal/birkhoff"
	"basrpt/internal/flow"
	"basrpt/internal/stats"
	"basrpt/internal/topology"
)

func testTopo(t *testing.T, racks, hostsPerRack int) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Scaled(racks, hostsPerRack))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestWebSearchDistributionShape(t *testing.T) {
	d := WebSearchBytes()
	if d.Min() != Packet {
		t.Fatalf("min = %g, want one packet", d.Min())
	}
	if got, want := d.Max(), 20000*Packet; got != want {
		t.Fatalf("max = %g, want %g", got, want)
	}
	// Heavy tail: the mean is far above the median.
	median := d.Quantile(0.5)
	if d.Mean() < 5*median {
		t.Fatalf("web-search mean %g not heavy-tailed vs median %g", d.Mean(), median)
	}
	// >50% of bytes must come from the top 10% of flows (the 1–20MB tail).
	r := stats.NewRNG(1)
	var total, tail float64
	p90 := d.Quantile(0.9)
	for i := 0; i < 200000; i++ {
		v := d.Sample(r)
		total += v
		if v >= p90 {
			tail += v
		}
	}
	if frac := tail / total; frac < 0.5 {
		t.Fatalf("top-decile flows carry %.2f of bytes, want > 0.5", frac)
	}
}

func TestDataMiningDistributionShape(t *testing.T) {
	d := DataMiningBytes()
	// Half the flows are at most ~2 packets.
	if med := d.Quantile(0.5); med > 3*Packet {
		t.Fatalf("median = %g, want <= ~2 packets", med)
	}
	// The tail reaches hundreds of MB.
	if d.Max() < 5e8 {
		t.Fatalf("max = %g, want >= 5e8", d.Max())
	}
	if CappedWebSearchBytes().Max() > 50e6 {
		t.Fatal("capped web-search exceeds the 50MB modeling bound")
	}
}

func TestSliceGenerator(t *testing.T) {
	arr := []Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 10, Class: flow.ClassQuery},
		{Time: 1, Src: 1, Dst: 0, Size: 20, Class: flow.ClassBackground},
	}
	g := NewSliceGenerator(arr)
	for i := range arr {
		got, ok := g.Next()
		if !ok || got != arr[i] {
			t.Fatalf("Next %d = (%+v, %v)", i, got, ok)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator returned ok")
	}
	// Mutating the source slice must not affect the generator.
	arr2 := []Arrival{{Time: 5}}
	g2 := NewSliceGenerator(arr2)
	arr2[0].Time = 99
	if a, _ := g2.Next(); a.Time != 5 {
		t.Fatal("SliceGenerator aliased caller slice")
	}
}

func TestNewMixedValidation(t *testing.T) {
	topo := testTopo(t, 2, 4)
	cases := []MixedConfig{
		{Load: 0.5, Duration: 1, Seed: 1},                                            // nil topology
		{Topology: topo, Load: 0, Duration: 1, Seed: 1},                              // zero load
		{Topology: topo, Load: 1.5, Duration: 1, Seed: 1},                            // overload
		{Topology: topo, Load: 0.5, Duration: 0, Seed: 1},                            // no duration
		{Topology: topo, Load: 0.5, Duration: 1, QueryByteFraction: 2, Seed: 1},      // bad fraction
		{Topology: topo, Load: 0.5, Duration: 1, QueryByteFraction: -0.001, Seed: 1}, // bad fraction
		{Topology: topo, Load: 0.5, Duration: 1},                                     // seed 0 used to alias to 1
	}
	for i, cfg := range cases {
		if _, err := NewMixed(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %d accepted or wrong error: %v", i, err)
		}
	}
}

func TestMixedArrivalsRespectStructure(t *testing.T) {
	topo := testTopo(t, 3, 4)
	g, err := NewMixed(MixedConfig{
		Topology:          topo,
		Load:              0.6,
		Duration:          2,
		Seed:              7,
		QueryByteFraction: DefaultQueryByteFraction,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	queries, bgs := 0, 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Time < prev {
			t.Fatalf("arrivals out of order: %g after %g", a.Time, prev)
		}
		prev = a.Time
		if a.Time > 2 {
			t.Fatalf("arrival at %g beyond horizon", a.Time)
		}
		if a.Src == a.Dst {
			t.Fatal("self-directed flow")
		}
		if a.Src < 0 || a.Src >= topo.NumHosts() || a.Dst < 0 || a.Dst >= topo.NumHosts() {
			t.Fatalf("ports out of range: %+v", a)
		}
		switch a.Class {
		case flow.ClassQuery:
			queries++
			if a.Size != QueryBytes {
				t.Fatalf("query size %g, want %g", a.Size, QueryBytes)
			}
		case flow.ClassBackground:
			bgs++
			if !topo.SameRack(a.Src, a.Dst) {
				t.Fatalf("background flow crosses racks: %+v", a)
			}
			if a.Size < Packet {
				t.Fatalf("background size %g below one packet", a.Size)
			}
		default:
			t.Fatalf("unexpected class %v", a.Class)
		}
	}
	if queries == 0 || bgs == 0 {
		t.Fatalf("expected both classes, got %d queries / %d background", queries, bgs)
	}
}

func TestMixedDeterministicPerSeed(t *testing.T) {
	topo := testTopo(t, 2, 4)
	mk := func() []Arrival {
		g, err := NewMixed(MixedConfig{
			Topology: topo, Load: 0.5, Duration: 1, Seed: 42,
			QueryByteFraction: DefaultQueryByteFraction,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMixedOfferedLoadMatchesTarget(t *testing.T) {
	topo := testTopo(t, 2, 6)
	const load = 0.7
	const duration = 20.0
	g, err := NewMixed(MixedConfig{
		Topology: topo, Load: load, Duration: duration, Seed: 3,
		QueryByteFraction: DefaultQueryByteFraction,
	})
	if err != nil {
		t.Fatal(err)
	}
	perSrc := make([]float64, topo.NumHosts())
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		perSrc[a.Src] += a.Size
	}
	capacityBytes := topo.HostLinkBps() / 8 * duration
	for host, bytes := range perSrc {
		got := bytes / capacityBytes
		// Heavy-tailed sizes make per-host load noisy; 35% tolerance on a
		// 20-second window is enough to catch calibration bugs (which are
		// typically off by the query fraction or a factor of 8).
		if math.Abs(got-load)/load > 0.35 {
			t.Fatalf("host %d offered load %.3f, want ~%.2f", host, got, load)
		}
	}
}

func TestMixedQueryOnlyAndBackgroundOnly(t *testing.T) {
	topo := testTopo(t, 2, 4)
	qOnly, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.4, Duration: 1, QueryByteFraction: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, ok := qOnly.Next()
		if !ok {
			break
		}
		if a.Class != flow.ClassQuery {
			t.Fatalf("query-only produced %v", a.Class)
		}
	}
	bOnly, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.4, Duration: 1, QueryByteFraction: -1, Seed: 5,
	})
	if err == nil {
		_ = bOnly
		t.Fatal("negative fraction accepted")
	}
}

func TestRateMatrixAdmissibleAndCalibrated(t *testing.T) {
	topo := testTopo(t, 3, 4)
	const load = 0.8
	g, err := NewMixed(MixedConfig{
		Topology: topo, Load: load, Duration: 1, Seed: 1,
		QueryByteFraction: DefaultQueryByteFraction,
	})
	if err != nil {
		t.Fatal(err)
	}
	lambda := g.RateMatrix()
	if err := birkhoff.CheckAdmissible(lambda, 1e-9); err != nil {
		t.Fatalf("rate matrix inadmissible: %v", err)
	}
	rows, cols := birkhoff.LineSums(lambda)
	for i := range rows {
		if math.Abs(rows[i]-load) > 1e-9 {
			t.Fatalf("row %d sum %g, want %g", i, rows[i], load)
		}
		if math.Abs(cols[i]-load) > 1e-6 {
			t.Fatalf("col %d sum %g, want %g", i, cols[i], load)
		}
	}
	// Diagonal must be empty (no self traffic).
	for i := range lambda {
		if lambda[i][i] != 0 {
			t.Fatalf("self-traffic at host %d", i)
		}
	}
	// Slack exists below capacity.
	if eps := birkhoff.SlackLowerBound(lambda); eps <= 0 {
		t.Fatalf("no slack at load %g", load)
	}
}

func TestRackLocalDestinationUniform(t *testing.T) {
	topo := testTopo(t, 2, 4)
	g, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.5, Duration: 50, Seed: 11, QueryByteFraction: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[[2]int]int{}
	total := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		counts[[2]int{a.Src, a.Dst}]++
		total++
	}
	if total == 0 {
		t.Fatal("no arrivals")
	}
	// Each host has 3 rack-mates; every (src, dst) pair should get roughly
	// total / (8 hosts * 3 peers) arrivals.
	expect := float64(total) / 24
	for pair, c := range counts {
		if math.Abs(float64(c)-expect)/expect > 0.3 {
			t.Fatalf("pair %v saw %d arrivals, expect ~%.0f", pair, c, expect)
		}
	}
}
