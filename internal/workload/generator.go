package workload

import (
	"errors"
	"fmt"

	"basrpt/internal/eventq"
	"basrpt/internal/flow"
	"basrpt/internal/stats"
	"basrpt/internal/topology"
)

// Arrival is one generated flow arrival.
type Arrival struct {
	Time  float64 // seconds
	Src   int
	Dst   int
	Size  float64 // bytes
	Class flow.Class
}

// Generator yields flow arrivals in non-decreasing time order.
type Generator interface {
	// Next returns the next arrival; ok is false when the stream is
	// exhausted.
	Next() (a Arrival, ok bool)
}

// SliceGenerator replays a fixed arrival list — the deterministic input
// used by the Figure 1 example and by tests.
type SliceGenerator struct {
	arrivals []Arrival
	pos      int
}

var _ Generator = (*SliceGenerator)(nil)

// NewSliceGenerator copies arrivals (assumed time-sorted) into a generator.
func NewSliceGenerator(arrivals []Arrival) *SliceGenerator {
	cp := make([]Arrival, len(arrivals))
	copy(cp, arrivals)
	return &SliceGenerator{arrivals: cp}
}

// Next replays the next arrival.
func (g *SliceGenerator) Next() (Arrival, bool) {
	if g.pos >= len(g.arrivals) {
		return Arrival{}, false
	}
	a := g.arrivals[g.pos]
	g.pos++
	return a, true
}

// MixedConfig parameterizes the paper's query+background traffic mix.
type MixedConfig struct {
	// Topology places hosts into racks and fixes the port link rate.
	Topology *topology.Topology
	// Load is the target utilization of each ingress/egress access link in
	// (0, 1); the paper sweeps 0.1–0.8 and stresses stability near 0.95.
	Load float64
	// QueryByteFraction is the share of each host's offered bytes carried
	// by 20KB query flows; the remainder is rack-local background traffic.
	// Must be in [0, 1]; 0 disables queries, 1 disables background flows.
	// The paper does not publish the split; experiment configurations use
	// DefaultQueryByteFraction unless stated otherwise.
	QueryByteFraction float64
	// BackgroundSizes samples background flow sizes in bytes; defaults to
	// WebSearchBytes(), the distribution the paper cites.
	BackgroundSizes stats.Sampler
	// Duration is the generation horizon in seconds.
	Duration float64
	// Seed makes the stream reproducible.
	Seed uint64
	// SrcLo and SrcHi restrict the generated sources to hosts in
	// [SrcLo, SrcHi); both zero means every host. Destination draws are
	// unaffected (queries still fan out fabric-wide, background stays
	// rack-local). The sharded simulator gives each rack cell its own
	// Mixed restricted to the rack's hosts with a rack-derived seed, so
	// the union of per-rack streams is fixed by the root seed alone and
	// independent of how racks are grouped into shards.
	SrcLo int
	SrcHi int
}

// DefaultQueryByteFraction is the query/background byte split used by the
// experiment harness when a run does not specify one. The paper does not
// publish the split; queries being "small but frequent" motivates 10%.
const DefaultQueryByteFraction = 0.1

func (c MixedConfig) withDefaults() MixedConfig {
	if c.BackgroundSizes == nil {
		c.BackgroundSizes = WebSearchBytes()
	}
	return c
}

// ErrBadConfig reports an invalid workload configuration.
var ErrBadConfig = errors.New("workload: invalid configuration")

// Mixed generates the two-class traffic of Section V-A. Each host runs two
// independent Poisson processes: queries (fixed 20KB, destination uniform
// over all other hosts) and background flows (heavy-tailed sizes,
// destination uniform within the source's rack). Per-class rates are
// calibrated so each host offers Load × link capacity in expectation; by
// symmetry of the destination choices, egress ports see the same load.
type Mixed struct {
	cfg      MixedConfig
	topo     *topology.Topology
	rng      *stats.RNG
	queue    eventq.Queue
	queryGap float64 // mean seconds between queries per host (0: disabled)
	bgGap    float64 // mean seconds between background flows per host
	srcLo    int     // generated sources span [srcLo, srcHi)
	srcHi    int

	// events holds one pre-boxed streamEvent per (host, class) stream,
	// indexed 2*host (+1 for background). The payload never changes across
	// a stream's lifetime, so rescheduling the cached interface value
	// avoids re-boxing — one heap allocation per event — in Next.
	events []eventq.Event
}

var _ Generator = (*Mixed)(nil)

// QueueHighWater returns the event calendar's peak pending-event count
// (see eventq.Queue.HighWater); the fabric simulator snapshots it into the
// observability registry at the end of a run.
func (m *Mixed) QueueHighWater() int { return m.queue.HighWater() }

type streamEvent struct {
	host  int
	class flow.Class
}

// NewMixed validates the configuration and builds the generator.
func NewMixed(cfg MixedConfig) (*Mixed, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrBadConfig)
	}
	if cfg.Load <= 0 || cfg.Load >= 1 {
		return nil, fmt.Errorf("%w: load %g outside (0, 1)", ErrBadConfig, cfg.Load)
	}
	if cfg.QueryByteFraction < 0 || cfg.QueryByteFraction > 1 {
		return nil, fmt.Errorf("%w: query byte fraction %g outside [0, 1]", ErrBadConfig, cfg.QueryByteFraction)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g <= 0", ErrBadConfig, cfg.Duration)
	}
	if cfg.Topology.Config().HostsPerRack < 2 && cfg.QueryByteFraction < 1 {
		return nil, fmt.Errorf("%w: background flows need at least 2 hosts per rack", ErrBadConfig)
	}
	if cfg.Topology.NumHosts() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 hosts", ErrBadConfig)
	}
	if cfg.Seed == 0 {
		// Seed 0 used to silently alias to 1, making two nominally distinct
		// seeds generate identical streams. Reject it instead.
		return nil, fmt.Errorf("%w: seed must be nonzero", ErrBadConfig)
	}
	if cfg.SrcLo == 0 && cfg.SrcHi == 0 {
		cfg.SrcHi = cfg.Topology.NumHosts()
	}
	if cfg.SrcLo < 0 || cfg.SrcHi > cfg.Topology.NumHosts() || cfg.SrcLo >= cfg.SrcHi {
		return nil, fmt.Errorf("%w: source range [%d, %d) outside [0, %d)",
			ErrBadConfig, cfg.SrcLo, cfg.SrcHi, cfg.Topology.NumHosts())
	}

	m := &Mixed{
		cfg:   cfg,
		topo:  cfg.Topology,
		rng:   stats.NewRNG(cfg.Seed),
		srcLo: cfg.SrcLo,
		srcHi: cfg.SrcHi,
	}

	// Bytes per second each host should offer.
	capacityBps := cfg.Topology.HostLinkBps() / 8 // bytes/s
	offered := cfg.Load * capacityBps

	queryBytes := offered * cfg.QueryByteFraction
	bgBytes := offered - queryBytes
	if queryBytes > 0 {
		rate := queryBytes / QueryBytes // query flows per second per host
		m.queryGap = 1 / rate
	}
	if bgBytes > 0 {
		rate := bgBytes / cfg.BackgroundSizes.Mean()
		m.bgGap = 1 / rate
	}

	// Prime one pending event per active stream per in-range host, boxing
	// each stream's event exactly once. At most every stream is pending at
	// once, so reserving that population keeps the calendar allocation-free
	// for the rest of the run. The events slice is indexed relative to
	// srcLo so a rack-restricted generator stays O(rack), not O(fabric).
	span := m.srcHi - m.srcLo
	m.events = make([]eventq.Event, 2*span)
	m.queue.Reserve(2 * span)
	for host := m.srcLo; host < m.srcHi; host++ {
		i := host - m.srcLo
		m.events[2*i] = streamEvent{host: host, class: flow.ClassQuery}
		m.events[2*i+1] = streamEvent{host: host, class: flow.ClassBackground}
		if m.queryGap > 0 {
			m.queue.Schedule(m.rng.Exp(1/m.queryGap), m.events[2*i])
		}
		if m.bgGap > 0 {
			m.queue.Schedule(m.rng.Exp(1/m.bgGap), m.events[2*i+1])
		}
	}
	return m, nil
}

// Next pops the earliest pending arrival, draws its destination and size,
// and schedules the stream's next arrival.
func (m *Mixed) Next() (Arrival, bool) {
	for {
		ev, t, ok := m.queue.Pop()
		if !ok || t > m.cfg.Duration {
			return Arrival{}, false
		}
		se, isStream := ev.(streamEvent)
		if !isStream {
			continue
		}
		a := Arrival{Time: t, Src: se.host, Class: se.class}
		i := se.host - m.srcLo
		switch se.class {
		case flow.ClassQuery:
			a.Dst = m.pickRemoteUniform(se.host)
			a.Size = QueryBytes
			m.queue.Schedule(t+m.rng.Exp(1/m.queryGap), m.events[2*i])
		case flow.ClassBackground:
			a.Dst = m.pickRackLocal(se.host)
			a.Size = m.cfg.BackgroundSizes.Sample(m.rng)
			m.queue.Schedule(t+m.rng.Exp(1/m.bgGap), m.events[2*i+1])
		default:
			continue
		}
		return a, true
	}
}

// pickRemoteUniform draws a destination uniformly from all hosts except src.
func (m *Mixed) pickRemoteUniform(src int) int {
	n := m.topo.NumHosts()
	d := m.rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// pickRackLocal draws a destination uniformly from src's rack, excluding
// src itself. Rack hosts are contiguous ids [base, base+k), so the draw
// is pure arithmetic — no HostsInRack slice per arrival — and consumes
// the same single RNG variate as the slice formulation did.
func (m *Mixed) pickRackLocal(src int) int {
	k := m.cfg.Topology.Config().HostsPerRack
	base := m.topo.RackOf(src) * k
	d := base + m.rng.Intn(k-1)
	if d >= src {
		// shifting by one position keeps uniformity over the rack minus src.
		d++
	}
	return d
}

// RateMatrix returns the expected normalized rate matrix Λ: entry (i, j)
// is the mean bytes/s from host i to host j divided by the port capacity
// in bytes/s. Feeding this to the birkhoff package checks paper Eq. (2)
// and computes the stability slack ε for the configured workload.
func (m *Mixed) RateMatrix() [][]float64 {
	n := m.topo.NumHosts()
	capacityBps := m.topo.HostLinkBps() / 8
	lambda := make([][]float64, n)
	for i := range lambda {
		lambda[i] = make([]float64, n)
	}
	var queryRate float64 // bytes/s of query traffic per host
	if m.queryGap > 0 {
		queryRate = QueryBytes / m.queryGap
	}
	var bgRate float64
	if m.bgGap > 0 {
		bgRate = m.cfg.BackgroundSizes.Mean() / m.bgGap
	}
	// Only in-range sources generate traffic; a rack-restricted generator
	// has zero rows outside [srcLo, srcHi).
	for i := m.srcLo; i < m.srcHi; i++ {
		if queryRate > 0 {
			per := queryRate / float64(n-1) / capacityBps
			for j := 0; j < n; j++ {
				if j != i {
					lambda[i][j] += per
				}
			}
		}
		if bgRate > 0 {
			rackHosts := m.topo.HostsInRack(m.topo.RackOf(i))
			per := bgRate / float64(len(rackHosts)-1) / capacityBps
			for _, j := range rackHosts {
				if j != i {
					lambda[i][j] += per
				}
			}
		}
	}
	return lambda
}
