package workload

import (
	"errors"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/topology"
)

func TestNewIncastValidation(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 4))
	good := IncastConfig{Topology: topo, JobsPerSecond: 100, Fanout: 4, Duration: 1, Seed: 1}
	if _, err := NewIncast(good); err != nil {
		t.Fatal(err)
	}
	cases := []func(IncastConfig) IncastConfig{
		func(c IncastConfig) IncastConfig { c.Topology = nil; return c },
		func(c IncastConfig) IncastConfig { c.JobsPerSecond = 0; return c },
		func(c IncastConfig) IncastConfig { c.Fanout = 0; return c },
		func(c IncastConfig) IncastConfig { c.Fanout = topo.NumHosts(); return c },
		func(c IncastConfig) IncastConfig { c.ResponseBytes = -1; return c },
		func(c IncastConfig) IncastConfig { c.Jitter = -1; return c },
		func(c IncastConfig) IncastConfig { c.Duration = 0; return c },
		func(c IncastConfig) IncastConfig { c.Seed = 0; return c }, // 0 used to alias to 1
	}
	for i, mutate := range cases {
		if _, err := NewIncast(mutate(good)); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("bad config %d accepted or wrong error: %v", i, err)
		}
	}
}

func TestIncastStructure(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 4))
	g, err := NewIncast(IncastConfig{
		Topology:      topo,
		JobsPerSecond: 200,
		Fanout:        5,
		Duration:      2,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	// Perfectly synchronized incast: responses arrive in bursts of Fanout
	// sharing a destination and timestamp.
	burst := map[float64][]Arrival{}
	total := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		total++
		if a.Time < prev {
			t.Fatalf("out of order: %g after %g", a.Time, prev)
		}
		prev = a.Time
		if a.Class != flow.ClassQuery || a.Size != QueryBytes {
			t.Fatalf("unexpected arrival %+v", a)
		}
		if a.Src == a.Dst {
			t.Fatal("self response")
		}
		burst[a.Time] = append(burst[a.Time], a)
	}
	if total == 0 {
		t.Fatal("no arrivals")
	}
	for at, group := range burst {
		if len(group) != 5 {
			t.Fatalf("burst at %g has %d responses, want 5", at, len(group))
		}
		dst := group[0].Dst
		seenSrc := map[int]bool{}
		for _, a := range group {
			if a.Dst != dst {
				t.Fatalf("burst at %g mixes destinations", at)
			}
			if seenSrc[a.Src] {
				t.Fatalf("burst at %g repeats backend %d", at, a.Src)
			}
			seenSrc[a.Src] = true
		}
	}
}

func TestIncastWithJitterAndBackground(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 4))
	g, err := NewIncast(IncastConfig{
		Topology:       topo,
		JobsPerSecond:  100,
		Fanout:         3,
		Jitter:         1e-4,
		BackgroundLoad: 0.3,
		Duration:       1,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	queries, bgs := 0, 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if a.Time < prev {
			t.Fatalf("out of order: %g after %g", a.Time, prev)
		}
		prev = a.Time
		switch a.Class {
		case flow.ClassQuery:
			queries++
		case flow.ClassBackground:
			bgs++
			if !topo.SameRack(a.Src, a.Dst) {
				t.Fatal("background flow crossed racks")
			}
		}
	}
	if queries == 0 || bgs == 0 {
		t.Fatalf("classes missing: %d queries, %d background", queries, bgs)
	}
}

func TestIncastDeterministic(t *testing.T) {
	topo := topology.MustNew(topology.Scaled(2, 4))
	mk := func() []Arrival {
		g, err := NewIncast(IncastConfig{
			Topology: topo, JobsPerSecond: 150, Fanout: 4, Duration: 0.5, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}
