package workload

import (
	"errors"
	"testing"
)

func TestMixedSourceRangeValidation(t *testing.T) {
	topo := testTopo(t, 2, 4)
	bad := []MixedConfig{
		{Topology: topo, Load: 0.5, Duration: 1, Seed: 1, SrcLo: -1, SrcHi: 4},
		{Topology: topo, Load: 0.5, Duration: 1, Seed: 1, SrcLo: 4, SrcHi: 4},
		{Topology: topo, Load: 0.5, Duration: 1, Seed: 1, SrcLo: 6, SrcHi: 4},
		{Topology: topo, Load: 0.5, Duration: 1, Seed: 1, SrcLo: 0, SrcHi: 9},
	}
	for i, cfg := range bad {
		if _, err := NewMixed(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %d accepted or wrong error: %v", i, err)
		}
	}
}

func TestMixedSourceRangeRestrictsSources(t *testing.T) {
	topo := testTopo(t, 3, 4) // hosts 0..11, rack 1 = hosts 4..7
	g, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.6, Duration: 1, Seed: 3,
		QueryByteFraction: DefaultQueryByteFraction,
		SrcLo:             4, SrcHi: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		n++
		if a.Src < 4 || a.Src >= 8 {
			t.Fatalf("source %d outside restricted range [4, 8)", a.Src)
		}
	}
	if n == 0 {
		t.Fatal("restricted generator produced no arrivals")
	}
}

func TestMixedSourceRangeMatchesSeedOnly(t *testing.T) {
	// Two generators with the same seed and range produce identical
	// streams; the full-fabric stream differs (one RNG vs many).
	topo := testTopo(t, 3, 4)
	mk := func(lo, hi int, seed uint64) []Arrival {
		g, err := NewMixed(MixedConfig{
			Topology: topo, Load: 0.6, Duration: 0.5, Seed: seed,
			QueryByteFraction: DefaultQueryByteFraction,
			SrcLo:             lo, SrcHi: hi,
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	a := mk(4, 8, 11)
	b := mk(4, 8, 11)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMixedSourceRangeRateMatrixRows(t *testing.T) {
	topo := testTopo(t, 3, 4)
	g, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.6, Duration: 1, Seed: 3,
		QueryByteFraction: DefaultQueryByteFraction,
		SrcLo:             4, SrcHi: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	lambda := g.RateMatrix()
	for i, row := range lambda {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if i >= 4 && i < 8 {
			if sum <= 0 {
				t.Fatalf("in-range row %d has zero rate", i)
			}
		} else if sum != 0 {
			t.Fatalf("out-of-range row %d has rate %g", i, sum)
		}
	}
}

func TestMixedSourceRangeCheckpointRoundTrip(t *testing.T) {
	topo := testTopo(t, 3, 4)
	cfg := MixedConfig{
		Topology: topo, Load: 0.6, Duration: 1, Seed: 5,
		QueryByteFraction: DefaultQueryByteFraction,
		SrcLo:             4, SrcHi: 8,
	}
	g, err := NewMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatal("stream exhausted during warmup")
		}
	}
	st, err := g.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	var want []Arrival
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		want = append(want, a)
	}
	fresh, err := NewMixed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreCheckpoint(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, ok := fresh.Next()
		if !ok || got != w {
			t.Fatalf("resumed arrival %d = (%+v, %v), want %+v", i, got, ok, w)
		}
	}
	if _, ok := fresh.Next(); ok {
		t.Fatal("resumed stream longer than original")
	}
	// A snapshot from a different range must be rejected.
	other, err := NewMixed(MixedConfig{
		Topology: topo, Load: 0.6, Duration: 1, Seed: 5,
		QueryByteFraction: DefaultQueryByteFraction,
		SrcLo:             0, SrcHi: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreCheckpoint(st); !errors.Is(err, ErrBadState) {
		t.Fatalf("cross-range restore accepted: %v", err)
	}
}
