// Package workload generates the paper's evaluation traffic (Section V-A):
// fixed-size 20KB query/response flows with uniformly random destinations
// across the whole fabric, and rack-local background flows whose sizes
// follow the heavy-tailed distributions published in the DCTCP measurement
// study [1] and the data-mining study [16]. Arrivals are Poisson, and flow
// rates are calibrated so each ingress/egress port carries a chosen
// fraction of its access-link capacity.
package workload

import "basrpt/internal/stats"

// Packet is the reference packet size (bytes) used to convert the published
// packet-denominated CDFs to bytes.
const Packet = 1460.0

// QueryBytes is the paper's fixed query/response flow size: 20 KB.
const QueryBytes = 20e3

// WebSearchBytes returns the DCTCP web-search flow-size distribution
// (Alizadeh et al., reference [1] of the paper) as an empirical CDF over
// bytes. This is the distribution the paper cites for background flow
// sizes: heavy-tailed, with >95% of bytes carried by the 1–20MB tail and
// everything within a ~30MB bound.
//
// Substitution note (DESIGN.md §2): the original is a measured trace; the
// knots below are the published CDF table used by the pFabric simulation
// suite, expressed in 1460-byte packets.
func WebSearchBytes() *stats.EmpiricalCDF {
	return stats.MustEmpiricalCDF(scalePackets([]stats.CDFPoint{
		{Value: 1, Prob: 0},
		{Value: 6, Prob: 0.15},
		{Value: 13, Prob: 0.30},
		{Value: 19, Prob: 0.45},
		{Value: 33, Prob: 0.60},
		{Value: 53, Prob: 0.70},
		{Value: 133, Prob: 0.80},
		{Value: 667, Prob: 0.90},
		{Value: 1333, Prob: 0.95},
		{Value: 3333, Prob: 0.98},
		{Value: 6667, Prob: 0.99},
		{Value: 20000, Prob: 1},
	}))
}

// DataMiningBytes returns the VL2/data-mining flow-size distribution
// (Kandula et al., reference [16] of the paper) as an empirical CDF over
// bytes: ~80% of flows below 10KB, with a multi-hundred-MB elephant tail.
func DataMiningBytes() *stats.EmpiricalCDF {
	return stats.MustEmpiricalCDF(scalePackets([]stats.CDFPoint{
		{Value: 1, Prob: 0},
		{Value: 2, Prob: 0.50},
		{Value: 3, Prob: 0.60},
		{Value: 5, Prob: 0.70},
		{Value: 7, Prob: 0.80},
		{Value: 267, Prob: 0.90},
		{Value: 2107, Prob: 0.95},
		{Value: 66667, Prob: 0.99},
		{Value: 666667, Prob: 1},
	}))
}

// CappedWebSearchBytes returns the web-search distribution truncated at
// 50MB, matching the paper's Section III-B modeling assumption that "all
// flow lengths are within an upper bound of 50MB". (The uncapped table
// already tops out below 30MB, so the cap is a no-op kept for the
// assumption's documentation value; the data-mining tail is what it
// actually binds.)
func CappedWebSearchBytes() *stats.EmpiricalCDF {
	return WebSearchBytes()
}

func scalePackets(points []stats.CDFPoint) []stats.CDFPoint {
	out := make([]stats.CDFPoint, len(points))
	for i, p := range points {
		out[i] = stats.CDFPoint{Value: p.Value * Packet, Prob: p.Prob}
	}
	return out
}
