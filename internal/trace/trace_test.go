package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"basrpt/internal/metrics"
)

func sampleSeries() *metrics.Series {
	var s metrics.Series
	s.Add(0, 10)
	s.Add(1, 20)
	s.Add(2, 15)
	return &s
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "queue_bytes", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("rows = %d, want 4", len(records))
	}
	if records[0][1] != "queue_bytes" {
		t.Fatalf("header = %v", records[0])
	}
	if records[2][0] != "1" || records[2][1] != "20" {
		t.Fatalf("row = %v", records[2])
	}
}

func TestWriteColumnsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteColumnsCSV(&buf, []string{"load", "fct"}, [][]float64{{0.1, 0.2}, {5, 7}})
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[1][0] != "0.1" || records[2][1] != "7" {
		t.Fatalf("records = %v", records)
	}
}

func TestWriteColumnsCSVShapeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteColumnsCSV(&buf, []string{"a"}, nil); !errors.Is(err, ErrShape) {
		t.Fatalf("header mismatch: %v", err)
	}
	err := WriteColumnsCSV(&buf, []string{"a", "b"}, [][]float64{{1, 2}, {1}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("ragged columns: %v", err)
	}
}

func TestWriteFailuresPropagate(t *testing.T) {
	// A failing destination must surface from every writer, not vanish into
	// the csv/json buffering.
	if err := WriteSeriesCSV(&failWriter{}, "v", sampleSeries()); !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteSeriesCSV error = %v", err)
	}
	err := WriteColumnsCSV(&failWriter{}, []string{"a"}, [][]float64{{1, 2}})
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteColumnsCSV error = %v", err)
	}
	if err := WriteJSON(&failWriter{}, map[string]int{"x": 1}); !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteJSON error = %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"x": 1`) {
		t.Fatalf("json = %q", buf.String())
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "TABLE I",
		Headers: []string{"scheme", "avg", "99th"},
	}
	tbl.AddRow("srpt", "1.20", "4.50")
	tbl.AddRow("fast-basrpt", "2.10") // short row padded
	out := tbl.Render()
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "fast-basrpt") {
		t.Fatalf("render = %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	// Columns align: "srpt" padded to width of "fast-basrpt".
	if !strings.HasPrefix(lines[3], "srpt        ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestChart(t *testing.T) {
	out := Chart("queue", sampleSeries(), 20, 5)
	if !strings.Contains(out, "queue") || !strings.Contains(out, "*") {
		t.Fatalf("chart = %q", out)
	}
	if !strings.Contains(out, "max") || !strings.Contains(out, "min") {
		t.Fatalf("chart missing scale: %q", out)
	}
	var empty metrics.Series
	if got := Chart("", &empty, 20, 5); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart = %q", got)
	}
	// Constant series must not divide by zero.
	var flat metrics.Series
	flat.Add(0, 5)
	flat.Add(1, 5)
	if got := Chart("", &flat, 10, 3); !strings.Contains(got, "*") {
		t.Fatalf("flat chart = %q", got)
	}
	// Tiny dimensions are clamped.
	if got := Chart("", sampleSeries(), 1, 1); got == "" {
		t.Fatal("clamped chart empty")
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1.234) != "1.23" {
		t.Fatalf("Ms = %q", Ms(1.234))
	}
	if Gbps(9.5) != "9.500" {
		t.Fatalf("Gbps = %q", Gbps(9.5))
	}
	cases := map[float64]string{
		512:    "512B",
		2048:   "2.05KB",
		3.5e6:  "3.50MB",
		7.25e9: "7.25GB",
		1.5e12: "1.50TB",
	}
	for v, want := range cases {
		if got := Bytes(v); got != want {
			t.Fatalf("Bytes(%g) = %q, want %q", v, got, want)
		}
	}
}
