// Package trace renders experiment output: CSV and JSON exports for
// plotting, fixed-width ASCII tables matching the paper's Table I layout,
// and ASCII line charts for the queue-length and throughput figures.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"basrpt/internal/metrics"
)

// ErrShape reports mismatched column lengths.
var ErrShape = errors.New("trace: mismatched column shapes")

// WriteSeriesCSV writes a (time, value) series with the given value-column
// header.
func WriteSeriesCSV(w io.Writer, header string, s *metrics.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", header}); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for i := range s.Times {
		rec := []string{
			strconv.FormatFloat(s.Times[i], 'g', -1, 64),
			strconv.FormatFloat(s.Values[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteColumnsCSV writes aligned columns with headers. All columns must
// have equal length.
func WriteColumnsCSV(w io.Writer, headers []string, cols [][]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("%w: %d headers, %d columns", ErrShape, len(headers), len(cols))
	}
	var n int
	for i, col := range cols {
		if i == 0 {
			n = len(col)
		} else if len(col) != n {
			return fmt.Errorf("%w: column %d has %d rows, want %d", ErrShape, i, len(col), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	rec := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for c := range cols {
			rec[c] = strconv.FormatFloat(cols[c][r], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Table is a fixed-width ASCII table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render lays the table out with column-sized padding.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Chart renders a series as an ASCII line chart of the given dimensions.
// It is deliberately simple — the real figures come from the CSV exports —
// but it lets the harness show trends inline.
func Chart(title string, s *metrics.Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if s.Len() == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV, maxV := s.Values[0], s.Values[0]
	for _, v := range s.Values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := s.Len()
	for c := 0; c < width; c++ {
		// Downsample by bucket mean.
		lo := c * n / width
		hi := (c + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += s.Values[i]
		}
		v := sum / float64(hi-lo)
		r := int((v - minV) / (maxV - minV) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[height-1-r][c] = '*'
	}
	fmt.Fprintf(&b, "%.4g max\n", maxV)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%.4g min  (%d samples, t in [%.4g, %.4g])\n",
		minV, n, s.Times[0], s.Times[n-1])
	return b.String()
}

// Ms formats a millisecond quantity the way the paper's Table I does.
func Ms(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Gbps formats a throughput in Gbps.
func Gbps(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Bytes formats a byte quantity with an SI-style suffix.
func Bytes(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fTB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fGB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fKB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
