package trace

import (
	"bytes"
	"strings"
	"testing"

	"basrpt/internal/obs"
)

// FuzzReadTrace throws arbitrary bytes at the JSONL trace reader. The
// invariants: never panic, never return events with non-increasing
// sequence numbers (even alongside an error — the salvaged prefix must
// itself be well-formed), and accept-what-we-write round-trips.
func FuzzReadTrace(f *testing.F) {
	var valid bytes.Buffer
	ew, err := NewEventWriter(&valid, TraceHeader{Seed: 7, Scheduler: "srpt", Hosts: 4})
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := ew.WriteEvent(obs.Event{Seq: uint64(i), T: float64(i), Kind: "flow.done", Port: i}); err != nil {
			f.Fatal(err)
		}
	}
	if err := ew.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add(valid.Bytes()[:valid.Len()-10]) // truncated mid-line
	f.Add([]byte(`{"schema":"wrong/9"}` + "\n"))
	f.Add([]byte(`{"schema":"` + TraceSchema + `"}` + "\n" + `{"seq":5}` + "\n" + `{"seq":5}` + "\n")) // stalled seq
	f.Add([]byte(`{"schema":"` + TraceSchema + `"}` + "\n" + "not json\n"))
	f.Add([]byte(strings.Repeat("x", 4096)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, events, err := ReadTrace(bytes.NewReader(data))
		var last uint64
		for i, ev := range events {
			if ev.Seq <= last {
				t.Fatalf("event %d: seq %d not after %d (err=%v)", i, ev.Seq, last, err)
			}
			last = ev.Seq
		}
		if err != nil {
			return
		}
		// Anything accepted must carry the schema we wrote and re-serialize
		// through the writer without error.
		if h.Schema != TraceSchema {
			t.Fatalf("accepted trace with schema %q", h.Schema)
		}
		var out bytes.Buffer
		ew, werr := NewEventWriter(&out, h)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, ev := range events {
			if werr := ew.WriteEvent(ev); werr != nil {
				t.Fatal(werr)
			}
		}
		if werr := ew.Flush(); werr != nil {
			t.Fatal(werr)
		}
	})
}
