package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"basrpt/internal/obs"
)

func sampleHeader() TraceHeader {
	return TraceHeader{
		Seed:        42,
		Scheduler:   "fast-basrpt",
		Hosts:       16,
		Load:        0.8,
		DurationSec: 1.5,
	}
}

func sampleEvents() []obs.Event {
	return []obs.Event{
		{Seq: 1, T: 0.001, Kind: "sample.total", Port: -1, Value: 1500},
		{Seq: 2, T: 0.002, Kind: "flow.done", Port: 3, Value: 0.0013, Detail: "query"},
		{Seq: 3, T: 0.004, Kind: "fault.link.start", Port: 7, Value: 0.5},
	}
}

func writeTrace(t *testing.T, h TraceHeader, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	ew, err := NewEventWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ew.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJSONLRoundTrip(t *testing.T) {
	raw := writeTrace(t, sampleHeader(), sampleEvents())
	h, events, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != TraceSchema {
		t.Fatalf("schema = %q", h.Schema)
	}
	want := sampleHeader()
	want.Schema = TraceSchema
	if h != want {
		t.Fatalf("header = %+v, want %+v", h, want)
	}
	if !reflect.DeepEqual(events, sampleEvents()) {
		t.Fatalf("events = %+v", events)
	}
}

func TestJSONLEmptyRun(t *testing.T) {
	// A run that emitted no events is still a valid trace: just a header.
	raw := writeTrace(t, sampleHeader(), nil)
	h, events, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 42 || len(events) != 0 {
		t.Fatalf("header %+v, %d events", h, len(events))
	}
	// A completely empty file is not.
	if _, _, err := ReadTrace(strings.NewReader("")); !errors.Is(err, ErrShape) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestJSONLWriterCountsAndSink(t *testing.T) {
	var buf bytes.Buffer
	ew, err := NewEventWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	// EventWriter must satisfy obs.EventSink so it plugs into obs.Options.
	var _ obs.EventSink = ew
	o := obs.New(obs.Options{Sink: ew})
	o.Emit(0.1, "a", -1, 1, "")
	o.Emit(0.2, "b", 2, 3, "d")
	if ew.Events() != 2 || ew.Err() != nil {
		t.Fatalf("events=%d err=%v", ew.Events(), ew.Err())
	}
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	_, events, err := ReadTrace(&buf)
	if err != nil || len(events) != 2 || events[1].Detail != "d" {
		t.Fatalf("read back: %v, %+v", err, events)
	}
}

func TestJSONLTruncatedAndCorrupt(t *testing.T) {
	raw := writeTrace(t, sampleHeader(), sampleEvents())
	lines := strings.SplitAfter(string(raw), "\n")

	// Truncation mid-line: the partial JSON object fails to parse, and the
	// events before the cut are still returned for salvage.
	cut := raw[:len(raw)-10]
	_, events, err := ReadTrace(bytes.NewReader(cut))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("truncated trace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("salvaged %d events, want 2", len(events))
	}

	// Out-of-order sequence numbers (e.g. concatenated traces) are rejected.
	shuffled := lines[0] + lines[2] + lines[1]
	if _, _, err := ReadTrace(strings.NewReader(shuffled)); !errors.Is(err, ErrShape) {
		t.Fatalf("shuffled trace: %v", err)
	}

	// Wrong schema string.
	bad := strings.Replace(lines[0], TraceSchema, "basrpt-trace/999", 1)
	if _, _, err := ReadTrace(strings.NewReader(bad)); !errors.Is(err, ErrShape) {
		t.Fatalf("schema mismatch: %v", err)
	}

	// Garbage header.
	if _, _, err := ReadTrace(strings.NewReader("not json\n")); !errors.Is(err, ErrShape) {
		t.Fatalf("garbage header: %v", err)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	a := writeTrace(t, sampleHeader(), sampleEvents())
	b := writeTrace(t, sampleHeader(), sampleEvents())
	if !bytes.Equal(a, b) {
		t.Fatal("identical traces serialized to different bytes")
	}
}

// failWriter fails every write after the first n bytes have been accepted.
type failWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestJSONLWriterFailureIsSticky(t *testing.T) {
	// Fail during the header write: bufio only hits the underlying writer on
	// flush or overflow, so use a tiny buffer via many events instead —
	// simplest deterministic trigger is a zero-capacity failWriter + Flush.
	ew, err := NewEventWriter(&failWriter{}, sampleHeader())
	if err != nil {
		t.Fatalf("header write buffered, should not fail yet: %v", err)
	}
	if err := ew.WriteEvent(obs.Event{Seq: 1}); err != nil {
		t.Fatalf("buffered event write failed: %v", err)
	}
	if err := ew.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("flush error = %v", err)
	}
	// Sticky: every later call reports the same failure and writes nothing.
	if err := ew.WriteEvent(obs.Event{Seq: 2}); !errors.Is(err, errDiskFull) {
		t.Fatalf("post-failure write error = %v", err)
	}
	if err := ew.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("post-failure flush error = %v", err)
	}
	if ew.Events() != 1 {
		t.Fatalf("events = %d, want 1 (pre-failure only)", ew.Events())
	}
	if ew.Err() == nil {
		t.Fatal("Err not sticky")
	}
}
