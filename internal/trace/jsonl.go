package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"basrpt/internal/obs"
)

// TraceSchema identifies the JSONL trace format version. The first line of
// a trace file is a TraceHeader carrying this string; every following line
// is one obs.Event. Bump the suffix when the line shape changes.
const TraceSchema = "basrpt-trace/1"

// TraceHeader is the first line of a JSONL trace: run provenance that a
// reader needs to interpret the event stream. Field order is fixed so that
// marshaling is byte-deterministic across runs.
type TraceHeader struct {
	Schema      string  `json:"schema"`
	Seed        int64   `json:"seed"`
	Scheduler   string  `json:"scheduler"`
	Hosts       int     `json:"hosts"`
	Load        float64 `json:"load"`
	DurationSec float64 `json:"durationSec"`
	WallClock   bool    `json:"wallClock,omitempty"`
}

// EventWriter streams obs events to w as JSONL, one event per line after a
// header line. It implements obs.EventSink, so it plugs straight into
// obs.Options.Sink. Errors are sticky: after the first write failure every
// call reports it and nothing more is written.
type EventWriter struct {
	bw     *bufio.Writer
	err    error
	events int64
}

// NewEventWriter writes the header line to w and returns a writer for the
// event stream. A header write failure is returned immediately; the caller
// should not use the writer after an error.
func NewEventWriter(w io.Writer, h TraceHeader) (*EventWriter, error) {
	h.Schema = TraceSchema
	ew := &EventWriter{bw: bufio.NewWriter(w)}
	if err := ew.writeLine(h); err != nil {
		return nil, err
	}
	return ew, nil
}

// NewContinuationWriter returns a writer that emits event lines with NO
// header line. Use it when resuming a checkpointed run whose trace file
// already holds the header: concatenating the original (partial) trace
// with a continuation written by this writer yields a single valid trace,
// byte-identical to the uninterrupted run's.
func NewContinuationWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriter(w)}
}

func (ew *EventWriter) writeLine(v any) error {
	if ew.err != nil {
		return ew.err
	}
	b, err := json.Marshal(v)
	if err == nil {
		b = append(b, '\n')
		_, err = ew.bw.Write(b)
	}
	if err != nil {
		ew.err = err
	}
	return err
}

// WriteEvent appends one event line (obs.EventSink).
func (ew *EventWriter) WriteEvent(ev obs.Event) error {
	if err := ew.writeLine(ev); err != nil {
		return err
	}
	ew.events++
	return nil
}

// Events returns how many events have been written successfully.
func (ew *EventWriter) Events() int64 { return ew.events }

// Err returns the sticky write error, if any.
func (ew *EventWriter) Err() error { return ew.err }

// Flush drains the buffer to the underlying writer. Call it (or check its
// error) before closing the file: JSONL lines are buffered.
func (ew *EventWriter) Flush() error {
	if ew.err != nil {
		return ew.err
	}
	if err := ew.bw.Flush(); err != nil {
		ew.err = err
		return err
	}
	return nil
}

// ReadTrace parses a JSONL trace produced by EventWriter: a header line
// followed by zero or more event lines. It validates the schema string and
// that event sequence numbers are monotonically increasing, so a truncated
// or shuffled file is reported rather than silently accepted. An empty
// input (no header) is an ErrShape.
func ReadTrace(r io.Reader) (TraceHeader, []obs.Event, error) {
	var h TraceHeader
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, err
		}
		return h, nil, fmt.Errorf("%w: empty trace (missing header line)", ErrShape)
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("%w: bad header line: %v", ErrShape, err)
	}
	if h.Schema != TraceSchema {
		return h, nil, fmt.Errorf("%w: schema %q, want %q", ErrShape, h.Schema, TraceSchema)
	}
	var events []obs.Event
	var lastSeq uint64
	line := 1
	for sc.Scan() {
		line++
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return h, events, fmt.Errorf("%w: line %d: %v", ErrShape, line, err)
		}
		if ev.Seq <= lastSeq {
			return h, events, fmt.Errorf("%w: line %d: seq %d not after %d", ErrShape, line, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return h, events, err
	}
	return h, events, nil
}
