// Package runner fans independent (seed, task) simulation runs across a
// bounded worker pool and aggregates their metrics into per-metric mean,
// standard deviation, and 95% confidence intervals.
//
// Every number in a single-seed experiment is one draw from the run
// distribution; the tail percentiles the paper compares (query 99th FCT,
// stable queue level) are exactly where one draw is noisiest. The runner
// turns any experiment into a multi-seed study: Run derives one
// deterministic seed per replicate from a root seed (DeriveSeed), executes
// the replicates on up to GOMAXPROCS workers, and folds the named metrics
// each task returns into an Aggregate.
//
// Concurrency contract: the simulators and schedulers in this repository
// are deliberately not goroutine-safe (see internal/sched); the pool
// therefore shares nothing between runs. Each Task.Run invocation must
// construct its own scheduler, generator, and simulator from the seed it
// is handed. Results are written to a per-unit slot and aggregated in
// (seed, task) order after the pool drains, so the Aggregate is
// byte-identical no matter how many workers ran or how they interleaved.
package runner
