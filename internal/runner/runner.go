package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Sample is the named metric values one run of one task produced.
type Sample map[string]float64

// Task is one independently repeatable unit of an experiment — typically a
// single simulation (one scheduler at one operating point). Run receives a
// derived seed and must build everything it needs from scratch: tasks
// execute concurrently and the simulators are not goroutine-safe.
type Task struct {
	// Name prefixes the task's metric names in the aggregate ("" for a
	// single-task experiment). Names must be unique within one Run call.
	Name string
	// Run executes the task at the given seed and returns its metrics.
	Run func(seed uint64) (Sample, error)
	// Resume, when non-nil, is the degraded-mode second attempt: it is
	// called after Run fails (error or panic) with the failing seed and
	// the cause, typically to restart the simulation from the task's last
	// checkpoint. A successful Resume replaces the failure; a failed or
	// panicking Resume keeps the unit failed with both causes reported.
	Resume func(seed uint64, cause error) (Sample, error)
	// CheckpointPath, when non-empty, names where this task persists its
	// checkpoints. It is quoted in per-seed failure messages so a crashed
	// sweep's survivors point straight at their resume artifacts.
	CheckpointPath string
}

// Phase identifies where in its lifecycle a (replicate, task) unit is
// when an OnProgress callback fires.
type Phase string

// The unit lifecycle: every unit emits PhaseStart when a worker picks it
// up and exactly one terminal phase (PhaseDone or PhaseFailed) when it
// finishes; PhaseResume fires in between only when a failed first
// attempt has a Resume hook to try.
const (
	PhaseStart  Phase = "start"
	PhaseResume Phase = "resume"
	PhaseDone   Phase = "done"
	PhaseFailed Phase = "failed"
)

// Terminal reports whether the phase marks a finished unit. Done counts
// include the reporting unit only on terminal phases, and Sample is only
// populated there.
func (p Phase) Terminal() bool { return p == PhaseDone || p == PhaseFailed }

// Progress is the structured progress value handed to OnProgress: which
// (replicate, task) unit fired, where it is in its lifecycle, and how
// far the whole sweep has come. Done counts units finished so far —
// including the reporting unit on terminal phases, excluding it on
// start/resume phases.
type Progress struct {
	Phase  Phase
	Done   int
	Total  int
	Task   string
	Seed   uint64
	Sample Sample // terminal phases only; nil on failure
	Err    error  // the unit's (or first attempt's, on PhaseResume) error
}

// Config parameterizes a multi-seed run.
type Config struct {
	// Seeds is the number of independent replicates (>= 1).
	Seeds int
	// Parallel is the worker count; 0 selects GOMAXPROCS. 1 runs serially
	// on the calling goroutine's clock but through the same code path, so
	// serial and parallel runs aggregate identically.
	Parallel int
	// RootSeed is the root of the per-replicate seed derivation (0
	// selects 1). Replicate i runs at DeriveSeed(RootSeed, i).
	RootSeed uint64
	// OnProgress, when non-nil, is called at every unit lifecycle phase
	// (start, optional resume, one terminal done/failed), from the worker
	// driving the unit, serialized by an internal mutex so
	// implementations need no locking of their own. Units progress in
	// pool order, so the callback sequence is NOT deterministic across
	// runs — it exists for live observability (per-seed progress lines,
	// ops endpoints), never for results; the aggregate stays
	// byte-identical at any worker count regardless of what the callback
	// observes. Consumers that only want completion lines should filter
	// on Progress.Phase.Terminal().
	OnProgress func(Progress)
}

func (c Config) withDefaults() Config {
	if c.RootSeed == 0 {
		c.RootSeed = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	return c
}

// DeriveSeed maps (root, stream) to a replicate seed via one splitmix64
// step — a pure function, so replicate seeds do not depend on worker
// scheduling. Streams of the same root never collide for stream counts
// that matter here (splitmix64 is a bijection on the shifted input).
func DeriveSeed(root uint64, stream int) uint64 {
	z := root + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // seed 0 means "default" to most constructors; avoid it
	}
	return z
}

// unit is one (replicate, task) execution slot.
type unit struct {
	sample Sample
	err    error
}

// Run executes every task at every derived seed across the worker pool and
// aggregates the metrics. Individual task failures — including panics,
// which are recovered per unit and converted to errors — do not stop
// other units; all failures are joined into the returned error (with the
// offending seed, task, and checkpoint path named). When some units
// succeed, their partial aggregate is returned ALONGSIDE the error, so a
// poisoned seed costs one replicate, not the whole sweep. A nil
// *Aggregate is returned only when validation fails before any unit ran
// or no unit succeeded.
func Run(cfg Config, tasks []Task) (*Aggregate, error) {
	if cfg.Seeds < 1 {
		return nil, fmt.Errorf("runner: seeds %d < 1", cfg.Seeds)
	}
	if len(tasks) == 0 {
		return nil, errors.New("runner: no tasks")
	}
	names := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t.Run == nil {
			return nil, fmt.Errorf("runner: task %q has nil Run", t.Name)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("runner: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
	}
	cfg = cfg.withDefaults()

	seeds := make([]uint64, cfg.Seeds)
	for i := range seeds {
		seeds[i] = DeriveSeed(cfg.RootSeed, i)
	}

	// One slot per (replicate, task): workers pull unit indices from a
	// channel and write only their own slot, so no synchronization beyond
	// the WaitGroup is needed and completion order cannot leak into the
	// results.
	nUnits := cfg.Seeds * len(tasks)
	units := make([]unit, nUnits)
	workers := cfg.Parallel
	if workers > nUnits {
		workers = nUnits
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	var done int
	// notify serializes every lifecycle callback under one mutex and owns
	// the done counter, so Progress.Done is consistent with the phase
	// ordering each consumer observes.
	notify := func(phase Phase, taskName string, seed uint64, sample Sample, err error) {
		if cfg.OnProgress == nil {
			return
		}
		progressMu.Lock()
		if phase.Terminal() {
			done++
		}
		cfg.OnProgress(Progress{
			Phase: phase, Done: done, Total: nUnits,
			Task: taskName, Seed: seed,
			Sample: sample, Err: err,
		})
		progressMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range idx {
				task := tasks[u%len(tasks)]
				seed := seeds[u/len(tasks)]
				notify(PhaseStart, task.Name, seed, nil, nil)
				sample, err := runUnit(task.Run, seed)
				if err != nil && task.Resume != nil {
					notify(PhaseResume, task.Name, seed, nil, err)
					if resumed, rerr := runUnit(func(s uint64) (Sample, error) {
						return task.Resume(s, err)
					}, seed); rerr == nil {
						sample, err = resumed, nil
					} else {
						err = fmt.Errorf("%w; resume also failed: %v", err, rerr)
					}
				}
				if err != nil {
					note := ""
					if task.CheckpointPath != "" {
						note = fmt.Sprintf(" (checkpoint at %s)", task.CheckpointPath)
					}
					err = fmt.Errorf("runner: task %q seed %d%s: %w", task.Name, seed, note, err)
					sample = nil
				}
				units[u] = unit{sample: sample, err: err}
				phase := PhaseDone
				if err != nil {
					phase = PhaseFailed
				}
				notify(phase, task.Name, seed, sample, err)
			}
		}()
	}
	for u := 0; u < nUnits; u++ {
		idx <- u
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	var errs []error
	for _, u := range units {
		if u.err != nil {
			errs = append(errs, u.err)
		}
	}
	if len(errs) == nUnits {
		return nil, errors.Join(errs...)
	}

	agg := &Aggregate{
		RootSeed: cfg.RootSeed,
		Seeds:    seeds,
		Parallel: cfg.Parallel,
		Units:    nUnits,
		Elapsed:  elapsed,
	}
	// Aggregate in (task, metric-name, replicate) order: deterministic
	// regardless of how the pool interleaved, including the float64
	// summation order inside each metric.
	for ti, task := range tasks {
		for _, name := range metricNames(units, ti, len(tasks), cfg.Seeds) {
			full := name
			if task.Name != "" {
				full = task.Name + "/" + name
			}
			m := MetricAggregate{Name: full}
			for si := 0; si < cfg.Seeds; si++ {
				if v, ok := units[si*len(tasks)+ti].sample[name]; ok {
					m.Samples = append(m.Samples, v)
				}
			}
			m.finalize()
			agg.Metrics = append(agg.Metrics, m)
		}
	}
	return agg, errors.Join(errs...)
}

// runUnit executes one attempt with a panic barrier: a panicking task
// poisons its own unit (with the stack preserved in the error), never the
// pool.
func runUnit(run func(uint64) (Sample, error), seed uint64) (sample Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return run(seed)
}

// metricNames returns the sorted union of metric names task ti produced
// across all replicates.
func metricNames(units []unit, ti, nTasks, nSeeds int) []string {
	seen := map[string]bool{}
	var names []string
	for si := 0; si < nSeeds; si++ {
		for name := range units[si*nTasks+ti].sample {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names
}
