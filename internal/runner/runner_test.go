package runner

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"basrpt/internal/stats"
)

// twoTasks is a deterministic pair of tasks whose metrics depend only on
// the seed, so parallel and serial runs must agree exactly.
func twoTasks() []Task {
	mk := func(name string, scale float64) Task {
		return Task{Name: name, Run: func(seed uint64) (Sample, error) {
			r := stats.NewRNG(seed)
			return Sample{
				"x": scale * r.Float64(),
				"y": scale * float64(seed%97),
			}, nil
		}}
	}
	return []Task{mk("a", 1), mk("b", 10)}
}

func TestParallelMatchesSerial(t *testing.T) {
	tasks := twoTasks()
	serial, err := Run(Config{Seeds: 7, Parallel: 1, RootSeed: 42}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 13} {
		par, err := Run(Config{Seeds: 7, Parallel: workers, RootSeed: 42}, twoTasks())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Metrics, par.Metrics) {
			t.Fatalf("parallel=%d metrics differ from serial", workers)
		}
		if serial.Render("t") != par.Render("t") {
			t.Fatalf("parallel=%d render differs from serial", workers)
		}
		var sb, pb bytes.Buffer
		if err := serial.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteCSV(&pb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != pb.String() {
			t.Fatalf("parallel=%d csv differs from serial", workers)
		}
	}
}

func TestAggregateShape(t *testing.T) {
	agg, err := Run(Config{Seeds: 5, Parallel: 2, RootSeed: 1}, twoTasks())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Units != 10 || len(agg.Seeds) != 5 {
		t.Fatalf("units=%d seeds=%d, want 10/5", agg.Units, len(agg.Seeds))
	}
	// Metrics come out in (task position, metric name) order with the task
	// name prefixed.
	want := []string{"a/x", "a/y", "b/x", "b/y"}
	var got []string
	for _, m := range agg.Metrics {
		got = append(got, m.Name)
		if m.N != 5 || len(m.Samples) != 5 {
			t.Fatalf("%s: n=%d samples=%d, want 5", m.Name, m.N, len(m.Samples))
		}
		if m.Min > m.Mean || m.Mean > m.Max {
			t.Fatalf("%s: min %g mean %g max %g out of order", m.Name, m.Min, m.Mean, m.Max)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("metric order %v, want %v", got, want)
	}
	if agg.Metric("b/y") == nil || agg.Metric("nope") != nil {
		t.Fatal("Metric lookup wrong")
	}
}

func TestSingleTaskHasNoPrefix(t *testing.T) {
	agg, err := Run(Config{Seeds: 2}, []Task{{Run: func(seed uint64) (Sample, error) {
		return Sample{"v": float64(seed)}, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Metrics) != 1 || agg.Metrics[0].Name != "v" {
		t.Fatalf("metrics = %+v, want single unprefixed v", agg.Metrics)
	}
}

func TestErrorCarriesTaskAndSeed(t *testing.T) {
	boom := Task{Name: "boom", Run: func(seed uint64) (Sample, error) {
		if seed == DeriveSeed(9, 1) {
			return nil, fmt.Errorf("kaput")
		}
		return Sample{"ok": 1}, nil
	}}
	_, err := Run(Config{Seeds: 3, Parallel: 2, RootSeed: 9}, []Task{boom})
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `task "boom"`) || !strings.Contains(msg, "kaput") ||
		!strings.Contains(msg, fmt.Sprintf("seed %d", DeriveSeed(9, 1))) {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestValidation(t *testing.T) {
	ok := func(uint64) (Sample, error) { return Sample{}, nil }
	cases := []struct {
		cfg   Config
		tasks []Task
	}{
		{Config{Seeds: 0}, []Task{{Run: ok}}},
		{Config{Seeds: 1}, nil},
		{Config{Seeds: 1}, []Task{{Name: "t"}}},
		{Config{Seeds: 1}, []Task{{Name: "t", Run: ok}, {Name: "t", Run: ok}}},
	}
	for i, c := range cases {
		if _, err := Run(c.cfg, c.tasks); err == nil {
			t.Fatalf("case %d: invalid input accepted", i)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for root := uint64(0); root < 4; root++ {
		for stream := 0; stream < 1000; stream++ {
			s := DeriveSeed(root, stream)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d,%d) = 0", root, stream)
			}
			if seen[s] {
				t.Fatalf("DeriveSeed collision at root %d stream %d", root, stream)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed not pure")
	}
}

func TestMissingMetricShrinksN(t *testing.T) {
	// A metric only some replicates report aggregates over those that did.
	agg, err := Run(Config{Seeds: 4, RootSeed: 3}, []Task{{Run: func(seed uint64) (Sample, error) {
		s := Sample{"always": 1}
		// Only the first two replicates report the optional metric.
		for i := 0; i < 2; i++ {
			if DeriveSeed(3, i) == seed {
				s["sometimes"] = 2
			}
		}
		return s, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	always := agg.Metric("always")
	sometimes := agg.Metric("sometimes")
	if always == nil || always.N != 4 {
		t.Fatalf("always: %+v", always)
	}
	if sometimes == nil || sometimes.N != 2 {
		t.Fatalf("sometimes: %+v", sometimes)
	}
}

func TestCI95Value(t *testing.T) {
	// Known data: {1,2,3,4,5} has mean 3, stddev sqrt(2.5); t(4, .975)=2.776.
	agg, err := Run(Config{Seeds: 5, RootSeed: 1}, []Task{{Run: func(seed uint64) (Sample, error) {
		// Map each replicate seed to its index via position in the derived
		// sequence.
		for i := 0; i < 5; i++ {
			if DeriveSeed(1, i) == seed {
				return Sample{"v": float64(i + 1)}, nil
			}
		}
		return nil, fmt.Errorf("unexpected seed %d", seed)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	m := agg.Metric("v")
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(m.Mean-3) > 1e-12 || math.Abs(m.CI95-want) > 1e-3 {
		t.Fatalf("mean %g ci %g, want 3 / %g", m.Mean, m.CI95, want)
	}
}

func TestOnProgressReportsEveryUnit(t *testing.T) {
	tasks := twoTasks()
	var events []Progress
	agg, err := Run(Config{Seeds: 3, Parallel: 4, RootSeed: 5, OnProgress: func(p Progress) {
		events = append(events, p) // mutex-serialized by the runner
	}}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Every unit fires a start and a terminal phase: 6 units -> 12 events.
	if len(events) != 12 {
		t.Fatalf("progress events = %d, want 12", len(events))
	}
	seenTasks := map[string]int{}
	var terminal int
	started := map[string]int{}
	for i, p := range events {
		if p.Total != 6 {
			t.Fatalf("event %d: Total = %d", i, p.Total)
		}
		switch p.Phase {
		case PhaseStart:
			started[p.Task]++
			if p.Sample != nil || p.Err != nil {
				t.Fatalf("start event %d carries sample/err: %+v", i, p)
			}
		case PhaseDone:
			terminal++
			if p.Done != terminal {
				t.Fatalf("event %d: Done = %d, want %d", i, p.Done, terminal)
			}
			if p.Err != nil || p.Sample == nil {
				t.Fatalf("event %d: err=%v sample=%v", i, p.Err, p.Sample)
			}
			seenTasks[p.Task]++
		default:
			t.Fatalf("event %d: unexpected phase %q", i, p.Phase)
		}
	}
	if started["a"] != 3 || started["b"] != 3 {
		t.Fatalf("start coverage = %v", started)
	}
	if seenTasks["a"] != 3 || seenTasks["b"] != 3 {
		t.Fatalf("task coverage = %v", seenTasks)
	}
	// The callback must not perturb aggregation: identical to a callback-
	// free run.
	plain, err := Run(Config{Seeds: 3, Parallel: 1, RootSeed: 5}, twoTasks())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg.Metrics, plain.Metrics) {
		t.Fatal("OnProgress changed the aggregate")
	}
}

func TestOnProgressCarriesFailures(t *testing.T) {
	boom := []Task{{Name: "boom", Run: func(seed uint64) (Sample, error) {
		return nil, fmt.Errorf("bad seed %d", seed)
	}}}
	var failed int
	_, err := Run(Config{Seeds: 2, Parallel: 2, OnProgress: func(p Progress) {
		if p.Err != nil {
			failed++
		}
	}}, boom)
	if err == nil {
		t.Fatal("expected run error")
	}
	if failed != 2 {
		t.Fatalf("failed progress events = %d, want 2", failed)
	}
}

func TestOnProgressResumePhase(t *testing.T) {
	task := []Task{{
		Name: "flaky",
		Run: func(seed uint64) (Sample, error) {
			return nil, fmt.Errorf("first attempt at %d", seed)
		},
		Resume: func(seed uint64, cause error) (Sample, error) {
			return Sample{"v": 1}, nil
		},
	}}
	var phases []Phase
	agg, err := Run(Config{Seeds: 1, Parallel: 1, OnProgress: func(p Progress) {
		phases = append(phases, p.Phase)
		if p.Phase == PhaseResume && p.Err == nil {
			t.Error("resume phase should carry the first attempt's error")
		}
	}}, task)
	if err != nil {
		t.Fatalf("resumed run should succeed: %v", err)
	}
	if agg == nil || agg.Metric("flaky/v") == nil {
		t.Fatal("missing resumed metric")
	}
	want := []Phase{PhaseStart, PhaseResume, PhaseDone}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for _, p := range phases {
		if p.Terminal() != (p == PhaseDone) {
			t.Errorf("Terminal(%q) wrong", p)
		}
	}
}
