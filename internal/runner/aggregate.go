package runner

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"basrpt/internal/stats"
	"basrpt/internal/trace"
)

// MetricAggregate summarizes one metric across the replicates that
// reported it.
type MetricAggregate struct {
	// Name is the metric name, prefixed by its task name ("task/metric").
	Name string
	// Samples holds the per-replicate values in replicate order.
	Samples []float64
	// N is len(Samples).
	N int
	// Mean, StdDev, Min, Max summarize the samples; CI95 is the half-width
	// of the two-sided 95% confidence interval of the mean (Student-t).
	Mean, StdDev, CI95, Min, Max float64
}

func (m *MetricAggregate) finalize() {
	var s stats.Summary
	for _, v := range m.Samples {
		s.Add(v)
	}
	m.N = int(s.Count())
	m.Mean = s.Mean()
	m.StdDev = s.StdDev()
	m.CI95 = s.CI95()
	m.Min = s.Min()
	m.Max = s.Max()
}

// Aggregate is the result of one multi-seed Run: per-metric dispersion
// statistics plus the run's shape and timing.
type Aggregate struct {
	// RootSeed and Seeds record the derivation so any replicate can be
	// replayed single-seed.
	RootSeed uint64
	Seeds    []uint64
	// Parallel is the worker count the run used; Units the number of
	// (replicate, task) executions.
	Parallel int
	Units    int
	// Metrics is ordered by (task position, metric name) — deterministic
	// across worker counts.
	Metrics []MetricAggregate
	// Elapsed is the pool's wall time (excluded from Render and WriteCSV
	// so aggregate output stays byte-identical across worker counts).
	Elapsed time.Duration
}

// Metric returns the aggregate for the fully qualified name, or nil.
func (a *Aggregate) Metric(name string) *MetricAggregate {
	for i := range a.Metrics {
		if a.Metrics[i].Name == name {
			return &a.Metrics[i]
		}
	}
	return nil
}

// RunsPerSec returns the executed units per wall second.
func (a *Aggregate) RunsPerSec() float64 {
	if a.Elapsed <= 0 {
		return 0
	}
	return float64(a.Units) / a.Elapsed.Seconds()
}

// Render prints the aggregate as a fixed-width table. The output depends
// only on the metric values and the seed derivation — never on timing or
// worker count — so a parallel run renders byte-identically to a serial
// one.
func (a *Aggregate) Render(title string) string {
	tbl := trace.Table{
		Title:   fmt.Sprintf("%s — %d seeds (root %d)", title, len(a.Seeds), a.RootSeed),
		Headers: []string{"metric", "mean", "±ci95", "stddev", "min", "max", "n"},
	}
	for i := range a.Metrics {
		m := &a.Metrics[i]
		tbl.AddRow(m.Name, formatG(m.Mean), formatG(m.CI95), formatG(m.StdDev),
			formatG(m.Min), formatG(m.Max), strconv.Itoa(m.N))
	}
	return tbl.Render()
}

// WriteCSV exports the aggregate rows (same determinism contract as
// Render).
func (a *Aggregate) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "n", "mean", "ci95", "stddev", "min", "max"}); err != nil {
		return fmt.Errorf("runner: write csv header: %w", err)
	}
	for i := range a.Metrics {
		m := &a.Metrics[i]
		rec := []string{
			m.Name,
			strconv.Itoa(m.N),
			strconv.FormatFloat(m.Mean, 'g', -1, 64),
			strconv.FormatFloat(m.CI95, 'g', -1, 64),
			strconv.FormatFloat(m.StdDev, 'g', -1, 64),
			strconv.FormatFloat(m.Min, 'g', -1, 64),
			strconv.FormatFloat(m.Max, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("runner: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatG renders a value compactly with enough precision for ±ci columns
// to stay meaningful at small magnitudes.
func formatG(v float64) string {
	return strconv.FormatFloat(v, 'g', 5, 64)
}
