package runner

import (
	"strings"
	"testing"
)

// TestPoisonedSeedYieldsPartialAggregate: one panicking replicate is
// recovered into a per-seed error; the other N-1 replicates still
// aggregate, and the error names the task, the seed, the panic value, and
// the stack.
func TestPoisonedSeedYieldsPartialAggregate(t *testing.T) {
	const seeds = 5
	poison := DeriveSeed(9, 2)
	task := Task{
		Name:           "soak",
		CheckpointPath: "out/soak.ckpt",
		Run: func(seed uint64) (Sample, error) {
			if seed == poison {
				panic("index out of range [3] with length 2")
			}
			return Sample{"v": float64(seed % 10)}, nil
		},
	}
	agg, err := Run(Config{Seeds: seeds, Parallel: 3, RootSeed: 9}, []Task{task})
	if err == nil {
		t.Fatal("poisoned seed reported no error")
	}
	msg := err.Error()
	for _, want := range []string{
		`task "soak"`,
		"seed " + itoa(poison),
		"panic: index out of range",
		"checkpoint at out/soak.ckpt",
		"runner.TestPoisonedSeedYieldsPartialAggregate", // stack frame
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error lacks %q:\n%s", want, msg)
		}
	}
	if agg == nil {
		t.Fatal("no partial aggregate returned")
	}
	if len(agg.Metrics) != 1 || agg.Metrics[0].Name != "soak/v" {
		t.Fatalf("metrics = %+v", agg.Metrics)
	}
	if got := len(agg.Metrics[0].Samples); got != seeds-1 {
		t.Fatalf("aggregated %d samples, want %d (one poisoned)", got, seeds-1)
	}
}

// TestResumeHookRecoversFailure: the Resume hook turns a failed unit into
// a successful one, and the aggregate sees the full replicate count.
func TestResumeHookRecoversFailure(t *testing.T) {
	bad := DeriveSeed(4, 0)
	var resumedSeed uint64
	var resumedCause string
	task := Task{
		Name: "ckpt",
		Run: func(seed uint64) (Sample, error) {
			if seed == bad {
				panic("watchdog tripped")
			}
			return Sample{"v": 1}, nil
		},
		Resume: func(seed uint64, cause error) (Sample, error) {
			resumedSeed, resumedCause = seed, cause.Error()
			return Sample{"v": 2}, nil
		},
	}
	agg, err := Run(Config{Seeds: 3, RootSeed: 4}, []Task{task})
	if err != nil {
		t.Fatalf("resume hook did not clear the failure: %v", err)
	}
	if resumedSeed != bad || !strings.Contains(resumedCause, "watchdog tripped") {
		t.Fatalf("resume saw seed %d cause %q", resumedSeed, resumedCause)
	}
	if got := len(agg.Metrics[0].Samples); got != 3 {
		t.Fatalf("aggregated %d samples, want 3", got)
	}
}

// TestResumeFailureReportsBothCauses: a Resume that itself panics leaves
// the unit failed with both the original and the resume failure visible.
func TestResumeFailureReportsBothCauses(t *testing.T) {
	task := Task{
		Name: "hopeless",
		Run: func(seed uint64) (Sample, error) {
			panic("first failure")
		},
		Resume: func(seed uint64, cause error) (Sample, error) {
			panic("second failure")
		},
	}
	agg, err := Run(Config{Seeds: 1, RootSeed: 2}, []Task{task})
	if err == nil {
		t.Fatal("want error")
	}
	if agg != nil {
		t.Fatal("all units failed but an aggregate was returned")
	}
	msg := err.Error()
	if !strings.Contains(msg, "first failure") || !strings.Contains(msg, "second failure") {
		t.Fatalf("error lacks a cause:\n%s", msg)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
