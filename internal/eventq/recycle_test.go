package eventq

import "testing"

// TestHandleInvalidAfterRecycle: a handle to a popped event must stay
// invalid even after its entry is recycled for a later Schedule, and
// cancelling through it must not disturb the new event.
func TestHandleInvalidAfterRecycle(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, "a")
	if !h1.Valid() {
		t.Fatal("pending handle reports invalid")
	}
	if ev, _, ok := q.Pop(); !ok || ev != "a" {
		t.Fatalf("Pop = %v, %v", ev, ok)
	}
	if h1.Valid() {
		t.Fatal("handle to popped event reports valid")
	}

	// The recycled entry now backs an unrelated event.
	h2 := q.Schedule(2, "b")
	if h1.Valid() {
		t.Fatal("stale handle turned valid after its entry was recycled")
	}
	if q.Cancel(h1) {
		t.Fatal("Cancel through a stale handle claimed success")
	}
	if q.Len() != 1 {
		t.Fatalf("stale Cancel removed the recycled entry's new event: Len = %d", q.Len())
	}
	if !q.Cancel(h2) {
		t.Fatal("Cancel of the live event failed")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancelling everything", q.Len())
	}
}

// TestClearRecyclesEntries: Clear invalidates every outstanding handle and
// returns the entries to the free list for later Schedules.
func TestClearRecyclesEntries(t *testing.T) {
	var q Queue
	h := q.Schedule(1, "a")
	q.Schedule(2, "b")
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", q.Len())
	}
	if h.Valid() || q.Cancel(h) {
		t.Fatal("handle survived Clear")
	}
	if len(q.free) != 2 {
		t.Fatalf("free list holds %d entries after Clear, want 2", len(q.free))
	}
}

// TestReserveSteadyStateZeroAlloc: after Reserve, a schedule/pop loop that
// never exceeds the reserved population allocates nothing — the calendar
// property the workload generator's pre-boxed stream events rely on.
func TestReserveSteadyStateZeroAlloc(t *testing.T) {
	var q Queue
	q.Reserve(4)
	// Pre-boxed events so the measurement loop does no interface boxing of
	// its own.
	evs := [4]Event{"e0", "e1", "e2", "e3"}
	time := 0.0
	avg := testing.AllocsPerRun(200, func() {
		for i, ev := range evs {
			time++
			q.Schedule(time+float64(i), ev)
		}
		for range evs {
			if _, _, ok := q.Pop(); !ok {
				t.Fatal("queue drained early")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule/pop loop allocates %.2f times per cycle, want 0", avg)
	}
}
