package eventq

import (
	"fmt"
	"testing"
)

type mergeRec struct {
	src  int
	time float64
	ev   Event
}

func drain(queues []*Queue) []mergeRec {
	var out []mergeRec
	Merge(queues, func(src int, t float64, ev Event) {
		out = append(out, mergeRec{src, t, ev})
	})
	return out
}

func TestMergeGlobalOrder(t *testing.T) {
	a, b, c := &Queue{}, &Queue{}, &Queue{}
	a.Schedule(1.0, "a1")
	a.Schedule(3.0, "a3")
	b.Schedule(2.0, "b2")
	b.Schedule(2.5, "b25")
	c.Schedule(0.5, "c05")
	got := drain([]*Queue{a, b, c})
	want := []string{"c05", "a1", "b2", "b25", "a3"}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].ev.(string) != w {
			t.Fatalf("event %d = %v, want %s", i, got[i].ev, w)
		}
	}
	for _, q := range []*Queue{a, b, c} {
		if q.Len() != 0 {
			t.Fatal("merge left events pending")
		}
	}
}

func TestMergeTieBreaksByQueueIndexThenSeq(t *testing.T) {
	// Equal times: queue index wins first, then within a queue the
	// schedule order (seq) is preserved.
	q0, q1 := &Queue{}, &Queue{}
	q1.Schedule(1.0, "q1-first")
	q1.Schedule(1.0, "q1-second")
	q0.Schedule(1.0, "q0-first")
	q0.Schedule(1.0, "q0-second")
	got := drain([]*Queue{q0, q1})
	want := []string{"q0-first", "q0-second", "q1-first", "q1-second"}
	for i, w := range want {
		if got[i].ev.(string) != w {
			t.Fatalf("event %d = %v, want %s", i, got[i].ev, w)
		}
	}
	if got[0].src != 0 || got[2].src != 1 {
		t.Fatalf("source indices wrong: %+v", got)
	}
}

func TestMergeSkipsNilAndEmpty(t *testing.T) {
	q := &Queue{}
	q.Schedule(1, "only")
	got := drain([]*Queue{nil, {}, q})
	if len(got) != 1 || got[0].ev.(string) != "only" || got[0].src != 2 {
		t.Fatalf("merge = %+v", got)
	}
	if len(drain(nil)) != 0 {
		t.Fatal("empty merge emitted events")
	}
}

func TestMergeDeterministicAcrossRuns(t *testing.T) {
	build := func() []*Queue {
		qs := make([]*Queue, 4)
		for i := range qs {
			qs[i] = &Queue{}
			for j := 0; j < 50; j++ {
				// Deliberate collisions: times repeat across queues.
				qs[i].Schedule(float64((j*7+i*3)%10), fmt.Sprintf("q%d-%d", i, j))
			}
		}
		return qs
	}
	first := drain(build())
	for run := 0; run < 3; run++ {
		again := drain(build())
		if len(again) != len(first) {
			t.Fatalf("run %d: %d events, want %d", run, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d: event %d = %+v, want %+v", run, i, again[i], first[i])
			}
		}
	}
	// Verify the full ordering invariant on the merged stream.
	for i := 1; i < len(first); i++ {
		if first[i].time < first[i-1].time {
			t.Fatalf("time regression at %d: %+v after %+v", i, first[i], first[i-1])
		}
		if first[i].time == first[i-1].time && first[i].src < first[i-1].src {
			t.Fatalf("queue-index regression at %d: %+v after %+v", i, first[i], first[i-1])
		}
	}
}
