package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"basrpt/internal/stats"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	q.Schedule(3, "c")
	q.Schedule(1, "a")
	q.Schedule(2, "b")
	want := []string{"a", "b", "c"}
	times := []float64{1, 2, 3}
	for i, w := range want {
		ev, tm, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d: queue empty", i)
		}
		if ev.(string) != w || tm != times[i] {
			t.Fatalf("Pop %d = (%v, %g), want (%q, %g)", i, ev, tm, w, times[i])
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Schedule(5, i)
	}
	for i := 0; i < 100; i++ {
		ev, _, ok := q.Pop()
		if !ok || ev.(int) != i {
			t.Fatalf("tie-break violated: pop %d got %v", i, ev)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, "a")
	q.Schedule(2, "b")
	h3 := q.Schedule(3, "c")
	if !q.Cancel(h1) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel returned true")
	}
	ev, _, _ := q.Pop()
	if ev.(string) != "b" {
		t.Fatalf("after cancel, first pop = %v, want b", ev)
	}
	if !h3.Valid() {
		t.Fatal("h3 should still be valid")
	}
	q.Pop()
	if h3.Valid() {
		t.Fatal("h3 should be invalid after popping")
	}
	if q.Cancel(h3) {
		t.Fatal("Cancel after pop returned true")
	}
}

func TestCancelMiddleKeepsOrder(t *testing.T) {
	var q Queue
	handles := make([]Handle, 50)
	for i := 0; i < 50; i++ {
		handles[i] = q.Schedule(float64(i), i)
	}
	// Cancel every third event.
	cancelled := map[int]bool{}
	for i := 0; i < 50; i += 3 {
		q.Cancel(handles[i])
		cancelled[i] = true
	}
	prev := -1.0
	count := 0
	for {
		ev, tm, ok := q.Pop()
		if !ok {
			break
		}
		if cancelled[ev.(int)] {
			t.Fatalf("cancelled event %v popped", ev)
		}
		if tm < prev {
			t.Fatalf("out-of-order pop: %g after %g", tm, prev)
		}
		prev = tm
		count++
	}
	if count != 50-len(cancelled) {
		t.Fatalf("popped %d events, want %d", count, 50-len(cancelled))
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(7, nil)
	q.Schedule(4, nil)
	if tm, ok := q.PeekTime(); !ok || tm != 4 {
		t.Fatalf("PeekTime = (%g, %v), want (4, true)", tm, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("PeekTime consumed an event, Len = %d", q.Len())
	}
}

func TestClear(t *testing.T) {
	var q Queue
	h := q.Schedule(1, nil)
	q.Schedule(2, nil)
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	if h.Valid() {
		t.Fatal("handle valid after Clear")
	}
	if q.Cancel(h) {
		t.Fatal("Cancel succeeded after Clear")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(seed uint64, opsRaw []uint16) bool {
		r := stats.NewRNG(seed)
		var q Queue
		var pending []Handle
		for range opsRaw {
			switch r.Intn(3) {
			case 0, 1:
				pending = append(pending, q.Schedule(r.Float64()*1000, nil))
			case 2:
				if len(pending) > 0 {
					i := r.Intn(len(pending))
					q.Cancel(pending[i])
					pending = append(pending[:i], pending[i+1:]...)
				}
			}
		}
		// Drain: times must come out sorted.
		var popped []float64
		for {
			_, tm, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, tm)
		}
		return sort.Float64sAreSorted(popped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidHandleZeroValue(t *testing.T) {
	var q Queue
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle should be invalid")
	}
	if q.Cancel(h) {
		t.Fatal("Cancel of zero handle returned true")
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	r := stats.NewRNG(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64()
	}
	b.ResetTimer()
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Schedule(times[i%1024], nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
