package eventq

import "fmt"

// EntryState is one pending calendar entry handed to RestoreState. The
// Event payload is supplied by the owner of the queue (the queue itself
// cannot serialize opaque events); Time and Seq come from a prior Entries
// walk.
type EntryState struct {
	Time  float64
	Seq   uint64
	Event Event
}

// Entries calls fn for every pending entry in heap-array order — the
// order RestoreState expects back. Callers serialize the payloads
// themselves: the queue treats events as opaque.
func (q *Queue) Entries(fn func(time float64, seq uint64, ev Event)) {
	for _, e := range q.heap {
		fn(e.time, e.seq, e.event)
	}
}

// Seq returns the FIFO tie-break counter: the sequence number the most
// recent Schedule consumed. Restoring it is what keeps same-timestamp
// events popping in their original order after a resume.
func (q *Queue) Seq() uint64 { return q.seq }

// RestoreState replaces the calendar's contents with a snapshot captured
// via Entries/Seq/HighWater: entries are placed verbatim in heap-array
// order (no re-heapification — the layout is part of the deterministic
// state), the tie-break counter resumes at seq, and the high-water mark at
// highWater. The heap property and sequence-number sanity are validated so
// a corrupt snapshot fails loudly instead of desequencing the simulation.
func (q *Queue) RestoreState(seq uint64, highWater int, entries []EntryState) error {
	seen := make(map[uint64]bool, len(entries))
	for i, es := range entries {
		if es.Event == nil {
			return fmt.Errorf("eventq: restore: entry %d has nil event", i)
		}
		if es.Seq == 0 || es.Seq > seq {
			return fmt.Errorf("eventq: restore: entry %d seq %d outside (0, %d]", i, es.Seq, seq)
		}
		if seen[es.Seq] {
			return fmt.Errorf("eventq: restore: duplicate entry seq %d", es.Seq)
		}
		seen[es.Seq] = true
		if i > 0 {
			p := (i - 1) / 2
			pe := entries[p]
			if es.Time < pe.Time || (es.Time == pe.Time && es.Seq < pe.Seq) {
				return fmt.Errorf("eventq: restore: heap order violated at index %d", i)
			}
		}
	}
	q.Clear()
	q.Reserve(len(entries))
	for i, es := range entries {
		var e *entry
		if k := len(q.free); k > 0 {
			e = q.free[k-1]
			q.free[k-1] = nil
			q.free = q.free[:k-1]
		} else {
			e = &entry{}
		}
		e.time = es.Time
		e.seq = es.Seq
		e.event = es.Event
		e.index = i
		q.heap = append(q.heap, e)
	}
	q.seq = seq
	q.highWater = highWater
	if len(q.heap) > q.highWater {
		q.highWater = len(q.heap)
	}
	return nil
}
