package eventq

// Merge drains a set of shard-local calendars into one deterministic
// global order: events pop by (time, calendar index, schedule order), so
// the merged sequence is a pure function of what each calendar held and
// never of goroutine scheduling. The sharded fabric simulator uses it at
// window barriers to route cross-shard messages: each shard's outbox is a
// Queue, and the merge order (time, shard id, seq) is the determinism
// contract of the whole refactor.
//
// Merge consumes every event in every queue. The emit callback receives
// the source calendar's index, the event time, and the event. Queues may
// be nil or empty; they are skipped.
func Merge(queues []*Queue, emit func(src int, time float64, ev Event)) {
	// k-way selection over queue heads with a small index heap keyed
	// (head time, queue index). Each queue's internal (time, seq) FIFO
	// order supplies the third key for free.
	heads := make([]int, 0, len(queues))
	var less func(a, b int) bool
	less = func(a, b int) bool {
		ta, _ := queues[a].PeekTime()
		tb, _ := queues[b].PeekTime()
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heads[i], heads[parent]) {
				break
			}
			heads[i], heads[parent] = heads[parent], heads[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			left := 2*i + 1
			if left >= len(heads) {
				return
			}
			smallest := left
			if right := left + 1; right < len(heads) && less(heads[right], heads[left]) {
				smallest = right
			}
			if !less(heads[smallest], heads[i]) {
				return
			}
			heads[i], heads[smallest] = heads[smallest], heads[i]
			i = smallest
		}
	}
	for i, q := range queues {
		if q != nil && q.Len() > 0 {
			heads = append(heads, i)
			up(len(heads) - 1)
		}
	}
	for len(heads) > 0 {
		src := heads[0]
		ev, t, _ := queues[src].Pop()
		emit(src, t, ev)
		if queues[src].Len() == 0 {
			last := len(heads) - 1
			heads[0] = heads[last]
			heads = heads[:last]
		}
		down(0)
	}
}
