// Package eventq implements the discrete-event calendar used by the
// flow-level fabric simulator: a binary min-heap of timestamped events with
// deterministic FIFO tie-breaking and O(log n) cancellation via handle
// indices.
//
// Determinism matters here: two events at the same timestamp must always pop
// in the order they were scheduled, or simulation runs stop being
// reproducible across refactors of unrelated code.
package eventq

// Event is anything that can be scheduled. The queue never calls into the
// event; it only orders and returns it.
type Event interface{}

// Handle identifies a scheduled event so it can be cancelled. A Handle is
// valid until the event pops or is cancelled. Entries are recycled after
// they leave the heap, so each handle carries the generation of the entry
// it was issued against; a handle to a popped event stays invalid even
// after its entry is reused for a later Schedule.
type Handle struct {
	entry *entry
	gen   uint64
}

// Valid reports whether the handle still refers to a pending event.
func (h Handle) Valid() bool {
	return h.entry != nil && h.entry.gen == h.gen && h.entry.index >= 0
}

type entry struct {
	time  float64
	seq   uint64
	event Event
	index int    // position in heap, -1 once removed
	gen   uint64 // bumped when the entry is recycled; invalidates old Handles
}

// Queue is a time-ordered event calendar. The zero value is ready to use.
// It is not safe for concurrent use; the simulator is single-threaded by
// design (parallelism comes from running independent simulations).
//
// Entries removed from the heap (popped or cancelled) go to an internal
// free list and are reused by later Schedules, so in steady state —
// arrivals balancing departures — the calendar performs no allocations.
// Reserve pre-sizes both the heap and the free list for a known event
// population.
type Queue struct {
	heap      []*entry
	free      []*entry
	seq       uint64
	highWater int
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// HighWater returns the largest number of events that were ever pending
// simultaneously — the calendar's memory footprint, reported by the
// observability layer.
func (q *Queue) HighWater() int { return q.highWater }

// Reserve grows the calendar's storage so at least n events can be
// pending at once without the heap reallocating or Schedule touching the
// allocator. It never shrinks and pending events are unaffected.
func (q *Queue) Reserve(n int) {
	if cap(q.heap) < n {
		heap := make([]*entry, len(q.heap), n)
		copy(heap, q.heap)
		q.heap = heap
	}
	for len(q.heap)+len(q.free) < n {
		q.free = append(q.free, &entry{index: -1})
	}
}

// Schedule adds an event at the given time and returns a handle for
// cancellation. Times may be in any order; equal times pop FIFO.
func (q *Queue) Schedule(time float64, ev Event) Handle {
	q.seq++
	var e *entry
	if k := len(q.free); k > 0 {
		e = q.free[k-1]
		q.free[k-1] = nil
		q.free = q.free[:k-1]
	} else {
		e = &entry{}
	}
	e.time = time
	e.seq = q.seq
	e.event = ev
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	if len(q.heap) > q.highWater {
		q.highWater = len(q.heap)
	}
	q.up(e.index)
	return Handle{entry: e, gen: e.gen}
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already popped or was cancelled — including when
// the entry has since been recycled for an unrelated event, which the
// handle's generation detects).
func (q *Queue) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	q.removeAt(h.entry.index)
	return true
}

// PeekTime returns the timestamp of the earliest event. The second return
// is false when the queue is empty.
func (q *Queue) PeekTime() (float64, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].time, true
}

// Pop removes and returns the earliest event and its time. The second
// return is false when the queue is empty.
func (q *Queue) Pop() (Event, float64, bool) {
	if len(q.heap) == 0 {
		return nil, 0, false
	}
	e := q.heap[0]
	// Capture before removeAt recycles the entry and drops its event.
	ev, t := e.event, e.time
	q.removeAt(0)
	return ev, t, true
}

// Clear drops all pending events and recycles their entries.
func (q *Queue) Clear() {
	for _, e := range q.heap {
		q.recycle(e)
	}
	q.heap = q.heap[:0]
}

// recycle retires an entry that just left the heap: invalidate any
// outstanding handles via the generation bump, drop the event reference
// so the calendar does not pin it for the GC, and return the entry to the
// free list.
func (q *Queue) recycle(e *entry) {
	e.index = -1
	e.gen++
	e.event = nil
	q.free = append(q.free, e)
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *Queue) removeAt(i int) {
	e := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap = q.heap[:last]
	q.recycle(e)
	if i < last {
		// The element moved into position i may need to travel either way.
		q.down(i)
		q.up(i)
	}
}
