// Package eventq implements the discrete-event calendar used by the
// flow-level fabric simulator: a binary min-heap of timestamped events with
// deterministic FIFO tie-breaking and O(log n) cancellation via handle
// indices.
//
// Determinism matters here: two events at the same timestamp must always pop
// in the order they were scheduled, or simulation runs stop being
// reproducible across refactors of unrelated code.
package eventq

// Event is anything that can be scheduled. The queue never calls into the
// event; it only orders and returns it.
type Event interface{}

// Handle identifies a scheduled event so it can be cancelled. A Handle is
// valid until the event pops or is cancelled.
type Handle struct {
	entry *entry
}

// Valid reports whether the handle still refers to a pending event.
func (h Handle) Valid() bool { return h.entry != nil && h.entry.index >= 0 }

type entry struct {
	time  float64
	seq   uint64
	event Event
	index int // position in heap, -1 once removed
}

// Queue is a time-ordered event calendar. The zero value is ready to use.
// It is not safe for concurrent use; the simulator is single-threaded by
// design (parallelism comes from running independent simulations).
type Queue struct {
	heap      []*entry
	seq       uint64
	highWater int
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// HighWater returns the largest number of events that were ever pending
// simultaneously — the calendar's memory footprint, reported by the
// observability layer.
func (q *Queue) HighWater() int { return q.highWater }

// Schedule adds an event at the given time and returns a handle for
// cancellation. Times may be in any order; equal times pop FIFO.
func (q *Queue) Schedule(time float64, ev Event) Handle {
	q.seq++
	e := &entry{time: time, seq: q.seq, event: ev, index: len(q.heap)}
	q.heap = append(q.heap, e)
	if len(q.heap) > q.highWater {
		q.highWater = len(q.heap)
	}
	q.up(e.index)
	return Handle{entry: e}
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already popped or was cancelled).
func (q *Queue) Cancel(h Handle) bool {
	e := h.entry
	if e == nil || e.index < 0 {
		return false
	}
	q.removeAt(e.index)
	return true
}

// PeekTime returns the timestamp of the earliest event. The second return
// is false when the queue is empty.
func (q *Queue) PeekTime() (float64, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].time, true
}

// Pop removes and returns the earliest event and its time. The second
// return is false when the queue is empty.
func (q *Queue) Pop() (Event, float64, bool) {
	if len(q.heap) == 0 {
		return nil, 0, false
	}
	e := q.heap[0]
	q.removeAt(0)
	return e.event, e.time, true
}

// Clear drops all pending events.
func (q *Queue) Clear() {
	for _, e := range q.heap {
		e.index = -1
	}
	q.heap = q.heap[:0]
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *Queue) removeAt(i int) {
	e := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap = q.heap[:last]
	e.index = -1
	if i < last {
		// The element moved into position i may need to travel either way.
		q.down(i)
		q.up(i)
	}
}
