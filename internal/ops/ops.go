// Package ops serves the live operations endpoint for long-running
// simulations: a Prometheus text-format /metrics view of the latest
// observability snapshot, a /progress JSON document (sim-time position,
// windows advanced, per-seed runner states), and the standard
// net/http/pprof profiling handlers. It is the network face of the
// wall-clock observability plane — everything served here is advisory
// and nondeterministic, and nothing the server observes can reach a
// deterministic artifact (the publish methods copy values in; the
// simulation never reads back).
//
// Concurrency: a Server is safe for concurrent use. Publish* methods
// may be called from any goroutine (simulation callbacks, runner
// workers); handlers render under the same mutex, so a scrape sees a
// consistent snapshot.
package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"basrpt/internal/obs"
	"basrpt/internal/runner"
)

// RunState is the coarse position of one simulation run, published at
// sample ticks (centralized engine) or window barriers (sharded
// engine) and rendered into both /metrics and /progress.
type RunState struct {
	// SimTimeS is the simulated clock, and DurationS the configured
	// horizon (0 when unknown).
	SimTimeS  float64 `json:"sim_time_s"`
	DurationS float64 `json:"duration_s"`
	// Windows counts lookahead (or streaming) windows advanced so far.
	Windows int `json:"windows"`
	// Decisions, ArrivedFlows, and CompletedFlows are the engine's
	// cumulative work counters.
	Decisions      int64 `json:"decisions"`
	ArrivedFlows   int   `json:"arrived_flows"`
	CompletedFlows int   `json:"completed_flows"`
}

// PercentDone returns the run's position as a percentage of its horizon
// (0 when the horizon is unknown).
func (r RunState) PercentDone() float64 {
	if r.DurationS <= 0 {
		return 0
	}
	return 100 * r.SimTimeS / r.DurationS
}

// ShardState is the decomposed engine's pool-level position, published
// at barriers (wire fabricsim.ShardConfig.OnWindow to PublishShard) and
// rendered into /metrics as the basrpt_shard_* family. Everything here
// is wall-clock plane: barrier cadence, worker-pool shape, and per-cell
// busy/wait attribution.
type ShardState struct {
	// Barriers is the number of coordinator barriers completed and
	// WindowsPerBarrier the cumulative mean batch width.
	Barriers          int     `json:"barriers"`
	WindowsPerBarrier float64 `json:"windows_per_barrier"`
	// Cells and Workers are the PDES cell count and the persistent
	// worker-goroutine count executing them.
	Cells   int `json:"cells"`
	Workers int `json:"workers"`
	// CellBusyNs and CellWaitNs are per-cell cumulative wall-clock busy
	// and barrier-wait nanoseconds (indexed by rack).
	CellBusyNs []int64 `json:"cell_busy_ns"`
	CellWaitNs []int64 `json:"cell_wait_ns"`
}

// SeedState is the last observed lifecycle phase of one (task, seed)
// runner unit, for the /progress seeds table.
type SeedState struct {
	Task  string `json:"task"`
	Seed  uint64 `json:"seed"`
	Phase string `json:"phase"`
	Error string `json:"error,omitempty"`
}

// Server is the live ops HTTP server. Construct with NewServer, feed it
// via the Publish* methods, and Close it when the run ends.
type Server struct {
	mu      sync.Mutex
	started time.Time
	snap    obs.Snapshot
	run     *RunState
	shard   *ShardState
	units   map[string]int // (task,seed) key -> index into seeds
	seeds   []SeedState
	done    int
	total   int

	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (host:port; port 0 picks a free port) and
// starts serving immediately. The caller owns the returned server and
// must Close it.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{started: time.Now(), ln: ln, units: map[string]int{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "basrpt ops endpoint\n/metrics\n/progress\n/debug/pprof/\n")
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string {
	addr := s.Addr()
	// net.Listen("tcp", ":9090") binds the wildcard address; rewrite it
	// to a dialable host for display.
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
			addr = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return "http://" + addr
}

// Close stops the listener and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

// PublishSnapshot replaces the observability snapshot served by
// /metrics. Hand it a point-in-time obs.Snapshot copy; the server never
// touches live registries.
func (s *Server) PublishSnapshot(snap obs.Snapshot) {
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// PublishRun replaces the run-position state served by /metrics and
// /progress.
func (s *Server) PublishRun(r RunState) {
	s.mu.Lock()
	s.run = &r
	s.mu.Unlock()
}

// PublishShard replaces the sharded-engine pool state served by
// /metrics and /progress. The per-cell slices are retained, not copied
// — hand the server its own copies (ShardProgress already does).
func (s *Server) PublishShard(st ShardState) {
	s.mu.Lock()
	s.shard = &st
	s.mu.Unlock()
}

// PublishUnit folds one runner lifecycle callback into the per-seed
// state table. Wire it directly as (or from) a runner.Config.OnProgress
// callback; the runner already serializes callbacks, but PublishUnit
// locks anyway so other publishers can interleave.
func (s *Server) PublishUnit(p runner.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total = p.Total
	if p.Phase.Terminal() {
		s.done = p.Done
	}
	key := fmt.Sprintf("%s\x00%d", p.Task, p.Seed)
	i, ok := s.units[key]
	if !ok {
		i = len(s.seeds)
		s.units[key] = i
		s.seeds = append(s.seeds, SeedState{Task: p.Task, Seed: p.Seed})
	}
	s.seeds[i].Phase = string(p.Phase)
	if p.Err != nil {
		s.seeds[i].Error = p.Err.Error()
	}
}

// progressDoc is the /progress JSON shape.
type progressDoc struct {
	UptimeS    float64     `json:"uptime_s"`
	Run        *RunState   `json:"run,omitempty"`
	PercentRun float64     `json:"percent_done,omitempty"`
	Shard      *ShardState `json:"shard,omitempty"`
	UnitsDone  int         `json:"units_done"`
	UnitsTotal int         `json:"units_total"`
	Seeds      []SeedState `json:"seeds,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := progressDoc{
		UptimeS:    time.Since(s.started).Seconds(),
		UnitsDone:  s.done,
		UnitsTotal: s.total,
		Seeds:      append([]SeedState(nil), s.seeds...),
	}
	if s.run != nil {
		r := *s.run
		doc.Run = &r
		doc.PercentRun = r.PercentDone()
	}
	if s.shard != nil {
		sh := *s.shard
		doc.Shard = &sh
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort network write
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.snap
	var run *RunState
	if s.run != nil {
		r := *s.run
		run = &r
	}
	var shard *ShardState
	if s.shard != nil {
		sh := *s.shard
		shard = &sh
	}
	done, total := s.done, s.total
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, snap, run, done, total) //nolint:errcheck // best-effort network write
	if shard != nil {
		WriteShardMetrics(w, shard) //nolint:errcheck // best-effort network write
	}
}

// metricName mangles an obs instrument name into a Prometheus metric
// name: the basrpt_ namespace plus the instrument name with every
// non-alphanumeric rune replaced by '_' (obs names use dots).
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("basrpt_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// WriteMetrics renders an observability snapshot plus optional run/unit
// state in the Prometheus text exposition format (version 0.0.4):
// counters as counters, gauges as a pair of gauges (last value and
// high-water), histograms as cumulative le-bucketed histograms with the
// mandatory +Inf bucket, _sum, and _count series. Instruments appear in
// snapshot (sorted-name) order.
func WriteMetrics(w io.Writer, snap obs.Snapshot, run *RunState, unitsDone, unitsTotal int) error {
	for _, c := range snap.Counters {
		n := metricName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		n := metricName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n# TYPE %s_max gauge\n%s_max %g\n",
			n, n, g.Value, n, n, g.Max); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		n := metricName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// obs buckets are per-bucket counts with power-of-two upper
		// edges; Prometheus wants cumulative counts.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			n, h.Count, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	if run != nil {
		for _, kv := range []struct {
			name string
			v    float64
		}{
			{"basrpt_run_sim_time_seconds", run.SimTimeS},
			{"basrpt_run_duration_seconds", run.DurationS},
			{"basrpt_run_percent_done", run.PercentDone()},
			{"basrpt_run_windows", float64(run.Windows)},
			{"basrpt_run_decisions", float64(run.Decisions)},
			{"basrpt_run_arrived_flows", float64(run.ArrivedFlows)},
			{"basrpt_run_completed_flows", float64(run.CompletedFlows)},
		} {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", kv.name, kv.name, kv.v); err != nil {
				return err
			}
		}
	}
	if unitsTotal > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE basrpt_units_done gauge\nbasrpt_units_done %d\n# TYPE basrpt_units_total gauge\nbasrpt_units_total %d\n",
			unitsDone, unitsTotal); err != nil {
			return err
		}
	}
	return nil
}

// WriteShardMetrics renders the sharded engine's pool state as the
// basrpt_shard_* Prometheus family: barrier cadence and pool shape as
// scalar gauges, plus per-cell busy/wait seconds as cell-labeled gauge
// series (one sample per rack, labeled cell="<rack>").
func WriteShardMetrics(w io.Writer, st *ShardState) error {
	for _, kv := range []struct {
		name string
		v    float64
	}{
		{"basrpt_shard_barriers", float64(st.Barriers)},
		{"basrpt_shard_windows_per_barrier", st.WindowsPerBarrier},
		{"basrpt_shard_cells", float64(st.Cells)},
		{"basrpt_shard_workers", float64(st.Workers)},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", kv.name, kv.name, kv.v); err != nil {
			return err
		}
	}
	if len(st.CellBusyNs) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE basrpt_shard_cell_busy_seconds gauge\n"); err != nil {
			return err
		}
		for i, ns := range st.CellBusyNs {
			if _, err := fmt.Fprintf(w, "basrpt_shard_cell_busy_seconds{cell=\"%d\"} %g\n", i, float64(ns)/1e9); err != nil {
				return err
			}
		}
	}
	if len(st.CellWaitNs) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE basrpt_shard_cell_wait_seconds gauge\n"); err != nil {
			return err
		}
		for i, ns := range st.CellWaitNs {
			if _, err := fmt.Fprintf(w, "basrpt_shard_cell_wait_seconds{cell=\"%d\"} %g\n", i, float64(ns)/1e9); err != nil {
				return err
			}
		}
	}
	return nil
}
