package ops

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"basrpt/internal/obs"
	"basrpt/internal/runner"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := obs.NewRegistry()
	reg.Counter("fabric.decisions").Add(123)
	reg.Gauge("sample.queue_mb").Set(4.5)
	h := reg.Histogram("wall.window_ns")
	h.Observe(3)
	h.Observe(900)
	s.PublishSnapshot(reg.Snapshot())
	s.PublishRun(RunState{SimTimeS: 1.5, DurationS: 3, Windows: 60, Decisions: 123, ArrivedFlows: 10, CompletedFlows: 7})
	s.PublishShard(ShardState{
		Barriers: 8, WindowsPerBarrier: 7.5, Cells: 2, Workers: 2,
		CellBusyNs: []int64{2_500_000_000, 1_000_000_000},
		CellWaitNs: []int64{0, 1_500_000_000},
	})
	s.PublishUnit(runner.Progress{Phase: runner.PhaseStart, Done: 0, Total: 2, Task: "srpt/0.8", Seed: 11})
	s.PublishUnit(runner.Progress{Phase: runner.PhaseDone, Done: 1, Total: 2, Task: "srpt/0.8", Seed: 11})
	s.PublishUnit(runner.Progress{Phase: runner.PhaseFailed, Done: 2, Total: 2, Task: "srpt/0.9", Seed: 12, Err: errors.New("boom")})

	code, body := get(t, s.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE basrpt_fabric_decisions counter",
		"basrpt_fabric_decisions 123",
		"basrpt_sample_queue_mb 4.5",
		"basrpt_sample_queue_mb_max 4.5",
		"# TYPE basrpt_wall_window_ns histogram",
		`basrpt_wall_window_ns_bucket{le="4"} 1`,
		`basrpt_wall_window_ns_bucket{le="1024"} 2`,
		`basrpt_wall_window_ns_bucket{le="+Inf"} 2`,
		"basrpt_wall_window_ns_count 2",
		"basrpt_run_sim_time_seconds 1.5",
		"basrpt_run_percent_done 50",
		"basrpt_run_windows 60",
		"basrpt_units_done 2",
		"basrpt_units_total 2",
		"# TYPE basrpt_shard_windows_per_barrier gauge",
		"basrpt_shard_windows_per_barrier 7.5",
		"basrpt_shard_barriers 8",
		"basrpt_shard_workers 2",
		`basrpt_shard_cell_busy_seconds{cell="0"} 2.5`,
		`basrpt_shard_cell_wait_seconds{cell="1"} 1.5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, s.URL()+"/progress")
	if code != 200 {
		t.Fatalf("/progress status %d", code)
	}
	var doc struct {
		UptimeS    float64 `json:"uptime_s"`
		Run        *RunState
		Percent    float64     `json:"percent_done"`
		Shard      *ShardState `json:"shard"`
		UnitsDone  int         `json:"units_done"`
		UnitsTotal int         `json:"units_total"`
		Seeds      []SeedState `json:"seeds"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if doc.Run == nil || doc.Run.SimTimeS != 1.5 || doc.Percent != 50 {
		t.Fatalf("run state wrong: %s", body)
	}
	if doc.Shard == nil || doc.Shard.Barriers != 8 || doc.Shard.WindowsPerBarrier != 7.5 ||
		len(doc.Shard.CellBusyNs) != 2 {
		t.Fatalf("shard state wrong: %s", body)
	}
	if doc.UnitsDone != 2 || doc.UnitsTotal != 2 {
		t.Fatalf("units %d/%d, want 2/2: %s", doc.UnitsDone, doc.UnitsTotal, body)
	}
	if len(doc.Seeds) != 2 {
		t.Fatalf("seeds = %+v, want 2 entries", doc.Seeds)
	}
	if doc.Seeds[0].Phase != "done" || doc.Seeds[1].Phase != "failed" || doc.Seeds[1].Error != "boom" {
		t.Fatalf("seed states wrong: %+v", doc.Seeds)
	}

	code, _ = get(t, s.URL()+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
	code, body = get(t, s.URL()+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", code, body)
	}
	code, _ = get(t, s.URL()+"/nope")
	if code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestWriteMetricsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, obs.Snapshot{}, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot should render nothing, got %q", buf.String())
	}
}

func TestMetricNameMangling(t *testing.T) {
	cases := map[string]string{
		"fabric.decisions":   "basrpt_fabric_decisions",
		"wall.barrier-wait":  "basrpt_wall_barrier_wait",
		"Cell.MsgsSent":      "basrpt_Cell_MsgsSent",
		"weird name/metric!": "basrpt_weird_name_metric_",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunStatePercentDone(t *testing.T) {
	if p := (RunState{SimTimeS: 1, DurationS: 4}).PercentDone(); p != 25 {
		t.Errorf("percent = %g, want 25", p)
	}
	if p := (RunState{SimTimeS: 1}).PercentDone(); p != 0 {
		t.Errorf("unknown horizon percent = %g, want 0", p)
	}
}
