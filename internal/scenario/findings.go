package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"basrpt/internal/runner"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// FindingsSchema is the findings format identifier. Bump the suffix when
// the findings format changes incompatibly — the -check gate compares
// bytes, so a schema bump forces regenerating every committed findings
// file.
const FindingsSchema = "basrpt-findings/1"

// Findings is the machine-readable result of executing one scenario: the
// aggregated metrics, the evaluated checks, and the derived status. Its
// serialized form (EncodeJSON) and rendered form (RenderMarkdown) are
// byte-deterministic: they depend only on the spec and the seed
// derivation, never on worker count, timing, or host.
type Findings struct {
	// Schema is FindingsSchema.
	Schema string `json:"schema"`
	// Scenario and Title restate the spec's identity.
	Scenario string `json:"scenario"`
	Title    string `json:"title"`
	// SpecDigest is the fnv64a digest of the spec's canonical JSON — the
	// committed findings are invalidated the moment the spec changes.
	SpecDigest string `json:"spec_digest"`
	// RootSeed and Seeds record the replicate derivation so any cell can
	// be replayed single-seed.
	RootSeed uint64   `json:"root_seed"`
	Seeds    []uint64 `json:"seeds"`
	// Status is Confirmed, Refuted, or Inconclusive (see statusOf).
	Status string `json:"status"`
	// Checks are the evaluated assertions, in spec order.
	Checks []CheckResult `json:"checks"`
	// Metrics are the aggregated quantities, named "<cell>/<metric>", in
	// the runner's deterministic (cell position, metric name) order.
	Metrics []Metric `json:"metrics"`
	// Digest is the fnv64a digest of this document serialized with
	// Digest itself empty — an integrity stamp for artifact plumbing.
	Digest string `json:"digest"`
}

// Metric is one aggregated quantity: dispersion statistics across the
// replicates that reported it.
type Metric struct {
	// Name is "<cell>/<metric>".
	Name string `json:"name"`
	// N is the number of replicates reporting the metric.
	N int `json:"n"`
	// Mean, CI95 (95% half-width, Student-t), StdDev, Min, Max summarize
	// the replicates.
	Mean   float64 `json:"mean"`
	CI95   float64 `json:"ci95"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// newFindings folds a spec and its aggregate into findings.
func newFindings(spec *Spec, agg *runner.Aggregate) (*Findings, error) {
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		return nil, err
	}
	checks, err := evaluateChecks(spec, agg)
	if err != nil {
		return nil, err
	}
	f := &Findings{
		Schema:     FindingsSchema,
		Scenario:   spec.Name,
		Title:      spec.Title,
		SpecDigest: digestBytes(specJSON),
		RootSeed:   agg.RootSeed,
		Seeds:      agg.Seeds,
		Status:     statusOf(checks),
		Checks:     checks,
	}
	for i := range agg.Metrics {
		m := &agg.Metrics[i]
		f.Metrics = append(f.Metrics, Metric{
			Name: m.Name, N: m.N,
			Mean: m.Mean, CI95: m.CI95, StdDev: m.StdDev, Min: m.Min, Max: m.Max,
		})
	}
	body, err := f.encode()
	if err != nil {
		return nil, err
	}
	f.Digest = digestBytes(body)
	return f, nil
}

// encode serializes the findings with the digest field cleared — the
// bytes the digest is computed over.
func (f *Findings) encode() ([]byte, error) {
	clone := *f
	clone.Digest = ""
	b, err := json.MarshalIndent(&clone, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal findings: %w", err)
	}
	return append(b, '\n'), nil
}

// EncodeJSON serializes the findings (trailing newline included) — the
// byte-exact content of a committed findings.json.
func (f *Findings) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal findings: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeFindings parses a committed findings.json and verifies its
// integrity digest.
func DecodeFindings(data []byte) (*Findings, error) {
	var f Findings
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("scenario: parse findings: %w", err)
	}
	if f.Schema != FindingsSchema {
		return nil, fmt.Errorf("scenario: findings schema %q, want %q", f.Schema, FindingsSchema)
	}
	body, err := f.encode()
	if err != nil {
		return nil, err
	}
	if got := digestBytes(body); got != f.Digest {
		return nil, fmt.Errorf("scenario: findings digest mismatch: stamped %s, computed %s", f.Digest, got)
	}
	return &f, nil
}

// digestBytes is the fnv-64a content stamp used for both digests,
// rendered as "fnv64a:<hex>".
func digestBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// SpecPath is the canonical repository path of the scenario's spec — the
// path rendered into the reproduction commands, independent of where the
// file was actually loaded from.
func (f *Findings) SpecPath() string {
	return "scenarios/" + f.Scenario + "/spec.json"
}

// RenderMarkdown renders the FINDINGS.md document: status, hypothesis,
// controlled versus varied variables, reproduction commands, check
// outcomes, and the full metric table. Byte-deterministic — it carries no
// timestamps or host details, so the -check gate can diff it.
func (f *Findings) RenderMarkdown(spec *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n\n", f.Scenario, f.Title)
	fmt.Fprintf(&b, "**Status:** %s\n", f.Status)
	fmt.Fprintf(&b, "**Spec:** `%s` (digest `%s`)\n", f.SpecPath(), f.SpecDigest)
	fmt.Fprintf(&b, "**Findings digest:** `%s`\n", f.Digest)
	fmt.Fprintf(&b, "**Seeds:** %d replicates derived from root %d: %s\n",
		len(f.Seeds), f.RootSeed, seedList(f.Seeds))
	fmt.Fprintf(&b, "**Reproduce:** `go run ./cmd/basrptexp -scenario %s`\n", f.SpecPath())
	fmt.Fprintf(&b, "**Verify:** `go run ./cmd/basrptexp -check -scenario %s`\n", f.SpecPath())
	b.WriteString("\n## Hypothesis\n\n")
	for _, line := range strings.Split(strings.TrimRight(spec.Hypothesis, "\n"), "\n") {
		fmt.Fprintf(&b, "> %s\n", line)
	}

	b.WriteString("\n## Variables\n\n")
	b.WriteString("**Controlled:**\n")
	fmt.Fprintf(&b, "- topology: %d racks × %d hosts (%d hosts), non-blocking\n",
		spec.Topology.Racks, spec.Topology.HostsPerRack, spec.Topology.Racks*spec.Topology.HostsPerRack)
	fmt.Fprintf(&b, "- horizon: %g simulated seconds\n", spec.DurationS)
	qf := spec.Workload.QueryByteFraction
	qfNote := ""
	if qf == 0 {
		qfNote = " (harness default)"
	}
	fmt.Fprintf(&b, "- workload: mixed query/background Poisson arrivals, query byte fraction %s%s;\n"+
		"  identical arrival stream per replicate seed across all cells (paired comparison)\n",
		qfValue(qf), qfNote)
	if len(spec.Loads) == 1 {
		fmt.Fprintf(&b, "- offered load: %g%% of each access link\n", spec.Loads[0]*100)
	}
	if fs := spec.Faults; fs != nil {
		pin := "drawn from each replicate seed (varies with the workload)"
		if fs.Seed != 0 {
			pin = fmt.Sprintf("pinned to seed %d (identical across replicates)", fs.Seed)
		}
		fmt.Fprintf(&b, "- faults: %d link fault(s) + %d scheduler outage(s) per run, schedule %s;\n"+
			"  byte-identical schedule across all cells of a replicate\n",
			fs.LinkFaults, fs.Outages, pin)
	}
	b.WriteString("\n**Varied:**\n")
	var labels []string
	for _, sc := range spec.Schedulers {
		labels = append(labels, schedDescr(sc))
	}
	fmt.Fprintf(&b, "- scheduler: %s\n", strings.Join(labels, ", "))
	if len(spec.Loads) > 1 {
		var loads []string
		for _, l := range spec.Loads {
			loads = append(loads, fmt.Sprintf("%g%%", l*100))
		}
		fmt.Fprintf(&b, "- offered load: %s\n", strings.Join(loads, ", "))
	}
	fmt.Fprintf(&b, "- replicate seed: %d independent replicates (splitmix64-derived; see runner.DeriveSeed)\n", len(f.Seeds))

	b.WriteString("\n## Checks\n\n")
	ctbl := trace.Table{Headers: []string{"check", "left", "op", "right", "margin", "outcome"}}
	for _, c := range f.Checks {
		op := c.Op
		if c.Paired {
			op += " (paired)"
		}
		ctbl.AddRow(c.Name, fmt.Sprintf("%s = %s", c.Left, fmtG5(c.LeftMean)), op,
			fmt.Sprintf("%s = %s", c.Right, fmtG5(c.RightMean)), fmtG5(c.Margin), c.Outcome)
	}
	b.WriteString(codeBlock(ctbl.Render()))
	b.WriteString("\nComparisons are between replicate means; the margin is the combined\n" +
		"95%-CI half-width — for paired checks, the 95%-CI of the per-replicate\n" +
		"differences on identical arrival streams — plus the tolerance for eq\n" +
		"checks, so pass/fail is only declared when the gap is decisive against\n" +
		"seed-to-seed dispersion.\n")

	b.WriteString("\n## Results\n\n")
	mtbl := trace.Table{Headers: []string{"metric", "n", "mean", "±ci95", "stddev", "min", "max"}}
	for _, m := range f.Metrics {
		mtbl.AddRow(m.Name, strconv.Itoa(m.N), fmtG5(m.Mean), fmtG5(m.CI95),
			fmtG5(m.StdDev), fmtG5(m.Min), fmtG5(m.Max))
	}
	b.WriteString(codeBlock(mtbl.Render()))
	b.WriteString("\nGenerated by `cmd/basrptexp`; the machine-readable form is `findings.json`\n" +
		"next to this file. Both are byte-deterministic at any `-parallel` value and\n" +
		"diffed byte-for-byte by `make scenarios` in CI.\n")
	return b.String()
}

// schedDescr renders one scheduler axis entry with its non-default knobs.
func schedDescr(sc SchedulerSpec) string {
	d := sc.CellLabel()
	var knobs []string
	if sc.Label != "" && sc.Label != sc.Name {
		knobs = append(knobs, sc.Name)
	}
	if sc.V != 0 {
		knobs = append(knobs, fmt.Sprintf("V=%g", sc.V))
	}
	if len(sc.VSweep) > 0 {
		var vs []string
		for _, v := range sc.VSweep {
			vs = append(vs, fmt.Sprintf("%g", v))
		}
		knobs = append(knobs, fmt.Sprintf("V swept over {%s}, one cell per value", strings.Join(vs, ", ")))
	}
	if sc.Threshold != 0 {
		knobs = append(knobs, fmt.Sprintf("T=%g", sc.Threshold))
	}
	if sc.NoiseLevel != 0 {
		knobs = append(knobs, fmt.Sprintf("noise=%g", sc.NoiseLevel))
	}
	if sc.Rounds != 0 {
		knobs = append(knobs, fmt.Sprintf("rounds=%d", sc.Rounds))
	}
	if sc.MaxPorts != 0 {
		knobs = append(knobs, fmt.Sprintf("maxports=%d", sc.MaxPorts))
	}
	if len(knobs) > 0 {
		d += " (" + strings.Join(knobs, ", ") + ")"
	}
	return d
}

// qfValue renders the query byte fraction, resolving 0 to the default's
// numeric value for the reader.
func qfValue(qf float64) string {
	if qf == 0 {
		qf = workload.DefaultQueryByteFraction
	}
	return fmtG(qf)
}

// seedList renders derived seeds compactly.
func seedList(seeds []uint64) string {
	var parts []string
	for _, s := range seeds {
		parts = append(parts, strconv.FormatUint(s, 10))
	}
	return strings.Join(parts, ", ")
}

// codeBlock fences preformatted table text for markdown.
func codeBlock(s string) string {
	return "```\n" + strings.TrimRight(s, "\n") + "\n```\n"
}

// fmtG5 renders table floats at 5 significant digits — compact, stable,
// and precise enough for ±ci columns at small magnitudes.
func fmtG5(v float64) string {
	return strconv.FormatFloat(v, 'g', 5, 64)
}
