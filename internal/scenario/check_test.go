package scenario

import (
	"strings"
	"testing"

	"basrpt/internal/runner"
)

func TestDecide(t *testing.T) {
	cases := []struct {
		op                  string
		left, right, margin float64
		want                string
	}{
		{"gt", 10, 5, 1, OutcomePass},
		{"gt", 5, 10, 1, OutcomeFail},
		{"gt", 10, 9.5, 1, OutcomeInconclusive},
		{"lt", 5, 10, 1, OutcomePass},
		{"lt", 10, 5, 1, OutcomeFail},
		{"lt", 9.5, 10, 1, OutcomeInconclusive},
		{"ge", 10, 5, 1, OutcomePass},
		{"ge", 9.5, 10, 1, OutcomePass}, // within margin: not decisively worse
		{"ge", 5, 10, 1, OutcomeFail},
		{"le", 5, 10, 1, OutcomePass},
		{"le", 10.5, 10, 1, OutcomePass},
		{"le", 10, 5, 1, OutcomeFail},
		{"eq", 10, 10.5, 1, OutcomePass},
		{"eq", 10, 12, 1, OutcomeFail},
	}
	for _, tc := range cases {
		if got := decide(tc.op, tc.left, tc.right, tc.margin); got != tc.want {
			t.Errorf("decide(%s, %g, %g, %g) = %s, want %s",
				tc.op, tc.left, tc.right, tc.margin, got, tc.want)
		}
	}
}

func TestStatusOf(t *testing.T) {
	mk := func(outcomes ...string) []CheckResult {
		var cs []CheckResult
		for _, o := range outcomes {
			cs = append(cs, CheckResult{Outcome: o})
		}
		return cs
	}
	if got := statusOf(mk(OutcomePass, OutcomePass)); got != StatusConfirmed {
		t.Errorf("all pass: %s", got)
	}
	if got := statusOf(mk(OutcomePass, OutcomeInconclusive)); got != StatusInconclusive {
		t.Errorf("one inconclusive: %s", got)
	}
	if got := statusOf(mk(OutcomeInconclusive, OutcomeFail)); got != StatusRefuted {
		t.Errorf("fail dominates: %s", got)
	}
	if got := statusOf(nil); got != StatusConfirmed {
		t.Errorf("vacuous (unreachable via Validate): %s", got)
	}
}

// TestPairedMarginAlignment: a metric missing from one replicate makes
// pairing undefined and must be an error, not a silent misalignment.
func TestPairedMarginAlignment(t *testing.T) {
	full := &runner.MetricAggregate{Name: "a/x", N: 3, Samples: []float64{1, 2, 3}}
	short := &runner.MetricAggregate{Name: "b/x", N: 2, Samples: []float64{1, 2}}
	if _, err := pairedMargin(full, short, 3); err == nil {
		t.Fatal("misaligned pairing accepted")
	}
	if _, err := pairedMargin(full, full, 3); err != nil {
		t.Fatalf("aligned pairing rejected: %v", err)
	}
	// Identical samples pair to zero differences: margin 0.
	m, err := pairedMargin(full, full, 3)
	if err != nil || m != 0 {
		t.Fatalf("self-paired margin = %g, %v; want 0, nil", m, err)
	}
}

// TestEvaluateChecksUnknownMetric: referencing a metric the run did not
// produce is an execution error, not a failed check.
func TestEvaluateChecksUnknownMetric(t *testing.T) {
	spec := mustParse(t, validSpecJSON)
	spec.Checks = []CheckSpec{{Name: "c", Left: "srpt/no_such_metric", Op: "ge", Value: f64(0)}}
	agg := &runner.Aggregate{
		Seeds:   []uint64{1, 2},
		Metrics: []runner.MetricAggregate{{Name: "srpt/gbps", N: 2, Mean: 1, Samples: []float64{1, 1}}},
	}
	_, err := evaluateChecks(spec, agg)
	if err == nil || !strings.Contains(err.Error(), "no_such_metric") {
		t.Fatalf("unknown metric: err = %v", err)
	}
}

func f64(v float64) *float64 { return &v }
