package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// validSpecJSON is a minimal well-formed spec used as the mutation base
// for the parser tests and the fuzz corpus.
const validSpecJSON = `{
  "schema": "basrpt-scenario/1",
  "name": "tiny",
  "title": "tiny scenario",
  "hypothesis": "throughput is nonnegative",
  "topology": {"racks": 2, "hosts_per_rack": 2},
  "duration_s": 0.2,
  "workload": {},
  "loads": [0.5],
  "schedulers": [{"name": "srpt"}, {"name": "fast-basrpt", "v": 2500}],
  "seeds": {"count": 2, "root": 1},
  "checks": [
    {"name": "gbps-nonneg", "left": "srpt/gbps", "op": "ge", "value": 0}
  ]
}`

func mustParse(t *testing.T, data string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(data))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return s
}

// mutate decodes the valid spec into a generic map, applies fn, and
// re-encodes — a compact way to produce one-field-broken variants.
func mutate(t *testing.T, fn func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(validSpecJSON), &m); err != nil {
		t.Fatalf("unmarshal base spec: %v", err)
	}
	fn(m)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal mutated spec: %v", err)
	}
	return b
}

func TestParseSpecValid(t *testing.T) {
	s := mustParse(t, validSpecJSON)
	if s.Name != "tiny" || s.Seeds.Count != 2 || len(s.Schedulers) != 2 {
		t.Fatalf("parsed spec fields wrong: %+v", s)
	}
	if got := s.CellNames(); len(got) != 2 || got[0] != "srpt" || got[1] != "fast-basrpt" {
		t.Fatalf("CellNames = %v, want [srpt fast-basrpt]", got)
	}
}

func TestParseSpecUnknownFieldRejected(t *testing.T) {
	data := mutate(t, func(m map[string]any) { m["typo_knob"] = 3 })
	_, err := ParseSpec(data)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("error does not unwrap to ErrSpec: %v", err)
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *SpecError: %T %v", err, err)
	}
	if se.Field != "json" {
		t.Fatalf("SpecError.Field = %q, want %q", se.Field, "json")
	}
}

func TestParseSpecTrailingDataRejected(t *testing.T) {
	_, err := ParseSpec([]byte(validSpecJSON + "\n{}"))
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("trailing data: got %v, want ErrSpec", err)
	}
}

func TestParseSpecMalformedJSON(t *testing.T) {
	_, err := ParseSpec([]byte(`{"schema": `))
	if !errors.Is(err, ErrSpec) {
		t.Fatalf("malformed JSON: got %v, want ErrSpec", err)
	}
}

// TestValidateRejections walks every semantic constraint, asserting the
// typed error names the offending field.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		fn    func(m map[string]any)
		field string // expected SpecError.Field prefix
	}{
		{"wrong schema", func(m map[string]any) { m["schema"] = "basrpt-scenario/99" }, "schema"},
		{"empty name", func(m map[string]any) { m["name"] = "" }, "name"},
		{"bad name charset", func(m map[string]any) { m["name"] = "Tiny_Spec" }, "name"},
		{"empty title", func(m map[string]any) { m["title"] = "" }, "title"},
		{"empty hypothesis", func(m map[string]any) { m["hypothesis"] = "" }, "hypothesis"},
		{"zero racks", func(m map[string]any) { m["topology"] = map[string]any{"racks": 0, "hosts_per_rack": 2} }, "topology.racks"},
		{"zero hosts", func(m map[string]any) { m["topology"] = map[string]any{"racks": 2, "hosts_per_rack": 0} }, "topology.hosts_per_rack"},
		{"zero duration", func(m map[string]any) { m["duration_s"] = 0 }, "duration_s"},
		{"qf out of range", func(m map[string]any) { m["workload"] = map[string]any{"query_byte_fraction": 1.5} }, "workload.query_byte_fraction"},
		{"no loads", func(m map[string]any) { m["loads"] = []any{} }, "loads"},
		{"load too high", func(m map[string]any) { m["loads"] = []any{1.2} }, "loads[0]"},
		{"load zero", func(m map[string]any) { m["loads"] = []any{0} }, "loads[0]"},
		{"no schedulers", func(m map[string]any) { m["schedulers"] = []any{} }, "schedulers"},
		{"unknown scheduler", func(m map[string]any) {
			m["schedulers"] = []any{map[string]any{"name": "lottery"}}
		}, "schedulers[0].name"},
		{"duplicate cell label", func(m map[string]any) {
			m["schedulers"] = []any{map[string]any{"name": "srpt"}, map[string]any{"name": "srpt"}}
		}, "schedulers[1]"},
		{"negative fault counts", func(m map[string]any) {
			m["faults"] = map[string]any{"link_faults": -1, "outages": 0}
		}, "faults"},
		{"empty fault block", func(m map[string]any) {
			m["faults"] = map[string]any{"link_faults": 0, "outages": 0}
		}, "faults"},
		{"zero seeds", func(m map[string]any) { m["seeds"] = map[string]any{"count": 0} }, "seeds.count"},
		{"no checks", func(m map[string]any) { m["checks"] = []any{} }, "checks"},
		{"unnamed check", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "", "left": "srpt/gbps", "op": "ge", "value": 0}}
		}, "checks[0].name"},
		{"unknown op", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "approx", "value": 0}}
		}, "checks[0].op"},
		{"both right and value", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "ge", "right": "fast-basrpt/gbps", "value": 0}}
		}, "checks[0].right"},
		{"neither right nor value", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "ge"}}
		}, "checks[0].right"},
		{"negative tolerance", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "eq", "value": 0, "tolerance": -1}}
		}, "checks[0].tolerance"},
		{"tolerance on non-eq", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "ge", "value": 0, "tolerance": 0.1}}
		}, "checks[0].tolerance"},
		{"paired against constant", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "eq", "value": 0, "paired": true}}
		}, "checks[0].paired"},
		{"ref without slash", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "gbps", "op": "ge", "value": 0}}
		}, "checks[0].left"},
		{"ref to unknown cell", func(m map[string]any) {
			m["checks"] = []any{map[string]any{"name": "c", "left": "fifo/gbps", "op": "ge", "value": 0}}
		}, "checks[0].left"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(mutate(t, tc.fn))
			if err == nil {
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("does not unwrap to ErrSpec: %v", err)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("not a *SpecError: %T %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("SpecError.Field = %q, want %q (err: %v)", se.Field, tc.field, err)
			}
		})
	}
}

func TestCellNamesSweep(t *testing.T) {
	data := mutate(t, func(m map[string]any) {
		m["loads"] = []any{0.3, 0.8}
		m["checks"] = []any{map[string]any{"name": "c", "left": "srpt@30%/gbps", "op": "ge", "value": 0}}
	})
	s := mustParse(t, string(data))
	want := []string{"srpt@30%", "srpt@80%", "fast-basrpt@30%", "fast-basrpt@80%"}
	got := s.CellNames()
	if len(got) != len(want) {
		t.Fatalf("CellNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CellNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSchedulerLabelOverride(t *testing.T) {
	data := mutate(t, func(m map[string]any) {
		m["schedulers"] = []any{
			map[string]any{"name": "fast-basrpt", "label": "fast-lo", "v": 100},
			map[string]any{"name": "fast-basrpt", "label": "fast-hi", "v": 10000},
		}
		m["checks"] = []any{map[string]any{"name": "c", "left": "fast-lo/gbps", "op": "ge", "right": "fast-hi/gbps"}}
	})
	s := mustParse(t, string(data))
	if got := s.CellNames(); got[0] != "fast-lo" || got[1] != "fast-hi" {
		t.Fatalf("labelled CellNames = %v", got)
	}
}

// TestVSweepExpansion: a v_sweep entry unrolls into one labeled cell per
// V value, usable in check references like any explicit cell.
func TestVSweepExpansion(t *testing.T) {
	data := mutate(t, func(m map[string]any) {
		m["schedulers"] = []any{
			map[string]any{"name": "srpt"},
			map[string]any{"name": "fast-basrpt", "v_sweep": []any{1000, 2500, 10000}},
		}
		m["checks"] = []any{map[string]any{
			"name": "c", "left": "fast-basrpt-v1000/gbps", "op": "ge", "right": "fast-basrpt-v10000/gbps"}}
	})
	s := mustParse(t, string(data))
	want := []string{"srpt", "fast-basrpt-v1000", "fast-basrpt-v2500", "fast-basrpt-v10000"}
	got := s.CellNames()
	if len(got) != len(want) {
		t.Fatalf("CellNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CellNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// The expanded entries carry the swept V into the scheduler options.
	cells := s.schedulerCells()
	if len(cells) != 4 || cells[1].V != 1000 || cells[3].V != 10000 || len(cells[1].VSweep) != 0 {
		t.Fatalf("expanded cells wrong: %+v", cells)
	}
}

func TestVSweepValidation(t *testing.T) {
	cases := []struct {
		name  string
		sched []any
		field string
	}{
		{"v and v_sweep together", []any{
			map[string]any{"name": "fast-basrpt", "v": 2500, "v_sweep": []any{1000, 2500}},
		}, "schedulers[0].v_sweep"},
		{"nonpositive swept v", []any{
			map[string]any{"name": "fast-basrpt", "v_sweep": []any{1000, 0}},
		}, "schedulers[0].v_sweep[1]"},
		{"duplicate swept label", []any{
			map[string]any{"name": "fast-basrpt", "v_sweep": []any{1000, 1000}},
		}, "schedulers[0]"},
		{"sweep collides with explicit label", []any{
			map[string]any{"name": "fast-basrpt", "label": "fast-basrpt-v1000", "v": 1000},
			map[string]any{"name": "fast-basrpt", "v_sweep": []any{1000}},
		}, "schedulers[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := mutate(t, func(m map[string]any) {
				m["schedulers"] = tc.sched
				m["checks"] = []any{map[string]any{"name": "c", "left": "srpt/gbps", "op": "ge", "value": 0}}
			})
			_, err := ParseSpec(data)
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("not a *SpecError: %v", err)
			}
			// The base check references srpt/gbps, which these scheduler
			// mutations removed — so a label-phase error must win first.
			if se.Field != tc.field {
				t.Fatalf("SpecError.Field = %q, want %q (err: %v)", se.Field, tc.field, err)
			}
		})
	}
}

func TestSplitMetricRef(t *testing.T) {
	cases := []struct {
		ref, cell, metric string
		ok                bool
	}{
		{"srpt/gbps", "srpt", "gbps", true},
		{"srpt@30%/query_avg_ms", "srpt@30%", "query_avg_ms", true},
		{"a/b/c", "a", "b/c", true}, // first slash splits
		{"noslash", "", "", false},
		{"/metric", "", "", false},
		{"cell/", "", "", false},
		{"", "", "", false},
	}
	for _, tc := range cases {
		cell, metric, ok := splitMetricRef(tc.ref)
		if cell != tc.cell || metric != tc.metric || ok != tc.ok {
			t.Errorf("splitMetricRef(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.ref, cell, metric, ok, tc.cell, tc.metric, tc.ok)
		}
	}
}

// TestCanonicalJSONFormatIndependent: the digest input must not depend on
// the source file's whitespace or key order.
func TestCanonicalJSONFormatIndependent(t *testing.T) {
	a := mustParse(t, validSpecJSON)
	compact := mutate(t, func(m map[string]any) {}) // re-marshal: different formatting, same content
	b := mustParse(t, string(compact))
	aj, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("canonical JSON differs across formattings:\n%s\nvs\n%s", aj, bj)
	}
	if !strings.HasSuffix(string(aj), "\n") {
		t.Fatal("canonical JSON missing trailing newline")
	}
}
