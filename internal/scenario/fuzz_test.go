package scenario

import (
	"errors"
	"testing"
)

// FuzzParseSpec drives the strict loader with arbitrary bytes: it must
// never panic, every rejection must unwrap to ErrSpec, and every accepted
// spec must re-validate and round-trip through its canonical form.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(validSpecJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"schema":"basrpt-scenario/1","name":"x","unknown":true}`))
	f.Add([]byte(`{"schema":"basrpt-scenario/1","loads":[2.0]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("rejection does not unwrap to ErrSpec: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		canon, err := s.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted spec has no canonical form: %v", err)
		}
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form of accepted spec rejected: %v\n%s", err, canon)
		}
		canon2, err := s2.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(canon2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
	})
}
