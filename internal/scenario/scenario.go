// Package scenario is the declarative hypothesis harness: experiments
// described as checked-in JSON specs (topology, workload, scheduler grid,
// fault schedule, load sweep, seeds, and checks) that execute on
// internal/runner's worker pool and emit machine-readable findings — a
// schema-versioned findings.json with per-cell mean/stddev/95%-CI and a
// deterministic digest, plus a rendered FINDINGS.md carrying an explicit
// Confirmed/Refuted/Inconclusive status, the controlled and varied
// variables, and the exact reproduction command.
//
// The spec format is JSON, not YAML, because the repository is Go
// standard library only: encoding/json with DisallowUnknownFields gives a
// strict, typed loader for free, while YAML would require a third-party
// parser. Both artifacts are byte-deterministic: the same spec at the
// same seeds renders byte-identical findings at any worker count, which
// is what lets `basrptexp -check` diff regenerated findings against the
// committed ones as a CI regression gate.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"basrpt/internal/sched"
)

// SpecSchema is the spec format identifier every spec must carry. Bump the
// suffix when the spec format changes incompatibly.
const SpecSchema = "basrpt-scenario/1"

// ErrSpec is the sentinel wrapped by every spec validation failure, so
// callers can distinguish "bad spec" from execution errors with
// errors.Is.
var ErrSpec = errors.New("invalid scenario spec")

// SpecError is the typed spec validation failure: the offending field and
// why it was rejected. It unwraps to ErrSpec.
type SpecError struct {
	// Field names the spec field (JSON path) that failed.
	Field string
	// Reason explains the rejection.
	Reason string
}

// Error implements the error interface.
func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: spec field %q: %s", e.Field, e.Reason)
}

// Unwrap ties SpecError into the ErrSpec sentinel chain.
func (e *SpecError) Unwrap() error { return ErrSpec }

func specErrf(field, format string, args ...any) error {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Spec is one declarative scenario: the full experimental design of a
// hypothesis. The execution grid is the cross product Schedulers × Loads;
// every cell runs Seeds.Count replicates.
type Spec struct {
	// Schema must equal SpecSchema.
	Schema string `json:"schema"`
	// Name identifies the scenario; the checked-in layout is
	// scenarios/<name>/spec.json and the reproduction command rendered
	// into FINDINGS.md is derived from it.
	Name string `json:"name"`
	// Title is the one-line headline rendered into the findings.
	Title string `json:"title"`
	// Hypothesis is the claim under test, quoted verbatim in FINDINGS.md.
	Hypothesis string `json:"hypothesis"`
	// Topology shapes the fabric.
	Topology TopologySpec `json:"topology"`
	// DurationS is the simulated horizon in seconds.
	DurationS float64 `json:"duration_s"`
	// Workload parameterizes the arrival process.
	Workload WorkloadSpec `json:"workload"`
	// Loads is the per-port offered-load sweep; a single entry makes a
	// non-sweep scenario.
	Loads []float64 `json:"loads"`
	// Schedulers is the discipline axis of the grid.
	Schedulers []SchedulerSpec `json:"schedulers"`
	// Faults, when present, injects the E13-style deterministic fault
	// schedule into every cell and adds the resilience metrics.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Seeds configures the replicate axis.
	Seeds SeedSpec `json:"seeds"`
	// Checks are the machine-checked assertions that decide the findings
	// status.
	Checks []CheckSpec `json:"checks"`
}

// TopologySpec shapes the simulated fabric.
type TopologySpec struct {
	// Racks and HostsPerRack define the scaled multi-rooted tree
	// (paper scale: 12 × 12).
	Racks        int `json:"racks"`
	HostsPerRack int `json:"hosts_per_rack"`
}

// WorkloadSpec parameterizes the mixed query/background arrival process.
type WorkloadSpec struct {
	// QueryByteFraction is the share of offered bytes carried by 20KB
	// queries; 0 selects the harness default.
	QueryByteFraction float64 `json:"query_byte_fraction,omitempty"`
}

// SchedulerSpec selects one discipline from the sched registry with its
// parameters.
type SchedulerSpec struct {
	// Name is the sched registry identifier (sched.Names).
	Name string `json:"name"`
	// Label overrides the cell-name prefix when one registry discipline
	// appears more than once (e.g. fast-basrpt at two V values); empty
	// selects Name.
	Label string `json:"label,omitempty"`
	// V, Threshold, NoiseLevel, Rounds, and MaxPorts are the discipline
	// parameters (zero selects the registry defaults).
	V          float64 `json:"v,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	NoiseLevel float64 `json:"noise_level,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	MaxPorts   int     `json:"max_ports,omitempty"`
	// VSweep unrolls this entry into one grid cell per V value, labeled
	// "<label>-v<V>" — the declarative form of the paper's Figures 7/8
	// tradeoff sweep. Mutually exclusive with V.
	VSweep []float64 `json:"v_sweep,omitempty"`
}

// FaultSpec configures the deterministic fault schedule injected into
// every cell.
type FaultSpec struct {
	// LinkFaults and Outages count the schedule's fault windows.
	LinkFaults int `json:"link_faults"`
	Outages    int `json:"outages"`
	// Seed draws the schedule; 0 derives it from each replicate seed so
	// the schedule varies with the workload across replicates, a fixed
	// value pins one schedule across all replicates.
	Seed uint64 `json:"seed,omitempty"`
}

// SeedSpec configures the replicate axis.
type SeedSpec struct {
	// Count is the number of independent replicates (>= 1).
	Count int `json:"count"`
	// Root seeds the splitmix64 replicate derivation (0 selects 1).
	Root uint64 `json:"root,omitempty"`
}

// CheckSpec is one machine-checked assertion over the aggregated metrics.
// Left and Right name metrics as "<cell>/<metric>" (see Spec.CellNames);
// Value replaces Right with a constant. Comparisons are between replicate
// means with the combined 95%-CI half-widths as the decisiveness margin —
// see the package documentation of Op values in check.go.
type CheckSpec struct {
	// Name labels the check in the findings.
	Name string `json:"name"`
	// Left is the left-hand metric ("cell/metric").
	Left string `json:"left"`
	// Op is the comparison: gt, lt (decisive only outside the CI margin),
	// ge, le (pass unless decisively violated), or eq (pass within
	// tolerance + margin).
	Op string `json:"op"`
	// Right is the right-hand metric; mutually exclusive with Value.
	Right string `json:"right,omitempty"`
	// Value is the right-hand constant; mutually exclusive with Right.
	Value *float64 `json:"value,omitempty"`
	// Tolerance widens eq checks (absolute units of the metric).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Paired compares per-replicate differences instead of marginal
	// means: replicate i of the left metric ran the identical arrival
	// stream as replicate i of the right metric, so the decisiveness
	// margin is the 95%-CI of the paired differences — the repository's
	// primary methodology, immune to cross-seed workload dispersion.
	// Metric-vs-metric checks only.
	Paired bool `json:"paired,omitempty"`
}

// checkOps are the valid CheckSpec.Op values.
var checkOps = map[string]bool{"gt": true, "lt": true, "ge": true, "le": true, "eq": true}

// LoadSpec parses and validates one spec file. All failures — unreadable
// file, malformed or unknown-field JSON, semantic violations — unwrap to
// ErrSpec except the I/O error of a missing file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read spec: %w", err)
	}
	return ParseSpec(data)
}

// ParseSpec parses and validates spec bytes. Unknown fields are rejected:
// a typo'd knob must fail loudly, not silently run the default
// experiment.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, specErrf("json", "%v", err)
	}
	// Trailing non-whitespace after the spec object is a malformed file,
	// not a second document.
	if dec.More() {
		return nil, specErrf("json", "trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's semantic constraints. It is called by
// ParseSpec; programmatically built specs should call it before Execute.
func (s *Spec) Validate() error {
	if s.Schema != SpecSchema {
		return specErrf("schema", "got %q, want %q", s.Schema, SpecSchema)
	}
	if s.Name == "" {
		return specErrf("name", "empty")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-') {
			return specErrf("name", "%q: only [a-z0-9-] allowed (it names the scenarios/ directory)", s.Name)
		}
	}
	if s.Title == "" {
		return specErrf("title", "empty")
	}
	if s.Hypothesis == "" {
		return specErrf("hypothesis", "empty")
	}
	if s.Topology.Racks < 1 {
		return specErrf("topology.racks", "%d < 1", s.Topology.Racks)
	}
	if s.Topology.HostsPerRack < 1 {
		return specErrf("topology.hosts_per_rack", "%d < 1", s.Topology.HostsPerRack)
	}
	if s.DurationS <= 0 {
		return specErrf("duration_s", "%g <= 0", s.DurationS)
	}
	if s.Workload.QueryByteFraction < 0 || s.Workload.QueryByteFraction >= 1 {
		return specErrf("workload.query_byte_fraction", "%g outside [0, 1)", s.Workload.QueryByteFraction)
	}
	if len(s.Loads) == 0 {
		return specErrf("loads", "empty")
	}
	for i, l := range s.Loads {
		if l <= 0 || l >= 1 {
			return specErrf(fmt.Sprintf("loads[%d]", i), "%g outside (0, 1)", l)
		}
	}
	if len(s.Schedulers) == 0 {
		return specErrf("schedulers", "empty")
	}
	validNames := map[string]bool{}
	for _, n := range sched.Names() {
		validNames[n] = true
	}
	for i, sc := range s.Schedulers {
		if !validNames[sc.Name] {
			return specErrf(fmt.Sprintf("schedulers[%d].name", i),
				"unknown scheduler %q (valid: %v)", sc.Name, sched.Names())
		}
		if len(sc.VSweep) > 0 {
			if sc.V != 0 {
				return specErrf(fmt.Sprintf("schedulers[%d].v_sweep", i),
					"mutually exclusive with v (the sweep sets V per cell)")
			}
			for j, v := range sc.VSweep {
				if v <= 0 {
					return specErrf(fmt.Sprintf("schedulers[%d].v_sweep[%d]", i, j), "%g <= 0", v)
				}
			}
		}
	}
	// Duplicate labels are checked over the EXPANDED axis, so a v_sweep
	// entry cannot collide with an explicit "<label>-v<V>" cell either.
	labels := map[string]bool{}
	for i, sc := range s.Schedulers {
		for _, e := range sc.expand() {
			if labels[e.CellLabel()] {
				return specErrf(fmt.Sprintf("schedulers[%d]", i),
					"duplicate cell label %q (set a distinct label)", e.CellLabel())
			}
			labels[e.CellLabel()] = true
		}
	}
	if s.Faults != nil {
		if s.Faults.LinkFaults < 0 || s.Faults.Outages < 0 {
			return specErrf("faults", "negative fault counts")
		}
		if s.Faults.LinkFaults+s.Faults.Outages == 0 {
			return specErrf("faults", "present but schedules no faults (drop the block instead)")
		}
	}
	if s.Seeds.Count < 1 {
		return specErrf("seeds.count", "%d < 1", s.Seeds.Count)
	}
	if len(s.Checks) == 0 {
		return specErrf("checks", "empty: a scenario with nothing to check is a table, not a hypothesis")
	}
	metricCells := map[string]bool{}
	for _, name := range s.CellNames() {
		metricCells[name] = true
	}
	for i, c := range s.Checks {
		field := func(f string) string { return fmt.Sprintf("checks[%d].%s", i, f) }
		if c.Name == "" {
			return specErrf(field("name"), "empty")
		}
		if !checkOps[c.Op] {
			return specErrf(field("op"), "unknown op %q (valid: eq ge gt le lt)", c.Op)
		}
		if (c.Right == "") == (c.Value == nil) {
			return specErrf(field("right"), "exactly one of right (a metric) or value (a constant) must be set")
		}
		if c.Tolerance < 0 {
			return specErrf(field("tolerance"), "%g < 0", c.Tolerance)
		}
		if c.Tolerance > 0 && c.Op != "eq" {
			return specErrf(field("tolerance"), "only eq checks take a tolerance")
		}
		if c.Paired && c.Right == "" {
			return specErrf(field("paired"), "paired checks compare two metrics, not a metric against a constant")
		}
		for _, ref := range []string{c.Left, c.Right} {
			if ref == "" {
				continue
			}
			cell, _, ok := splitMetricRef(ref)
			if !ok {
				return specErrf(field("left"), "metric reference %q is not \"cell/metric\"", ref)
			}
			if !metricCells[cell] {
				return specErrf(field("left"), "reference %q names no grid cell (cells: %v)", ref, s.CellNames())
			}
		}
	}
	return nil
}

// CellLabel is the scheduler's cell-name prefix: Label when set, the
// registry name otherwise.
func (sc SchedulerSpec) CellLabel() string {
	if sc.Label != "" {
		return sc.Label
	}
	return sc.Name
}

// expand returns the grid entries this spec line contributes: itself
// when there is no sweep, else one entry per swept V value with the
// label "<label>-v<V>".
func (sc SchedulerSpec) expand() []SchedulerSpec {
	if len(sc.VSweep) == 0 {
		return []SchedulerSpec{sc}
	}
	out := make([]SchedulerSpec, 0, len(sc.VSweep))
	for _, v := range sc.VSweep {
		e := sc
		e.VSweep = nil
		e.V = v
		e.Label = fmt.Sprintf("%s-v%g", sc.CellLabel(), v)
		out = append(out, e)
	}
	return out
}

// schedulerCells is the expanded scheduler axis of the grid: v_sweep
// entries unroll into one cell per V value, everything else passes
// through unchanged.
func (s *Spec) schedulerCells() []SchedulerSpec {
	var cells []SchedulerSpec
	for _, sc := range s.Schedulers {
		cells = append(cells, sc.expand()...)
	}
	return cells
}

// CellNames returns the grid's cell names in execution order
// (scheduler-major, load-minor): "<label>" for a single-load spec,
// "<label>@<P>%" per load point of a sweep, with P the load × 100
// rendered by %g. v_sweep entries contribute one "<label>-v<V>" cell
// per swept value.
func (s *Spec) CellNames() []string {
	var names []string
	for _, sc := range s.schedulerCells() {
		for _, load := range s.Loads {
			names = append(names, s.cellName(sc, load))
		}
	}
	return names
}

func (s *Spec) cellName(sc SchedulerSpec, load float64) string {
	if len(s.Loads) == 1 {
		return sc.CellLabel()
	}
	return fmt.Sprintf("%s@%g%%", sc.CellLabel(), load*100)
}

// splitMetricRef splits "cell/metric" at the FIRST slash: cell names
// never contain one, metric names may ("srpt/recovery_s" style samples
// never reach here — scenario cells flatten to single-level names).
func splitMetricRef(ref string) (cell, metric string, ok bool) {
	for i := 0; i < len(ref); i++ {
		if ref[i] == '/' {
			if i == 0 || i == len(ref)-1 {
				return "", "", false
			}
			return ref[:i], ref[i+1:], true
		}
	}
	return "", "", false
}

// CanonicalJSON renders the spec in its canonical serialized form — the
// bytes the spec digest is computed over, independent of the formatting
// of the file it was loaded from.
func (s *Spec) CanonicalJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal spec: %w", err)
	}
	return append(b, '\n'), nil
}
